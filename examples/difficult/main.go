// Difficult instances: the experiment that motivates the paper.
//
// On random hypergraphs with a planted minimum cut far below the random
// expectation (c = o(n^{1-1/d})), move-based heuristics started from a
// random bisection "often became stuck at a terrible bipartition",
// while Algorithm I — which reasons globally through the intersection
// graph — recovers the planted optimum. This example plants cuts of
// 2, 4 and 8 nets in 400-module hypergraphs and compares everything.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"fasthgp"
)

func main() {
	const n = 400
	for _, c := range []int{2, 4, 8} {
		rng := rand.New(rand.NewSource(int64(c)))
		h, planted, err := fasthgp.GeneratePlanted(n, fasthgp.PlantedConfig{
			CutSize:    c,
			IntraEdges: 2 * n,
			MaxDegree:  6,
		}, rng)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("== planted cut c=%d (%d modules, %d nets) ==\n", c, h.NumVertices(), h.NumEdges())
		fmt.Printf("planted crossing nets: %v\n", planted)

		algi, err := fasthgp.Partition(h, fasthgp.Options{Starts: 50, Seed: int64(c)})
		if err != nil {
			log.Fatal(err)
		}
		report("Algorithm I (50 starts)", algi.CutSize, c)

		klRes, err := fasthgp.KL(h, fasthgp.KLOptions{Seed: int64(c)})
		if err != nil {
			log.Fatal(err)
		}
		report("Kernighan-Lin", klRes.CutSize, c)

		fmRes, err := fasthgp.FM(h, fasthgp.FMOptions{Seed: int64(c)})
		if err != nil {
			log.Fatal(err)
		}
		report("Fiduccia-Mattheyses", fmRes.CutSize, c)

		sa, err := fasthgp.Anneal(h, fasthgp.AnnealOptions{Seed: int64(c)})
		if err != nil {
			log.Fatal(err)
		}
		report("Simulated annealing", sa.CutSize, c)

		_, rcut, err := fasthgp.RandomBisection(h, rng)
		if err != nil {
			log.Fatal(err)
		}
		report("Random bisection", rcut, c)
		fmt.Println()
	}
}

func report(name string, cut, planted int) {
	verdict := "stuck"
	if cut <= planted {
		verdict = "found the planted optimum"
	} else if cut <= 2*planted {
		verdict = "close"
	}
	fmt.Printf("  %-24s cut %4d  (%s)\n", name, cut, verdict)
}
