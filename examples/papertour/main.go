// Papertour walks the worked example of the paper's Section 2 (the
// Figure 4 netlist) through every stage of Algorithm I using only the
// public API, narrating what each step does. See cmd/paperfig for the
// per-figure reproduction with internal detail.
package main

import (
	"fmt"
	"log"
	"strings"

	"fasthgp"
)

// The reconstructed Section-2 netlist: 12 modules, signals a–l, two
// logical clusters joined only by signals c and h (see DESIGN.md §2).
const netlist = `
net a 1 2 11
net b 2 4 11
net c 1 3 4
net d 4 11 12
net e 3 6 7
net f 3 5 6
net g 5 9 10
net h 6 7 8 9
net i 1 8 12
net j 7 9 10
net k 2 8
net l 5 9
`

func main() {
	h, err := fasthgp.ReadNetlist(strings.NewReader(netlist))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("the Section-2 netlist: %d modules, %d signals\n\n", h.NumVertices(), h.NumEdges())

	fmt.Println("Step 1-2: build the intersection graph G (one vertex per signal),")
	fmt.Println("pick a random vertex, BFS to a furthest vertex, and cut G by a")
	fmt.Println("double BFS from that far-apart pair.")
	fmt.Println("Step 3: complete the bipartite boundary graph with Complete-Cut.")
	fmt.Println()

	res, err := fasthgp.Partition(h, fasthgp.Options{Starts: 8, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("result: cutsize %d — the paper's worked example also ends at 2,\n", res.CutSize)
	fmt.Println("with exactly the two cluster-spanning signals crossing:")
	for e := 0; e < h.NumEdges(); e++ {
		if crossed(h, res, e) {
			fmt.Printf("  signal %s crosses the cut\n", h.EdgeName(e))
		}
	}
	fmt.Println()
	var left, right []string
	for v := 0; v < h.NumVertices(); v++ {
		if res.Partition.Side(v) == fasthgp.Left {
			left = append(left, h.VertexName(v))
		} else {
			right = append(right, h.VertexName(v))
		}
	}
	fmt.Printf("final bipartition:\n  %v\n  %v\n", left, right)
	fmt.Printf("\nstats: |G| = %d vertices / %d edges, boundary set %d nets, BFS depth %d\n",
		res.Stats.GVertices, res.Stats.GEdges, res.Stats.BoundarySize, res.Stats.BFSDepth)
}

func crossed(h *fasthgp.Hypergraph, res *fasthgp.Result, e int) bool {
	sawL, sawR := false, false
	for _, v := range h.EdgePins(e) {
		switch res.Partition.Side(v) {
		case fasthgp.Left:
			sawL = true
		case fasthgp.Right:
			sawR = true
		}
	}
	return sawL && sawR
}
