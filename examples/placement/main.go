// Placement: the application the paper is written for. A std-cell
// netlist is placed on a slot grid by recursive min-cut bipartitioning
// (Breuer), with Algorithm I supplying each cut and FM refining it;
// quality is bounding-box wirelength (HPWL). Terminal propagation is
// compared against the plain recursion and a random placement.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"fasthgp"
)

func main() {
	rng := rand.New(rand.NewSource(7))
	h, err := fasthgp.GenerateProfile(fasthgp.ProfileConfig{
		Modules:    768,
		Signals:    1500,
		Technology: fasthgp.StdCell,
	}, rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("std-cell netlist: %d modules, %d nets, %d pins\n",
		h.NumVertices(), h.NumEdges(), h.NumPins())

	const rows, cols = 8, 8

	random, err := fasthgp.PlaceRandom(h, rows, cols, rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-28s HPWL %d\n", "random placement:", fasthgp.HPWL(h, random))

	plain, err := fasthgp.PlaceMinCut(h, fasthgp.PlaceOptions{Rows: rows, Cols: cols, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-28s HPWL %d\n", "min-cut placement:", fasthgp.HPWL(h, plain))

	tp, err := fasthgp.PlaceMinCut(h, fasthgp.PlaceOptions{
		Rows: rows, Cols: cols, Seed: 1, TerminalPropagation: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-28s HPWL %d\n", "min-cut + terminal prop.:", fasthgp.HPWL(h, tp))

	// A coarse picture: occupancy per slot of the terminal-propagation
	// placement.
	fmt.Println("\nslot occupancy (modules per slot):")
	occ := make([][]int, rows)
	for y := range occ {
		occ[y] = make([]int, cols)
	}
	for v := range tp.X {
		occ[tp.Y[v]][tp.X[v]]++
	}
	for y := 0; y < rows; y++ {
		for x := 0; x < cols; x++ {
			fmt.Printf("%4d", occ[y][x])
		}
		fmt.Println()
	}
}
