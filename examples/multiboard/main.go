// Multiboard: K-way partitioning for multi-board (or multi-FPGA)
// system decomposition — the "two-sided board technologies" setting the
// paper's introduction cites as a driver of min-cut partitioning. A PCB
// netlist is split across 2, 4 and 6 boards; the metrics that matter
// are cut nets (inter-board signals needing connectors) and the
// connectivity Σ(λ−1) (total connector pins), under per-board weight
// (area) balance. The multilevel bipartitioner is compared on the
// two-board case.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"fasthgp"
)

func main() {
	rng := rand.New(rand.NewSource(42))
	h, err := fasthgp.GenerateProfile(fasthgp.ProfileConfig{
		Modules:    600,
		Signals:    1300,
		Technology: fasthgp.PCB,
	}, rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("system netlist: %d modules, %d nets, total area %d\n\n",
		h.NumVertices(), h.NumEdges(), h.TotalVertexWeight())

	for _, k := range []int{2, 4, 6} {
		res, err := fasthgp.KWay(h, fasthgp.KWayOptions{K: k, Starts: 10, Seed: 1})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%d boards: %4d inter-board nets, %4d connector pins (sum lambda-1)\n",
			k, res.CutNets, res.Connectivity)
		fmt.Printf("  board areas:")
		for _, w := range res.PartWeights {
			fmt.Printf(" %d", w)
		}
		fmt.Println()
	}

	// Two-board case head-to-head: Algorithm I flat vs multilevel.
	fmt.Println("\ntwo-board comparison:")
	flat, err := fasthgp.Partition(h, fasthgp.Options{
		Starts: 50, Seed: 1, Threshold: 10,
		BalancedBFS: true, Completion: fasthgp.CompletionWeighted,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  Algorithm I (50 starts): cut %d, imbalance %d\n",
		flat.CutSize, fasthgp.Imbalance(h, flat.Partition))
	ml, err := fasthgp.Multilevel(h, fasthgp.MultilevelOptions{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  Multilevel:              cut %d, imbalance %d (levels %d)\n",
		ml.CutSize, fasthgp.Imbalance(h, ml.Partition), ml.Levels)
}
