// Quickstart: build a small netlist hypergraph, run Algorithm I, and
// inspect the resulting cut — the ten-line tour of the public API.
package main

import (
	"fmt"
	"log"

	"fasthgp"
)

func main() {
	// A netlist of 8 modules in two natural clusters {0..3} and {4..7},
	// tied together by a single bridge net.
	b := fasthgp.NewBuilder(8)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	b.AddEdge(0, 3)
	b.AddEdge(4, 5)
	b.AddEdge(5, 6)
	b.AddEdge(6, 7)
	b.AddEdge(4, 7)
	b.AddEdge(3, 4) // the bridge
	h, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	// Algorithm I: dualize to the intersection graph, cut it with a
	// double BFS along a pseudo-diameter, complete the boundary.
	res, err := fasthgp.Partition(h, fasthgp.Options{Starts: 10, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("cutsize: %d (expected 1: only the bridge crosses)\n", res.CutSize)
	fmt.Printf("boundary nets examined: %v\n", res.Boundary)
	for v := 0; v < h.NumVertices(); v++ {
		fmt.Printf("module %d → side %v\n", v, res.Partition.Side(v))
	}
	fmt.Printf("weight imbalance: %d\n", fasthgp.Imbalance(h, res.Partition))
}
