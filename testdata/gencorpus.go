// Command gencorpus regenerates the golden regression corpus in
// testdata/corpus/. Run it from the repository root:
//
//	go run testdata/gencorpus.go
//
// The corpus is deliberately frozen: every netlist comes from a fixed
// seed or a hand-built structure, so regenerating produces identical
// files. After changing the mix, re-bless the expectations with
//
//	go test -run TestGoldenCorpus -update .
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"

	"fasthgp/internal/gen"
	"fasthgp/internal/hypergraph"
	"fasthgp/internal/netio"
)

func main() {
	dir := filepath.Join("testdata", "corpus")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Fatal(err)
	}
	emitFixed := func(name string, h *hypergraph.Hypergraph, fixed []int8, err error) {
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		f, err := os.Create(filepath.Join(dir, name+".nets"))
		if err != nil {
			log.Fatal(err)
		}
		if err := netio.WriteFixed(f, h, fixed); err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s.nets: %v\n", name, h)
	}
	emit := func(name string, h *hypergraph.Hypergraph, err error) {
		emitFixed(name, h, nil, err)
	}

	// Hand-built structures: known optimal cuts, degenerate shapes.
	path := hypergraph.NewBuilder(24)
	for v := 0; v+1 < 24; v++ {
		path.AddEdge(v, v+1)
	}
	emit("path-24", path.MustBuild(), nil)

	cycle := hypergraph.NewBuilder(20)
	for v := 0; v < 20; v++ {
		cycle.AddEdge(v, (v+1)%20)
	}
	emit("cycle-20", cycle.MustBuild(), nil)

	star := hypergraph.NewBuilder(17)
	for v := 1; v < 17; v++ {
		star.AddEdge(0, v)
	}
	emit("star-17", star.MustBuild(), nil)

	bus := hypergraph.NewBuilder(18)
	for b := 0; b < 3; b++ {
		pins := make([]int, 6)
		for i := range pins {
			pins[i] = 6*b + i
		}
		bus.AddEdge(pins...)
		if b > 0 {
			bus.AddEdge(6*b-1, 6*b)
		}
	}
	emit("bus-18", bus.MustBuild(), nil)

	heavy := hypergraph.NewBuilder(12)
	for v := 0; v+1 < 12; v++ {
		heavy.AddEdge(v, v+1)
		heavy.SetVertexWeight(v, int64(1+v%4))
	}
	heavy.SetVertexWeight(11, 8)
	heavy.SetEdgeWeight(5, 3)
	emit("weighted-chain-12", heavy.MustBuild(), nil)

	// Random family: fixed seeds over a spread of sizes and densities.
	for _, rc := range []struct {
		name string
		n    int
		cfg  gen.RandomConfig
		seed int64
	}{
		{"rand-16-sparse", 16, gen.RandomConfig{NumEdges: 20, MaxEdgeSize: 3}, 101},
		{"rand-16-dense", 16, gen.RandomConfig{NumEdges: 40, MaxEdgeSize: 4}, 102},
		{"rand-20-sparse", 20, gen.RandomConfig{NumEdges: 26, MaxEdgeSize: 3}, 103},
		{"rand-20-wide", 20, gen.RandomConfig{NumEdges: 30, MinEdgeSize: 3, MaxEdgeSize: 6}, 104},
		{"rand-24-mid", 24, gen.RandomConfig{NumEdges: 36, MaxEdgeSize: 4}, 105},
		{"rand-28-sparse", 28, gen.RandomConfig{NumEdges: 34, MaxEdgeSize: 3}, 106},
	} {
		h, err := gen.Random(rc.n, rc.cfg, rand.New(rand.NewSource(rc.seed)))
		emit(rc.name, h, err)
	}

	// Planted family: instances with a known small bisection.
	for _, pc := range []struct {
		name string
		n    int
		cfg  gen.PlantedConfig
		seed int64
	}{
		{"planted-16-c2", 16, gen.PlantedConfig{CutSize: 2, IntraEdges: 20}, 201},
		{"planted-20-c3", 20, gen.PlantedConfig{CutSize: 3, IntraEdges: 26}, 202},
		{"planted-24-c2", 24, gen.PlantedConfig{CutSize: 2, IntraEdges: 32}, 203},
		{"planted-28-c4", 28, gen.PlantedConfig{CutSize: 4, IntraEdges: 38}, 204},
	} {
		h, _, err := gen.PlantedCut(pc.n, pc.cfg, rand.New(rand.NewSource(pc.seed)))
		emit(pc.name, h, err)
	}

	// Profile family: one small instance per technology row.
	for _, tc := range []struct {
		name string
		tech gen.Technology
		seed int64
	}{
		{"profile-pcb-30", gen.PCB, 301},
		{"profile-stdcell-30", gen.StdCell, 302},
		{"profile-gatearray-30", gen.GateArray, 303},
		{"profile-hybrid-30", gen.Hybrid, 304},
	} {
		h, err := gen.Profile(gen.ProfileConfig{Modules: 30, Signals: 36, Technology: tc.tech},
			rand.New(rand.NewSource(tc.seed)))
		emit(tc.name, h, err)
	}

	// Fixed-vertex family: the constrained rows of the golden matrix.
	// The golden test runs these under {ε=0.25, inline pins}; pins are
	// chosen to be jointly feasible under that bound.
	freeSlate := func(n int) []int8 {
		fx := make([]int8, n)
		for i := range fx {
			fx[i] = -1
		}
		return fx
	}

	// A path with its endpoints pinned apart: the optimum is unchanged,
	// so this row isolates the pin machinery from cut quality.
	fixPath := hypergraph.NewBuilder(22)
	for v := 0; v+1 < 22; v++ {
		fixPath.AddEdge(v, v+1)
	}
	fpx := freeSlate(22)
	fpx[0], fpx[21] = 0, 1
	emitFixed("fixed-path-22", fixPath.MustBuild(), fpx, nil)

	// A planted bisection with two pins per planted half — pins agree
	// with the planted optimum ([0,n/2) vs [n/2,n)).
	ph, _, err := gen.PlantedCut(20, gen.PlantedConfig{CutSize: 3, IntraEdges: 26},
		rand.New(rand.NewSource(205)))
	if err == nil {
		ppx := freeSlate(20)
		ppx[0], ppx[3] = 0, 0
		ppx[19], ppx[16] = 1, 1
		emitFixed("fixed-planted-20-c3", ph, ppx, nil)
	} else {
		log.Fatalf("fixed-planted-20-c3: %v", err)
	}

	// An adversarial random instance: pins scattered across the vertex
	// range, including neighbors pinned to opposite sides.
	rh, err := gen.Random(24, gen.RandomConfig{NumEdges: 36, MaxEdgeSize: 4},
		rand.New(rand.NewSource(107)))
	if err == nil {
		rpx := freeSlate(24)
		rpx[0], rpx[1] = 0, 1
		rpx[11], rpx[12] = 1, 0
		rpx[23] = 1
		emitFixed("fixed-rand-24", rh, rpx, nil)
	} else {
		log.Fatalf("fixed-rand-24: %v", err)
	}
}
