package fasthgp

// Golden regression corpus: every registry algorithm runs over the
// frozen netlists in testdata/corpus/ and its cutsize must match
// testdata/golden.json exactly. The engine guarantees determinism for a
// fixed (Starts, Seed) regardless of parallelism, so any mismatch is a
// real behavior change — a regression, or an intentional improvement to
// re-bless with
//
//	go test -run TestGoldenCorpus -update .
//
// The same run emits BENCH_verify.json (per-algorithm cutsizes over the
// corpus — fully deterministic, so the committed file only changes when
// behavior does) and BENCH_verify.timing.json (wall times; machine-
// dependent, gitignored) so successive commits leave a perf trail
// without wall-clock churn in the diff.

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"sort"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update", false, "re-bless testdata/golden.json from the current algorithms")

// goldenConfig is the frozen run configuration behind golden.json. Bump
// it only together with -update.
var goldenConfig = AlgoConfig{Starts: 6, Seed: 1, Parallelism: 2}

// goldenFile mirrors testdata/golden.json.
type goldenFile struct {
	// Config echoes the AlgoConfig the cuts were recorded under.
	Config struct {
		Starts int   `json:"starts"`
		Seed   int64 `json:"seed"`
	} `json:"config"`
	// Cuts maps instance name → algorithm name → cutsize.
	Cuts map[string]map[string]int `json:"cuts"`
}

// benchEntry is one BENCH_verify.json row. Everything here is a pure
// function of (corpus, goldenConfig): no timing, so the committed file
// is byte-stable across machines and runs.
type benchEntry struct {
	Algorithm string         `json:"algorithm"`
	TotalCut  int            `json:"total_cut"`
	Cuts      map[string]int `json:"cuts"`
}

// timingEntry is one BENCH_verify.timing.json row — the machine-
// dependent sidecar holding what used to churn the committed file.
type timingEntry struct {
	Algorithm string  `json:"algorithm"`
	WallMS    float64 `json:"wall_ms"`
}

// goldenEpsilon is the ε bound the fixed-vertex corpus rows run under;
// frozen together with goldenConfig (pins alone don't bound balance, so
// the constrained rows exercise both halves of the contract).
const goldenEpsilon = 0.25

// corpusInstance is one frozen netlist plus the balance contract its
// golden row is recorded under (zero for the unconstrained rows).
type corpusInstance struct {
	H          *Hypergraph
	Constraint Constraint
}

func corpusInstances(t *testing.T) map[string]corpusInstance {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join("testdata", "corpus", "*.nets"))
	if err != nil || len(paths) == 0 {
		t.Fatalf("no corpus netlists found: %v", err)
	}
	insts := make(map[string]corpusInstance, len(paths))
	for _, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			t.Fatal(err)
		}
		h, fixed, err := ReadNetlistFixed(f)
		f.Close()
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		var c Constraint
		if fixed != nil {
			c = Constraint{Epsilon: goldenEpsilon, FixedSide: fixed}
		}
		name := filepath.Base(p)
		insts[name[:len(name)-len(".nets")]] = corpusInstance{H: h, Constraint: c}
	}
	return insts
}

func TestGoldenCorpus(t *testing.T) {
	insts := corpusInstances(t)
	algos := Algorithms()

	// Run the full matrix, validating every result with the oracle.
	got := make(map[string]map[string]int, len(insts))
	for name := range insts {
		got[name] = make(map[string]int, len(algos))
	}
	bench := make([]benchEntry, 0, len(algos))
	timings := make([]timingEntry, 0, len(algos))
	names := make([]string, 0, len(insts))
	for name := range insts {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, a := range algos {
		entry := benchEntry{Algorithm: a.Name, Cuts: make(map[string]int, len(insts))}
		begin := time.Now()
		for _, name := range names {
			inst := insts[name]
			cfg := goldenConfig
			cfg.Constraint = inst.Constraint
			var cut int
			if inst.Constraint.IsZero() {
				cut = runAndCheck(t, a, inst.H, cfg)
			} else {
				cut = runAndCheckConstrained(t, a, inst.H, cfg)
			}
			got[name][a.Name] = cut
			entry.Cuts[name] = cut
			entry.TotalCut += cut
		}
		timings = append(timings, timingEntry{Algorithm: a.Name,
			WallMS: float64(time.Since(begin).Microseconds()) / 1000})
		bench = append(bench, entry)
	}

	// The perf trail is emitted on every full run, pass or fail: the
	// deterministic cuts in the committed file, the wall times in the
	// gitignored sidecar.
	writeJSON(t, "BENCH_verify.json", struct {
		Config  AlgoConfig   `json:"config"`
		Corpus  int          `json:"corpus_size"`
		Entries []benchEntry `json:"algorithms"`
	}{goldenConfig, len(insts), bench})
	writeJSON(t, "BENCH_verify.timing.json", struct {
		Corpus  int           `json:"corpus_size"`
		Entries []timingEntry `json:"algorithms"`
	}{len(insts), timings})

	goldenPath := filepath.Join("testdata", "golden.json")
	if *updateGolden {
		var g goldenFile
		g.Config.Starts = goldenConfig.Starts
		g.Config.Seed = goldenConfig.Seed
		g.Cuts = got
		writeJSON(t, goldenPath, &g)
		t.Logf("re-blessed %s: %d instances × %d algorithms", goldenPath, len(insts), len(algos))
		return
	}

	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing %s — run `go test -run TestGoldenCorpus -update .`: %v", goldenPath, err)
	}
	var want goldenFile
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatalf("%s: %v", goldenPath, err)
	}
	if want.Config.Starts != goldenConfig.Starts || want.Config.Seed != goldenConfig.Seed {
		t.Fatalf("golden.json recorded under Starts=%d/Seed=%d but the test now uses Starts=%d/Seed=%d; re-bless with -update",
			want.Config.Starts, want.Config.Seed, goldenConfig.Starts, goldenConfig.Seed)
	}
	for name, wantCuts := range want.Cuts {
		gotCuts, ok := got[name]
		if !ok {
			t.Errorf("golden instance %q has no corpus netlist — corpus and golden.json diverged", name)
			continue
		}
		for algo, w := range wantCuts {
			if g, ok := gotCuts[algo]; !ok {
				t.Errorf("%s: algorithm %q in golden.json is gone from the registry", name, algo)
			} else if g != w {
				t.Errorf("%s/%s: cut %d, golden %d — regression or unblessed improvement (re-bless with -update)",
					name, algo, g, w)
			}
		}
	}
	for name := range got {
		if _, ok := want.Cuts[name]; !ok {
			t.Errorf("corpus netlist %q missing from golden.json — re-bless with -update", name)
		}
	}
}

func writeJSON(t *testing.T, path string, v any) {
	t.Helper()
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}
