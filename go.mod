module fasthgp

go 1.22
