package fasthgp

// Differential suite for the V-cycle's flow-based refinement: the same
// multilevel run with flow disabled is exactly the historical flat
// multilevel pass, so comparing the two isolates what the corridor
// max-flow rounds buy. The suite proves three things: the V-cycle is
// never worse than the flat pass on the frozen golden corpus, it is
// strictly better in the median on curated generated families large
// enough to coarsen (the corpus netlists are 16–30 vertices, below the
// coarsening threshold, so flow has no corridor to work with there),
// and every refined cut still satisfies the balance contract and is
// independent of Parallelism.

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"fasthgp/internal/gen"
)

// vcycleDiffOptions is the frozen run configuration of the suite —
// deterministic, so the comparisons never flake.
func vcycleDiffOptions(seed int64, flat bool) MultilevelOptions {
	return MultilevelOptions{
		Starts:        2,
		InitialStarts: 4,
		Seed:          seed,
		Parallelism:   1,
		DisableFlow:   flat,
	}
}

type vcycleDiffInstance struct {
	name string
	h    *Hypergraph
	c    Constraint
}

// vcycleHeadroomFamilies are power-law netlists — the huge-instance
// shape this PR targets, and the one where FM-only uncoarsening leaves
// real headroom for the corridor max-flow rounds to claim. The strict
// median-improvement gate runs over these.
func vcycleHeadroomFamilies(t *testing.T) []vcycleDiffInstance {
	t.Helper()
	var insts []vcycleDiffInstance
	for _, seed := range []int64{3, 5, 9} {
		rng := rand.New(rand.NewSource(seed))
		h, err := gen.PowerLaw(1500, gen.PowerLawConfig{NumEdges: 2200}, rng)
		if err != nil {
			t.Fatalf("powerlaw seed %d: %v", seed, err)
		}
		insts = append(insts, vcycleDiffInstance{name: fmt.Sprintf("powerlaw-1500-s%d", seed), h: h})
	}
	return insts
}

// vcycleDiffFamilies are curated generated instances big enough to
// build a real contraction hierarchy: power-law netlists (the huge-
// instance shape), planted cuts (instances whose optimum is known and
// already reached by FM — flow must preserve it, not disturb it), and
// circuit profiles.
func vcycleDiffFamilies(t *testing.T) []vcycleDiffInstance {
	t.Helper()
	insts := vcycleHeadroomFamilies(t)
	add := func(name string, h *Hypergraph, err error) {
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		insts = append(insts, vcycleDiffInstance{name: name, h: h})
	}
	for _, seed := range []int64{3, 5} {
		rng := rand.New(rand.NewSource(seed))
		h, _, err := GeneratePlanted(600, PlantedConfig{CutSize: 12, IntraEdges: 900}, rng)
		add(fmt.Sprintf("planted-600-s%d", seed), h, err)
	}
	rng := rand.New(rand.NewSource(7))
	h, err := GenerateProfile(ProfileConfig{Modules: 800, Signals: 1200, Technology: StdCell}, rng)
	add("profile-stdcell-800", h, err)
	return insts
}

// TestVCycleNeverWorseThanFlat runs every golden-corpus instance and
// every curated family through the V-cycle and the flat pass and
// requires cut(vcycle) ≤ cut(flat), with the refined partition passing
// the constraint oracle.
func TestVCycleNeverWorseThanFlat(t *testing.T) {
	corpus := corpusInstances(t)
	names := make([]string, 0, len(corpus))
	for name := range corpus {
		names = append(names, name)
	}
	sort.Strings(names)
	insts := make([]vcycleDiffInstance, 0, len(corpus)+8)
	for _, name := range names {
		inst := corpus[name]
		insts = append(insts, vcycleDiffInstance{name: name, h: inst.H, c: inst.Constraint})
	}
	insts = append(insts, vcycleDiffFamilies(t)...)

	for _, inst := range insts {
		opts := vcycleDiffOptions(1, false)
		opts.Constraint = inst.c
		vres, err := Multilevel(inst.h, opts)
		if err != nil {
			t.Fatalf("%s: vcycle: %v", inst.name, err)
		}
		flatOpts := vcycleDiffOptions(1, true)
		flatOpts.Constraint = inst.c
		fres, err := Multilevel(inst.h, flatOpts)
		if err != nil {
			t.Fatalf("%s: flat: %v", inst.name, err)
		}
		if vres.CutSize > fres.CutSize {
			t.Errorf("%s: vcycle cut %d worse than flat %d", inst.name, vres.CutSize, fres.CutSize)
		}
		if _, err := VerifyConstraint(inst.h, vres.Partition, inst.c); err != nil {
			t.Errorf("%s: refined cut violates constraint: %v", inst.name, err)
		}
		if _, err := VerifyCut(inst.h, vres.Partition, vres.CutSize); err != nil {
			t.Errorf("%s: claimed cut wrong: %v", inst.name, err)
		}
	}
}

// TestVCycleBeatsFlatMedian requires a strict median improvement over
// the power-law headroom families — instances that coarsen into a real
// hierarchy and whose FM-only cuts sit above the flow optimum. This is
// the headline claim of the flow-refinement work: where headroom
// exists, the corridor max-flow rounds claim it; where it doesn't
// (tiny corpus netlists, planted optima), TestVCycleNeverWorseThanFlat
// pins the tie.
func TestVCycleBeatsFlatMedian(t *testing.T) {
	insts := vcycleHeadroomFamilies(t)
	gains := make([]int, 0, len(insts))
	for _, inst := range insts {
		vres, err := Multilevel(inst.h, vcycleDiffOptions(1, false))
		if err != nil {
			t.Fatalf("%s: vcycle: %v", inst.name, err)
		}
		fres, err := Multilevel(inst.h, vcycleDiffOptions(1, true))
		if err != nil {
			t.Fatalf("%s: flat: %v", inst.name, err)
		}
		t.Logf("%s: vcycle %d flat %d", inst.name, vres.CutSize, fres.CutSize)
		gains = append(gains, fres.CutSize-vres.CutSize)
	}
	sort.Ints(gains)
	if median := gains[len(gains)/2]; median <= 0 {
		t.Errorf("median gain over flat multilevel is %d; want > 0 (gains %v)", median, gains)
	}
}

// TestVCycleParallelismInvariance pins the engine contract on the
// refined pipeline: identical sides and counters at Parallelism 1 and
// 4 for seeds {1, 7, 42}.
func TestVCycleParallelismInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	h, err := gen.PowerLaw(1500, gen.PowerLawConfig{NumEdges: 2200}, rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, seed := range []int64{1, 7, 42} {
		serialOpts := vcycleDiffOptions(seed, false)
		serial, err := Multilevel(h, serialOpts)
		if err != nil {
			t.Fatal(err)
		}
		parOpts := vcycleDiffOptions(seed, false)
		parOpts.Parallelism = 4
		par, err := Multilevel(h, parOpts)
		if err != nil {
			t.Fatal(err)
		}
		if serial.CutSize != par.CutSize {
			t.Fatalf("seed %d: cut %d (serial) != %d (parallel)", seed, serial.CutSize, par.CutSize)
		}
		if serial.VCycle != par.VCycle {
			t.Fatalf("seed %d: vcycle stats diverge: %+v vs %+v", seed, serial.VCycle, par.VCycle)
		}
		s, p := serial.Partition.Sides(), par.Partition.Sides()
		for v := range s {
			if s[v] != p[v] {
				t.Fatalf("seed %d: side of vertex %d differs", seed, v)
			}
		}
	}
}
