package fasthgp

// Constrained differential suite: every registry algorithm runs under
// the unified balance contract — ε-imbalance bounds, fixed vertices,
// and both together — and is checked against two referees: the
// constraint-aware invariant oracle (verify.CheckConstraint: valid
// partition, every pinned vertex on its pinned side, both sides within
// the ε bound) and the constrained bruteforce enumerator (no heuristic
// may beat the true constrained optimum).

import (
	"context"
	"testing"

	"fasthgp/internal/bruteforce"
	"fasthgp/internal/verify"
)

// constraintScenarios builds the contract variants exercised per
// instance: ε only, fixed only, and both. Fixed pins vertex 0 Left and
// vertex n−1 Right — compatible with every instance family (and with
// the planted optimum, which splits [0, n/2) from [n/2, n)).
func constraintScenarios(n int) []struct {
	Name string
	C    Constraint
} {
	fixed := make([]int8, n)
	for i := range fixed {
		fixed[i] = FreeVertex
	}
	fixed[0] = 0
	fixed[n-1] = 1
	return []struct {
		Name string
		C    Constraint
	}{
		{"eps-0.2", Constraint{Epsilon: 0.2}},
		{"fixed-ends", Constraint{FixedSide: fixed}},
		{"eps-0.3+fixed", Constraint{Epsilon: 0.3, FixedSide: fixed}},
	}
}

// runAndCheckConstrained executes one registry algorithm under c and
// pushes the result through the constraint oracle.
func runAndCheckConstrained(t *testing.T, a Algorithm, h *Hypergraph, cfg AlgoConfig) int {
	t.Helper()
	res, err := a.Run(context.Background(), h, cfg)
	if err != nil {
		t.Fatalf("%s failed: %v", a.Name, err)
	}
	if _, err := verify.CheckCut(h, res.Partition, res.CutSize); err != nil {
		t.Fatalf("%s produced an invalid result: %v", a.Name, err)
	}
	if _, err := verify.CheckConstraint(h, res.Partition, cfg.Constraint); err != nil {
		t.Fatalf("%s violated the constraint: %v", a.Name, err)
	}
	return res.CutSize
}

// TestDifferentialConstrained runs the whole registry over small
// instances under every constraint scenario: results must satisfy the
// contract exactly and never beat the constrained bruteforce optimum.
func TestDifferentialConstrained(t *testing.T) {
	algos := Algorithms()
	for _, inst := range verify.SmallInstances() {
		n := inst.H.NumVertices()
		if n < 4 || n > 14 {
			continue // keep the 2^n enumeration cheap
		}
		for _, sc := range constraintScenarios(n) {
			_, optimum, err := bruteforce.MinCutConstrained(inst.H, sc.C)
			if err != nil {
				t.Fatalf("%s/%s: bruteforce: %v", inst.Name, sc.Name, err)
			}
			for _, a := range algos {
				cfg := diffConfig
				cfg.Constraint = sc.C
				cut := runAndCheckConstrained(t, a, inst.H, cfg)
				if cut < optimum {
					t.Errorf("%s on %s/%s: cut %d below the constrained optimum %d",
						a.Name, inst.Name, sc.Name, cut, optimum)
				}
			}
		}
	}
}

// TestDifferentialConstrainedPlanted extends the planted family with
// fixed vertices pinned to opposite planted halves: the constrained
// optimum (certified by bruteforce) still equals the planted cut, and
// every algorithm must stay valid, pinned, and at-or-above it.
func TestDifferentialConstrainedPlanted(t *testing.T) {
	algos := Algorithms()
	for _, inst := range verify.PlantedInstances() {
		n := inst.H.NumVertices()
		if n > 14 {
			continue // full 2^n enumeration (no symmetry halving with pins)
		}
		fixed := make([]int8, n)
		for i := range fixed {
			fixed[i] = FreeVertex
		}
		fixed[0] = 0
		fixed[n-1] = 1
		c := Constraint{Epsilon: 0.25, FixedSide: fixed}
		_, optimum, err := bruteforce.MinCutConstrained(inst.H, c)
		if err != nil {
			t.Fatalf("%s: bruteforce: %v", inst.Name, err)
		}
		if optimum != inst.Cut {
			t.Fatalf("%s: constrained optimum %d differs from planted cut %d — pins chosen badly",
				inst.Name, optimum, inst.Cut)
		}
		for _, a := range algos {
			cfg := diffConfig
			cfg.Constraint = c
			cut := runAndCheckConstrained(t, a, inst.H, cfg)
			if cut < optimum {
				t.Errorf("%s on %s: cut %d below the certified constrained optimum %d",
					a.Name, inst.Name, cut, optimum)
			}
		}
	}
}

// TestConstrainedFixedNeverMoved replays every algorithm across several
// seeds on one instance and asserts the pinned vertices sit on their
// pinned sides in every single result — not just the winning seed.
func TestConstrainedFixedNeverMoved(t *testing.T) {
	insts := verify.SmallInstances()
	var h *Hypergraph
	for _, inst := range insts {
		if inst.Name == "bridged-12" {
			h = inst.H
		}
	}
	if h == nil {
		t.Fatal("bridged-12 instance missing")
	}
	n := h.NumVertices()
	fixed := make([]int8, n)
	for i := range fixed {
		fixed[i] = FreeVertex
	}
	// Pin adversarially: one vertex of each clique to the OTHER side,
	// so every algorithm is tempted to move them back.
	fixed[1] = 1
	fixed[n-2] = 0
	c := Constraint{Epsilon: 0.2, FixedSide: fixed}
	for _, a := range Algorithms() {
		for seed := int64(1); seed <= 5; seed++ {
			res, err := a.Run(context.Background(), h, AlgoConfig{Starts: 3, Seed: seed, Parallelism: 2, Constraint: c})
			if err != nil {
				t.Fatalf("%s seed %d: %v", a.Name, seed, err)
			}
			if res.Partition.Side(1) != Right || res.Partition.Side(n-2) != Left {
				t.Errorf("%s seed %d moved a fixed vertex: v1=%v v%d=%v",
					a.Name, seed, res.Partition.Side(1), n-2, res.Partition.Side(n-2))
			}
			if _, err := verify.CheckConstraint(h, res.Partition, c); err != nil {
				t.Errorf("%s seed %d: %v", a.Name, seed, err)
			}
		}
	}
}

// TestConstrainedParallelismInvariance is the determinism contract on
// constrained runs: the worker count — and nothing else — changes, and
// the result must be bit-for-bit identical.
func TestConstrainedParallelismInvariance(t *testing.T) {
	algos := Algorithms()
	insts := verify.SmallInstances()
	for _, inst := range insts[:6] {
		n := inst.H.NumVertices()
		if n < 4 {
			continue
		}
		for _, sc := range constraintScenarios(n) {
			for _, a := range algos {
				cfg := AlgoConfig{Starts: 5, Seed: 9, Parallelism: 1, Constraint: sc.C}
				serial, err := a.Run(context.Background(), inst.H, cfg)
				if err != nil {
					t.Fatalf("%s on %s/%s: %v", a.Name, inst.Name, sc.Name, err)
				}
				cfg.Parallelism = 8
				wide, err := a.Run(context.Background(), inst.H, cfg)
				if err != nil {
					t.Fatalf("%s on %s/%s: %v", a.Name, inst.Name, sc.Name, err)
				}
				if serial.CutSize != wide.CutSize || serial.Engine.BestStart != wide.Engine.BestStart {
					t.Errorf("%s on %s/%s: parallelism changed the result: cut %d@%d vs %d@%d",
						a.Name, inst.Name, sc.Name, serial.CutSize, serial.Engine.BestStart,
						wide.CutSize, wide.Engine.BestStart)
				}
				for v := 0; v < n; v++ {
					if serial.Partition.Side(v) != wide.Partition.Side(v) {
						t.Errorf("%s on %s/%s: vertex %d side differs across parallelism",
							a.Name, inst.Name, sc.Name, v)
						break
					}
				}
			}
		}
	}
}
