package fasthgp

// Intra-start determinism contract, asserted through the public facade:
// KernelWorkers — the worker count inside a single start (sharded
// intersection-graph construction, frontier-chunked double BFS) — must
// never change any observable output. For every registry algorithm,
// every instance family, every seed and every worker count the Result
// must be bit-identical to the serial run: same cut, same side for
// every vertex, same winning start index, same starts run. This mirrors
// the engine-level Parallelism contract in fasthgp_parallel_test.go one
// layer down.

import (
	"context"
	"runtime"
	"testing"
	"time"

	"fasthgp/internal/verify"
)

// intrastartSeeds and intrastartWorkers span the contract matrix. The
// first worker count is the serial baseline the others are held to.
var (
	intrastartSeeds   = []int64{1, 7, 42}
	intrastartWorkers = []int{1, 2, 4, 8}
)

// intrastartOutcome runs one algorithm at the given kernel-worker count
// and projects the result to its comparable form.
func intrastartOutcome(t *testing.T, a Algorithm, h *Hypergraph, cfg AlgoConfig) algoOutcome {
	t.Helper()
	res, err := a.Run(context.Background(), h, cfg)
	if err != nil {
		t.Fatalf("%s (seed %d, kernel workers %d): %v", a.Name, cfg.Seed, cfg.KernelWorkers, err)
	}
	return outcomeOf(h, res.Partition, res.CutSize, res.Engine)
}

// checkWorkersInvariant asserts that every worker count in the matrix
// reproduces the serial outcome exactly on h.
func checkWorkersInvariant(t *testing.T, a Algorithm, name string, h *Hypergraph, cfg AlgoConfig) {
	t.Helper()
	var serial algoOutcome
	for i, w := range intrastartWorkers {
		cfg.KernelWorkers = w
		got := intrastartOutcome(t, a, h, cfg)
		if i == 0 {
			serial = got
			continue
		}
		if got != serial {
			t.Errorf("%s on %s seed %d: kernel workers %d diverged from serial:\n  serial  cut %d best %d/%d\n  workers cut %d best %d/%d\n  sides equal: %v",
				a.Name, name, cfg.Seed, w,
				serial.cut, serial.bestStart, serial.startsRun,
				got.cut, got.bestStart, got.startsRun,
				got.sides == serial.sides)
		}
	}
}

// TestIntraStartWorkersProfileNetlist is the production-shaped check:
// a ~300-module standard-cell profile instance, large enough that the
// sharded dual-graph construction actually engages (hundreds of
// G-vertices), for every registry algorithm and seed.
func TestIntraStartWorkersProfileNetlist(t *testing.T) {
	for _, a := range runners(t) {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			for _, seed := range intrastartSeeds {
				h := testNetlist(t, seed)
				starts := 4
				if a.Name == "flow" {
					starts = 2 // max-flow pairs are the priciest start
				}
				checkWorkersInvariant(t, a, "profile-300", h,
					AlgoConfig{Starts: starts, Seed: seed, Parallelism: 2})
			}
		})
	}
}

// TestIntraStartWorkersCurated sweeps the shared curated small-instance
// family: every boundary shape the double BFS and the sharded build can
// hit on tiny graphs (paths, cycles, stars, cliques, bridges,
// disconnected and planted generator outputs).
func TestIntraStartWorkersCurated(t *testing.T) {
	insts := verify.SmallInstances()
	seeds := intrastartSeeds
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, a := range runners(t) {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			for _, inst := range insts {
				for _, seed := range seeds {
					checkWorkersInvariant(t, a, inst.Name, inst.H,
						AlgoConfig{Starts: 4, Seed: seed, Parallelism: 2})
				}
			}
		})
	}
}

// TestIntraStartWorkersExhaustive sweeps every nonempty 2-uniform
// hypergraph on four labeled vertices — all 63 labeled graphs — so no
// tiny boundary shape escapes the matrix.
func TestIntraStartWorkersExhaustive(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive family is slow under -short")
	}
	insts := verify.ExhaustiveUniform(4, 2)
	for _, a := range runners(t) {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			for _, inst := range insts {
				for _, seed := range intrastartSeeds {
					checkWorkersInvariant(t, a, inst.Name, inst.H,
						AlgoConfig{Starts: 2, Seed: seed, Parallelism: 2})
				}
			}
		})
	}
}

// TestIntraStartWorkersPlanted covers the certified planted-cut family
// and additionally holds Algorithm I to the paper's optimality claim at
// every worker count: the kernels may never cost it the planted cut.
func TestIntraStartWorkersPlanted(t *testing.T) {
	insts := verify.PlantedInstances()
	for _, a := range runners(t) {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			for _, inst := range insts {
				for _, seed := range intrastartSeeds {
					cfg := AlgoConfig{Starts: 4, Seed: seed, Parallelism: 2}
					if a.Name == "algo1" {
						cfg.Starts = 32
					}
					checkWorkersInvariant(t, a, inst.Name, inst.H, cfg)
					if a.Name == "algo1" {
						cfg.KernelWorkers = 8
						res, err := a.Run(context.Background(), inst.H, cfg)
						if err != nil {
							t.Fatalf("algo1 on %s: %v", inst.Name, err)
						}
						if res.CutSize != inst.Cut {
							t.Errorf("algo1 on %s with 8 kernel workers: cut %d, want the certified optimum %d",
								inst.Name, res.CutSize, inst.Cut)
						}
					}
				}
			}
		})
	}
}

// TestIntraStartOversubscribed pins GOMAXPROCS to 2 and demands 16
// kernel workers on top of engine-level fan-out — far more goroutines
// than processors — and still requires the serial result bit-for-bit.
// Under -race this is the schedule-perturbation stress for the chunked
// BFS merge and the sharded two-pass build.
func TestIntraStartOversubscribed(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(2))
	for _, name := range []string{"algo1", "multilevel"} {
		a, ok := findAlgorithm(name)
		if !ok {
			t.Fatalf("registry is missing %q", name)
		}
		t.Run(name, func(t *testing.T) {
			h := testNetlist(t, 7)
			serial := intrastartOutcome(t, a, h,
				AlgoConfig{Starts: 4, Seed: 7, Parallelism: 4, KernelWorkers: 1})
			wide := intrastartOutcome(t, a, h,
				AlgoConfig{Starts: 4, Seed: 7, Parallelism: 4, KernelWorkers: 16})
			if wide != serial {
				t.Errorf("oversubscribed run diverged: serial cut %d best %d, wide cut %d best %d, sides equal %v",
					serial.cut, serial.bestStart, wide.cut, wide.bestStart, wide.sides == serial.sides)
			}
		})
	}
}

// TestIntraStartCancellationMidRun expires the context while parallel
// kernels are in flight: the engine must still return a valid
// best-so-far result and leave no goroutines behind — worker pools
// must not leak on the cancellation path.
func TestIntraStartCancellationMidRun(t *testing.T) {
	a, ok := findAlgorithm("algo1")
	if !ok {
		t.Fatal("registry is missing algo1")
	}
	h := testNetlist(t, 1)
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	res, err := a.Run(ctx, h, AlgoConfig{Starts: 200, Seed: 1, Parallelism: 2, KernelWorkers: 8})
	cancel()
	if err != nil {
		t.Fatalf("cancelled run must return best-so-far, got: %v", err)
	}
	if res.Partition == nil {
		t.Fatal("cancelled run returned no partition")
	}
	if got := CutSize(h, res.Partition); got != res.CutSize {
		t.Errorf("reported cut %d, actual %d", res.CutSize, got)
	}
	if res.Engine.StartsRun < 1 {
		t.Errorf("StartsRun = %d, want >= 1 (start 0 always runs)", res.Engine.StartsRun)
	}

	// Kernel goroutines are pooled per call, not per process: shortly
	// after Run returns, the goroutine count must settle back.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// findAlgorithm looks an entry up in the registry by name.
func findAlgorithm(name string) (Algorithm, bool) {
	for _, a := range Algorithms() {
		if a.Name == name {
			return a, true
		}
	}
	return Algorithm{}, false
}
