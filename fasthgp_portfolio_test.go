package fasthgp

import (
	"context"
	"errors"
	"testing"
	"time"

	"fasthgp/internal/faultinject"
	"fasthgp/internal/resilience"
)

func TestPartitionPortfolioHappyPath(t *testing.T) {
	h := testNetlist(t, 3)
	res, err := PartitionPortfolio(context.Background(), h,
		WithBudget(30*time.Second), WithStarts(4), WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	if res.Tier != 0 || res.TierName != "multilevel" || res.Degraded {
		t.Errorf("tier/name/degraded = %d/%s/%v, want 0/multilevel/false", res.Tier, res.TierName, res.Degraded)
	}
	if _, err := VerifyCut(h, res.Partition, res.CutSize); err != nil {
		t.Fatalf("portfolio result fails the oracle: %v", err)
	}
}

func TestPartitionPortfolioChainAliases(t *testing.T) {
	h := testNetlist(t, 1)
	res, err := PartitionPortfolio(context.Background(), h,
		WithChain("core"), WithStarts(2)) // "core" aliases algo1
	if err != nil {
		t.Fatal(err)
	}
	if res.TierName != "algo1" {
		t.Errorf("TierName = %s, want algo1", res.TierName)
	}
	if _, err := PartitionPortfolio(context.Background(), h, WithChain("no-such-algo")); err == nil {
		t.Error("unknown chain name accepted")
	}
}

// TestPartitionPortfolioDegradesUnderCorruption: injected corruption
// invalidates every tier-0 candidate at the oracle gate, so the chain
// must fall back to tier 1 and still return a certified cut.
func TestPartitionPortfolioDegradesUnderCorruption(t *testing.T) {
	plan, err := faultinject.ParseSpec("corrupt@portfolio.tier:0")
	if err != nil {
		t.Fatal(err)
	}
	defer faultinject.Install(plan)()
	h := testNetlist(t, 5)
	res, err := PartitionPortfolio(context.Background(), h, WithStarts(2), WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	if res.Tier != 1 || res.TierName != "fm" || !res.Degraded {
		t.Errorf("tier/name/degraded = %d/%s/%v, want 1/fm/true", res.Tier, res.TierName, res.Degraded)
	}
	if !errors.Is(res.Tiers[0].Err, resilience.ErrInvalidResult) {
		t.Errorf("tier 0 err = %v, want ErrInvalidResult", res.Tiers[0].Err)
	}
	if _, err := VerifyCut(h, res.Partition, res.CutSize); err != nil {
		t.Fatalf("degraded result fails the oracle: %v", err)
	}
}

// TestRegistryRecoverBoundary: a panic raised before any engine start
// (here: a nil hypergraph dereferenced in setup) must come back as a
// typed *PartitionError from every registry algorithm, never crash.
func TestRegistryRecoverBoundary(t *testing.T) {
	for _, a := range Algorithms() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			_, err := a.Run(context.Background(), nil, AlgoConfig{Starts: 1, Seed: 1})
			if err == nil {
				t.Fatal("nil hypergraph succeeded?")
			}
			var pe *PartitionError
			if !errors.As(err, &pe) {
				t.Fatalf("err = %v (%T), want *PartitionError", err, err)
			}
			if pe.Algorithm != a.Name {
				t.Errorf("PartitionError.Algorithm = %q, want %q", pe.Algorithm, a.Name)
			}
		})
	}
}

// TestEngineStartPanicSurfacesInStats: an injected panic at one engine
// start of a registry run degrades the run and is reported in
// EngineStats.Failures as a *PartitionError.
func TestEngineStartPanicSurfacesInStats(t *testing.T) {
	plan, err := faultinject.ParseSpec("panic@engine.start:1")
	if err != nil {
		t.Fatal(err)
	}
	defer faultinject.Install(plan)()
	h := testNetlist(t, 2)
	res, err := FM(h, FMOptions{Starts: 4, Seed: 2})
	if err != nil {
		t.Fatalf("degraded run errored: %v", err)
	}
	if res.Engine.StartsFailed != 1 || len(res.Engine.Failures) != 1 {
		t.Fatalf("StartsFailed/Failures = %d/%d, want 1/1", res.Engine.StartsFailed, len(res.Engine.Failures))
	}
	var pe *PartitionError
	if !errors.As(res.Engine.Failures[0], &pe) || pe.Start != 1 || pe.Algorithm != "fm" {
		t.Errorf("failure = %v, want fm start 1", res.Engine.Failures[0])
	}
	if _, err := VerifyCut(h, res.Partition, res.CutSize); err != nil {
		t.Fatalf("degraded result fails the oracle: %v", err)
	}
}
