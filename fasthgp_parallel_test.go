package fasthgp

// Determinism contract of the multi-start engine, asserted through the
// public facade: for every algorithm, the Result at Parallelism 1 and
// Parallelism 8 must be identical — same cut, same side for every
// vertex, same winning start — at several seeds. Plus the cancellation
// contract: an expired context yields the best-so-far result, not an
// error, and leaves no goroutines behind.

import (
	"context"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"fasthgp/internal/gen"
)

// parallelTestSeeds are the seeds every algorithm is checked at.
var parallelTestSeeds = []int64{1, 7, 42}

// testNetlist builds a deterministic ~300-module profile instance.
func testNetlist(t *testing.T, seed int64) *Hypergraph {
	t.Helper()
	h, err := gen.Profile(gen.ProfileConfig{Modules: 300, Signals: 600, Technology: gen.StdCell},
		rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// algoOutcome is the comparable projection of one run.
type algoOutcome struct {
	cut       int
	sides     string
	bestStart int
	startsRun int
}

func outcomeOf(h *Hypergraph, p *Bipartition, cut int, es EngineStats) algoOutcome {
	sides := make([]byte, h.NumVertices())
	for v := range sides {
		switch p.Side(v) {
		case Left:
			sides[v] = 'L'
		case Right:
			sides[v] = 'R'
		default:
			sides[v] = '?'
		}
	}
	return algoOutcome{cut: cut, sides: string(sides), bestStart: es.BestStart, startsRun: es.StartsRun}
}

// runners enumerates every engine-backed bipartitioner through the
// uniform registry interface.
func runners(t *testing.T) []Algorithm {
	t.Helper()
	algos := Algorithms()
	if len(algos) < 8 {
		t.Fatalf("Algorithms() = %d entries, want >= 8", len(algos))
	}
	return algos
}

func TestParallelismDoesNotChangeResult(t *testing.T) {
	for _, a := range runners(t) {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			for _, seed := range parallelTestSeeds {
				h := testNetlist(t, seed)
				starts := 6
				if a.Name == "flow" {
					starts = 3 // max-flow pairs are the priciest start
				}
				var serial algoOutcome
				for i, par := range []int{1, 8} {
					res, err := a.Run(context.Background(), h, AlgoConfig{Starts: starts, Seed: seed, Parallelism: par})
					if err != nil {
						t.Fatalf("seed %d parallelism %d: %v", seed, par, err)
					}
					got := outcomeOf(h, res.Partition, res.CutSize, res.Engine)
					if got.startsRun != starts {
						t.Fatalf("seed %d parallelism %d: ran %d starts, want %d", seed, par, got.startsRun, starts)
					}
					if i == 0 {
						serial = got
						continue
					}
					if got != serial {
						t.Errorf("seed %d: parallel result differs from serial:\n  serial   cut %d best %d\n  parallel cut %d best %d\n  sides equal: %v",
							seed, serial.cut, serial.bestStart, got.cut, got.bestStart, got.sides == serial.sides)
					}
				}
			}
		})
	}
}

func TestKWayParallelismDoesNotChangeResult(t *testing.T) {
	// KWay is recursive rather than engine-fanned, but its Parallelism
	// knob must still never change the labeling.
	for _, seed := range parallelTestSeeds {
		h := testNetlist(t, seed)
		var serial []int
		for _, par := range []int{1, 8} {
			res, err := KWay(h, KWayOptions{K: 4, Seed: seed, Parallelism: par})
			if err != nil {
				t.Fatalf("seed %d parallelism %d: %v", seed, par, err)
			}
			if serial == nil {
				serial = res.Part
				continue
			}
			for v := range serial {
				if res.Part[v] != serial[v] {
					t.Fatalf("seed %d: part[%d] = %d at parallelism 8, %d at 1", seed, v, res.Part[v], serial[v])
				}
			}
		}
	}
}

func TestCancellationReturnsBestSoFar(t *testing.T) {
	h := testNetlist(t, 1)
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // expired before the run even begins

	for _, a := range runners(t) {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			res, err := a.Run(ctx, h, AlgoConfig{Starts: 8, Seed: 1, Parallelism: 4})
			if err != nil {
				t.Fatalf("cancelled run must return best-so-far, got error: %v", err)
			}
			if res.Partition == nil {
				t.Fatal("cancelled run returned no partition")
			}
			if got := CutSize(h, res.Partition); got != res.CutSize {
				t.Errorf("reported cut %d, actual %d", res.CutSize, got)
			}
			if res.Engine.StartsRun < 1 {
				t.Errorf("StartsRun = %d, want >= 1 (start 0 always runs)", res.Engine.StartsRun)
			}
			if res.Engine.StartsRun >= res.Engine.StartsRequested {
				t.Errorf("StartsRun = %d of %d: pre-cancelled run should stop early", res.Engine.StartsRun, res.Engine.StartsRequested)
			}
			if !res.Engine.Cancelled {
				t.Error("Engine.Cancelled = false on a cancelled run")
			}
		})
	}

	// All engine workers must have exited: poll briefly, since worker
	// teardown is asynchronous with Run returning.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if runtime.NumGoroutine() <= before {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestTimeoutMidRunKeepsBest(t *testing.T) {
	// A deadline that expires mid-run: the engine must return the best
	// of whatever completed, deterministically over that subset.
	h := testNetlist(t, 7)
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	res, err := AnnealCtx(ctx, h, AnnealOptions{Starts: 50, Seed: 7, Parallelism: 2})
	if err != nil {
		t.Fatalf("timed-out run must return best-so-far, got: %v", err)
	}
	if res.Partition == nil || res.CutSize != CutSize(h, res.Partition) {
		t.Fatal("timed-out run returned an inconsistent result")
	}
	if res.Engine.StartsRun < 1 {
		t.Errorf("StartsRun = %d, want >= 1", res.Engine.StartsRun)
	}
}
