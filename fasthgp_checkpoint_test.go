package fasthgp

import (
	"context"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// checkpointTestHypergraph builds a small instance every registry
// algorithm handles (connected, ≥ 2 vertices, non-trivial cuts).
func checkpointTestHypergraph(t *testing.T) *Hypergraph {
	t.Helper()
	b := NewBuilder(10)
	edges := [][]int{
		{0, 1, 2}, {2, 3}, {3, 4, 5}, {5, 6}, {6, 7, 8}, {8, 9}, {0, 9}, {1, 4, 7},
	}
	for _, e := range edges {
		b.AddEdge(e...)
	}
	h, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// TestPartitionCheckpointedMatchesPlain runs every registry algorithm
// twice — plain and checkpointed — and requires identical partitions,
// then resumes the finished journal and requires the identical result
// again without running a single start.
func TestPartitionCheckpointedMatchesPlain(t *testing.T) {
	h := checkpointTestHypergraph(t)
	ctx := context.Background()
	for _, alg := range Algorithms() {
		alg := alg
		t.Run(alg.Name, func(t *testing.T) {
			cfg := AlgoConfig{Starts: 4, Seed: 7}
			plain, err := alg.Run(ctx, h, cfg)
			if err != nil {
				t.Fatal(err)
			}
			path := filepath.Join(t.TempDir(), "run.ckpt")
			got, err := PartitionCheckpointed(ctx, h, alg.Name, cfg, path, false)
			if err != nil {
				t.Fatal(err)
			}
			if got.CutSize != plain.CutSize || !reflect.DeepEqual(got.Partition.Sides(), plain.Partition.Sides()) {
				t.Fatalf("checkpointed run differs: cut %d vs %d", got.CutSize, plain.CutSize)
			}
			if got.Engine.CheckpointErr != nil {
				t.Fatalf("CheckpointErr = %v", got.Engine.CheckpointErr)
			}
			if _, err := VerifyCut(h, got.Partition, got.CutSize); err != nil {
				t.Fatal(err)
			}

			resumed, err := PartitionCheckpointed(ctx, h, alg.Name, cfg, path, true)
			if err != nil {
				t.Fatal(err)
			}
			if resumed.CutSize != plain.CutSize || !reflect.DeepEqual(resumed.Partition.Sides(), plain.Partition.Sides()) {
				t.Fatalf("resumed run differs: cut %d vs %d", resumed.CutSize, plain.CutSize)
			}
			if resumed.Engine.StartsResumed != resumed.Engine.StartsRun {
				t.Fatalf("StartsResumed = %d, want all %d", resumed.Engine.StartsResumed, resumed.Engine.StartsRun)
			}
		})
	}
}

// TestPartitionCheckpointedResumeCreatesFresh accepts resume=true on a
// path that does not exist yet, so first runs and retries share flags.
func TestPartitionCheckpointedResumeCreatesFresh(t *testing.T) {
	h := checkpointTestHypergraph(t)
	path := filepath.Join(t.TempDir(), "fresh.ckpt")
	res, err := PartitionCheckpointed(context.Background(), h, "kl", AlgoConfig{Starts: 3, Seed: 1}, path, true)
	if err != nil {
		t.Fatal(err)
	}
	if res.Engine.StartsResumed != 0 {
		t.Fatalf("StartsResumed = %d on a fresh path", res.Engine.StartsResumed)
	}
}

// TestPartitionCheckpointedRefusesForeignJournal refuses to resume a
// journal written by a different run configuration.
func TestPartitionCheckpointedRefusesForeignJournal(t *testing.T) {
	h := checkpointTestHypergraph(t)
	ctx := context.Background()
	path := filepath.Join(t.TempDir(), "run.ckpt")
	if _, err := PartitionCheckpointed(ctx, h, "kl", AlgoConfig{Starts: 3, Seed: 1}, path, false); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		algo string
		cfg  AlgoConfig
	}{
		{"algorithm", "fm", AlgoConfig{Starts: 3, Seed: 1}},
		{"seed", "kl", AlgoConfig{Starts: 3, Seed: 2}},
		{"starts", "kl", AlgoConfig{Starts: 5, Seed: 1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := PartitionCheckpointed(ctx, h, tc.algo, tc.cfg, path, true); err == nil {
				t.Fatal("resume with mismatched", tc.name, "succeeded")
			} else if !strings.Contains(err.Error(), "journal") {
				t.Fatalf("unexpected error: %v", err)
			}
		})
	}
}

// TestPartitionCheckpointedUnknownAlgorithm surfaces registry errors
// before touching the journal path.
func TestPartitionCheckpointedUnknownAlgorithm(t *testing.T) {
	h := checkpointTestHypergraph(t)
	path := filepath.Join(t.TempDir(), "never.ckpt")
	if _, err := PartitionCheckpointed(context.Background(), h, "no-such", AlgoConfig{}, path, false); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

// TestPartitionCheckpointedConstrained is the checkpoint contract under
// the unified balance contract: checkpointed ≡ plain bit-for-bit,
// resume of a finished constrained journal replays the identical
// result without re-running a start, and the result satisfies the
// constraint oracle.
func TestPartitionCheckpointedConstrained(t *testing.T) {
	h := checkpointTestHypergraph(t)
	ctx := context.Background()
	fixed := make([]int8, h.NumVertices())
	for i := range fixed {
		fixed[i] = FreeVertex
	}
	fixed[0] = 0
	fixed[9] = 1
	c := Constraint{Epsilon: 0.2, FixedSide: fixed}
	for _, alg := range Algorithms() {
		alg := alg
		t.Run(alg.Name, func(t *testing.T) {
			cfg := AlgoConfig{Starts: 4, Seed: 7, Constraint: c}
			plain, err := alg.Run(ctx, h, cfg)
			if err != nil {
				t.Fatal(err)
			}
			path := filepath.Join(t.TempDir(), "run.ckpt")
			got, err := PartitionCheckpointed(ctx, h, alg.Name, cfg, path, false)
			if err != nil {
				t.Fatal(err)
			}
			if got.CutSize != plain.CutSize || !reflect.DeepEqual(got.Partition.Sides(), plain.Partition.Sides()) {
				t.Fatalf("constrained checkpointed run differs: cut %d vs %d", got.CutSize, plain.CutSize)
			}
			if _, err := VerifyConstraint(h, got.Partition, c); err != nil {
				t.Fatal(err)
			}
			resumed, err := PartitionCheckpointed(ctx, h, alg.Name, cfg, path, true)
			if err != nil {
				t.Fatal(err)
			}
			if resumed.CutSize != plain.CutSize || !reflect.DeepEqual(resumed.Partition.Sides(), plain.Partition.Sides()) {
				t.Fatalf("constrained resumed run differs: cut %d vs %d", resumed.CutSize, plain.CutSize)
			}
			if resumed.Engine.StartsResumed != resumed.Engine.StartsRun {
				t.Fatalf("StartsResumed = %d, want all %d", resumed.Engine.StartsResumed, resumed.Engine.StartsRun)
			}
		})
	}
}

// TestPartitionCheckpointedRefusesConstraintMismatch: a journal binds to
// the balance contract it ran under; resuming it under a different ε or
// fixed set must be refused — the per-start results differ, so splicing
// them together would fabricate a result no single run produced.
func TestPartitionCheckpointedRefusesConstraintMismatch(t *testing.T) {
	h := checkpointTestHypergraph(t)
	ctx := context.Background()
	fixed := make([]int8, h.NumVertices())
	for i := range fixed {
		fixed[i] = FreeVertex
	}
	fixed[0] = 0
	otherFixed := append([]int8(nil), fixed...)
	otherFixed[9] = 1
	base := AlgoConfig{Starts: 3, Seed: 1, Constraint: Constraint{Epsilon: 0.1}}
	path := filepath.Join(t.TempDir(), "run.ckpt")
	if _, err := PartitionCheckpointed(ctx, h, "kl", base, path, false); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		c    Constraint
	}{
		{"different-epsilon", Constraint{Epsilon: 0.3}},
		{"dropped-constraint", Constraint{}},
		{"added-fixed", Constraint{Epsilon: 0.1, FixedSide: fixed}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base
			cfg.Constraint = tc.c
			if _, err := PartitionCheckpointed(ctx, h, "kl", cfg, path, true); err == nil {
				t.Fatal("resume under a different constraint succeeded")
			} else if !strings.Contains(err.Error(), "journal") {
				t.Fatalf("unexpected error: %v", err)
			}
		})
	}
	// Different fixed SETS with the same ε must also be distinguished
	// (the key hashes the assignment, not just its presence).
	cfgA := AlgoConfig{Starts: 3, Seed: 1, Constraint: Constraint{Epsilon: 0.1, FixedSide: fixed}}
	pathF := filepath.Join(t.TempDir(), "fixed.ckpt")
	if _, err := PartitionCheckpointed(ctx, h, "kl", cfgA, pathF, false); err != nil {
		t.Fatal(err)
	}
	cfgB := cfgA
	cfgB.Constraint = Constraint{Epsilon: 0.1, FixedSide: otherFixed}
	if _, err := PartitionCheckpointed(ctx, h, "kl", cfgB, pathF, true); err == nil {
		t.Fatal("resume under a different fixed set succeeded")
	}
}
