package fasthgp_test

import (
	"fmt"
	"log"
	"math/rand"
	"strings"

	"fasthgp"
)

// The bridge netlist: two square clusters joined by one net.
func bridgeNetlist() *fasthgp.Hypergraph {
	b := fasthgp.NewBuilder(8)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	b.AddEdge(0, 3)
	b.AddEdge(4, 5)
	b.AddEdge(5, 6)
	b.AddEdge(6, 7)
	b.AddEdge(4, 7)
	b.AddEdge(3, 4)
	h, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	return h
}

func ExamplePartition() {
	h := bridgeNetlist()
	res, err := fasthgp.Partition(h, fasthgp.Options{Starts: 10, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("cut:", res.CutSize)
	fmt.Println("same side 0,3:", res.Partition.Side(0) == res.Partition.Side(3))
	fmt.Println("same side 3,4:", res.Partition.Side(3) == res.Partition.Side(4))
	// Output:
	// cut: 1
	// same side 0,3: true
	// same side 3,4: false
}

func ExamplePartition_completionModes() {
	h := bridgeNetlist()
	for _, comp := range []fasthgp.Completion{
		fasthgp.CompletionGreedy, fasthgp.CompletionExact, fasthgp.CompletionWeighted,
	} {
		res, err := fasthgp.Partition(h, fasthgp.Options{Starts: 5, Seed: 1, Completion: comp})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%v: cut %d\n", comp, res.CutSize)
	}
	// Output:
	// greedy: cut 1
	// exact: cut 1
	// weighted: cut 1
}

func ExampleReadNetlist() {
	src := `
# two nets over three modules
net clk cpu ram
net bus cpu ram io
`
	h, err := fasthgp.ReadNetlist(strings.NewReader(src))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(h.NumVertices(), "modules,", h.NumEdges(), "nets")
	fmt.Println("module 0 is", h.VertexName(0))
	// Output:
	// 3 modules, 2 nets
	// module 0 is cpu
}

func ExampleReadHMetis() {
	src := "2 4\n1 2\n2 3 4\n"
	h, err := fasthgp.ReadHMetis(strings.NewReader(src))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(h.NumEdges(), "nets over", h.NumVertices(), "vertices")
	fmt.Println("net 0 pins:", h.EdgePins(0))
	// Output:
	// 2 nets over 4 vertices
	// net 0 pins: [0 1]
}

func ExampleKWay() {
	h := bridgeNetlist()
	res, err := fasthgp.KWay(h, fasthgp.KWayOptions{K: 4, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("parts:", res.K)
	fmt.Println("connectivity >= cut nets:", res.Connectivity >= int64(res.CutNets))
	// Output:
	// parts: 4
	// connectivity >= cut nets: true
}

func ExampleMinNetCut() {
	h := bridgeNetlist()
	_, value, err := fasthgp.MinNetCut(h, 0, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("min nets separating module 0 from module 7:", value)
	// Output:
	// min nets separating module 0 from module 7: 1
}

func ExampleGenerateProfile() {
	rng := rand.New(rand.NewSource(1))
	h, err := fasthgp.GenerateProfile(fasthgp.ProfileConfig{
		Modules:    120,
		Signals:    240,
		Technology: fasthgp.StdCell,
	}, rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(h.NumVertices(), h.NumEdges())
	// Output:
	// 120 240
}

func ExamplePlaceMinCut() {
	h := bridgeNetlist()
	pl, err := fasthgp.PlaceMinCut(h, fasthgp.PlaceOptions{Rows: 1, Cols: 2, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("HPWL:", fasthgp.HPWL(h, pl))
	// Output:
	// HPWL: 1
}

func ExampleRebalance() {
	h := bridgeNetlist()
	p := fasthgp.NewBipartition(8)
	p.Assign(0, fasthgp.Right)
	for v := 1; v < 8; v++ {
		p.Assign(v, fasthgp.Left)
	}
	moved, err := fasthgp.Rebalance(h, p, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("moved:", moved, "imbalance:", fasthgp.Imbalance(h, p))
	// Output:
	// moved: 3 imbalance: 0
}
