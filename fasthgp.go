// Package fasthgp is a Go implementation of "Fast Hypergraph
// Partition" (Andrew B. Kahng, 26th Design Automation Conference,
// 1989): an O(n²) provably-good heuristic for hypergraph min-cut
// bipartitioning built on the intersection graph dual to the input
// netlist, together with the full ecosystem the paper's evaluation
// relies on — Kernighan–Lin, Fiduccia–Mattheyses and simulated-
// annealing baselines, synthetic netlist generators, min-cut placement
// with terminal propagation, and a benchmark harness regenerating the
// paper's tables.
//
// # Quick start
//
//	b := fasthgp.NewBuilder(4)
//	b.AddEdge(0, 1)       // nets are vertex subsets
//	b.AddEdge(1, 2, 3)
//	h, err := b.Build()
//	...
//	res, err := fasthgp.Partition(h, fasthgp.Options{Starts: 50})
//	fmt.Println(res.CutSize, res.Partition.Side(0))
//
// The root package is a curated facade; the implementation lives in
// internal packages (internal/core holds Algorithm I itself).
package fasthgp

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"time"

	"fasthgp/internal/anneal"
	"fasthgp/internal/baseline"
	"fasthgp/internal/checkpoint"
	"fasthgp/internal/cluster"
	"fasthgp/internal/core"
	"fasthgp/internal/engine"
	"fasthgp/internal/flowpart"
	"fasthgp/internal/fm"
	"fasthgp/internal/gen"
	"fasthgp/internal/granular"
	"fasthgp/internal/hypergraph"
	"fasthgp/internal/kl"
	"fasthgp/internal/kway"
	"fasthgp/internal/multilevel"
	"fasthgp/internal/netio"
	"fasthgp/internal/partition"
	"fasthgp/internal/place"
	"fasthgp/internal/rebalance"
	"fasthgp/internal/resilience"
	"fasthgp/internal/spectral"
	"fasthgp/internal/verify"
)

// Hypergraph is the netlist data structure: vertices are modules,
// hyperedges are signal nets. Build one with NewBuilder or FromEdges.
type Hypergraph = hypergraph.Hypergraph

// Builder incrementally assembles a Hypergraph.
type Builder = hypergraph.Builder

// NewBuilder returns a Builder for a hypergraph with n vertices.
func NewBuilder(n int) *Builder { return hypergraph.NewBuilder(n) }

// FromEdges builds an unweighted hypergraph from a pin list per edge.
func FromEdges(n int, edges [][]int) (*Hypergraph, error) {
	return hypergraph.FromEdges(n, edges)
}

// Bipartition assigns each module to a side of the cut.
type Bipartition = partition.Bipartition

// Side identifies a partition side.
type Side = partition.Side

// Side values.
const (
	Unassigned = partition.Unassigned
	Left       = partition.Left
	Right      = partition.Right
)

// NewBipartition returns a Bipartition over n vertices with every
// vertex Unassigned.
func NewBipartition(n int) *Bipartition { return partition.New(n) }

// Constraint is the unified balance contract every partitioner in the
// registry honors: an ε-imbalance bound (each side weighs at most
// (1+Epsilon)·⌈w(V)/2⌉, or ⌈w(V)/K⌉ per part K-way) plus an optional
// fixed-vertex assignment (FixedSide[v] pins vertex v to a side, −1
// leaves it free). The zero value is unconstrained and preserves each
// algorithm's historical behavior exactly.
type Constraint = partition.Constraint

// FreeVertex marks an unpinned vertex in Constraint.FixedSide.
const FreeVertex = partition.FreeVertex

// FromBalanceFraction converts a legacy balance fraction b (allowed
// |weight(L) − weight(R)| ≤ 2b·w(V)) into the equivalent ε-constraint.
func FromBalanceFraction(b float64) Constraint { return partition.FromBalanceFraction(b) }

// Options configures Algorithm I (see internal/core for details).
type Options = core.Options

// Completion selects the boundary-completion rule of Algorithm I.
type Completion = core.Completion

// Completion rules: the paper's greedy Complete-Cut, the exact König
// optimum, and the weight-balancing engineer's method.
const (
	CompletionGreedy   = core.CompletionGreedy
	CompletionExact    = core.CompletionExact
	CompletionWeighted = core.CompletionWeighted
)

// Objective selects what multi-start minimizes.
type Objective = core.Objective

// Objectives.
const (
	MinCut      = core.MinCut
	MinQuotient = core.MinQuotient
)

// Result is the outcome of Algorithm I.
type Result = core.Result

// EngineStats reports how the multi-start engine executed a run:
// starts requested and completed, the winning start index, the
// per-start cuts, the worker count, wall/CPU time, and whether the run
// was cut short by its context. Every partitioner embeds one in its
// Result. The engine guarantees the same Result for the same Options
// regardless of Parallelism: each start draws from its own RNG stream
// and ties break toward the lowest start index.
type EngineStats = engine.Stats

// CheckpointIO binds a run to a durable checkpoint sink and, on
// resume, the state recovered from its journal. PartitionCheckpointed
// manages one for you; build your own (with engine.BindCheckpoint
// machinery from internal/checkpoint) only for custom sinks.
type CheckpointIO = engine.CheckpointIO

// CheckpointState is the progress recovered from a checkpoint journal:
// completed starts, their cuts, and the encoded best result.
type CheckpointState = engine.RunState

// Partition runs Algorithm I — the paper's O(n²) intersection-graph
// heuristic — and returns the best bipartition over opts.Starts random
// longest BFS paths, fanned across opts.Parallelism workers.
func Partition(h *Hypergraph, opts Options) (*Result, error) {
	return core.Bipartition(h, opts)
}

// PartitionCtx is Partition with cancellation: when ctx expires the
// best result among the starts completed so far is returned instead of
// an error (the first start always runs to completion).
func PartitionCtx(ctx context.Context, h *Hypergraph, opts Options) (*Result, error) {
	return core.BipartitionCtx(ctx, h, opts)
}

// CutSize returns the number of nets crossing p.
func CutSize(h *Hypergraph, p *Bipartition) int { return partition.CutSize(h, p) }

// WeightedCutSize returns the total weight of nets crossing p.
func WeightedCutSize(h *Hypergraph, p *Bipartition) int64 {
	return partition.WeightedCutSize(h, p)
}

// Imbalance returns the absolute vertex-weight difference between the
// sides of p.
func Imbalance(h *Hypergraph, p *Bipartition) int64 { return partition.Imbalance(h, p) }

// QuotientCut returns cut(p) / min(|V_L|, |V_R|), the quotient-cut
// objective discussed in the paper's Section 5.
func QuotientCut(h *Hypergraph, p *Bipartition) float64 { return partition.QuotientCut(h, p) }

// KLOptions configures the Kernighan–Lin baseline.
type KLOptions = kl.Options

// KLResult is the Kernighan–Lin outcome.
type KLResult = kl.Result

// KL bipartitions h with the Kernighan–Lin pair-swap heuristic
// (Schweikert–Kernighan net model) from a random balanced bisection.
func KL(h *Hypergraph, opts KLOptions) (*KLResult, error) { return kl.Bisect(h, opts) }

// KLCtx is KL with cancellation (best completed start wins).
func KLCtx(ctx context.Context, h *Hypergraph, opts KLOptions) (*KLResult, error) {
	return kl.BisectCtx(ctx, h, opts)
}

// FMOptions configures the Fiduccia–Mattheyses baseline.
type FMOptions = fm.Options

// FMResult is the Fiduccia–Mattheyses outcome.
type FMResult = fm.Result

// FM bipartitions h with the Fiduccia–Mattheyses gain-bucket heuristic
// from a random balanced bisection.
func FM(h *Hypergraph, opts FMOptions) (*FMResult, error) { return fm.Bisect(h, opts) }

// FMCtx is FM with cancellation (best completed start wins).
func FMCtx(ctx context.Context, h *Hypergraph, opts FMOptions) (*FMResult, error) {
	return fm.BisectCtx(ctx, h, opts)
}

// FMImprove refines an existing bipartition in place with FM passes.
func FMImprove(h *Hypergraph, p *Bipartition, opts FMOptions) (*FMResult, error) {
	return fm.Improve(h, p, opts)
}

// FMImproveCtx is FMImprove with cancellation: passes stop early when
// ctx expires and the partition as improved so far is returned.
func FMImproveCtx(ctx context.Context, h *Hypergraph, p *Bipartition, opts FMOptions) (*FMResult, error) {
	return fm.ImproveCtx(ctx, h, p, opts)
}

// AnnealOptions configures the simulated-annealing baseline.
type AnnealOptions = anneal.Options

// AnnealResult is the annealing outcome.
type AnnealResult = anneal.Result

// Anneal bipartitions h by simulated annealing.
func Anneal(h *Hypergraph, opts AnnealOptions) (*AnnealResult, error) {
	return anneal.Bisect(h, opts)
}

// AnnealCtx is Anneal with cancellation: each walk returns its best
// configuration so far when ctx expires, and the best completed walk
// wins.
func AnnealCtx(ctx context.Context, h *Hypergraph, opts AnnealOptions) (*AnnealResult, error) {
	return anneal.BisectCtx(ctx, h, opts)
}

// FlowOptions configures the flow-based partitioner.
type FlowOptions = flowpart.Options

// FlowResult is the flow-partition outcome.
type FlowResult = flowpart.Result

// Flow bipartitions h by exact minimum s–t net cuts over several seed
// pairs (Dinic max-flow on the standard net model) — the "network
// flow" family the paper compares against.
func Flow(h *Hypergraph, opts FlowOptions) (*FlowResult, error) {
	return flowpart.Bisect(h, opts)
}

// FlowCtx is Flow with cancellation (best completed seed pair wins).
func FlowCtx(ctx context.Context, h *Hypergraph, opts FlowOptions) (*FlowResult, error) {
	return flowpart.BisectCtx(ctx, h, opts)
}

// MinNetCut computes an exact minimum-weight net cut separating
// modules s and t.
func MinNetCut(h *Hypergraph, s, t int) (*Bipartition, int64, error) {
	return flowpart.MinNetCut(h, s, t)
}

// SpectralOptions configures the spectral partitioner.
type SpectralOptions = spectral.Options

// SpectralResult is the spectral outcome (including the Fiedler
// coordinates).
type SpectralResult = spectral.Result

// Spectral bipartitions h by a Fiedler-vector sweep cut on the clique
// expansion — the "graph space" eigenvector family the paper cites.
func Spectral(h *Hypergraph, opts SpectralOptions) (*SpectralResult, error) {
	return spectral.Bisect(h, opts)
}

// SpectralCtx is Spectral with cancellation: the power iteration stops
// at ctx expiry and sweeps the vector it has (best completed start
// wins).
func SpectralCtx(ctx context.Context, h *Hypergraph, opts SpectralOptions) (*SpectralResult, error) {
	return spectral.BisectCtx(ctx, h, opts)
}

// RandomBisection returns a uniformly random balanced bisection and its
// cutsize — the paper's "even a random cut" control.
func RandomBisection(h *Hypergraph, rng *rand.Rand) (*Bipartition, int, error) {
	return baseline.RandomBisection(h, rng)
}

// MultilevelOptions configures the multilevel partitioner.
type MultilevelOptions = multilevel.Options

// MultilevelResult is the multilevel outcome.
type MultilevelResult = multilevel.Result

// Multilevel bipartitions h with the multilevel scheme (heavy-
// connectivity coarsening → Algorithm I at the coarsest level → FM
// refinement during uncoarsening) — the library's extension beyond the
// paper and its strongest in-repo comparison point.
func Multilevel(h *Hypergraph, opts MultilevelOptions) (*MultilevelResult, error) {
	return multilevel.Bisect(h, opts)
}

// MultilevelCtx is Multilevel with cancellation: an interrupted V-cycle
// still projects its partition to the input hypergraph (skipping
// further refinement), and the best completed cycle wins.
func MultilevelCtx(ctx context.Context, h *Hypergraph, opts MultilevelOptions) (*MultilevelResult, error) {
	return multilevel.BisectCtx(ctx, h, opts)
}

// KWayOptions configures K-way partitioning.
type KWayOptions = kway.Options

// KWayResult is a K-way partition with cut-net and connectivity
// metrics.
type KWayResult = kway.Result

// KWay splits h into opts.K parts by recursive bisection with
// proportional balance targets.
func KWay(h *Hypergraph, opts KWayOptions) (*KWayResult, error) {
	return kway.Partition(h, opts)
}

// KWayCtx is KWay with cancellation: after ctx expires each remaining
// split degrades to its cheapest cut, so a complete K-way labeling is
// still returned.
func KWayCtx(ctx context.Context, h *Hypergraph, opts KWayOptions) (*KWayResult, error) {
	return kway.PartitionCtx(ctx, h, opts)
}

// ErrNegativeTolerance is returned by Rebalance when the tolerance is
// negative — historically the value was silently clamped, masking
// caller bugs.
var ErrNegativeTolerance = rebalance.ErrNegativeTolerance

// ErrConstraintInfeasible is returned (wrapped, with the reason) when a
// constraint provably admits no partition — e.g. one side's fixed
// vertices alone outweigh the ε bound.
var ErrConstraintInfeasible = rebalance.ErrInfeasible

// Rebalance repairs the weight balance of p in place, moving the
// cheapest vertices from the heavy side until the imbalance is within
// tolerance; it returns the number of vertices moved. A negative
// tolerance is rejected with ErrNegativeTolerance.
func Rebalance(h *Hypergraph, p *Bipartition, tolerance int64) (int, error) {
	return rebalance.Bisect(h, p, tolerance)
}

// EnforceConstraint makes p satisfy c in place: fixed vertices are
// forced onto their pinned sides, then free vertices move off any side
// exceeding c's maximum side weight. It returns
// ErrConstraintInfeasible when no sequence of legal moves can succeed.
func EnforceConstraint(h *Hypergraph, p *Bipartition, c Constraint) error {
	return rebalance.Enforce(h, p, c)
}

// ReadNetlist parses a netlist in the library's text format.
func ReadNetlist(r io.Reader) (*Hypergraph, error) { return netio.Read(r) }

// WriteNetlist emits h in the library's text format.
func WriteNetlist(w io.Writer, h *Hypergraph) error { return netio.Write(w, h) }

// ReadNetlistFixed parses a netlist along with its fixed-vertex
// directives: fixed[v] is vertex v's pinned side, FreeVertex when free,
// and the slice is nil when the input pins nothing.
func ReadNetlistFixed(r io.Reader) (*Hypergraph, []int8, error) { return netio.ReadFixed(r) }

// WriteNetlistFixed emits h plus a fixed directive per pinned vertex.
func WriteNetlistFixed(w io.Writer, h *Hypergraph, fixed []int8) error {
	return netio.WriteFixed(w, h, fixed)
}

// ParseFixedSpec parses the compact fixed-vertex query syntax of the
// HTTP tier ("0:L,5:R"): comma-separated vertex:side records, sides L,
// R, 0, or 1. The result covers all n vertices with unnamed vertices
// FreeVertex. hgpartd and hgpartcoord share this parser so the solved
// and verified constraints can never diverge.
func ParseFixedSpec(spec string, n int) ([]int8, error) { return netio.ParseFixedSpec(spec, n) }

// ReadHMetis parses a hypergraph in the hMETIS .hgr benchmark format.
func ReadHMetis(r io.Reader) (*Hypergraph, error) { return netio.ReadHMetis(r) }

// ReadHMetisStream parses the hMETIS .hgr format through the zero-copy
// streaming parser: one reusable chunk buffer, no per-line string or
// token materialization. Accepts and rejects exactly as ReadHMetis.
func ReadHMetisStream(r io.Reader) (*Hypergraph, error) { return netio.ParseHMetisStream(r) }

// ReadHMetisFile parses the .hgr file at path, memory-mapping it
// read-only where the platform allows (the file bytes become the parse
// buffer) and falling back to the streaming parser otherwise.
func ReadHMetisFile(path string) (*Hypergraph, error) { return netio.ReadHMetisFile(path) }

// WriteHMetis emits h in the hMETIS .hgr format.
func WriteHMetis(w io.Writer, h *Hypergraph) error { return netio.WriteHMetis(w, h) }

// ReadHMetisFix parses an hMETIS fix file (one part id per vertex, −1
// free) for a hypergraph with n vertices; nil when every vertex is free.
func ReadHMetisFix(r io.Reader, n int) ([]int8, error) { return netio.ReadHMetisFix(r, n) }

// WriteHMetisFix emits a fixed-vertex assignment in the hMETIS fix-file
// format.
func WriteHMetisFix(w io.Writer, fixed []int8) error { return netio.WriteHMetisFix(w, fixed) }

// Technology selects a synthetic circuit-profile family.
type Technology = gen.Technology

// Technologies, matching the paper's Table 1 rows.
const (
	PCB       = gen.PCB
	StdCell   = gen.StdCell
	GateArray = gen.GateArray
	Hybrid    = gen.Hybrid
)

// ProfileConfig parameterizes GenerateProfile.
type ProfileConfig = gen.ProfileConfig

// GenerateProfile builds a synthetic circuit-profile netlist with a
// logical cluster hierarchy — the stand-in for the paper's industry
// test suite.
func GenerateProfile(cfg ProfileConfig, rng *rand.Rand) (*Hypergraph, error) {
	return gen.Profile(cfg, rng)
}

// RandomConfig parameterizes GenerateRandom.
type RandomConfig = gen.RandomConfig

// GenerateRandom builds a uniform random hypergraph H(n, d, r).
func GenerateRandom(n int, cfg RandomConfig, rng *rand.Rand) (*Hypergraph, error) {
	return gen.Random(n, cfg, rng)
}

// PlantedConfig parameterizes GeneratePlanted.
type PlantedConfig = gen.PlantedConfig

// GeneratePlanted builds a "difficult" instance with a planted minimum
// cut (Bui et al. regime) and returns the planted crossing nets.
func GeneratePlanted(n int, cfg PlantedConfig, rng *rand.Rand) (*Hypergraph, []int, error) {
	return gen.PlantedCut(n, cfg, rng)
}

// PlaceOptions configures min-cut placement.
type PlaceOptions = place.Options

// Placement is a slot assignment on a grid.
type Placement = place.Placement

// PlaceMinCut places h by recursive min-cut bipartitioning (Breuer),
// optionally with Dunlop–Kernighan terminal propagation.
func PlaceMinCut(h *Hypergraph, opts PlaceOptions) (*Placement, error) {
	return place.MinCutPlace(h, opts)
}

// PlaceRandom scatters modules uniformly over a grid — the placement
// control baseline.
func PlaceRandom(h *Hypergraph, rows, cols int, rng *rand.Rand) (*Placement, error) {
	return place.RandomPlace(h, rows, cols, rng)
}

// HPWL returns the half-perimeter wirelength of a placement under the
// bounding-box net model.
func HPWL(h *Hypergraph, pl *Placement) int64 { return place.HPWL(h, pl) }

// ClusterOptions configures netlist clustering.
type ClusterOptions = cluster.Options

// ClusterResult describes a clustering: the labeling, the clustered
// hypergraph, and the absorption metric.
type ClusterResult = cluster.Result

// Cluster groups modules bottom-up by connectivity under a weight cap
// — the preprocessing step of clustering placement. Partition the
// returned ClusterResult.H and lift the result back with Project.
func Cluster(h *Hypergraph, opts ClusterOptions) (*ClusterResult, error) {
	return cluster.Cluster(h, opts)
}

// AlgoConfig carries the knobs shared by every bipartitioner for
// uniform invocation through the Algorithms registry. Algorithm-
// specific options (balance windows, cooling schedules, …) stay at
// their defaults; call the dedicated entry points to tune those.
type AlgoConfig struct {
	// Starts is the multi-start count (values < 1 mean 1; for Flow it
	// is the number of seed pairs).
	Starts int
	// Seed makes the run deterministic.
	Seed int64
	// Parallelism is the engine worker count; values < 1 mean
	// GOMAXPROCS. Wall time only, never the result.
	Parallelism int
	// KernelWorkers is the intra-start worker count for the per-start
	// kernels (intersection-graph build and double BFS) of the
	// algorithms that use them (algo1, multilevel); the rest ignore it.
	// Values < 1 mean 1 — serial kernels. Any value produces bit-for-
	// bit identical results to serial — which is why the serialized
	// form omits the default: configs that differ only here describe
	// the same computation.
	KernelWorkers int `json:",omitempty"`
	// Constraint is the unified balance contract (ε-imbalance bound plus
	// fixed vertices) every registry algorithm honors; the zero value is
	// unconstrained. Checkpoint journals bind to it: a journal written
	// under one constraint refuses to resume a run under another.
	Constraint Constraint
	// Checkpoint, when non-nil, journals every completed start into its
	// sink and resumes from its recovered state. Most callers want
	// PartitionCheckpointed, which manages the journal file; set this
	// directly only to supply a custom sink.
	Checkpoint *CheckpointIO
}

// AlgoResult is the common projection of a bipartitioner's outcome.
type AlgoResult struct {
	// Partition is the bipartition found.
	Partition *Bipartition
	// CutSize is its cutsize.
	CutSize int
	// Engine reports the multi-start execution.
	Engine EngineStats
}

// Algorithm is one uniformly-invokable bipartitioner from the
// Algorithms registry.
type Algorithm struct {
	// Name is the registry key (matches the -algo flag of cmd/hgpart).
	Name string
	// Description is a one-line summary.
	Description string
	// Run executes the algorithm under the shared engine contract:
	// deterministic in (h, cfg) regardless of cfg.Parallelism, and
	// best-so-far (never an error) on ctx expiry.
	Run func(ctx context.Context, h *Hypergraph, cfg AlgoConfig) (*AlgoResult, error)
}

// Algorithms returns the registry of bipartitioners, in presentation
// order. All entries run on the shared multi-start engine, so the
// determinism, tie-break, and cancellation semantics of EngineStats
// apply uniformly. Every entry is additionally wrapped in a recover
// boundary: a panic anywhere in the algorithm (engine starts have
// their own per-start boundary) comes back as a typed *PartitionError
// instead of crashing the caller.
func Algorithms() []Algorithm {
	algos := algorithmTable()
	for i := range algos {
		algos[i].Run = protectRun(algos[i].Name, algos[i].Run)
	}
	return algos
}

// protectRun is the registry's recover boundary (resilience.Protect):
// it converts a panic from the wrapped algorithm into a
// *resilience.PartitionError attributed to the whole run.
func protectRun(name string, run func(context.Context, *Hypergraph, AlgoConfig) (*AlgoResult, error)) func(context.Context, *Hypergraph, AlgoConfig) (*AlgoResult, error) {
	return func(ctx context.Context, h *Hypergraph, cfg AlgoConfig) (res *AlgoResult, err error) {
		perr := resilience.Protect(name, resilience.WholeRun, func() error {
			var inner error
			res, inner = run(ctx, h, cfg)
			return inner
		})
		if perr != nil {
			return nil, perr
		}
		return res, nil
	}
}

// algorithmTable is the unwrapped registry.
func algorithmTable() []Algorithm {
	return []Algorithm{
		{
			Name:        "algo1",
			Description: "Algorithm I: intersection-graph double-BFS heuristic (the paper)",
			Run: func(ctx context.Context, h *Hypergraph, cfg AlgoConfig) (*AlgoResult, error) {
				r, err := core.BipartitionCtx(ctx, h, core.Options{Starts: cfg.Starts, Seed: cfg.Seed, Parallelism: cfg.Parallelism, KernelWorkers: cfg.KernelWorkers, Constraint: cfg.Constraint, Checkpoint: cfg.Checkpoint})
				if err != nil {
					return nil, err
				}
				return &AlgoResult{Partition: r.Partition, CutSize: r.CutSize, Engine: r.Stats.Engine}, nil
			},
		},
		{
			Name:        "kl",
			Description: "Kernighan–Lin pair swaps (Schweikert–Kernighan net model)",
			Run: func(ctx context.Context, h *Hypergraph, cfg AlgoConfig) (*AlgoResult, error) {
				r, err := kl.BisectCtx(ctx, h, kl.Options{Starts: cfg.Starts, Seed: cfg.Seed, Parallelism: cfg.Parallelism, Constraint: cfg.Constraint, Checkpoint: cfg.Checkpoint})
				if err != nil {
					return nil, err
				}
				return &AlgoResult{Partition: r.Partition, CutSize: r.CutSize, Engine: r.Engine}, nil
			},
		},
		{
			Name:        "fm",
			Description: "Fiduccia–Mattheyses gain buckets",
			Run: func(ctx context.Context, h *Hypergraph, cfg AlgoConfig) (*AlgoResult, error) {
				r, err := fm.BisectCtx(ctx, h, fm.Options{Starts: cfg.Starts, Seed: cfg.Seed, Parallelism: cfg.Parallelism, Constraint: cfg.Constraint, Checkpoint: cfg.Checkpoint})
				if err != nil {
					return nil, err
				}
				return &AlgoResult{Partition: r.Partition, CutSize: r.CutSize, Engine: r.Engine}, nil
			},
		},
		{
			Name:        "anneal",
			Description: "simulated annealing with soft balance penalty",
			Run: func(ctx context.Context, h *Hypergraph, cfg AlgoConfig) (*AlgoResult, error) {
				r, err := anneal.BisectCtx(ctx, h, anneal.Options{Starts: cfg.Starts, Seed: cfg.Seed, Parallelism: cfg.Parallelism, Constraint: cfg.Constraint, Checkpoint: cfg.Checkpoint})
				if err != nil {
					return nil, err
				}
				return &AlgoResult{Partition: r.Partition, CutSize: r.CutSize, Engine: r.Engine}, nil
			},
		},
		{
			Name:        "flow",
			Description: "exact min s–t net cuts over random seed pairs (Dinic)",
			Run: func(ctx context.Context, h *Hypergraph, cfg AlgoConfig) (*AlgoResult, error) {
				r, err := flowpart.BisectCtx(ctx, h, flowpart.Options{SeedPairs: cfg.Starts, Seed: cfg.Seed, Parallelism: cfg.Parallelism, Constraint: cfg.Constraint, Checkpoint: cfg.Checkpoint})
				if err != nil {
					return nil, err
				}
				return &AlgoResult{Partition: r.Partition, CutSize: r.CutSize, Engine: r.Engine}, nil
			},
		},
		{
			Name:        "spectral",
			Description: "Fiedler-vector sweep cut on the clique expansion",
			Run: func(ctx context.Context, h *Hypergraph, cfg AlgoConfig) (*AlgoResult, error) {
				r, err := spectral.BisectCtx(ctx, h, spectral.Options{Starts: cfg.Starts, Seed: cfg.Seed, Parallelism: cfg.Parallelism, Constraint: cfg.Constraint, Checkpoint: cfg.Checkpoint})
				if err != nil {
					return nil, err
				}
				return &AlgoResult{Partition: r.Partition, CutSize: r.CutSize, Engine: r.Engine}, nil
			},
		},
		{
			Name:        "multilevel",
			Description: "coarsen → Algorithm I → FM refinement V-cycles",
			Run: func(ctx context.Context, h *Hypergraph, cfg AlgoConfig) (*AlgoResult, error) {
				r, err := multilevel.BisectCtx(ctx, h, multilevel.Options{Starts: cfg.Starts, Seed: cfg.Seed, Parallelism: cfg.Parallelism, KernelWorkers: cfg.KernelWorkers, Constraint: cfg.Constraint, Checkpoint: cfg.Checkpoint})
				if err != nil {
					return nil, err
				}
				return &AlgoResult{Partition: r.Partition, CutSize: r.CutSize, Engine: r.Engine}, nil
			},
		},
		{
			Name:        "random",
			Description: "best of Starts uniformly random balanced bisections (control)",
			Run:         runRandomAlgo,
		},
	}
}

// runRandomAlgo is the registry's random-bisection control, run through
// the engine so it shares the determinism and cancellation contract.
func runRandomAlgo(ctx context.Context, h *Hypergraph, cfg AlgoConfig) (*AlgoResult, error) {
	if h.NumVertices() < 2 {
		return nil, fmt.Errorf("fasthgp: hypergraph has %d vertices; need at least 2", h.NumVertices())
	}
	if err := cfg.Constraint.Validate(h.NumVertices(), 2); err != nil {
		return nil, fmt.Errorf("fasthgp: %w", err)
	}
	best, es, err := engine.Run(ctx, engine.Spec[*AlgoResult]{
		Starts:      cfg.Starts,
		Parallelism: cfg.Parallelism,
		Seed:        cfg.Seed,
		Run: func(_ context.Context, _ int, rng *rand.Rand, _ *engine.Scratch) (*AlgoResult, error) {
			var p *Bipartition
			if cfg.Constraint.IsZero() {
				p = kl.RandomBisection(h.NumVertices(), rng)
			} else {
				p = kl.RandomBisectionConstrained(h, rng, cfg.Constraint)
				if err := rebalance.Enforce(h, p, cfg.Constraint); err != nil {
					return nil, fmt.Errorf("random: %w", err)
				}
			}
			return &AlgoResult{Partition: p, CutSize: partition.CutSize(h, p)}, nil
		},
		Better: func(a, b *AlgoResult) bool {
			if a.CutSize != b.CutSize {
				return a.CutSize < b.CutSize
			}
			return partition.Imbalance(h, a.Partition) < partition.Imbalance(h, b.Partition)
		},
		Cut: func(r *AlgoResult) int { return r.CutSize },
		Checkpoint: engine.BindCheckpoint(cfg.Checkpoint,
			func(r *AlgoResult) []byte {
				return checkpoint.EncodeBest(r.Partition.Sides(), r.CutSize)
			},
			func(b []byte) (*AlgoResult, error) {
				p, cut, _, err := checkpoint.DecodeBestFor(h, b, 0)
				if err != nil {
					return nil, fmt.Errorf("random: %w", err)
				}
				return &AlgoResult{Partition: p, CutSize: cut}, nil
			}),
	})
	if err != nil {
		return nil, err
	}
	best.Engine = es
	return best, nil
}

// VerifyReport is the invariant oracle's account of a bipartition:
// recomputed cutsize, weighted cut, and per-side counts and weights.
type VerifyReport = verify.Report

// KWayVerifyReport is the oracle's account of a K-way labeling.
type KWayVerifyReport = verify.KWayReport

// Verify recomputes every invariant of p from scratch — side
// completeness, cutsize, weighted cut, side weights, and agreement with
// the incremental cut maintenance — and returns the recomputed metrics.
// A non-nil error means p (or the library) is broken; use it as the
// final gate after any partitioning run.
func Verify(h *Hypergraph, p *Bipartition) (*VerifyReport, error) {
	return verify.Check(h, p)
}

// VerifyCut is Verify plus a check that the claimed cutsize matches the
// recomputed one.
func VerifyCut(h *Hypergraph, p *Bipartition, claimed int) (*VerifyReport, error) {
	return verify.CheckCut(h, p, claimed)
}

// VerifyKWay validates a K-way labeling and recomputes its cut-net
// count and connectivity objective.
func VerifyKWay(h *Hypergraph, part []int, k int) (*KWayVerifyReport, error) {
	return verify.CheckKWay(h, part, k)
}

// VerifyEpsilon is Verify plus the ε-imbalance bound: both sides must
// weigh at most (1+eps)·⌈w(V)/2⌉.
func VerifyEpsilon(h *Hypergraph, p *Bipartition, eps float64) (*VerifyReport, error) {
	return verify.CheckEpsilon(h, p, eps)
}

// VerifyFixed is Verify plus the fixed-vertex contract: every pinned
// vertex must sit on its pinned side.
func VerifyFixed(h *Hypergraph, p *Bipartition, fixed []int8) (*VerifyReport, error) {
	return verify.CheckFixed(h, p, fixed)
}

// VerifyConstraint certifies p against the full contract c — validity,
// the ε bound when present, and the fixed assignment when present.
func VerifyConstraint(h *Hypergraph, p *Bipartition, c Constraint) (*VerifyReport, error) {
	return verify.CheckConstraint(h, p, c)
}

// PartitionError is the typed value a panic inside any partitioner is
// converted into at the library's recover boundaries: the algorithm
// name, the engine start index that panicked (resilience.WholeRun when
// the panic was outside any start), the panic value, and the captured
// stack. Retrieve it with errors.As; a multi-start run with panicking
// starts also lists them in EngineStats.Failures while degrading to
// the surviving starts.
type PartitionError = resilience.PartitionError

// PortfolioResult is the outcome of a PartitionPortfolio run: an
// oracle-certified partition plus the tier that produced it, whether
// the run degraded past its first choice, and a per-tier report.
type PortfolioResult = resilience.Result

// TierReport is one tier's account within a PortfolioResult.
type TierReport = resilience.TierReport

// ErrPortfolioExhausted is returned when no tier of a portfolio chain
// produced any oracle-certified candidate.
var ErrPortfolioExhausted = resilience.ErrExhausted

// portfolioConfig collects the PortfolioOption knobs.
type portfolioConfig struct {
	chain         []string
	budget        time.Duration
	starts        int
	seed          int64
	parallelism   int
	kernelWorkers int
	maxAttempts   int
	breakers      *resilience.BreakerSet
	constraint    Constraint
}

// PortfolioOption configures PartitionPortfolio.
type PortfolioOption func(*portfolioConfig)

// WithChain sets the ordered fallback chain by registry name,
// strongest first (aliases: core/algI → algo1, sa → anneal,
// flowpart → flow). Default: multilevel → fm → algo1.
func WithChain(names ...string) PortfolioOption {
	return func(c *portfolioConfig) { c.chain = append([]string(nil), names...) }
}

// WithBudget bounds the whole chain's wall time; each tier gets
// (remaining budget)/(remaining tiers), with unused time rolling
// forward. 0 means "inherit whatever deadline ctx carries".
func WithBudget(d time.Duration) PortfolioOption {
	return func(c *portfolioConfig) { c.budget = d }
}

// WithStarts sets each tier's multi-start count (default 8).
func WithStarts(n int) PortfolioOption { return func(c *portfolioConfig) { c.starts = n } }

// WithSeed sets the portfolio seed; retries derive jittered per-attempt
// seeds from it, and the whole run replays deterministically.
func WithSeed(s int64) PortfolioOption { return func(c *portfolioConfig) { c.seed = s } }

// WithParallelism sets each tier's engine worker count (0 =
// GOMAXPROCS); wall time only, never the result.
func WithParallelism(p int) PortfolioOption { return func(c *portfolioConfig) { c.parallelism = p } }

// WithKernelWorkers sets each tier's intra-start kernel worker count
// (0 = serial kernels); wall time only, never the result.
func WithKernelWorkers(w int) PortfolioOption { return func(c *portfolioConfig) { c.kernelWorkers = w } }

// WithMaxAttempts caps per-tier retries of transient failures —
// panics and oracle-rejected results (default 2: one try + one retry).
func WithMaxAttempts(n int) PortfolioOption { return func(c *portfolioConfig) { c.maxAttempts = n } }

// WithBreakers attaches a circuit-breaker set shared across portfolio
// runs: a tier that keeps failing is skipped outright (and excluded
// from the budget split) until its cooldown admits a probe. Meant for
// long-lived callers like hgpartd; one-shot runs don't need it.
func WithBreakers(b *BreakerSet) PortfolioOption { return func(c *portfolioConfig) { c.breakers = b } }

// WithConstraint runs every tier under the unified balance contract c
// and tightens the oracle gate to certify candidates against it: a tier
// that moves a fixed vertex or overshoots the ε bound is treated as
// having produced no result and the chain degrades past it.
func WithConstraint(c Constraint) PortfolioOption {
	return func(pc *portfolioConfig) { pc.constraint = c }
}

// BreakerSet is a per-tier-name collection of circuit breakers; build
// one with NewBreakerSet and share it across PartitionPortfolio calls.
type BreakerSet = resilience.BreakerSet

// BreakerConfig tunes a BreakerSet's breakers (consecutive-failure
// threshold and open-state cooldown).
type BreakerConfig = resilience.BreakerConfig

// NewBreakerSet returns an empty breaker set; breakers are created
// closed, per tier name, on first use.
func NewBreakerSet(cfg BreakerConfig) *BreakerSet { return resilience.NewBreakerSet(cfg) }

// ErrBreakerOpen marks a tier skipped because its breaker was open.
var ErrBreakerOpen = resilience.ErrBreakerOpen

// DefaultChain is the default portfolio fallback chain: the strongest
// partitioner first, degrading toward the cheapest.
func DefaultChain() []string { return []string{"multilevel", "fm", "algo1"} }

// resolveAlgorithm finds a registry entry by name or alias.
func resolveAlgorithm(name string) (Algorithm, error) {
	switch name {
	case "core", "algI":
		name = "algo1"
	case "sa":
		name = "anneal"
	case "flowpart":
		name = "flow"
	}
	for _, a := range Algorithms() {
		if a.Name == name {
			return a, nil
		}
	}
	return Algorithm{}, fmt.Errorf("fasthgp: algorithm %q not in registry", name)
}

// PartitionPortfolio bipartitions h through a deadline-aware fallback
// chain. Tiers run in order under the remaining budget; every
// candidate is certified by the verify oracle before it may be
// returned; a tier that panics or produces an invalid result is
// retried with capped exponential backoff and a fresh jittered seed,
// then abandoned for the next tier; a tier that exhausts its time
// slice falls through immediately. The first fully successful tier
// ends the chain. If every tier fails, the best certified best-so-far
// candidate salvaged along the way is returned with Degraded set;
// only when there is no certified candidate at all does the call
// return an error (ErrPortfolioExhausted, carrying the tier errors).
func PartitionPortfolio(ctx context.Context, h *Hypergraph, opts ...PortfolioOption) (*PortfolioResult, error) {
	cfg := portfolioConfig{chain: DefaultChain(), starts: 8, seed: 1}
	for _, o := range opts {
		o(&cfg)
	}
	tiers := make([]resilience.Tier, 0, len(cfg.chain))
	for _, name := range cfg.chain {
		alg, err := resolveAlgorithm(name)
		if err != nil {
			return nil, err
		}
		tiers = append(tiers, resilience.Tier{
			Name: alg.Name,
			Run: func(ctx context.Context, h *Hypergraph, seed int64) (*Bipartition, int, error) {
				r, err := alg.Run(ctx, h, AlgoConfig{Starts: cfg.starts, Seed: seed, Parallelism: cfg.parallelism, KernelWorkers: cfg.kernelWorkers, Constraint: cfg.constraint})
				if err != nil {
					return nil, 0, err
				}
				return r.Partition, r.CutSize, nil
			},
		})
	}
	return resilience.RunPortfolio(ctx, h, tiers, resilience.Options{
		Budget:      cfg.budget,
		Seed:        cfg.seed,
		MaxAttempts: cfg.maxAttempts,
		Breakers:    cfg.breakers,
		Constraint:  cfg.constraint,
	})
}

// PartitionCheckpointed runs one registry algorithm with a crash-safe
// journal at path: every completed start is fsynced into the journal,
// and when resume is true and the journal already exists, the run
// continues from the recovered progress instead of starting over.
// Because each start is a pure function of (h, seed, start index) and
// ties break toward the lowest start index, a resumed run returns a
// partition and cut bit-for-bit identical to an uninterrupted run with
// the same arguments — no matter where the previous process died.
//
// The journal binds itself to (algorithm, hypergraph, seed, starts);
// resuming with any of those changed is refused. A journal whose tail
// was torn by the crash is truncated to its last intact record. On
// resume the journal may also be a fresh path (the file is then
// created), so callers can pass the same flags for first runs and
// retries alike.
func PartitionCheckpointed(ctx context.Context, h *Hypergraph, algo string, cfg AlgoConfig, path string, resume bool) (*AlgoResult, error) {
	alg, err := resolveAlgorithm(algo)
	if err != nil {
		return nil, err
	}
	// Normalize the start count up front so the journal's identity and
	// every package's engine invocation agree (flow would otherwise
	// default 0 seed pairs to 5 while the journal recorded 1).
	cfg.Starts = engine.Normalize(cfg.Starts)
	meta := checkpoint.NewMeta(alg.Name, h, cfg.Seed, cfg.Starts)
	// The journal is bound to the balance contract too: per-start
	// results depend on it, so resuming a run under a different ε or
	// fixed set must be refused, not silently blended.
	meta.Constraint = cfg.Constraint.Key()

	var rj *checkpoint.RunJournal
	var state *CheckpointState
	if resume {
		rj, state, err = checkpoint.Resume(path, meta)
		if errors.Is(err, os.ErrNotExist) {
			rj, err = checkpoint.CreateRun(path, meta)
		}
	} else {
		rj, err = checkpoint.CreateRun(path, meta)
	}
	if err != nil {
		return nil, err
	}
	defer rj.Close()

	cfg.Checkpoint = &CheckpointIO{Sink: rj, State: state}
	return alg.Run(ctx, h, cfg)
}

// GranularResult describes a granularized netlist.
type GranularResult = granular.Result

// Granularize splits modules heavier than grain into chained unit
// submodules (the paper's Section 5 extension).
func Granularize(h *Hypergraph, grain, linkWeight int64) (*GranularResult, error) {
	return granular.Granularize(h, grain, linkWeight)
}
