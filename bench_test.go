package fasthgp

// The benchmark suite regenerates every evaluation artifact of the
// paper (DESIGN.md §5 maps IDs to functions here):
//
//	T1  BenchmarkTable1LargeNetCrossing
//	T2  BenchmarkTable2Cutsize, BenchmarkTable2CPU
//	F4  BenchmarkFigure4Pipeline
//	X1  BenchmarkDifficultOptimality
//	X2  BenchmarkThresholdAblation
//	X3  BenchmarkBoundaryFraction
//	X4  BenchmarkCompleteCutVsExact
//	X5  BenchmarkEngineerRule
//	X6  BenchmarkMultiStartAblation
//	X7  BenchmarkGranularization
//	X8  BenchmarkScaling*
//	X9  BenchmarkQuotientObjective
//	X10 BenchmarkAllMethods
//	X11 BenchmarkParallelMultiStart
//	—   BenchmarkBFSTiePolicy, BenchmarkMultilevelVsFlat, BenchmarkKWay,
//	    BenchmarkPlacement (design-choice ablations and the application)
//
// Quality numbers (cutsizes, fractions, percentages) are emitted as
// custom benchmark metrics so `go test -bench` output doubles as the
// experiment record; wall-clock per op carries the CPU comparisons.
// Run cmd/tables for the paper-layout text tables.

import (
	"fmt"
	"math/rand"
	"testing"

	"fasthgp/internal/anneal"
	"fasthgp/internal/core"
	"fasthgp/internal/gen"
	"fasthgp/internal/intersect"
	"fasthgp/internal/kl"
	"fasthgp/internal/matching"
	"fasthgp/internal/paperexample"
	"fasthgp/internal/partition"
)

const benchSeed = 1989

// mustProfile builds a deterministic profile netlist for benchmarks.
func mustProfile(b *testing.B, modules, signals int, tech gen.Technology) *Hypergraph {
	b.Helper()
	h, err := gen.Profile(gen.ProfileConfig{Modules: modules, Signals: signals, Technology: tech, LargeNetFraction: 0.04},
		rand.New(rand.NewSource(benchSeed)))
	if err != nil {
		b.Fatal(err)
	}
	return h
}

// BenchmarkTable1LargeNetCrossing (T1): crossing percentage of large
// nets in the best SA partition, per technology.
func BenchmarkTable1LargeNetCrossing(b *testing.B) {
	for _, tech := range []gen.Technology{gen.PCB, gen.StdCell, gen.GateArray, gen.Hybrid} {
		b.Run(tech.String(), func(b *testing.B) {
			h := mustProfile(b, 200, 430, tech)
			var pct14 float64
			for i := 0; i < b.N; i++ {
				res, err := anneal.Bisect(h, anneal.Options{Seed: int64(i)})
				if err != nil {
					b.Fatal(err)
				}
				total, crossing := 0, 0
				for e := 0; e < h.NumEdges(); e++ {
					if h.EdgeSize(e) < 14 {
						continue
					}
					total++
					if partition.Crosses(h, res.Partition, e) {
						crossing++
					}
				}
				if total > 0 {
					pct14 = 100 * float64(crossing) / float64(total)
				}
			}
			b.ReportMetric(pct14, "cross%k14")
		})
	}
}

// BenchmarkTable2Cutsize (T2): Algorithm I per Table-2 instance; the
// cut is reported as a metric, time/op is the Alg I runtime.
func BenchmarkTable2Cutsize(b *testing.B) {
	for _, name := range []gen.Table2Name{gen.Bd1, gen.Bd2, gen.Bd3, gen.IC1, gen.Diff1, gen.Diff2, gen.Diff3} {
		b.Run(string(name), func(b *testing.B) {
			h, err := gen.Table2Instance(name, benchSeed)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			cut := 0
			for i := 0; i < b.N; i++ {
				res, err := core.Bipartition(h, core.Options{Starts: 50, Seed: benchSeed, Threshold: 10})
				if err != nil {
					b.Fatal(err)
				}
				cut = res.CutSize
			}
			b.ReportMetric(float64(cut), "cut")
		})
	}
}

// BenchmarkTable2CPU (T2, CPU row): the three methods on the same
// instance; the time/op ratios reproduce the paper's CPU row.
func BenchmarkTable2CPU(b *testing.B) {
	h, err := gen.Table2Instance(gen.IC1, benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("AlgI", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.Bipartition(h, core.Options{Starts: 1, Seed: benchSeed, Threshold: 10}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("SA", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := anneal.Bisect(h, anneal.Options{Seed: benchSeed}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("MinCutKL", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := kl.Bisect(h, kl.Options{Seed: benchSeed}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFigure4Pipeline (F4): the full pipeline on the worked
// example; the metric certifies the optimum cutsize 2.
func BenchmarkFigure4Pipeline(b *testing.B) {
	h := paperexample.WorkedExample()
	cut := 0
	for i := 0; i < b.N; i++ {
		res, err := core.Bipartition(h, core.Options{Starts: 8, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		cut = res.CutSize
	}
	b.ReportMetric(float64(cut), "cut")
}

// BenchmarkDifficultOptimality (X1): planted-cut recovery rate of
// Algorithm I across seeds.
func BenchmarkDifficultOptimality(b *testing.B) {
	const n, c = 400, 6
	hits, runs := 0, 0
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(int64(i)))
		b.StopTimer()
		h, _, err := gen.PlantedCut(n, gen.PlantedConfig{CutSize: c, IntraEdges: 2 * n, MaxEdgeSize: 4, MaxDegree: 6}, rng)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		res, err := core.Bipartition(h, core.Options{Starts: 50, Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		runs++
		if res.CutSize <= c {
			hits++
		}
	}
	b.ReportMetric(float64(hits)/float64(runs), "optimal-rate")
}

// BenchmarkThresholdAblation (X2): Algorithm I under different
// large-net thresholds.
func BenchmarkThresholdAblation(b *testing.B) {
	h := mustProfile(b, 400, 900, gen.PCB)
	for _, thr := range []int{0, 20, 14, 10, 8} {
		name := "off"
		if thr > 0 {
			name = string(rune('0'+thr/10)) + string(rune('0'+thr%10))
		}
		b.Run("k"+name, func(b *testing.B) {
			cut := 0
			for i := 0; i < b.N; i++ {
				res, err := core.Bipartition(h, core.Options{Starts: 10, Seed: benchSeed, Threshold: thr})
				if err != nil {
					b.Fatal(err)
				}
				cut = res.CutSize
			}
			b.ReportMetric(float64(cut), "cut")
		})
	}
}

// BenchmarkBoundaryFraction (X3): boundary set size as a fraction of G
// for random vs circuit duals.
func BenchmarkBoundaryFraction(b *testing.B) {
	run := func(b *testing.B, h *Hypergraph, thr int) {
		ig := intersect.Build(h, intersect.Options{Threshold: thr})
		rng := rand.New(rand.NewSource(benchSeed))
		var frac float64
		for i := 0; i < b.N; i++ {
			u, v, _ := ig.G.LongestBFSPath(rng)
			pb := core.PartialFromCut(h, ig, u, v)
			frac = float64(len(pb.Boundary.Nets)) / float64(ig.G.NumVertices())
		}
		b.ReportMetric(frac, "boundary-frac")
	}
	b.Run("random", func(b *testing.B) {
		h, err := gen.Random(256, gen.RandomConfig{NumEdges: 384, MinEdgeSize: 2, MaxEdgeSize: 3, MaxDegree: 3},
			rand.New(rand.NewSource(benchSeed)))
		if err != nil {
			b.Fatal(err)
		}
		run(b, h, 0)
	})
	b.Run("circuit", func(b *testing.B) {
		run(b, mustProfile(b, 256, 384, gen.StdCell), 10)
	})
}

// BenchmarkCompleteCutVsExact (X4): the paper's greedy Complete-Cut
// against the König-optimal completion on the same boundary graphs.
func BenchmarkCompleteCutVsExact(b *testing.B) {
	h := mustProfile(b, 400, 900, gen.StdCell)
	ig := intersect.Build(h, intersect.Options{Threshold: 10})
	rng := rand.New(rand.NewSource(benchSeed))
	u, v, _ := ig.G.LongestBFSPath(rng)
	pb := core.PartialFromCut(h, ig, u, v)
	b.Run("greedy", func(b *testing.B) {
		losers := 0
		for i := 0; i < b.N; i++ {
			losers = core.LoserCount(core.CompleteCutGreedy(pb.Boundary))
		}
		b.ReportMetric(float64(losers), "losers")
	})
	b.Run("exact", func(b *testing.B) {
		losers := 0
		for i := 0; i < b.N; i++ {
			losers = core.LoserCount(core.CompleteCutExact(pb.Boundary))
		}
		b.ReportMetric(float64(losers), "losers")
	})
	b.Run("matching-oracle", func(b *testing.B) {
		size := 0
		for i := 0; i < b.N; i++ {
			_, sz, ok := matching.MinVertexCover(pb.Boundary.G)
			if !ok {
				b.Fatal("boundary graph not bipartite")
			}
			size = sz
		}
		b.ReportMetric(float64(size), "losers")
	})
}

// BenchmarkEngineerRule (X5): completion rules, cut and imbalance.
func BenchmarkEngineerRule(b *testing.B) {
	h := mustProfile(b, 500, 1000, gen.PCB)
	for _, comp := range []core.Completion{core.CompletionGreedy, core.CompletionExact, core.CompletionWeighted} {
		b.Run(comp.String(), func(b *testing.B) {
			var cut int
			var imb int64
			for i := 0; i < b.N; i++ {
				res, err := core.Bipartition(h, core.Options{Starts: 10, Seed: benchSeed, Threshold: 10, Completion: comp})
				if err != nil {
					b.Fatal(err)
				}
				cut = res.CutSize
				imb = partition.Imbalance(h, res.Partition)
			}
			b.ReportMetric(float64(cut), "cut")
			b.ReportMetric(100*float64(imb)/float64(h.TotalVertexWeight()), "imbalance%")
		})
	}
}

// BenchmarkMultiStartAblation (X6): cutsize and cost vs start count.
func BenchmarkMultiStartAblation(b *testing.B) {
	h := mustProfile(b, 400, 800, gen.StdCell)
	for _, starts := range []int{1, 5, 50} {
		b.Run(stars(starts), func(b *testing.B) {
			cut := 0
			for i := 0; i < b.N; i++ {
				res, err := core.Bipartition(h, core.Options{Starts: starts, Seed: int64(i), Threshold: 10})
				if err != nil {
					b.Fatal(err)
				}
				cut = res.CutSize
			}
			b.ReportMetric(float64(cut), "cut")
		})
	}
}

func stars(n int) string {
	switch n {
	case 1:
		return "starts1"
	case 5:
		return "starts5"
	default:
		return "starts50"
	}
}

// BenchmarkGranularization (X7): direct vs granularized partitioning.
func BenchmarkGranularization(b *testing.B) {
	h := mustProfile(b, 300, 600, gen.PCB)
	b.Run("direct", func(b *testing.B) {
		var imb int64
		for i := 0; i < b.N; i++ {
			res, err := core.Bipartition(h, core.Options{Starts: 10, Seed: benchSeed, Threshold: 10, Completion: core.CompletionWeighted})
			if err != nil {
				b.Fatal(err)
			}
			imb = partition.Imbalance(h, res.Partition)
		}
		b.ReportMetric(100*float64(imb)/float64(h.TotalVertexWeight()), "imbalance%")
	})
	b.Run("granularized", func(b *testing.B) {
		grain := h.TotalVertexWeight() / int64(2*h.NumVertices())
		if grain < 1 {
			grain = 1
		}
		var imb int64
		for i := 0; i < b.N; i++ {
			gr, err := Granularize(h, grain, 4)
			if err != nil {
				b.Fatal(err)
			}
			res, err := core.Bipartition(gr.H, core.Options{Starts: 10, Seed: benchSeed, Threshold: 10, Completion: core.CompletionWeighted})
			if err != nil {
				b.Fatal(err)
			}
			p, err := gr.Project(res.Partition)
			if err != nil {
				b.Fatal(err)
			}
			imb = partition.Imbalance(h, p)
		}
		b.ReportMetric(100*float64(imb)/float64(h.TotalVertexWeight()), "imbalance%")
	})
}

// BenchmarkScalingAlgI / KL / FM (X8): runtime growth; compare ns/op
// across sizes to see the O(n²) vs O(n² log n) shapes.
func benchScaling(b *testing.B, runner func(h *Hypergraph) error) {
	for _, n := range []int{250, 500, 1000, 2000} {
		b.Run(stats3(n), func(b *testing.B) {
			h := mustProfile(b, n, 2*n, gen.StdCell)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := runner(h); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func stats3(n int) string {
	switch n {
	case 250:
		return "n250"
	case 500:
		return "n500"
	case 1000:
		return "n1000"
	default:
		return "n2000"
	}
}

// BenchmarkScalingAlgI times one start of Algorithm I per op.
func BenchmarkScalingAlgI(b *testing.B) {
	benchScaling(b, func(h *Hypergraph) error {
		_, err := core.Bipartition(h, core.Options{Starts: 1, Seed: benchSeed, Threshold: 10})
		return err
	})
}

// BenchmarkScalingKL times one Kernighan–Lin run per op.
func BenchmarkScalingKL(b *testing.B) {
	benchScaling(b, func(h *Hypergraph) error {
		_, err := kl.Bisect(h, kl.Options{Seed: benchSeed, MaxPasses: 4})
		return err
	})
}

// BenchmarkScalingFM times one Fiduccia–Mattheyses run per op.
func BenchmarkScalingFM(b *testing.B) {
	benchScaling(b, func(h *Hypergraph) error {
		_, err := FM(h, FMOptions{Seed: benchSeed})
		return err
	})
}

// BenchmarkQuotientObjective (X9): quotient-cut values under the two
// objectives.
func BenchmarkQuotientObjective(b *testing.B) {
	h := mustProfile(b, 300, 600, gen.Hybrid)
	for _, obj := range []core.Objective{core.MinCut, core.MinQuotient} {
		b.Run(obj.String(), func(b *testing.B) {
			var q float64
			for i := 0; i < b.N; i++ {
				res, err := core.Bipartition(h, core.Options{Starts: 10, Seed: benchSeed, Threshold: 10, Objective: obj})
				if err != nil {
					b.Fatal(err)
				}
				q = partition.QuotientCut(h, res.Partition)
			}
			b.ReportMetric(q, "quotient")
		})
	}
}

// BenchmarkBFSTiePolicy: design-choice ablation of the double-BFS
// frontier policy.
func BenchmarkBFSTiePolicy(b *testing.B) {
	h := mustProfile(b, 400, 800, gen.StdCell)
	for _, balanced := range []bool{false, true} {
		name := "alternating"
		if balanced {
			name = "balanced"
		}
		b.Run(name, func(b *testing.B) {
			cut := 0
			for i := 0; i < b.N; i++ {
				res, err := core.Bipartition(h, core.Options{Starts: 10, Seed: benchSeed, Threshold: 10, BalancedBFS: balanced})
				if err != nil {
					b.Fatal(err)
				}
				cut = res.CutSize
			}
			b.ReportMetric(float64(cut), "cut")
		})
	}
}

// BenchmarkMultilevelVsFlat: the library's multilevel extension against
// flat Algorithm I and FM on the same instance — the historically
// decisive comparison.
func BenchmarkMultilevelVsFlat(b *testing.B) {
	h := mustProfile(b, 800, 1600, gen.StdCell)
	b.Run("multilevel", func(b *testing.B) {
		cut := 0
		for i := 0; i < b.N; i++ {
			res, err := Multilevel(h, MultilevelOptions{Seed: benchSeed})
			if err != nil {
				b.Fatal(err)
			}
			cut = res.CutSize
		}
		b.ReportMetric(float64(cut), "cut")
	})
	b.Run("flat-algI", func(b *testing.B) {
		cut := 0
		for i := 0; i < b.N; i++ {
			res, err := core.Bipartition(h, core.Options{
				Starts: 10, Seed: benchSeed, Threshold: 10,
				BalancedBFS: true, Completion: core.CompletionWeighted,
			})
			if err != nil {
				b.Fatal(err)
			}
			cut = res.CutSize
		}
		b.ReportMetric(float64(cut), "cut")
	})
	b.Run("flat-fm", func(b *testing.B) {
		cut := 0
		for i := 0; i < b.N; i++ {
			res, err := FM(h, FMOptions{Seed: benchSeed})
			if err != nil {
				b.Fatal(err)
			}
			cut = res.CutSize
		}
		b.ReportMetric(float64(cut), "cut")
	})
}

// BenchmarkKWay: K-way recursive bisection with connectivity metric.
func BenchmarkKWay(b *testing.B) {
	h := mustProfile(b, 400, 800, gen.PCB)
	for _, k := range []int{2, 4, 8} {
		b.Run("k"+string(rune('0'+k)), func(b *testing.B) {
			var conn int64
			for i := 0; i < b.N; i++ {
				res, err := KWay(h, KWayOptions{K: k, Seed: benchSeed})
				if err != nil {
					b.Fatal(err)
				}
				conn = res.Connectivity
			}
			b.ReportMetric(float64(conn), "connectivity")
		})
	}
}

// BenchmarkAllMethods: every partitioner in the library on one
// instance — the grand comparison extending Table 2 with the methods
// the paper only cites (flow, spectral, multilevel).
func BenchmarkAllMethods(b *testing.B) {
	h := mustProfile(b, 300, 650, gen.StdCell)
	report := func(b *testing.B, cut int) { b.ReportMetric(float64(cut), "cut") }
	b.Run("AlgI", func(b *testing.B) {
		cut := 0
		for i := 0; i < b.N; i++ {
			res, err := core.Bipartition(h, core.Options{Starts: 50, Seed: benchSeed, Threshold: 10})
			if err != nil {
				b.Fatal(err)
			}
			cut = res.CutSize
		}
		report(b, cut)
	})
	b.Run("Multilevel", func(b *testing.B) {
		cut := 0
		for i := 0; i < b.N; i++ {
			res, err := Multilevel(h, MultilevelOptions{Seed: benchSeed})
			if err != nil {
				b.Fatal(err)
			}
			cut = res.CutSize
		}
		report(b, cut)
	})
	b.Run("KL", func(b *testing.B) {
		cut := 0
		for i := 0; i < b.N; i++ {
			res, err := kl.Bisect(h, kl.Options{Seed: benchSeed})
			if err != nil {
				b.Fatal(err)
			}
			cut = res.CutSize
		}
		report(b, cut)
	})
	b.Run("FM", func(b *testing.B) {
		cut := 0
		for i := 0; i < b.N; i++ {
			res, err := FM(h, FMOptions{Seed: benchSeed})
			if err != nil {
				b.Fatal(err)
			}
			cut = res.CutSize
		}
		report(b, cut)
	})
	b.Run("SA", func(b *testing.B) {
		cut := 0
		for i := 0; i < b.N; i++ {
			res, err := anneal.Bisect(h, anneal.Options{Seed: benchSeed})
			if err != nil {
				b.Fatal(err)
			}
			cut = res.CutSize
		}
		report(b, cut)
	})
	b.Run("Flow", func(b *testing.B) {
		cut := 0
		for i := 0; i < b.N; i++ {
			res, err := Flow(h, FlowOptions{Seed: benchSeed})
			if err != nil {
				b.Fatal(err)
			}
			cut = res.CutSize
		}
		report(b, cut)
	})
	b.Run("Spectral", func(b *testing.B) {
		cut := 0
		for i := 0; i < b.N; i++ {
			res, err := Spectral(h, SpectralOptions{Seed: benchSeed})
			if err != nil {
				b.Fatal(err)
			}
			cut = res.CutSize
		}
		report(b, cut)
	})
}

// BenchmarkPlacement: min-cut placement end to end with HPWL metric.
func BenchmarkPlacement(b *testing.B) {
	h := mustProfile(b, 512, 1024, gen.StdCell)
	for _, tp := range []bool{false, true} {
		name := "plain"
		if tp {
			name = "terminal-propagation"
		}
		b.Run(name, func(b *testing.B) {
			var hp int64
			for i := 0; i < b.N; i++ {
				pl, err := PlaceMinCut(h, PlaceOptions{Rows: 8, Cols: 8, Seed: benchSeed, TerminalPropagation: tp})
				if err != nil {
					b.Fatal(err)
				}
				hp = HPWL(h, pl)
			}
			b.ReportMetric(float64(hp), "HPWL")
		})
	}
}

// BenchmarkParallelMultiStart (X11): the same 50-start Algorithm I run
// at engine Parallelism 1 vs 4 on a 10k-module profile netlist. The
// cut is identical by the engine's determinism guarantee (asserted in
// the test suite); wall-clock per op carries the speedup, bounded by
// min(workers, NumCPU).
func BenchmarkParallelMultiStart(b *testing.B) {
	h := mustProfile(b, 10000, 20000, gen.StdCell)
	for _, par := range []int{1, 4} {
		b.Run(fmt.Sprintf("parallelism=%d", par), func(b *testing.B) {
			cut := 0
			for i := 0; i < b.N; i++ {
				res, err := core.Bipartition(h, core.Options{Starts: 50, Seed: benchSeed, Parallelism: par})
				if err != nil {
					b.Fatal(err)
				}
				cut = res.CutSize
			}
			b.ReportMetric(float64(cut), "cutsize")
		})
	}
}
