package fasthgp

// Differential suite: every algorithm in the Algorithms registry runs
// over the shared small-instance families and is checked against two
// independent referees — the internal/verify invariant oracle (is the
// claimed result a real, correctly-scored bipartition?) and the
// internal/bruteforce enumerator (is the cut no better than the true
// optimum, and — where the paper guarantees it — no worse either?).

import (
	"context"
	"testing"

	"fasthgp/internal/bruteforce"
	"fasthgp/internal/verify"
)

// diffConfig keeps the differential runs deterministic and cheap; the
// instances are tiny, so a handful of starts is plenty.
var diffConfig = AlgoConfig{Starts: 4, Seed: 1, Parallelism: 2}

// runAndCheck executes one registry algorithm on h and pushes the
// result through the invariant oracle, returning the verified cutsize.
func runAndCheck(t *testing.T, a Algorithm, h *Hypergraph, cfg AlgoConfig) int {
	t.Helper()
	res, err := a.Run(context.Background(), h, cfg)
	if err != nil {
		t.Fatalf("%s failed on %v: %v", a.Name, h, err)
	}
	if _, err := verify.CheckCut(h, res.Partition, res.CutSize); err != nil {
		t.Fatalf("%s produced an invalid result on %v: %v", a.Name, h, err)
	}
	return res.CutSize
}

// TestDifferentialSmallInstances runs the whole registry over the
// curated small-instance family and checks validity plus the bruteforce
// lower bound: no heuristic may ever claim a cut below the
// unconstrained optimum.
func TestDifferentialSmallInstances(t *testing.T) {
	algos := Algorithms()
	for _, inst := range verify.SmallInstances() {
		_, optimum, err := bruteforce.MinCutUnconstrained(inst.H)
		if err != nil {
			t.Fatalf("%s: bruteforce: %v", inst.Name, err)
		}
		for _, a := range algos {
			cut := runAndCheck(t, a, inst.H, diffConfig)
			if cut < optimum {
				t.Errorf("%s on %s: cut %d below the true optimum %d — scoring bug",
					a.Name, inst.Name, cut, optimum)
			}
		}
	}
}

// TestDifferentialExhaustive runs the registry over every non-empty
// r-uniform hypergraph family on 4 vertices — 63 graphs for r=2 and 15
// for r=3, so every boundary shape a tiny instance can take is covered.
func TestDifferentialExhaustive(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive family is slow under -short")
	}
	algos := Algorithms()
	families := append(verify.ExhaustiveUniform(4, 2), verify.ExhaustiveUniform(4, 3)...)
	for _, inst := range families {
		_, optimum, err := bruteforce.MinCutUnconstrained(inst.H)
		if err != nil {
			t.Fatalf("%s: bruteforce: %v", inst.Name, err)
		}
		for _, a := range algos {
			cut := runAndCheck(t, a, inst.H, AlgoConfig{Starts: 2, Seed: 3, Parallelism: 1})
			if cut < optimum {
				t.Errorf("%s on %s: cut %d below the true optimum %d",
					a.Name, inst.Name, cut, optimum)
			}
		}
	}
}

// TestDifferentialPlanted checks the planted-cut family, where the
// bruteforce enumerator has certified that the planted cut is both the
// balanced and the unconstrained optimum. Every algorithm must stay
// valid and at-or-above the optimum; Algorithm I with a modest start
// budget must find it exactly, which is the paper's headline claim on
// instances whose boundary the double-BFS construction can isolate.
func TestDifferentialPlanted(t *testing.T) {
	algos := Algorithms()
	for _, inst := range verify.PlantedInstances() {
		for _, a := range algos {
			cfg := diffConfig
			if a.Name == "algo1" {
				cfg.Starts = 32
			}
			cut := runAndCheck(t, a, inst.H, cfg)
			if cut < inst.Cut {
				t.Errorf("%s on %s: cut %d below the certified optimum %d",
					a.Name, inst.Name, cut, inst.Cut)
			}
			if a.Name == "algo1" && cut != inst.Cut {
				t.Errorf("algo1 on %s: cut %d, want the certified optimum %d",
					inst.Name, cut, inst.Cut)
			}
		}
	}
}

// TestDifferentialParallelismInvariance re-runs every algorithm with
// the worker count — and nothing else — changed, and demands identical
// results: the registry's uniform determinism contract.
func TestDifferentialParallelismInvariance(t *testing.T) {
	algos := Algorithms()
	insts := verify.SmallInstances()
	for _, inst := range insts[:6] {
		for _, a := range algos {
			serial, err := a.Run(context.Background(), inst.H, AlgoConfig{Starts: 5, Seed: 9, Parallelism: 1})
			if err != nil {
				t.Fatalf("%s on %s: %v", a.Name, inst.Name, err)
			}
			wide, err := a.Run(context.Background(), inst.H, AlgoConfig{Starts: 5, Seed: 9, Parallelism: 8})
			if err != nil {
				t.Fatalf("%s on %s: %v", a.Name, inst.Name, err)
			}
			if serial.CutSize != wide.CutSize || serial.Engine.BestStart != wide.Engine.BestStart {
				t.Errorf("%s on %s: parallelism changed the result: cut %d@%d vs %d@%d",
					a.Name, inst.Name, serial.CutSize, serial.Engine.BestStart,
					wide.CutSize, wide.Engine.BestStart)
			}
			for i := range serial.Engine.Cuts {
				if serial.Engine.Cuts[i] != wide.Engine.Cuts[i] {
					t.Errorf("%s on %s: start %d cut %d vs %d across parallelism",
						a.Name, inst.Name, i, serial.Engine.Cuts[i], wide.Engine.Cuts[i])
				}
			}
		}
	}
}
