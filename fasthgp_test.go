package fasthgp

import (
	"bytes"
	"errors"
	"math/rand"
	"strings"
	"testing"
)

func TestFacadeEndToEnd(t *testing.T) {
	b := NewBuilder(8)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	b.AddEdge(4, 5)
	b.AddEdge(5, 6)
	b.AddEdge(6, 7)
	b.AddEdge(3, 4) // bridge
	h, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Partition(h, Options{Starts: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.CutSize != 1 {
		t.Errorf("CutSize = %d, want 1", res.CutSize)
	}
	if got := CutSize(h, res.Partition); got != 1 {
		t.Errorf("CutSize helper = %d", got)
	}
	if Imbalance(h, res.Partition) != 0 {
		t.Errorf("Imbalance = %d", Imbalance(h, res.Partition))
	}
	if q := QuotientCut(h, res.Partition); q != 0.25 {
		t.Errorf("QuotientCut = %g, want 0.25", q)
	}
}

func TestFacadeBaselines(t *testing.T) {
	h, err := FromEdges(10, [][]int{
		{0, 1}, {1, 2}, {2, 3}, {3, 4}, {0, 4},
		{5, 6}, {6, 7}, {7, 8}, {8, 9}, {5, 9},
		{4, 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if r, err := KL(h, KLOptions{Seed: 1}); err != nil || r.CutSize < 1 {
		t.Errorf("KL: %v, cut=%v", err, r)
	}
	if r, err := FM(h, FMOptions{Seed: 1}); err != nil || r.CutSize < 1 {
		t.Errorf("FM: %v, cut=%v", err, r)
	}
	if r, err := Anneal(h, AnnealOptions{Seed: 1, MovesPerTemp: 40}); err != nil || r.CutSize < 1 {
		t.Errorf("Anneal: %v, cut=%v", err, r)
	}
	if _, cut, err := RandomBisection(h, rand.New(rand.NewSource(1))); err != nil || cut < 1 {
		t.Errorf("RandomBisection: %v, cut=%d", err, cut)
	}
}

func TestFacadeNetlistIO(t *testing.T) {
	h, err := ReadNetlist(strings.NewReader("net a m0 m1\nnet b m1 m2\n"))
	if err != nil {
		t.Fatal(err)
	}
	if h.NumVertices() != 3 || h.NumEdges() != 2 {
		t.Fatalf("dims = %d,%d", h.NumVertices(), h.NumEdges())
	}
	var buf bytes.Buffer
	if err := WriteNetlist(&buf, h); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "net a") {
		t.Errorf("output missing net:\n%s", buf.String())
	}
}

func TestFacadeGenerators(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	hp, err := GenerateProfile(ProfileConfig{Modules: 60, Signals: 120, Technology: StdCell}, rng)
	if err != nil || hp.NumVertices() != 60 {
		t.Fatalf("profile: %v", err)
	}
	hr, err := GenerateRandom(40, RandomConfig{NumEdges: 60}, rng)
	if err != nil || hr.NumEdges() != 60 {
		t.Fatalf("random: %v", err)
	}
	hpl, planted, err := GeneratePlanted(40, PlantedConfig{CutSize: 2, IntraEdges: 80}, rng)
	if err != nil || len(planted) != 2 || hpl.NumVertices() != 40 {
		t.Fatalf("planted: %v", err)
	}
}

func TestFacadePlacement(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	h, err := GenerateProfile(ProfileConfig{Modules: 64, Signals: 128, Technology: GateArray}, rng)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := PlaceMinCut(h, PlaceOptions{Rows: 2, Cols: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if HPWL(h, pl) <= 0 {
		t.Error("HPWL should be positive on a 2x2 grid")
	}
}

func TestFacadeGranularize(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.SetVertexWeight(1, 9)
	h, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	gr, err := Granularize(h, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if gr.H.NumVertices() != 5 {
		t.Errorf("granularized vertices = %d, want 5", gr.H.NumVertices())
	}
}

func TestFacadeCompletionModes(t *testing.T) {
	h, err := FromEdges(12, [][]int{
		{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5},
		{6, 7}, {7, 8}, {8, 9}, {9, 10}, {10, 11},
		{0, 6}, {5, 11},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, comp := range []Completion{CompletionGreedy, CompletionExact, CompletionWeighted} {
		res, err := Partition(h, Options{Seed: 3, Starts: 4, Completion: comp})
		if err != nil {
			t.Fatalf("%v: %v", comp, err)
		}
		if err := res.Partition.Validate(h); err != nil {
			t.Fatalf("%v: %v", comp, err)
		}
	}
	if _, err := Partition(h, Options{Objective: MinQuotient}); err != nil {
		t.Fatal(err)
	}
	if _, err := Partition(h, Options{Objective: MinCut}); err != nil {
		t.Fatal(err)
	}
	if WeightedCutSize(h, mustPartition(t, h)) < 1 {
		t.Error("weighted cut should be >= 1 on connected instance")
	}
}

func TestFacadeMultilevel(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	h, err := GenerateProfile(ProfileConfig{Modules: 300, Signals: 600, Technology: StdCell}, rng)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Multilevel(h, MultilevelOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Partition.Validate(h); err != nil {
		t.Fatal(err)
	}
	if res.Levels < 1 {
		t.Error("no coarsening happened on a 300-module netlist")
	}
}

func TestFacadeKWay(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	h, err := GenerateProfile(ProfileConfig{Modules: 160, Signals: 320, Technology: GateArray}, rng)
	if err != nil {
		t.Fatal(err)
	}
	res, err := KWay(h, KWayOptions{K: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.K != 4 || res.CutNets <= 0 || res.Connectivity < int64(res.CutNets) {
		t.Errorf("KWay result: %+v", res)
	}
}

func TestFacadeRebalance(t *testing.T) {
	h, err := FromEdges(10, [][]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 6}, {6, 7}, {7, 8}, {8, 9}})
	if err != nil {
		t.Fatal(err)
	}
	p := New10Lopsided()
	moved, err := Rebalance(h, p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if moved == 0 || Imbalance(h, p) != 0 {
		t.Errorf("moved %d, imbalance %d", moved, Imbalance(h, p))
	}
}

// TestFacadeRebalanceNegativeTolerance: a negative tolerance is a
// caller bug, not a "move everything" request — it must be rejected
// with the typed sentinel and leave the partition untouched.
func TestFacadeRebalanceNegativeTolerance(t *testing.T) {
	h, err := FromEdges(10, [][]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 6}, {6, 7}, {7, 8}, {8, 9}})
	if err != nil {
		t.Fatal(err)
	}
	p := New10Lopsided()
	before := append([]Side(nil), p.Sides()...)
	moved, err := Rebalance(h, p, -1)
	if !errors.Is(err, ErrNegativeTolerance) {
		t.Fatalf("Rebalance(-1) error = %v, want ErrNegativeTolerance", err)
	}
	if moved != 0 {
		t.Errorf("Rebalance(-1) reported %d moves", moved)
	}
	for v, s := range p.Sides() {
		if s != before[v] {
			t.Fatalf("Rebalance(-1) mutated vertex %d", v)
		}
	}
}

// New10Lopsided builds a 9-left / 1-right partition over 10 vertices.
func New10Lopsided() *Bipartition {
	p := NewBipartition(10)
	p.Assign(9, Right)
	for v := 0; v < 9; v++ {
		p.Assign(v, Left)
	}
	return p
}

func TestFacadeHMetis(t *testing.T) {
	h, err := ReadHMetis(strings.NewReader("2 4\n1 2\n3 4 1\n"))
	if err != nil {
		t.Fatal(err)
	}
	if h.NumEdges() != 2 || h.NumVertices() != 4 {
		t.Fatalf("dims = %d,%d", h.NumEdges(), h.NumVertices())
	}
	var buf bytes.Buffer
	if err := WriteHMetis(&buf, h); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "2 4") {
		t.Errorf("header = %q", buf.String())
	}
}

func TestFacadeCluster(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	h, err := GenerateProfile(ProfileConfig{Modules: 120, Signals: 240, Technology: StdCell}, rng)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Cluster(h, ClusterOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumClusters >= h.NumVertices() || res.NumClusters < 2 {
		t.Errorf("NumClusters = %d", res.NumClusters)
	}
	if res.Absorption <= 0 || res.Absorption > 1 {
		t.Errorf("Absorption = %g", res.Absorption)
	}
	out, err := Partition(res.H, Options{Seed: 1, Starts: 5})
	if err != nil {
		t.Fatal(err)
	}
	p := res.Project(out.Partition)
	if err := p.Validate(h); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeSpectral(t *testing.T) {
	h, err := FromEdges(8, [][]int{
		{0, 1}, {1, 2}, {2, 3}, {0, 3},
		{4, 5}, {5, 6}, {6, 7}, {4, 7},
		{3, 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Spectral(h, SpectralOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.CutSize != 1 {
		t.Errorf("spectral cut = %d, want 1", res.CutSize)
	}
	if len(res.Fiedler) != 8 {
		t.Errorf("Fiedler length = %d", len(res.Fiedler))
	}
}

func TestFacadeFlow(t *testing.T) {
	h, err := FromEdges(6, [][]int{
		{0, 1}, {1, 2}, {0, 2},
		{3, 4}, {4, 5}, {3, 5},
		{2, 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Flow(h, FlowOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.CutSize != 1 {
		t.Errorf("flow cut = %d, want 1", res.CutSize)
	}
	p, value, err := MinNetCut(h, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if value != 1 || CutSize(h, p) != 1 {
		t.Errorf("MinNetCut = %d / cut %d", value, CutSize(h, p))
	}
}

func mustPartition(t *testing.T, h *Hypergraph) *Bipartition {
	t.Helper()
	res, err := Partition(h, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return res.Partition
}
