// Package baseline provides the trivial partitioners the paper uses as
// controls: uniformly random cuts and best-of-k random bisections.
//
// The paper's motivation (Section 1, citing Bollobás): on "easy" random
// hypergraphs even a random cut is within a constant factor of the
// optimum, so a heuristic only distinguishes itself on difficult
// inputs. These baselines make that comparison measurable.
package baseline

import (
	"fmt"
	"math/rand"

	"fasthgp/internal/hypergraph"
	"fasthgp/internal/kl"
	"fasthgp/internal/partition"
)

// RandomBisection returns a uniformly random balanced bisection and its
// cutsize.
func RandomBisection(h *hypergraph.Hypergraph, rng *rand.Rand) (*partition.Bipartition, int, error) {
	if h.NumVertices() < 2 {
		return nil, 0, fmt.Errorf("baseline: hypergraph has %d vertices; need at least 2", h.NumVertices())
	}
	p := kl.RandomBisection(h.NumVertices(), rng)
	return p, partition.CutSize(h, p), nil
}

// BestRandomBisection returns the best of k random bisections.
func BestRandomBisection(h *hypergraph.Hypergraph, k int, rng *rand.Rand) (*partition.Bipartition, int, error) {
	if k < 1 {
		k = 1
	}
	best, bestCut, err := RandomBisection(h, rng)
	if err != nil {
		return nil, 0, err
	}
	for i := 1; i < k; i++ {
		p, cut, err := RandomBisection(h, rng)
		if err != nil {
			return nil, 0, err
		}
		if cut < bestCut {
			best, bestCut = p, cut
		}
	}
	return best, bestCut, nil
}

// RandomCut assigns each vertex a side by a fair coin, repairing empty
// sides by moving one random vertex. Unbalanced by design — the
// "arbitrary cut" of the paper's probabilistic arguments.
func RandomCut(h *hypergraph.Hypergraph, rng *rand.Rand) (*partition.Bipartition, int, error) {
	n := h.NumVertices()
	if n < 2 {
		return nil, 0, fmt.Errorf("baseline: hypergraph has %d vertices; need at least 2", n)
	}
	p := partition.New(n)
	for v := 0; v < n; v++ {
		if rng.Intn(2) == 0 {
			p.Assign(v, partition.Left)
		} else {
			p.Assign(v, partition.Right)
		}
	}
	l, r, _ := p.Counts()
	if l == 0 {
		p.Assign(rng.Intn(n), partition.Left)
	} else if r == 0 {
		p.Assign(rng.Intn(n), partition.Right)
	}
	return p, partition.CutSize(h, p), nil
}
