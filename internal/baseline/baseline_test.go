package baseline

import (
	"math/rand"
	"testing"

	"fasthgp/internal/hypergraph"
	"fasthgp/internal/partition"
)

func mkHG(t *testing.T) *hypergraph.Hypergraph {
	t.Helper()
	b := hypergraph.NewBuilder(12)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 24; i++ {
		b.AddEdge(rng.Intn(12), rng.Intn(12), rng.Intn(12))
	}
	return b.MustBuild()
}

func TestRandomBisection(t *testing.T) {
	h := mkHG(t)
	rng := rand.New(rand.NewSource(2))
	p, cut, err := RandomBisection(h, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !partition.IsBisection(p) {
		t.Error("not a bisection")
	}
	if cut != partition.CutSize(h, p) {
		t.Error("cut mismatch")
	}
}

func TestBestRandomBisectionImproves(t *testing.T) {
	h := mkHG(t)
	// Best of 50 with the same stream prefix can never beat best of 1
	// drawn from the same seed... compare statistically instead: over
	// several seeds, best-of-20 ≤ single draw with the same seed.
	for seed := int64(0); seed < 5; seed++ {
		_, one, err := RandomBisection(h, rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		_, many, err := BestRandomBisection(h, 20, rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		if many > one {
			t.Errorf("seed %d: best-of-20 cut %d > single cut %d", seed, many, one)
		}
	}
}

func TestBestRandomBisectionKFloor(t *testing.T) {
	h := mkHG(t)
	if _, _, err := BestRandomBisection(h, 0, rand.New(rand.NewSource(3))); err != nil {
		t.Errorf("k=0 should clamp to 1: %v", err)
	}
}

func TestRandomCutValid(t *testing.T) {
	h := mkHG(t)
	for seed := int64(0); seed < 10; seed++ {
		p, cut, err := RandomCut(h, rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Validate(h); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if cut != partition.CutSize(h, p) {
			t.Error("cut mismatch")
		}
	}
}

func TestErrors(t *testing.T) {
	h, err := hypergraph.FromEdges(1, [][]int{{0}})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	if _, _, err := RandomBisection(h, rng); err == nil {
		t.Error("RandomBisection accepted 1 vertex")
	}
	if _, _, err := RandomCut(h, rng); err == nil {
		t.Error("RandomCut accepted 1 vertex")
	}
	if _, _, err := BestRandomBisection(h, 5, rng); err == nil {
		t.Error("BestRandomBisection accepted 1 vertex")
	}
}
