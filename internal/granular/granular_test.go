package granular

import (
	"math/rand"
	"testing"

	"fasthgp/internal/core"
	"fasthgp/internal/hypergraph"
	"fasthgp/internal/partition"
)

func weighted(t *testing.T) *hypergraph.Hypergraph {
	t.Helper()
	b := hypergraph.NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	b.AddEdge(0, 3)
	b.SetVertexWeight(0, 10) // splits into ceil(10/3)=4 grains
	b.SetVertexWeight(1, 3)
	b.SetVertexWeight(2, 1)
	b.SetVertexWeight(3, 7) // splits into 3 grains
	return b.MustBuild()
}

func TestGranularizeStructure(t *testing.T) {
	h := weighted(t)
	res, err := Granularize(h, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.SubsOf[0]); got != 4 {
		t.Errorf("module 0 split into %d, want 4", got)
	}
	if got := len(res.SubsOf[1]); got != 1 {
		t.Errorf("module 1 split into %d, want 1", got)
	}
	if got := len(res.SubsOf[3]); got != 3 {
		t.Errorf("module 3 split into %d, want 3", got)
	}
	// Total weight preserved.
	if res.H.TotalVertexWeight() != h.TotalVertexWeight() {
		t.Errorf("total weight %d → %d", h.TotalVertexWeight(), res.H.TotalVertexWeight())
	}
	// Link nets: (4-1) + (3-1) = 5 chains.
	if len(res.LinkNets) != 5 {
		t.Errorf("link nets = %d, want 5", len(res.LinkNets))
	}
	for _, e := range res.LinkNets {
		if res.H.EdgeWeight(e) != 5 {
			t.Errorf("link net %d weight %d, want 5", e, res.H.EdgeWeight(e))
		}
		if res.H.EdgeSize(e) != 2 {
			t.Errorf("link net %d size %d, want 2", e, res.H.EdgeSize(e))
		}
	}
	// Original nets preserved in count.
	if res.H.NumEdges() != h.NumEdges()+len(res.LinkNets) {
		t.Errorf("edges = %d", res.H.NumEdges())
	}
	// OrigOf and SubsOf are inverse.
	for v, subs := range res.SubsOf {
		for _, s := range subs {
			if res.OrigOf[s] != v {
				t.Errorf("OrigOf[%d] = %d, want %d", s, res.OrigOf[s], v)
			}
		}
	}
	// Max grain weight respected.
	for nv := 0; nv < res.H.NumVertices(); nv++ {
		if res.H.VertexWeight(nv) > 3 {
			t.Errorf("grain %d weight %d > 3", nv, res.H.VertexWeight(nv))
		}
	}
}

func TestGranularizeNoHeavyModules(t *testing.T) {
	h, err := hypergraph.FromEdges(3, [][]int{{0, 1}, {1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Granularize(h, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.H.NumVertices() != 3 || len(res.LinkNets) != 0 {
		t.Error("unit-weight netlist should be unchanged")
	}
}

func TestGranularizeErrors(t *testing.T) {
	h, err := hypergraph.FromEdges(2, [][]int{{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Granularize(h, 0, 1); err == nil {
		t.Error("accepted grain 0")
	}
}

func TestProjectMajority(t *testing.T) {
	h := weighted(t)
	res, err := Granularize(h, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	p := partition.New(res.H.NumVertices())
	for nv := 0; nv < res.H.NumVertices(); nv++ {
		p.Assign(nv, partition.Right)
	}
	// Flip one submodule of module 0 Left: majority stays Right.
	p.Assign(res.SubsOf[0][0], partition.Left)
	orig, err := res.Project(p)
	if err != nil {
		t.Fatal(err)
	}
	if orig.Side(0) != partition.Right {
		t.Error("majority projection failed")
	}
	if res.SplitModules(p) != 1 {
		t.Errorf("SplitModules = %d, want 1", res.SplitModules(p))
	}
}

func TestProjectErrors(t *testing.T) {
	h := weighted(t)
	res, err := Granularize(h, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := res.Project(partition.New(2)); err == nil {
		t.Error("accepted wrong-size partition")
	}
	if _, err := res.Project(partition.New(res.H.NumVertices())); err == nil {
		t.Error("accepted incomplete partition")
	}
}

func TestGranularizedPartitionImprovesBalance(t *testing.T) {
	// A netlist with one giant module: direct partitioning cannot
	// balance; granularized partitioning can, and link nets keep the
	// giant intact or torn only rarely.
	rng := rand.New(rand.NewSource(3))
	b := hypergraph.NewBuilder(20)
	for i := 0; i+1 < 10; i++ {
		b.AddEdge(i, i+1)
		b.AddEdge(10+i, 10+i+1)
	}
	b.AddEdge(0, 10)
	for v := 0; v < 20; v++ {
		b.SetVertexWeight(v, int64(1+rng.Intn(3)))
	}
	b.SetVertexWeight(5, 60) // the giant
	h := b.MustBuild()

	res, err := Granularize(h, 4, 10)
	if err != nil {
		t.Fatal(err)
	}
	out, err := core.Bipartition(res.H, core.Options{Starts: 10, Seed: 1, Completion: core.CompletionWeighted})
	if err != nil {
		t.Fatal(err)
	}
	orig, err := res.Project(out.Partition)
	if err != nil {
		t.Fatal(err)
	}
	if err := orig.Validate(h); err != nil {
		t.Fatalf("projected partition invalid: %v", err)
	}
}
