// Package granular implements the paper's netlist granularization
// extension (Section 5): "replacing larger modules with linked uniform
// small modules. This seems to work particularly well in the
// standard-cell regime, where cell area is roughly proportional to the
// number of I/Os."
//
// A module whose weight exceeds the grain is split into k = ⌈w/grain⌉
// submodules of near-equal weight, chained together with high-weight
// 2-pin link nets (so partitioners are strongly discouraged from
// splitting a module). The original nets distribute their pin over the
// submodules round-robin, modelling I/O spread across the cell. A
// partition of the granularized netlist projects back to the original
// modules by weighted majority.
package granular

import (
	"fmt"

	"fasthgp/internal/hypergraph"
	"fasthgp/internal/partition"
)

// Result describes a granularized hypergraph and the bookkeeping to map
// results back.
type Result struct {
	// H is the granularized hypergraph.
	H *hypergraph.Hypergraph
	// OrigOf maps each new module to its original module.
	OrigOf []int
	// SubsOf maps each original module to its new submodule indices.
	SubsOf [][]int
	// LinkNets lists the added chain-net indices in H.
	LinkNets []int
}

// Granularize splits every module of h heavier than grain. The link
// nets receive weight linkWeight (values < 1 default to 1). Nets and
// module weights are otherwise preserved; names are dropped (the
// granularized netlist is an internal artifact).
func Granularize(h *hypergraph.Hypergraph, grain int64, linkWeight int64) (*Result, error) {
	if grain < 1 {
		return nil, fmt.Errorf("granular: grain must be >= 1, got %d", grain)
	}
	if linkWeight < 1 {
		linkWeight = 1
	}
	res := &Result{SubsOf: make([][]int, h.NumVertices())}
	var weights []int64
	for v := 0; v < h.NumVertices(); v++ {
		w := h.VertexWeight(v)
		k := int64(1)
		if w > grain {
			k = (w + grain - 1) / grain
		}
		subs := make([]int, 0, k)
		for i := int64(0); i < k; i++ {
			// Spread the weight as evenly as integer division allows.
			sw := w / k
			if i < w%k {
				sw++
			}
			subs = append(subs, len(res.OrigOf))
			res.OrigOf = append(res.OrigOf, v)
			weights = append(weights, sw)
		}
		res.SubsOf[v] = subs
	}

	b := hypergraph.NewBuilder(len(res.OrigOf))
	for nv, w := range weights {
		b.SetVertexWeight(nv, w)
	}
	// Original nets: each pin lands on one submodule of its module,
	// round-robin per module so multi-net modules spread their I/O.
	cursor := make([]int, h.NumVertices())
	for e := 0; e < h.NumEdges(); e++ {
		pins := h.EdgePins(e)
		newPins := make([]int, len(pins))
		for i, v := range pins {
			subs := res.SubsOf[v]
			newPins[i] = subs[cursor[v]%len(subs)]
			cursor[v]++
		}
		ne := b.AddEdge(newPins...)
		b.SetEdgeWeight(ne, h.EdgeWeight(e))
	}
	// Link chains.
	for v := 0; v < h.NumVertices(); v++ {
		subs := res.SubsOf[v]
		for i := 0; i+1 < len(subs); i++ {
			le := b.AddEdge(subs[i], subs[i+1])
			b.SetEdgeWeight(le, linkWeight)
			res.LinkNets = append(res.LinkNets, le)
		}
	}
	gh, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("granular: %w", err)
	}
	res.H = gh
	return res, nil
}

// Project maps a complete partition of the granularized hypergraph back
// to the original: each original module takes the side holding the
// majority of its submodule weight (ties go Left). The returned
// partition covers the original module set.
func (r *Result) Project(p *partition.Bipartition) (*partition.Bipartition, error) {
	if p.Len() != r.H.NumVertices() {
		return nil, fmt.Errorf("granular: partition covers %d modules, granularized hypergraph has %d", p.Len(), r.H.NumVertices())
	}
	if !p.IsComplete() {
		return nil, fmt.Errorf("granular: partition incomplete")
	}
	orig := partition.New(len(r.SubsOf))
	for v, subs := range r.SubsOf {
		var lw, rw int64
		for _, s := range subs {
			if p.Side(s) == partition.Left {
				lw += r.H.VertexWeight(s)
			} else {
				rw += r.H.VertexWeight(s)
			}
		}
		if lw >= rw {
			orig.Assign(v, partition.Left)
		} else {
			orig.Assign(v, partition.Right)
		}
	}
	return orig, nil
}

// SplitModules counts original modules whose submodules ended up on
// both sides of p — the "torn" modules a high link weight suppresses.
func (r *Result) SplitModules(p *partition.Bipartition) int {
	torn := 0
	for _, subs := range r.SubsOf {
		if len(subs) < 2 {
			continue
		}
		s0 := p.Side(subs[0])
		for _, s := range subs[1:] {
			if p.Side(s) != s0 {
				torn++
				break
			}
		}
	}
	return torn
}
