package engine

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestNormalize(t *testing.T) {
	cases := []struct{ in, want int }{{-3, 1}, {0, 1}, {1, 1}, {7, 7}}
	for _, c := range cases {
		if got := Normalize(c.in); got != c.want {
			t.Errorf("Normalize(%d) = %d, want %d", c.in, got, c.want)
		}
	}
	if got := NormalizeTo(0, 5); got != 5 {
		t.Errorf("NormalizeTo(0, 5) = %d, want 5", got)
	}
	if got := NormalizeTo(3, 5); got != 3 {
		t.Errorf("NormalizeTo(3, 5) = %d, want 3", got)
	}
	if got := NormalizeTo(0, 0); got != 1 {
		t.Errorf("NormalizeTo(0, 0) = %d, want 1", got)
	}
	if got := NormalizeParallelism(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("NormalizeParallelism(0) = %d, want GOMAXPROCS", got)
	}
	if got := NormalizeParallelism(3); got != 3 {
		t.Errorf("NormalizeParallelism(3) = %d, want 3", got)
	}
}

func TestStartSeedStreamsDistinct(t *testing.T) {
	seen := map[int64]int{}
	for i := 0; i < 1000; i++ {
		s := StartSeed(42, i)
		if prev, dup := seen[s]; dup {
			t.Fatalf("StartSeed(42, %d) collides with start %d", i, prev)
		}
		seen[s] = i
	}
	if StartSeed(1, 3) == StartSeed(2, 3) {
		t.Error("different seeds produced the same start stream")
	}
}

// scoreSpec is a toy multi-start whose per-start score is a pure
// function of the start's RNG stream.
func scoreSpec(starts, parallelism int, seed int64) Spec[int] {
	return Spec[int]{
		Starts:      starts,
		Parallelism: parallelism,
		Seed:        seed,
		Run: func(_ context.Context, start int, rng *rand.Rand, scratch *Scratch) (int, error) {
			buf := scratch.Ints(64)
			for i := range buf {
				buf[i] = rng.Intn(1000)
			}
			best := buf[0]
			for _, x := range buf {
				if x < best {
					best = x
				}
			}
			return best, nil
		},
		Better: func(a, b int) bool { return a < b },
		Cut:    func(v int) int { return v },
	}
}

func TestRunDeterministicAcrossParallelism(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		serial, sst, err := Run(context.Background(), scoreSpec(32, 1, seed))
		if err != nil {
			t.Fatal(err)
		}
		for _, par := range []int{2, 4, 8} {
			parallel, pst, err := Run(context.Background(), scoreSpec(32, par, seed))
			if err != nil {
				t.Fatal(err)
			}
			if parallel != serial {
				t.Errorf("seed %d parallelism %d: result %d != serial %d", seed, par, parallel, serial)
			}
			if pst.BestStart != sst.BestStart {
				t.Errorf("seed %d parallelism %d: BestStart %d != serial %d", seed, par, pst.BestStart, sst.BestStart)
			}
			for i := range sst.Cuts {
				if pst.Cuts[i] != sst.Cuts[i] {
					t.Errorf("seed %d parallelism %d: Cuts[%d] = %d != serial %d", seed, par, i, pst.Cuts[i], sst.Cuts[i])
				}
			}
		}
	}
}

func TestTieBreakLowestStartIndex(t *testing.T) {
	spec := Spec[int]{
		Starts:      16,
		Parallelism: 8,
		Run: func(_ context.Context, start int, _ *rand.Rand, _ *Scratch) (int, error) {
			return 5, nil // every start ties
		},
		Better: func(a, b int) bool { return a < b },
	}
	for trial := 0; trial < 10; trial++ {
		_, st, err := Run(context.Background(), spec)
		if err != nil {
			t.Fatal(err)
		}
		if st.BestStart != 0 {
			t.Fatalf("tie went to start %d, want 0", st.BestStart)
		}
	}
}

func TestCancellationReturnsBestSoFar(t *testing.T) {
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{}, 64)
	spec := Spec[int]{
		Starts:      64,
		Parallelism: 4,
		Run: func(ctx context.Context, start int, _ *rand.Rand, _ *Scratch) (int, error) {
			started <- struct{}{}
			if start > 0 {
				// Simulate work that notices cancellation mid-start.
				select {
				case <-ctx.Done():
				case <-time.After(5 * time.Millisecond):
				}
			}
			return start, nil
		},
		Better: func(a, b int) bool { return a < b },
	}
	go func() {
		<-started
		cancel()
	}()
	v, st, err := Run(ctx, spec)
	if err != nil {
		t.Fatalf("cancelled run returned error %v, want best-so-far", err)
	}
	if v != 0 || st.BestStart != 0 {
		t.Errorf("best = %d (start %d), want start 0's result", v, st.BestStart)
	}
	if !st.Cancelled {
		t.Error("Stats.Cancelled = false after mid-run cancellation")
	}
	if st.StartsRun >= st.StartsRequested {
		t.Errorf("StartsRun = %d, want < %d", st.StartsRun, st.StartsRequested)
	}
	// All workers must have exited: no goroutine leaks.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if now := runtime.NumGoroutine(); now > before {
		t.Errorf("goroutines leaked: %d before, %d after", before, now)
	}
}

func TestPreCancelledContextStillRunsStartZero(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	v, st, err := Run(ctx, scoreSpec(16, 4, 1))
	if err != nil {
		t.Fatalf("pre-cancelled run errored: %v", err)
	}
	if st.StartsRun != 1 || st.BestStart != 0 {
		t.Errorf("StartsRun = %d BestStart = %d, want 1 and 0", st.StartsRun, st.BestStart)
	}
	want, _, _ := Run(context.Background(), scoreSpec(1, 1, 1))
	if v != want {
		t.Errorf("start-0 result %d differs from dedicated run %d", v, want)
	}
}

func TestErrorAbortsRun(t *testing.T) {
	boom := errors.New("boom")
	spec := Spec[int]{
		Starts:      8,
		Parallelism: 4,
		Run: func(_ context.Context, start int, _ *rand.Rand, _ *Scratch) (int, error) {
			if start == 3 {
				return 0, fmt.Errorf("start 3: %w", boom)
			}
			return start, nil
		},
		Better: func(a, b int) bool { return a < b },
	}
	if _, _, err := Run(context.Background(), spec); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
}

func TestScratchBuffersZeroedAndReused(t *testing.T) {
	s := GetScratch()
	defer PutScratch(s)
	a := s.Ints(8)
	for i := range a {
		a[i] = 99
	}
	b := s.Bools(4)
	b[0] = true
	w := s.Int64s(3)
	w[2] = 7
	s.Release()
	a2 := s.Ints(6)
	for i, x := range a2 {
		if x != 0 {
			t.Fatalf("reused int buffer not zeroed at %d", i)
		}
	}
	if &a2[0] != &a[0] {
		t.Error("int buffer was not reused after Release")
	}
	b2 := s.Bools(4)
	if b2[0] {
		t.Error("reused bool buffer not zeroed")
	}
	w2 := s.Int64s(3)
	if w2[2] != 0 {
		t.Error("reused int64 buffer not zeroed")
	}
	// Two concurrent leases must not alias.
	x, y := s.Ints(5), s.Ints(5)
	x[0] = 1
	if y[0] == 1 {
		t.Error("concurrent leases alias the same buffer")
	}
}

func TestStatsAccounting(t *testing.T) {
	_, st, err := Run(context.Background(), scoreSpec(12, 3, 7))
	if err != nil {
		t.Fatal(err)
	}
	if st.StartsRequested != 12 || st.StartsRun != 12 {
		t.Errorf("starts requested/run = %d/%d, want 12/12", st.StartsRequested, st.StartsRun)
	}
	if st.Parallelism != 3 {
		t.Errorf("Parallelism = %d, want 3", st.Parallelism)
	}
	if st.Cancelled {
		t.Error("Cancelled set on a complete run")
	}
	if len(st.Cuts) != 12 {
		t.Fatalf("len(Cuts) = %d, want 12", len(st.Cuts))
	}
	for i, c := range st.Cuts {
		if c == NotRun {
			t.Errorf("Cuts[%d] = NotRun on a complete run", i)
		}
	}
}

// TestCancellationMidStartOversubscribed cancels a run while most of
// an oversubscribed worker fleet (Parallelism well above GOMAXPROCS)
// is blocked inside its start, exercising the claim/cancel/reduce
// paths under maximum goroutine interleaving. The CI race step runs
// this package with -race, so the shared result arrays are also being
// checked for unsynchronized access here.
func TestCancellationMidStartOversubscribed(t *testing.T) {
	workers := runtime.GOMAXPROCS(0) * 4
	if workers < 8 {
		workers = 8
	}
	starts := workers*2 + 8
	const fast = 3 // starts below this index complete immediately

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var fastDone atomic.Int32
	spec := Spec[int]{
		Starts:      starts,
		Parallelism: workers,
		Seed:        42,
		Run: func(ctx context.Context, i int, rng *rand.Rand, _ *Scratch) (int, error) {
			v := 1000 + i - rng.Intn(2)
			if i < fast {
				fastDone.Add(1)
				return v, nil
			}
			// Block mid-start until cancellation, then return a usable
			// value — the best-so-far contract.
			<-ctx.Done()
			return v, nil
		},
		Better: func(a, b int) bool { return a < b },
		Cut:    func(v int) int { return v },
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		deadline := time.Now().Add(10 * time.Second)
		for fastDone.Load() < fast && time.Now().Before(deadline) {
			time.Sleep(100 * time.Microsecond)
		}
		cancel()
	}()
	best, st, err := Run(ctx, spec)
	<-done
	if err != nil {
		t.Fatal(err)
	}
	if !st.Cancelled || st.StartsRun >= starts {
		t.Errorf("expected a cancelled partial run, got %d/%d (cancelled=%v)", st.StartsRun, starts, st.Cancelled)
	}
	if st.StartsRun < fast {
		t.Errorf("only %d starts ran, want at least the %d fast ones", st.StartsRun, fast)
	}
	// The returned best must be the exact minimum over the completed
	// starts as recorded in Cuts, and BestStart must point at it.
	want, wantIdx := 1<<30, -1
	for i, c := range st.Cuts {
		if c == NotRun {
			continue
		}
		if c < want {
			want, wantIdx = c, i
		}
	}
	if best != want || st.BestStart != wantIdx {
		t.Errorf("best = %d at start %d, want %d at %d", best, st.BestStart, want, wantIdx)
	}
	// Every completed start's cut must match an isolated re-execution
	// of its RNG stream.
	for i, c := range st.Cuts {
		if c == NotRun {
			continue
		}
		if expect := 1000 + i - StartRNG(42, i).Intn(2); c != expect {
			t.Errorf("start %d recorded %d, isolated re-run gives %d", i, c, expect)
		}
	}
}
