package engine

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"testing"
)

// memSink is an in-memory CheckpointSink: each record mirrors what a
// journal would persist, and failAfter simulates a dying disk.
type memSink struct {
	recs      []memRec
	failAfter int // fail every call once len(recs) reaches this (-1: never)
}

type memRec struct {
	start, cut int
	best       []byte
}

func (m *memSink) StartDone(start, cut int, best []byte) error {
	if m.failAfter >= 0 && len(m.recs) >= m.failAfter {
		return errors.New("sink: disk full")
	}
	m.recs = append(m.recs, memRec{start, cut, append([]byte(nil), best...)})
	return nil
}

// state folds the sink's records into a RunState exactly the way the
// journal replay does: last best record wins.
func (m *memSink) state(starts int) *RunState {
	s := &RunState{Completed: make([]bool, starts), Cuts: make([]int, starts), BestStart: -1}
	for i := range s.Cuts {
		s.Cuts[i] = NotRun
	}
	for _, r := range m.recs {
		s.Completed[r.start] = true
		s.Cuts[r.start] = r.cut
		if len(r.best) > 0 {
			s.BestStart, s.BestCut, s.BestPayload = r.start, r.cut, r.best
		}
	}
	return s
}

func intCodec() (func(int) []byte, func([]byte) (int, error)) {
	enc := func(v int) []byte {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], uint64(int64(v)))
		return b[:]
	}
	dec := func(b []byte) (int, error) {
		if len(b) != 8 {
			return 0, fmt.Errorf("bad payload length %d", len(b))
		}
		return int(int64(binary.LittleEndian.Uint64(b))), nil
	}
	return enc, dec
}

func checkpointed(spec Spec[int], io *CheckpointIO) Spec[int] {
	enc, dec := intCodec()
	spec.Checkpoint = BindCheckpoint(io, enc, dec)
	return spec
}

func TestCheckpointRecordsEveryStart(t *testing.T) {
	sink := &memSink{failAfter: -1}
	spec := checkpointed(scoreSpec(16, 4, 7), &CheckpointIO{Sink: sink})
	best, st, err := Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(sink.recs) != 16 {
		t.Fatalf("sink got %d records, want 16", len(sink.recs))
	}
	seen := map[int]bool{}
	var lastBest []byte
	for _, r := range sink.recs {
		if seen[r.start] {
			t.Errorf("start %d recorded twice", r.start)
		}
		seen[r.start] = true
		if r.cut != st.Cuts[r.start] {
			t.Errorf("start %d recorded cut %d, stats say %d", r.start, r.cut, st.Cuts[r.start])
		}
		if len(r.best) > 0 {
			lastBest = r.best
		}
	}
	if len(sink.recs[0].best) == 0 {
		t.Error("first completed start wrote no best record")
	}
	_, dec := intCodec()
	got, err := dec(lastBest)
	if err != nil {
		t.Fatal(err)
	}
	if got != best {
		t.Errorf("last best record decodes to %d, run returned %d", got, best)
	}
}

// TestCheckpointOnlineBestMatchesReduction drives completion out of
// index order (high parallelism, every start ties) and checks the
// journal's final best record names the same winner as the
// deterministic ascending-scan reduction.
func TestCheckpointOnlineBestMatchesReduction(t *testing.T) {
	for trial := 0; trial < 10; trial++ {
		sink := &memSink{failAfter: -1}
		spec := Spec[int]{
			Starts:      16,
			Parallelism: 8,
			Run: func(_ context.Context, start int, _ *rand.Rand, _ *Scratch) (int, error) {
				return 5, nil // every start ties: lowest index must win
			},
			Better: func(a, b int) bool { return a < b },
		}
		spec = checkpointed(spec, &CheckpointIO{Sink: sink})
		_, st, err := Run(context.Background(), spec)
		if err != nil {
			t.Fatal(err)
		}
		if st.BestStart != 0 {
			t.Fatalf("reduction picked start %d, want 0", st.BestStart)
		}
		if rs := sink.state(16); rs.BestStart != 0 {
			t.Fatalf("journal's last best record is start %d, want 0", rs.BestStart)
		}
	}
}

// TestResumeIsBitForBitIdentical interrupts a run after every possible
// record count K and checks the resumed run reproduces the
// uninterrupted result exactly, at several parallelism levels.
func TestResumeIsBitForBitIdentical(t *testing.T) {
	const starts = 12
	golden, gst, err := Run(context.Background(), scoreSpec(starts, 1, 42))
	if err != nil {
		t.Fatal(err)
	}
	full := &memSink{failAfter: -1}
	if _, _, err := Run(context.Background(), checkpointed(scoreSpec(starts, 1, 42), &CheckpointIO{Sink: full})); err != nil {
		t.Fatal(err)
	}
	for k := 0; k <= starts; k++ {
		partial := &memSink{failAfter: -1, recs: full.recs[:k]}
		for _, par := range []int{1, 4} {
			resumeSink := &memSink{failAfter: -1}
			spec := checkpointed(scoreSpec(starts, par, 42),
				&CheckpointIO{Sink: resumeSink, State: partial.state(starts)})
			got, st, err := Run(context.Background(), spec)
			if err != nil {
				t.Fatalf("k=%d par=%d: %v", k, par, err)
			}
			if got != golden || st.BestStart != gst.BestStart {
				t.Errorf("k=%d par=%d: resumed %d (start %d), uninterrupted %d (start %d)",
					k, par, got, st.BestStart, golden, gst.BestStart)
			}
			if st.StartsResumed != k || st.StartsRun != starts {
				t.Errorf("k=%d par=%d: StartsResumed=%d StartsRun=%d, want %d and %d",
					k, par, st.StartsResumed, st.StartsRun, k, starts)
			}
			if len(resumeSink.recs) != starts-k {
				t.Errorf("k=%d par=%d: resumed run wrote %d records, want %d", k, par, len(resumeSink.recs), starts-k)
			}
			for i := range st.Cuts {
				if st.Cuts[i] != gst.Cuts[i] {
					t.Errorf("k=%d par=%d: Cuts[%d] = %d, uninterrupted %d", k, par, i, st.Cuts[i], gst.Cuts[i])
				}
			}
		}
	}
}

func TestResumeFullyCompletedRunsNothing(t *testing.T) {
	full := &memSink{failAfter: -1}
	if _, _, err := Run(context.Background(), checkpointed(scoreSpec(8, 2, 3), &CheckpointIO{Sink: full})); err != nil {
		t.Fatal(err)
	}
	golden, gst, _ := Run(context.Background(), scoreSpec(8, 1, 3))
	got, st, err := Run(context.Background(),
		checkpointed(scoreSpec(8, 2, 3), &CheckpointIO{Sink: &memSink{failAfter: -1}, State: full.state(8)}))
	if err != nil {
		t.Fatal(err)
	}
	if got != golden || st.BestStart != gst.BestStart {
		t.Errorf("fully-resumed run returned %d (start %d), want %d (start %d)", got, st.BestStart, golden, gst.BestStart)
	}
	if st.StartsResumed != 8 || st.CPU != 0 {
		t.Errorf("StartsResumed=%d CPU=%v, want 8 and 0 (no start re-executed)", st.StartsResumed, st.CPU)
	}
}

// TestResumePreCancelledReturnsResumedBest: with a best in the resumed
// state, no start is exempt from cancellation, and the resumed best
// comes back unchanged.
func TestResumePreCancelledReturnsResumedBest(t *testing.T) {
	full := &memSink{failAfter: -1}
	if _, _, err := Run(context.Background(), checkpointed(scoreSpec(8, 1, 3), &CheckpointIO{Sink: full})); err != nil {
		t.Fatal(err)
	}
	partial := &memSink{failAfter: -1, recs: full.recs[:3]}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	got, st, err := Run(ctx,
		checkpointed(scoreSpec(8, 1, 3), &CheckpointIO{Sink: &memSink{failAfter: -1}, State: partial.state(8)}))
	if err != nil {
		t.Fatal(err)
	}
	if st.StartsRun != 3 || st.StartsResumed != 3 || !st.Cancelled {
		t.Errorf("StartsRun=%d StartsResumed=%d Cancelled=%v, want 3, 3, true", st.StartsRun, st.StartsResumed, st.Cancelled)
	}
	want := partial.state(8)
	_, dec := intCodec()
	wantBest, _ := dec(want.BestPayload)
	if got != wantBest || st.BestStart != want.BestStart {
		t.Errorf("got %d (start %d), want resumed best %d (start %d)", got, st.BestStart, wantBest, want.BestStart)
	}
}

func TestResumeRejectsMismatchedState(t *testing.T) {
	enc, dec := intCodec()
	base := scoreSpec(8, 1, 3)
	for name, state := range map[string]*RunState{
		"wrong length": {Completed: make([]bool, 5), Cuts: make([]int, 5), BestStart: -1},
		"wrong cuts":   {Completed: make([]bool, 8), Cuts: make([]int, 3), BestStart: -1},
		"completed without best": {
			Completed: []bool{true, false, false, false, false, false, false, false},
			Cuts:      make([]int, 8), BestStart: -1,
		},
		"best not completed": {
			Completed: []bool{true, false, false, false, false, false, false, false},
			Cuts:      make([]int, 8), BestStart: 3, BestPayload: enc(1),
		},
	} {
		spec := base
		spec.Checkpoint = BindCheckpoint(&CheckpointIO{Sink: &memSink{failAfter: -1}, State: state}, enc, dec)
		if _, _, err := Run(context.Background(), spec); err == nil {
			t.Errorf("%s: resume accepted invalid state", name)
		}
	}
	// Undecodable best payload must also refuse.
	spec := base
	spec.Checkpoint = BindCheckpoint(&CheckpointIO{Sink: &memSink{failAfter: -1}, State: &RunState{
		Completed: []bool{true, false, false, false, false, false, false, false},
		Cuts:      make([]int, 8), BestStart: 0, BestPayload: []byte{1, 2, 3},
	}}, enc, dec)
	if _, _, err := Run(context.Background(), spec); err == nil {
		t.Error("resume accepted an undecodable best payload")
	}
}

// TestCheckpointSinkFailureDegrades: a failing sink must not abort the
// run or change its result, only set Stats.CheckpointErr.
func TestCheckpointSinkFailureDegrades(t *testing.T) {
	golden, _, _ := Run(context.Background(), scoreSpec(12, 1, 9))
	sink := &memSink{failAfter: 4}
	got, st, err := Run(context.Background(), checkpointed(scoreSpec(12, 3, 9), &CheckpointIO{Sink: sink}))
	if err != nil {
		t.Fatal(err)
	}
	if got != golden {
		t.Errorf("run with failing sink returned %d, want %d", got, golden)
	}
	if st.CheckpointErr == nil {
		t.Error("Stats.CheckpointErr not set after sink failure")
	}
	if len(sink.recs) != 4 {
		t.Errorf("sink holds %d records, want 4 (journaling stops at first failure)", len(sink.recs))
	}
	if st.StartsRun != 12 {
		t.Errorf("StartsRun = %d, want 12 (compute is not hostage to the journal)", st.StartsRun)
	}
}

func TestBindCheckpointNilIO(t *testing.T) {
	enc, dec := intCodec()
	if BindCheckpoint[int](nil, enc, dec) != nil {
		t.Error("BindCheckpoint(nil) != nil")
	}
	if BindCheckpoint[int](&CheckpointIO{}, enc, dec) != nil {
		t.Error("BindCheckpoint(sinkless io) != nil")
	}
}
