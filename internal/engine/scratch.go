package engine

import (
	"sync"

	"fasthgp/internal/partition"
)

// Scratch is a per-worker arena of reusable working buffers — BFS
// queues, side arrays, gain arrays, candidate lists — so that parallel
// starts do not allocate (and garbage-collect) the same transient
// slices once per start. A worker leases one Scratch for its lifetime
// and passes it to every start it runs; Release between starts returns
// every handed-out buffer to the arena's free lists.
//
// Buffers are always returned zeroed, so reuse can never leak state
// from one start into another — a determinism requirement, not just
// hygiene. Callers must not retain a buffer past the end of their
// start (in particular, never store one in a Result).
type Scratch struct {
	freeInts, usedInts     [][]int
	freeBools, usedBools   [][]bool
	freeInt64s, usedInt64s [][]int64
	freeSides, usedSides   [][]partition.Side
	freeInt8s, usedInt8s   [][]int8
}

// Int8s leases a zeroed []int8 of length n from the arena. Fixed-side
// assignments and per-vertex flow-corridor states are int8-valued, so
// they get their own free list.
func (s *Scratch) Int8s(n int) []int8 {
	for k := len(s.freeInt8s) - 1; k >= 0; k-- {
		if cap(s.freeInt8s[k]) >= n {
			buf := s.freeInt8s[k][:n]
			s.freeInt8s[k] = s.freeInt8s[len(s.freeInt8s)-1]
			s.freeInt8s = s.freeInt8s[:len(s.freeInt8s)-1]
			clear(buf)
			s.usedInt8s = append(s.usedInt8s, buf)
			return buf
		}
	}
	buf := make([]int8, n)
	s.usedInt8s = append(s.usedInt8s, buf)
	return buf
}

// Ints leases a zeroed []int of length n from the arena.
func (s *Scratch) Ints(n int) []int {
	for k := len(s.freeInts) - 1; k >= 0; k-- {
		if cap(s.freeInts[k]) >= n {
			buf := s.freeInts[k][:n]
			s.freeInts[k] = s.freeInts[len(s.freeInts)-1]
			s.freeInts = s.freeInts[:len(s.freeInts)-1]
			clear(buf)
			s.usedInts = append(s.usedInts, buf)
			return buf
		}
	}
	buf := make([]int, n)
	s.usedInts = append(s.usedInts, buf)
	return buf
}

// Bools leases a zeroed []bool of length n from the arena.
func (s *Scratch) Bools(n int) []bool {
	for k := len(s.freeBools) - 1; k >= 0; k-- {
		if cap(s.freeBools[k]) >= n {
			buf := s.freeBools[k][:n]
			s.freeBools[k] = s.freeBools[len(s.freeBools)-1]
			s.freeBools = s.freeBools[:len(s.freeBools)-1]
			clear(buf)
			s.usedBools = append(s.usedBools, buf)
			return buf
		}
	}
	buf := make([]bool, n)
	s.usedBools = append(s.usedBools, buf)
	return buf
}

// Int64s leases a zeroed []int64 of length n from the arena.
func (s *Scratch) Int64s(n int) []int64 {
	for k := len(s.freeInt64s) - 1; k >= 0; k-- {
		if cap(s.freeInt64s[k]) >= n {
			buf := s.freeInt64s[k][:n]
			s.freeInt64s[k] = s.freeInt64s[len(s.freeInt64s)-1]
			s.freeInt64s = s.freeInt64s[:len(s.freeInt64s)-1]
			clear(buf)
			s.usedInt64s = append(s.usedInt64s, buf)
			return buf
		}
	}
	buf := make([]int64, n)
	s.usedInt64s = append(s.usedInt64s, buf)
	return buf
}

// Sides leases a zeroed []partition.Side of length n from the arena.
// Note the zero Side is Left, not Unassigned — callers that need the
// "nothing placed yet" state must fill with partition.Unassigned
// themselves. Side arrays are the working currency of every
// partitioner's per-start state, so they get their own free list.
func (s *Scratch) Sides(n int) []partition.Side {
	for k := len(s.freeSides) - 1; k >= 0; k-- {
		if cap(s.freeSides[k]) >= n {
			buf := s.freeSides[k][:n]
			s.freeSides[k] = s.freeSides[len(s.freeSides)-1]
			s.freeSides = s.freeSides[:len(s.freeSides)-1]
			clear(buf)
			s.usedSides = append(s.usedSides, buf)
			return buf
		}
	}
	buf := make([]partition.Side, n)
	s.usedSides = append(s.usedSides, buf)
	return buf
}

// Release reclaims every leased buffer back into the free lists. The
// engine calls it after each start; algorithms running several
// independent phases within one start may also call it themselves.
func (s *Scratch) Release() {
	s.freeInts = append(s.freeInts, s.usedInts...)
	s.usedInts = s.usedInts[:0]
	s.freeBools = append(s.freeBools, s.usedBools...)
	s.usedBools = s.usedBools[:0]
	s.freeInt64s = append(s.freeInt64s, s.usedInt64s...)
	s.usedInt64s = s.usedInt64s[:0]
	s.freeSides = append(s.freeSides, s.usedSides...)
	s.usedSides = s.usedSides[:0]
	s.freeInt8s = append(s.freeInt8s, s.usedInt8s...)
	s.usedInt8s = s.usedInt8s[:0]
}

var scratchPool = sync.Pool{New: func() any { return new(Scratch) }}

// GetScratch leases a Scratch from the global pool.
func GetScratch() *Scratch { return scratchPool.Get().(*Scratch) }

// PutScratch releases s's buffers and returns it to the global pool.
func PutScratch(s *Scratch) {
	s.Release()
	scratchPool.Put(s)
}
