package engine

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"fasthgp/internal/faultinject"
	"fasthgp/internal/resilience"
)

// panicAtSpec is a toy multi-start whose start at index `bad` panics.
func panicAtSpec(starts, parallelism int, bad int) Spec[int] {
	return Spec[int]{
		Name:        "toy",
		Starts:      starts,
		Parallelism: parallelism,
		Run: func(_ context.Context, start int, _ *rand.Rand, _ *Scratch) (int, error) {
			if start == bad {
				panic("poisoned objective")
			}
			return 100 + start, nil
		},
		Better: func(a, b int) bool { return a < b },
		Cut:    func(v int) int { return v },
	}
}

// TestPanicIsolatedStart3Of8 is the regression test for the recover
// boundary: before it existed, a panic inside one goroutine's start
// function took down the whole process. Now start 3 of 8 panicking must
// degrade the run to best-of-the-other-seven, serially and in parallel.
func TestPanicIsolatedStart3Of8(t *testing.T) {
	for _, par := range []int{1, 4} {
		v, st, err := Run(context.Background(), panicAtSpec(8, par, 3))
		if err != nil {
			t.Fatalf("parallelism %d: degraded run returned error %v", par, err)
		}
		if v != 100 || st.BestStart != 0 {
			t.Errorf("parallelism %d: best = %d at start %d, want 100 at 0", par, v, st.BestStart)
		}
		if st.StartsRun != 7 || st.StartsFailed != 1 {
			t.Errorf("parallelism %d: StartsRun/StartsFailed = %d/%d, want 7/1", par, st.StartsRun, st.StartsFailed)
		}
		if st.Cancelled {
			t.Errorf("parallelism %d: Cancelled set on a panic-degraded (not cancelled) run", par)
		}
		if st.Cuts[3] != NotRun {
			t.Errorf("parallelism %d: Cuts[3] = %d, want NotRun", par, st.Cuts[3])
		}
		if len(st.Failures) != 1 {
			t.Fatalf("parallelism %d: %d failures recorded, want 1", par, len(st.Failures))
		}
		var pe *resilience.PartitionError
		if !errors.As(st.Failures[0], &pe) {
			t.Fatalf("parallelism %d: failure %T is not a *resilience.PartitionError", par, st.Failures[0])
		}
		if pe.Algorithm != "toy" || pe.Start != 3 {
			t.Errorf("parallelism %d: PartitionError = (%q, start %d), want (toy, 3)", par, pe.Algorithm, pe.Start)
		}
		if len(pe.Stack) == 0 {
			t.Errorf("parallelism %d: PartitionError carries no stack", par)
		}
	}
}

// TestAllStartsPanicReturnsTypedError: when every start panics there is
// nothing to degrade to; the caller gets ErrNoStart joined with the
// first start's PartitionError, never a crash.
func TestAllStartsPanicReturnsTypedError(t *testing.T) {
	_, st, err := Run(context.Background(), panicAtSpec(4, 2, -999).withAlwaysPanic())
	if !errors.Is(err, ErrNoStart) {
		t.Fatalf("err = %v, want ErrNoStart", err)
	}
	var pe *resilience.PartitionError
	if !errors.As(err, &pe) || pe.Start != 0 {
		t.Fatalf("err = %v, want joined PartitionError for start 0", err)
	}
	if st.StartsFailed != 4 {
		t.Errorf("StartsFailed = %d, want 4", st.StartsFailed)
	}
}

// withAlwaysPanic rewires a spec so every start panics.
func (s Spec[T]) withAlwaysPanic() Spec[T] {
	s.Run = func(_ context.Context, start int, _ *rand.Rand, _ *Scratch) (T, error) {
		panic("poisoned objective")
	}
	return s
}

// TestCtxErrorStartTreatedAsNotRun covers exact algorithms (flowpart)
// that cannot return a usable partial result: a start returning its
// context's error counts as never run instead of aborting the run.
func TestCtxErrorStartTreatedAsNotRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	spec := Spec[int]{
		Starts:      4,
		Parallelism: 1,
		Run: func(ctx context.Context, start int, _ *rand.Rand, _ *Scratch) (int, error) {
			if start == 0 {
				return 7, nil
			}
			cancel()
			return 0, ctx.Err()
		},
		Better: func(a, b int) bool { return a < b },
		Cut:    func(v int) int { return v },
	}
	v, st, err := Run(ctx, spec)
	if err != nil {
		t.Fatalf("run errored: %v", err)
	}
	if v != 7 || st.StartsRun != 1 || st.StartsFailed != 0 {
		t.Errorf("v/StartsRun/StartsFailed = %d/%d/%d, want 7/1/0", v, st.StartsRun, st.StartsFailed)
	}
	if !st.Cancelled {
		t.Error("Cancelled not set after a ctx-error start")
	}

	// Even start 0 returning a ctx error must not crash or hang: the
	// run reports ErrNoStart.
	pre, preCancel := context.WithCancel(context.Background())
	preCancel()
	spec.Run = func(ctx context.Context, _ int, _ *rand.Rand, _ *Scratch) (int, error) {
		return 0, ctx.Err()
	}
	if _, _, err := Run(pre, spec); !errors.Is(err, ErrNoStart) {
		t.Fatalf("err = %v, want ErrNoStart", err)
	}
}

// TestDeterminismSurvivesPanics: the surviving starts' cuts and the
// winner must be identical across parallelism even with a poisoned
// start in the middle.
func TestDeterminismSurvivesPanics(t *testing.T) {
	mk := func(par int) Spec[int] {
		return Spec[int]{
			Starts:      16,
			Parallelism: par,
			Seed:        42,
			Run: func(_ context.Context, start int, rng *rand.Rand, _ *Scratch) (int, error) {
				if start == 5 {
					panic("poisoned")
				}
				return rng.Intn(1000), nil
			},
			Better: func(a, b int) bool { return a < b },
			Cut:    func(v int) int { return v },
		}
	}
	sv, sst, err := Run(context.Background(), mk(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{2, 8} {
		pv, pst, err := Run(context.Background(), mk(par))
		if err != nil {
			t.Fatal(err)
		}
		if pv != sv || pst.BestStart != sst.BestStart {
			t.Errorf("parallelism %d: best %d@%d != serial %d@%d", par, pv, pst.BestStart, sv, sst.BestStart)
		}
		for i := range sst.Cuts {
			if pst.Cuts[i] != sst.Cuts[i] {
				t.Errorf("parallelism %d: Cuts[%d] = %d != serial %d", par, i, pst.Cuts[i], sst.Cuts[i])
			}
		}
	}
}

// TestFaultInjectionPanicAtStart drives the recover boundary through
// the faultinject hook instead of a hand-written panic, proving the
// injection plumbing reaches engine starts.
func TestFaultInjectionPanicAtStart(t *testing.T) {
	plan, err := faultinject.ParseSpec("panic@engine.start:2")
	if err != nil {
		t.Fatal(err)
	}
	defer faultinject.Install(plan)()
	v, st, err := Run(context.Background(), scoreSpec(6, 3, 7))
	if err != nil {
		t.Fatalf("injected panic aborted the run: %v", err)
	}
	if st.StartsFailed != 1 || st.Cuts[2] != NotRun {
		t.Errorf("StartsFailed = %d, Cuts[2] = %d; want 1 and NotRun", st.StartsFailed, st.Cuts[2])
	}
	var pe *resilience.PartitionError
	if !errors.As(st.Failures[0], &pe) {
		t.Fatalf("failure %T is not a PartitionError", st.Failures[0])
	}
	var fe *faultinject.PanicError
	if !errors.As(st.Failures[0], &fe) || fe.Index != 2 {
		t.Errorf("failure does not unwrap to the injected *faultinject.PanicError: %v", st.Failures[0])
	}
	// The surviving starts must match an uninjected run.
	faultinject.Install(nil)
	clean, cst, err := Run(context.Background(), scoreSpec(6, 3, 7))
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range cst.Cuts {
		if i != 2 && st.Cuts[i] != c {
			t.Errorf("Cuts[%d] = %d under injection, %d clean", i, st.Cuts[i], c)
		}
	}
	_ = clean
	_ = v
}
