// Checkpoint support: the engine can snapshot per-start progress into a
// durable sink and later resume, skipping the starts a previous (killed)
// process already completed. Because each start is a pure function of
// (instance, seed, start index) and the reduction is a deterministic
// ascending-index scan, a resumed run returns a result bit-for-bit
// identical to an uninterrupted run with the same Spec.
//
// The generic/non-generic split keeps import graphs simple: algorithm
// packages thread a *CheckpointIO (non-generic — sink plus resumed
// state) through their Options, and bind their own Result codec with
// BindCheckpoint at the engine.Run call site. The sink itself lives in
// internal/checkpoint and satisfies CheckpointSink structurally, so the
// engine does not import the journal and the journal imports only the
// engine's types.
package engine

import "fmt"

// CheckpointSink receives one durable record per completed start. The
// engine serializes calls under its own mutex, so implementations need
// no locking. bestPayload is non-empty exactly when this start improved
// the run's best-so-far (the first completed start of a fresh run
// always does), and holds the Checkpoint.Encode serialization of the
// new best result. A sink error does not abort the run: the engine
// records it in Stats.CheckpointErr and stops checkpointing — compute
// is never hostage to the journal.
type CheckpointSink interface {
	StartDone(start, cut int, bestPayload []byte) error
}

// RunState is the resume point recovered from a journal: which starts
// already completed, their recorded primary costs, and the best result
// among them in encoded form. The zero RunState (or a nil *RunState in
// CheckpointIO) means a fresh run.
type RunState struct {
	// Completed flags each start the previous process finished; its
	// length must equal the Spec's normalized Starts.
	Completed []bool
	// Cuts holds each completed start's recorded primary cost, indexed
	// by start (NotRun elsewhere).
	Cuts []int
	// BestStart is the start index of the best completed result, or -1.
	// The journal invariant "any completed start ⇒ a best record"
	// guarantees BestStart >= 0 whenever Completed has a true entry.
	BestStart int
	// BestCut is the recorded primary cost of BestStart.
	BestCut int
	// BestPayload is the encoded best result, decoded via
	// Checkpoint.Decode on resume.
	BestPayload []byte
}

// CheckpointIO is the non-generic half of a checkpoint binding: where
// snapshots go and, on resume, the state to start from. Algorithm
// Options carry a *CheckpointIO; nil disables checkpointing.
type CheckpointIO struct {
	// Sink receives the per-start records.
	Sink CheckpointSink
	// State, when non-nil, resumes from a recovered journal.
	State *RunState
}

// Checkpoint binds a CheckpointIO to one result type via an
// encode/decode pair. Encode must capture everything Better and the
// caller-visible result need (for this library: sides, cut, and a few
// scalar counters); Decode must reject payloads that do not describe a
// valid result, since a resumed payload crosses a trust boundary.
type Checkpoint[T any] struct {
	IO     *CheckpointIO
	Encode func(T) []byte
	Decode func([]byte) (T, error)
}

// BindCheckpoint pairs io with a codec for T, returning nil (checkpoint
// disabled) when io or its sink is nil so call sites can bind
// unconditionally.
func BindCheckpoint[T any](io *CheckpointIO, encode func(T) []byte, decode func([]byte) (T, error)) *Checkpoint[T] {
	if io == nil || io.Sink == nil {
		return nil
	}
	return &Checkpoint[T]{IO: io, Encode: encode, Decode: decode}
}

// validate checks a resume state against the normalized start count.
func (s *RunState) validate(starts int) error {
	if len(s.Completed) != starts {
		return fmt.Errorf("engine: checkpoint covers %d starts, spec has %d", len(s.Completed), starts)
	}
	if len(s.Cuts) != starts {
		return fmt.Errorf("engine: checkpoint cuts cover %d starts, spec has %d", len(s.Cuts), starts)
	}
	done := 0
	for _, c := range s.Completed {
		if c {
			done++
		}
	}
	if done > 0 && (s.BestStart < 0 || s.BestStart >= starts || !s.Completed[s.BestStart]) {
		return fmt.Errorf("engine: checkpoint has %d completed starts but no valid best (BestStart=%d)", done, s.BestStart)
	}
	return nil
}
