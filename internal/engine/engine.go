// Package engine is the shared multi-start runtime behind every
// partitioner in the library. The paper's evaluation (and the whole
// multi-start tradition it sits in) treats repeated independent starts
// as an embarrassingly parallel resource: each start is a pure function
// of (instance, seed, start index). The engine exploits exactly that.
//
// Guarantees:
//
//   - Bit-for-bit seed determinism, independent of Parallelism. Every
//     start draws from its own RNG stream seeded seed ⊕
//     splitmix64(startIndex), so no start observes another's random
//     draws, and the best-result reduction scans starts in ascending
//     index order with a *strict* improvement predicate — the lowest
//     start index wins ties. Parallel output ≡ serial output.
//   - Cancellation with best-so-far semantics. The context is checked
//     before each start is claimed (and algorithms additionally poll it
//     inside their hot loops); on expiry the engine stops claiming new
//     starts, waits for in-flight ones, and returns the best completed
//     result rather than an error. One start stays exempt from the
//     check — start 0, or on a checkpoint resume the lowest unresumed
//     start — so a result exists whenever no start fails.
//   - No per-start allocation churn: each worker leases a Scratch arena
//     from a sync.Pool and hands it to every start it executes.
//
// The reduction requires Better to be a strict "a improves on b"
// predicate (false for equivalent results); anything looser would let
// a higher start index steal a tie and break parallel determinism.
package engine

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"fasthgp/internal/faultinject"
	"fasthgp/internal/resilience"
)

// Normalize clamps a multi-start count: values < 1 mean 1. It is the
// single shared home of the "Starts < 1 → 1" rule that the algorithm
// packages used to duplicate.
func Normalize(starts int) int {
	if starts < 1 {
		return 1
	}
	return starts
}

// NormalizeTo is Normalize with a package-specific default: values < 1
// mean def (itself clamped to at least 1). Used by algorithms whose
// zero-value start count historically meant "a few", e.g. flow seed
// pairs (5) or the multilevel initial-partition starts (10).
func NormalizeTo(n, def int) int {
	if n < 1 {
		return Normalize(def)
	}
	return n
}

// NormalizeParallelism clamps a worker count: values < 1 mean
// GOMAXPROCS (use all available cores).
func NormalizeParallelism(p int) int {
	if p < 1 {
		return runtime.GOMAXPROCS(0)
	}
	return p
}

// NormalizeKernelWorkers clamps an intra-start kernel worker count:
// values < 1 mean 1 (serial kernels), the historical behavior. Unlike
// NormalizeParallelism it never defaults to GOMAXPROCS — intra-start
// parallelism competes with the engine's start-level fan-out for the
// same cores, so oversubscription must be an explicit choice.
func NormalizeKernelWorkers(w int) int {
	if w < 1 {
		return 1
	}
	return w
}

// splitmix64 is the SplitMix64 output mixer (Steele–Lea–Flood, the
// stream-splitting generator of JDK 8). A single application
// decorrelates consecutive integers into statistically independent
// 64-bit values, which makes seed ⊕ splitmix64(i) an independent seed
// stream per start index.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// StartSeed derives the RNG seed of start index i from the user-facing
// seed. Starts never share a stream, and the mapping is pure, so any
// start can be re-executed in isolation.
func StartSeed(seed int64, i int) int64 {
	return int64(uint64(seed) ^ splitmix64(uint64(i)))
}

// StartRNG returns the dedicated RNG of start index i under seed.
func StartRNG(seed int64, i int) *rand.Rand {
	return rand.New(rand.NewSource(StartSeed(seed, i)))
}

// NotRun marks a start that never executed in Stats.Cuts (the run was
// cancelled before the start was claimed).
const NotRun = -1

// Stats reports how a multi-start run actually executed. Every
// algorithm Result carries one.
type Stats struct {
	// StartsRequested is the normalized number of starts asked for.
	StartsRequested int
	// StartsRun is the number of starts that completed (equals
	// StartsRequested unless the context expired).
	StartsRun int
	// BestStart is the start index that produced the returned result.
	// Determinism makes it reproducible: serial and parallel runs
	// report the same index.
	BestStart int
	// Cuts records each start's primary cost (NotRun for starts the
	// cancellation skipped), indexed by start.
	Cuts []int
	// Parallelism is the normalized worker count used.
	Parallelism int
	// Wall is the wall-clock duration of the whole multi-start run.
	Wall time.Duration
	// CPU is the summed execution time of the individual starts — the
	// serial-equivalent cost. Wall ≪ CPU is the parallel win.
	CPU time.Duration
	// Cancelled reports that the context expired before every start
	// ran and the result is best-so-far rather than best-of-all.
	Cancelled bool
	// StartsFailed counts starts that panicked. Their converted
	// *resilience.PartitionError values are in Failures; the run
	// degrades to the best result among the surviving starts.
	StartsFailed int
	// Failures holds one *resilience.PartitionError per panicked start,
	// in ascending start-index order.
	Failures []error
	// StartsResumed counts starts skipped because a resumed checkpoint
	// already recorded their completion (they are included in
	// StartsRun: the work was done, just by an earlier process).
	StartsResumed int
	// CheckpointErr is the first error the checkpoint sink returned.
	// The run still completes — compute is never hostage to the
	// journal — but records after the failure were not persisted, so a
	// later resume may redo some starts (and, by determinism, still
	// reach the identical result).
	CheckpointErr error
}

// Spec configures one multi-start run of the engine.
type Spec[T any] struct {
	// Name is the algorithm name carried into PartitionError values
	// when a start panics (optional, diagnostics only).
	Name string
	// Starts is the number of independent starts (Normalize applies).
	Starts int
	// Parallelism is the worker count (NormalizeParallelism applies);
	// it never affects the result, only the wall time.
	Parallelism int
	// Seed is the user-facing seed; start i runs with StartRNG(Seed, i).
	Seed int64
	// Run executes one start. It must be safe for concurrent calls with
	// distinct (start, rng, scratch) arguments, must not retain scratch
	// buffers in its result, and — to honor best-so-far cancellation —
	// should return a usable result (not an error) when it observes ctx
	// expiry mid-start. An algorithm that cannot produce a usable
	// partial result (e.g. an exact method interrupted mid-solve) may
	// instead return the context's error, which marks the start as
	// not-run rather than aborting. Panics inside a start are recovered
	// into *resilience.PartitionError values and degrade the run (the
	// start is skipped and reported in Stats.Failures). Any other error
	// aborts the whole run.
	Run func(ctx context.Context, start int, rng *rand.Rand, scratch *Scratch) (T, error)
	// Better reports that a strictly improves on b. It must be strict:
	// Better(a, b) and Better(b, a) both false means a tie, which the
	// lowest start index wins.
	Better func(a, b T) bool
	// Cut extracts the primary cost of a result for Stats.Cuts.
	// Optional; nil leaves Cuts at NotRun.
	Cut func(T) int
	// Checkpoint, when non-nil, snapshots each completed start into its
	// sink and — when its IO carries a resumed RunState — skips the
	// starts a previous process already completed. Checkpointing never
	// changes the returned result: Better must be a strict weak
	// ordering (all the library's predicates are), which makes the
	// resumed best exactly the result the skipped starts would have
	// reduced to. Build with BindCheckpoint.
	Checkpoint *Checkpoint[T]
}

// ErrNoStart is returned when no start completed, which can only
// happen when start 0 itself fails.
var ErrNoStart = errors.New("engine: no start completed")

// Run executes the multi-start described by spec and returns the best
// result with its run statistics. A start that panics is recovered
// into a *resilience.PartitionError, reported in Stats.Failures, and
// skipped — one poisoned start degrades the run to best-of-the-rest
// instead of crashing the process. Context expiry is not an error
// either: the best result among completed starts is returned with
// Stats.Cancelled set. The returned error is non-nil only when a start
// fails with a genuine error of its own (the first failing start index
// wins) or when no start at all completed (ErrNoStart, joined with the
// first panic's PartitionError when there was one).
func Run[T any](ctx context.Context, spec Spec[T]) (T, Stats, error) {
	var zero T
	starts := Normalize(spec.Starts)
	workers := NormalizeParallelism(spec.Parallelism)
	if workers > starts {
		workers = starts
	}
	st := Stats{
		StartsRequested: starts,
		BestStart:       -1,
		Cuts:            make([]int, starts),
		Parallelism:     workers,
	}
	for i := range st.Cuts {
		st.Cuts[i] = NotRun
	}

	cp := spec.Checkpoint
	if cp != nil && (cp.IO == nil || cp.IO.Sink == nil) {
		cp = nil
	}
	var resumed *RunState
	var resumedBest T
	haveResumedBest := false
	if cp != nil && cp.IO.State != nil {
		resumed = cp.IO.State
		if err := resumed.validate(starts); err != nil {
			return zero, st, err
		}
		if resumed.BestStart >= 0 {
			v, err := cp.Decode(resumed.BestPayload)
			if err != nil {
				return zero, st, err
			}
			resumedBest = v
			haveResumedBest = true
		}
	}
	// mustRun is the one start exempt from the cancellation check, so a
	// result exists whenever no start fails: the lowest unresumed index,
	// or none at all when the resumed state already carries a best.
	mustRun := -1
	if !haveResumedBest {
		mustRun = 0
		for resumed != nil && mustRun < starts && resumed.Completed[mustRun] {
			mustRun++
		}
	}

	results := make([]T, starts)
	completed := make([]bool, starts)
	errs := make([]error, starts)
	begin := time.Now()
	var cpu atomic.Int64
	var failed atomic.Bool

	// Online best tracking for the checkpoint journal. Completion order
	// is arbitrary under parallelism, so "is v the new best" cannot be
	// the reduction's simple ascending scan; the replacement rule below
	// is its order-free equivalent: v takes over when it strictly
	// improves on the incumbent, or ties it from a lower start index.
	// For a strict weak ordering this converges to exactly the
	// ascending-scan winner regardless of arrival order, which is what
	// makes resuming from the journal's last best record deterministic.
	var ckMu sync.Mutex
	ckBestIdx := -1
	var ckBest T
	if haveResumedBest {
		ckBestIdx, ckBest = resumed.BestStart, resumedBest
	}
	record := func(i int, v T) {
		ckMu.Lock()
		defer ckMu.Unlock()
		if st.CheckpointErr != nil {
			return
		}
		improved := ckBestIdx < 0 || spec.Better(v, ckBest) ||
			(i < ckBestIdx && !spec.Better(ckBest, v))
		var payload []byte
		if improved {
			ckBestIdx, ckBest = i, v
			payload = cp.Encode(v)
		}
		cut := NotRun
		if spec.Cut != nil {
			cut = spec.Cut(v)
		}
		if err := cp.IO.Sink.StartDone(i, cut, payload); err != nil {
			st.CheckpointErr = err
		}
	}

	// runOne executes start i into the shared result arrays, inside a
	// recover boundary: a panicking start becomes a typed
	// *resilience.PartitionError in its error slot instead of killing
	// the process. Indices are claimed exactly once, so no two
	// invocations share a slot.
	runOne := func(i int, scratch *Scratch) {
		t0 := time.Now()
		v, err := func() (v T, err error) {
			defer func() {
				if r := recover(); r != nil {
					err = resilience.NewPartitionError(spec.Name, i, r)
				}
			}()
			faultinject.Fire(faultinject.PointEngineStart, i)
			return spec.Run(ctx, i, StartRNG(spec.Seed, i), scratch)
		}()
		cpu.Add(int64(time.Since(t0)))
		scratch.Release()
		if err != nil {
			errs[i] = err
			if !degradable(err) {
				failed.Store(true)
			}
			return
		}
		results[i] = v
		completed[i] = true
		if cp != nil {
			record(i, v)
		}
	}
	// claimable reports whether start i may still begin. The mustRun
	// start is exempt from the cancellation check so that a result
	// always exists; other starts stop as soon as the context expires
	// or a start fails.
	claimable := func(i int) bool {
		return i == mustRun || (!failed.Load() && ctx.Err() == nil)
	}
	// skip reports starts a resumed checkpoint already completed.
	skip := func(i int) bool {
		return resumed != nil && resumed.Completed[i]
	}

	if workers <= 1 {
		scratch := GetScratch()
		for i := 0; i < starts; i++ {
			if skip(i) {
				continue
			}
			if !claimable(i) {
				break
			}
			runOne(i, scratch)
		}
		PutScratch(scratch)
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				scratch := GetScratch()
				defer PutScratch(scratch)
				for {
					i := int(next.Add(1)) - 1
					if i >= starts {
						return
					}
					if skip(i) {
						continue
					}
					if !claimable(i) {
						return
					}
					runOne(i, scratch)
				}
			}()
		}
		wg.Wait()
	}

	// Deterministic reduction: ascending start index, strict
	// improvement only, so the lowest index wins every tie and the
	// winner is independent of completion order. Panicked starts are
	// recorded and skipped; ctx-error starts count as never run; any
	// other error aborts. Resumed starts contribute their recorded cuts
	// and exactly one candidate — the resumed best, which (Better being
	// a strict weak ordering) is the value this very scan would have
	// reduced the skipped starts to.
	ctxSkipped := 0
	for i := 0; i < starts; i++ {
		if skip(i) {
			st.StartsRun++
			st.StartsResumed++
			st.Cuts[i] = resumed.Cuts[i]
			if i == resumed.BestStart {
				results[i] = resumedBest
				if st.BestStart < 0 || spec.Better(results[i], results[st.BestStart]) {
					st.BestStart = i
				}
			}
			continue
		}
		if err := errs[i]; err != nil {
			var pe *resilience.PartitionError
			switch {
			case errors.As(err, &pe):
				st.StartsFailed++
				st.Failures = append(st.Failures, err)
			case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
				ctxSkipped++
			default:
				return zero, st, err
			}
			continue
		}
		if !completed[i] {
			continue
		}
		st.StartsRun++
		if spec.Cut != nil {
			st.Cuts[i] = spec.Cut(results[i])
		}
		if st.BestStart < 0 || spec.Better(results[i], results[st.BestStart]) {
			st.BestStart = i
		}
	}
	st.Wall = time.Since(begin)
	st.CPU = time.Duration(cpu.Load())
	st.Cancelled = ctxSkipped > 0 || st.StartsRun+st.StartsFailed+ctxSkipped < starts
	if st.BestStart < 0 {
		if len(st.Failures) > 0 {
			return zero, st, errors.Join(ErrNoStart, st.Failures[0])
		}
		return zero, st, ErrNoStart
	}
	return results[st.BestStart], st, nil
}

// degradable reports errors that must not abort the run: converted
// panics (the start is skipped and reported) and context errors (the
// start counts as never run). Workers keep claiming starts past these.
func degradable(err error) bool {
	var pe *resilience.PartitionError
	return errors.As(err, &pe) ||
		errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}
