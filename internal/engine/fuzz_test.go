package engine

// FuzzEngineDeterminism fuzzes the engine's central promise: for any
// seed, start count and pair of worker counts, Run returns bit-for-bit
// identical results — same best value, same winning start index, same
// per-start cuts — because each start owns an RNG stream and the
// reduction breaks ties toward the lowest index. Each start draws a
// variable number of values so the streams would interleave detectably
// if they were ever shared.

import (
	"context"
	"math/rand"
	"testing"
)

func FuzzEngineDeterminism(f *testing.F) {
	f.Add(int64(1), uint64(8), uint64(1), uint64(4))
	f.Add(int64(-42), uint64(31), uint64(2), uint64(8))
	f.Add(int64(0), uint64(1), uint64(0), uint64(7))
	f.Fuzz(func(t *testing.T, seed int64, startsU, p1U, p2U uint64) {
		starts := 1 + int(startsU%32)
		p1 := int(p1U % 9) // 0 → GOMAXPROCS
		p2 := int(p2U % 9)
		spec := func(par int) Spec[int] {
			return Spec[int]{
				Starts:      starts,
				Parallelism: par,
				Seed:        seed,
				Run: func(_ context.Context, start int, rng *rand.Rand, _ *Scratch) (int, error) {
					// Variable draw count per start: stream sharing or
					// claim-order dependence would shift every later draw.
					draws := 1 + rng.Intn(7)
					v := 0
					for d := 0; d < draws; d++ {
						v = rng.Intn(1000)
					}
					return v, nil
				},
				Better: func(a, b int) bool { return a < b },
				Cut:    func(v int) int { return v },
			}
		}
		b1, s1, err1 := Run(context.Background(), spec(p1))
		b2, s2, err2 := Run(context.Background(), spec(p2))
		if err1 != nil || err2 != nil {
			t.Fatalf("errors: %v, %v", err1, err2)
		}
		if b1 != b2 || s1.BestStart != s2.BestStart || s1.StartsRun != s2.StartsRun {
			t.Fatalf("parallelism %d vs %d diverged: best %d@%d vs %d@%d",
				p1, p2, b1, s1.BestStart, b2, s2.BestStart)
		}
		for i := range s1.Cuts {
			if s1.Cuts[i] != s2.Cuts[i] {
				t.Fatalf("start %d cut %d vs %d under parallelism %d vs %d",
					i, s1.Cuts[i], s2.Cuts[i], p1, p2)
			}
		}
		// The winner must be the first index attaining the minimum.
		for i, c := range s1.Cuts {
			if c < s1.Cuts[s1.BestStart] || (c == s1.Cuts[s1.BestStart] && i < s1.BestStart) {
				t.Fatalf("start %d (cut %d) should have beaten reported best %d (cut %d)",
					i, c, s1.BestStart, s1.Cuts[s1.BestStart])
			}
		}
	})
}
