package matching

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fasthgp/internal/graph"
)

// completeBipartite builds K_{a,b}: left vertices 0..a-1, right a..a+b-1.
func completeBipartite(a, b int) *graph.Graph {
	bld := graph.NewBuilder(a + b)
	for i := 0; i < a; i++ {
		for j := 0; j < b; j++ {
			bld.AddEdge(i, a+j)
		}
	}
	return bld.MustBuild()
}

func evenPath(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		b.AddEdge(i, i+1)
	}
	return b.MustBuild()
}

func TestMaxMatchingCompleteBipartite(t *testing.T) {
	cases := []struct{ a, b, want int }{
		{1, 1, 1}, {2, 3, 2}, {4, 4, 4}, {5, 2, 2},
	}
	for _, c := range cases {
		g := completeBipartite(c.a, c.b)
		m, ok := MaxMatching(g)
		if !ok {
			t.Fatalf("K_{%d,%d} reported non-bipartite", c.a, c.b)
		}
		if m.Size != c.want {
			t.Errorf("K_{%d,%d} matching = %d, want %d", c.a, c.b, m.Size, c.want)
		}
		if !IsMatching(g, m.Mate) {
			t.Errorf("K_{%d,%d}: invalid matching", c.a, c.b)
		}
	}
}

func TestMaxMatchingPath(t *testing.T) {
	// A path on n vertices has a maximum matching of floor(n/2).
	for n := 1; n <= 9; n++ {
		g := evenPath(n)
		m, ok := MaxMatching(g)
		if !ok {
			t.Fatalf("path non-bipartite")
		}
		if m.Size != n/2 {
			t.Errorf("path(%d) matching = %d, want %d", n, m.Size, n/2)
		}
	}
}

func TestMaxMatchingOddCycleRejected(t *testing.T) {
	b := graph.NewBuilder(5)
	for i := 0; i < 5; i++ {
		b.AddEdge(i, (i+1)%5)
	}
	if _, ok := MaxMatching(b.MustBuild()); ok {
		t.Error("odd cycle accepted as bipartite")
	}
	if _, _, ok := MinVertexCover(b.MustBuild()); ok {
		t.Error("MinVertexCover accepted odd cycle")
	}
	if _, _, ok := MaxIndependentSet(b.MustBuild()); ok {
		t.Error("MaxIndependentSet accepted odd cycle")
	}
}

func TestMinVertexCoverStar(t *testing.T) {
	// Star K_{1,4}: cover = {center}, size 1.
	g := completeBipartite(1, 4)
	cover, size, ok := MinVertexCover(g)
	if !ok || size != 1 {
		t.Fatalf("star cover size = %d, ok=%v, want 1", size, ok)
	}
	if !cover[0] {
		t.Error("star cover should be the center")
	}
	if !IsVertexCover(g, cover) {
		t.Error("cover does not cover")
	}
}

func TestMinVertexCoverEmptyGraph(t *testing.T) {
	g := graph.NewBuilder(3).MustBuild()
	cover, size, ok := MinVertexCover(g)
	if !ok || size != 0 {
		t.Errorf("edgeless cover size = %d", size)
	}
	for _, c := range cover {
		if c {
			t.Error("edgeless graph needs no cover vertices")
		}
	}
}

func TestMaxIndependentSet(t *testing.T) {
	g := completeBipartite(3, 5)
	indep, size, ok := MaxIndependentSet(g)
	if !ok || size != 5 {
		t.Fatalf("K_{3,5} independent set = %d, want 5", size)
	}
	// The larger side must be the independent set.
	for v := 3; v < 8; v++ {
		if !indep[v] {
			t.Errorf("right vertex %d missing from independent set", v)
		}
	}
}

func TestIsMatchingRejectsBad(t *testing.T) {
	g := evenPath(4)
	if IsMatching(g, []int{1, 0, 0, Unmatched}) {
		t.Error("asymmetric matching accepted")
	}
	if IsMatching(g, []int{2, Unmatched, 0, Unmatched}) {
		t.Error("non-adjacent pair accepted")
	}
	if !IsMatching(g, []int{1, 0, 3, 2}) {
		t.Error("perfect path matching rejected")
	}
}

// randomBipartite generates a random bipartite graph with parts of size
// a and b and edge probability p.
func randomBipartite(rng *rand.Rand, a, b int, p float64) *graph.Graph {
	bld := graph.NewBuilder(a + b)
	for i := 0; i < a; i++ {
		for j := 0; j < b; j++ {
			if rng.Float64() < p {
				bld.AddEdge(i, a+j)
			}
		}
	}
	return bld.MustBuild()
}

// bruteMinCover finds the minimum vertex cover by subset enumeration;
// only usable for tiny graphs.
func bruteMinCover(g *graph.Graph) int {
	n := g.NumVertices()
	best := n
	for mask := 0; mask < 1<<n; mask++ {
		cover := make([]bool, n)
		cnt := 0
		for v := 0; v < n; v++ {
			if mask&(1<<v) != 0 {
				cover[v] = true
				cnt++
			}
		}
		if cnt < best && IsVertexCover(g, cover) {
			best = cnt
		}
	}
	return best
}

// TestPropertyKonig: matching size == min vertex cover size == brute
// force optimum, and the cover covers.
func TestPropertyKonig(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := 1 + rng.Intn(5)
		b := 1 + rng.Intn(5)
		g := randomBipartite(rng, a, b, 0.4)
		m, ok := MaxMatching(g)
		if !ok || !IsMatching(g, m.Mate) {
			return false
		}
		cover, size, ok := MinVertexCover(g)
		if !ok || size != m.Size || !IsVertexCover(g, cover) {
			return false
		}
		return size == bruteMinCover(g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestPropertyIndependentSetComplement: independent set size + cover
// size == n and the set is independent.
func TestPropertyIndependentSetComplement(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := 1 + rng.Intn(6)
		b := 1 + rng.Intn(6)
		g := randomBipartite(rng, a, b, 0.35)
		indep, size, ok := MaxIndependentSet(g)
		if !ok {
			return false
		}
		_, coverSize, _ := MinVertexCover(g)
		if size+coverSize != g.NumVertices() {
			return false
		}
		for v := 0; v < g.NumVertices(); v++ {
			if !indep[v] {
				continue
			}
			for _, u := range g.Neighbors(v) {
				if indep[u] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestHopcroftKarpLargerRandom exercises the layered phases on a graph
// big enough to require several BFS/DFS rounds.
func TestHopcroftKarpLargerRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	g := randomBipartite(rng, 60, 60, 0.05)
	m, ok := MaxMatching(g)
	if !ok {
		t.Fatal("non-bipartite")
	}
	if !IsMatching(g, m.Mate) {
		t.Fatal("invalid matching")
	}
	cover, size, _ := MinVertexCover(g)
	if size != m.Size {
		t.Errorf("König violated: cover %d vs matching %d", size, m.Size)
	}
	if !IsVertexCover(g, cover) {
		t.Error("cover does not cover")
	}
}
