package matching

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fasthgp/internal/hypergraph"
	"fasthgp/internal/partition"
)

func randomHG(rng *rand.Rand, n, m int) *hypergraph.Hypergraph {
	b := hypergraph.NewBuilder(n)
	for i := 0; i < m; i++ {
		size := 2 + rng.Intn(3)
		pins := make([]int, size)
		for j := range pins {
			pins[j] = rng.Intn(n)
		}
		b.AddEdge(pins...)
	}
	for v := 0; v < n; v++ {
		b.SetVertexWeight(v, int64(1+rng.Intn(4)))
	}
	return b.MustBuild()
}

// heavyEdgeReference is the historical map-based greedy, kept as a
// differential oracle for the array-scored implementation.
func heavyEdgeReference(h *hypergraph.Hypergraph, rng *rand.Rand, opts HeavyEdgeOptions) []int {
	n := h.NumVertices()
	side := func(v int) int8 {
		if v < len(opts.Fixed) {
			return opts.Fixed[v]
		}
		return partition.FreeVertex
	}
	mate := make([]int, n)
	for i := range mate {
		mate[i] = Unmatched
	}
	order := rng.Perm(n)
	score := make(map[int]float64, 8)
	for _, v := range order {
		if mate[v] != Unmatched {
			continue
		}
		clear(score)
		for _, e := range h.VertexEdges(v) {
			size := h.EdgeSize(e)
			if size < 2 || (opts.MaxRatedEdgeSize > 0 && size > opts.MaxRatedEdgeSize) {
				continue
			}
			w := float64(h.EdgeWeight(e)) / float64(size-1)
			for _, u := range h.EdgePins(e) {
				if u == v || mate[u] != Unmatched {
					continue
				}
				if sv, su := side(v), side(u); sv >= 0 && su >= 0 && sv != su {
					continue
				}
				if opts.MaxPairWeight > 0 && h.VertexWeight(v)+h.VertexWeight(u) > opts.MaxPairWeight {
					continue
				}
				score[u] += w
			}
		}
		best, bestScore := Unmatched, 0.0
		for u, s := range score {
			if s > bestScore || (s == bestScore && best != Unmatched && u < best) {
				best, bestScore = u, s
			}
		}
		if best != Unmatched {
			mate[v] = best
			mate[best] = v
		}
	}
	return mate
}

func TestHeavyEdgeMatchesReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(60)
		h := randomHG(rng, n, 2*n)
		var fixed []int8
		if rng.Intn(2) == 0 {
			fixed = make([]int8, n)
			for v := range fixed {
				fixed[v] = int8(rng.Intn(3)) - 1
			}
		}
		opts := HeavyEdgeOptions{Fixed: fixed, MaxPairWeight: int64(rng.Intn(9))}
		s := rng.Int63()
		got := HeavyEdge(h, rand.New(rand.NewSource(s)), opts)
		want := heavyEdgeReference(h, rand.New(rand.NewSource(s)), opts)
		if len(got) != len(want) {
			return false
		}
		for v := range got {
			if got[v] != want[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestHeavyEdgeSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	h := randomHG(rng, 80, 180)
	mate := HeavyEdge(h, rng, HeavyEdgeOptions{})
	for v, u := range mate {
		if u == Unmatched {
			continue
		}
		if u < 0 || u >= len(mate) || mate[u] != v || u == v {
			t.Fatalf("asymmetric match: mate[%d]=%d, mate[%d]=%d", v, u, u, mate[u])
		}
	}
}

func TestHeavyEdgeRespectsFixedSides(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	n := 50
	h := randomHG(rng, n, 150)
	fixed := make([]int8, n)
	for v := range fixed {
		fixed[v] = int8(v % 2) // alternate sides, nobody free
	}
	mate := HeavyEdge(h, rng, HeavyEdgeOptions{Fixed: fixed})
	for v, u := range mate {
		if u != Unmatched && fixed[v] != fixed[u] {
			t.Fatalf("matched opposite fixed sides: %d(side %d) with %d(side %d)", v, fixed[v], u, fixed[u])
		}
	}
}

func TestHeavyEdgeRespectsMaxPairWeight(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	h := randomHG(rng, 60, 160)
	const maxPair = 4
	mate := HeavyEdge(h, rng, HeavyEdgeOptions{MaxPairWeight: maxPair})
	for v, u := range mate {
		if u != Unmatched && h.VertexWeight(v)+h.VertexWeight(u) > maxPair {
			t.Fatalf("pair %d+%d weighs %d > cap %d", v, u, h.VertexWeight(v)+h.VertexWeight(u), maxPair)
		}
	}
}

func TestHeavyEdgeDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	h := randomHG(rng, 70, 170)
	a := HeavyEdge(h, rand.New(rand.NewSource(42)), HeavyEdgeOptions{})
	b := HeavyEdge(h, rand.New(rand.NewSource(42)), HeavyEdgeOptions{})
	for v := range a {
		if a[v] != b[v] {
			t.Fatalf("nondeterministic at vertex %d: %d vs %d", v, a[v], b[v])
		}
	}
}
