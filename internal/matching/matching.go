// Package matching implements maximum bipartite matching
// (Hopcroft–Karp) and the König construction of a minimum vertex
// cover.
//
// The connection to the paper: completing Algorithm I's partial
// bipartition means choosing, for each node of the bipartite boundary
// graph G′, whether it is a "winner" (stays uncut) or a "loser"
// (crosses the cut). Winners must form an independent set of G′, so
// losers form a vertex cover, and the optimum completion has exactly
// min-vertex-cover(G′) losers. By König's theorem that equals the size
// of a maximum matching. This package supplies the exact optimum
// against which the paper's greedy Complete-Cut rule (provably within
// one per connected component) is verified, and powers the library's
// CompletionExact mode.
package matching

import "fasthgp/internal/graph"

// Unmatched marks a vertex with no matching partner.
const Unmatched = -1

// BipartiteMatching holds a maximum matching of a bipartite graph and
// the two-coloring it was computed under.
type BipartiteMatching struct {
	// Mate[v] is v's partner, or Unmatched.
	Mate []int
	// Size is the number of matched pairs.
	Size int
	// Color is the bipartition coloring used (0/1 per vertex).
	Color []int
}

// MaxMatching computes a maximum matching of the bipartite graph g
// using Hopcroft–Karp in O(E·√V). The graph must be bipartite; ok is
// false otherwise.
func MaxMatching(g *graph.Graph) (m *BipartiteMatching, ok bool) {
	color, ok := g.IsBipartite()
	if !ok {
		return nil, false
	}
	n := g.NumVertices()
	mate := make([]int, n)
	for i := range mate {
		mate[i] = Unmatched
	}

	const inf = int(^uint(0) >> 1)
	dist := make([]int, n)
	queue := make([]int, 0, n)

	// BFS phase: layer the left (color 0) free vertices.
	bfs := func() bool {
		queue = queue[:0]
		for v := 0; v < n; v++ {
			if color[v] == 0 && mate[v] == Unmatched {
				dist[v] = 0
				queue = append(queue, v)
			} else {
				dist[v] = inf
			}
		}
		foundAugmenting := false
		for head := 0; head < len(queue); head++ {
			v := queue[head]
			for _, u := range g.Neighbors(v) {
				w := mate[u]
				if w == Unmatched {
					foundAugmenting = true
				} else if dist[w] == inf {
					dist[w] = dist[v] + 1
					queue = append(queue, w)
				}
			}
		}
		return foundAugmenting
	}

	// DFS phase: find vertex-disjoint shortest augmenting paths.
	var dfs func(v int) bool
	dfs = func(v int) bool {
		for _, u := range g.Neighbors(v) {
			w := mate[u]
			if w == Unmatched || (dist[w] == dist[v]+1 && dfs(w)) {
				mate[v] = u
				mate[u] = v
				return true
			}
		}
		dist[v] = inf
		return false
	}

	size := 0
	for bfs() {
		for v := 0; v < n; v++ {
			if color[v] == 0 && mate[v] == Unmatched && dfs(v) {
				size++
			}
		}
	}
	return &BipartiteMatching{Mate: mate, Size: size, Color: color}, true
}

// MinVertexCover returns a minimum vertex cover of the bipartite graph
// g via König's theorem, as a boolean membership slice and the cover
// size (equal to the maximum matching size). ok is false when g is not
// bipartite.
//
// Construction: let Z be the set of vertices reachable from unmatched
// left vertices by alternating paths (unmatched edges left→right,
// matched edges right→left). The cover is (Left \ Z) ∪ (Right ∩ Z).
func MinVertexCover(g *graph.Graph) (cover []bool, size int, ok bool) {
	m, ok := MaxMatching(g)
	if !ok {
		return nil, 0, false
	}
	n := g.NumVertices()
	inZ := make([]bool, n)
	queue := make([]int, 0, n)
	for v := 0; v < n; v++ {
		if m.Color[v] == 0 && m.Mate[v] == Unmatched {
			inZ[v] = true
			queue = append(queue, v)
		}
	}
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		if m.Color[v] == 0 {
			// Traverse non-matching edges to the right side.
			for _, u := range g.Neighbors(v) {
				if m.Mate[v] != u && !inZ[u] {
					inZ[u] = true
					queue = append(queue, u)
				}
			}
		} else if w := m.Mate[v]; w != Unmatched && !inZ[w] {
			// Traverse the matching edge back to the left side.
			inZ[w] = true
			queue = append(queue, w)
		}
	}
	cover = make([]bool, n)
	for v := 0; v < n; v++ {
		if (m.Color[v] == 0 && !inZ[v]) || (m.Color[v] == 1 && inZ[v]) {
			cover[v] = true
			size++
		}
	}
	return cover, size, true
}

// MaxIndependentSet returns a maximum independent set of the bipartite
// graph g (the complement of a minimum vertex cover) and its size.
// ok is false when g is not bipartite.
func MaxIndependentSet(g *graph.Graph) (indep []bool, size int, ok bool) {
	cover, coverSize, ok := MinVertexCover(g)
	if !ok {
		return nil, 0, false
	}
	indep = make([]bool, len(cover))
	for v, c := range cover {
		indep[v] = !c
	}
	return indep, g.NumVertices() - coverSize, true
}

// IsVertexCover verifies that cover hits every edge of g. Exposed for
// tests and for validating completion results.
func IsVertexCover(g *graph.Graph, cover []bool) bool {
	for v := 0; v < g.NumVertices(); v++ {
		if cover[v] {
			continue
		}
		for _, u := range g.Neighbors(v) {
			if u > v && !cover[u] {
				return false
			}
		}
	}
	return true
}

// IsMatching verifies that mate encodes a valid matching of g:
// symmetric, partners adjacent, no vertex matched twice.
func IsMatching(g *graph.Graph, mate []int) bool {
	for v := 0; v < g.NumVertices(); v++ {
		u := mate[v]
		if u == Unmatched {
			continue
		}
		if u < 0 || u >= g.NumVertices() || mate[u] != v || !g.HasEdge(v, u) {
			return false
		}
	}
	return true
}
