// Heavy-edge matching — the rating half of multilevel coarsening. The
// map-based scorer that used to live in internal/coarsen allocated a
// hash map per visited vertex; at the million-pin scale the V-cycle
// targets, that map dominated the coarsening phase. This version keeps
// the exact same greedy (max rating, lowest index on ties, random
// visitation order from the caller's RNG) but accumulates ratings in a
// dense float64 array with a touched-list reset, so one matching pass
// is a single allocation-free sweep over the pin structure.
package matching

import (
	"math/rand"

	"fasthgp/internal/hypergraph"
	"fasthgp/internal/partition"
)

// HeavyEdgeOptions configures HeavyEdge.
type HeavyEdgeOptions struct {
	// Fixed pins vertices to sides (partition.FreeVertex = free). Two
	// vertices pinned to different sides are never matched, so every
	// contracted cluster has a well-defined fixed side. A nil or short
	// slice leaves the remaining vertices free.
	Fixed []int8
	// MaxPairWeight caps the combined vertex weight of a matched pair:
	// w(u)+w(v) > MaxPairWeight is never matched (0 = unbounded). This
	// is how coarsening keeps the ε-balance contract satisfiable — a
	// cluster heavier than the bound could never sit inside a side.
	MaxPairWeight int64
	// MaxRatedEdgeSize skips edges with more pins than this during
	// rating (0 = rate everything). Huge nets contribute ~w/|e| to every
	// pin pair — negligible signal for quadratic cost — so large-scale
	// callers cut them off.
	MaxRatedEdgeSize int
}

// HeavyEdge computes a greedy heavy-edge matching of h: vertices are
// visited in rng.Perm order, and each unmatched vertex v is matched to
// the unmatched neighbour u maximizing the rating Σ w(e)/(|e|−1) over
// shared nets e (ties broken toward the lowest index). The result is
// mate[v] = partner or Unmatched, symmetric.
//
// The greedy is deterministic given rng's state and, with a zero
// options struct, reproduces the historical coarsen.Step matching
// decisions exactly.
func HeavyEdge(h *hypergraph.Hypergraph, rng *rand.Rand, opts HeavyEdgeOptions) []int {
	n := h.NumVertices()
	side := func(v int) int8 {
		if v < len(opts.Fixed) {
			return opts.Fixed[v]
		}
		return partition.FreeVertex
	}
	mate := make([]int, n)
	for i := range mate {
		mate[i] = Unmatched
	}
	score := make([]float64, n)
	touched := make([]int, 0, 64)
	order := rng.Perm(n)
	for _, v := range order {
		if mate[v] != Unmatched {
			continue
		}
		sv := side(v)
		wv := h.VertexWeight(v)
		touched = touched[:0]
		for _, e := range h.VertexEdges(v) {
			size := h.EdgeSize(e)
			if size < 2 || (opts.MaxRatedEdgeSize > 0 && size > opts.MaxRatedEdgeSize) {
				continue
			}
			w := float64(h.EdgeWeight(e)) / float64(size-1)
			for _, u := range h.EdgePins(e) {
				if u == v || mate[u] != Unmatched {
					continue
				}
				if su := side(u); sv >= 0 && su >= 0 && sv != su {
					continue // opposite pins must stay separable
				}
				if opts.MaxPairWeight > 0 && wv+h.VertexWeight(u) > opts.MaxPairWeight {
					continue
				}
				if score[u] == 0 {
					touched = append(touched, u)
				}
				score[u] += w
			}
		}
		best, bestScore := Unmatched, 0.0
		for _, u := range touched {
			if s := score[u]; s > bestScore || (s == bestScore && best != Unmatched && u < best) {
				best, bestScore = u, s
			}
		}
		for _, u := range touched {
			score[u] = 0
		}
		if best != Unmatched {
			mate[v] = best
			mate[best] = v
		}
	}
	return mate
}
