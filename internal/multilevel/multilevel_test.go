package multilevel

import (
	"math/rand"
	"testing"

	"fasthgp/internal/bruteforce"
	"fasthgp/internal/core"
	"fasthgp/internal/gen"
	"fasthgp/internal/hypergraph"
	"fasthgp/internal/partition"
)

func TestErrorTooSmall(t *testing.T) {
	h, err := hypergraph.FromEdges(1, [][]int{{0}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Bisect(h, Options{}); err == nil {
		t.Error("accepted 1-vertex hypergraph")
	}
}

func TestValidOnProfiles(t *testing.T) {
	for _, tech := range []gen.Technology{gen.StdCell, gen.PCB} {
		rng := rand.New(rand.NewSource(int64(tech)))
		h, err := gen.Profile(gen.ProfileConfig{Modules: 400, Signals: 800, Technology: tech}, rng)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Bisect(h, Options{Seed: 1})
		if err != nil {
			t.Fatalf("%v: %v", tech, err)
		}
		if err := res.Partition.Validate(h); err != nil {
			t.Fatalf("%v: %v", tech, err)
		}
		if got := partition.CutSize(h, res.Partition); got != res.CutSize {
			t.Errorf("%v: reported %d != recomputed %d", tech, res.CutSize, got)
		}
		if res.Levels < 1 {
			t.Errorf("%v: no coarsening levels used", tech)
		}
		if res.CoarsestVertices > 128 {
			t.Errorf("%v: coarsest %d vertices", tech, res.CoarsestVertices)
		}
	}
}

func TestSmallInputSkipsCoarsening(t *testing.T) {
	h, err := hypergraph.FromEdges(8, [][]int{{0, 1}, {1, 2}, {2, 3}, {4, 5}, {5, 6}, {6, 7}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Bisect(h, Options{Seed: 2, MinCoarseVertices: 64})
	if err != nil {
		t.Fatal(err)
	}
	if res.Levels != 0 {
		t.Errorf("levels = %d, want 0 for an already-small input", res.Levels)
	}
	if res.CutSize != 1 {
		t.Errorf("cut = %d, want 1", res.CutSize)
	}
}

func TestMatchesOptimumOnSmall(t *testing.T) {
	h, err := hypergraph.FromEdges(10, [][]int{
		{0, 1, 2}, {2, 3, 4}, {0, 4}, {1, 3},
		{5, 6, 7}, {7, 8, 9}, {5, 9}, {6, 8},
		{4, 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	_, opt, err := bruteforce.MinCut(h, 2)
	if err != nil {
		t.Fatal(err)
	}
	best := 1 << 30
	for seed := int64(0); seed < 5; seed++ {
		res, err := Bisect(h, Options{Seed: seed, MinCoarseVertices: 4})
		if err != nil {
			t.Fatal(err)
		}
		if res.CutSize < best {
			best = res.CutSize
		}
	}
	if best != opt {
		t.Errorf("best multilevel cut = %d, optimum = %d", best, opt)
	}
}

func TestCompetitiveWithFlat(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	h, err := gen.Profile(gen.ProfileConfig{Modules: 600, Signals: 1200, Technology: gen.StdCell}, rng)
	if err != nil {
		t.Fatal(err)
	}
	ml, err := Bisect(h, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	flat, err := core.Bipartition(h, core.Options{Starts: 10, Seed: 3, Threshold: 10, BalancedBFS: true, Completion: core.CompletionWeighted})
	if err != nil {
		t.Fatal(err)
	}
	// The multilevel scheme with FM refinement should be at least
	// competitive with a balanced flat run (generous 2x envelope keeps
	// the test robust across platforms).
	if flat.CutSize > 0 && ml.CutSize > 2*flat.CutSize {
		t.Errorf("multilevel cut %d far worse than flat %d", ml.CutSize, flat.CutSize)
	}
}

func TestDeterministicPerSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	h, err := gen.Profile(gen.ProfileConfig{Modules: 200, Signals: 400, Technology: gen.GateArray}, rng)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Bisect(h, Options{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Bisect(h, Options{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if a.CutSize != b.CutSize {
		t.Error("same seed gave different cuts")
	}
}
