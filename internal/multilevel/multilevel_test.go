package multilevel

import (
	"math/rand"
	"testing"

	"fasthgp/internal/bruteforce"
	"fasthgp/internal/core"
	"fasthgp/internal/gen"
	"fasthgp/internal/hypergraph"
	"fasthgp/internal/partition"
)

func TestErrorTooSmall(t *testing.T) {
	h, err := hypergraph.FromEdges(1, [][]int{{0}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Bisect(h, Options{}); err == nil {
		t.Error("accepted 1-vertex hypergraph")
	}
}

func TestValidOnProfiles(t *testing.T) {
	for _, tech := range []gen.Technology{gen.StdCell, gen.PCB} {
		rng := rand.New(rand.NewSource(int64(tech)))
		h, err := gen.Profile(gen.ProfileConfig{Modules: 400, Signals: 800, Technology: tech}, rng)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Bisect(h, Options{Seed: 1})
		if err != nil {
			t.Fatalf("%v: %v", tech, err)
		}
		if err := res.Partition.Validate(h); err != nil {
			t.Fatalf("%v: %v", tech, err)
		}
		if got := partition.CutSize(h, res.Partition); got != res.CutSize {
			t.Errorf("%v: reported %d != recomputed %d", tech, res.CutSize, got)
		}
		if res.Levels < 1 {
			t.Errorf("%v: no coarsening levels used", tech)
		}
		if res.CoarsestVertices > 128 {
			t.Errorf("%v: coarsest %d vertices", tech, res.CoarsestVertices)
		}
	}
}

func TestSmallInputSkipsCoarsening(t *testing.T) {
	h, err := hypergraph.FromEdges(8, [][]int{{0, 1}, {1, 2}, {2, 3}, {4, 5}, {5, 6}, {6, 7}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Bisect(h, Options{Seed: 2, MinCoarseVertices: 64})
	if err != nil {
		t.Fatal(err)
	}
	if res.Levels != 0 {
		t.Errorf("levels = %d, want 0 for an already-small input", res.Levels)
	}
	if res.CutSize != 1 {
		t.Errorf("cut = %d, want 1", res.CutSize)
	}
}

func TestMatchesOptimumOnSmall(t *testing.T) {
	h, err := hypergraph.FromEdges(10, [][]int{
		{0, 1, 2}, {2, 3, 4}, {0, 4}, {1, 3},
		{5, 6, 7}, {7, 8, 9}, {5, 9}, {6, 8},
		{4, 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	_, opt, err := bruteforce.MinCut(h, 2)
	if err != nil {
		t.Fatal(err)
	}
	best := 1 << 30
	for seed := int64(0); seed < 5; seed++ {
		res, err := Bisect(h, Options{Seed: seed, MinCoarseVertices: 4})
		if err != nil {
			t.Fatal(err)
		}
		if res.CutSize < best {
			best = res.CutSize
		}
	}
	if best != opt {
		t.Errorf("best multilevel cut = %d, optimum = %d", best, opt)
	}
}

func TestCompetitiveWithFlat(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	h, err := gen.Profile(gen.ProfileConfig{Modules: 600, Signals: 1200, Technology: gen.StdCell}, rng)
	if err != nil {
		t.Fatal(err)
	}
	ml, err := Bisect(h, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	flat, err := core.Bipartition(h, core.Options{Starts: 10, Seed: 3, Threshold: 10, BalancedBFS: true, Completion: core.CompletionWeighted})
	if err != nil {
		t.Fatal(err)
	}
	// The multilevel scheme with FM refinement should be at least
	// competitive with a balanced flat run (generous 2x envelope keeps
	// the test robust across platforms).
	if flat.CutSize > 0 && ml.CutSize > 2*flat.CutSize {
		t.Errorf("multilevel cut %d far worse than flat %d", ml.CutSize, flat.CutSize)
	}
}

func TestDeterministicPerSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	h, err := gen.Profile(gen.ProfileConfig{Modules: 200, Signals: 400, Technology: gen.GateArray}, rng)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Bisect(h, Options{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Bisect(h, Options{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if a.CutSize != b.CutSize {
		t.Error("same seed gave different cuts")
	}
}

// TestConstraintThroughVCycle pins vertices on a large instance (so
// real coarsening levels are built) and requires the full V-cycle —
// fixed-aware coarsening, constrained coarsest cut, constrained
// per-level refinement, final enforcement — to deliver a partition
// honoring both the pins and the ε bound.
func TestConstraintThroughVCycle(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	h, err := gen.Profile(gen.ProfileConfig{Modules: 400, Signals: 800, Technology: gen.StdCell}, rng)
	if err != nil {
		t.Fatal(err)
	}
	n := h.NumVertices()
	fixed := make([]int8, n)
	for i := range fixed {
		fixed[i] = partition.FreeVertex
	}
	for v := 0; v < 10; v++ {
		fixed[v] = 0
		fixed[n-1-v] = 1
	}
	c := partition.Constraint{Epsilon: 0.15, FixedSide: fixed}
	for seed := int64(1); seed <= 3; seed++ {
		res, err := Bisect(h, Options{Seed: seed, Constraint: c})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := res.Partition.Validate(h); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Levels < 1 {
			t.Fatalf("seed %d: no coarsening levels — the test exercises nothing", seed)
		}
		if !c.RespectsFixed(res.Partition) {
			t.Errorf("seed %d: fixed vertex moved through the V-cycle", seed)
		}
		maxSide := c.MaxSideWeight(h.TotalVertexWeight(), 2)
		l, r := partition.SideWeights(h, res.Partition)
		if l > maxSide || r > maxSide {
			t.Errorf("seed %d: side weights %d/%d exceed bound %d", seed, l, r, maxSide)
		}
	}
}

// TestConstraintOppositePinsNeverContracted: coarsening must not merge
// two vertices pinned to opposite sides — the coarse vertex could not
// carry both pins. Indirectly certified by the pins surviving every
// level of projection on an instance where they are adjacent.
func TestConstraintOppositePinsNeverContracted(t *testing.T) {
	// A tight chain where naturally every neighbor pair is a contraction
	// candidate; adjacent vertices are pinned to opposite sides.
	b := hypergraph.NewBuilder(64)
	for i := 0; i+1 < 64; i++ {
		b.AddEdge(i, i+1)
	}
	h := b.MustBuild()
	fixed := make([]int8, 64)
	for i := range fixed {
		fixed[i] = partition.FreeVertex
	}
	fixed[30] = 0
	fixed[31] = 1 // adjacent and opposite: the tempting contraction
	c := partition.Constraint{FixedSide: fixed}
	res, err := Bisect(h, Options{Seed: 4, MinCoarseVertices: 8, Constraint: c})
	if err != nil {
		t.Fatal(err)
	}
	if res.Partition.Side(30) != partition.Left || res.Partition.Side(31) != partition.Right {
		t.Errorf("opposite pins broken: v30=%v v31=%v", res.Partition.Side(30), res.Partition.Side(31))
	}
}
