package multilevel

import (
	"math/rand"
	"testing"

	"fasthgp/internal/gen"
	"fasthgp/internal/partition"
	"fasthgp/internal/verify"
)

func TestFlowRefinementNeverWorsens(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		h, err := gen.Random(200, gen.RandomConfig{NumEdges: 420, MinEdgeSize: 2, MaxEdgeSize: 5}, rng)
		if err != nil {
			t.Fatal(err)
		}
		flat, err := Bisect(h, Options{Seed: seed, Starts: 2, DisableFlow: true})
		if err != nil {
			t.Fatal(err)
		}
		vc, err := Bisect(h, Options{Seed: seed, Starts: 2})
		if err != nil {
			t.Fatal(err)
		}
		// Flow only ever accepts strict improvements, but it reroutes the
		// subsequent FM trajectory, so per-instance parity isn't
		// guaranteed — allow a tiny envelope, never a blowup.
		if vc.CutSize > flat.CutSize+flat.CutSize/4+2 {
			t.Errorf("seed %d: vcycle cut %d ≫ flat cut %d", seed, vc.CutSize, flat.CutSize)
		}
		if vc.VCycle.FlowRounds == 0 {
			t.Errorf("seed %d: flow refinement never ran", seed)
		}
	}
}

func TestFlowStatsDeterministicAcrossParallelism(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	h, err := gen.Random(300, gen.RandomConfig{NumEdges: 640, MinEdgeSize: 2, MaxEdgeSize: 6}, rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, seed := range []int64{1, 7, 42} {
		serial, err := Bisect(h, Options{Seed: seed, Starts: 4, Parallelism: 1})
		if err != nil {
			t.Fatal(err)
		}
		par, err := Bisect(h, Options{Seed: seed, Starts: 4, Parallelism: 4})
		if err != nil {
			t.Fatal(err)
		}
		if serial.CutSize != par.CutSize {
			t.Fatalf("seed %d: serial cut %d != parallel cut %d", seed, serial.CutSize, par.CutSize)
		}
		for v := 0; v < h.NumVertices(); v++ {
			if serial.Partition.Side(v) != par.Partition.Side(v) {
				t.Fatalf("seed %d: side mismatch at vertex %d", seed, v)
			}
		}
		if serial.VCycle != par.VCycle {
			t.Fatalf("seed %d: vcycle stats diverge: serial %+v parallel %+v", seed, serial.VCycle, par.VCycle)
		}
	}
}

func TestFlowRespectsConstraint(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	h, err := gen.Random(180, gen.RandomConfig{NumEdges: 400, MinEdgeSize: 2, MaxEdgeSize: 5}, rng)
	if err != nil {
		t.Fatal(err)
	}
	fixed := make([]int8, h.NumVertices())
	for v := range fixed {
		fixed[v] = partition.FreeVertex
	}
	fixed[0], fixed[1], fixed[2] = 0, 0, 1
	c := partition.Constraint{Epsilon: 0.15, FixedSide: fixed}
	res, err := Bisect(h, Options{Seed: 5, Starts: 3, Constraint: c})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := verify.CheckConstraint(h, res.Partition, c); err != nil {
		t.Fatalf("vcycle result violates constraint: %v", err)
	}
}

func TestFlowGainAccountedInCut(t *testing.T) {
	// On a planted cut the flow step should find work at least once
	// across seeds, and accepted gain must never be negative.
	found := false
	for seed := int64(1); seed <= 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		h, _, err := gen.PlantedCut(240, gen.PlantedConfig{CutSize: 8, IntraEdges: 300}, rng)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Bisect(h, Options{Seed: seed, Starts: 2})
		if err != nil {
			t.Fatal(err)
		}
		if res.VCycle.FlowGain < 0 || res.VCycle.FlowAccepted > res.VCycle.FlowRounds {
			t.Fatalf("seed %d: implausible stats %+v", seed, res.VCycle)
		}
		if res.VCycle.FlowAccepted > 0 {
			found = true
		}
	}
	if !found {
		t.Log("flow never accepted a round on planted instances (FM already optimal) — acceptable")
	}
}
