// Flow-based refinement for the V-cycle, after "Network Flow-Based
// Refinement for Multilevel Hypergraph Partitioning" (Heuer, Sanders,
// Schlag): grow a corridor of bounded weight around the current cut,
// contract everything outside it into the source (Left) and sink
// (Right) of a Lawler flow network, solve max-flow, and adopt the most
// balanced of the minimum cut's two extreme orientations — repaired by
// rebalance.Enforce when the raw min cut improves the cut but
// overshoots the balance bound, and kept only when the end state beats
// the starting cut within the balance contract. FM moves one vertex at
// a time and stalls in local minima; the flow step moves whole vertex
// sets at once and is exactly the non-local escape FM lacks.
package multilevel

import (
	"context"

	"fasthgp/internal/engine"
	"fasthgp/internal/hypergraph"
	"fasthgp/internal/maxflow"
	"fasthgp/internal/partition"
	"fasthgp/internal/rebalance"
)

// VCycleStats are the deterministic work counters of one V-cycle —
// machine-independent, so the perf baseline can bless and gate them
// exactly like allocation counts.
type VCycleStats struct {
	// Levels is the number of coarsening levels used.
	Levels int
	// CoarsestVertices is the size of the coarsest hypergraph.
	CoarsestVertices int
	// CorridorVertices totals corridor sizes over all flow rounds.
	CorridorVertices int64
	// FlowNodes totals flow-network node counts over all rounds.
	FlowNodes int64
	// FlowAugmentations totals Dinic augmenting paths over all rounds.
	FlowAugmentations int64
	// FlowRounds is the number of corridor solves attempted.
	FlowRounds int64
	// FlowAccepted is how many of those were kept — for a cut
	// improvement or an equal-cut balance improvement.
	FlowAccepted int64
	// FlowGain is the total weighted cut reduction from accepted rounds.
	FlowGain int64
	// RefineGain is the total cut reduction (cut nets) achieved by
	// refinement across all levels, FM and flow together.
	RefineGain int64
}

// flowRefine runs up to rounds corridor-flow improvement rounds on p in
// place. Each round rebuilds the corridor around the current cut with a
// per-side weight budget of corridorFraction·⌈w(V)/2⌉; a round whose
// min-cut breaks the balance envelope is rolled back and retried with
// half the budget, and a round that cannot improve the cut ends the
// loop. The balance envelope mirrors FM's: the constraint when one is
// set, else the legacy balanceFraction window.
func flowRefine(ctx context.Context, h *hypergraph.Hypergraph, p *partition.Bipartition,
	c partition.Constraint, balanceFraction, corridorFraction float64, rounds int,
	scratch *engine.Scratch, stats *VCycleStats) {
	if h.NumVertices() < 4 || h.NumEdges() == 0 {
		return
	}
	bal := c
	if !bal.HasBalance() {
		bal = partition.FromBalanceFraction(balanceFraction)
		bal.FixedSide = c.FixedSide
	}
	total := h.TotalVertexWeight()
	maxSide := bal.MaxSideWeight(total, 2)
	budget := corridorFraction
	for round := 0; round < rounds; round++ {
		if ctx.Err() != nil {
			return
		}
		gain, accepted, balanced := flowRound(ctx, h, p, bal, maxSide, budget, scratch, stats)
		if accepted {
			stats.FlowAccepted++
			stats.FlowGain += gain
			continue
		}
		if !balanced {
			// The unconstrained min-cut drifted past the balance bound;
			// a tighter corridor bounds the drift by construction.
			budget /= 2
			if budget*float64(total) < 2 {
				return
			}
			continue
		}
		return // flow found no improvement — the cut is flow-optimal here
	}
}

// flowRound builds one corridor, solves it, and applies the best
// acceptable min-cut assignment: one that, within the balance bound,
// strictly improves the weighted cut or keeps it while strictly
// shrinking the heavy side. A min cut that improves the cut but
// overshoots the balance bound is not discarded outright: it is
// adopted and repaired by rebalance.Enforce (cheapest movers first),
// and kept when the repaired cut still strictly beats the starting
// point. It returns the realized gain (possibly 0 for a balance-only
// acceptance), whether an assignment was kept, and whether any raw
// candidate respected the balance bound (a false balanced return asks
// the caller to shrink the corridor).
func flowRound(ctx context.Context, h *hypergraph.Hypergraph, p *partition.Bipartition,
	bal partition.Constraint, maxSide int64, budget float64,
	scratch *engine.Scratch, stats *VCycleStats) (gain int64, accepted, balanced bool) {
	n := h.NumVertices()
	m := h.NumEdges()
	stats.FlowRounds++
	// Every buffer leased below is round-local; reclaiming on exit keeps
	// the arena footprint flat across levels × rounds. Nothing else in
	// the V-cycle holds scratch leases across a flow round.
	defer scratch.Release()

	// Corridor state per vertex: 0 outside, 1 queued/in corridor. Both
	// the boundary seeds and the BFS growth ring spend the same
	// per-side weight budget, so corridor size — and with it the flow
	// network — stays bounded no matter how ragged the current cut is.
	// The floor of ~32 average vertices per side keeps the corridor
	// meaningful on coarse levels where a pure fraction would round to
	// nothing.
	total := h.TotalVertexWeight()
	perSide := int64(budget * float64((total+1)/2))
	if minSide := 32 * total / int64(n); perSide < minSide {
		perSide = minSide
	}
	sideBudget := [2]int64{perSide, perSide}
	inCorridor := scratch.Int8s(n)
	var queue []int
	admit := func(v int) {
		if inCorridor[v] != 0 || bal.Fixed(v) >= 0 {
			return
		}
		s := p.Side(v)
		if w := h.VertexWeight(v); sideBudget[s] >= w {
			sideBudget[s] -= w
			inCorridor[v] = 1
			queue = append(queue, v)
		}
	}
	for e := 0; e < m; e++ {
		if partition.Crosses(h, p, e) {
			for _, v := range h.EdgePins(e) {
				admit(v)
			}
		}
	}
	if len(queue) == 0 {
		return 0, false, true
	}
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		for _, e := range h.VertexEdges(v) {
			for _, u := range h.EdgePins(e) {
				admit(u)
			}
		}
	}
	stats.CorridorVertices += int64(len(queue))

	// Lawler net model with source/sink contraction: node 0 = S (all
	// external Left mass), node 1 = T (external Right), corridor vertex
	// queue[i] = node 2+i, and two nodes per touched net joined by an
	// arc of the net's weight — cutting that arc is cutting the net.
	nodeOf := scratch.Ints(n) // vertex → node+1 (0 = not in corridor)
	for i, v := range queue {
		nodeOf[v] = 2 + i + 1
	}
	const s, t = 0, 1
	nodes := 2 + len(queue)
	// Count touched nets first so net nodes get contiguous ids.
	type netArc struct{ e, e1 int }
	var touched []netArc
	for e := 0; e < m; e++ {
		hasCorridor := false
		for _, v := range h.EdgePins(e) {
			if nodeOf[v] != 0 {
				hasCorridor = true
				break
			}
		}
		if hasCorridor {
			touched = append(touched, netArc{e: e, e1: nodes})
			nodes += 2
		}
	}
	stats.FlowNodes += int64(nodes)

	net := maxflow.New(nodes)
	for _, na := range touched {
		e1, e2 := na.e1, na.e1+1
		net.AddArc(e1, e2, h.EdgeWeight(na.e))
		sArc, tArc := false, false
		for _, v := range h.EdgePins(na.e) {
			if node := nodeOf[v]; node != 0 {
				net.AddArc(node-1, e1, maxflow.Inf)
				net.AddArc(e2, node-1, maxflow.Inf)
			} else if p.Side(v) == partition.Left {
				sArc = true
			} else {
				tArc = true
			}
		}
		if sArc {
			net.AddArc(s, e1, maxflow.Inf)
			net.AddArc(e2, s, maxflow.Inf)
		}
		if tArc {
			net.AddArc(t, e1, maxflow.Inf)
			net.AddArc(e2, t, maxflow.Inf)
		}
	}
	if _, err := net.MaxFlowCtx(ctx, s, t); err != nil {
		stats.FlowAugmentations += net.Augmentations()
		return 0, false, true // cancelled — treat as no improvement, stop cleanly
	}
	stats.FlowAugmentations += net.Augmentations()

	// The residual network encodes every minimum cut at once; its two
	// extreme orientations are the smallest source side (reachable from
	// S) and the largest (complement of reachable-to-T). Evaluate both
	// and keep the better acceptable one — the most-balanced-minimum-cut
	// choice. A candidate is acceptable when it respects the balance
	// bound and either strictly improves the cut or matches it with a
	// strictly smaller heavy side; the latter is a plateau hop that
	// re-arms the FM pass that follows an accepted round.
	before := partition.WeightedCutSize(h, p)
	bl, br := partition.SideWeights(h, p)
	curMax := bl
	if br > curMax {
		curMax = br
	}
	type candidate struct {
		after, heavy int64
		ok, balanced bool
	}
	var moved []int
	rollback := func() {
		for _, v := range moved {
			p.Assign(v, p.Side(v).Opposite())
		}
		moved = moved[:0]
	}
	try := func(leftOf func(i int) bool) candidate {
		for i, v := range queue {
			want := partition.Right
			if leftOf(i) {
				want = partition.Left
			}
			if p.Side(v) != want {
				p.Assign(v, want)
				moved = append(moved, v)
			}
		}
		if len(moved) == 0 {
			return candidate{after: before, heavy: curMax, balanced: true}
		}
		after := partition.WeightedCutSize(h, p)
		left, right := partition.SideWeights(h, p)
		lc, rc, _ := p.Counts()
		heavy := left
		if right > heavy {
			heavy = right
		}
		balanced := left <= maxSide && right <= maxSide && lc > 0 && rc > 0
		ok := balanced && (after < before || (after == before && heavy < curMax))
		rollback()
		return candidate{after: after, heavy: heavy, ok: ok, balanced: balanced}
	}
	srcSide := net.MinCutSourceSide(s)
	small := try(func(i int) bool { return srcSide[2+i] })
	sinkSide := net.MinCutSinkSide(t)
	large := try(func(i int) bool { return !sinkSide[2+i] })

	pick := func(a, b candidate) bool { // does a beat b?
		if a.after != b.after {
			return a.after < b.after
		}
		return a.heavy < b.heavy
	}
	best, leftOf := small, func(i int) bool { return srcSide[2+i] }
	if (large.ok && !small.ok) || (large.ok == small.ok && pick(large, small)) {
		best, leftOf = large, func(i int) bool { return !sinkSide[2+i] }
	}
	apply := func() {
		for i, v := range queue {
			want := partition.Right
			if leftOf(i) {
				want = partition.Left
			}
			if p.Side(v) != want {
				p.Assign(v, want)
			}
		}
	}
	if best.ok {
		apply()
		return before - best.after, true, true
	}
	rawBalanced := small.balanced || large.balanced
	if best.after >= before {
		return 0, false, rawBalanced
	}
	// The min cut improves the cut but overshoots the balance bound.
	// Adopt it anyway and walk back inside the envelope with the
	// cheapest movers; the repair may touch vertices outside the
	// corridor, so restore from a full snapshot if the repaired cut no
	// longer pays for itself.
	shadow := scratch.Int8s(n)
	for v := 0; v < n; v++ {
		shadow[v] = int8(p.Side(v))
	}
	apply()
	if err := rebalance.Enforce(h, p, bal); err == nil {
		after := partition.WeightedCutSize(h, p)
		left, right := partition.SideWeights(h, p)
		lc, rc, _ := p.Counts()
		if after < before && left <= maxSide && right <= maxSide && lc > 0 && rc > 0 {
			return before - after, true, true
		}
	}
	for v := 0; v < n; v++ {
		p.Assign(v, partition.Side(shadow[v]))
	}
	return 0, false, rawBalanced
}
