// Package multilevel implements a multilevel bipartitioner on top of
// the library's pieces: heavy-connectivity coarsening, an initial cut
// of the coarsest hypergraph by Algorithm I, and Fiduccia–Mattheyses
// refinement at every uncoarsening level.
//
// This is the scheme that superseded flat partitioners in the decade
// after the paper; it is included both as the natural "future work"
// extension and as the strongest in-repo comparison point for
// Algorithm I (see BenchmarkMultilevelVsFlat).
package multilevel

import (
	"context"
	"fmt"
	"math/rand"

	"fasthgp/internal/checkpoint"
	"fasthgp/internal/coarsen"
	"fasthgp/internal/core"
	"fasthgp/internal/engine"
	"fasthgp/internal/fm"
	"fasthgp/internal/hypergraph"
	"fasthgp/internal/kl"
	"fasthgp/internal/partition"
	"fasthgp/internal/rebalance"
)

// Options configures the multilevel partitioner.
type Options struct {
	// Starts is the number of independent V-cycles (coarsening
	// randomization included) tried by Bisect; the best final cut wins
	// (default 1).
	Starts int
	// MinCoarseVertices stops coarsening (default 64).
	MinCoarseVertices int
	// InitialStarts is the Algorithm I multi-start count at the
	// coarsest level (default 10).
	InitialStarts int
	// BalanceFraction is the FM refinement balance window
	// (default 0.1).
	BalanceFraction float64
	// Seed makes the run deterministic; each V-cycle draws from its
	// own stream, so results are independent of Parallelism.
	Seed int64
	// Parallelism is the number of workers running V-cycles
	// concurrently (and, when Starts is 1, the parallelism handed to
	// the coarsest-level Algorithm I multi-start); values < 1 mean
	// GOMAXPROCS. Wall time only, never the result.
	Parallelism int
	// KernelWorkers is the intra-start worker count forwarded to the
	// coarsest-level Algorithm I kernels (intersection-graph build and
	// double BFS). Values < 1 mean 1. Wall time only, never the result.
	KernelWorkers int
	// Constraint is the unified balance contract, threaded through the
	// whole V-cycle: coarsening never contracts two vertices pinned to
	// opposite sides (so every level has a well-defined coarse fixed
	// set), the coarsest-level initial cut and each level's FM
	// refinement run under the projected constraint, and the final
	// partition is hard-enforced against it. The zero value preserves
	// historical behavior exactly.
	Constraint partition.Constraint
	// Checkpoint, when non-nil, journals every completed V-cycle into
	// its sink and resumes from its recovered state — see
	// internal/checkpoint. A resumed run returns the same Result an
	// uninterrupted run would.
	Checkpoint *engine.CheckpointIO
}

func (o *Options) defaults() {
	if o.MinCoarseVertices <= 0 {
		o.MinCoarseVertices = 64
	}
	o.InitialStarts = engine.NormalizeTo(o.InitialStarts, 10)
	if o.BalanceFraction <= 0 {
		o.BalanceFraction = 0.1
	}
}

// Result is the multilevel outcome.
type Result struct {
	// Partition is the final bipartition of the input hypergraph.
	Partition *partition.Bipartition
	// CutSize is its cutsize.
	CutSize int
	// Levels is the number of coarsening levels used (in the winning
	// V-cycle, under multi-start).
	Levels int
	// CoarsestVertices is the size of the coarsest hypergraph.
	CoarsestVertices int
	// Engine reports the multi-start execution (V-cycles run, winning
	// cycle, per-cycle cuts, wall/CPU time).
	Engine engine.Stats
}

// Bisect partitions h with the multilevel scheme.
func Bisect(h *hypergraph.Hypergraph, opts Options) (*Result, error) {
	return BisectCtx(context.Background(), h, opts)
}

// BisectCtx is Bisect with cancellation: a V-cycle that observes ctx
// expiry still projects its partition down to the input hypergraph but
// skips further refinement, and the engine returns the best completed
// cycle (start 0 always runs).
func BisectCtx(ctx context.Context, h *hypergraph.Hypergraph, opts Options) (*Result, error) {
	if h.NumVertices() < 2 {
		return nil, fmt.Errorf("multilevel: hypergraph has %d vertices; need at least 2", h.NumVertices())
	}
	opts.defaults()
	// A lone V-cycle forwards the worker budget to the coarsest-level
	// Algorithm I multi-start instead; with several cycles in flight
	// the cycles themselves are the parallel unit.
	innerParallelism := 1
	if engine.Normalize(opts.Starts) == 1 {
		innerParallelism = opts.Parallelism
	}
	best, es, err := engine.Run(ctx, engine.Spec[*Result]{
		Name:        "multilevel",
		Starts:      opts.Starts,
		Parallelism: opts.Parallelism,
		Seed:        opts.Seed,
		Run: func(ctx context.Context, _ int, rng *rand.Rand, _ *engine.Scratch) (*Result, error) {
			return vcycle(ctx, h, opts, rng, innerParallelism), nil
		},
		Better: func(a, b *Result) bool {
			if a.CutSize != b.CutSize {
				return a.CutSize < b.CutSize
			}
			return partition.Imbalance(h, a.Partition) < partition.Imbalance(h, b.Partition)
		},
		Cut: func(r *Result) int { return r.CutSize },
		Checkpoint: engine.BindCheckpoint(opts.Checkpoint,
			func(r *Result) []byte {
				return checkpoint.EncodeBest(r.Partition.Sides(), r.CutSize,
					int64(r.Levels), int64(r.CoarsestVertices))
			},
			func(b []byte) (*Result, error) {
				p, cut, aux, err := checkpoint.DecodeBestFor(h, b, 2)
				if err != nil {
					return nil, fmt.Errorf("multilevel: %w", err)
				}
				return &Result{Partition: p, CutSize: cut,
					Levels: int(aux[0]), CoarsestVertices: int(aux[1])}, nil
			}),
	})
	if err != nil {
		return nil, err
	}
	best.Engine = es
	return best, nil
}

// vcycle runs one full coarsen → initial cut → uncoarsen+refine cycle.
func vcycle(ctx context.Context, h *hypergraph.Hypergraph, opts Options, rng *rand.Rand, innerParallelism int) *Result {
	c := opts.Constraint
	var fineFixed []int8
	if c.HasFixed() {
		fineFixed = c.FixedSide
	}
	levels := coarsen.HierarchyFixed(h, rng, opts.MinCoarseVertices, 0, fineFixed)
	coarsest := h
	coarseC := c
	if len(levels) > 0 {
		coarsest = levels[len(levels)-1].Coarse
		coarseC = levelConstraint(c, levels[len(levels)-1].Fixed)
	}

	// Initial partition of the coarsest level: Algorithm I with the
	// balance-oriented settings, falling back to a random bisection on
	// degenerate inputs.
	var p *partition.Bipartition
	res, err := core.BipartitionCtx(ctx, coarsest, core.Options{
		Starts:        opts.InitialStarts,
		Seed:          rng.Int63(),
		Threshold:     10,
		BalancedBFS:   true,
		Completion:    core.CompletionWeighted,
		Parallelism:   innerParallelism,
		KernelWorkers: opts.KernelWorkers,
		Constraint:    coarseC,
	})
	if err == nil {
		p = res.Partition
	} else if coarseC.IsZero() {
		p = kl.RandomBisection(coarsest.NumVertices(), rng)
	} else {
		p = kl.RandomBisectionConstrained(coarsest, rng, coarseC)
	}
	refine(ctx, coarsest, p, opts, coarseC)

	// Uncoarsen with refinement at every level. Projection always runs
	// (the result must live on the input hypergraph); refinement stops
	// once the context expires.
	for i := len(levels) - 1; i >= 0; i-- {
		var fine *hypergraph.Hypergraph
		levelC := c
		if i == 0 {
			fine = h
		} else {
			fine = levels[i-1].Coarse
			levelC = levelConstraint(c, levels[i-1].Fixed)
		}
		p = coarsen.Project(fine.NumVertices(), levels[i].Map, p)
		if ctx.Err() == nil {
			refine(ctx, fine, p, opts, levelC)
		}
	}
	if !c.IsZero() {
		// Refinement maintains the contract level by level, but a cycle
		// cut short by ctx expiry may surface an unrefined projection;
		// the shared repair makes the invariant unconditional.
		if err := rebalance.Enforce(h, p, c); err == nil {
			_ = err
		}
	}

	return &Result{
		Partition:        p,
		CutSize:          partition.CutSize(h, p),
		Levels:           len(levels),
		CoarsestVertices: coarsest.NumVertices(),
	}
}

// levelConstraint rebinds the contract to one coarsening level: same ε,
// that level's coarse fixed set.
func levelConstraint(c partition.Constraint, fixed []int8) partition.Constraint {
	if c.IsZero() {
		return c
	}
	return partition.Constraint{Epsilon: c.Epsilon, FixedSide: fixed}
}

// refine runs FM on p in place; refinement is best-effort and skipped
// for degenerate partitions FM would reject.
func refine(ctx context.Context, h *hypergraph.Hypergraph, p *partition.Bipartition, opts Options, c partition.Constraint) {
	if err := p.Validate(h); err != nil {
		return
	}
	_, err := fm.ImproveCtx(ctx, h, p, fm.Options{BalanceFraction: opts.BalanceFraction, Constraint: c})
	_ = err // FM validates the same preconditions; nothing to do on failure
}
