// Package multilevel implements a multilevel bipartitioner on top of
// the library's pieces: heavy-connectivity coarsening, an initial cut
// of the coarsest hypergraph by Algorithm I, and Fiduccia–Mattheyses
// refinement at every uncoarsening level.
//
// This is the scheme that superseded flat partitioners in the decade
// after the paper; it is included both as the natural "future work"
// extension and as the strongest in-repo comparison point for
// Algorithm I (see BenchmarkMultilevelVsFlat).
package multilevel

import (
	"fmt"
	"math/rand"

	"fasthgp/internal/coarsen"
	"fasthgp/internal/core"
	"fasthgp/internal/fm"
	"fasthgp/internal/hypergraph"
	"fasthgp/internal/kl"
	"fasthgp/internal/partition"
)

// Options configures the multilevel partitioner.
type Options struct {
	// MinCoarseVertices stops coarsening (default 64).
	MinCoarseVertices int
	// InitialStarts is the Algorithm I multi-start count at the
	// coarsest level (default 10).
	InitialStarts int
	// BalanceFraction is the FM refinement balance window
	// (default 0.1).
	BalanceFraction float64
	// Seed makes the run deterministic.
	Seed int64
}

func (o *Options) defaults() {
	if o.MinCoarseVertices <= 0 {
		o.MinCoarseVertices = 64
	}
	if o.InitialStarts <= 0 {
		o.InitialStarts = 10
	}
	if o.BalanceFraction <= 0 {
		o.BalanceFraction = 0.1
	}
}

// Result is the multilevel outcome.
type Result struct {
	// Partition is the final bipartition of the input hypergraph.
	Partition *partition.Bipartition
	// CutSize is its cutsize.
	CutSize int
	// Levels is the number of coarsening levels used.
	Levels int
	// CoarsestVertices is the size of the coarsest hypergraph.
	CoarsestVertices int
}

// Bisect partitions h with the multilevel scheme.
func Bisect(h *hypergraph.Hypergraph, opts Options) (*Result, error) {
	if h.NumVertices() < 2 {
		return nil, fmt.Errorf("multilevel: hypergraph has %d vertices; need at least 2", h.NumVertices())
	}
	opts.defaults()
	rng := rand.New(rand.NewSource(opts.Seed))

	levels := coarsen.Hierarchy(h, rng, opts.MinCoarseVertices, 0)
	coarsest := h
	if len(levels) > 0 {
		coarsest = levels[len(levels)-1].Coarse
	}

	// Initial partition of the coarsest level: Algorithm I with the
	// balance-oriented settings, falling back to a random bisection on
	// degenerate inputs.
	var p *partition.Bipartition
	res, err := core.Bipartition(coarsest, core.Options{
		Starts:      opts.InitialStarts,
		Seed:        opts.Seed,
		Threshold:   10,
		BalancedBFS: true,
		Completion:  core.CompletionWeighted,
	})
	if err == nil {
		p = res.Partition
	} else {
		p = kl.RandomBisection(coarsest.NumVertices(), rng)
	}
	refine(coarsest, p, opts)

	// Uncoarsen with refinement at every level.
	for i := len(levels) - 1; i >= 0; i-- {
		var fine *hypergraph.Hypergraph
		if i == 0 {
			fine = h
		} else {
			fine = levels[i-1].Coarse
		}
		p = coarsen.Project(fine.NumVertices(), levels[i].Map, p)
		refine(fine, p, opts)
	}

	return &Result{
		Partition:        p,
		CutSize:          partition.CutSize(h, p),
		Levels:           len(levels),
		CoarsestVertices: coarsest.NumVertices(),
	}, nil
}

// refine runs FM on p in place; refinement is best-effort and skipped
// for degenerate partitions FM would reject.
func refine(h *hypergraph.Hypergraph, p *partition.Bipartition, opts Options) {
	if err := p.Validate(h); err != nil {
		return
	}
	_, err := fm.Improve(h, p, fm.Options{BalanceFraction: opts.BalanceFraction})
	_ = err // FM validates the same preconditions; nothing to do on failure
}
