// Package multilevel implements a production multilevel bipartitioner
// — a real V-cycle on top of the library's pieces: a heavy-edge
// coarsening hierarchy (internal/matching + internal/coarsen), an
// initial cut of the coarsest hypergraph by multi-start Algorithm I,
// and Fiduccia–Mattheyses plus corridor max-flow refinement at every
// uncoarsening level (see flow.go).
//
// This is the scheme that superseded flat partitioners in the decade
// after the paper; it is both the natural "future work" extension and
// the path from the paper's n≈2500 Table 2 instances to millions of
// pins. The flow refinement follows Heuer/Sanders/Schlag's KaHyPar
// blueprint; DisableFlow recovers the historical FM-only pass for
// ablation (see TestVCycleBeatsFlat).
package multilevel

import (
	"context"
	"fmt"
	"math/rand"

	"fasthgp/internal/checkpoint"
	"fasthgp/internal/coarsen"
	"fasthgp/internal/core"
	"fasthgp/internal/engine"
	"fasthgp/internal/fm"
	"fasthgp/internal/hypergraph"
	"fasthgp/internal/kl"
	"fasthgp/internal/partition"
	"fasthgp/internal/rebalance"
)

// Options configures the multilevel partitioner.
type Options struct {
	// Starts is the number of independent V-cycles (coarsening
	// randomization included) tried by Bisect; the best final cut wins
	// (default 1).
	Starts int
	// MinCoarseVertices stops coarsening (default 64).
	MinCoarseVertices int
	// InitialStarts is the Algorithm I multi-start count at the
	// coarsest level (default 10).
	InitialStarts int
	// BalanceFraction is the FM refinement balance window
	// (default 0.1).
	BalanceFraction float64
	// Seed makes the run deterministic; each V-cycle draws from its
	// own stream, so results are independent of Parallelism.
	Seed int64
	// Parallelism is the number of workers running V-cycles
	// concurrently (and, when Starts is 1, the parallelism handed to
	// the coarsest-level Algorithm I multi-start); values < 1 mean
	// GOMAXPROCS. Wall time only, never the result.
	Parallelism int
	// KernelWorkers is the intra-start worker count forwarded to the
	// coarsest-level Algorithm I kernels (intersection-graph build and
	// double BFS). Values < 1 mean 1. Wall time only, never the result.
	KernelWorkers int
	// Constraint is the unified balance contract, threaded through the
	// whole V-cycle: coarsening never contracts two vertices pinned to
	// opposite sides (so every level has a well-defined coarse fixed
	// set) nor merges clusters past the ε side bound, the coarsest-
	// level initial cut and each level's refinement run under the
	// projected constraint with the ε budget rescaled for cluster
	// granularity, and the final partition is hard-enforced against it.
	Constraint partition.Constraint
	// DisableFlow turns off the corridor max-flow refinement, leaving
	// the historical FM-only uncoarsening pass. The zero value (flow
	// on) is the production default; the flag exists for ablation and
	// for the differential suite proving flow's cut advantage.
	DisableFlow bool
	// CorridorFraction is the per-side corridor weight budget of one
	// flow round, as a fraction of ⌈w(V)/2⌉ (default 0.1).
	CorridorFraction float64
	// FlowRounds is the number of corridor solves at the finest level
	// (default 4). Rounds stop early once a solve cannot improve.
	FlowRounds int
	// MaxClusterWeight caps contracted cluster weights during
	// coarsening (0 = derived: total/MinCoarseVertices, tightened to
	// half the ε side bound when a balance constraint is set).
	MaxClusterWeight int64
	// Checkpoint, when non-nil, journals every completed V-cycle into
	// its sink and resumes from its recovered state — see
	// internal/checkpoint. A resumed run returns the same Result an
	// uninterrupted run would.
	Checkpoint *engine.CheckpointIO
}

func (o *Options) defaults() {
	if o.MinCoarseVertices <= 0 {
		o.MinCoarseVertices = 64
	}
	o.InitialStarts = engine.NormalizeTo(o.InitialStarts, 10)
	if o.BalanceFraction <= 0 {
		o.BalanceFraction = 0.1
	}
	if o.CorridorFraction <= 0 {
		o.CorridorFraction = 0.1
	}
	if o.FlowRounds <= 0 {
		o.FlowRounds = 4
	}
}

// clusterWeightCap derives the coarsening weight cap: clusters no
// heavier than an even split of the coarsest level, and never more
// than half an ε-bounded side, so contraction cannot silently make
// the balance contract unsatisfiable.
func (o *Options) clusterWeightCap(total int64) int64 {
	if o.MaxClusterWeight > 0 {
		return o.MaxClusterWeight
	}
	w := (total + int64(o.MinCoarseVertices) - 1) / int64(o.MinCoarseVertices)
	if o.Constraint.HasBalance() {
		if b := o.Constraint.MaxSideWeight(total, 2) / 2; b > 0 && b < w {
			w = b
		}
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Result is the multilevel outcome.
type Result struct {
	// Partition is the final bipartition of the input hypergraph.
	Partition *partition.Bipartition
	// CutSize is its cutsize.
	CutSize int
	// Levels is the number of coarsening levels used (in the winning
	// V-cycle, under multi-start).
	Levels int
	// CoarsestVertices is the size of the coarsest hypergraph.
	CoarsestVertices int
	// VCycle reports the winning cycle's deterministic work counters.
	VCycle VCycleStats
	// Engine reports the multi-start execution (V-cycles run, winning
	// cycle, per-cycle cuts, wall/CPU time).
	Engine engine.Stats
}

// Bisect partitions h with the multilevel scheme.
func Bisect(h *hypergraph.Hypergraph, opts Options) (*Result, error) {
	return BisectCtx(context.Background(), h, opts)
}

// BisectCtx is Bisect with cancellation: a V-cycle that observes ctx
// expiry still projects its partition down to the input hypergraph but
// skips further refinement, and the engine returns the best completed
// cycle (start 0 always runs).
func BisectCtx(ctx context.Context, h *hypergraph.Hypergraph, opts Options) (*Result, error) {
	if h.NumVertices() < 2 {
		return nil, fmt.Errorf("multilevel: hypergraph has %d vertices; need at least 2", h.NumVertices())
	}
	opts.defaults()
	// A lone V-cycle forwards the worker budget to the coarsest-level
	// Algorithm I multi-start instead; with several cycles in flight
	// the cycles themselves are the parallel unit.
	innerParallelism := 1
	if engine.Normalize(opts.Starts) == 1 {
		innerParallelism = opts.Parallelism
	}
	best, es, err := engine.Run(ctx, engine.Spec[*Result]{
		Name:        "multilevel",
		Starts:      opts.Starts,
		Parallelism: opts.Parallelism,
		Seed:        opts.Seed,
		Run: func(ctx context.Context, _ int, rng *rand.Rand, scratch *engine.Scratch) (*Result, error) {
			return vcycle(ctx, h, opts, rng, innerParallelism, scratch), nil
		},
		Better: func(a, b *Result) bool {
			if a.CutSize != b.CutSize {
				return a.CutSize < b.CutSize
			}
			return partition.Imbalance(h, a.Partition) < partition.Imbalance(h, b.Partition)
		},
		Cut: func(r *Result) int { return r.CutSize },
		Checkpoint: engine.BindCheckpoint(opts.Checkpoint,
			func(r *Result) []byte {
				return checkpoint.EncodeBest(r.Partition.Sides(), r.CutSize,
					int64(r.Levels), int64(r.CoarsestVertices),
					r.VCycle.CorridorVertices, r.VCycle.FlowNodes,
					r.VCycle.FlowAugmentations, r.VCycle.FlowRounds,
					r.VCycle.FlowAccepted, r.VCycle.FlowGain,
					r.VCycle.RefineGain)
			},
			func(b []byte) (*Result, error) {
				p, cut, aux, err := checkpoint.DecodeBestFor(h, b, 9)
				if err != nil {
					return nil, fmt.Errorf("multilevel: %w", err)
				}
				r := &Result{Partition: p, CutSize: cut,
					Levels: int(aux[0]), CoarsestVertices: int(aux[1])}
				r.VCycle = VCycleStats{
					Levels: r.Levels, CoarsestVertices: r.CoarsestVertices,
					CorridorVertices: aux[2], FlowNodes: aux[3],
					FlowAugmentations: aux[4], FlowRounds: aux[5],
					FlowAccepted: aux[6], FlowGain: aux[7], RefineGain: aux[8],
				}
				return r, nil
			}),
	})
	if err != nil {
		return nil, err
	}
	best.Engine = es
	return best, nil
}

// vcycle runs one full coarsen → initial cut → uncoarsen+refine cycle.
func vcycle(ctx context.Context, h *hypergraph.Hypergraph, opts Options, rng *rand.Rand,
	innerParallelism int, scratch *engine.Scratch) *Result {
	c := opts.Constraint
	var fineFixed []int8
	if c.HasFixed() {
		fineFixed = c.FixedSide
	}
	stats := &VCycleStats{}
	levels := coarsen.BuildHierarchy(h, rng, coarsen.Options{
		MinVertices:      opts.MinCoarseVertices,
		Fixed:            fineFixed,
		MaxClusterWeight: opts.clusterWeightCap(h.TotalVertexWeight()),
	})
	coarsest := h
	coarseC := c
	if len(levels) > 0 {
		top := levels[len(levels)-1]
		coarsest = top.Coarse
		coarseC = levelConstraint(c, top.Fixed, top.Coarse)
	}

	// Initial partition of the coarsest level: Algorithm I with the
	// balance-oriented settings, falling back to a random bisection on
	// degenerate inputs.
	var p *partition.Bipartition
	res, err := core.BipartitionCtx(ctx, coarsest, core.Options{
		Starts:        opts.InitialStarts,
		Seed:          rng.Int63(),
		Threshold:     10,
		BalancedBFS:   true,
		Completion:    core.CompletionWeighted,
		Parallelism:   innerParallelism,
		KernelWorkers: opts.KernelWorkers,
		Constraint:    coarseC,
	})
	if err == nil {
		p = res.Partition
	} else if coarseC.IsZero() {
		p = kl.RandomBisection(coarsest.NumVertices(), rng)
	} else {
		p = kl.RandomBisectionConstrained(coarsest, rng, coarseC)
	}
	refine(ctx, coarsest, p, opts, coarseC, scratch, stats, len(levels) == 0)

	// Uncoarsen with refinement at every level. Projection always runs
	// (the result must live on the input hypergraph); refinement stops
	// once the context expires.
	for i := len(levels) - 1; i >= 0; i-- {
		var fine *hypergraph.Hypergraph
		levelC := c
		if i == 0 {
			fine = h
		} else {
			fine = levels[i-1].Coarse
			levelC = levelConstraint(c, levels[i-1].Fixed, levels[i-1].Coarse)
		}
		p = coarsen.Project(fine.NumVertices(), levels[i].Map, p)
		if ctx.Err() == nil {
			refine(ctx, fine, p, opts, levelC, scratch, stats, i == 0)
		}
	}
	if !c.IsZero() {
		// Refinement maintains the contract level by level, but a cycle
		// cut short by ctx expiry may surface an unrefined projection;
		// the shared repair makes the invariant unconditional.
		if err := rebalance.Enforce(h, p, c); err == nil {
			_ = err
		}
	}

	stats.Levels = len(levels)
	stats.CoarsestVertices = coarsest.NumVertices()
	return &Result{
		Partition:        p,
		CutSize:          partition.CutSize(h, p),
		Levels:           len(levels),
		CoarsestVertices: coarsest.NumVertices(),
		VCycle:           *stats,
	}
}

// levelConstraint rebinds the contract to one coarsening level: that
// level's coarse fixed set, with the ε budget widened by half the
// heaviest cluster's share of a side — at coarse granularity an exact
// ε may be unreachable by any assignment, and refinement at the finer
// levels re-tightens toward the caller's ε (which the final rebalance
// enforces exactly).
func levelConstraint(c partition.Constraint, fixed []int8, coarse *hypergraph.Hypergraph) partition.Constraint {
	if c.IsZero() {
		return c
	}
	lc := partition.Constraint{Epsilon: c.Epsilon, FixedSide: fixed}
	if c.HasBalance() && coarse != nil {
		var maxW int64
		for v := 0; v < coarse.NumVertices(); v++ {
			if w := coarse.VertexWeight(v); w > maxW {
				maxW = w
			}
		}
		if total := coarse.TotalVertexWeight(); total > 0 && maxW > 0 {
			lc.Epsilon += float64(maxW) / (2 * float64((total+1)/2))
		}
	}
	return lc
}

// refine improves p in place at one level: an FM pass, then — at the
// finest level only — corridor max-flow rounds and, when flow moved
// anything, another FM pass to exploit the new neighbourhood. Flow is
// confined to the finest level deliberately: there it can only improve
// the final cut (every acceptance is a non-worsening state and FM keeps
// the best partition it sees), whereas a coarse-level acceptance
// changes the projection the finer FM starts from and can strand it in
// a worse basin — observed, not hypothetical. The confinement is what
// makes cut(V-cycle) ≤ cut(flat pass) a per-instance guarantee instead
// of a median-only claim. Refinement is best-effort and skipped for
// degenerate partitions FM would reject.
func refine(ctx context.Context, h *hypergraph.Hypergraph, p *partition.Bipartition,
	opts Options, c partition.Constraint, scratch *engine.Scratch, stats *VCycleStats, finest bool) {
	if err := p.Validate(h); err != nil {
		return
	}
	before := partition.CutSize(h, p)
	fmOpts := fm.Options{BalanceFraction: opts.BalanceFraction, Constraint: c}
	_, err := fm.ImproveCtx(ctx, h, p, fmOpts)
	_ = err // FM validates the same preconditions; nothing to do on failure
	if finest && !opts.DisableFlow && ctx.Err() == nil {
		accepted := stats.FlowAccepted
		flowRefine(ctx, h, p, c, opts.BalanceFraction, opts.CorridorFraction,
			opts.FlowRounds, scratch, stats)
		if stats.FlowAccepted > accepted && ctx.Err() == nil {
			_, err := fm.ImproveCtx(ctx, h, p, fmOpts)
			_ = err
		}
	}
	if after := partition.CutSize(h, p); after < before {
		stats.RefineGain += int64(before - after)
	}
}
