package perf

// TestPerfBaseline is the continuous-performance gate. It
//
//   - recomputes every family's deterministic work counters — serial
//     construction and the 8-worker parallel family (shard split,
//     chunk merges, work-model speedups) — and compares them exactly
//     against the committed BENCH_perf.json (machine-independent:
//     only a behavior change moves them);
//   - asserts the ≥2× intra-start work-model speedup floors on the
//     dense and huge families, in both parallel kernels;
//   - measures allocs/op of the stamp builder and fails hard on
//     regression past the blessed value — the CI benchmark job runs
//     exactly this;
//   - asserts the acceptance ratios on the dense suite (≥2× speedup,
//     ≥10× allocs/op reduction vs the reference builder), skipped
//     under -short and under the race detector;
//   - always rewrites the gitignored BENCH_perf.timing.json sidecar so
//     successive commits leave a local perf trail without wall-clock
//     churn in the diff.
//
// Re-bless after an intentional change with
//
//	go test ./internal/perf/ -run TestPerfBaseline -update
//
// which also regenerates testdata/baseline.bench.txt, the benchstat
// baseline the CI job diffs against.

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"fasthgp/internal/core"
	"fasthgp/internal/hypergraph"
	"fasthgp/internal/intersect"
)

var update = flag.Bool("update", false, "re-bless BENCH_perf.json and testdata/baseline.bench.txt")

// Benchmark sinks, so the builds cannot be optimized away.
var (
	sinkResult *intersect.Result
	sinkCut    int
)

// BenchmarkIntersectBuild measures the production stamp builder (new)
// against the retained clique-pair builder (old) on every family.
// These are the dual-construction benchmarks the CI allocs gate and
// benchstat baseline refer to.
func BenchmarkIntersectBuild(b *testing.B) {
	for _, f := range Families() {
		opts := intersect.Options{Threshold: f.Threshold}
		h := f.H
		b.Run(f.Name+"/new", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sinkResult = intersect.Build(h, opts)
			}
		})
		b.Run(f.Name+"/old", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sinkResult = intersect.BuildReference(h, opts)
			}
		})
	}
}

// BenchmarkPipeline runs full Algorithm I multi-start on the dense
// family — construction, double-BFS cut, completion, packing — to
// track steady-state allocation of the whole scratch-threaded path.
func BenchmarkPipeline(b *testing.B) {
	f := denseFamily()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := core.Bipartition(f.H, core.Options{Starts: 4, Seed: 1, Parallelism: 1})
		if err != nil {
			b.Fatal(err)
		}
		sinkCut = res.CutSize
	}
}

func denseFamily() Family {
	for _, f := range Families() {
		if f.Dense {
			return f
		}
	}
	panic("perf: no dense family in the suite")
}

// familyEntry is one BENCH_perf.json row: the deterministic counters
// plus the allocs/op blessed at -update time (the regression bound).
type familyEntry struct {
	Name      string `json:"name"`
	Threshold int    `json:"threshold"`
	Counters
	// Parallel is the intra-start parallel counter family at 8 workers
	// — deterministic work-model numbers, so any drift is a real
	// behavior change in the sharded build or the chunked BFS.
	Parallel       ParallelCounters `json:"parallel"`
	AllocsPerOpNew float64          `json:"allocs_per_op_new"`
	AllocsPerOpOld float64          `json:"allocs_per_op_old"`
}

// vcycleEntry is one row of BENCH_perf.json's vcycle section: the
// deterministic V-cycle scale counters (see TestVCycleBaseline).
type vcycleEntry struct {
	Name string `json:"name"`
	VCycleCounters
}

// perfFile mirrors BENCH_perf.json.
type perfFile struct {
	Suite    string        `json:"suite"`
	Families []familyEntry `json:"families"`
	// Dense records the acceptance ratios measured on the dense suite
	// at bless time (live runs must still meet the 2×/10× floors).
	Dense struct {
		Name             string  `json:"name"`
		SpeedupX         float64 `json:"speedup_x"`
		AllocsReductionX float64 `json:"allocs_reduction_x"`
	} `json:"dense"`
	// VCycle is the multilevel scale suite, blessed and gated by
	// TestVCycleBaseline; TestPerfBaseline preserves it on -update.
	VCycle []vcycleEntry `json:"vcycle,omitempty"`
}

// timingRow is one BENCH_perf.timing.json row — machine-dependent,
// gitignored.
type timingRow struct {
	Name     string  `json:"name"`
	NsNew    float64 `json:"ns_per_op_new"`
	NsOld    float64 `json:"ns_per_op_old"`
	SpeedupX float64 `json:"speedup_x"`
	// NsPar8 and ParSpeedupX compare the sharded build at 8 workers
	// against the serial build wall clock — only meaningful on a
	// multi-core machine, so they live here and not in the baseline.
	NsPar8      float64 `json:"ns_per_op_parallel8"`
	ParSpeedupX float64 `json:"parallel_speedup_x"`
}

// measurement is a cheap local benchmark: minimum wall time over a few
// repetitions plus testing.AllocsPerRun, after one warm-up call so
// sync.Pool reuse is in steady state.
type measurement struct {
	ns     float64
	allocs float64
}

func measure(fn func()) measurement {
	fn() // warm pools
	allocs := testing.AllocsPerRun(5, fn)
	best := time.Duration(-1)
	var total time.Duration
	for i := 0; i < 3 || (total < 150*time.Millisecond && i < 200); i++ {
		begin := time.Now()
		fn()
		d := time.Since(begin)
		total += d
		if best < 0 || d < best {
			best = d
		}
	}
	return measurement{ns: float64(best.Nanoseconds()), allocs: allocs}
}

const (
	benchPath    = "../../BENCH_perf.json"
	timingPath   = "../../BENCH_perf.timing.json"
	baselinePath = "testdata/baseline.bench.txt"
)

func TestPerfBaseline(t *testing.T) {
	families := Families()
	entries := make([]familyEntry, 0, len(families))
	timings := make([]timingRow, 0, len(families))
	var got perfFile
	got.Suite = "intersect-build"

	for _, f := range families {
		opts := intersect.Options{Threshold: f.Threshold}
		optsPar := intersect.Options{Threshold: f.Threshold, Parallelism: 8}
		h := f.H
		mNew := measure(func() { sinkResult = intersect.Build(h, opts) })
		mOld := measure(func() { sinkResult = intersect.BuildReference(h, opts) })
		mPar := measure(func() { sinkResult = intersect.Build(h, optsPar) })
		e := familyEntry{
			Name:           f.Name,
			Threshold:      f.Threshold,
			Counters:       CountersFor(f),
			Parallel:       ParallelCountersFor(f),
			AllocsPerOpNew: mNew.allocs,
			AllocsPerOpOld: mOld.allocs,
		}
		entries = append(entries, e)
		timings = append(timings, timingRow{
			Name:        f.Name,
			NsNew:       mNew.ns,
			NsOld:       mOld.ns,
			SpeedupX:    round1(mOld.ns / mNew.ns),
			NsPar8:      mPar.ns,
			ParSpeedupX: round1(mNew.ns / mPar.ns),
		})
		// Intra-start acceptance floors: the dense and huge families
		// must admit ≥2× work-model speedup at 8 workers in both
		// kernels. The bound is a pure function of the pinned instance,
		// so it holds (or fails) identically on every machine.
		if f.Dense || f.Huge {
			if e.Parallel.BuildSpeedupX < 2 {
				t.Errorf("%s: sharded-build work-model speedup %.1fx < 2x acceptance floor",
					f.Name, e.Parallel.BuildSpeedupX)
			}
			if e.Parallel.BFSSpeedupX < 2 {
				t.Errorf("%s: chunked-BFS work-model speedup %.1fx < 2x acceptance floor",
					f.Name, e.Parallel.BFSSpeedupX)
			}
		}
		if f.Dense {
			got.Dense.Name = f.Name
			got.Dense.SpeedupX = round1(mOld.ns / mNew.ns)
			got.Dense.AllocsReductionX = round1(mOld.allocs / math.Max(mNew.allocs, 1))
		}
		t.Logf("%-16s new: %8.0f ns/op %6.1f allocs/op | old: %8.0f ns/op %8.1f allocs/op | %5.1fx / %5.1fx",
			f.Name, mNew.ns, mNew.allocs, mOld.ns, mOld.allocs,
			mOld.ns/mNew.ns, mOld.allocs/math.Max(mNew.allocs, 1))
	}
	got.Families = entries

	// The timing sidecar is emitted on every run, pass or fail.
	writeJSON(t, timingPath, struct {
		Suite   string      `json:"suite"`
		Entries []timingRow `json:"families"`
	}{"intersect-build", timings})

	// Live acceptance floors on the dense suite. Timing and allocation
	// behavior under the race detector (or a -short smoke run) is not
	// representative, so only full builds enforce them.
	if !raceEnabled && !testing.Short() {
		if got.Dense.SpeedupX < 2 {
			t.Errorf("dense suite speedup %.1fx < 2x acceptance floor", got.Dense.SpeedupX)
		}
		if got.Dense.AllocsReductionX < 10 {
			t.Errorf("dense suite allocs/op reduction %.1fx < 10x acceptance floor", got.Dense.AllocsReductionX)
		}
		// Live sanity bound for the sharded build: with real cores under
		// the workers the 8-way build must at minimum not lose to the
		// serial one (the ≥2× claim itself is asserted on the
		// machine-independent work model above; wall clock on shared
		// runners is too noisy for a tight floor).
		if runtime.GOMAXPROCS(0) >= 4 {
			for _, row := range timings {
				if (row.Name == got.Dense.Name || familyIsHuge(families, row.Name)) && row.ParSpeedupX < 1 {
					t.Errorf("%s: 8-worker build wall clock %.1fx of serial — parallel path is a live regression",
						row.Name, row.ParSpeedupX)
				}
			}
		}
	}

	if *update {
		// Read-modify-write: the vcycle section belongs to
		// TestVCycleBaseline and must survive an intersect re-bless.
		if prev, err := os.ReadFile(benchPath); err == nil {
			var old perfFile
			if json.Unmarshal(prev, &old) == nil {
				got.VCycle = old.VCycle
			}
		}
		writeJSON(t, benchPath, &got)
		writeBenchstatBaseline(t, families)
		t.Logf("re-blessed %s and %s", benchPath, baselinePath)
		return
	}

	data, err := os.ReadFile(benchPath)
	if err != nil {
		t.Fatalf("missing %s — run `go test ./internal/perf/ -run TestPerfBaseline -update`: %v", benchPath, err)
	}
	var want perfFile
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatalf("%s: %v", benchPath, err)
	}
	wantByName := make(map[string]familyEntry, len(want.Families))
	for _, e := range want.Families {
		wantByName[e.Name] = e
	}
	for _, e := range entries {
		w, ok := wantByName[e.Name]
		if !ok {
			t.Errorf("family %q missing from BENCH_perf.json — re-bless with -update", e.Name)
			continue
		}
		if e.Counters != w.Counters || e.Threshold != w.Threshold {
			t.Errorf("%s: counters changed\n got %+v thr=%d\nwant %+v thr=%d — construction workload moved; re-bless with -update if intentional",
				e.Name, e.Counters, e.Threshold, w.Counters, w.Threshold)
		}
		// Parallel-efficiency regression gate: shard split, chunk
		// merge and work-model speedups are deterministic, so any
		// drift means the parallel kernels' workload or balance moved.
		if e.Parallel != w.Parallel {
			t.Errorf("%s: parallel counters changed\n got %+v\nwant %+v — intra-start efficiency moved; re-bless with -update if intentional",
				e.Name, e.Parallel, w.Parallel)
		}
		// Hard allocation gate: the live stamp builder may not regress
		// past the blessed allocs/op (small absolute slack absorbs pool
		// and GC noise).
		if slack := math.Max(2, w.AllocsPerOpNew/2); e.AllocsPerOpNew > w.AllocsPerOpNew+slack {
			t.Errorf("%s: allocs/op regression: %.1f > blessed %.1f (+%.1f slack)",
				e.Name, e.AllocsPerOpNew, w.AllocsPerOpNew, slack)
		}
	}
	for name := range wantByName {
		found := false
		for _, e := range entries {
			if e.Name == name {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("BENCH_perf.json family %q is gone from the suite — re-bless with -update", name)
		}
	}
}

// writeBenchstatBaseline records the dual-construction benchmarks in Go
// benchmark format via testing.Benchmark, for the CI benchstat diff.
func writeBenchstatBaseline(t *testing.T, families []Family) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(baselinePath), 0o755); err != nil {
		t.Fatal(err)
	}
	out := fmt.Sprintf("goos: %s\ngoarch: %s\npkg: fasthgp/internal/perf\n", runtime.GOOS, runtime.GOARCH)
	bench := func(name string, h *hypergraph.Hypergraph, opts intersect.Options, build func(*hypergraph.Hypergraph, intersect.Options) *intersect.Result) {
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sinkResult = build(h, opts)
			}
		})
		out += fmt.Sprintf("BenchmarkIntersectBuild/%s-%d\t%s\t%s\n",
			name, runtime.GOMAXPROCS(0), r.String(), r.MemString())
	}
	for _, f := range families {
		opts := intersect.Options{Threshold: f.Threshold}
		bench(f.Name+"/new", f.H, opts, intersect.Build)
		bench(f.Name+"/old", f.H, opts, intersect.BuildReference)
	}
	if err := os.WriteFile(baselinePath, []byte(out), 0o644); err != nil {
		t.Fatal(err)
	}
}

func writeJSON(t *testing.T, path string, v any) {
	t.Helper()
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}

func familyIsHuge(families []Family, name string) bool {
	for _, f := range families {
		if f.Name == name {
			return f.Huge
		}
	}
	return false
}
