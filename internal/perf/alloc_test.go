package perf

// Steady-state allocation contract of the double-BFS kernels: with
// caller-provided buffers (the engine's scratch arena in production),
// the serial and the balanced variants must not allocate at all. The
// balanced variant is the one history lost track of — its scratch
// threading rides the same partialFromCut path as the serial kernel,
// and this test pins it there. The parallel variant is exempt from
// zero: spawning worker goroutines allocates by construction; it is
// bounded instead, so a pooling regression still fails.

import (
	"testing"

	"fasthgp/internal/intersect"
)

func TestDoubleBFSSteadyStateAllocs(t *testing.T) {
	f := denseFamily()
	res := intersect.Build(f.H, intersect.Options{Threshold: f.Threshold})
	g := res.G
	n := g.NumVertices()
	u := farthestFrom(g, 0)
	v := farthestFrom(g, u)
	side := make([]int, n)
	f0 := make([]int, 0, n)
	f1 := make([]int, 0, n)
	next := make([]int, 0, n)

	if a := testing.AllocsPerRun(10, func() {
		g.DoubleBFSSidesInto(u, v, side, f0, f1, next)
	}); a != 0 {
		t.Errorf("serial double BFS: %.1f allocs/op with provided buffers, want 0", a)
	}
	if a := testing.AllocsPerRun(10, func() {
		g.DoubleBFSSidesBalancedInto(u, v, side, f0, f1, next)
	}); a != 0 {
		t.Errorf("balanced double BFS: %.1f allocs/op with provided buffers, want 0", a)
	}
	// The chunked kernel's worker goroutines allocate; everything else
	// (candidate lists, chunk bookkeeping) is pooled. ~2 allocs per
	// goroutine per parallel level is the structural floor; 256 is a
	// generous lid that still catches a lost pool.
	if a := testing.AllocsPerRun(10, func() {
		g.DoubleBFSSidesParallelInto(u, v, 8, side, f0, f1, next, nil)
	}); a > 256 {
		t.Errorf("parallel double BFS: %.1f allocs/op, want pooled steady state (<= 256)", a)
	}
}
