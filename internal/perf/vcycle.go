package perf

import (
	"fmt"
	"math/rand"

	"fasthgp/internal/gen"
	"fasthgp/internal/hypergraph"
	"fasthgp/internal/multilevel"
)

// VCycleFamily is one pinned huge-instance scale family, measured by
// running the full multilevel V-cycle and recording its deterministic
// work counters — the scale analogue of the intersect-build families.
type VCycleFamily struct {
	// Name identifies the family in BENCH_perf.json's vcycle section.
	Name string
	// Smoke marks the reduced-size family CI runs on every PR (and
	// -short runs locally); the full 10⁵-pin family additionally runs
	// in the bench job and unabridged `go test ./...`.
	Smoke bool
	// H is the pinned instance.
	H *hypergraph.Hypergraph
	// Opts are the pinned V-cycle options (seed included).
	Opts multilevel.Options
}

// VCycleFamilies returns the pinned scale suite: power-law instances
// (hub vertices, geometric net sizes — the shape real netlists have and
// uniform generators lack), fully deterministic.
func VCycleFamilies() []VCycleFamily {
	pl := func(name string, n int, cfg gen.PowerLawConfig, seed int64) *hypergraph.Hypergraph {
		h, err := gen.PowerLaw(n, cfg, rand.New(rand.NewSource(seed)))
		if err != nil {
			panic(fmt.Sprintf("perf: building vcycle family %s: %v", name, err))
		}
		return h
	}
	return []VCycleFamily{
		// Reduced-size smoke: same shape, ~2·10⁴ pins, fast enough for
		// every-PR CI with deterministic counters only.
		// InitialStarts is pinned low: the coarsest level of a power-law
		// instance has a dense intersection graph, and the scale gate
		// cares about the V-cycle's counters, not initial-cut polish.
		{Name: "vcycle-powerlaw-smoke", Smoke: true,
			H:    pl("vcycle-powerlaw-smoke", 4000, gen.PowerLawConfig{NumEdges: 6000}, 11),
			Opts: multilevel.Options{Seed: 1, Starts: 1, InitialStarts: 2, Parallelism: 1}},
		// The scale gate: ~10⁵ pins of power-law netlist. The blessed
		// counters are the budget — hierarchy depth, corridor sizes and
		// flow augmentations may only move with an intentional re-bless.
		{Name: "vcycle-powerlaw-100k",
			H:    pl("vcycle-powerlaw-100k", 20000, gen.PowerLawConfig{NumEdges: 30000}, 12),
			Opts: multilevel.Options{Seed: 1, Starts: 1, InitialStarts: 2, Parallelism: 1}},
	}
}

// VCycleCounters are the deterministic work counters of one family's
// V-cycle run — integers only, identical on every machine and run.
type VCycleCounters struct {
	// Modules, Nets and Pins describe the input hypergraph.
	Modules int `json:"modules"`
	Nets    int `json:"nets"`
	Pins    int `json:"pins"`
	// Levels and CoarsestVertices describe the contraction hierarchy.
	Levels           int `json:"levels"`
	CoarsestVertices int `json:"coarsest_vertices"`
	// CorridorVertices, FlowNodes and FlowAugmentations total the
	// flow-refinement workload over all levels and rounds.
	CorridorVertices  int64 `json:"corridor_vertices"`
	FlowNodes         int64 `json:"flow_nodes"`
	FlowAugmentations int64 `json:"flow_augmentations"`
	// FlowRounds/FlowAccepted/FlowGain summarize the acceptance rule.
	FlowRounds   int64 `json:"flow_rounds"`
	FlowAccepted int64 `json:"flow_accepted"`
	FlowGain     int64 `json:"flow_gain"`
	// RefineGain is the total uncoarsening cut reduction; FinalCut the
	// resulting cutsize.
	RefineGain int64 `json:"refine_gain"`
	FinalCut   int   `json:"final_cut"`
}

// VCycleCountersFor runs f's pinned V-cycle and extracts its counters.
func VCycleCountersFor(f VCycleFamily) (VCycleCounters, error) {
	res, err := multilevel.Bisect(f.H, f.Opts)
	if err != nil {
		return VCycleCounters{}, err
	}
	return VCycleCounters{
		Modules:           f.H.NumVertices(),
		Nets:              f.H.NumEdges(),
		Pins:              f.H.NumPins(),
		Levels:            res.Levels,
		CoarsestVertices:  res.CoarsestVertices,
		CorridorVertices:  res.VCycle.CorridorVertices,
		FlowNodes:         res.VCycle.FlowNodes,
		FlowAugmentations: res.VCycle.FlowAugmentations,
		FlowRounds:        res.VCycle.FlowRounds,
		FlowAccepted:      res.VCycle.FlowAccepted,
		FlowGain:          res.VCycle.FlowGain,
		RefineGain:        res.VCycle.RefineGain,
		FinalCut:          res.CutSize,
	}, nil
}
