// Package perf is the continuous-performance harness for the
// dual-construction fast path: a pinned suite of generator families
// (Table 1/2-scale synthetic netlists) with deterministic work
// counters, consumed by the benchmarks and the BENCH_perf.json
// baseline test in this package.
//
// The counters are pure functions of the pinned instances — no timing,
// no allocation measurements — so the committed baseline only changes
// when the construction's workload actually changes. Wall-clock and
// allocs/op live in the benchmarks and the gitignored timing sidecar,
// mirroring the BENCH_verify.json / BENCH_verify.timing.json split.
package perf

import (
	"fmt"
	"math/rand"

	"fasthgp/internal/gen"
	"fasthgp/internal/hypergraph"
	"fasthgp/internal/intersect"
)

// Family is one pinned benchmark instance with the intersection-graph
// options it is measured under.
type Family struct {
	// Name identifies the family in benchmarks and BENCH_perf.json.
	Name string
	// Threshold is the net-size filter passed to intersect.Build.
	Threshold int
	// Dense marks the dense synthetic suite — the regime where the old
	// clique-pair builder's Σ d·(d−1)/2 buffer blows up and where the
	// acceptance ratios (speedup, allocs/op reduction) are asserted.
	Dense bool
	// Huge marks the wide family added for the intra-start parallelism
	// suite; Dense and Huge families must both clear the ≥2× work-model
	// speedup floors at 8 workers (see TestPerfBaseline).
	Huge bool
	// H is the pinned instance.
	H *hypergraph.Hypergraph
}

// Families returns the pinned suite, fully deterministic: fixed
// generator seeds, fixed dimensions. Order is stable; names are unique.
func Families() []Family {
	mk := func(name string, h *hypergraph.Hypergraph, err error) *hypergraph.Hypergraph {
		if err != nil {
			panic(fmt.Sprintf("perf: building family %s: %v", name, err))
		}
		return h
	}
	random := func(name string, n int, cfg gen.RandomConfig, seed int64) *hypergraph.Hypergraph {
		rng := rand.New(rand.NewSource(seed))
		h, err := gen.Random(n, cfg, rng)
		return mk(name, h, err)
	}
	table2 := func(name gen.Table2Name, seed int64) *hypergraph.Hypergraph {
		h, err := gen.Table2Instance(name, seed)
		return mk(string(name), h, err)
	}
	return []Family{
		// Sparse Table-1 regime: bounded pins, degree ~ pins/n.
		{Name: "uniform-1k", H: random("uniform-1k", 1000,
			gen.RandomConfig{NumEdges: 1400, MinEdgeSize: 2, MaxEdgeSize: 4}, 1)},
		// Dense suite: 500 modules × 4000 nets, wide nets, unbounded
		// degree — the clique-pair buffer here is orders of magnitude
		// larger than the CSR it produces.
		{Name: "dense-500", Dense: true, H: random("dense-500", 500,
			gen.RandomConfig{NumEdges: 4000, MinEdgeSize: 2, MaxEdgeSize: 10}, 2)},
		// Table-2 technology profiles at paper scale.
		{Name: "pcb-242", H: table2(gen.Bd3, 3)},
		{Name: "stdcell-561-t10", Threshold: 10, H: table2(gen.IC1, 4)},
		// Planted difficult instance (Diff1: c=4 on 500×700).
		{Name: "planted-500", H: table2(gen.Diff1, 5)},
		// Huge suite: 2000 modules × 10000 nets — wide frontiers on the
		// dual graph and enough net rows that the sharded construction
		// and chunked BFS both engage at full width; the second family
		// (with dense-500) held to the intra-start speedup floors.
		{Name: "huge-2k", Huge: true, H: random("huge-2k", 2000,
			gen.RandomConfig{NumEdges: 10000, MinEdgeSize: 2, MaxEdgeSize: 8}, 6)},
	}
}

// Counters are the deterministic work counters of one family's
// intersection-graph construction — integers only, identical on every
// machine and run.
type Counters struct {
	// Modules, Nets and Pins describe the input hypergraph.
	Modules int `json:"modules"`
	Nets    int `json:"nets"`
	Pins    int `json:"pins"`
	// GVertices and GEdges describe the built intersection graph.
	GVertices int `json:"g_vertices"`
	GEdges    int `json:"g_edges"`
	// CliquePairs is Σ_m k_m·(k_m−1)/2 over modules m with k_m included
	// incident nets: the number of pair-buffer entries the reference
	// builder allocates before sorting. The stamp builder never
	// materializes them.
	CliquePairs int64 `json:"clique_pairs"`
	// ArcsEmitted = 2·GEdges is what the stamp builder writes instead.
	ArcsEmitted int `json:"arcs_emitted"`
}

// CountersFor computes f's counters by running the production builder.
func CountersFor(f Family) Counters {
	h := f.H
	res := intersect.Build(h, intersect.Options{Threshold: f.Threshold})
	c := Counters{
		Modules:     h.NumVertices(),
		Nets:        h.NumEdges(),
		Pins:        h.NumPins(),
		GVertices:   res.G.NumVertices(),
		GEdges:      res.G.NumEdges(),
		ArcsEmitted: 2 * res.G.NumEdges(),
	}
	for m := 0; m < h.NumVertices(); m++ {
		k := int64(0)
		for _, e := range h.VertexEdges(m) {
			if res.GVertexOf[e] >= 0 {
				k++
			}
		}
		c.CliquePairs += k * (k - 1) / 2
	}
	return c
}
