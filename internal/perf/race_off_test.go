//go:build !race

package perf

// raceEnabled reports whether the race detector is compiled in; the
// performance-ratio assertions are skipped under it (instrumentation
// distorts both timing and allocation behavior).
const raceEnabled = false
