package perf

import (
	"math"

	"fasthgp/internal/graph"
	"fasthgp/internal/intersect"
)

// round1 rounds to one decimal — the precision the blessed ratio
// columns are committed at.
func round1(x float64) float64 { return math.Round(x*10) / 10 }

// parallelWorkers is the worker count the parallel counter family is
// pinned at: the acceptance criterion's "8 workers" point.
const parallelWorkers = 8

// ParallelCounters are the deterministic work counters of one family's
// intra-start parallel kernels at 8 workers — like Counters, integers
// (plus exact one-decimal ratios) that are pure functions of the pinned
// instance, identical on every machine. The speedup columns are
// work-model bounds, not wall clock: TotalArcs/MaxShardArcs is the
// best-case pass speedup of the sharded dual construction, and
// Candidates/CriticalPath the best-case scan speedup of the chunked
// double BFS. Wall-clock parallel timing is machine-dependent and lives
// only in the gitignored timing sidecar.
type ParallelCounters struct {
	// Shards is the shard count the two-pass construction splits into.
	Shards int `json:"shards"`
	// BuildTotalArcs and BuildMaxShardArcs are the candidate-arc work
	// measure per pass: total, and the heaviest shard's share.
	BuildTotalArcs    int `json:"build_total_arcs"`
	BuildMaxShardArcs int `json:"build_max_shard_arcs"`
	// BuildSpeedupX = TotalArcs/MaxShardArcs, the work-model speedup of
	// the counting and emission passes at this shard split.
	BuildSpeedupX float64 `json:"build_speedup_x"`
	// BuildImbalanceX = MaxShardArcs/(TotalArcs/Shards): 1.0 is a
	// perfect split, higher means the heaviest shard dominates.
	BuildImbalanceX float64 `json:"build_imbalance_x"`
	// BFSLevels / BFSParallelLevels count double-BFS level expansions
	// on the dual graph's double-sweep source pair, and how many of
	// them crossed the chunked-path frontier threshold.
	BFSLevels         int `json:"bfs_levels"`
	BFSParallelLevels int `json:"bfs_parallel_levels"`
	// BFSChunksMerged is the total worker chunks merged across all
	// parallel levels.
	BFSChunksMerged int `json:"bfs_chunks_merged"`
	// BFSCandidates and BFSCriticalPath are the scan work measure:
	// total discovered-vertex candidates, and the sum over levels of
	// the largest chunk (serial levels count whole).
	BFSCandidates   int `json:"bfs_candidates"`
	BFSCriticalPath int `json:"bfs_critical_path"`
	// BFSSpeedupX = Candidates/CriticalPath, the work-model speedup of
	// the scan phase at this chunking.
	BFSSpeedupX float64 `json:"bfs_speedup_x"`
}

// ParallelCountersFor computes f's parallel counters by running both
// kernels at 8 workers. The BFS source pair is the deterministic double
// sweep used for pseudo-diameter estimation: the vertex farthest from
// G-vertex 0, then the vertex farthest from it.
func ParallelCountersFor(f Family) ParallelCounters {
	var bs intersect.BuildStats
	res := intersect.BuildCounted(f.H,
		intersect.Options{Threshold: f.Threshold, Parallelism: parallelWorkers}, &bs)
	c := ParallelCounters{
		Shards:            bs.Shards,
		BuildTotalArcs:    bs.TotalArcs,
		BuildMaxShardArcs: bs.MaxShardArcs,
	}
	if bs.MaxShardArcs > 0 {
		c.BuildSpeedupX = round1(float64(bs.TotalArcs) / float64(bs.MaxShardArcs))
		c.BuildImbalanceX = round1(float64(bs.MaxShardArcs) * float64(bs.Shards) / float64(bs.TotalArcs))
	}

	g := res.G
	if g.NumVertices() == 0 {
		return c
	}
	u := farthestFrom(g, 0)
	v := farthestFrom(g, u)
	var ps graph.ParallelBFSStats
	n := g.NumVertices()
	g.DoubleBFSSidesParallelInto(u, v, parallelWorkers,
		make([]int, n), make([]int, 0, n), make([]int, 0, n), make([]int, 0, n), &ps)
	c.BFSLevels = ps.Levels
	c.BFSParallelLevels = ps.ParallelLevels
	c.BFSChunksMerged = ps.ChunksMerged
	c.BFSCandidates = ps.Candidates
	c.BFSCriticalPath = ps.CriticalPath
	if ps.CriticalPath > 0 {
		c.BFSSpeedupX = round1(float64(ps.Candidates) / float64(ps.CriticalPath))
	}
	return c
}

// farthestFrom returns the highest-distance vertex from src under BFS
// (lowest index among ties — the visit order is deterministic).
func farthestFrom(g *graph.Graph, src int) int {
	n := g.NumVertices()
	dist := make([]int, n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := make([]int, 0, n)
	queue = append(queue, src)
	far := src
	for head := 0; head < len(queue); head++ {
		x := queue[head]
		for _, w := range g.Neighbors(x) {
			if dist[w] < 0 {
				dist[w] = dist[x] + 1
				if dist[w] > dist[far] {
					far = w
				}
				queue = append(queue, w)
			}
		}
	}
	return far
}
