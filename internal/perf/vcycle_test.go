package perf

// TestVCycleBaseline is the scale gate: it runs the pinned power-law
// V-cycle families and compares their deterministic work counters —
// hierarchy depth, coarsest size, corridor sizes, flow augmentations,
// acceptance stats, refinement gain, final cut — exactly against the
// vcycle section of BENCH_perf.json. The counters are pure functions
// of the pinned instances (no timing, no allocation), so the gate is
// machine-independent and runs on every PR: under -short only the
// reduced smoke family runs; full runs add the 10⁵-pin family.
//
// Re-bless after an intentional change with
//
//	go test ./internal/perf/ -run TestVCycleBaseline -update
//
// (run it un-short so the full family is re-blessed too).

import (
	"encoding/json"
	"os"
	"testing"
)

func TestVCycleBaseline(t *testing.T) {
	var entries []vcycleEntry
	for _, f := range VCycleFamilies() {
		if testing.Short() && !f.Smoke {
			t.Logf("%s: skipped under -short (smoke families only)", f.Name)
			continue
		}
		c, err := VCycleCountersFor(f)
		if err != nil {
			t.Fatalf("%s: %v", f.Name, err)
		}
		if c.Pins < 10_000 {
			t.Errorf("%s: only %d pins — scale family is not at scale", f.Name, c.Pins)
		}
		if !f.Smoke && c.Pins < 100_000 {
			t.Errorf("%s: %d pins < 10⁵ — the scale gate no longer covers the target regime", f.Name, c.Pins)
		}
		if c.Levels == 0 || c.FlowRounds == 0 {
			t.Errorf("%s: degenerate V-cycle (levels=%d flow rounds=%d)", f.Name, c.Levels, c.FlowRounds)
		}
		entries = append(entries, vcycleEntry{Name: f.Name, VCycleCounters: c})
		t.Logf("%-24s %d pins, %d levels → %d coarse, %d corridor vertices, %d augmentations, cut %d",
			f.Name, c.Pins, c.Levels, c.CoarsestVertices, c.CorridorVertices, c.FlowAugmentations, c.FinalCut)
	}

	if *update {
		// Read-modify-write: replace only the rows measured this run,
		// keep everything else (intersect families, and the full family
		// when re-blessing under -short).
		var file perfFile
		if prev, err := os.ReadFile(benchPath); err == nil {
			if err := json.Unmarshal(prev, &file); err != nil {
				t.Fatalf("%s: %v", benchPath, err)
			}
		}
		byName := make(map[string]int, len(file.VCycle))
		for i, e := range file.VCycle {
			byName[e.Name] = i
		}
		for _, e := range entries {
			if i, ok := byName[e.Name]; ok {
				file.VCycle[i] = e
			} else {
				file.VCycle = append(file.VCycle, e)
			}
		}
		writeJSON(t, benchPath, &file)
		t.Logf("re-blessed vcycle section of %s", benchPath)
		return
	}

	data, err := os.ReadFile(benchPath)
	if err != nil {
		t.Fatalf("missing %s — run `go test ./internal/perf/ -run TestVCycleBaseline -update`: %v", benchPath, err)
	}
	var want perfFile
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatalf("%s: %v", benchPath, err)
	}
	wantByName := make(map[string]vcycleEntry, len(want.VCycle))
	for _, e := range want.VCycle {
		wantByName[e.Name] = e
	}
	for _, e := range entries {
		w, ok := wantByName[e.Name]
		if !ok {
			t.Errorf("vcycle family %q missing from BENCH_perf.json — re-bless with -update", e.Name)
			continue
		}
		if e.VCycleCounters != w.VCycleCounters {
			t.Errorf("%s: vcycle counters changed\n got %+v\nwant %+v — the V-cycle's scale workload moved; re-bless with -update if intentional",
				e.Name, e.VCycleCounters, w.VCycleCounters)
		}
	}
}
