package fm

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fasthgp/internal/bruteforce"
	"fasthgp/internal/cutstate"
	"fasthgp/internal/hypergraph"
	"fasthgp/internal/kl"
	"fasthgp/internal/partition"
)

func mkHG(t *testing.T, n int, edges [][]int) *hypergraph.Hypergraph {
	t.Helper()
	h, err := hypergraph.FromEdges(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func randomHG(rng *rand.Rand, n, m, maxSize int) *hypergraph.Hypergraph {
	b := hypergraph.NewBuilder(n)
	for i := 0; i < m; i++ {
		size := 2 + rng.Intn(maxSize-1)
		pins := make([]int, size)
		for j := range pins {
			pins[j] = rng.Intn(n)
		}
		b.AddEdge(pins...)
	}
	return b.MustBuild()
}

func TestErrors(t *testing.T) {
	h := mkHG(t, 1, [][]int{{0}})
	if _, err := Bisect(h, Options{}); err == nil {
		t.Error("accepted 1-vertex hypergraph")
	}
	h2 := mkHG(t, 4, [][]int{{0, 1}})
	if _, err := Improve(h2, partition.New(4), Options{}); err == nil {
		t.Error("accepted incomplete partition")
	}
}

func TestNeverWorseThanInitial(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		n := 6 + rng.Intn(20)
		h := randomHG(rng, n, n+rng.Intn(2*n), 4)
		p := kl.RandomBisection(n, rng)
		before := partition.CutSize(h, p)
		res, err := Improve(h, p, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.CutSize > before {
			t.Errorf("trial %d: FM worsened cut %d → %d", trial, before, res.CutSize)
		}
		if got := partition.CutSize(h, res.Partition); got != res.CutSize {
			t.Errorf("trial %d: reported %d != recomputed %d", trial, res.CutSize, got)
		}
		if err := res.Partition.Validate(h); err != nil {
			t.Errorf("trial %d: %v", trial, err)
		}
	}
}

func TestBalanceRespected(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 10; trial++ {
		n := 10 + rng.Intn(20)
		h := randomHG(rng, n, 2*n, 4)
		res, err := Bisect(h, Options{Seed: int64(trial), BalanceFraction: 0.1})
		if err != nil {
			t.Fatal(err)
		}
		lw, rw := int64(0), int64(0)
		for v := 0; v < n; v++ {
			if res.Partition.Side(v) == partition.Left {
				lw += h.VertexWeight(v)
			} else {
				rw += h.VertexWeight(v)
			}
		}
		minSide := int64(float64(h.TotalVertexWeight()) * 0.4)
		if lw < minSide || rw < minSide {
			t.Errorf("trial %d: balance violated %d|%d (min %d)", trial, lw, rw, minSide)
		}
	}
}

func TestFindsBridgeCut(t *testing.T) {
	b := hypergraph.NewBuilder(12)
	for i := 0; i < 6; i++ {
		b.AddEdge(i, (i+1)%6)
		b.AddEdge(6+i, 6+(i+1)%6)
	}
	b.AddEdge(0, 6)
	h := b.MustBuild()
	best := 1 << 30
	for seed := int64(0); seed < 5; seed++ {
		res, err := Bisect(h, Options{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if res.CutSize < best {
			best = res.CutSize
		}
	}
	if best != 1 {
		t.Errorf("best FM cut = %d, want 1", best)
	}
}

func TestMatchesBruteForceOnSmall(t *testing.T) {
	h := mkHG(t, 10, [][]int{
		{0, 1, 2}, {2, 3, 4}, {0, 4}, {1, 3},
		{5, 6, 7}, {7, 8, 9}, {5, 9}, {6, 8},
		{4, 5},
	})
	_, opt, err := bruteforce.MinCut(h, 2)
	if err != nil {
		t.Fatal(err)
	}
	best := 1 << 30
	for seed := int64(0); seed < 10; seed++ {
		res, err := Bisect(h, Options{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if res.CutSize < best {
			best = res.CutSize
		}
	}
	if best != opt {
		t.Errorf("best FM cut = %d, optimum = %d", best, opt)
	}
}

func TestImproveLockedRespectsFixed(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 10; trial++ {
		n := 10 + rng.Intn(10)
		h := randomHG(rng, n, 2*n, 4)
		p := kl.RandomBisection(n, rng)
		fixed := make([]bool, n)
		var pinnedV []int
		var pinnedS []partition.Side
		for v := 0; v < n; v++ {
			if rng.Intn(4) == 0 {
				fixed[v] = true
				pinnedV = append(pinnedV, v)
				pinnedS = append(pinnedS, p.Side(v))
			}
		}
		res, err := ImproveLocked(h, p, fixed, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range pinnedV {
			if res.Partition.Side(v) != pinnedS[i] {
				t.Errorf("trial %d: fixed vertex %d moved", trial, v)
			}
		}
	}
	h := randomHG(rng, 6, 10, 3)
	p := kl.RandomBisection(6, rng)
	if _, err := ImproveLocked(h, p, make([]bool, 3), Options{}); err == nil {
		t.Error("accepted wrong-length fixed slice")
	}
}

// TestPropertyIncrementalGainsExact: after updateGainsAndMove, every
// unlocked vertex's tracked gain equals a fresh O(degree) computation.
func TestPropertyIncrementalGainsExact(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(14)
		h := randomHG(rng, n, 2+rng.Intn(25), 5)
		p := kl.RandomBisection(n, rng)
		s, err := cutstate.New(h, p)
		if err != nil {
			return false
		}
		locked := make([]bool, n)
		gain := make([]int, n)
		bq := newBuckets(h.MaxVertexDegree())
		for v := 0; v < n; v++ {
			gain[v] = s.Gain(v)
		}
		// Move a few random vertices, locking them as FM would.
		for step := 0; step < 5 && step < n; step++ {
			v := rng.Intn(n)
			for locked[v] {
				v = (v + 1) % n
			}
			updateGainsAndMove(s, v, locked, gain, bq)
			locked[v] = true
			for u := 0; u < n; u++ {
				if !locked[u] && gain[u] != s.Gain(u) {
					return false
				}
			}
		}
		return s.Verify() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestBucketsPopOrder(t *testing.T) {
	bq := newBuckets(3)
	bq.push(0, -3)
	bq.push(1, 2)
	bq.push(2, 0)
	always := func(int, int) bool { return true }
	if v, ok := bq.pop(always); !ok || v != 1 {
		t.Errorf("first pop = %d, want 1 (gain 2)", v)
	}
	if v, ok := bq.pop(always); !ok || v != 2 {
		t.Errorf("second pop = %d, want 2 (gain 0)", v)
	}
	if v, ok := bq.pop(always); !ok || v != 0 {
		t.Errorf("third pop = %d, want 0 (gain -3)", v)
	}
	if _, ok := bq.pop(always); ok {
		t.Error("pop on empty buckets succeeded")
	}
}

func TestBucketsStaleSkipped(t *testing.T) {
	bq := newBuckets(2)
	bq.push(0, 2)
	bq.push(0, 1) // gain changed; old entry stale
	cur := map[int]int{0: 1}
	v, ok := bq.pop(func(v, g int) bool { return cur[v] == g })
	if !ok || v != 0 {
		t.Fatalf("pop = %d,%v", v, ok)
	}
	if _, ok := bq.pop(func(v, g int) bool { return cur[v] == g }); ok {
		t.Error("stale entry accepted")
	}
}
