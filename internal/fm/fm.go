// Package fm implements the Fiduccia–Mattheyses linear-time heuristic
// for improving hypergraph bipartitions — reference [9] of the paper
// ("A Linear-Time Heuristic for Improving Network Partitions", DAC
// 1982) and the strongest of the classical move-based baselines.
//
// One pass moves single cells (not pairs, unlike Kernighan–Lin) in
// descending gain order under a balance constraint, locking each moved
// cell, then rewinds to the best prefix. Cell gains live in a bucket
// structure indexed by gain and are updated incrementally with the
// standard critical-net rules, so a pass costs O(pins).
package fm

import (
	"context"
	"fmt"
	"math/rand"

	"fasthgp/internal/checkpoint"
	"fasthgp/internal/cutstate"
	"fasthgp/internal/engine"
	"fasthgp/internal/hypergraph"
	"fasthgp/internal/kl"
	"fasthgp/internal/partition"
	"fasthgp/internal/rebalance"
)

// Options configures the partitioner.
type Options struct {
	// Starts is the number of independent random initial bisections
	// tried by Bisect; the best final cut wins (default 1).
	Starts int
	// MaxPasses bounds improvement passes (default 12).
	MaxPasses int
	// BalanceFraction is the allowed deviation from perfect weight
	// balance: each side must keep at least (0.5 − BalanceFraction) of
	// the total vertex weight (default 0.1, the r-bipartition spirit of
	// the original paper). Values ≥ 0.5 disable the constraint except
	// for non-emptiness.
	BalanceFraction float64
	// Seed seeds the initial random bisections used by Bisect; each
	// start draws from its own stream, so results are independent of
	// Parallelism.
	Seed int64
	// Parallelism is the number of workers running starts concurrently;
	// values < 1 mean GOMAXPROCS. Wall time only, never the result.
	Parallelism int
	// Constraint is the unified balance contract: fixed vertices never
	// enter the gain buckets, and the pass-legality bound derives from
	// Constraint.MaxSideWeight instead of BalanceFraction float math.
	// The zero value falls back to BalanceFraction via the ε = 2b
	// mapping, so both knobs round identically at odd total weights.
	Constraint partition.Constraint
	// Checkpoint, when non-nil, journals every completed start into its
	// sink and resumes from its recovered state — see internal/checkpoint.
	// A resumed run returns the same Result an uninterrupted run would.
	Checkpoint *engine.CheckpointIO
}

func (o *Options) defaults() {
	if o.MaxPasses <= 0 {
		o.MaxPasses = 12
	}
	if o.BalanceFraction <= 0 {
		o.BalanceFraction = 0.1
	}
}

// Result is the outcome of an FM run.
type Result struct {
	// Partition is the final bipartition.
	Partition *partition.Bipartition
	// CutSize is its cutsize.
	CutSize int
	// Passes is the number of passes executed (of the winning start,
	// under multi-start).
	Passes int
	// Engine reports the multi-start execution (starts run, winning
	// start, per-start cuts, wall/CPU time).
	Engine engine.Stats
}

// Bisect partitions h starting from a random balanced bisection.
func Bisect(h *hypergraph.Hypergraph, opts Options) (*Result, error) {
	return BisectCtx(context.Background(), h, opts)
}

// BisectCtx is Bisect with cancellation: the best result among the
// starts that completed is returned when ctx expires (start 0 always
// runs). Within a start, passes stop early at cancellation.
func BisectCtx(ctx context.Context, h *hypergraph.Hypergraph, opts Options) (*Result, error) {
	if h.NumVertices() < 2 {
		return nil, fmt.Errorf("fm: hypergraph has %d vertices; need at least 2", h.NumVertices())
	}
	best, es, err := engine.Run(ctx, engine.Spec[*Result]{
		Name:        "fm",
		Starts:      opts.Starts,
		Parallelism: opts.Parallelism,
		Seed:        opts.Seed,
		Run: func(ctx context.Context, _ int, rng *rand.Rand, scratch *engine.Scratch) (*Result, error) {
			var p *partition.Bipartition
			if opts.Constraint.IsZero() {
				p = kl.RandomBisection(h.NumVertices(), rng)
			} else {
				p = kl.RandomBisectionConstrained(h, rng, opts.Constraint)
			}
			return improveLocked(ctx, h, p, nil, opts, scratch)
		},
		Better: func(a, b *Result) bool { return betterResult(h, a, b) },
		Cut:    func(r *Result) int { return r.CutSize },
		Checkpoint: engine.BindCheckpoint(opts.Checkpoint,
			func(r *Result) []byte {
				return checkpoint.EncodeBest(r.Partition.Sides(), r.CutSize, int64(r.Passes))
			},
			func(b []byte) (*Result, error) {
				p, cut, aux, err := checkpoint.DecodeBestFor(h, b, 1)
				if err != nil {
					return nil, fmt.Errorf("fm: %w", err)
				}
				return &Result{Partition: p, CutSize: cut, Passes: int(aux[0])}, nil
			}),
	})
	if err != nil {
		return nil, err
	}
	best.Engine = es
	return best, nil
}

// betterResult orders candidate results: lower cut, then lower weight
// imbalance (strict, so the engine's lowest-index tie-break applies).
func betterResult(h *hypergraph.Hypergraph, a, b *Result) bool {
	if a.CutSize != b.CutSize {
		return a.CutSize < b.CutSize
	}
	return partition.Imbalance(h, a.Partition) < partition.Imbalance(h, b.Partition)
}

// Improve runs FM passes from the given complete bipartition, modified
// in place and returned.
func Improve(h *hypergraph.Hypergraph, p *partition.Bipartition, opts Options) (*Result, error) {
	return ImproveLocked(h, p, nil, opts)
}

// ImproveCtx is Improve with cancellation: passes stop early when ctx
// expires and the partition as improved so far is returned.
func ImproveCtx(ctx context.Context, h *hypergraph.Hypergraph, p *partition.Bipartition, opts Options) (*Result, error) {
	return ImproveLockedCtx(ctx, h, p, nil, opts)
}

// ImproveLocked is Improve with a set of permanently fixed vertices
// (fixed[v] = true ⇒ v never moves). This is the hook for
// terminal-propagation placement (Dunlop–Kernighan): anchor vertices
// representing external pins are fixed to their side. A nil fixed
// slice fixes nothing.
func ImproveLocked(h *hypergraph.Hypergraph, p *partition.Bipartition, fixed []bool, opts Options) (*Result, error) {
	return ImproveLockedCtx(context.Background(), h, p, fixed, opts)
}

// ImproveLockedCtx is ImproveLocked with cancellation between passes.
func ImproveLockedCtx(ctx context.Context, h *hypergraph.Hypergraph, p *partition.Bipartition, fixed []bool, opts Options) (*Result, error) {
	scratch := engine.GetScratch()
	defer engine.PutScratch(scratch)
	return improveLocked(ctx, h, p, fixed, opts, scratch)
}

func improveLocked(ctx context.Context, h *hypergraph.Hypergraph, p *partition.Bipartition, fixed []bool, opts Options, scratch *engine.Scratch) (*Result, error) {
	opts.defaults()
	if err := p.Validate(h); err != nil {
		return nil, fmt.Errorf("fm: %w", err)
	}
	if fixed != nil && len(fixed) != h.NumVertices() {
		return nil, fmt.Errorf("fm: fixed covers %d vertices, hypergraph has %d", len(fixed), h.NumVertices())
	}
	c := opts.Constraint
	if !c.IsZero() {
		if err := rebalance.Enforce(h, p, c); err != nil {
			return nil, fmt.Errorf("fm: %w", err)
		}
		// The constraint's pins are permanent locks, merged with any
		// caller-supplied fixed set.
		if cb := c.FixedBools(h.NumVertices()); cb != nil {
			if fixed == nil {
				fixed = cb
			} else {
				merged := make([]bool, len(fixed))
				copy(merged, fixed)
				for v := range cb {
					merged[v] = merged[v] || cb[v]
				}
				fixed = merged
			}
		}
	}
	s, err := cutstate.New(h, p)
	if err != nil {
		return nil, fmt.Errorf("fm: %w", err)
	}
	// The balance legality bound: both knobs (the ε contract and the
	// legacy BalanceFraction) route through Constraint.MaxSideWeight so
	// that odd total weights truncate identically everywhere. Keeping a
	// side at ≥ minSide automatically caps the other at maxSide since
	// the two are complements.
	bal := c
	if !bal.HasBalance() {
		bal = partition.FromBalanceFraction(opts.BalanceFraction)
	}
	minSide := bal.MinSideWeight(h.TotalVertexWeight())
	// Side arrays are leased once per improvement run and re-zeroed by
	// each pass, so repeated passes (and parallel starts) do not
	// reallocate them.
	n := h.NumVertices()
	locked := scratch.Bools(n)
	gain := scratch.Ints(n)
	passes := 0
	for passes < opts.MaxPasses && ctx.Err() == nil {
		passes++
		if kept := runPass(s, minSide, fixed, locked, gain); kept <= 0 {
			break
		}
	}
	return &Result{Partition: p, CutSize: s.Cut(), Passes: passes}, nil
}

// buckets is a lazy max-gain bucket queue: stale entries are skipped on
// pop (an entry is valid only if the vertex is unlocked and its current
// gain matches the bucket it is popped from).
type buckets struct {
	offset int
	lists  [][]int
	maxPtr int
}

func newBuckets(maxGain int) *buckets {
	return &buckets{
		offset: maxGain,
		lists:  make([][]int, 2*maxGain+1),
		maxPtr: -1,
	}
}

func (b *buckets) push(v, gain int) {
	i := gain + b.offset
	b.lists[i] = append(b.lists[i], v)
	if i > b.maxPtr {
		b.maxPtr = i
	}
}

// pop returns the highest-gain entry satisfying valid, skipping and
// discarding stale ones.
func (b *buckets) pop(valid func(v, gain int) bool) (int, bool) {
	for b.maxPtr >= 0 {
		l := b.lists[b.maxPtr]
		if len(l) == 0 {
			b.maxPtr--
			continue
		}
		v := l[len(l)-1]
		b.lists[b.maxPtr] = l[:len(l)-1]
		if valid(v, b.maxPtr-b.offset) {
			return v, true
		}
	}
	return 0, false
}

// runPass executes one FM pass and returns the cut improvement kept.
// Vertices with fixed[v] = true start locked and never move. locked
// and gain are caller-owned length-n side arrays; the pass re-zeroes
// them on entry.
func runPass(s *cutstate.State, minSide int64, fixed, locked []bool, gain []int) int {
	h := s.Hypergraph()
	n := h.NumVertices()
	clear(locked)
	if fixed != nil {
		copy(locked, fixed)
	}
	clear(gain)
	maxDeg := h.MaxVertexDegree()
	bq := newBuckets(maxDeg)
	for v := 0; v < n; v++ {
		gain[v] = s.Gain(v)
		if !locked[v] {
			bq.push(v, gain[v])
		}
	}

	// Side populations, maintained incrementally across moves: the
	// legality check runs once per bucket pop, so an O(n) Counts() here
	// dominated whole-pass cost at 10⁵-pin scale.
	l, r, _ := s.Partition().Counts()
	legal := func(v int) bool {
		// Moving v must leave its side with at least minSide weight and
		// at least one vertex.
		lw, rw := s.Weights()
		w := h.VertexWeight(v)
		if s.Side(v) == partition.Left {
			return lw-w >= minSide && l > 1
		}
		return rw-w >= minSide && r > 1
	}

	var seq []int
	cum, bestCum, bestIdx := 0, 0, -1
	// Scratch for net counts on the to-side before the move.
	for {
		v, ok := bq.pop(func(v, g int) bool {
			return !locked[v] && gain[v] == g && legal(v)
		})
		if !ok {
			break
		}
		updateGainsAndMove(s, v, locked, gain, bq)
		if s.Side(v) == partition.Left {
			l, r = l+1, r-1
		} else {
			l, r = l-1, r+1
		}
		locked[v] = true
		seq = append(seq, v)
		cum += gain[v]
		if cum > bestCum {
			bestCum, bestIdx = cum, len(seq)-1
		}
	}
	for i := len(seq) - 1; i > bestIdx; i-- {
		s.Move(seq[i])
	}
	return bestCum
}

// updateGainsAndMove applies the standard FM incremental gain rules
// around moving v, then performs the move. For each net of v with
// from-side count F and to-side count T before the move:
//
//	T == 0: every unlocked cell on the net gains (the net could now be
//	        uncut by following v);
//	T == 1: the lone to-side cell loses (it can no longer uncut the
//	        net by itself);
//
// and after the move, with F′ = F − 1:
//
//	F′ == 0: every unlocked cell on the net loses;
//	F′ == 1: the lone remaining from-side cell gains.
func updateGainsAndMove(s *cutstate.State, v int, locked []bool, gain []int, bq *buckets) {
	h := s.Hypergraph()
	from := s.Side(v)
	bump := func(u, d int) {
		if locked[u] || u == v {
			return
		}
		gain[u] += d
		bq.push(u, gain[u])
	}
	for _, e := range h.VertexEdges(v) {
		l, r := s.Counts(e)
		f, t := l, r
		if from == partition.Right {
			f, t = r, l
		}
		switch t {
		case 0:
			for _, u := range h.EdgePins(e) {
				bump(u, +1)
			}
		case 1:
			for _, u := range h.EdgePins(e) {
				if u != v && s.Side(u) != from {
					bump(u, -1)
				}
			}
		}
		switch f - 1 {
		case 0:
			for _, u := range h.EdgePins(e) {
				bump(u, -1)
			}
		case 1:
			for _, u := range h.EdgePins(e) {
				if u != v && s.Side(u) == from {
					bump(u, +1)
				}
			}
		}
	}
	s.Move(v)
}
