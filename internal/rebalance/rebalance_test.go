package rebalance

import (
	"errors"
	"math/rand"
	"testing"

	"fasthgp/internal/hypergraph"
	"fasthgp/internal/partition"
	"fasthgp/internal/verify"
)

func lopsided(t *testing.T, n int) (*hypergraph.Hypergraph, *partition.Bipartition) {
	t.Helper()
	b := hypergraph.NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		b.AddEdge(i, i+1)
	}
	h := b.MustBuild()
	p := partition.New(n)
	p.Assign(0, partition.Right)
	for v := 1; v < n; v++ {
		p.Assign(v, partition.Left)
	}
	return h, p
}

func TestBisectRepairsLopsided(t *testing.T) {
	h, p := lopsided(t, 20)
	moved, err := Bisect(h, p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if moved == 0 {
		t.Fatal("nothing moved")
	}
	if imb := partition.Imbalance(h, p); imb != 0 {
		t.Errorf("imbalance %d after Bisect, want 0", imb)
	}
	if err := p.Validate(h); err != nil {
		t.Fatal(err)
	}
}

func TestBisectMovesCheapVerticesOnAPath(t *testing.T) {
	// On a path, peeling from the light end keeps the cut at 1.
	h, p := lopsided(t, 16)
	if _, err := Bisect(h, p, 1); err != nil {
		t.Fatal(err)
	}
	if cut := partition.CutSize(h, p); cut != 1 {
		t.Errorf("cut = %d after rebalance on a path, want 1", cut)
	}
}

func TestToTargetDirections(t *testing.T) {
	h, p := lopsided(t, 12)
	// Target almost everything on the right.
	if _, err := ToTarget(h, p, 2, 0); err != nil {
		t.Fatal(err)
	}
	lw, _ := partition.SideWeights(h, p)
	if lw != 2 {
		t.Errorf("left weight = %d, want 2", lw)
	}
	// Back to heavy left.
	if _, err := ToTarget(h, p, 10, 0); err != nil {
		t.Fatal(err)
	}
	lw, _ = partition.SideWeights(h, p)
	if lw != 10 {
		t.Errorf("left weight = %d, want 10", lw)
	}
}

func TestAlreadyBalancedNoop(t *testing.T) {
	h, err := hypergraph.FromEdges(4, [][]int{{0, 1}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	p := partition.FromSides([]partition.Side{partition.Left, partition.Left, partition.Right, partition.Right})
	moved, err := Bisect(h, p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if moved != 0 {
		t.Errorf("moved %d on balanced input", moved)
	}
}

func TestGiantModuleStops(t *testing.T) {
	b := hypergraph.NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.SetVertexWeight(0, 100)
	h := b.MustBuild()
	p := partition.FromSides([]partition.Side{partition.Left, partition.Left, partition.Right})
	// Target 51 with tolerance 0: the giant cannot move without
	// overshooting; the small vertex moves, then progress stops.
	moved, err := ToTarget(h, p, 51, 0)
	if err != nil {
		t.Fatal(err)
	}
	if moved > 2 {
		t.Errorf("moved %d, expected early stop", moved)
	}
	if err := p.Validate(h); err != nil {
		t.Fatal(err)
	}
}

func TestRejectsInvalid(t *testing.T) {
	h, err := hypergraph.FromEdges(2, [][]int{{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Bisect(h, partition.New(2), 0); err == nil {
		t.Error("accepted incomplete partition")
	}
}

func TestRandomInstancesConverge(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 15; trial++ {
		n := 8 + rng.Intn(30)
		b := hypergraph.NewBuilder(n)
		for i := 0; i < 2*n; i++ {
			b.AddEdge(rng.Intn(n), rng.Intn(n), rng.Intn(n))
		}
		for v := 0; v < n; v++ {
			b.SetVertexWeight(v, int64(1+rng.Intn(5)))
		}
		h := b.MustBuild()
		p := partition.New(n)
		p.Assign(0, partition.Right)
		for v := 1; v < n; v++ {
			p.Assign(v, partition.Left)
		}
		tol := h.TotalVertexWeight() / 10
		if _, err := Bisect(h, p, tol); err != nil {
			t.Fatal(err)
		}
		if err := p.Validate(h); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Either within tolerance or stopped for a structural reason
		// (max vertex weight exceeds the remaining gap).
		imb := partition.Imbalance(h, p)
		if imb > 2*tol {
			maxW := int64(0)
			for v := 0; v < n; v++ {
				if h.VertexWeight(v) > maxW {
					maxW = h.VertexWeight(v)
				}
			}
			if imb > 2*maxW+2*tol {
				t.Errorf("trial %d: imbalance %d (tol %d, maxW %d)", trial, imb, tol, maxW)
			}
		}
	}
}

// TestBalanceBoundsTable drives ToTarget over a table of weighted
// instances and checks the contract from the doc comment: the final
// left weight lands within tolerance whenever a legal mover sequence
// exists, sides stay nonempty, and every output still passes the
// shared invariant oracle.
func TestBalanceBoundsTable(t *testing.T) {
	type tc struct {
		name    string
		weights []int64
		edges   [][]int
		// start assigns vertices [0,split) Left, the rest Right.
		split      int
		targetLeft int64
		tol        int64
		wantWithin bool // |leftWeight − target| ≤ tol must hold after
		wantMoved  int  // exact move count, -1 to skip
	}
	cases := []tc{
		{
			name:    "unit-path-even-split",
			weights: []int64{1, 1, 1, 1, 1, 1, 1, 1},
			edges:   [][]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 6}, {6, 7}},
			split:   7, targetLeft: 4, tol: 0, wantWithin: true, wantMoved: 3,
		},
		{
			name:    "already-within-noop",
			weights: []int64{1, 1, 1, 1},
			edges:   [][]int{{0, 1}, {2, 3}},
			split:   2, targetLeft: 2, tol: 1, wantWithin: true, wantMoved: 0,
		},
		{
			name:    "weighted-ends",
			weights: []int64{5, 1, 1, 1, 1, 1, 1, 5},
			edges:   [][]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 6}, {6, 7}},
			split:   6, targetLeft: 8, tol: 1, wantWithin: true, wantMoved: -1,
		},
		{
			name:    "giant-module-infeasible",
			weights: []int64{100, 1, 1, 1},
			edges:   [][]int{{0, 1}, {1, 2}, {2, 3}},
			split:   1, targetLeft: 50, tol: 5, wantWithin: false, wantMoved: -1,
		},
		{
			name:    "drain-right-keeps-nonempty",
			weights: []int64{1, 1, 1, 1, 1, 1},
			edges:   [][]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}},
			split:   3, targetLeft: 6, tol: 0, wantWithin: false, wantMoved: -1,
		},
		{
			name:    "zero-weight-vertices-ignored",
			weights: []int64{1, 0, 0, 1, 1, 1},
			edges:   [][]int{{0, 1, 2}, {2, 3}, {3, 4}, {4, 5}},
			split:   4, targetLeft: 2, tol: 0, wantWithin: true, wantMoved: -1,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			b := hypergraph.NewBuilder(len(c.weights))
			for v, w := range c.weights {
				b.SetVertexWeight(v, w)
			}
			for _, e := range c.edges {
				b.AddEdge(e...)
			}
			h := b.MustBuild()
			p := partition.New(len(c.weights))
			for v := range c.weights {
				if v < c.split {
					p.Assign(v, partition.Left)
				} else {
					p.Assign(v, partition.Right)
				}
			}
			moved, err := ToTarget(h, p, c.targetLeft, c.tol)
			if err != nil {
				t.Fatal(err)
			}
			rep, err := verify.Check(h, p)
			if err != nil {
				t.Fatalf("oracle rejected rebalanced partition: %v", err)
			}
			dist := rep.LeftWeight - c.targetLeft
			if dist < 0 {
				dist = -dist
			}
			if c.wantWithin && dist > c.tol {
				t.Errorf("left weight %d not within %d of target %d (moved %d)", rep.LeftWeight, c.tol, c.targetLeft, moved)
			}
			if !c.wantWithin && dist <= c.tol {
				t.Errorf("infeasible case unexpectedly reached target (left %d)", rep.LeftWeight)
			}
			if c.wantMoved >= 0 && moved != c.wantMoved {
				t.Errorf("moved %d vertices, want %d", moved, c.wantMoved)
			}
		})
	}
}

func TestToTargetNegativeTolerance(t *testing.T) {
	h, p := lopsided(t, 10)
	if _, err := ToTarget(h, p, 5, -1); !errors.Is(err, ErrNegativeTolerance) {
		t.Fatalf("ToTarget(-1) error = %v, want ErrNegativeTolerance", err)
	}
}

func TestEnforceAppliesFixedAndBalance(t *testing.T) {
	h, p := lopsided(t, 16)
	c := partition.Constraint{
		Epsilon:   0.25,
		FixedSide: []int8{0, -1, -1, 1}, // vertex 0 Left, vertex 3 Right
	}
	if err := Enforce(h, p, c); err != nil {
		t.Fatal(err)
	}
	if p.Side(0) != partition.Left || p.Side(3) != partition.Right {
		t.Fatalf("fixed vertices not respected: %v %v", p.Side(0), p.Side(3))
	}
	maxSide := c.MaxSideWeight(h.TotalVertexWeight(), 2)
	l, r := partition.SideWeights(h, p)
	if l > maxSide || r > maxSide {
		t.Fatalf("sides %d|%d exceed maxSide %d", l, r, maxSide)
	}
	if _, err := verify.Check(h, p); err != nil {
		t.Fatal(err)
	}
}

func TestEnforceZeroConstraintIsNoop(t *testing.T) {
	h, p := lopsided(t, 8)
	before := append([]partition.Side(nil), p.Sides()...)
	if err := Enforce(h, p, partition.Constraint{}); err != nil {
		t.Fatal(err)
	}
	for v, s := range before {
		if p.Side(v) != s {
			t.Fatalf("zero constraint moved vertex %d", v)
		}
	}
}

func TestEnforceInfeasibleFixedWeight(t *testing.T) {
	b := hypergraph.NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(2, 3)
	b.SetVertexWeight(0, 10) // total 13, maxSide(eps=0.1) = 7
	h := b.MustBuild()
	p := partition.New(4)
	p.Assign(0, partition.Left)
	for v := 1; v < 4; v++ {
		p.Assign(v, partition.Right)
	}
	c := partition.Constraint{Epsilon: 0.1, FixedSide: []int8{0, -1, -1, -1}}
	if err := Enforce(h, p, c); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("Enforce error = %v, want ErrInfeasible", err)
	}
}

func TestEnforceRepairsEmptySide(t *testing.T) {
	b := hypergraph.NewBuilder(5)
	b.AddEdge(0, 1, 2)
	b.AddEdge(2, 3, 4)
	h := b.MustBuild()
	p := partition.New(5)
	// All vertices Right; vertex 0 is the only Left-fixed one... but fix
	// nothing Left so ApplyFixed leaves Left empty.
	for v := 0; v < 5; v++ {
		p.Assign(v, partition.Left)
	}
	c := partition.Constraint{FixedSide: []int8{1, 1, -1, -1, -1}}
	if err := Enforce(h, p, c); err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(h); err != nil {
		t.Fatalf("Enforce left an invalid partition: %v", err)
	}
	if p.Side(0) != partition.Right || p.Side(1) != partition.Right {
		t.Fatal("fixed vertices not applied")
	}
}

func TestEnforceAllFixedOneSide(t *testing.T) {
	b := hypergraph.NewBuilder(3)
	b.AddEdge(0, 1, 2)
	h := b.MustBuild()
	p := partition.New(3)
	for v := 0; v < 3; v++ {
		p.Assign(v, partition.Left)
	}
	c := partition.Constraint{FixedSide: []int8{0, 0, 0}}
	if err := Enforce(h, p, c); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("Enforce error = %v, want ErrInfeasible", err)
	}
}
