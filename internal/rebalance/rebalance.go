// Package rebalance repairs the weight balance of a bipartition by
// greedily moving the cheapest vertices — those whose move hurts the
// cut least — from the heavy side until a target split is met. It is
// the glue that lets the unconstrained partitioners (notably
// Algorithm I, whose balance is only probabilistic) satisfy a hard
// r-bipartition constraint or the proportional targets of K-way
// recursive bisection.
package rebalance

import (
	"fmt"

	"fasthgp/internal/cutstate"
	"fasthgp/internal/hypergraph"
	"fasthgp/internal/partition"
)

// ToTarget moves vertices between the sides of p (in place) until the
// left-side weight lies within tolerance of targetLeft, always moving
// a vertex with the maximum cut gain (least cut damage) from the heavy
// side; vertex-count non-emptiness is preserved. It returns the number
// of vertices moved.
//
// The loop always terminates: each move strictly reduces the distance
// to the target or stops when no legal mover exists (e.g. a single
// giant module heavier than the tolerance straddles the target).
func ToTarget(h *hypergraph.Hypergraph, p *partition.Bipartition, targetLeft, tolerance int64) (int, error) {
	if err := p.Validate(h); err != nil {
		return 0, fmt.Errorf("rebalance: %w", err)
	}
	if tolerance < 0 {
		tolerance = 0
	}
	s, err := cutstate.New(h, p)
	if err != nil {
		return 0, fmt.Errorf("rebalance: %w", err)
	}
	moved := 0
	for {
		lw, _ := s.Weights()
		var from partition.Side
		var excess int64
		switch {
		case lw > targetLeft+tolerance:
			from, excess = partition.Left, lw-targetLeft
		case lw < targetLeft-tolerance:
			from, excess = partition.Right, targetLeft-lw
		default:
			return moved, nil
		}
		v := bestMover(h, s, from, excess)
		if v == -1 {
			return moved, nil // no legal move can improve the balance
		}
		s.Move(v)
		moved++
	}
}

// Bisect moves vertices until the weight split is as close to even as
// the tolerance allows.
func Bisect(h *hypergraph.Hypergraph, p *partition.Bipartition, tolerance int64) (int, error) {
	return ToTarget(h, p, h.TotalVertexWeight()/2, tolerance)
}

// bestMover selects the vertex on `from` with the highest cut gain
// whose move brings the balance strictly closer to target (weight at
// most 2×excess keeps us from overshooting into oscillation) and does
// not empty the side. Ties break toward heavier vertices (fewer moves)
// then lower index. Returns -1 when nothing qualifies.
func bestMover(h *hypergraph.Hypergraph, s *cutstate.State, from partition.Side, excess int64) int {
	l, r, _ := s.Partition().Counts()
	if (from == partition.Left && l <= 1) || (from == partition.Right && r <= 1) {
		return -1
	}
	best := -1
	bestGain := 0
	var bestW int64
	for v := 0; v < h.NumVertices(); v++ {
		if s.Side(v) != from {
			continue
		}
		w := h.VertexWeight(v)
		if w == 0 || w >= 2*excess {
			// Zero-weight moves make no balance progress; over-heavy
			// moves would overshoot past the starting distance.
			continue
		}
		g := s.Gain(v)
		if best == -1 || g > bestGain ||
			(g == bestGain && (w > bestW || (w == bestW && v < best))) {
			best, bestGain, bestW = v, g, w
		}
	}
	return best
}
