// Package rebalance repairs the weight balance of a bipartition by
// greedily moving the cheapest vertices — those whose move hurts the
// cut least — from the heavy side until a target split is met. It is
// the glue that lets the unconstrained partitioners (notably
// Algorithm I, whose balance is only probabilistic) satisfy a hard
// r-bipartition constraint or the proportional targets of K-way
// recursive bisection, and the single enforcement point for the
// unified partition.Constraint contract (ε bound + fixed vertices).
package rebalance

import (
	"errors"
	"fmt"

	"fasthgp/internal/cutstate"
	"fasthgp/internal/hypergraph"
	"fasthgp/internal/partition"
)

// ErrNegativeTolerance reports a caller-supplied tolerance below zero.
// Historically ToTarget silently clamped these to 0; a negative
// tolerance is always a bug at the call site, so it is now rejected.
var ErrNegativeTolerance = errors.New("rebalance: negative tolerance")

// ErrInfeasible reports that no sequence of legal moves can satisfy the
// requested constraint — e.g. the fixed vertices of one side already
// outweigh the ε bound, or a giant module straddles every admissible
// split.
var ErrInfeasible = errors.New("rebalance: constraint infeasible")

// ToTarget moves vertices between the sides of p (in place) until the
// left-side weight lies within tolerance of targetLeft, always moving
// a vertex with the maximum cut gain (least cut damage) from the heavy
// side; vertex-count non-emptiness is preserved. It returns the number
// of vertices moved.
//
// The loop always terminates: each move strictly reduces the distance
// to the target or stops when no legal mover exists (e.g. a single
// giant module heavier than the tolerance straddles the target).
func ToTarget(h *hypergraph.Hypergraph, p *partition.Bipartition, targetLeft, tolerance int64) (int, error) {
	return ToTargetFixed(h, p, targetLeft, tolerance, nil)
}

// ToTargetFixed is ToTarget with a lock vector: vertices whose fixed
// entry is ≥ 0 are never moved. A nil or short fixed slice leaves the
// remaining vertices movable.
func ToTargetFixed(h *hypergraph.Hypergraph, p *partition.Bipartition, targetLeft, tolerance int64, fixed []int8) (int, error) {
	if err := p.Validate(h); err != nil {
		return 0, fmt.Errorf("rebalance: %w", err)
	}
	if tolerance < 0 {
		return 0, fmt.Errorf("%w: %d", ErrNegativeTolerance, tolerance)
	}
	s, err := cutstate.New(h, p)
	if err != nil {
		return 0, fmt.Errorf("rebalance: %w", err)
	}
	moved := 0
	for {
		lw, _ := s.Weights()
		var from partition.Side
		var excess int64
		switch {
		case lw > targetLeft+tolerance:
			from, excess = partition.Left, lw-targetLeft
		case lw < targetLeft-tolerance:
			from, excess = partition.Right, targetLeft-lw
		default:
			return moved, nil
		}
		v := bestMover(h, s, from, excess, fixed)
		if v == -1 {
			return moved, nil // no legal move can improve the balance
		}
		s.Move(v)
		moved++
	}
}

// Bisect moves vertices until the weight split is as close to even as
// the tolerance allows.
func Bisect(h *hypergraph.Hypergraph, p *partition.Bipartition, tolerance int64) (int, error) {
	return ToTarget(h, p, h.TotalVertexWeight()/2, tolerance)
}

// Enforce makes p satisfy the constraint c in place: fixed vertices are
// forced onto their pinned sides, then the greedy repair moves free
// vertices off any side exceeding c's max side weight. It returns
// ErrInfeasible (wrapped with the reason) when the constraint is
// provably unsatisfiable or the repair stalls with a side still
// overweight. A zero constraint validates p and returns nil.
//
// Enforce may leave a side empty of vertices only when the fixed
// assignment itself demands it; otherwise it pulls a free vertex across
// to keep both sides populated, matching the library-wide invariant
// that a bipartition has two nonempty sides.
func Enforce(h *hypergraph.Hypergraph, p *partition.Bipartition, c partition.Constraint) error {
	if err := c.Validate(h.NumVertices(), 2); err != nil {
		return fmt.Errorf("rebalance: %w", err)
	}
	if len(p.Sides()) != h.NumVertices() {
		return fmt.Errorf("rebalance: partition covers %d vertices, hypergraph has %d", p.Len(), h.NumVertices())
	}
	if c.IsZero() {
		if err := p.Validate(h); err != nil {
			return fmt.Errorf("rebalance: %w", err)
		}
		return nil
	}
	if err := c.Infeasible(h); err != nil {
		return fmt.Errorf("%w: %v", ErrInfeasible, err)
	}
	c.ApplyFixed(p)
	if err := repairEmptySide(h, p, c); err != nil {
		return err
	}
	if !c.HasBalance() {
		return nil
	}
	total := h.TotalVertexWeight()
	maxSide := c.MaxSideWeight(total, 2)
	s, err := cutstate.New(h, p)
	if err != nil {
		return fmt.Errorf("rebalance: %w", err)
	}
	for {
		lw, rw := s.Weights()
		var from partition.Side
		switch {
		case lw > maxSide:
			from = partition.Left
		case rw > maxSide:
			from = partition.Right
		default:
			return nil
		}
		// A mover may weigh anything up to fromWeight − minSide: landing
		// anywhere inside the admissible band is fine, unlike ToTarget's
		// point target, but overshooting past the band would just push
		// the violation to the other side and oscillate.
		fromW := lw
		if from == partition.Right {
			fromW = rw
		}
		v := bestBandMover(h, s, from, fromW-(total-maxSide), c.FixedSide)
		if v == -1 {
			return fmt.Errorf("%w: side weight %d exceeds max %d and no free vertex can move", ErrInfeasible, fromW, maxSide)
		}
		s.Move(v)
	}
}

// bestBandMover selects the vertex on `from` with the highest cut gain
// among free vertices of positive weight at most maxW (so the move can
// not push the opposite side over the bound) that do not empty the
// side. Ties break toward heavier vertices then lower index.
func bestBandMover(h *hypergraph.Hypergraph, s *cutstate.State, from partition.Side, maxW int64, fixed []int8) int {
	l, r, _ := s.Partition().Counts()
	if (from == partition.Left && l <= 1) || (from == partition.Right && r <= 1) {
		return -1
	}
	best := -1
	bestGain := 0
	var bestW int64
	for v := 0; v < h.NumVertices(); v++ {
		if s.Side(v) != from {
			continue
		}
		if v < len(fixed) && fixed[v] >= 0 {
			continue
		}
		w := h.VertexWeight(v)
		if w == 0 || w > maxW {
			continue
		}
		g := s.Gain(v)
		if best == -1 || g > bestGain ||
			(g == bestGain && (w > bestW || (w == bestW && v < best))) {
			best, bestGain, bestW = v, g, w
		}
	}
	return best
}

// repairEmptySide pulls a free vertex onto an empty side so the
// two-nonempty-sides invariant survives ApplyFixed. When every vertex
// is fixed to one side there is nothing to move and the constraint is
// infeasible under the library's bipartition definition.
func repairEmptySide(h *hypergraph.Hypergraph, p *partition.Bipartition, c partition.Constraint) error {
	l, r, u := p.Counts()
	if u > 0 {
		return fmt.Errorf("rebalance: %d vertices unassigned", u)
	}
	if l > 0 && r > 0 {
		return nil
	}
	empty, other := partition.Left, partition.Right
	if r == 0 {
		empty, other = partition.Right, partition.Left
	}
	// Lightest free vertex on the populated side crosses over.
	best := -1
	var bestW int64
	for v := 0; v < h.NumVertices(); v++ {
		if c.Fixed(v) >= 0 || p.Side(v) != other {
			continue
		}
		w := h.VertexWeight(v)
		if best == -1 || w < bestW || (w == bestW && v < best) {
			best, bestW = v, w
		}
	}
	if best == -1 {
		return fmt.Errorf("%w: every vertex is fixed to one side", ErrInfeasible)
	}
	p.Assign(best, empty)
	return nil
}

// bestMover selects the vertex on `from` with the highest cut gain
// whose move brings the balance strictly closer to target (weight at
// most 2×excess keeps us from overshooting into oscillation) and does
// not empty the side. Vertices pinned by fixed are skipped. Ties break
// toward heavier vertices (fewer moves) then lower index. Returns -1
// when nothing qualifies.
func bestMover(h *hypergraph.Hypergraph, s *cutstate.State, from partition.Side, excess int64, fixed []int8) int {
	l, r, _ := s.Partition().Counts()
	if (from == partition.Left && l <= 1) || (from == partition.Right && r <= 1) {
		return -1
	}
	best := -1
	bestGain := 0
	var bestW int64
	for v := 0; v < h.NumVertices(); v++ {
		if s.Side(v) != from {
			continue
		}
		if v < len(fixed) && fixed[v] >= 0 {
			continue
		}
		w := h.VertexWeight(v)
		if w == 0 || w >= 2*excess {
			// Zero-weight moves make no balance progress; over-heavy
			// moves would overshoot past the starting distance.
			continue
		}
		g := s.Gain(v)
		if best == -1 || g > bestGain ||
			(g == bestGain && (w > bestW || (w == bestW && v < best))) {
			best, bestGain, bestW = v, g, w
		}
	}
	return best
}
