package maxflow

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"
)

// gridNetwork builds a dense k×k grid-of-cliques network with many
// augmenting paths, so MaxFlow needs plenty of augmentations.
func gridNetwork(k int, rng *rand.Rand) (g *Network, s, t int) {
	n := k * k
	g = New(n)
	at := func(r, c int) int { return r*k + c }
	for r := 0; r < k; r++ {
		for c := 0; c < k; c++ {
			if c+1 < k {
				cap := int64(1 + rng.Intn(8))
				g.AddArc(at(r, c), at(r, c+1), cap)
				g.AddArc(at(r, c+1), at(r, c), cap)
			}
			if r+1 < k {
				cap := int64(1 + rng.Intn(8))
				g.AddArc(at(r, c), at(r+1, c), cap)
				g.AddArc(at(r+1, c), at(r, c), cap)
			}
		}
	}
	return g, at(0, 0), at(k-1, k-1)
}

func TestMaxFlowCtxMatchesMaxFlow(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 5; trial++ {
		g1, s, tt := gridNetwork(8, rand.New(rand.NewSource(int64(trial))))
		g2, _, _ := gridNetwork(8, rand.New(rand.NewSource(int64(trial))))
		want := g1.MaxFlow(s, tt)
		got, err := g2.MaxFlowCtx(context.Background(), s, tt)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("trial %d: MaxFlowCtx = %d, MaxFlow = %d", trial, got, want)
		}
	}
	_ = rng
}

func TestMaxFlowCtxPreCancelled(t *testing.T) {
	g, s, tt := gridNetwork(8, rand.New(rand.NewSource(7)))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	t0 := time.Now()
	_, err := g.MaxFlowCtx(ctx, s, tt)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want Canceled", err)
	}
	if el := time.Since(t0); el > time.Second {
		t.Errorf("pre-cancelled solve took %v", el)
	}
}

func TestMaxFlowCtxDeadlineStopsBetweenAugmentations(t *testing.T) {
	// A deadline that has already passed when the first augmentation
	// check runs: the solve must abandon within one augmentation, not
	// push the whole flow.
	g, s, tt := gridNetwork(32, rand.New(rand.NewSource(3)))
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(time.Microsecond))
	defer cancel()
	time.Sleep(time.Millisecond)
	t0 := time.Now()
	_, err := g.MaxFlowCtx(ctx, s, tt)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if el := time.Since(t0); el > 2*time.Second {
		t.Errorf("expired solve took %v to notice", el)
	}
}
