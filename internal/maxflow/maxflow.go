// Package maxflow implements Dinic's maximum-flow algorithm on integer-
// capacity directed networks, with minimum s–t cut extraction. It is
// the engine behind the flow-based hypergraph bipartitioner
// (internal/flowpart), which reproduces the "network flow" family of
// methods the paper's introduction cites — accurate but O(n³)-ish and
// therefore "impractical for large problem instances".
package maxflow

import (
	"context"
	"fmt"
)

// Inf is the capacity used for uncuttable arcs.
const Inf int64 = 1 << 60

// Network is a directed flow network under construction and solving.
// Nodes are 0..n-1; arcs are added with AddArc (a reverse arc of
// capacity 0 is created automatically).
type Network struct {
	head  []int // per node: first arc index, -1 end
	next  []int // per arc
	to    []int
	cap   []int64
	level []int
	iter  []int
	aug   int64 // successful augmentations across all solves
}

// Augmentations returns the number of successful augmenting-path
// pushes performed so far. It is a deterministic work counter — a
// machine-independent proxy for flow effort used by the perf baseline.
func (g *Network) Augmentations() int64 { return g.aug }

// New returns a network with n nodes and no arcs.
func New(n int) *Network {
	h := make([]int, n)
	for i := range h {
		h[i] = -1
	}
	return &Network{head: h}
}

// NumNodes returns the node count.
func (g *Network) NumNodes() int { return len(g.head) }

// AddArc adds a directed arc u→v with the given capacity and returns
// its arc id (the paired reverse arc is id^1).
func (g *Network) AddArc(u, v int, capacity int64) int {
	if capacity < 0 {
		panic(fmt.Sprintf("maxflow: negative capacity %d", capacity))
	}
	id := len(g.to)
	g.to = append(g.to, v, u)
	g.cap = append(g.cap, capacity, 0)
	g.next = append(g.next, g.head[u], g.head[v])
	g.head[u] = id
	g.head[v] = id + 1
	return id
}

// bfs builds the level graph; returns false when t is unreachable.
func (g *Network) bfs(s, t int) bool {
	n := g.NumNodes()
	if g.level == nil {
		g.level = make([]int, n)
	}
	for i := range g.level {
		g.level[i] = -1
	}
	queue := make([]int, 0, n)
	g.level[s] = 0
	queue = append(queue, s)
	for h := 0; h < len(queue); h++ {
		u := queue[h]
		for a := g.head[u]; a != -1; a = g.next[a] {
			v := g.to[a]
			if g.cap[a] > 0 && g.level[v] == -1 {
				g.level[v] = g.level[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return g.level[t] != -1
}

// dfs sends blocking flow along the level graph.
func (g *Network) dfs(u, t int, f int64) int64 {
	if u == t {
		return f
	}
	for ; g.iter[u] != -1; g.iter[u] = g.next[g.iter[u]] {
		a := g.iter[u]
		v := g.to[a]
		if g.cap[a] <= 0 || g.level[v] != g.level[u]+1 {
			continue
		}
		d := f
		if g.cap[a] < d {
			d = g.cap[a]
		}
		got := g.dfs(v, t, d)
		if got > 0 {
			g.cap[a] -= got
			g.cap[a^1] += got
			return got
		}
	}
	return 0
}

// MaxFlow computes the maximum s→t flow, mutating residual capacities.
func (g *Network) MaxFlow(s, t int) int64 {
	total, _ := g.MaxFlowCtx(context.Background(), s, t)
	return total
}

// MaxFlowCtx is MaxFlow with cancellation: the context is polled
// between augmenting-path searches (each augmentation is one blocking-
// flow DFS, the natural preemption grain of Dinic's algorithm), so a
// solve under a deadline returns within one augmentation of it. On
// expiry it returns the flow pushed so far together with ctx's error;
// that partial flow does NOT certify a minimum cut, so callers must
// treat the error as "no result", not "smaller result".
func (g *Network) MaxFlowCtx(ctx context.Context, s, t int) (int64, error) {
	if s == t {
		return 0, nil
	}
	if g.iter == nil {
		g.iter = make([]int, g.NumNodes())
	}
	var total int64
	for {
		if err := ctx.Err(); err != nil {
			return total, err
		}
		if !g.bfs(s, t) {
			return total, nil
		}
		copy(g.iter, g.head)
		for {
			if err := ctx.Err(); err != nil {
				return total, err
			}
			f := g.dfs(s, t, Inf)
			if f == 0 {
				break
			}
			g.aug++
			total += f
		}
	}
}

// MinCutSourceSide returns, after MaxFlow, the set of nodes reachable
// from s in the residual network — the source side of a minimum cut.
func (g *Network) MinCutSourceSide(s int) []bool {
	n := g.NumNodes()
	side := make([]bool, n)
	queue := make([]int, 0, n)
	side[s] = true
	queue = append(queue, s)
	for h := 0; h < len(queue); h++ {
		u := queue[h]
		for a := g.head[u]; a != -1; a = g.next[a] {
			v := g.to[a]
			if g.cap[a] > 0 && !side[v] {
				side[v] = true
				queue = append(queue, v)
			}
		}
	}
	return side
}

// MinCutSinkSide returns, after MaxFlow, the set of nodes that can
// reach t in the residual network — the sink side of a (generally
// different) minimum cut. Its complement is the largest source side of
// any minimum cut, where MinCutSourceSide yields the smallest; a caller
// choosing between the two orientations picks whichever balances its
// partition better at the same cut value.
func (g *Network) MinCutSinkSide(t int) []bool {
	n := g.NumNodes()
	side := make([]bool, n)
	queue := make([]int, 0, n)
	side[t] = true
	queue = append(queue, t)
	for h := 0; h < len(queue); h++ {
		u := queue[h]
		// v reaches u through arc a^1 (the pair of u's arc a to v) when
		// that reverse arc still has residual capacity.
		for a := g.head[u]; a != -1; a = g.next[a] {
			v := g.to[a]
			if g.cap[a^1] > 0 && !side[v] {
				side[v] = true
				queue = append(queue, v)
			}
		}
	}
	return side
}
