package maxflow

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSingleArc(t *testing.T) {
	g := New(2)
	g.AddArc(0, 1, 7)
	if f := g.MaxFlow(0, 1); f != 7 {
		t.Errorf("flow = %d, want 7", f)
	}
	side := g.MinCutSourceSide(0)
	if !side[0] || side[1] {
		t.Errorf("cut side = %v", side)
	}
}

func TestSameSourceSink(t *testing.T) {
	g := New(2)
	g.AddArc(0, 1, 3)
	if f := g.MaxFlow(0, 0); f != 0 {
		t.Errorf("s==t flow = %d", f)
	}
}

func TestSeriesParallel(t *testing.T) {
	// Two parallel paths 0→1→3 (caps 3,4) and 0→2→3 (caps 5,2): max
	// flow = min(3,4) + min(5,2) = 5.
	g := New(4)
	g.AddArc(0, 1, 3)
	g.AddArc(1, 3, 4)
	g.AddArc(0, 2, 5)
	g.AddArc(2, 3, 2)
	if f := g.MaxFlow(0, 3); f != 5 {
		t.Errorf("flow = %d, want 5", f)
	}
}

func TestClassicCLRS(t *testing.T) {
	// The CLRS flow network with max flow 23.
	g := New(6)
	g.AddArc(0, 1, 16)
	g.AddArc(0, 2, 13)
	g.AddArc(1, 2, 10)
	g.AddArc(2, 1, 4)
	g.AddArc(1, 3, 12)
	g.AddArc(3, 2, 9)
	g.AddArc(2, 4, 14)
	g.AddArc(4, 3, 7)
	g.AddArc(3, 5, 20)
	g.AddArc(4, 5, 4)
	if f := g.MaxFlow(0, 5); f != 23 {
		t.Errorf("flow = %d, want 23", f)
	}
}

func TestDisconnected(t *testing.T) {
	g := New(4)
	g.AddArc(0, 1, 5)
	g.AddArc(2, 3, 5)
	if f := g.MaxFlow(0, 3); f != 0 {
		t.Errorf("flow across disconnection = %d", f)
	}
	side := g.MinCutSourceSide(0)
	if !side[0] || !side[1] || side[2] || side[3] {
		t.Errorf("side = %v", side)
	}
}

func TestNegativeCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on negative capacity")
		}
	}()
	New(2).AddArc(0, 1, -1)
}

// TestPropertyFlowEqualsCut: max-flow equals the capacity across the
// extracted minimum cut, and the cut separates s from t.
func TestPropertyFlowEqualsCut(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(10)
		g := New(n)
		type arc struct {
			u, v int
			c    int64
		}
		var arcs []arc
		for i := 0; i < 3*n; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			c := int64(rng.Intn(10))
			g.AddArc(u, v, c)
			arcs = append(arcs, arc{u, v, c})
		}
		s, tt := 0, n-1
		flow := g.MaxFlow(s, tt)
		side := g.MinCutSourceSide(s)
		if !side[s] || side[tt] {
			return false
		}
		var cut int64
		for _, a := range arcs {
			if side[a.u] && !side[a.v] {
				cut += a.c
			}
		}
		return cut == flow
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestAugmentationsCounter(t *testing.T) {
	g := New(4)
	g.AddArc(0, 1, 2)
	g.AddArc(0, 2, 2)
	g.AddArc(1, 3, 2)
	g.AddArc(2, 3, 2)
	if g.Augmentations() != 0 {
		t.Fatalf("fresh network has %d augmentations", g.Augmentations())
	}
	if f := g.MaxFlow(0, 3); f != 4 {
		t.Fatalf("flow = %d, want 4", f)
	}
	if a := g.Augmentations(); a < 1 || a > 4 {
		t.Fatalf("augmentations = %d, want within [1,4]", a)
	}
}
