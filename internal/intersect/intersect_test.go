package intersect

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"fasthgp/internal/hypergraph"
)

func mkHG(t *testing.T, n int, edges [][]int) *hypergraph.Hypergraph {
	t.Helper()
	h, err := hypergraph.FromEdges(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// TestFigure1Construction mirrors the paper's Figure 1: a hypergraph
// with 8 modules and 5 nets A–E and its intersection graph. Our
// reconstruction: A={1,2}, B={2,3,4}, C={4,5}, D={5,6,7}, E={7,8}
// (0-indexed below), whose intersection graph is the path A–B–C–D–E.
func TestFigure1Construction(t *testing.T) {
	h := mkHG(t, 8, [][]int{
		{0, 1},    // A
		{1, 2, 3}, // B
		{3, 4},    // C
		{4, 5, 6}, // D
		{6, 7},    // E
	})
	res := Build(h, Options{})
	g := res.G
	if g.NumVertices() != 5 {
		t.Fatalf("G vertices = %d, want 5", g.NumVertices())
	}
	wantEdges := [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}}
	if g.NumEdges() != len(wantEdges) {
		t.Fatalf("G edges = %d, want %d", g.NumEdges(), len(wantEdges))
	}
	for _, e := range wantEdges {
		if !g.HasEdge(e[0], e[1]) {
			t.Errorf("missing G edge %v", e)
		}
	}
	if g.HasEdge(0, 2) || g.HasEdge(0, 4) {
		t.Error("spurious adjacency between disjoint nets")
	}
	if len(res.Excluded) != 0 {
		t.Errorf("Excluded = %v, want none", res.Excluded)
	}
	if !reflect.DeepEqual(res.NetOf, []int{0, 1, 2, 3, 4}) {
		t.Errorf("NetOf = %v", res.NetOf)
	}
}

func TestSharedCliques(t *testing.T) {
	// Three nets all through module 0 ⇒ triangle in G.
	h := mkHG(t, 4, [][]int{{0, 1}, {0, 2}, {0, 3}})
	g := Build(h, Options{}).G
	if g.NumEdges() != 3 {
		t.Errorf("G edges = %d, want 3 (clique)", g.NumEdges())
	}
}

func TestNoDuplicateAdjacency(t *testing.T) {
	// Nets sharing two modules still yield a single G edge.
	h := mkHG(t, 3, [][]int{{0, 1}, {0, 1, 2}})
	g := Build(h, Options{}).G
	if g.NumEdges() != 1 {
		t.Errorf("G edges = %d, want 1", g.NumEdges())
	}
}

func TestThresholdFiltering(t *testing.T) {
	h := mkHG(t, 6, [][]int{
		{0, 1},             // small
		{0, 1, 2, 3, 4, 5}, // big (6 pins)
		{4, 5},             // small
	})
	res := Build(h, Options{Threshold: 5})
	if got := res.NumIncluded(); got != 2 {
		t.Fatalf("included = %d, want 2", got)
	}
	if !reflect.DeepEqual(res.Excluded, []int{1}) {
		t.Errorf("Excluded = %v, want [1]", res.Excluded)
	}
	if res.GVertexOf[1] != -1 {
		t.Errorf("GVertexOf[1] = %d, want -1", res.GVertexOf[1])
	}
	// Without the big net the two small nets are disjoint.
	if res.G.NumEdges() != 0 {
		t.Errorf("G edges = %d, want 0 after filtering", res.G.NumEdges())
	}
	// Threshold exactly at the size excludes (>= semantics).
	res2 := Build(h, Options{Threshold: 6})
	if len(res2.Excluded) != 1 {
		t.Errorf("threshold=6 Excluded = %v, want the 6-pin net", res2.Excluded)
	}
	res3 := Build(h, Options{Threshold: 7})
	if len(res3.Excluded) != 0 {
		t.Errorf("threshold=7 Excluded = %v, want none", res3.Excluded)
	}
}

func TestThresholdZeroKeepsAll(t *testing.T) {
	h := mkHG(t, 4, [][]int{{0, 1, 2, 3}})
	res := Build(h, Options{Threshold: 0})
	if len(res.Excluded) != 0 || res.NumIncluded() != 1 {
		t.Error("Threshold 0 should disable filtering")
	}
}

func TestSharedModule(t *testing.T) {
	h := mkHG(t, 5, [][]int{{0, 1, 2}, {2, 3}, {3, 4}})
	if got := SharedModule(h, 0, 1); got != 2 {
		t.Errorf("SharedModule(0,1) = %d, want 2", got)
	}
	if got := SharedModule(h, 0, 2); got != -1 {
		t.Errorf("SharedModule(0,2) = %d, want -1", got)
	}
	if got := SharedModule(h, 1, 2); got != 3 {
		t.Errorf("SharedModule(1,2) = %d, want 3", got)
	}
}

func randomHG(rng *rand.Rand, n, m, maxSize int) (*hypergraph.Hypergraph, error) {
	b := hypergraph.NewBuilder(n)
	for i := 0; i < m; i++ {
		size := 1 + rng.Intn(maxSize)
		pins := make([]int, size)
		for j := range pins {
			pins[j] = rng.Intn(n)
		}
		b.AddEdge(pins...)
	}
	return b.Build()
}

// TestPropertyAdjacencyIffShared: G has edge {i,j} iff the nets share a
// module — verified against the mergesort-style SharedModule oracle.
func TestPropertyAdjacencyIffShared(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(20)
		m := rng.Intn(15)
		h, err := randomHG(rng, n, m, 5)
		if err != nil {
			return false
		}
		res := Build(h, Options{})
		for i := 0; i < res.NumIncluded(); i++ {
			for j := i + 1; j < res.NumIncluded(); j++ {
				shared := SharedModule(h, res.NetOf[i], res.NetOf[j]) >= 0
				if res.G.HasEdge(i, j) != shared {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestPropertyThresholdConsistent: with a threshold, excluded nets are
// exactly those of size >= threshold, and mappings are inverse.
func TestPropertyThresholdConsistent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		m := rng.Intn(20)
		h, err := randomHG(rng, n, m, 8)
		if err != nil {
			return false
		}
		thr := 2 + rng.Intn(6)
		res := Build(h, Options{Threshold: thr})
		seen := 0
		for e := 0; e < h.NumEdges(); e++ {
			gi := res.GVertexOf[e]
			if h.EdgeSize(e) >= thr {
				if gi != -1 {
					return false
				}
				seen++
			} else {
				if gi < 0 || res.NetOf[gi] != e {
					return false
				}
			}
		}
		return seen == len(res.Excluded) &&
			res.NumIncluded()+len(res.Excluded) == h.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestEmptyHypergraph(t *testing.T) {
	h := mkHG(t, 3, nil)
	res := Build(h, Options{})
	if res.G.NumVertices() != 0 || res.G.NumEdges() != 0 {
		t.Error("intersection graph of edgeless hypergraph not empty")
	}
}
