package intersect

// Differential suite for the stamp-based Build: against BuildReference
// (the original clique-pair builder, kept as the oracle) the new
// builder must return a bit-identical Result — same CSR start/adj
// arrays, same NetOf/GVertexOf/Excluded down to nil-ness — on every
// instance family of the PR 2 verification suite and across the
// threshold range, plus a fuzz target asserting the CSR invariants
// directly.

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"fasthgp/internal/gen"
	"fasthgp/internal/hypergraph"
	"fasthgp/internal/verify"
)

// diffThresholds spans the interesting filter regimes: off, aggressive
// (most nets excluded), and the paper's recommended k = 10.
var diffThresholds = []int{0, 2, 3, 5, 10}

// checkIdentical asserts Build and BuildReference agree bit-for-bit on
// h under every threshold, and that Build's unchecked CSR satisfies the
// graph invariants.
func checkIdentical(t *testing.T, name string, h *hypergraph.Hypergraph) {
	t.Helper()
	for _, thr := range diffThresholds {
		opts := Options{Threshold: thr}
		got := Build(h, opts)
		want := BuildReference(h, opts)
		if err := got.G.ValidateCSR(); err != nil {
			t.Errorf("%s thr=%d: Build CSR invariant: %v", name, thr, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s thr=%d: Build differs from BuildReference\n got: NetOf=%v Excluded=%v G=%v\nwant: NetOf=%v Excluded=%v G=%v",
				name, thr, got.NetOf, got.Excluded, got.G, want.NetOf, want.Excluded, want.G)
		}
	}
}

// TestBuildDifferentialCurated covers the curated small-instance family
// (paths, cycles, stars, cliques, bridges, buses, pinned random and
// planted generator outputs).
func TestBuildDifferentialCurated(t *testing.T) {
	for _, inst := range verify.SmallInstances() {
		checkIdentical(t, inst.Name, inst.H)
	}
}

// TestBuildDifferentialExhaustive covers every labeled graph on four
// vertices — all 63 nonempty 2-uniform hypergraphs.
func TestBuildDifferentialExhaustive(t *testing.T) {
	for _, inst := range verify.ExhaustiveUniform(4, 2) {
		checkIdentical(t, inst.Name, inst.H)
	}
}

// TestBuildDifferentialPlanted covers the pinned planted-cut family.
func TestBuildDifferentialPlanted(t *testing.T) {
	for _, inst := range verify.PlantedInstances() {
		checkIdentical(t, inst.Name, inst.H)
	}
}

// TestBuildDifferentialGenerated stresses larger random and profile
// instances, including the dense unbounded-degree regime where the old
// builder's pair buffer is quadratic — exactly where a dedup bug in the
// stamp construction would show.
func TestBuildDifferentialGenerated(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  gen.RandomConfig
		n    int
		seed int64
	}{
		{"sparse-200", gen.RandomConfig{NumEdges: 300, MinEdgeSize: 2, MaxEdgeSize: 4}, 200, 1},
		{"dense-80", gen.RandomConfig{NumEdges: 400, MinEdgeSize: 2, MaxEdgeSize: 8}, 80, 2},
		{"hub-60", gen.RandomConfig{NumEdges: 240, MinEdgeSize: 2, MaxEdgeSize: 30}, 60, 3},
	} {
		rng := rand.New(rand.NewSource(tc.seed))
		h, err := gen.Random(tc.n, tc.cfg, rng)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		checkIdentical(t, tc.name, h)
	}
	for _, name := range []gen.Table2Name{gen.Bd1, gen.Diff1} {
		h, err := gen.Table2Instance(name, 42)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		checkIdentical(t, string(name), h)
	}
}

// fuzzHypergraphAndThreshold decodes data into a small hypergraph and a
// threshold, mirroring core's fuzz decoder: byte 0 picks n ∈ [2,12],
// byte 1 a threshold ∈ [0,5], then each edge is a size byte (2–4 pins)
// followed by that many pin bytes reduced mod n.
func fuzzHypergraphAndThreshold(data []byte) (*hypergraph.Hypergraph, int) {
	n := 2
	if len(data) > 0 {
		n += int(data[0] % 11)
	}
	thr := 0
	if len(data) > 1 {
		thr = int(data[1] % 6)
	}
	b := hypergraph.NewBuilder(n)
	i := 2
	for i < len(data) && b.NumEdges() < 64 {
		size := 2 + int(data[i]%3)
		i++
		seen := map[int]bool{}
		pins := make([]int, 0, size)
		for j := 0; j < size && i < len(data); j++ {
			p := int(data[i]) % n
			i++
			if !seen[p] {
				seen[p] = true
				pins = append(pins, p)
			}
		}
		if len(pins) >= 2 {
			b.AddEdge(pins...)
		}
	}
	if b.NumEdges() == 0 {
		b.AddEdge(0, 1)
	}
	return b.MustBuild(), thr
}

// FuzzIntersectBuild fuzzes the stamp-based builder against the CSR
// invariant oracle (rows sorted strictly ascending, no self-loops,
// symmetric) and differentially against BuildReference.
func FuzzIntersectBuild(f *testing.F) {
	f.Add([]byte{4, 0, 2, 0, 1, 2, 1, 2, 2, 2, 3})
	f.Add([]byte{10, 3, 3, 0, 1, 2, 3, 4, 5, 6, 2, 7, 8, 2, 8, 9})
	f.Add([]byte{0, 2})
	f.Add([]byte("arbitrary text also decodes"))
	prevFloor := minBuildShard
	minBuildShard = 1 // so tiny fuzz instances exercise the sharded passes
	f.Cleanup(func() { minBuildShard = prevFloor })
	f.Fuzz(func(t *testing.T, data []byte) {
		h, thr := fuzzHypergraphAndThreshold(data)
		opts := Options{Threshold: thr}
		got := Build(h, opts)
		if err := got.G.ValidateCSR(); err != nil {
			t.Fatalf("CSR invariant on %v thr=%d: %v", h, thr, err)
		}
		want := BuildReference(h, opts)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("Build differs from BuildReference on %v thr=%d:\n got %v\nwant %v",
				h, thr, fmt.Sprint(got), fmt.Sprint(want))
		}
		workers := 2 + len(data)%3
		sharded := Build(h, Options{Threshold: thr, Parallelism: workers})
		if !reflect.DeepEqual(sharded, want) {
			t.Fatalf("sharded Build (workers=%d) differs from BuildReference on %v thr=%d:\n got %v\nwant %v",
				workers, h, thr, fmt.Sprint(sharded), fmt.Sprint(want))
		}
	})
}
