package intersect

import (
	"fasthgp/internal/graph"
	"fasthgp/internal/hypergraph"
)

// BuildReference is the original per-module clique builder: for each
// module it emits every pair of its incident included nets into a
// graph.Builder pair buffer (duplicates included), which then sorts and
// deduplicates per vertex. It allocates Σ d·(d−1)/2 pair entries before
// producing the CSR and is kept solely as the differential oracle and
// benchmark baseline for the stamp-based Build; both must return
// bit-identical Results on every input.
func BuildReference(h *hypergraph.Hypergraph, opts Options) *Result {
	numEdges := h.NumEdges()
	res := &Result{GVertexOf: make([]int, numEdges)}
	include := make([]bool, numEdges)
	for e := 0; e < numEdges; e++ {
		if opts.Threshold > 0 && h.EdgeSize(e) >= opts.Threshold {
			res.GVertexOf[e] = -1
			res.Excluded = append(res.Excluded, e)
			continue
		}
		include[e] = true
		res.GVertexOf[e] = len(res.NetOf)
		res.NetOf = append(res.NetOf, e)
	}

	b := graph.NewBuilder(len(res.NetOf))
	for v := 0; v < h.NumVertices(); v++ {
		inc := h.VertexEdges(v)
		for i := 0; i < len(inc); i++ {
			ei := inc[i]
			if !include[ei] {
				continue
			}
			gi := res.GVertexOf[ei]
			for j := i + 1; j < len(inc); j++ {
				ej := inc[j]
				if !include[ej] {
					continue
				}
				b.AddEdge(gi, res.GVertexOf[ej])
			}
		}
	}
	g, err := b.Build()
	if err != nil {
		// All indices are internally generated; failure is a programming
		// error, not an input error.
		panic("intersect: invalid graph built: " + err.Error())
	}
	res.G = g
	return res
}
