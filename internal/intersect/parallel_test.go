package intersect

// Differential suite for the sharded builder: with Parallelism > 1 the
// Result must be reflect.DeepEqual-identical to the serial construction
// on every instance family, every threshold, and every worker count.
// minBuildShard is forced to 1 so even the tiny curated instances
// genuinely exercise the sharded passes.

import (
	"math/rand"
	"reflect"
	"runtime"
	"testing"

	"fasthgp/internal/gen"
	"fasthgp/internal/hypergraph"
	"fasthgp/internal/verify"
)

// forceSharding lowers the shard floor for the duration of a test so
// small instances take the parallel path, restoring it afterwards.
func forceSharding(t testing.TB) {
	t.Helper()
	prev := minBuildShard
	minBuildShard = 1
	t.Cleanup(func() { minBuildShard = prev })
}

var parallelWorkerCounts = []int{2, 3, 4, 8}

func checkShardedIdentical(t *testing.T, name string, h *hypergraph.Hypergraph) {
	t.Helper()
	for _, thr := range diffThresholds {
		want := Build(h, Options{Threshold: thr})
		for _, w := range parallelWorkerCounts {
			var stats BuildStats
			got := BuildCounted(h, Options{Threshold: thr, Parallelism: w}, &stats)
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%s thr=%d workers=%d: sharded Result differs from serial\n got: %v\nwant: %v",
					name, thr, w, got, want)
			}
			if stats.MaxShardArcs > stats.TotalArcs {
				t.Errorf("%s thr=%d workers=%d: shard stats inconsistent: %+v", name, thr, w, stats)
			}
		}
	}
}

func TestBuildShardedCurated(t *testing.T) {
	forceSharding(t)
	for _, inst := range verify.SmallInstances() {
		checkShardedIdentical(t, inst.Name, inst.H)
	}
}

func TestBuildShardedExhaustive(t *testing.T) {
	forceSharding(t)
	for _, inst := range verify.ExhaustiveUniform(4, 2) {
		checkShardedIdentical(t, inst.Name, inst.H)
	}
}

func TestBuildShardedGenerated(t *testing.T) {
	forceSharding(t)
	rng := rand.New(rand.NewSource(7))
	h, err := gen.Random(300, gen.RandomConfig{NumEdges: 900, MinEdgeSize: 2, MaxEdgeSize: 8}, rng)
	if err != nil {
		t.Fatal(err)
	}
	checkShardedIdentical(t, "random-300", h)
}

// TestBuildShardedProductionFloor exercises the sharded path with the
// production shard floor: a hypergraph large enough to shard without
// any test override.
func TestBuildShardedProductionFloor(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	h, err := gen.Random(400, gen.RandomConfig{NumEdges: 1200, MinEdgeSize: 2, MaxEdgeSize: 6}, rng)
	if err != nil {
		t.Fatal(err)
	}
	want := Build(h, Options{})
	var stats BuildStats
	got := BuildCounted(h, Options{Parallelism: 8}, &stats)
	if !reflect.DeepEqual(got, want) {
		t.Fatal("sharded Result differs from serial at production shard floor")
	}
	if stats.Shards < 2 {
		t.Fatalf("expected sharding to engage on 1200 nets, got %+v", stats)
	}
}

// TestBuildShardedStatsDeterministic pins that the blessed counters are
// pure functions of the input, run to run.
func TestBuildShardedStatsDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	h, err := gen.Random(200, gen.RandomConfig{NumEdges: 600, MinEdgeSize: 2, MaxEdgeSize: 5}, rng)
	if err != nil {
		t.Fatal(err)
	}
	var first BuildStats
	for trial := 0; trial < 3; trial++ {
		var stats BuildStats
		BuildCounted(h, Options{Parallelism: 4}, &stats)
		if trial == 0 {
			first = stats
			continue
		}
		if stats != first {
			t.Fatalf("stats vary across identical runs: %+v vs %+v", stats, first)
		}
	}
}

// TestBuildShardedOversubscribed floods the sharded passes with more
// workers than GOMAXPROCS; under -race this also proves the per-shard
// arrays and disjoint adj slots are race-free.
func TestBuildShardedOversubscribed(t *testing.T) {
	prev := runtime.GOMAXPROCS(2)
	defer runtime.GOMAXPROCS(prev)
	forceSharding(t)

	rng := rand.New(rand.NewSource(31))
	h, err := gen.Random(250, gen.RandomConfig{NumEdges: 800, MinEdgeSize: 2, MaxEdgeSize: 7}, rng)
	if err != nil {
		t.Fatal(err)
	}
	want := Build(h, Options{})
	got := Build(h, Options{Parallelism: 16})
	if !reflect.DeepEqual(got, want) {
		t.Fatal("oversubscribed sharded Result differs from serial")
	}
}
