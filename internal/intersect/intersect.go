// Package intersect builds the intersection graph G dual to a
// hypergraph H — the central construction of Kahng's fast hypergraph
// partitioner (DAC 1989, Section 2).
//
// G has one vertex per hyperedge (net) of H, and two vertices of G are
// adjacent exactly when the corresponding nets share at least one
// module. For each module of H its incident nets therefore form a
// clique in G; the builder merges these per-module cliques and
// deduplicates.
//
// Section 3 of the paper argues that nets larger than a small threshold
// (k ≥ 10 suffices) almost always cross the best partition anyway, so
// they can be excluded from G — which both speeds construction and, in
// practice, increases the diameter of G (sparser G ⇒ smaller boundary
// set). Options.Threshold implements that filtering; excluded nets are
// reported so callers can account for them when scoring the final cut.
//
// Build is the production constructor: a two-pass counting construction
// straight into CSR form. Pass one counts each G-vertex's deduplicated
// degree, pass two emits arcs directly into their final slots; both
// passes deduplicate with a per-net lastSeen stamp array instead of
// buffering the Σ d·(d−1)/2 per-module clique pairs, and emitting in
// ascending source order leaves every CSR row sorted without a single
// sort call. The only allocations are the output arrays themselves —
// working stamps come from a sync.Pool — and the Result is bit-
// identical to BuildReference's, which the differential suite enforces.
package intersect

import (
	"sync"

	"fasthgp/internal/graph"
	"fasthgp/internal/hypergraph"
)

// Options configures intersection-graph construction.
type Options struct {
	// Threshold excludes nets with Threshold or more pins from the
	// graph. Zero (or negative) means no filtering. The paper's
	// analysis supports thresholds as low as 10 with very small
	// expected cutsize error.
	Threshold int
	// Parallelism is the number of workers the two counting passes may
	// shard across. Values below 2 — and hypergraphs too small to
	// shard — run the serial construction. Any value produces a Result
	// bit-for-bit identical to the serial one; see BuildCounted.
	Parallelism int
}

// BuildStats reports how a construction executed. Every field is a pure
// function of (hypergraph, Options) — shard boundaries are work-
// balanced deterministically, never scheduled — so the perf harness can
// bless them as regression-gated counters.
type BuildStats struct {
	// Shards is how many contiguous source-vertex ranges the passes
	// split into (1 = serial construction).
	Shards int
	// TotalArcs is the number of candidate arcs walked per pass
	// (duplicates and filtered candidates included): the work measure
	// shards are balanced against.
	TotalArcs int
	// MaxShardArcs is the candidate-arc count of the heaviest shard.
	// TotalArcs/MaxShardArcs bounds the achievable pass speedup.
	MaxShardArcs int
}

// minBuildShard is the smallest per-shard net count worth a goroutine.
// A var, not a const, so the differential suite can force sharding on
// small instances.
var minBuildShard = 64

// buildShards picks the shard count for nG included nets: at most
// workers, no shard smaller than minBuildShard nets.
func buildShards(nG, workers int) int {
	if workers <= 1 {
		return 1
	}
	s := nG / minBuildShard
	if s > workers {
		s = workers
	}
	if s < 1 {
		s = 1
	}
	return s
}

// Result is an intersection graph together with the bookkeeping needed
// to map its vertices back to nets of the source hypergraph.
type Result struct {
	// G is the intersection graph. Its vertex i corresponds to net
	// NetOf[i] of the source hypergraph.
	G *graph.Graph
	// NetOf maps G-vertex index → hypergraph edge index.
	NetOf []int
	// GVertexOf maps hypergraph edge index → G-vertex index, or -1 for
	// nets excluded by the threshold.
	GVertexOf []int
	// Excluded lists the hypergraph edges excluded by the threshold,
	// ascending.
	Excluded []int
}

// NumIncluded returns the number of nets represented in G.
func (r *Result) NumIncluded() int { return len(r.NetOf) }

// buildScratch holds the per-net stamp and cursor arrays of one Build.
// Pooled: construction runs once per partitioning call, but daemon
// traffic makes that a steady drumbeat, and the arrays are O(nets).
type buildScratch struct {
	lastSeen []int
	cursor   []int
}

var buildPool = sync.Pool{New: func() any { return new(buildScratch) }}

// Build constructs the intersection graph of h under opts.
//
// Complexity: both passes walk, for every included net, the incident
// nets of each of its modules — O(pins · maxdeg) total, within the
// paper's O(n²) budget — and the peak transient memory is two O(nets)
// integer arrays, not the O(Σ d²) pair buffer of BuildReference.
func Build(h *hypergraph.Hypergraph, opts Options) *Result {
	return BuildCounted(h, opts, nil)
}

// BuildCounted is Build that additionally reports execution counters
// when stats is non-nil. With opts.Parallelism > 1 the two counting
// passes shard the source-vertex range across workers: each shard
// counts into a private per-worker count array with a private stamp
// array (pass 1), a serial prefix pass converts the per-shard counts
// into disjoint per-shard row cursors, and the shards then emit into
// non-overlapping adj slots (pass 2). Because shards are contiguous
// ascending source ranges and each row's shard segments are laid out in
// shard order, every CSR row still comes out as ascending sources — the
// Result is reflect.DeepEqual-identical to the serial construction for
// every input and worker count, which the differential suite enforces.
func BuildCounted(h *hypergraph.Hypergraph, opts Options, stats *BuildStats) *Result {
	numEdges := h.NumEdges()
	res := &Result{GVertexOf: make([]int, numEdges)}

	// Net filtering: one sizing pass so NetOf and Excluded are
	// allocated exactly (nil when empty, matching BuildReference).
	included := numEdges
	if opts.Threshold > 0 {
		included = 0
		for e := 0; e < numEdges; e++ {
			if h.EdgeSize(e) < opts.Threshold {
				included++
			}
		}
	}
	if included > 0 {
		res.NetOf = make([]int, 0, included)
	}
	if excluded := numEdges - included; excluded > 0 {
		res.Excluded = make([]int, 0, excluded)
	}
	for e := 0; e < numEdges; e++ {
		if opts.Threshold > 0 && h.EdgeSize(e) >= opts.Threshold {
			res.GVertexOf[e] = -1
			res.Excluded = append(res.Excluded, e)
			continue
		}
		res.GVertexOf[e] = len(res.NetOf)
		res.NetOf = append(res.NetOf, e)
	}

	nG := len(res.NetOf)
	if shards := buildShards(nG, opts.Parallelism); shards > 1 {
		buildSharded(h, res, nG, shards, stats)
		return res
	}
	if stats != nil {
		total := 0
		for _, e := range res.NetOf {
			for _, m := range h.EdgePins(e) {
				total += len(h.VertexEdges(m))
			}
		}
		*stats = BuildStats{Shards: 1, TotalArcs: total, MaxShardArcs: total}
	}
	sc := buildPool.Get().(*buildScratch)
	if cap(sc.lastSeen) < nG {
		sc.lastSeen = make([]int, nG)
		sc.cursor = make([]int, nG)
	}
	lastSeen := sc.lastSeen[:nG]
	clear(lastSeen) // stale stamps from a previous Build would alias

	// Pass 1 — counting. For source vertex src, every incident net of
	// every module of net NetOf[src] is a neighbor candidate; the stamp
	// src+1 marks candidates already counted for this src, so each
	// unordered pair contributes exactly one arc per direction.
	start := make([]int, nG+1)
	for src := 0; src < nG; src++ {
		stamp := src + 1
		for _, m := range h.EdgePins(res.NetOf[src]) {
			for _, e2 := range h.VertexEdges(m) {
				dst := res.GVertexOf[e2]
				if dst < 0 || dst == src || lastSeen[dst] == stamp {
					continue
				}
				lastSeen[dst] = stamp
				start[dst+1]++
			}
		}
	}
	for v := 0; v < nG; v++ {
		start[v+1] += start[v]
	}

	// Pass 2 — emission. Identical walk with negated stamps (so no
	// clear between passes); arc src→dst lands in row dst, and because
	// src ascends monotonically every row comes out sorted ascending —
	// the invariant graph.UncheckedCSR relies on.
	adj := make([]int, start[nG])
	cursor := sc.cursor[:nG]
	copy(cursor, start[:nG])
	for src := 0; src < nG; src++ {
		stamp := -(src + 1)
		for _, m := range h.EdgePins(res.NetOf[src]) {
			for _, e2 := range h.VertexEdges(m) {
				dst := res.GVertexOf[e2]
				if dst < 0 || dst == src || lastSeen[dst] == stamp {
					continue
				}
				lastSeen[dst] = stamp
				adj[cursor[dst]] = src
				cursor[dst]++
			}
		}
	}
	buildPool.Put(sc)

	res.G = graph.UncheckedCSR(start, adj)
	return res
}

// shardScratch holds the per-worker arrays of one sharded build: a
// stamp array and a count/cursor array per shard, plus the work-prefix
// and shard-boundary arrays. Pooled like buildScratch.
type shardScratch struct {
	lastSeen [][]int
	counts   [][]int
	work     []int
	bounds   []int
}

var shardPool = sync.Pool{New: func() any { return new(shardScratch) }}

// buildSharded runs the two counting passes across shards contiguous
// source ranges, filling res.G (and stats when non-nil). Workers only
// read the shared hypergraph and res.GVertexOf and only write their own
// shard's arrays (pass 1) or their own disjoint adj slots (pass 2), so
// the WaitGroup per pass is the entire synchronization story.
func buildSharded(h *hypergraph.Hypergraph, res *Result, nG, shards int, stats *BuildStats) {
	ps := shardPool.Get().(*shardScratch)
	defer shardPool.Put(ps)

	// Work prefix: candidate arcs per source, so shard boundaries track
	// actual walk work, not net counts — hub modules make the two very
	// different.
	if cap(ps.work) < nG+1 {
		ps.work = make([]int, nG+1)
	}
	work := ps.work[:nG+1]
	work[0] = 0
	for i, e := range res.NetOf {
		w := 0
		for _, m := range h.EdgePins(e) {
			w += len(h.VertexEdges(m))
		}
		work[i+1] = work[i] + w
	}
	total := work[nG]

	if cap(ps.bounds) < shards+1 {
		ps.bounds = make([]int, shards+1)
	}
	bounds := ps.bounds[:shards+1]
	bounds[0] = 0
	pos := 0
	for k := 1; k < shards; k++ {
		target := total * k / shards
		for pos < nG && work[pos+1] <= target {
			pos++
		}
		bounds[k] = pos
	}
	bounds[shards] = nG

	for len(ps.lastSeen) < shards {
		ps.lastSeen = append(ps.lastSeen, nil)
		ps.counts = append(ps.counts, nil)
	}

	// Pass 1 — per-shard counting. Stamps are src+1 with src global, so
	// they are unique across shards; each worker clears its pooled
	// arrays itself, keeping the clears parallel too.
	var wg sync.WaitGroup
	wg.Add(shards)
	for k := 0; k < shards; k++ {
		go func(k int) {
			defer wg.Done()
			ls, cn := ps.lastSeen[k], ps.counts[k]
			if cap(ls) < nG {
				ls = make([]int, nG)
				cn = make([]int, nG)
			} else {
				ls, cn = ls[:nG], cn[:nG]
			}
			clear(ls)
			clear(cn)
			for src := bounds[k]; src < bounds[k+1]; src++ {
				stamp := src + 1
				for _, m := range h.EdgePins(res.NetOf[src]) {
					for _, e2 := range h.VertexEdges(m) {
						dst := res.GVertexOf[e2]
						if dst < 0 || dst == src || ls[dst] == stamp {
							continue
						}
						ls[dst] = stamp
						cn[dst]++
					}
				}
			}
			ps.lastSeen[k], ps.counts[k] = ls, cn
		}(k)
	}
	wg.Wait()

	// Serial prefix over (row, shard): start[dst] is the row offset, and
	// each shard's count cell becomes that shard's write cursor into the
	// row. Shard order = ascending source order, so rows stay sorted.
	start := make([]int, nG+1)
	off := 0
	for dst := 0; dst < nG; dst++ {
		start[dst] = off
		for k := 0; k < shards; k++ {
			c := ps.counts[k][dst]
			ps.counts[k][dst] = off
			off += c
		}
	}
	start[nG] = off
	adj := make([]int, off)

	// Pass 2 — disjoint emission with negated stamps (no clear needed:
	// pass-1 positives and untouched zeros never equal -(src+1)).
	wg.Add(shards)
	for k := 0; k < shards; k++ {
		go func(k int) {
			defer wg.Done()
			ls, cn := ps.lastSeen[k], ps.counts[k]
			for src := bounds[k]; src < bounds[k+1]; src++ {
				stamp := -(src + 1)
				for _, m := range h.EdgePins(res.NetOf[src]) {
					for _, e2 := range h.VertexEdges(m) {
						dst := res.GVertexOf[e2]
						if dst < 0 || dst == src || ls[dst] == stamp {
							continue
						}
						ls[dst] = stamp
						adj[cn[dst]] = src
						cn[dst]++
					}
				}
			}
		}(k)
	}
	wg.Wait()

	if stats != nil {
		maxShard := 0
		for k := 0; k < shards; k++ {
			if w := work[bounds[k+1]] - work[bounds[k]]; w > maxShard {
				maxShard = w
			}
		}
		*stats = BuildStats{Shards: shards, TotalArcs: total, MaxShardArcs: maxShard}
	}
	res.G = graph.UncheckedCSR(start, adj)
}

// SharedModule returns a module shared by nets e1 and e2 of h, or -1
// when they are disjoint. Used by tests and diagnostics to certify
// adjacency in G.
func SharedModule(h *hypergraph.Hypergraph, e1, e2 int) int {
	p1, p2 := h.EdgePins(e1), h.EdgePins(e2)
	i, j := 0, 0
	for i < len(p1) && j < len(p2) {
		switch {
		case p1[i] == p2[j]:
			return p1[i]
		case p1[i] < p2[j]:
			i++
		default:
			j++
		}
	}
	return -1
}
