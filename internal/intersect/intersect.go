// Package intersect builds the intersection graph G dual to a
// hypergraph H — the central construction of Kahng's fast hypergraph
// partitioner (DAC 1989, Section 2).
//
// G has one vertex per hyperedge (net) of H, and two vertices of G are
// adjacent exactly when the corresponding nets share at least one
// module. For each module of H its incident nets therefore form a
// clique in G; the builder merges these per-module cliques and
// deduplicates.
//
// Section 3 of the paper argues that nets larger than a small threshold
// (k ≥ 10 suffices) almost always cross the best partition anyway, so
// they can be excluded from G — which both speeds construction and, in
// practice, increases the diameter of G (sparser G ⇒ smaller boundary
// set). Options.Threshold implements that filtering; excluded nets are
// reported so callers can account for them when scoring the final cut.
//
// Build is the production constructor: a two-pass counting construction
// straight into CSR form. Pass one counts each G-vertex's deduplicated
// degree, pass two emits arcs directly into their final slots; both
// passes deduplicate with a per-net lastSeen stamp array instead of
// buffering the Σ d·(d−1)/2 per-module clique pairs, and emitting in
// ascending source order leaves every CSR row sorted without a single
// sort call. The only allocations are the output arrays themselves —
// working stamps come from a sync.Pool — and the Result is bit-
// identical to BuildReference's, which the differential suite enforces.
package intersect

import (
	"sync"

	"fasthgp/internal/graph"
	"fasthgp/internal/hypergraph"
)

// Options configures intersection-graph construction.
type Options struct {
	// Threshold excludes nets with Threshold or more pins from the
	// graph. Zero (or negative) means no filtering. The paper's
	// analysis supports thresholds as low as 10 with very small
	// expected cutsize error.
	Threshold int
}

// Result is an intersection graph together with the bookkeeping needed
// to map its vertices back to nets of the source hypergraph.
type Result struct {
	// G is the intersection graph. Its vertex i corresponds to net
	// NetOf[i] of the source hypergraph.
	G *graph.Graph
	// NetOf maps G-vertex index → hypergraph edge index.
	NetOf []int
	// GVertexOf maps hypergraph edge index → G-vertex index, or -1 for
	// nets excluded by the threshold.
	GVertexOf []int
	// Excluded lists the hypergraph edges excluded by the threshold,
	// ascending.
	Excluded []int
}

// NumIncluded returns the number of nets represented in G.
func (r *Result) NumIncluded() int { return len(r.NetOf) }

// buildScratch holds the per-net stamp and cursor arrays of one Build.
// Pooled: construction runs once per partitioning call, but daemon
// traffic makes that a steady drumbeat, and the arrays are O(nets).
type buildScratch struct {
	lastSeen []int
	cursor   []int
}

var buildPool = sync.Pool{New: func() any { return new(buildScratch) }}

// Build constructs the intersection graph of h under opts.
//
// Complexity: both passes walk, for every included net, the incident
// nets of each of its modules — O(pins · maxdeg) total, within the
// paper's O(n²) budget — and the peak transient memory is two O(nets)
// integer arrays, not the O(Σ d²) pair buffer of BuildReference.
func Build(h *hypergraph.Hypergraph, opts Options) *Result {
	numEdges := h.NumEdges()
	res := &Result{GVertexOf: make([]int, numEdges)}

	// Net filtering: one sizing pass so NetOf and Excluded are
	// allocated exactly (nil when empty, matching BuildReference).
	included := numEdges
	if opts.Threshold > 0 {
		included = 0
		for e := 0; e < numEdges; e++ {
			if h.EdgeSize(e) < opts.Threshold {
				included++
			}
		}
	}
	if included > 0 {
		res.NetOf = make([]int, 0, included)
	}
	if excluded := numEdges - included; excluded > 0 {
		res.Excluded = make([]int, 0, excluded)
	}
	for e := 0; e < numEdges; e++ {
		if opts.Threshold > 0 && h.EdgeSize(e) >= opts.Threshold {
			res.GVertexOf[e] = -1
			res.Excluded = append(res.Excluded, e)
			continue
		}
		res.GVertexOf[e] = len(res.NetOf)
		res.NetOf = append(res.NetOf, e)
	}

	nG := len(res.NetOf)
	sc := buildPool.Get().(*buildScratch)
	if cap(sc.lastSeen) < nG {
		sc.lastSeen = make([]int, nG)
		sc.cursor = make([]int, nG)
	}
	lastSeen := sc.lastSeen[:nG]
	clear(lastSeen) // stale stamps from a previous Build would alias

	// Pass 1 — counting. For source vertex src, every incident net of
	// every module of net NetOf[src] is a neighbor candidate; the stamp
	// src+1 marks candidates already counted for this src, so each
	// unordered pair contributes exactly one arc per direction.
	start := make([]int, nG+1)
	for src := 0; src < nG; src++ {
		stamp := src + 1
		for _, m := range h.EdgePins(res.NetOf[src]) {
			for _, e2 := range h.VertexEdges(m) {
				dst := res.GVertexOf[e2]
				if dst < 0 || dst == src || lastSeen[dst] == stamp {
					continue
				}
				lastSeen[dst] = stamp
				start[dst+1]++
			}
		}
	}
	for v := 0; v < nG; v++ {
		start[v+1] += start[v]
	}

	// Pass 2 — emission. Identical walk with negated stamps (so no
	// clear between passes); arc src→dst lands in row dst, and because
	// src ascends monotonically every row comes out sorted ascending —
	// the invariant graph.UncheckedCSR relies on.
	adj := make([]int, start[nG])
	cursor := sc.cursor[:nG]
	copy(cursor, start[:nG])
	for src := 0; src < nG; src++ {
		stamp := -(src + 1)
		for _, m := range h.EdgePins(res.NetOf[src]) {
			for _, e2 := range h.VertexEdges(m) {
				dst := res.GVertexOf[e2]
				if dst < 0 || dst == src || lastSeen[dst] == stamp {
					continue
				}
				lastSeen[dst] = stamp
				adj[cursor[dst]] = src
				cursor[dst]++
			}
		}
	}
	buildPool.Put(sc)

	res.G = graph.UncheckedCSR(start, adj)
	return res
}

// SharedModule returns a module shared by nets e1 and e2 of h, or -1
// when they are disjoint. Used by tests and diagnostics to certify
// adjacency in G.
func SharedModule(h *hypergraph.Hypergraph, e1, e2 int) int {
	p1, p2 := h.EdgePins(e1), h.EdgePins(e2)
	i, j := 0, 0
	for i < len(p1) && j < len(p2) {
		switch {
		case p1[i] == p2[j]:
			return p1[i]
		case p1[i] < p2[j]:
			i++
		default:
			j++
		}
	}
	return -1
}
