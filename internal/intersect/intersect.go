// Package intersect builds the intersection graph G dual to a
// hypergraph H — the central construction of Kahng's fast hypergraph
// partitioner (DAC 1989, Section 2).
//
// G has one vertex per hyperedge (net) of H, and two vertices of G are
// adjacent exactly when the corresponding nets share at least one
// module. For each module of H its incident nets therefore form a
// clique in G; the builder merges these per-module cliques and
// deduplicates.
//
// Section 3 of the paper argues that nets larger than a small threshold
// (k ≥ 10 suffices) almost always cross the best partition anyway, so
// they can be excluded from G — which both speeds construction and, in
// practice, increases the diameter of G (sparser G ⇒ smaller boundary
// set). Options.Threshold implements that filtering; excluded nets are
// reported so callers can account for them when scoring the final cut.
package intersect

import (
	"fasthgp/internal/graph"
	"fasthgp/internal/hypergraph"
)

// Options configures intersection-graph construction.
type Options struct {
	// Threshold excludes nets with Threshold or more pins from the
	// graph. Zero (or negative) means no filtering. The paper's
	// analysis supports thresholds as low as 10 with very small
	// expected cutsize error.
	Threshold int
}

// Result is an intersection graph together with the bookkeeping needed
// to map its vertices back to nets of the source hypergraph.
type Result struct {
	// G is the intersection graph. Its vertex i corresponds to net
	// NetOf[i] of the source hypergraph.
	G *graph.Graph
	// NetOf maps G-vertex index → hypergraph edge index.
	NetOf []int
	// GVertexOf maps hypergraph edge index → G-vertex index, or -1 for
	// nets excluded by the threshold.
	GVertexOf []int
	// Excluded lists the hypergraph edges excluded by the threshold,
	// ascending.
	Excluded []int
}

// NumIncluded returns the number of nets represented in G.
func (r *Result) NumIncluded() int { return len(r.NetOf) }

// Build constructs the intersection graph of h under opts.
//
// Complexity: for each module of degree d it emits d·(d−1)/2 candidate
// edges; with the bounded module degree of circuit netlists this is
// O(pins · maxdeg), within the paper's O(n²) budget.
func Build(h *hypergraph.Hypergraph, opts Options) *Result {
	numEdges := h.NumEdges()
	res := &Result{GVertexOf: make([]int, numEdges)}
	include := make([]bool, numEdges)
	for e := 0; e < numEdges; e++ {
		if opts.Threshold > 0 && h.EdgeSize(e) >= opts.Threshold {
			res.GVertexOf[e] = -1
			res.Excluded = append(res.Excluded, e)
			continue
		}
		include[e] = true
		res.GVertexOf[e] = len(res.NetOf)
		res.NetOf = append(res.NetOf, e)
	}

	b := graph.NewBuilder(len(res.NetOf))
	for v := 0; v < h.NumVertices(); v++ {
		inc := h.VertexEdges(v)
		for i := 0; i < len(inc); i++ {
			ei := inc[i]
			if !include[ei] {
				continue
			}
			gi := res.GVertexOf[ei]
			for j := i + 1; j < len(inc); j++ {
				ej := inc[j]
				if !include[ej] {
					continue
				}
				b.AddEdge(gi, res.GVertexOf[ej])
			}
		}
	}
	g, err := b.Build()
	if err != nil {
		// All indices are internally generated; failure is a programming
		// error, not an input error.
		panic("intersect: invalid graph built: " + err.Error())
	}
	res.G = g
	return res
}

// SharedModule returns a module shared by nets e1 and e2 of h, or -1
// when they are disjoint. Used by tests and diagnostics to certify
// adjacency in G.
func SharedModule(h *hypergraph.Hypergraph, e1, e2 int) int {
	p1, p2 := h.EdgePins(e1), h.EdgePins(e2)
	i, j := 0, 0
	for i < len(p1) && j < len(p2) {
		switch {
		case p1[i] == p2[j]:
			return p1[i]
		case p1[i] < p2[j]:
			i++
		default:
			j++
		}
	}
	return -1
}
