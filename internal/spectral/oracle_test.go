package spectral

// Oracle wiring: see internal/verify — every partitioner's result must
// survive the full invariant recheck, not just report a cutsize.

import (
	"testing"

	"fasthgp/internal/verify"
)

func TestOracleOnSmallInstances(t *testing.T) {
	for _, inst := range verify.SmallInstances() {
		res, err := Bisect(inst.H, Options{Starts: 2, Seed: 5})
		if err != nil {
			t.Fatalf("%s: %v", inst.Name, err)
		}
		if _, err := verify.CheckCut(inst.H, res.Partition, res.CutSize); err != nil {
			t.Errorf("%s: %v", inst.Name, err)
		}
	}
}
