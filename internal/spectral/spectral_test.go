package spectral

import (
	"math/rand"
	"testing"

	"fasthgp/internal/bruteforce"
	"fasthgp/internal/gen"
	"fasthgp/internal/hypergraph"
	"fasthgp/internal/partition"
)

func mkHG(t *testing.T, n int, edges [][]int) *hypergraph.Hypergraph {
	t.Helper()
	h, err := hypergraph.FromEdges(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestErrorTooSmall(t *testing.T) {
	h := mkHG(t, 1, [][]int{{0}})
	if _, err := Bisect(h, Options{}); err == nil {
		t.Error("accepted 1-vertex hypergraph")
	}
}

func TestBarbell(t *testing.T) {
	// Two triangles and a bridge: the Fiedler sweep must find cut 1.
	h := mkHG(t, 6, [][]int{
		{0, 1}, {1, 2}, {0, 2},
		{3, 4}, {4, 5}, {3, 5},
		{2, 3},
	})
	res, err := Bisect(h, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.CutSize != 1 {
		t.Errorf("cut = %d, want 1", res.CutSize)
	}
	if err := res.Partition.Validate(h); err != nil {
		t.Fatal(err)
	}
	if got := partition.CutSize(h, res.Partition); got != res.CutSize {
		t.Errorf("reported %d != recomputed %d", res.CutSize, got)
	}
	// The triangles must not be split.
	if res.Partition.Side(0) != res.Partition.Side(1) || res.Partition.Side(1) != res.Partition.Side(2) {
		t.Errorf("left triangle split: %v", res.Partition.Sides())
	}
}

func TestFiedlerSeparatesClusters(t *testing.T) {
	h := mkHG(t, 8, [][]int{
		{0, 1}, {1, 2}, {2, 3}, {0, 3}, {0, 2},
		{4, 5}, {5, 6}, {6, 7}, {4, 7}, {5, 7},
		{3, 4},
	})
	res, err := Bisect(h, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// All cluster-0 Fiedler values on one side of all cluster-1 values.
	maxA, minB := -1e18, 1e18
	for v := 0; v < 4; v++ {
		if res.Fiedler[v] > maxA {
			maxA = res.Fiedler[v]
		}
	}
	for v := 4; v < 8; v++ {
		if res.Fiedler[v] < minB {
			minB = res.Fiedler[v]
		}
	}
	separated := maxA < minB
	// Sign is arbitrary; accept either orientation.
	if !separated {
		minA, maxB := 1e18, -1e18
		for v := 0; v < 4; v++ {
			if res.Fiedler[v] < minA {
				minA = res.Fiedler[v]
			}
		}
		for v := 4; v < 8; v++ {
			if res.Fiedler[v] > maxB {
				maxB = res.Fiedler[v]
			}
		}
		separated = maxB < minA
	}
	if !separated {
		t.Errorf("Fiedler coordinates do not separate the clusters: %v", res.Fiedler)
	}
}

func TestMatchesBruteForceOnSmall(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 10; trial++ {
		n := 6 + rng.Intn(5)
		b := hypergraph.NewBuilder(n)
		for i := 0; i < 3*n/2; i++ {
			b.AddEdge(rng.Intn(n), rng.Intn(n), rng.Intn(n))
		}
		h := b.MustBuild()
		res, err := Bisect(h, Options{Seed: int64(trial), BalanceFraction: 0.5})
		if err != nil {
			t.Fatal(err)
		}
		_, opt, err := bruteforce.MinCutUnconstrained(h)
		if err != nil {
			t.Fatal(err)
		}
		if res.CutSize < opt {
			t.Fatalf("trial %d: spectral cut %d below exact optimum %d", trial, res.CutSize, opt)
		}
	}
}

func TestBalanceWindowRespected(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	h, err := gen.Profile(gen.ProfileConfig{Modules: 200, Signals: 400, Technology: gen.StdCell}, rng)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Bisect(h, Options{Seed: 1, BalanceFraction: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	lw, rw := partition.SideWeights(h, res.Partition)
	minSide := int64(0.4 * float64(h.TotalVertexWeight()))
	if lw < minSide || rw < minSide {
		t.Errorf("balance window violated: %d | %d (min %d)", lw, rw, minSide)
	}
}

func TestLargeNetsSkippedButCounted(t *testing.T) {
	// One giant net over everything plus a bridge structure: the giant
	// is excluded from the clique expansion (MaxCliqueSize) but still
	// appears in the final cutsize.
	b := hypergraph.NewBuilder(10)
	for i := 0; i+1 < 5; i++ {
		b.AddEdge(i, i+1)
		b.AddEdge(5+i, 5+i+1)
	}
	b.AddEdge(0, 5)
	all := make([]int, 10)
	for i := range all {
		all[i] = i
	}
	b.AddEdge(all...)
	h := b.MustBuild()
	res, err := Bisect(h, Options{Seed: 1, MaxCliqueSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.CutSize != 2 {
		t.Errorf("cut = %d, want 2 (bridge + giant)", res.CutSize)
	}
}

func TestEdgelessFallsBack(t *testing.T) {
	h := mkHG(t, 4, nil)
	res, err := Bisect(h, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Partition.Validate(h); err != nil {
		t.Fatal(err)
	}
	if res.CutSize != 0 {
		t.Errorf("cut = %d on edgeless input", res.CutSize)
	}
}

func TestDeterministicPerSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	h, err := gen.Profile(gen.ProfileConfig{Modules: 100, Signals: 200, Technology: gen.GateArray}, rng)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Bisect(h, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Bisect(h, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if a.CutSize != b.CutSize || a.Iterations != b.Iterations {
		t.Error("same seed gave different results")
	}
}
