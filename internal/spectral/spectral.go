// Package spectral implements spectral hypergraph bipartitioning — the
// "graph space" / eigenvector family of methods the paper's
// introduction cites (Fukunaga et al., reference [11]) among the
// accurate-but-expensive alternatives to combinatorial heuristics.
//
// The hypergraph is mapped to a weighted graph by clique expansion
// (each net of size k contributes weight w(e)/(k−1) between every pin
// pair, so a cut net contributes ~w(e) regardless of size), the Fiedler
// vector of the graph Laplacian is computed by shifted power iteration
// with deflation, and the final cut is the best prefix of the vertices
// sorted by their Fiedler coordinate (a "sweep cut"), evaluated on the
// true hypergraph cutsize under a balance window.
package spectral

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"fasthgp/internal/checkpoint"
	"fasthgp/internal/cutstate"
	"fasthgp/internal/engine"
	"fasthgp/internal/hypergraph"
	"fasthgp/internal/partition"
	"fasthgp/internal/rebalance"
)

// Options configures Bisect.
type Options struct {
	// Starts is the number of independent random starting vectors for
	// the power iteration; the best sweep cut wins (default 1). Extra
	// starts guard against unlucky initial vectors that are nearly
	// orthogonal to the Fiedler direction.
	Starts int
	// Iterations bounds the power iterations (default 300).
	Iterations int
	// Tolerance stops iteration when the vector movement drops below
	// it (default 1e-7).
	Tolerance float64
	// BalanceFraction restricts the sweep to prefixes whose smaller
	// side holds at least (0.5 − BalanceFraction) of the total weight
	// (default 0.25; use 0.5 for unconstrained sweeps).
	BalanceFraction float64
	// MaxCliqueSize skips clique expansion of nets above this size
	// (default 50); such nets still count in the final cut evaluation.
	MaxCliqueSize int
	// Seed makes the initial vectors deterministic; each start draws
	// from its own stream, so results are independent of Parallelism.
	Seed int64
	// Parallelism is the number of workers running starts concurrently;
	// values < 1 mean GOMAXPROCS. Wall time only, never the result.
	Parallelism int
	// Constraint is the unified balance contract: fixed vertices are
	// pre-assigned and the sweep only moves free vertices along the
	// Fiedler order; when an ε bound is present the admissible window
	// derives from Constraint.MaxSideWeight. The zero value preserves
	// historical behavior exactly.
	Constraint partition.Constraint
	// Checkpoint, when non-nil, journals every completed start into its
	// sink and resumes from its recovered state — see internal/checkpoint.
	// The resumed partition and cut are identical to an uninterrupted
	// run's; the Fiedler vector is not journaled, so Result.Fiedler is
	// nil when the winning start was resumed rather than re-executed.
	Checkpoint *engine.CheckpointIO
}

func (o *Options) defaults() {
	if o.Iterations <= 0 {
		o.Iterations = 300
	}
	if o.Tolerance <= 0 {
		o.Tolerance = 1e-7
	}
	if o.BalanceFraction <= 0 {
		o.BalanceFraction = 0.25
	}
	if o.MaxCliqueSize <= 0 {
		o.MaxCliqueSize = 50
	}
}

// Result is the spectral outcome.
type Result struct {
	// Partition is the sweep-cut bipartition.
	Partition *partition.Bipartition
	// CutSize is its hypergraph cutsize.
	CutSize int
	// Fiedler is the computed Fiedler coordinate per vertex.
	Fiedler []float64
	// Iterations actually run (in the winning start, under
	// multi-start).
	Iterations int
	// Engine reports the multi-start execution (starts run, winning
	// start, per-start cuts, wall/CPU time).
	Engine engine.Stats
}

// arc is one weighted adjacency entry of the clique expansion.
type arc struct {
	to int
	w  float64
}

// Bisect spectrally bipartitions h.
func Bisect(h *hypergraph.Hypergraph, opts Options) (*Result, error) {
	return BisectCtx(context.Background(), h, opts)
}

// BisectCtx is Bisect with cancellation: the power iteration polls ctx
// every iteration and sweeps whatever vector it has when ctx expires;
// the engine returns the best completed start (start 0 always runs).
// The clique expansion is built once and shared read-only by all
// starts.
func BisectCtx(ctx context.Context, h *hypergraph.Hypergraph, opts Options) (*Result, error) {
	n := h.NumVertices()
	if n < 2 {
		return nil, fmt.Errorf("spectral: hypergraph has %d vertices; need at least 2", n)
	}
	opts.defaults()

	adj, deg := cliqueExpand(h, opts.MaxCliqueSize)
	best, es, err := engine.Run(ctx, engine.Spec[*Result]{
		Name:        "spectral",
		Starts:      opts.Starts,
		Parallelism: opts.Parallelism,
		Seed:        opts.Seed,
		Run: func(ctx context.Context, _ int, rng *rand.Rand, _ *engine.Scratch) (*Result, error) {
			return bisectOnce(ctx, h, adj, deg, opts, rng), nil
		},
		Better: func(a, b *Result) bool {
			if a.CutSize != b.CutSize {
				return a.CutSize < b.CutSize
			}
			return partition.Imbalance(h, a.Partition) < partition.Imbalance(h, b.Partition)
		},
		Cut: func(r *Result) int { return r.CutSize },
		Checkpoint: engine.BindCheckpoint(opts.Checkpoint,
			func(r *Result) []byte {
				return checkpoint.EncodeBest(r.Partition.Sides(), r.CutSize, int64(r.Iterations))
			},
			func(b []byte) (*Result, error) {
				p, cut, aux, err := checkpoint.DecodeBestFor(h, b, 1)
				if err != nil {
					return nil, fmt.Errorf("spectral: %w", err)
				}
				return &Result{Partition: p, CutSize: cut, Iterations: int(aux[0])}, nil
			}),
	})
	if err != nil {
		return nil, err
	}
	best.Engine = es
	return best, nil
}

// cliqueExpand maps the hypergraph to a weighted graph: each net of
// size k ≤ maxCliqueSize contributes weight w(e)/(k−1) between every
// pin pair.
func cliqueExpand(h *hypergraph.Hypergraph, maxCliqueSize int) (adj [][]arc, deg []float64) {
	n := h.NumVertices()
	adj = make([][]arc, n)
	deg = make([]float64, n) // weighted degree
	for e := 0; e < h.NumEdges(); e++ {
		pins := h.EdgePins(e)
		k := len(pins)
		if k < 2 || k > maxCliqueSize {
			continue
		}
		w := float64(h.EdgeWeight(e)) / float64(k-1)
		for i := 0; i < k; i++ {
			for j := i + 1; j < k; j++ {
				adj[pins[i]] = append(adj[pins[i]], arc{pins[j], w})
				adj[pins[j]] = append(adj[pins[j]], arc{pins[i], w})
				deg[pins[i]] += w
				deg[pins[j]] += w
			}
		}
	}
	return adj, deg
}

// bisectOnce runs one spectral start: power-iterate from a random
// vector drawn from rng, then sweep-cut the resulting coordinates.
func bisectOnce(ctx context.Context, h *hypergraph.Hypergraph, adj [][]arc, deg []float64, opts Options, rng *rand.Rand) *Result {
	n := h.NumVertices()
	// Shifted power iteration on M = cI − L, c = 1 + max weighted
	// degree ⇒ the dominant eigenvector of M not proportional to the
	// all-ones vector is the Fiedler vector of L.
	c := 1.0
	for _, d := range deg {
		if 2*d+1 > c {
			c = 2*d + 1
		}
	}
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.Float64() - 0.5
	}
	y := make([]float64, n)
	ones := 1 / math.Sqrt(float64(n))
	iters := 0
	for ; iters < opts.Iterations && ctx.Err() == nil; iters++ {
		// y = (cI − L)x = (c − deg)·x + A·x
		for i := 0; i < n; i++ {
			y[i] = (c - deg[i]) * x[i]
		}
		for i := 0; i < n; i++ {
			for _, a := range adj[i] {
				y[a.to] += a.w * x[i]
			}
		}
		// Deflate the all-ones eigenvector and normalize.
		dot := 0.0
		for i := 0; i < n; i++ {
			dot += y[i] * ones
		}
		norm := 0.0
		for i := 0; i < n; i++ {
			y[i] -= dot * ones
			norm += y[i] * y[i]
		}
		norm = math.Sqrt(norm)
		if norm == 0 {
			// Degenerate (e.g. edgeless) input: keep the random vector.
			break
		}
		moved := 0.0
		for i := 0; i < n; i++ {
			y[i] /= norm
			d := y[i] - x[i]
			if d < 0 {
				d = -d
			}
			if d > moved {
				moved = d
			}
		}
		x, y = y, x
		if moved < opts.Tolerance {
			iters++
			break
		}
	}

	var p *partition.Bipartition
	var cut int
	if opts.Constraint.IsZero() {
		p, cut = sweepCut(h, x, opts.BalanceFraction)
	} else {
		p, cut = sweepCutConstrained(h, x, opts.Constraint)
	}
	return &Result{Partition: p, CutSize: cut, Fiedler: x, Iterations: iters}
}

// sweepCutConstrained is sweepCut projected around the constraint's
// locked cells: fixed vertices start (and stay) on their pinned sides,
// only free vertices travel Left along the Fiedler order, and a prefix
// is admissible when both side weights respect the ε bound (or, absent
// one, when both sides are nonempty). The result is hard-enforced
// against the contract before returning.
func sweepCutConstrained(h *hypergraph.Hypergraph, fiedler []float64, c partition.Constraint) (*partition.Bipartition, int) {
	n := h.NumVertices()
	free := make([]int, 0, n)
	for v := 0; v < n; v++ {
		if c.Fixed(v) < 0 {
			free = append(free, v)
		}
	}
	sort.Slice(free, func(a, b int) bool {
		if fiedler[free[a]] != fiedler[free[b]] {
			return fiedler[free[a]] < fiedler[free[b]]
		}
		return free[a] < free[b]
	})
	// Fixed cells on their sides, free cells all Right; free cells then
	// move Left along the order, tracking the cut incrementally.
	p := partition.New(n)
	for v := 0; v < n; v++ {
		p.Assign(v, partition.Right)
	}
	c.ApplyFixed(p)
	s, err := cutstate.New(h, p)
	if err != nil {
		panic("spectral: " + err.Error())
	}
	total := h.TotalVertexWeight()
	maxSide := total
	if c.HasBalance() {
		maxSide = c.MaxSideWeight(total, 2)
	}
	lw, _ := s.Weights()
	bestCut, bestPrefix := -1, -1
	leftCount := 0
	for v := 0; v < n; v++ {
		if c.Fixed(v) == 0 {
			leftCount++
		}
	}
	for i := 0; i < len(free); i++ {
		s.Move(free[i])
		lw += h.VertexWeight(free[i])
		if lw > maxSide || total-lw > maxSide {
			continue
		}
		// Both sides must stay nonempty: Left holds leftCount fixed
		// cells plus i+1 free ones.
		if leftCount+i+1 == n {
			break // everything Left — not a bipartition
		}
		if bestCut == -1 || s.Cut() < bestCut {
			bestCut, bestPrefix = s.Cut(), i
		}
	}
	out := partition.New(n)
	for v := 0; v < n; v++ {
		out.Assign(v, partition.Right)
	}
	c.ApplyFixed(out)
	for i := 0; i <= bestPrefix; i++ {
		out.Assign(free[i], partition.Left)
	}
	// The window may have admitted nothing, or the pinned start itself
	// may violate the bound; Enforce repairs both (and is a no-op on an
	// already-feasible sweep result).
	if err := rebalance.Enforce(h, out, c); err != nil {
		// Infeasible constraint: fall back to the raw sweep result with
		// fixed sides applied so the engine's oracle rejects it loudly
		// rather than silently dropping the start.
		_ = err
	}
	return out, partition.CutSize(h, out)
}

// sweepCut orders vertices by Fiedler coordinate and picks the best
// balanced prefix by true hypergraph cutsize.
func sweepCut(h *hypergraph.Hypergraph, fiedler []float64, balance float64) (*partition.Bipartition, int) {
	n := h.NumVertices()
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if fiedler[order[a]] != fiedler[order[b]] {
			return fiedler[order[a]] < fiedler[order[b]]
		}
		return order[a] < order[b]
	})
	// Start with everything Right; move vertices Left along the order,
	// tracking the cut incrementally.
	p := partition.New(n)
	for v := 0; v < n; v++ {
		p.Assign(v, partition.Right)
	}
	s, err := cutstate.New(h, p)
	if err != nil {
		panic("spectral: " + err.Error())
	}
	total := h.TotalVertexWeight()
	minSide := int64((0.5 - balance) * float64(total))
	if minSide < 0 {
		minSide = 0
	}
	bestCut, bestPrefix := -1, -1
	var lw int64
	for i := 0; i < n-1; i++ {
		s.Move(order[i])
		lw += h.VertexWeight(order[i])
		if lw < minSide || total-lw < minSide {
			continue
		}
		if bestCut == -1 || s.Cut() < bestCut {
			bestCut, bestPrefix = s.Cut(), i
		}
	}
	if bestPrefix == -1 {
		// The balance window admitted nothing (e.g. one giant module);
		// fall back to the median split.
		bestPrefix = n/2 - 1
		bestCut = -1
	}
	out := partition.New(n)
	for i, v := range order {
		if i <= bestPrefix {
			out.Assign(v, partition.Left)
		} else {
			out.Assign(v, partition.Right)
		}
	}
	if bestCut == -1 {
		bestCut = partition.CutSize(h, out)
	}
	return out, bestCut
}
