package fleet

// Integrity quarantine: the registry's third health axis, for workers
// that answer promptly but *wrongly*. Liveness (heartbeats) catches
// workers that die; breakers catch workers that error; neither catches
// a Byzantine worker returning well-formed answers the verification
// oracle rejects — that worker looks perfectly healthy to both.
//
// The machine, driven by the coordinator's per-answer oracle check:
//
//	routed ──(Threshold invalid answers within Window)──> quarantined
//	quarantined ──(ReadmitAfter consecutive verified probes)──> routed
//
// A quarantined worker keeps its registration and its heartbeats count
// (liveness is orthogonal — a quarantined worker can still be ejected
// for silence, and an ejection+rejoin does not clear quarantine), but
// Allow excludes it so no client request routes there. Readmission is
// earned, never granted on rejoin: the coordinator periodically claims
// a probe slot (ClaimProbe), replays a known-good job to the worker
// off the request path, verifies the answer, and reports it with
// RecordProbe; any failed probe resets the streak.

import (
	"sort"
	"time"
)

// QuarantineConfig tunes the integrity-quarantine axis.
type QuarantineConfig struct {
	// Threshold is how many invalid answers within Window quarantine a
	// worker (values < 1 mean 3).
	Threshold int
	// Window is the sliding window the threshold counts over
	// (values <= 0 mean 30s).
	Window time.Duration
	// ReadmitAfter is how many consecutive verified probe answers
	// readmit a quarantined worker (values < 1 mean 3).
	ReadmitAfter int
	// ProbeInterval is the minimum spacing between probes to one
	// quarantined worker (values <= 0 mean 1s).
	ProbeInterval time.Duration
}

func (c QuarantineConfig) withDefaults() QuarantineConfig {
	if c.Threshold < 1 {
		c.Threshold = 3
	}
	if c.Window <= 0 {
		c.Window = 30 * time.Second
	}
	if c.ReadmitAfter < 1 {
		c.ReadmitAfter = 3
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = time.Second
	}
	return c
}

// countSince counts timestamps at or after cutoff (ts is append-ordered).
func countSince(ts []time.Time, cutoff time.Time) int {
	n := 0
	for _, t := range ts {
		if !t.Before(cutoff) {
			n++
		}
	}
	return n
}

// RecordInvalid charges one oracle-rejected answer (or corrupt frame)
// to the worker and reports whether this strike crossed the threshold
// and quarantined it — true exactly once per quarantine, the caller's
// signal to pull the worker from the ring. Strikes against an unknown
// or already-quarantined worker are dropped (a quarantined worker only
// serves probes, which report through RecordProbe).
func (g *Registry) RecordInvalid(id string) (quarantined bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	w, ok := g.workers[id]
	if !ok || w.quarantined {
		return false
	}
	now := g.cfg.Now()
	cutoff := now.Add(-g.cfg.Quarantine.Window)
	kept := w.invalid[:0]
	for _, t := range w.invalid {
		if !t.Before(cutoff) {
			kept = append(kept, t)
		}
	}
	w.invalid = append(kept, now)
	if len(w.invalid) < g.cfg.Quarantine.Threshold {
		return false
	}
	w.quarantined = true
	w.quarantines++
	w.consecValid = 0
	w.probing = false
	w.lastProbe = time.Time{}
	return true
}

// Quarantined reports whether id is currently quarantined.
func (g *Registry) Quarantined(id string) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	w, ok := g.workers[id]
	return ok && w.quarantined
}

// QuarantinedIDs returns the quarantined workers, sorted.
func (g *Registry) QuarantinedIDs() []string {
	g.mu.Lock()
	defer g.mu.Unlock()
	var ids []string
	for id, w := range g.workers {
		if w.quarantined {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	return ids
}

// ClaimProbe grants at most one in-flight probe per quarantined worker,
// spaced at least ProbeInterval apart. A true return must be answered
// with RecordProbe or the slot stays occupied (exactly the breaker
// half-open contract). Ejected workers are not probed — there is no
// point verifying the integrity of a worker that is not answering.
func (g *Registry) ClaimProbe(id string) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	w, ok := g.workers[id]
	if !ok || !w.quarantined || w.state == WorkerEjected || w.probing {
		return false
	}
	now := g.cfg.Now()
	if !w.lastProbe.IsZero() && now.Sub(w.lastProbe) < g.cfg.Quarantine.ProbeInterval {
		return false
	}
	w.probing = true
	w.lastProbe = now
	return true
}

// RecordProbe reports a claimed probe's oracle verdict and returns
// whether it completed the readmission streak — true exactly once per
// readmission, the caller's signal to put the worker back on the ring.
// A failed probe resets the streak to zero.
func (g *Registry) RecordProbe(id string, valid bool) (readmitted bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	w, ok := g.workers[id]
	if !ok || !w.quarantined {
		return false
	}
	w.probing = false
	if !valid {
		w.consecValid = 0
		return false
	}
	w.consecValid++
	if w.consecValid < g.cfg.Quarantine.ReadmitAfter {
		return false
	}
	w.quarantined = false
	w.invalid = nil
	w.consecValid = 0
	return true
}
