// Package fleet is the coordination layer that turns hgpartd from one
// process into a horizontally scalable tier. It holds the pieces the
// hgpartcoord coordinator is assembled from, each unit-testable without
// sockets:
//
//   - Ring: a consistent-hash ring routing jobs by netlist fingerprint.
//     The fingerprint + canonical options is already the workers' result
//     cache key, so stable routing gives cache affinity for free, and a
//     membership change moves only the keys adjacent to the change.
//   - Registry: the worker roster with the heartbeat/ejection state
//     machine (active → suspect → ejected on heartbeat silence, rejoin
//     on the next heartbeat) plus one circuit breaker per worker
//     (resilience.BreakerSet) for breaker-style ejection of workers
//     that answer but fail.
//   - HandoffQueue: the coordinator's account of accepted-but-unfinished
//     jobs. When a worker dies, its detached jobs (no live client
//     handler retrying them) are reclaimed exactly once and re-enqueued
//     onto survivors; completions are remembered by fingerprint+options
//     so at-least-once re-enqueueing never runs the same logical job
//     twice.
//   - Backoff: deterministic jittered exponential backoff for retry
//     routing, seeded so a given failure sequence replays identically.
//   - JobTable: the bounded job registry behind GET /jobs/{id}, shared
//     by the worker daemon and the coordinator.
//
// All clocks are injectable (RegistryConfig.Now), all randomness is
// splitmix64-derived from explicit seeds, and nothing here opens a
// socket — the chaos harness drives the same code paths over HTTP that
// these types' tests drive directly.
package fleet

// splitmix64 is the SplitMix64 output mixer, the same stream-splitting
// construction the engine, portfolio, and faultinject use. It drives
// the ring's virtual-node placement and the backoff jitter.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// fnv1a hashes a string with 64-bit FNV-1a (the same family as the
// netlist fingerprint), giving each worker id a stable base point for
// its virtual nodes.
func fnv1a(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}
