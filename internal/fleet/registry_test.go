package fleet

import (
	"reflect"
	"testing"
	"time"

	"fasthgp/internal/resilience"
)

// fakeClock is an injectable clock for driving the state machine.
type fakeClock struct{ now time.Time }

func (c *fakeClock) Now() time.Time          { return c.now }
func (c *fakeClock) advance(d time.Duration) { c.now = c.now.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{now: time.Unix(1000, 0)} }
func testRegistry(c *fakeClock, ttl time.Duration, ejectAfter int) *Registry {
	return NewRegistry(RegistryConfig{
		HeartbeatTTL: ttl,
		EjectAfter:   ejectAfter,
		Now:          c.Now,
		Breakers:     resilience.BreakerConfig{Threshold: 2, Cooldown: time.Minute, Now: c.Now},
	})
}

func TestRegistryHeartbeatStateMachine(t *testing.T) {
	clock := newFakeClock()
	g := testRegistry(clock, time.Second, 3)
	g.Upsert("w1", "127.0.0.1:1")

	assertState := func(want WorkerState) {
		t.Helper()
		got, ok := g.State("w1")
		if !ok || got != want {
			t.Fatalf("state = %v (known %v), want %v", got, ok, want)
		}
	}

	assertState(WorkerActive)

	// One missed TTL: suspect, still registered.
	clock.advance(1500 * time.Millisecond)
	if ejected := g.Sweep(); len(ejected) != 0 {
		t.Fatalf("sweep ejected %v too early", ejected)
	}
	assertState(WorkerSuspect)

	// A heartbeat brings it straight back to active.
	if known, rejoined := g.Heartbeat("w1"); !known || rejoined {
		t.Fatalf("heartbeat = (%v, %v), want (true, false)", known, rejoined)
	}
	assertState(WorkerActive)

	// Silence past TTL*EjectAfter: ejected, reported exactly once.
	clock.advance(3500 * time.Millisecond)
	if ejected := g.Sweep(); !reflect.DeepEqual(ejected, []string{"w1"}) {
		t.Fatalf("sweep = %v, want [w1]", ejected)
	}
	if ejected := g.Sweep(); len(ejected) != 0 {
		t.Fatalf("second sweep re-reported the same ejection: %v", ejected)
	}
	assertState(WorkerEjected)
	if g.Allow("w1") {
		t.Error("Allow routed to an ejected worker")
	}

	// The next heartbeat rejoins it with no manual intervention.
	if known, rejoined := g.Heartbeat("w1"); !known || !rejoined {
		t.Fatalf("rejoin heartbeat = (%v, %v), want (true, true)", known, rejoined)
	}
	assertState(WorkerActive)
	if !g.Allow("w1") {
		t.Error("rejoined worker not routable")
	}
	g.Record("w1", true)

	// Ejections are counted.
	if snap := g.Snapshot(); len(snap) != 1 || snap[0].Ejections != 1 {
		t.Errorf("snapshot = %+v, want 1 worker with 1 ejection", snap)
	}
}

func TestRegistryUpsertRejoinsAndUpdatesAddr(t *testing.T) {
	clock := newFakeClock()
	g := testRegistry(clock, time.Second, 2)
	g.Upsert("w1", "127.0.0.1:1")
	clock.advance(5 * time.Second)
	g.Sweep()
	if s, _ := g.State("w1"); s != WorkerEjected {
		t.Fatalf("state = %v, want ejected", s)
	}
	// A restarted worker re-registers with a fresh port.
	if rejoined := g.Upsert("w1", "127.0.0.1:2"); !rejoined {
		t.Fatal("Upsert of ejected worker did not report rejoin")
	}
	if addr, _ := g.Addr("w1"); addr != "127.0.0.1:2" {
		t.Errorf("addr = %s, want the re-registered address", addr)
	}
}

func TestRegistryUnknownHeartbeat(t *testing.T) {
	g := testRegistry(newFakeClock(), time.Second, 2)
	if known, _ := g.Heartbeat("ghost"); known {
		t.Error("heartbeat from an unregistered worker reported known")
	}
}

func TestRegistryBreakerEjection(t *testing.T) {
	clock := newFakeClock()
	g := testRegistry(clock, time.Minute, 3) // heartbeats irrelevant here
	g.Upsert("w1", "127.0.0.1:1")

	// Two consecutive failures trip the per-worker breaker (threshold 2).
	if !g.Allow("w1") {
		t.Fatal("fresh worker not routable")
	}
	g.Record("w1", false)
	if !g.Allow("w1") {
		t.Fatal("one failure already blocked routing")
	}
	g.Record("w1", false)
	if g.Allow("w1") {
		t.Error("tripped breaker still admits requests")
	}
	if snap := g.Snapshot(); snap[0].Breaker != "open" {
		t.Errorf("breaker = %s, want open", snap[0].Breaker)
	}

	// After the cooldown a single probe is admitted; success re-admits.
	clock.advance(2 * time.Minute)
	if !g.Allow("w1") {
		t.Fatal("cooldown elapsed but no probe admitted")
	}
	g.Record("w1", true)
	if !g.Allow("w1") {
		t.Error("recovered worker not routable")
	}
	g.Record("w1", true)
}

func TestRegistryRemove(t *testing.T) {
	g := testRegistry(newFakeClock(), time.Second, 2)
	g.Upsert("w1", "a")
	if !g.Remove("w1") || g.Remove("w1") {
		t.Error("Remove should report true then false")
	}
	if g.Len() != 0 {
		t.Errorf("Len = %d after remove", g.Len())
	}
	if g.Allow("w1") {
		t.Error("removed worker still routable")
	}
}
