package fleet

import (
	"fmt"
	"testing"
)

func testJob(id, worker string, key uint64, detached bool) Job {
	return Job{
		ID:       id,
		Key:      JobKey{Fingerprint: key, Opts: "chain=fm starts=2"},
		Format:   "nets",
		Netlist:  "module a\nmodule b\nnet n a b\n",
		Worker:   worker,
		Detached: detached,
	}
}

func TestHandoffReclaimOnlyDetachedExactlyOnce(t *testing.T) {
	q := NewHandoffQueue(0)
	q.Admit(testJob("j1", "w1", 10, true))
	q.Admit(testJob("j2", "w1", 20, false)) // attached: a live handler owns it
	q.Admit(testJob("j3", "w2", 30, true))

	got := q.Reclaim("w1")
	if len(got) != 1 || got[0].ID != "j1" {
		t.Fatalf("Reclaim(w1) = %v, want only the detached j1", got)
	}
	if again := q.Reclaim("w1"); len(again) != 0 {
		t.Fatalf("second Reclaim returned %v; each job must be reclaimed exactly once", again)
	}
	if q.Pending() != 2 {
		t.Errorf("pending = %d, want 2 (j2 attached, j3 on w2)", q.Pending())
	}
}

func TestHandoffDedupByKey(t *testing.T) {
	q := NewHandoffQueue(0)
	j := testJob("j1", "w1", 99, true)
	q.Admit(j)
	if !q.Complete("j1", Done{Cut: 7, TierName: "fm", Worker: "w1"}) {
		t.Fatal("Complete(j1) = false")
	}

	// A detached duplicate of the completed key is answered from memory.
	dup := testJob("j2", "w2", 99, true)
	prev, isDup := q.Admit(dup)
	if !isDup || prev.Cut != 7 || prev.TierName != "fm" {
		t.Fatalf("Admit(dup) = (%+v, %v), want the remembered outcome", prev, isDup)
	}
	if q.Pending() != 0 {
		t.Errorf("deduped job entered flight: pending = %d", q.Pending())
	}

	// A live (attached) duplicate is NOT deduped — the client wants a
	// full response body; the worker's own cache makes it cheap.
	live := testJob("j3", "w2", 99, false)
	if _, isDup := q.Admit(live); isDup {
		t.Error("attached duplicate was deduped; live clients must be forwarded")
	}
	if s := q.Stats(); s["deduped"] != 1 || s["completed"] != 1 {
		t.Errorf("stats = %v, want deduped 1 completed 1", s)
	}
}

func TestHandoffCompleteIdempotent(t *testing.T) {
	q := NewHandoffQueue(0)
	q.Admit(testJob("j1", "w1", 1, false))
	if !q.Complete("j1", Done{Cut: 3}) {
		t.Fatal("first Complete = false")
	}
	if q.Complete("j1", Done{Cut: 4}) {
		t.Fatal("second Complete = true; completion must be exactly-once per job id")
	}
	if d, ok := q.DoneFor(JobKey{Fingerprint: 1, Opts: "chain=fm starts=2"}); !ok || d.Cut != 3 {
		t.Errorf("DoneFor = (%+v, %v), want the first outcome kept", d, ok)
	}
}

func TestHandoffAssignMovesWorkerSets(t *testing.T) {
	q := NewHandoffQueue(0)
	q.Admit(testJob("j1", "w1", 5, true))
	q.Assign("j1", "w2") // retry routing moved it
	if got := q.Reclaim("w1"); len(got) != 0 {
		t.Fatalf("Reclaim(w1) = %v after reassignment to w2", got)
	}
	got := q.Reclaim("w2")
	if len(got) != 1 || got[0].ID != "j1" || got[0].Worker != "w2" {
		t.Fatalf("Reclaim(w2) = %v, want j1@w2", got)
	}
}

func TestHandoffDetachThenReclaim(t *testing.T) {
	q := NewHandoffQueue(0)
	q.Admit(testJob("j1", "w1", 5, false))
	if got := q.Reclaim("w1"); len(got) != 0 {
		t.Fatalf("attached job reclaimed: %v", got)
	}
	q.Detach("j1")
	if got := q.Reclaim("w1"); len(got) != 1 || !got[0].Detached {
		t.Fatalf("Reclaim after Detach = %v", got)
	}
}

func TestHandoffFailRemovesWithoutMemory(t *testing.T) {
	q := NewHandoffQueue(0)
	j := testJob("j1", "w1", 5, true)
	q.Admit(j)
	q.Fail("j1")
	if q.Pending() != 0 {
		t.Errorf("pending = %d after Fail", q.Pending())
	}
	if _, ok := q.DoneFor(j.Key); ok {
		t.Error("failed job recorded a completion; a retry of the key must run afresh")
	}
	// The same key re-admitted detached runs again (no dedup from a failure).
	if _, dup := q.Admit(testJob("j2", "w2", 5, true)); dup {
		t.Error("failure wrongly populated the dedup memory")
	}
}

func TestHandoffDedupMemoryBounded(t *testing.T) {
	q := NewHandoffQueue(4)
	for i := 0; i < 10; i++ {
		id := fmt.Sprintf("j%d", i)
		q.Admit(Job{ID: id, Key: JobKey{Fingerprint: uint64(i)}, Worker: "w"})
		q.Complete(id, Done{Cut: i})
	}
	// Oldest keys evicted: key 0 forgotten, key 9 remembered.
	if _, ok := q.DoneFor(JobKey{Fingerprint: 0}); ok {
		t.Error("evicted key still remembered")
	}
	if d, ok := q.DoneFor(JobKey{Fingerprint: 9}); !ok || d.Cut != 9 {
		t.Error("recent key forgotten")
	}
}
