package fleet

// Bounded job table behind GET /jobs/{id}, shared by the worker daemon
// (hgpartd) and the coordinator (hgpartcoord). Every accepted request
// gets a job id; the table tracks it from accepted through done/failed,
// including jobs replayed from a WAL at boot (whose clients are long
// gone) and jobs re-enqueued by crash recovery or worker ejection. The
// table is bounded: once it holds MaxJobs entries, the oldest finished
// jobs are evicted first, so a long-lived process cannot leak memory.

import (
	"fmt"
	"sync"
	"time"
)

// MaxJobs bounds the table; eviction removes oldest terminal entries.
const MaxJobs = 4096

// JobInfo is one job's state, served verbatim as JSON by /jobs/{id}.
type JobInfo struct {
	ID       string `json:"id"`
	Status   string `json:"status"` // accepted | running | done | failed | requeued
	Accepted string `json:"accepted"`
	Requeued bool   `json:"requeued,omitempty"` // re-enqueued by crash recovery or handoff
	Worker   string `json:"worker,omitempty"`   // coordinator only: the worker that ran it
	Cut      int    `json:"cut,omitempty"`
	TierName string `json:"tier_name,omitempty"`
	Degraded bool   `json:"degraded,omitempty"`
	WallMS   int64  `json:"wall_ms,omitempty"`
	Error    string `json:"error,omitempty"`
}

// Terminal reports whether the job reached a final state.
func (j *JobInfo) Terminal() bool { return j.Status == "done" || j.Status == "failed" }

// JobTable is the bounded, concurrency-safe job registry.
type JobTable struct {
	mu    sync.Mutex
	jobs  map[string]*JobInfo
	order []string // insertion order, for eviction
	seq   int64
}

// NewJobTable returns an empty table.
func NewJobTable() *JobTable {
	return &JobTable{jobs: make(map[string]*JobInfo)}
}

// ContinueFrom advances the id sequence past n (WAL replay passes the
// highest id the dead process issued, so ids never collide).
func (t *JobTable) ContinueFrom(n int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if n > t.seq {
		t.seq = n
	}
}

// Create registers a fresh job and returns its id.
func (t *JobTable) Create() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.seq++
	id := JobID(t.seq)
	t.insertLocked(&JobInfo{ID: id, Status: "accepted", Accepted: time.Now().UTC().Format(time.RFC3339)})
	return id
}

// Restore registers a job replayed from a WAL in the given state.
func (t *JobTable) Restore(j JobInfo) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if existing, ok := t.jobs[j.ID]; ok {
		*existing = j
		return
	}
	t.insertLocked(&j)
}

func (t *JobTable) insertLocked(j *JobInfo) {
	for len(t.order) >= MaxJobs {
		evicted := false
		for i, id := range t.order {
			if t.jobs[id].Terminal() {
				delete(t.jobs, id)
				t.order = append(t.order[:i], t.order[i+1:]...)
				evicted = true
				break
			}
		}
		if !evicted { // everything in flight; evict the oldest anyway
			delete(t.jobs, t.order[0])
			t.order = t.order[1:]
		}
	}
	t.jobs[j.ID] = j
	t.order = append(t.order, j.ID)
}

// Update mutates a job's state if it is still tracked.
func (t *JobTable) Update(id string, f func(*JobInfo)) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if j, ok := t.jobs[id]; ok {
		f(j)
	}
}

// Get returns a copy of the job's state.
func (t *JobTable) Get(id string) (JobInfo, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	j, ok := t.jobs[id]
	if !ok {
		return JobInfo{}, false
	}
	return *j, true
}

// Counts tallies jobs by status (for /healthz and /stats).
func (t *JobTable) Counts() map[string]int {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]int)
	for _, j := range t.jobs {
		out[j.Status]++
	}
	return out
}

// JobID formats job sequence n; JobSeq parses it back (0 for foreign
// ids, which only weakens id continuation, never correctness).
func JobID(n int64) string { return fmt.Sprintf("j%d", n) }

// JobSeq parses a JobID back to its sequence number.
func JobSeq(id string) int64 {
	var n int64
	if _, err := fmt.Sscanf(id, "j%d", &n); err != nil {
		return 0
	}
	return n
}
