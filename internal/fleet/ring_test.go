package fleet

import (
	"fmt"
	"reflect"
	"testing"
)

func TestRingLookupDeterministicAcrossJoinOrder(t *testing.T) {
	a := NewRing(64)
	for _, id := range []string{"w1", "w2", "w3", "w4"} {
		a.Add(id)
	}
	b := NewRing(64)
	for _, id := range []string{"w3", "w1", "w4", "w2"} {
		b.Add(id)
	}
	for key := uint64(0); key < 200; key++ {
		k := splitmix64(key)
		got, want := b.Lookup(k, 0), a.Lookup(k, 0)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("key %d: join order changed routing: %v vs %v", k, got, want)
		}
	}
}

func TestRingLookupDistinctPreferenceOrder(t *testing.T) {
	r := NewRing(32)
	for i := 0; i < 5; i++ {
		r.Add(fmt.Sprintf("w%d", i))
	}
	for key := uint64(0); key < 100; key++ {
		order := r.Lookup(splitmix64(key), 0)
		if len(order) != 5 {
			t.Fatalf("key %d: %d candidates, want all 5", key, len(order))
		}
		seen := make(map[string]bool)
		for _, id := range order {
			if seen[id] {
				t.Fatalf("key %d: duplicate candidate %s in %v", key, id, order)
			}
			seen[id] = true
		}
	}
}

func TestRingRemoveMovesOnlyDepartedKeys(t *testing.T) {
	r := NewRing(64)
	for i := 0; i < 4; i++ {
		r.Add(fmt.Sprintf("w%d", i))
	}
	before := make(map[uint64]string)
	for key := uint64(0); key < 500; key++ {
		k := splitmix64(key)
		before[k] = r.Lookup(k, 1)[0]
	}
	if !r.Remove("w2") {
		t.Fatal("Remove(w2) = false")
	}
	moved := 0
	for k, owner := range before {
		now := r.Lookup(k, 1)[0]
		if owner == "w2" {
			if now == "w2" {
				t.Fatalf("key %d still routed to removed member", k)
			}
			continue
		}
		if now != owner {
			moved++
		}
	}
	if moved != 0 {
		t.Errorf("%d keys not owned by the departed member moved (consistent hashing should move none)", moved)
	}
}

func TestRingBalance(t *testing.T) {
	r := NewRing(DefaultReplicas)
	const members = 5
	for i := 0; i < members; i++ {
		r.Add(fmt.Sprintf("worker-%d", i))
	}
	counts := make(map[string]int)
	const keys = 20000
	for key := uint64(0); key < keys; key++ {
		counts[r.Lookup(splitmix64(key), 1)[0]]++
	}
	mean := keys / members
	for id, n := range counts {
		if n < mean/3 || n > mean*3 {
			t.Errorf("member %s owns %d of %d keys (mean %d): pathological imbalance", id, n, keys, mean)
		}
	}
}

func TestRingEmptyAndMembership(t *testing.T) {
	r := NewRing(0)
	if got := r.Lookup(42, 3); got != nil {
		t.Errorf("empty ring Lookup = %v, want nil", got)
	}
	if !r.Add("a") || r.Add("a") {
		t.Error("Add should report true then false for a duplicate")
	}
	if !r.Has("a") || r.Has("b") {
		t.Error("Has wrong")
	}
	if r.Remove("b") {
		t.Error("Remove of absent member = true")
	}
	if got := r.Members(); !reflect.DeepEqual(got, []string{"a"}) {
		t.Errorf("Members = %v", got)
	}
	if got := r.Lookup(42, 5); !reflect.DeepEqual(got, []string{"a"}) {
		t.Errorf("single-member Lookup = %v", got)
	}
}
