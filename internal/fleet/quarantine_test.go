package fleet

import (
	"reflect"
	"testing"
	"time"

	"fasthgp/internal/resilience"
)

func quarantineRegistry(c *fakeClock) *Registry {
	return NewRegistry(RegistryConfig{
		HeartbeatTTL: time.Second,
		EjectAfter:   3,
		Now:          c.Now,
		Breakers:     resilience.BreakerConfig{Threshold: 100, Cooldown: time.Minute, Now: c.Now},
		Quarantine: QuarantineConfig{
			Threshold:     3,
			Window:        10 * time.Second,
			ReadmitAfter:  2,
			ProbeInterval: time.Second,
		},
	})
}

func TestQuarantineThresholdWithinWindow(t *testing.T) {
	clock := newFakeClock()
	g := quarantineRegistry(clock)
	g.Upsert("w1", "127.0.0.1:1")

	if g.RecordInvalid("w1") || g.RecordInvalid("w1") {
		t.Fatal("quarantined below threshold")
	}
	if g.Quarantined("w1") || !g.Allow("w1") {
		t.Fatal("worker excluded before threshold")
	}
	if !g.RecordInvalid("w1") {
		t.Fatal("third strike did not quarantine")
	}
	if !g.Quarantined("w1") {
		t.Fatal("Quarantined false after threshold")
	}
	if g.Allow("w1") {
		t.Fatal("Allow admits a quarantined worker")
	}
	if got := g.QuarantinedIDs(); !reflect.DeepEqual(got, []string{"w1"}) {
		t.Fatalf("QuarantinedIDs = %v", got)
	}
	// Further strikes while quarantined are dropped, not re-reported.
	if g.RecordInvalid("w1") {
		t.Fatal("re-quarantined an already quarantined worker")
	}
}

func TestQuarantineWindowExpiresOldStrikes(t *testing.T) {
	clock := newFakeClock()
	g := quarantineRegistry(clock)
	g.Upsert("w1", "127.0.0.1:1")

	g.RecordInvalid("w1")
	g.RecordInvalid("w1")
	clock.advance(11 * time.Second) // both strikes age out of the window
	if g.RecordInvalid("w1") {
		t.Fatal("stale strikes counted toward the threshold")
	}
	g.RecordInvalid("w1")
	if !g.RecordInvalid("w1") {
		t.Fatal("three fresh strikes did not quarantine")
	}
}

func TestQuarantineProbeReadmission(t *testing.T) {
	clock := newFakeClock()
	g := quarantineRegistry(clock)
	g.Upsert("w1", "127.0.0.1:1")
	for i := 0; i < 3; i++ {
		g.RecordInvalid("w1")
	}

	// Probe slot protocol: one in flight, spaced by ProbeInterval.
	if !g.ClaimProbe("w1") {
		t.Fatal("first probe claim refused")
	}
	if g.ClaimProbe("w1") {
		t.Fatal("second claim granted while one is in flight")
	}
	if g.RecordProbe("w1", true) {
		t.Fatal("readmitted after one valid probe, want two")
	}
	if g.ClaimProbe("w1") {
		t.Fatal("claim granted before ProbeInterval elapsed")
	}
	clock.advance(time.Second)
	if !g.ClaimProbe("w1") {
		t.Fatal("probe claim refused after interval")
	}
	// A failed probe resets the streak.
	if g.RecordProbe("w1", false) {
		t.Fatal("readmitted on a failed probe")
	}
	clock.advance(time.Second)
	g.ClaimProbe("w1")
	g.RecordProbe("w1", true)
	clock.advance(time.Second)
	g.ClaimProbe("w1")
	if !g.RecordProbe("w1", true) {
		t.Fatal("two consecutive valid probes did not readmit")
	}
	if g.Quarantined("w1") || !g.Allow("w1") {
		t.Fatal("worker still excluded after readmission")
	}
	// Readmission is reported exactly once.
	if g.RecordProbe("w1", true) {
		t.Fatal("readmission re-reported")
	}
	// The slate is clean: old strikes don't stack with new ones.
	if g.RecordInvalid("w1") {
		t.Fatal("single post-readmission strike re-quarantined")
	}
}

func TestQuarantineSurvivesHeartbeatAndRejoin(t *testing.T) {
	clock := newFakeClock()
	g := quarantineRegistry(clock)
	g.Upsert("w1", "127.0.0.1:1")
	for i := 0; i < 3; i++ {
		g.RecordInvalid("w1")
	}

	// Heartbeats keep liveness fresh but never clear quarantine.
	g.Heartbeat("w1")
	if !g.Quarantined("w1") {
		t.Fatal("heartbeat cleared quarantine")
	}
	// Silence ejects the worker (liveness is orthogonal)…
	clock.advance(5 * time.Second)
	if ejected := g.Sweep(); !reflect.DeepEqual(ejected, []string{"w1"}) {
		t.Fatalf("Sweep = %v, want [w1]", ejected)
	}
	// …and ejected workers are not probed.
	if g.ClaimProbe("w1") {
		t.Fatal("probe claimed against an ejected worker")
	}
	// Rejoin via heartbeat and re-registration: alive again, still
	// quarantined — readmission must be earned through probes.
	if known, rejoined := g.Heartbeat("w1"); !known || !rejoined {
		t.Fatal("heartbeat did not rejoin")
	}
	g.Upsert("w1", "127.0.0.1:2")
	if !g.Quarantined("w1") || g.Allow("w1") {
		t.Fatal("rejoin cleared quarantine")
	}
	if !g.ClaimProbe("w1") {
		t.Fatal("probe refused for a live quarantined worker")
	}
}

func TestQuarantineSnapshotSurfacesState(t *testing.T) {
	clock := newFakeClock()
	g := quarantineRegistry(clock)
	g.Upsert("w1", "127.0.0.1:1")
	g.Upsert("w2", "127.0.0.1:2")
	for i := 0; i < 3; i++ {
		g.RecordInvalid("w1")
	}
	g.ClaimProbe("w1")
	g.RecordProbe("w1", true)

	snap := g.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot has %d workers", len(snap))
	}
	w1 := snap[0]
	if w1.ID != "w1" || !w1.Quarantined || w1.State != "quarantined" ||
		w1.Quarantines != 1 || w1.InvalidRecent != 3 || w1.ProbesOK != 1 {
		t.Fatalf("w1 info = %+v", w1)
	}
	if w2 := snap[1]; w2.Quarantined || w2.State != "active" || w2.InvalidRecent != 0 {
		t.Fatalf("w2 info = %+v", w2)
	}
}

func TestRecordInvalidUnknownWorker(t *testing.T) {
	g := quarantineRegistry(newFakeClock())
	if g.RecordInvalid("ghost") || g.Quarantined("ghost") || g.ClaimProbe("ghost") || g.RecordProbe("ghost", true) {
		t.Fatal("quarantine machinery reacted to an unregistered id")
	}
	if got := g.QuarantinedIDs(); len(got) != 0 {
		t.Fatalf("QuarantinedIDs = %v, want empty", got)
	}
}
