package fleet

import (
	"context"
	"testing"
	"time"
)

func TestBackoffDeterministicAndBounded(t *testing.T) {
	cfg := BackoffConfig{Base: 10 * time.Millisecond, Cap: 80 * time.Millisecond, Seed: 7}
	for attempt := 0; attempt < 8; attempt++ {
		d1, d2 := cfg.Delay(attempt), cfg.Delay(attempt)
		if d1 != d2 {
			t.Fatalf("attempt %d: delay not deterministic: %v vs %v", attempt, d1, d2)
		}
		nominal := 10 * time.Millisecond << uint(attempt)
		if nominal > 80*time.Millisecond {
			nominal = 80 * time.Millisecond
		}
		if d1 < nominal/2 || d1 >= nominal*3/2 {
			t.Errorf("attempt %d: delay %v outside [%v, %v)", attempt, d1, nominal/2, nominal*3/2)
		}
	}
}

func TestBackoffSeedsDiffer(t *testing.T) {
	a := BackoffConfig{Base: 10 * time.Millisecond, Cap: time.Second, Seed: 1}
	b := BackoffConfig{Base: 10 * time.Millisecond, Cap: time.Second, Seed: 2}
	same := 0
	for attempt := 0; attempt < 10; attempt++ {
		if a.Delay(attempt) == b.Delay(attempt) {
			same++
		}
	}
	if same == 10 {
		t.Error("two seeds produced identical schedules; jitter is not seed-dependent")
	}
}

func TestBackoffSleepHonorsContext(t *testing.T) {
	cfg := BackoffConfig{Base: time.Minute, Cap: time.Minute, Seed: 1}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	t0 := time.Now()
	if cfg.Sleep(ctx, 0) {
		t.Error("Sleep = true under a dead context")
	}
	if time.Since(t0) > 5*time.Second {
		t.Error("Sleep blocked despite cancelled context")
	}
}

func TestBackoffDefaults(t *testing.T) {
	var cfg BackoffConfig
	if d := cfg.Delay(0); d <= 0 {
		t.Errorf("zero-value Delay(0) = %v, want positive default", d)
	}
}
