package fleet

// Worker registry: the roster the coordinator routes over, with two
// independent health axes.
//
// Liveness (heartbeats) is a three-state machine per worker:
//
//	active ──(silence > TTL)──> suspect ──(silence > TTL·EjectAfter)──> ejected
//	   ^                           │                                       │
//	   └──────── heartbeat ────────┴──────────── heartbeat ────────────────┘
//
// Sweep advances the machine from the injected clock and reports the
// workers that crossed into ejected on this sweep — exactly once per
// ejection — so the caller can pull them from the ring and reclaim
// their handoff jobs. A heartbeat (or re-registration) from an ejected
// worker rejoins it with no manual intervention.
//
// Request health reuses the portfolio's circuit breakers: one
// resilience.Breaker per worker, fed by Record after every forwarded
// request. A worker that answers but keeps failing trips its breaker
// and is skipped by Allow until the cooldown admits a single probe —
// breaker-style ejection without losing the worker's registration.
//
// A third, orthogonal axis — integrity quarantine for workers that
// answer promptly but *wrongly* (Byzantine workers) — lives in
// quarantine.go.

import (
	"sort"
	"sync"
	"time"

	"fasthgp/internal/resilience"
)

// WorkerState is a worker's position in the liveness state machine.
type WorkerState int

const (
	// WorkerActive is heartbeating on schedule.
	WorkerActive WorkerState = iota
	// WorkerSuspect has missed at least one heartbeat TTL; still routed.
	WorkerSuspect
	// WorkerEjected has been silent past the ejection horizon; out of
	// the rotation until it heartbeats again.
	WorkerEjected
)

// String returns the state's wire name (used verbatim in /healthz).
func (s WorkerState) String() string {
	switch s {
	case WorkerSuspect:
		return "suspect"
	case WorkerEjected:
		return "ejected"
	default:
		return "active"
	}
}

// RegistryConfig tunes the registry.
type RegistryConfig struct {
	// HeartbeatTTL is the silence that moves active to suspect
	// (values <= 0 mean 3s).
	HeartbeatTTL time.Duration
	// EjectAfter is how many TTLs of silence eject a worker
	// (values < 1 mean 3).
	EjectAfter int
	// Breakers configures the per-worker circuit breakers.
	Breakers resilience.BreakerConfig
	// Quarantine configures the integrity-quarantine axis.
	Quarantine QuarantineConfig
	// Now is the clock (nil means time.Now); injectable for tests.
	Now func() time.Time
}

func (c RegistryConfig) withDefaults() RegistryConfig {
	if c.HeartbeatTTL <= 0 {
		c.HeartbeatTTL = 3 * time.Second
	}
	if c.EjectAfter < 1 {
		c.EjectAfter = 3
	}
	c.Quarantine = c.Quarantine.withDefaults()
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// WorkerInfo is one worker's externally visible state (the /healthz
// shape).
type WorkerInfo struct {
	ID            string      `json:"id"`
	Addr          string      `json:"addr"`
	State         string      `json:"state"`
	Breaker       string      `json:"breaker"`
	LastBeat      time.Time   `json:"-"`
	SilenceMS     int64       `json:"silence_ms"`
	Ejections     int64       `json:"ejections,omitempty"`
	Quarantined   bool        `json:"quarantined,omitempty"`
	Quarantines   int64       `json:"quarantines,omitempty"`
	InvalidRecent int         `json:"invalid_recent,omitempty"`
	ProbesOK      int         `json:"probes_ok,omitempty"`
	state         WorkerState `json:"-"`
}

type workerEntry struct {
	id        string
	addr      string
	state     WorkerState
	lastBeat  time.Time
	ejections int64

	// Integrity-quarantine axis (see quarantine.go).
	quarantined bool
	invalid     []time.Time // invalid-answer timestamps inside the window
	consecValid int         // consecutive verified probe answers while quarantined
	quarantines int64       // lifetime quarantine count
	lastProbe   time.Time
	probing     bool // a probe is in flight (ClaimProbe granted)
}

// Registry is the concurrency-safe worker roster. Construct with
// NewRegistry; the zero value is not usable.
type Registry struct {
	cfg      RegistryConfig
	breakers *resilience.BreakerSet

	mu      sync.Mutex
	workers map[string]*workerEntry
}

// NewRegistry returns an empty registry.
func NewRegistry(cfg RegistryConfig) *Registry {
	cfg = cfg.withDefaults()
	return &Registry{
		cfg:      cfg,
		breakers: resilience.NewBreakerSet(cfg.Breakers),
		workers:  make(map[string]*workerEntry),
	}
}

// Upsert registers a worker (or refreshes its address) and counts as a
// heartbeat. It reports whether this call rejoined an ejected worker —
// the signal to put it back on the ring.
func (g *Registry) Upsert(id, addr string) (rejoined bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	w, ok := g.workers[id]
	if !ok {
		g.workers[id] = &workerEntry{id: id, addr: addr, state: WorkerActive, lastBeat: g.cfg.Now()}
		return false
	}
	rejoined = w.state == WorkerEjected
	w.addr = addr
	w.state = WorkerActive
	w.lastBeat = g.cfg.Now()
	return rejoined
}

// Heartbeat refreshes a worker's liveness. It reports (known, rejoined):
// known is false for an unregistered id (the worker should re-register),
// and rejoined is true when this beat brought an ejected worker back.
func (g *Registry) Heartbeat(id string) (known, rejoined bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	w, ok := g.workers[id]
	if !ok {
		return false, false
	}
	rejoined = w.state == WorkerEjected
	w.state = WorkerActive
	w.lastBeat = g.cfg.Now()
	return true, rejoined
}

// Remove deletes a worker outright (graceful deregistration at drain).
func (g *Registry) Remove(id string) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, ok := g.workers[id]; !ok {
		return false
	}
	delete(g.workers, id)
	return true
}

// Sweep advances every worker's liveness state from the clock and
// returns the ids ejected by this sweep (each ejection is reported
// exactly once). Call it periodically; the interval only bounds
// detection latency, never correctness.
func (g *Registry) Sweep() (ejected []string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	now := g.cfg.Now()
	for _, w := range g.workers {
		silence := now.Sub(w.lastBeat)
		switch {
		case silence > g.cfg.HeartbeatTTL*time.Duration(g.cfg.EjectAfter):
			if w.state != WorkerEjected {
				w.state = WorkerEjected
				w.ejections++
				ejected = append(ejected, w.id)
			}
		case silence > g.cfg.HeartbeatTTL:
			if w.state == WorkerActive {
				w.state = WorkerSuspect
			}
		}
	}
	sort.Strings(ejected)
	return ejected
}

// Allow reports whether a request may be routed to id now: the worker
// must be registered, not ejected, not quarantined, and its circuit
// breaker must admit the attempt. Like Breaker.Allow, a true return
// must be answered with Record or a half-open probe slot stays
// occupied.
func (g *Registry) Allow(id string) bool {
	g.mu.Lock()
	w, ok := g.workers[id]
	live := ok && w.state != WorkerEjected && !w.quarantined
	g.mu.Unlock()
	if !live {
		return false
	}
	return g.breakers.For(id).Allow()
}

// Record reports a routed request's outcome to the worker's breaker.
func (g *Registry) Record(id string, ok bool) {
	g.breakers.For(id).Record(ok)
}

// Addr returns a worker's advertised address.
func (g *Registry) Addr(id string) (string, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	w, ok := g.workers[id]
	if !ok {
		return "", false
	}
	return w.addr, true
}

// State returns a worker's liveness state.
func (g *Registry) State(id string) (WorkerState, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	w, ok := g.workers[id]
	if !ok {
		return 0, false
	}
	return w.state, true
}

// Len is the registered-worker count (any state).
func (g *Registry) Len() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.workers)
}

// Snapshot returns every worker's info, sorted by id (the /healthz
// payload).
func (g *Registry) Snapshot() []WorkerInfo {
	g.mu.Lock()
	now := g.cfg.Now()
	out := make([]WorkerInfo, 0, len(g.workers))
	for _, w := range g.workers {
		state := w.state.String()
		if w.quarantined && w.state != WorkerEjected {
			state = "quarantined"
		}
		out = append(out, WorkerInfo{
			ID:            w.id,
			Addr:          w.addr,
			State:         state,
			LastBeat:      w.lastBeat,
			SilenceMS:     now.Sub(w.lastBeat).Milliseconds(),
			Ejections:     w.ejections,
			Quarantined:   w.quarantined,
			Quarantines:   w.quarantines,
			InvalidRecent: countSince(w.invalid, now.Add(-g.cfg.Quarantine.Window)),
			ProbesOK:      w.consecValid,
			state:         w.state,
		})
	}
	g.mu.Unlock()
	for i := range out {
		out[i].Breaker = g.breakers.For(out[i].ID).State().String()
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}

// Ejected reports whether info describes an ejected worker (helper for
// health summaries, which only see the wire shape).
func (w WorkerInfo) Ejected() bool { return w.state == WorkerEjected }
