package fleet

import (
	"fmt"
	"testing"
)

func TestJobTableCreateGetUpdate(t *testing.T) {
	tbl := NewJobTable()
	id := tbl.Create()
	if id != "j1" {
		t.Fatalf("first id = %s, want j1", id)
	}
	tbl.Update(id, func(j *JobInfo) { j.Status, j.Cut, j.Worker = "done", 4, "w1" })
	j, ok := tbl.Get(id)
	if !ok || j.Cut != 4 || j.Worker != "w1" || j.Status != "done" {
		t.Fatalf("Get = %+v, %v", j, ok)
	}
	if c := tbl.Counts(); c["done"] != 1 {
		t.Errorf("counts = %v", c)
	}
}

func TestJobTableContinueFrom(t *testing.T) {
	tbl := NewJobTable()
	tbl.ContinueFrom(41)
	if id := tbl.Create(); id != "j42" {
		t.Fatalf("id after ContinueFrom(41) = %s, want j42", id)
	}
	if JobSeq("j42") != 42 || JobSeq("weird") != 0 {
		t.Error("JobSeq round-trip wrong")
	}
}

func TestJobTableEvictsTerminalFirst(t *testing.T) {
	tbl := NewJobTable()
	ids := make([]string, MaxJobs)
	for i := range ids {
		ids[i] = tbl.Create()
	}
	// Finish the second job only; the next insert must evict it, not the
	// still-running first.
	tbl.Update(ids[1], func(j *JobInfo) { j.Status = "done" })
	extra := tbl.Create()
	if _, ok := tbl.Get(ids[1]); ok {
		t.Error("terminal job survived eviction")
	}
	if _, ok := tbl.Get(ids[0]); !ok {
		t.Error("in-flight job evicted while a terminal one existed")
	}
	if _, ok := tbl.Get(extra); !ok {
		t.Error("new job not inserted")
	}
}

func TestJobTableRestore(t *testing.T) {
	tbl := NewJobTable()
	tbl.Restore(JobInfo{ID: "j7", Status: "requeued", Requeued: true})
	tbl.Restore(JobInfo{ID: "j7", Status: "done", Cut: 3})
	j, ok := tbl.Get("j7")
	if !ok || j.Status != "done" || j.Cut != 3 {
		t.Fatalf("restored job = %+v, %v", j, ok)
	}
	if c := tbl.Counts(); c["done"] != 1 || len(c) != 1 {
		t.Errorf("counts = %v, want exactly one done (restore must overwrite, not duplicate)", c)
	}
	_ = fmt.Sprintf("%v", j)
}
