package fleet

// Handoff queue: the coordinator's ledger of accepted-but-unfinished
// jobs and the dedup memory that makes re-enqueueing safe.
//
// Every accepted job is admitted with its routing key (netlist
// fingerprint + canonical options — the same pair the workers key their
// result caches by) and assigned to the worker it was forwarded to. A
// job whose client handler is live is "attached": the handler itself
// retries on worker failure, so attached jobs are never reclaimed out
// from under it. Jobs recovered from the coordinator's WAL at boot, or
// re-enqueued after an ejection, are "detached": no handler owns them,
// and when their worker is ejected Reclaim hands them back — each job
// exactly once — for re-forwarding to survivors.
//
// Completion is remembered per key (bounded FIFO memory): a detached
// duplicate of a job that already completed — the at-least-once case,
// e.g. a WAL replay racing a synchronous retry that won — is answered
// from that memory instead of re-running, which is what "at-least-once,
// deduplicated by fingerprint+options" means operationally.

import (
	"sync"
)

// JobKey identifies a logical job: the netlist fingerprint plus the
// canonical rendering of every option that can change the result.
type JobKey struct {
	Fingerprint uint64
	Opts        string
}

// Job is one accepted-but-unfinished job tracked by the queue.
type Job struct {
	// ID is the coordinator's job id.
	ID string
	// Key is the dedup/routing key.
	Key JobKey
	// Format, Query, Netlist reproduce the original request, enough to
	// re-forward it.
	Format  string
	Query   string
	Netlist string
	// Worker is the current assignment ("" = unassigned).
	Worker string
	// Detached marks a job with no live client handler (WAL-recovered or
	// ejection-requeued); only detached jobs are reclaimed on ejection.
	Detached bool
}

// Done summarizes a completed job (what /jobs/{id} reports and what a
// deduplicated duplicate is answered with).
type Done struct {
	Cut      int
	TierName string
	Worker   string
	Degraded bool
}

// DefaultDedupMemory bounds the completed-key memory when
// NewHandoffQueue is given a non-positive capacity.
const DefaultDedupMemory = 4096

// HandoffQueue is the concurrency-safe job ledger. Construct with
// NewHandoffQueue; the zero value is not usable.
type HandoffQueue struct {
	mu       sync.Mutex
	inflight map[string]*Job            // by job id
	byWorker map[string]map[string]bool // worker -> job ids
	done     map[JobKey]Done
	order    []JobKey // FIFO eviction order for done
	cap      int

	completed int64
	reclaimed int64
	deduped   int64
}

// NewHandoffQueue returns an empty queue remembering up to dedupCap
// completed keys (<= 0 means DefaultDedupMemory).
func NewHandoffQueue(dedupCap int) *HandoffQueue {
	if dedupCap <= 0 {
		dedupCap = DefaultDedupMemory
	}
	return &HandoffQueue{
		inflight: make(map[string]*Job),
		byWorker: make(map[string]map[string]bool),
		done:     make(map[JobKey]Done),
		cap:      dedupCap,
	}
}

// Admit registers an accepted job. If the job's key already completed,
// Admit does not enqueue it and returns the remembered outcome with
// dup=true — the caller should mark the job done without running it.
// Live client requests are admitted unconditionally (dedupe is for
// detached re-enqueues; a live client wants a full response body, which
// the worker's own result cache provides cheaply).
func (q *HandoffQueue) Admit(j Job) (prev Done, dup bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if j.Detached {
		if d, ok := q.done[j.Key]; ok {
			q.deduped++
			return d, true
		}
	}
	job := j
	q.inflight[job.ID] = &job
	if job.Worker != "" {
		q.assignLocked(job.ID, job.Worker)
	}
	return Done{}, false
}

// Assign moves a job's current assignment to worker (retry routing
// calls this each time it picks a new candidate).
func (q *HandoffQueue) Assign(jobID, worker string) {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, ok := q.inflight[jobID]
	if !ok {
		return
	}
	if j.Worker != "" {
		delete(q.byWorker[j.Worker], jobID)
	}
	j.Worker = worker
	q.assignLocked(jobID, worker)
}

func (q *HandoffQueue) assignLocked(jobID, worker string) {
	set, ok := q.byWorker[worker]
	if !ok {
		set = make(map[string]bool)
		q.byWorker[worker] = set
	}
	set[jobID] = true
}

// Complete records a job's outcome, remembers it under the job's key,
// and removes the job from flight. It is idempotent: only the first
// completion of a job id returns true.
func (q *HandoffQueue) Complete(jobID string, d Done) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, ok := q.inflight[jobID]
	if !ok {
		return false
	}
	q.removeLocked(j)
	q.completed++
	if _, seen := q.done[j.Key]; !seen {
		if len(q.order) >= q.cap {
			delete(q.done, q.order[0])
			q.order = q.order[1:]
		}
		q.order = append(q.order, j.Key)
	}
	q.done[j.Key] = d
	return true
}

// Fail removes a job from flight without recording a completion (the
// job failed permanently; a later identical request runs afresh).
func (q *HandoffQueue) Fail(jobID string) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if j, ok := q.inflight[jobID]; ok {
		q.removeLocked(j)
	}
}

func (q *HandoffQueue) removeLocked(j *Job) {
	delete(q.inflight, j.ID)
	if j.Worker != "" {
		delete(q.byWorker[j.Worker], j.ID)
	}
}

// Detach marks a job as ownerless — its client handler gave up (e.g.
// the coordinator is shutting down mid-retry) and ejection reclaim may
// now take it.
func (q *HandoffQueue) Detach(jobID string) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if j, ok := q.inflight[jobID]; ok {
		j.Detached = true
	}
}

// Reclaim removes and returns the detached jobs currently assigned to
// worker — a dead worker's accepted-but-unfinished handoff set. Each
// job leaves the queue exactly once (re-Admit it to run it again).
// Attached jobs stay: their live handlers observe the worker failure
// directly and fail over themselves.
func (q *HandoffQueue) Reclaim(worker string) []Job {
	q.mu.Lock()
	defer q.mu.Unlock()
	var out []Job
	for jobID := range q.byWorker[worker] {
		j := q.inflight[jobID]
		if j == nil || !j.Detached {
			continue
		}
		out = append(out, *j)
		q.removeLocked(j)
		q.reclaimed++
	}
	return out
}

// DoneFor returns the remembered outcome for key, if any.
func (q *HandoffQueue) DoneFor(key JobKey) (Done, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	d, ok := q.done[key]
	return d, ok
}

// Pending is the in-flight job count.
func (q *HandoffQueue) Pending() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.inflight)
}

// Stats returns the queue's counters (the /healthz shape).
func (q *HandoffQueue) Stats() map[string]int64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	return map[string]int64{
		"pending":   int64(len(q.inflight)),
		"completed": q.completed,
		"reclaimed": q.reclaimed,
		"deduped":   q.deduped,
	}
}
