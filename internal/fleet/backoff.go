package fleet

// Deterministic retry backoff. The coordinator retries a failed forward
// on the next worker in ring order; between attempts it sleeps an
// exponentially growing, jittered delay. The jitter is derived from
// (seed, attempt) with splitmix64 — never the wall clock — so a chaos
// run with a fixed seed replays the same retry timing every time, and
// concurrent requests with different seeds don't retry in lockstep
// (no thundering herd onto a recovering worker).

import (
	"context"
	"time"
)

// BackoffConfig shapes a retry schedule.
type BackoffConfig struct {
	// Base is the first retry's nominal delay (values <= 0 mean 25ms).
	Base time.Duration
	// Cap bounds the exponential growth (values <= 0 mean 1s).
	Cap time.Duration
	// Seed drives the deterministic jitter.
	Seed int64
}

func (c BackoffConfig) withDefaults() BackoffConfig {
	if c.Base <= 0 {
		c.Base = 25 * time.Millisecond
	}
	if c.Cap <= 0 {
		c.Cap = time.Second
	}
	return c
}

// Delay returns attempt's backoff: Base·2^attempt capped at Cap, then
// jittered into [d/2, 3d/2) deterministically from (Seed, attempt).
// Attempt 0 is the delay before the first retry.
func (c BackoffConfig) Delay(attempt int) time.Duration {
	c = c.withDefaults()
	d := c.Base
	for i := 0; i < attempt && d < c.Cap; i++ {
		d *= 2
	}
	if d > c.Cap {
		d = c.Cap
	}
	h := splitmix64(uint64(c.Seed) ^ splitmix64(uint64(attempt)))
	frac := float64(h%1024) / 1024 // [0, 1)
	return d/2 + time.Duration(frac*float64(d))
}

// Sleep blocks for attempt's delay or until ctx expires, whichever is
// first, and reports whether the full delay elapsed (false = give up,
// the context is gone).
func (c BackoffConfig) Sleep(ctx context.Context, attempt int) bool {
	d := c.Delay(attempt)
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}
