package fleet

// Consistent-hash ring. Each member contributes `replicas` virtual
// nodes whose positions are pure functions of (member id, replica
// index), so the ring's layout is identical across coordinator restarts
// and across coordinators — routing never depends on join order. Lookup
// walks clockwise from the key's position and returns distinct members,
// giving every job a stable preference order: the primary owner first
// (cache affinity), then the successors a retry should fail over to.

import (
	"sort"
	"sync"
)

// DefaultReplicas is the virtual-node count per member when NewRing is
// given a non-positive value. 64 keeps the max/mean key imbalance under
// ~30% for small fleets without making membership changes expensive.
const DefaultReplicas = 64

// Ring is a consistent-hash ring over member ids. Safe for concurrent
// use; the zero value is not usable — construct with NewRing.
type Ring struct {
	replicas int

	mu      sync.RWMutex
	keys    []uint64          // sorted virtual-node positions
	owner   map[uint64]string // position -> member id
	members map[string]struct{}
}

// NewRing returns an empty ring with the given virtual-node count per
// member (<= 0 means DefaultReplicas).
func NewRing(replicas int) *Ring {
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	return &Ring{
		replicas: replicas,
		owner:    make(map[uint64]string),
		members:  make(map[string]struct{}),
	}
}

// vnode is the position of member id's replica i: the id's FNV-1a base
// point split into per-replica streams, the same construction the
// engine uses for per-start RNGs.
func vnode(id string, i int) uint64 {
	return splitmix64(fnv1a(id) ^ splitmix64(uint64(i)))
}

// Add inserts a member; it reports false if the member was already
// present. On the (astronomically unlikely) event of a virtual-node
// position collision between two members, the lexicographically smaller
// id keeps the slot, so the layout stays independent of join order.
func (r *Ring) Add(id string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.members[id]; ok {
		return false
	}
	r.members[id] = struct{}{}
	for i := 0; i < r.replicas; i++ {
		h := vnode(id, i)
		if prev, taken := r.owner[h]; taken {
			if prev <= id {
				continue
			}
		} else {
			r.keys = append(r.keys, h)
		}
		r.owner[h] = id
	}
	sort.Slice(r.keys, func(a, b int) bool { return r.keys[a] < r.keys[b] })
	return true
}

// Remove deletes a member; it reports false if the member was absent.
func (r *Ring) Remove(id string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.members[id]; !ok {
		return false
	}
	delete(r.members, id)
	kept := r.keys[:0]
	for _, h := range r.keys {
		if r.owner[h] == id {
			delete(r.owner, h)
			// Another member may also hash here (collision); re-add its
			// claim so its slot is not lost with the departing member.
			if heir, ok := r.collisionHeir(h); ok {
				r.owner[h] = heir
				kept = append(kept, h)
			}
			continue
		}
		kept = append(kept, h)
	}
	r.keys = kept
	return true
}

// collisionHeir finds the smallest surviving member whose virtual nodes
// include position h (collision cleanup for Remove; almost never runs).
func (r *Ring) collisionHeir(h uint64) (string, bool) {
	heir, found := "", false
	for id := range r.members {
		for i := 0; i < r.replicas; i++ {
			if vnode(id, i) == h && (!found || id < heir) {
				heir, found = id, true
			}
		}
	}
	return heir, found
}

// Has reports whether id is a member.
func (r *Ring) Has(id string) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	_, ok := r.members[id]
	return ok
}

// Len is the member count.
func (r *Ring) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.members)
}

// Members returns the member ids, sorted.
func (r *Ring) Members() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.members))
	for id := range r.members {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Lookup returns up to n distinct members in preference order for key:
// the owner of the first virtual node clockwise from key, then the
// owners of the following nodes. n <= 0 means every member. The result
// is the failover order for a job whose fingerprint hashes to key.
func (r *Ring) Lookup(key uint64, n int) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.keys) == 0 {
		return nil
	}
	if n <= 0 || n > len(r.members) {
		n = len(r.members)
	}
	start := sort.Search(len(r.keys), func(i int) bool { return r.keys[i] >= key })
	out := make([]string, 0, n)
	seen := make(map[string]struct{}, n)
	for i := 0; i < len(r.keys) && len(out) < n; i++ {
		id := r.owner[r.keys[(start+i)%len(r.keys)]]
		if _, dup := seen[id]; dup {
			continue
		}
		seen[id] = struct{}{}
		out = append(out, id)
	}
	return out
}
