package cluster

import (
	"math/rand"
	"testing"

	"fasthgp/internal/core"
	"fasthgp/internal/gen"
	"fasthgp/internal/hypergraph"
	"fasthgp/internal/partition"
)

func TestErrorEmpty(t *testing.T) {
	h := hypergraph.NewBuilder(0).MustBuild()
	if _, err := Cluster(h, Options{}); err == nil {
		t.Error("accepted empty hypergraph")
	}
}

func TestTwoBlocksClusterApart(t *testing.T) {
	// Two dense blocks joined by one wide net: the bridge's per-pin
	// connectivity (w/(|e|−1) = 1/3) is strictly weaker than any intra
	// pair net (1), so with a weight cap of half the total no cluster
	// may span the bridge.
	b := hypergraph.NewBuilder(12)
	for i := 0; i < 6; i++ {
		for j := i + 1; j < 6; j++ {
			b.AddEdge(i, j)
			b.AddEdge(6+i, 6+j)
		}
	}
	b.AddEdge(0, 1, 6, 7)
	h := b.MustBuild()
	res, err := Cluster(h, Options{MaxClusterWeight: 6, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Every intra-block pair should be clusterable, the bridge not.
	for v := 1; v < 6; v++ {
		if res.ClusterOf[v] == res.ClusterOf[6] {
			t.Errorf("modules %d and 6 merged across the bridge", v)
		}
	}
	if res.NumClusters < 2 {
		t.Errorf("NumClusters = %d, want >= 2", res.NumClusters)
	}
	if res.NumClusters > 4 {
		t.Errorf("NumClusters = %d; dense blocks should collapse", res.NumClusters)
	}
}

func TestWeightCapRespected(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	h, err := gen.Profile(gen.ProfileConfig{Modules: 200, Signals: 400, Technology: gen.GateArray}, rng)
	if err != nil {
		t.Fatal(err)
	}
	cap := int64(10)
	res, err := Cluster(h, Options{MaxClusterWeight: cap, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	sums := make([]int64, res.NumClusters)
	for v := 0; v < h.NumVertices(); v++ {
		sums[res.ClusterOf[v]] += h.VertexWeight(v)
	}
	for c, w := range sums {
		if w > cap {
			t.Errorf("cluster %d weight %d > cap %d", c, w, cap)
		}
	}
	if res.H.TotalVertexWeight() != h.TotalVertexWeight() {
		t.Error("clustered hypergraph lost weight")
	}
}

func TestAbsorptionBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	h, err := gen.Profile(gen.ProfileConfig{Modules: 150, Signals: 300, Technology: gen.StdCell}, rng)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Cluster(h, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Absorption < 0 || res.Absorption > 1 {
		t.Fatalf("absorption = %g", res.Absorption)
	}
	// Clustering must absorb more than the all-singletons labeling (0)
	// and less than the everything-in-one-cluster labeling (1).
	singletons := make([]int, h.NumVertices())
	for v := range singletons {
		singletons[v] = v
	}
	if Absorption(h, singletons) != 0 {
		t.Error("singleton absorption != 0")
	}
	one := make([]int, h.NumVertices())
	if Absorption(h, one) != 1 {
		t.Error("one-cluster absorption != 1")
	}
	if res.Absorption <= 0 {
		t.Error("clustering absorbed nothing")
	}
}

func TestClusteredPartitionProjects(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	h, err := gen.Profile(gen.ProfileConfig{Modules: 300, Signals: 600, Technology: gen.StdCell}, rng)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Cluster(h, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.H.NumVertices() >= h.NumVertices() {
		t.Fatalf("no contraction: %d clusters of %d modules", res.H.NumVertices(), h.NumVertices())
	}
	out, err := core.Bipartition(res.H, core.Options{Starts: 10, Seed: 1, BalancedBFS: true, Completion: core.CompletionWeighted})
	if err != nil {
		t.Fatal(err)
	}
	p := res.Project(out.Partition)
	if err := p.Validate(h); err != nil {
		t.Fatalf("projected partition invalid: %v", err)
	}
	// Weighted cut of the projection equals the clustered weighted cut.
	if partition.WeightedCutSize(h, p) != partition.WeightedCutSize(res.H, out.Partition) {
		t.Error("weighted cut not preserved by projection")
	}
}

func TestDeterministicPerSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	h, err := gen.Profile(gen.ProfileConfig{Modules: 100, Signals: 200, Technology: gen.PCB}, rng)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Cluster(h, Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Cluster(h, Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if a.NumClusters != b.NumClusters || a.Absorption != b.Absorption {
		t.Error("same seed gave different clusterings")
	}
}
