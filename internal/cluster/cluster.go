// Package cluster implements bottom-up connectivity clustering of a
// netlist — the preprocessing step of the "clustering placement"
// methodology that the paper's opening sentence places min-cut
// bisection inside. Unlike internal/coarsen (which pairs vertices for
// a multilevel hierarchy), clustering merges many modules into
// capacity-bounded groups and reports the absorption metric: the
// fraction of pin connectivity captured inside clusters, which is what
// a good logical clustering maximizes.
package cluster

import (
	"fmt"
	"math/rand"

	"fasthgp/internal/hypergraph"
	"fasthgp/internal/partition"
)

// Options configures Cluster.
type Options struct {
	// MaxClusterWeight caps the total module weight of a cluster
	// (default: total/16, at least the heaviest module).
	MaxClusterWeight int64
	// Passes is the number of merge sweeps (default 3).
	Passes int
	// Seed orders the sweeps deterministically.
	Seed int64
}

// Result describes a clustering.
type Result struct {
	// ClusterOf maps each module to its cluster id (0..NumClusters-1).
	ClusterOf []int
	// NumClusters is the number of clusters.
	NumClusters int
	// H is the clustered hypergraph (one vertex per cluster; nets
	// contracted, singleton nets dropped, duplicates merged by weight).
	H *hypergraph.Hypergraph
	// Absorption is Σ_e Σ_c (p_c(e) − 1) · w(e) / (|e| − 1) normalized
	// by total net weight: 1 means every net fully inside one cluster,
	// 0 means no two pins of any net share a cluster.
	Absorption float64
}

// Cluster groups the modules of h.
func Cluster(h *hypergraph.Hypergraph, opts Options) (*Result, error) {
	n := h.NumVertices()
	if n == 0 {
		return nil, fmt.Errorf("cluster: empty hypergraph")
	}
	if opts.Passes <= 0 {
		opts.Passes = 3
	}
	cap := opts.MaxClusterWeight
	if cap <= 0 {
		cap = h.TotalVertexWeight() / 16
	}
	for v := 0; v < n; v++ {
		if h.VertexWeight(v) > cap {
			cap = h.VertexWeight(v)
		}
	}
	if cap < 1 {
		cap = 1
	}

	parent := make([]int, n)
	weight := make([]int64, n)
	for v := 0; v < n; v++ {
		parent[v] = v
		weight[v] = h.VertexWeight(v)
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}

	rng := rand.New(rand.NewSource(opts.Seed))
	score := make(map[int]float64, 16)
	for pass := 0; pass < opts.Passes; pass++ {
		merged := false
		for _, v := range rng.Perm(n) {
			rv := find(v)
			clear(score)
			for _, e := range h.VertexEdges(v) {
				size := h.EdgeSize(e)
				if size < 2 {
					continue
				}
				w := float64(h.EdgeWeight(e)) / float64(size-1)
				for _, u := range h.EdgePins(e) {
					ru := find(u)
					if ru != rv {
						score[ru] += w
					}
				}
			}
			best, bestScore := -1, 0.0
			for ru, s := range score {
				if weight[rv]+weight[ru] > cap {
					continue
				}
				if s > bestScore || (s == bestScore && best != -1 && ru < best) {
					best, bestScore = ru, s
				}
			}
			if best != -1 {
				parent[best] = rv
				weight[rv] += weight[best]
				merged = true
			}
		}
		if !merged {
			break
		}
	}

	res := &Result{ClusterOf: make([]int, n)}
	label := map[int]int{}
	for v := 0; v < n; v++ {
		r := find(v)
		id, ok := label[r]
		if !ok {
			id = len(label)
			label[r] = id
		}
		res.ClusterOf[v] = id
	}
	res.NumClusters = len(label)
	res.H = contract(h, res.ClusterOf, res.NumClusters)
	res.Absorption = Absorption(h, res.ClusterOf)
	return res, nil
}

// Absorption computes the absorbed connectivity fraction of an
// arbitrary clustering labeling.
func Absorption(h *hypergraph.Hypergraph, clusterOf []int) float64 {
	var absorbed, total float64
	count := map[int]int{}
	for e := 0; e < h.NumEdges(); e++ {
		size := h.EdgeSize(e)
		if size < 2 {
			continue
		}
		w := float64(h.EdgeWeight(e))
		total += w
		clear(count)
		for _, v := range h.EdgePins(e) {
			count[clusterOf[v]]++
		}
		inside := 0
		for _, c := range count {
			inside += c - 1
		}
		absorbed += w * float64(inside) / float64(size-1)
	}
	if total == 0 {
		return 0
	}
	return absorbed / total
}

// Project lifts a partition of the clustered hypergraph back to the
// modules.
func (r *Result) Project(p *partition.Bipartition) *partition.Bipartition {
	out := partition.New(len(r.ClusterOf))
	for v, c := range r.ClusterOf {
		out.Assign(v, p.Side(c))
	}
	return out
}

// contract builds the clustered hypergraph (same merging rules as
// multilevel coarsening).
func contract(h *hypergraph.Hypergraph, clusterOf []int, k int) *hypergraph.Hypergraph {
	b := hypergraph.NewBuilder(k)
	weights := make([]int64, k)
	for v := 0; v < h.NumVertices(); v++ {
		weights[clusterOf[v]] += h.VertexWeight(v)
	}
	for c, w := range weights {
		b.SetVertexWeight(c, w)
	}
	type key string
	merged := map[key]int{}
	mergedWeight := map[int]int64{}
	for e := 0; e < h.NumEdges(); e++ {
		seen := map[int]bool{}
		var pins []int
		for _, v := range h.EdgePins(e) {
			c := clusterOf[v]
			if !seen[c] {
				seen[c] = true
				pins = append(pins, c)
			}
		}
		if len(pins) < 2 {
			continue
		}
		sortInts(pins)
		sig := make([]byte, 0, 4*len(pins))
		for _, p := range pins {
			sig = append(sig, byte(p), byte(p>>8), byte(p>>16), byte(p>>24))
		}
		kk := key(sig)
		if id, ok := merged[kk]; ok {
			mergedWeight[id] += h.EdgeWeight(e)
			continue
		}
		id := b.AddEdge(pins...)
		merged[kk] = id
		mergedWeight[id] = h.EdgeWeight(e)
	}
	for id, w := range mergedWeight {
		b.SetEdgeWeight(id, w)
	}
	ch, err := b.Build()
	if err != nil {
		panic("cluster: contraction produced invalid hypergraph: " + err.Error())
	}
	return ch
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		x := xs[i]
		j := i - 1
		for j >= 0 && xs[j] > x {
			xs[j+1] = xs[j]
			j--
		}
		xs[j+1] = x
	}
}
