package graph

// Differential tests for the frontier-chunked parallel double BFS: for
// every input and every worker count the labeling must be bit-for-bit
// identical to the serial kernel — the same contract the multi-start
// engine guarantees one level up. The fuzz target extends the check to
// arbitrary CSRs, and the oversubscription test runs the chunked path
// under -race with far more workers than GOMAXPROCS.

import (
	"math/rand"
	"reflect"
	"runtime"
	"testing"
)

// randomConnectedGraph builds a connected random graph on n vertices:
// a random spanning tree plus extra random edges.
func randomConnectedGraph(t testing.TB, n, extra int, rng *rand.Rand) *Graph {
	t.Helper()
	b := NewBuilder(n)
	for v := 1; v < n; v++ {
		b.AddEdge(v, rng.Intn(v))
	}
	for i := 0; i < extra; i++ {
		b.AddEdge(rng.Intn(n), rng.Intn(n))
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestDoubleBFSSidesParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	shapes := []struct{ n, extra int }{
		{2, 0}, {3, 2}, {17, 10}, {100, 150}, {257, 64},
		// Larger than minParallelFrontier so the chunked path actually
		// engages (a star's first level has n-1 frontier vertices).
		{1200, 4000}, {3000, 9000},
	}
	for _, sh := range shapes {
		g := randomConnectedGraph(t, sh.n, sh.extra, rng)
		for trial := 0; trial < 8; trial++ {
			u, v := rng.Intn(sh.n), rng.Intn(sh.n)
			want := g.DoubleBFSSides(u, v)
			for _, workers := range []int{1, 2, 3, 4, 8} {
				got := g.DoubleBFSSidesParallel(u, v, workers)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("n=%d u=%d v=%d workers=%d: parallel labeling diverges from serial",
						sh.n, u, v, workers)
				}
			}
		}
	}
}

func TestDoubleBFSSidesParallelEdgeCases(t *testing.T) {
	empty := NewBuilder(0).MustBuild()
	if got := empty.DoubleBFSSidesParallel(0, 0, 4); len(got) != 0 {
		t.Fatalf("empty graph: got %v", got)
	}

	single := NewBuilder(1).MustBuild()
	if got := single.DoubleBFSSidesParallel(0, 0, 4); !reflect.DeepEqual(got, []int{0}) {
		t.Fatalf("single vertex: got %v, want [0]", got)
	}

	// u == v: the whole reachable set belongs to side 0, as in serial.
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	g := b.MustBuild()
	want := g.DoubleBFSSides(1, 1)
	if got := g.DoubleBFSSidesParallel(1, 1, 4); !reflect.DeepEqual(got, want) {
		t.Fatalf("u==v: got %v, want %v", got, want)
	}
	// Vertex 3 is isolated: Unreached under both kernels.
	if want[3] != Unreached {
		t.Fatalf("isolated vertex labeled %d, want Unreached", want[3])
	}

	// Disconnected sources: each side claims its own component.
	b2 := NewBuilder(6)
	b2.AddEdge(0, 1)
	b2.AddEdge(1, 2)
	b2.AddEdge(3, 4)
	g2 := b2.MustBuild()
	want2 := g2.DoubleBFSSides(0, 3)
	if got := g2.DoubleBFSSidesParallel(0, 3, 4); !reflect.DeepEqual(got, want2) {
		t.Fatalf("disconnected: got %v, want %v", got, want2)
	}
}

func TestDoubleBFSSidesParallelIntoReusesBuffers(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := randomConnectedGraph(t, 800, 2400, rng)
	n := g.NumVertices()
	side := make([]int, n)
	f0 := make([]int, 0, n)
	f1 := make([]int, 0, n)
	next := make([]int, 0, n)
	var stats ParallelBFSStats
	for trial := 0; trial < 5; trial++ {
		u, v := rng.Intn(n), rng.Intn(n)
		want := g.DoubleBFSSides(u, v)
		got := g.DoubleBFSSidesParallelInto(u, v, 4, side, f0, f1, next, &stats)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: Into variant diverges from serial", trial)
		}
		if stats.Levels == 0 || stats.Candidates == 0 {
			t.Fatalf("trial %d: stats not populated: %+v", trial, stats)
		}
		if stats.CriticalPath > stats.Candidates {
			t.Fatalf("trial %d: critical path %d exceeds total work %d", trial, stats.CriticalPath, stats.Candidates)
		}
	}
}

func TestDoubleBFSSidesParallelStatsDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := randomConnectedGraph(t, 2000, 7000, rng)
	var first ParallelBFSStats
	for trial := 0; trial < 3; trial++ {
		var stats ParallelBFSStats
		g.DoubleBFSSidesParallelInto(0, g.NumVertices()-1, 8,
			make([]int, g.NumVertices()), nil, nil, nil, &stats)
		if trial == 0 {
			first = stats
			if first.ParallelLevels == 0 {
				t.Fatalf("chunked path never engaged: %+v", first)
			}
			continue
		}
		if stats != first {
			t.Fatalf("stats vary across identical runs: %+v vs %+v", stats, first)
		}
	}
}

// TestDoubleBFSParallelOversubscribed floods the chunked path with far
// more workers than GOMAXPROCS — the regime where scheduling order is
// least predictable — and checks the labeling is still serial-identical.
// Run under -race in CI, it also proves the level scans are data-race
// free.
func TestDoubleBFSParallelOversubscribed(t *testing.T) {
	prev := runtime.GOMAXPROCS(2)
	defer runtime.GOMAXPROCS(prev)

	rng := rand.New(rand.NewSource(23))
	g := randomConnectedGraph(t, 2500, 8000, rng)
	for trial := 0; trial < 6; trial++ {
		u, v := rng.Intn(2500), rng.Intn(2500)
		want := g.DoubleBFSSides(u, v)
		got := g.DoubleBFSSidesParallel(u, v, 16)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: oversubscribed parallel labeling diverges", trial)
		}
	}
}

// FuzzParallelDoubleBFS decodes arbitrary bytes into a graph and source
// pair and checks the parallel kernel against DoubleBFSSidesInto. The
// encoding is deliberately permissive (any bytes make some graph) so
// coverage-guided exploration can reach unusual shapes: multi-component
// graphs, stars, paths, self-pair sources.
func FuzzParallelDoubleBFS(f *testing.F) {
	f.Add([]byte{8, 0, 1, 1, 2, 2, 3, 0, 3}, uint8(0), uint8(3), uint8(2))
	f.Add([]byte{5, 0, 1, 0, 2, 0, 3, 0, 4}, uint8(1), uint8(4), uint8(4))
	f.Add([]byte{3, 0, 1}, uint8(2), uint8(2), uint8(8))
	f.Add([]byte{0}, uint8(0), uint8(0), uint8(3))
	f.Fuzz(func(t *testing.T, data []byte, su, sv, workers uint8) {
		if len(data) == 0 {
			return
		}
		n := int(data[0])%64 + 1
		b := NewBuilder(n)
		for i := 1; i+1 < len(data); i += 2 {
			b.AddEdge(int(data[i])%n, int(data[i+1])%n)
		}
		g, err := b.Build()
		if err != nil {
			t.Fatalf("builder rejected in-range edges: %v", err)
		}
		u, v := int(su)%n, int(sv)%n
		want := g.DoubleBFSSides(u, v)
		w := int(workers)%9 + 1
		got := g.DoubleBFSSidesParallel(u, v, w)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("n=%d u=%d v=%d workers=%d: parallel %v, serial %v", n, u, v, w, got, want)
		}
	})
}
