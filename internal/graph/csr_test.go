package graph

// Tests for the CSR adoption constructors (FromCSR, UncheckedCSR), the
// ValidateCSR oracle they rest on, the cached MaxDegree, and the
// buffer-reusing Into variants of the double-BFS cut.

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

func TestFromCSRAdoptsValidArrays(t *testing.T) {
	// Path 0-1-2.
	start := []int{0, 1, 3, 4}
	adj := []int{1, 0, 2, 1}
	g, err := FromCSR(start, adj)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 3 || g.NumEdges() != 2 {
		t.Fatalf("got %v", g)
	}
	if !reflect.DeepEqual(g.Neighbors(1), []int{0, 2}) {
		t.Fatalf("Neighbors(1) = %v", g.Neighbors(1))
	}
	if g.MaxDegree() != 2 {
		t.Fatalf("MaxDegree = %d, want 2", g.MaxDegree())
	}
}

func TestFromCSRRejectsInvalid(t *testing.T) {
	for _, tc := range []struct {
		name    string
		start   []int
		adj     []int
		wantSub string
	}{
		{"empty start", nil, nil, "empty"},
		{"bad bounds", []int{0, 1}, []int{0, 0}, "bounds"},
		{"non-monotone", []int{0, 2, 1, 3}, []int{1, 2, 0}, "monotone"},
		{"out of range", []int{0, 1, 2}, []int{2, 0}, "out-of-range"},
		{"self-loop", []int{0, 1, 2}, []int{0, 0}, "self-loop"},
		{"unsorted row", []int{0, 2, 3, 4}, []int{2, 1, 0, 0}, "ascending"},
		{"duplicate entry", []int{0, 2, 4}, []int{1, 1, 0, 0}, "ascending"},
		{"asymmetric", []int{0, 1, 1}, []int{1}, "no reverse"},
	} {
		if _, err := FromCSR(tc.start, tc.adj); err == nil {
			t.Errorf("%s: FromCSR accepted invalid input", tc.name)
		} else if !strings.Contains(err.Error(), tc.wantSub) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.wantSub)
		}
	}
}

func TestUncheckedCSRMatchesBuilder(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(10)
		b := NewBuilder(n)
		for e := 0; e < rng.Intn(20); e++ {
			b.AddEdge(rng.Intn(n), rng.Intn(n))
		}
		want := b.MustBuild()
		got := UncheckedCSR(want.start, want.adj)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: UncheckedCSR = %+v, want %+v", trial, got, want)
		}
		if err := got.ValidateCSR(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestMaxDegreeCachedAcrossConstructors(t *testing.T) {
	for _, tc := range []struct {
		name string
		g    *Graph
		want int
	}{
		{"empty", NewBuilder(0).MustBuild(), 0},
		{"isolated", NewBuilder(3).MustBuild(), 0},
		{"star", func() *Graph {
			b := NewBuilder(5)
			for i := 1; i < 5; i++ {
				b.AddEdge(0, i)
			}
			return b.MustBuild()
		}(), 4},
	} {
		if got := tc.g.MaxDegree(); got != tc.want {
			t.Errorf("%s: MaxDegree = %d, want %d", tc.name, got, tc.want)
		}
		// The cached value must survive re-adoption of the same arrays.
		if got := UncheckedCSR(tc.g.start, tc.g.adj).MaxDegree(); got != tc.want {
			t.Errorf("%s: UncheckedCSR MaxDegree = %d, want %d", tc.name, got, tc.want)
		}
	}
}

// TestDoubleBFSIntoMatchesAllocating quick-checks that the Into
// variants label identically to the allocating wrappers on random
// graphs and random source pairs, including reused (dirty) buffers.
func TestDoubleBFSIntoMatchesAllocating(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n := 30
	side := make([]int, n)
	f0 := make([]int, 0, n)
	f1 := make([]int, 0, n)
	next := make([]int, 0, n)
	for trial := 0; trial < 100; trial++ {
		b := NewBuilder(n)
		for e := 0; e < 60; e++ {
			b.AddEdge(rng.Intn(n), rng.Intn(n))
		}
		g := b.MustBuild()
		u, v := rng.Intn(n), rng.Intn(n)
		// Buffers are deliberately NOT cleared between trials: Into
		// variants must not depend on incoming contents.
		if got, want := g.DoubleBFSSidesInto(u, v, side, f0, f1, next), g.DoubleBFSSides(u, v); !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: DoubleBFSSidesInto(%d,%d) = %v, want %v", trial, u, v, got, want)
		}
		if got, want := g.DoubleBFSSidesBalancedInto(u, v, side, f0, f1, next), g.DoubleBFSSidesBalanced(u, v); !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: DoubleBFSSidesBalancedInto(%d,%d) = %v, want %v", trial, u, v, got, want)
		}
	}
}
