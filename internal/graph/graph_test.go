package graph

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func path(t *testing.T, n int) *Graph {
	t.Helper()
	b := NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		b.AddEdge(i, i+1)
	}
	return b.MustBuild()
}

func cycle(t *testing.T, n int) *Graph {
	t.Helper()
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddEdge(i, (i+1)%n)
	}
	return b.MustBuild()
}

func TestBuilderDedup(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 0)
	b.AddEdge(0, 1)
	b.AddEdge(1, 1) // self-loop dropped
	g := b.MustBuild()
	if g.NumEdges() != 1 {
		t.Errorf("NumEdges = %d, want 1 after dedup", g.NumEdges())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Error("HasEdge(0,1) false after dedup")
	}
	if g.HasEdge(1, 1) {
		t.Error("self-loop survived")
	}
	if g.HasEdge(0, 2) {
		t.Error("HasEdge invented an edge")
	}
}

func TestBuilderRangeError(t *testing.T) {
	b := NewBuilder(2)
	b.AddEdge(0, 5)
	if _, err := b.Build(); err == nil {
		t.Error("Build accepted out-of-range endpoint")
	}
	b2 := NewBuilder(2)
	b2.AddEdge(-1, 0)
	if _, err := b2.Build(); err == nil {
		t.Error("Build accepted negative endpoint")
	}
}

func TestNeighborsSorted(t *testing.T) {
	b := NewBuilder(5)
	b.AddEdge(2, 4)
	b.AddEdge(2, 0)
	b.AddEdge(2, 3)
	g := b.MustBuild()
	if got := g.Neighbors(2); !reflect.DeepEqual(got, []int{0, 3, 4}) {
		t.Errorf("Neighbors(2) = %v, want sorted [0 3 4]", got)
	}
	if g.Degree(2) != 3 || g.Degree(1) != 0 {
		t.Errorf("degrees: %d, %d", g.Degree(2), g.Degree(1))
	}
	if g.MaxDegree() != 3 {
		t.Errorf("MaxDegree = %d, want 3", g.MaxDegree())
	}
}

func TestBFSPath(t *testing.T) {
	g := path(t, 5)
	dist, parent := g.BFS(0)
	if !reflect.DeepEqual(dist, []int{0, 1, 2, 3, 4}) {
		t.Errorf("dist = %v", dist)
	}
	if parent[0] != 0 || parent[4] != 3 {
		t.Errorf("parent = %v", parent)
	}
}

func TestBFSUnreachable(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	g := b.MustBuild()
	dist, parent := g.BFS(0)
	if dist[2] != Unreached || dist[3] != Unreached {
		t.Errorf("dist = %v, want Unreached for isolated vertices", dist)
	}
	if parent[2] != Unreached {
		t.Errorf("parent = %v", parent)
	}
}

func TestEccentricity(t *testing.T) {
	g := path(t, 6)
	far, d := g.Eccentricity(2)
	if d != 3 || far != 5 {
		t.Errorf("Eccentricity(2) = (%d,%d), want (5,3)", far, d)
	}
}

func TestLongestBFSPathOnPath(t *testing.T) {
	g := path(t, 10)
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		u, v, depth := g.LongestBFSPath(rng)
		// Double sweep on a path graph always finds the true diameter.
		if depth != 9 {
			t.Fatalf("depth = %d, want 9", depth)
		}
		if !((u == 0 && v == 9) || (u == 9 && v == 0)) {
			t.Fatalf("endpoints = (%d,%d), want the path ends", u, v)
		}
	}
}

func TestLongestBFSPathEmptyAndSingle(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g0 := NewBuilder(0).MustBuild()
	if _, _, d := g0.LongestBFSPath(rng); d != 0 {
		t.Errorf("empty graph depth = %d", d)
	}
	g1 := NewBuilder(1).MustBuild()
	u, v, d := g1.LongestBFSPath(rng)
	if u != 0 || v != 0 || d != 0 {
		t.Errorf("single vertex = (%d,%d,%d)", u, v, d)
	}
}

func TestDiameter(t *testing.T) {
	cases := []struct {
		g    *Graph
		want int
	}{
		{path(t, 7), 6},
		{cycle(t, 8), 4},
		{cycle(t, 9), 4},
	}
	for i, c := range cases {
		if got := c.g.Diameter(); got != c.want {
			t.Errorf("case %d: Diameter = %d, want %d", i, got, c.want)
		}
	}
}

func TestComponents(t *testing.T) {
	b := NewBuilder(6)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(3, 4)
	g := b.MustBuild()
	comp, k := g.Components()
	if k != 3 {
		t.Fatalf("k = %d, want 3 (comp=%v)", k, comp)
	}
	if comp[0] != comp[2] || comp[3] != comp[4] || comp[5] == comp[0] || comp[5] == comp[3] {
		t.Errorf("comp = %v", comp)
	}
	if g.IsConnected() {
		t.Error("IsConnected = true for 3-component graph")
	}
	if !path(t, 4).IsConnected() {
		t.Error("IsConnected = false for path")
	}
	if !NewBuilder(0).MustBuild().IsConnected() {
		t.Error("empty graph should count as connected")
	}
}

func TestIsBipartite(t *testing.T) {
	if _, ok := cycle(t, 6).IsBipartite(); !ok {
		t.Error("even cycle reported non-bipartite")
	}
	if _, ok := cycle(t, 5).IsBipartite(); ok {
		t.Error("odd cycle reported bipartite")
	}
	color, ok := path(t, 4).IsBipartite()
	if !ok {
		t.Fatal("path reported non-bipartite")
	}
	for i := 0; i+1 < 4; i++ {
		if color[i] == color[i+1] {
			t.Errorf("adjacent vertices share color: %v", color)
		}
	}
}

func TestDoubleBFSSidesPath(t *testing.T) {
	g := path(t, 6)
	side := g.DoubleBFSSides(0, 5)
	want := []int{0, 0, 0, 1, 1, 1}
	if !reflect.DeepEqual(side, want) {
		t.Errorf("side = %v, want %v", side, want)
	}
}

func TestDoubleBFSSidesTie(t *testing.T) {
	// Path of odd length: middle vertex is claimed by side 0 (expands
	// first in the alternation).
	g := path(t, 5)
	side := g.DoubleBFSSides(0, 4)
	want := []int{0, 0, 0, 1, 1}
	if !reflect.DeepEqual(side, want) {
		t.Errorf("side = %v, want %v", side, want)
	}
}

func TestDoubleBFSSidesSameSource(t *testing.T) {
	g := path(t, 4)
	side := g.DoubleBFSSides(2, 2)
	for v, s := range side {
		if s != 0 {
			t.Errorf("side[%d] = %d, want 0 when both sources coincide", v, s)
		}
	}
}

func TestDoubleBFSSidesUnreachable(t *testing.T) {
	b := NewBuilder(5)
	b.AddEdge(0, 1)
	b.AddEdge(2, 3)
	g := b.MustBuild()
	side := g.DoubleBFSSides(0, 2)
	if side[0] != 0 || side[1] != 0 {
		t.Errorf("component of u mislabeled: %v", side)
	}
	if side[2] != 1 || side[3] != 1 {
		t.Errorf("component of v mislabeled: %v", side)
	}
	if side[4] != Unreached {
		t.Errorf("isolated vertex labeled %d, want Unreached", side[4])
	}
}

func TestDoubleBFSSidesBalanced(t *testing.T) {
	// Lollipop: a long path hanging off one end of a short one. The
	// balanced policy should give the path side more levels.
	b := NewBuilder(10)
	for i := 0; i+1 < 9; i++ {
		b.AddEdge(i, i+1)
	}
	b.AddEdge(8, 9)
	g := b.MustBuild()
	side := g.DoubleBFSSidesBalanced(0, 9)
	if side[0] != 0 || side[9] != 1 {
		t.Fatalf("sources mislabeled: %v", side)
	}
	// Every vertex labeled, only 0/1.
	for v, s := range side {
		if s != 0 && s != 1 {
			t.Errorf("vertex %d label %d", v, s)
		}
	}
	// Same-source degenerate case.
	same := g.DoubleBFSSidesBalanced(3, 3)
	for v, s := range same {
		if s != 0 {
			t.Errorf("same-source: vertex %d label %d, want 0", v, s)
		}
	}
}

func TestPropertyDoubleBFSBalancedCovers(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		g := randomGraph(rng, n, 0.15)
		u, v := rng.Intn(n), rng.Intn(n)
		side := g.DoubleBFSSidesBalanced(u, v)
		du, _ := g.BFS(u)
		dv, _ := g.BFS(v)
		for x := 0; x < n; x++ {
			reachable := du[x] != Unreached || dv[x] != Unreached
			if reachable != (side[x] != Unreached) {
				return false
			}
		}
		return side[u] == 0 && (u == v || side[v] == 1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestSubgraph(t *testing.T) {
	g := cycle(t, 6)
	sub, origOf := g.Subgraph(func(v int) bool { return v != 3 })
	if sub.NumVertices() != 5 {
		t.Fatalf("NumVertices = %d, want 5", sub.NumVertices())
	}
	if sub.NumEdges() != 4 {
		t.Errorf("NumEdges = %d, want 4 (cycle minus one vertex = path)", sub.NumEdges())
	}
	if !reflect.DeepEqual(origOf, []int{0, 1, 2, 4, 5}) {
		t.Errorf("origOf = %v", origOf)
	}
	if sub.Diameter() != 4 {
		t.Errorf("subgraph diameter = %d, want 4", sub.Diameter())
	}
}

func TestString(t *testing.T) {
	g := path(t, 3)
	if got, want := g.String(), "Graph{vertices: 3, edges: 2}"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func randomGraph(rng *rand.Rand, n int, p float64) *Graph {
	b := NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				b.AddEdge(u, v)
			}
		}
	}
	return b.MustBuild()
}

// TestPropertyBFSDistTriangle checks the BFS distance function obeys
// |dist(u,x) − dist(u,y)| ≤ 1 for every edge {x,y} in the same
// component as u.
func TestPropertyBFSDistTriangle(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		g := randomGraph(rng, n, 0.2)
		src := rng.Intn(n)
		dist, _ := g.BFS(src)
		for x := 0; x < n; x++ {
			for _, y := range g.Neighbors(x) {
				if dist[x] == Unreached || dist[y] == Unreached {
					if dist[x] != dist[y] {
						return false // edge spanning reachable/unreachable
					}
					continue
				}
				d := dist[x] - dist[y]
				if d < -1 || d > 1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestPropertyDoubleBFSCoversComponent checks every vertex reachable
// from u or v is labeled, labels are only 0/1, and each source keeps
// its own label when distinct.
func TestPropertyDoubleBFSCoversComponent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		g := randomGraph(rng, n, 0.15)
		u, v := rng.Intn(n), rng.Intn(n)
		side := g.DoubleBFSSides(u, v)
		if side[u] != 0 {
			return false
		}
		if v != u && side[v] != 1 {
			return false
		}
		du, _ := g.BFS(u)
		dv, _ := g.BFS(v)
		for x := 0; x < n; x++ {
			reachable := du[x] != Unreached || dv[x] != Unreached
			if reachable != (side[x] != Unreached) {
				return false
			}
			if side[x] != Unreached && side[x] != 0 && side[x] != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestPropertyLongestBFSPathLowerBoundsDiameter checks the pseudo-
// diameter never exceeds, and on connected graphs reasonably tracks,
// the true diameter.
func TestPropertyLongestBFSPathLowerBoundsDiameter(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(25)
		g := randomGraph(rng, n, 0.25)
		_, _, depth := g.LongestBFSPath(rng)
		return depth <= g.Diameter()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestDiameterOfRandomBoundedDegreeIsLogarithmic(t *testing.T) {
	// Sanity check of the Bollobás–de la Vega flavor used by the paper:
	// random cubic-ish graphs have small diameter. We only assert a
	// generous bound to keep the test robust.
	rng := rand.New(rand.NewSource(7))
	n := 256
	b := NewBuilder(n)
	perm1 := rng.Perm(n)
	perm2 := rng.Perm(n)
	for i := 0; i < n; i++ {
		b.AddEdge(i, (i+1)%n) // Hamilton cycle keeps it connected
		b.AddEdge(perm1[i], perm2[i])
	}
	g := b.MustBuild()
	if d := g.Diameter(); d > 20 {
		t.Errorf("diameter of random bounded-degree graph = %d, want O(log n) ~ <= 20", d)
	}
}
