// Package graph provides the simple undirected graph machinery that the
// intersection-graph method of Kahng (DAC 1989) runs on: breadth-first
// search, pseudo-diameter estimation by random longest BFS paths,
// double-source BFS cuts, connected components, exact diameter (for
// verification), and bipartiteness checking.
//
// Graphs here are unweighted and simple (no self-loops, no parallel
// edges); build one with a Builder, which deduplicates.
package graph

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
)

// Graph is an immutable simple undirected graph with vertices
// 0..N-1, stored in CSR adjacency form.
type Graph struct {
	start  []int
	adj    []int
	maxDeg int // computed once at construction; see MaxDegree
}

// NumVertices returns the vertex count.
func (g *Graph) NumVertices() int { return len(g.start) - 1 }

// NumEdges returns the number of undirected edges.
func (g *Graph) NumEdges() int { return len(g.adj) / 2 }

// Neighbors returns the neighbors of v in ascending order. The slice
// aliases internal storage and must not be modified.
func (g *Graph) Neighbors(v int) []int { return g.adj[g.start[v]:g.start[v+1]] }

// Degree returns the degree of vertex v.
func (g *Graph) Degree(v int) int { return g.start[v+1] - g.start[v] }

// MaxDegree returns the maximum degree, or 0 for an empty graph. The
// value is computed once at construction (the graph is immutable), so
// callers in hot loops — bucket-queue sizing in particular — pay O(1).
func (g *Graph) MaxDegree() int { return g.maxDeg }

// computeMaxDeg scans the start offsets; called by every constructor.
func (g *Graph) computeMaxDeg() {
	m := 0
	for v := 0; v < len(g.start)-1; v++ {
		if d := g.start[v+1] - g.start[v]; d > m {
			m = d
		}
	}
	g.maxDeg = m
}

// HasEdge reports whether {u,v} is an edge, by binary search.
func (g *Graph) HasEdge(u, v int) bool {
	nb := g.Neighbors(u)
	i := sort.SearchInts(nb, v)
	return i < len(nb) && nb[i] == v
}

// String returns a compact summary.
func (g *Graph) String() string {
	return fmt.Sprintf("Graph{vertices: %d, edges: %d}", g.NumVertices(), g.NumEdges())
}

// Builder assembles a Graph, deduplicating parallel edges and dropping
// self-loops.
type Builder struct {
	n     int
	pairs [][2]int
}

// NewBuilder returns a Builder for a graph on n vertices.
func NewBuilder(n int) *Builder { return &Builder{n: n} }

// AddEdge records the undirected edge {u,v}. Self-loops are ignored.
// Out-of-range endpoints are reported by Build.
func (b *Builder) AddEdge(u, v int) {
	if u == v {
		return
	}
	b.pairs = append(b.pairs, [2]int{u, v})
}

// Build validates and finalizes the graph.
func (b *Builder) Build() (*Graph, error) {
	for _, p := range b.pairs {
		for _, x := range p {
			if x < 0 || x >= b.n {
				return nil, fmt.Errorf("graph: build: endpoint %d out of range [0,%d)", x, b.n)
			}
		}
	}
	// Count directed arcs with duplicates, then dedupe per vertex.
	deg := make([]int, b.n+1)
	for _, p := range b.pairs {
		deg[p[0]+1]++
		deg[p[1]+1]++
	}
	start := make([]int, b.n+1)
	for v := 0; v < b.n; v++ {
		start[v+1] = start[v] + deg[v+1]
	}
	raw := make([]int, start[b.n])
	cursor := make([]int, b.n)
	copy(cursor, start[:b.n])
	for _, p := range b.pairs {
		raw[cursor[p[0]]] = p[1]
		cursor[p[0]]++
		raw[cursor[p[1]]] = p[0]
		cursor[p[1]]++
	}
	g := &Graph{start: make([]int, b.n+1)}
	adj := make([]int, 0, len(raw))
	for v := 0; v < b.n; v++ {
		g.start[v] = len(adj)
		nb := raw[start[v]:start[v+1]]
		sort.Ints(nb)
		prev := -1
		for _, u := range nb {
			if u != prev {
				adj = append(adj, u)
				prev = u
			}
		}
	}
	g.start[b.n] = len(adj)
	g.adj = adj
	g.computeMaxDeg()
	return g, nil
}

// FromCSR adopts caller-built CSR arrays as a Graph after validating
// every structural invariant with ValidateCSR. start must have length
// n+1 with start[0] == 0 and start[n] == len(adj); row v is
// adj[start[v]:start[v+1]] and must be strictly ascending (simple, no
// self-loop) and symmetric. The slices are adopted, not copied.
func FromCSR(start, adj []int) (*Graph, error) {
	g := &Graph{start: start, adj: adj}
	if err := g.ValidateCSR(); err != nil {
		return nil, err
	}
	g.computeMaxDeg()
	return g, nil
}

// UncheckedCSR adopts caller-built CSR arrays without validation — the
// zero-copy constructor for hot paths whose arrays are generated
// internally (the intersection-graph and boundary-graph builders).
// Callers must uphold the ValidateCSR invariants; the differential and
// fuzz suites check them after the fact.
func UncheckedCSR(start, adj []int) *Graph {
	g := &Graph{start: start, adj: adj}
	g.computeMaxDeg()
	return g
}

// ValidateCSR checks the representation invariants of the CSR arrays:
// monotone offsets, in-range endpoints, rows sorted strictly ascending
// (which implies simplicity: no parallel edges, no self-loops once
// symmetry holds), and symmetry (u lists v iff v lists u). It is the
// oracle behind FromCSR and the construction fuzz targets.
func (g *Graph) ValidateCSR() error {
	n := len(g.start) - 1
	if n < 0 {
		return fmt.Errorf("graph: csr: start array is empty")
	}
	if g.start[0] != 0 || g.start[n] != len(g.adj) {
		return fmt.Errorf("graph: csr: start bounds [%d,%d], want [0,%d]", g.start[0], g.start[n], len(g.adj))
	}
	for v := 0; v < n; v++ {
		if g.start[v+1] < g.start[v] {
			return fmt.Errorf("graph: csr: start not monotone at vertex %d", v)
		}
		row := g.adj[g.start[v]:g.start[v+1]]
		for i, u := range row {
			if u < 0 || u >= n {
				return fmt.Errorf("graph: csr: vertex %d lists out-of-range neighbor %d", v, u)
			}
			if u == v {
				return fmt.Errorf("graph: csr: vertex %d has a self-loop", v)
			}
			if i > 0 && row[i-1] >= u {
				return fmt.Errorf("graph: csr: row of vertex %d not strictly ascending at position %d", v, i)
			}
		}
	}
	// Symmetry: every arc must have its reverse. Rows are sorted, so
	// binary search keeps this O(E log maxdeg) with no allocation.
	for v := 0; v < n; v++ {
		for _, u := range g.adj[g.start[v]:g.start[v+1]] {
			rev := g.adj[g.start[u]:g.start[u+1]]
			i := sort.SearchInts(rev, v)
			if i >= len(rev) || rev[i] != v {
				return fmt.Errorf("graph: csr: arc %d->%d has no reverse", v, u)
			}
		}
	}
	return nil
}

// MustBuild is Build that panics on error; for tests and examples.
func (b *Builder) MustBuild() *Graph {
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

// FromEdges builds a graph on n vertices from an edge pair list.
func FromEdges(n int, edges [][2]int) (*Graph, error) {
	b := NewBuilder(n)
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	return b.Build()
}

// Unreached is the distance value reported by BFS for vertices not
// reachable from the source.
const Unreached = -1

// BFS runs breadth-first search from src and returns the distance of
// every vertex (Unreached for unreachable ones) and the BFS parent
// array (parent[src] = src; Unreached for unreachable vertices).
func (g *Graph) BFS(src int) (dist, parent []int) {
	n := g.NumVertices()
	dist = make([]int, n)
	parent = make([]int, n)
	for i := range dist {
		dist[i] = Unreached
		parent[i] = Unreached
	}
	dist[src] = 0
	parent[src] = src
	queue := make([]int, 0, n)
	queue = append(queue, src)
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		for _, u := range g.Neighbors(v) {
			if dist[u] == Unreached {
				dist[u] = dist[v] + 1
				parent[u] = v
				queue = append(queue, u)
			}
		}
	}
	return dist, parent
}

// bfsBuffers holds the distance and queue arrays of one BFS sweep.
// They are pooled because Eccentricity is the hot path of every
// Algorithm I start (two sweeps per LongestBFSPath), and parallel
// multi-start runs would otherwise allocate two O(n) arrays per sweep.
type bfsBuffers struct {
	dist  []int
	queue []int
}

var bfsPool = sync.Pool{New: func() any { return new(bfsBuffers) }}

// Eccentricity returns the maximum finite BFS distance from src and a
// vertex attaining it (the lowest-numbered such vertex; src itself when
// nothing else is reachable). Unreachable vertices are ignored.
func (g *Graph) Eccentricity(src int) (far int, dist int) {
	n := g.NumVertices()
	buf := bfsPool.Get().(*bfsBuffers)
	defer bfsPool.Put(buf)
	if cap(buf.dist) < n {
		buf.dist = make([]int, n)
		buf.queue = make([]int, 0, n)
	}
	d := buf.dist[:n]
	for i := range d {
		d[i] = Unreached
	}
	d[src] = 0
	queue := append(buf.queue[:0], src)
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		for _, u := range g.Neighbors(v) {
			if d[u] == Unreached {
				d[u] = d[v] + 1
				queue = append(queue, u)
			}
		}
	}
	buf.queue = queue
	far, dist = src, 0
	for v, dv := range d {
		if dv > dist {
			far, dist = v, dv
		}
	}
	return far, dist
}

// LongestBFSPath starts at a random vertex drawn from rng and returns
// the endpoints (u, v) of a longest BFS path: v is a furthest vertex
// from the random start u. Per the paper, for connected random graphs
// of bounded degree the depth of such a BFS equals diam(G) − O(1) with
// probability near 1, so (u, v) serves as a pseudo-diameter pair.
//
// A second BFS sweep from v is performed to lengthen the path
// (the standard double-sweep refinement); the returned pair is
// (v, w) where w is furthest from v.
func (g *Graph) LongestBFSPath(rng *rand.Rand) (u, v int, depth int) {
	n := g.NumVertices()
	if n == 0 {
		return 0, 0, 0
	}
	start := rng.Intn(n)
	a, _ := g.Eccentricity(start)
	b, d := g.Eccentricity(a)
	return a, b, d
}

// Diameter computes the exact diameter of g restricted to its largest
// connected component, by running BFS from every vertex. O(n·m); meant
// for verification and experiments, not production paths.
func (g *Graph) Diameter() int {
	diam := 0
	for v := 0; v < g.NumVertices(); v++ {
		_, ecc := g.Eccentricity(v)
		if ecc > diam {
			diam = ecc
		}
	}
	return diam
}

// Components returns a component labeling comp (values 0..k-1) and the
// component count k.
func (g *Graph) Components() (comp []int, k int) {
	n := g.NumVertices()
	comp = make([]int, n)
	for i := range comp {
		comp[i] = Unreached
	}
	queue := make([]int, 0, n)
	for v := 0; v < n; v++ {
		if comp[v] != Unreached {
			continue
		}
		comp[v] = k
		queue = append(queue[:0], v)
		for head := 0; head < len(queue); head++ {
			x := queue[head]
			for _, u := range g.Neighbors(x) {
				if comp[u] == Unreached {
					comp[u] = k
					queue = append(queue, u)
				}
			}
		}
		k++
	}
	return comp, k
}

// IsConnected reports whether g has exactly one connected component.
// The empty graph is considered connected.
func (g *Graph) IsConnected() bool {
	_, k := g.Components()
	return k <= 1
}

// IsBipartite checks 2-colorability; when bipartite it returns the
// color of each vertex (0/1) and true.
func (g *Graph) IsBipartite() (color []int, ok bool) {
	n := g.NumVertices()
	color = make([]int, n)
	for i := range color {
		color[i] = Unreached
	}
	queue := make([]int, 0, n)
	for v := 0; v < n; v++ {
		if color[v] != Unreached {
			continue
		}
		color[v] = 0
		queue = append(queue[:0], v)
		for head := 0; head < len(queue); head++ {
			x := queue[head]
			for _, u := range g.Neighbors(x) {
				if color[u] == Unreached {
					color[u] = 1 - color[x]
					queue = append(queue, u)
				} else if color[u] == color[x] {
					return nil, false
				}
			}
		}
	}
	return color, true
}

// DoubleBFSSides labels every vertex reachable from u or v with the
// side (0 for u's side, 1 for v's side) that reaches it first when the
// two BFS frontiers expand in strict alternation, one full level at a
// time, starting with u. This realizes the paper's prescription:
// "a graph cut can be obtained by doing breadth-first search from two
// distant nodes of G until the two expanding sets meet to define a
// cutline" — and then continuing until every vertex is claimed.
// Vertices unreachable from both sources are labeled Unreached.
//
// When both frontiers would reach a vertex at the same level, the side
// expanding first in the alternation (u's side on even rounds) claims
// it; this tie policy is deterministic and is ablated in the benchmark
// suite.
func (g *Graph) DoubleBFSSides(u, v int) []int {
	n := g.NumVertices()
	return g.DoubleBFSSidesInto(u, v,
		make([]int, n), make([]int, 0, n), make([]int, 0, n), make([]int, 0, n))
}

// DoubleBFSSidesInto is DoubleBFSSides writing into caller-provided
// buffers, for allocation-free multi-start runs: side must have length
// NumVertices; f0, f1 and next are frontier buffers (their contents are
// ignored; capacity NumVertices avoids growth). The returned labeling
// aliases side.
func (g *Graph) DoubleBFSSidesInto(u, v int, side, f0, f1, next []int) []int {
	n := g.NumVertices()
	side = side[:n]
	for i := range side {
		side[i] = Unreached
	}
	if n == 0 {
		return side
	}
	frontiers := [2][]int{append(f0[:0], u), append(f1[:0], v)}
	side[u] = 0
	if v != u {
		side[v] = 1
	}
	next = next[:0]
	for len(frontiers[0]) > 0 || len(frontiers[1]) > 0 {
		for s := 0; s < 2; s++ {
			next = next[:0]
			for _, x := range frontiers[s] {
				// A vertex may have been claimed by the other side after
				// being enqueued; its label is final, but it still expands
				// for its owning side only.
				if side[x] != s {
					continue
				}
				for _, w := range g.Neighbors(x) {
					if side[w] == Unreached {
						side[w] = s
						next = append(next, w)
					}
				}
			}
			frontiers[s] = append(frontiers[s][:0], next...)
		}
	}
	return side
}

// DoubleBFSSidesBalanced is the alternative tie policy to
// DoubleBFSSides, ablated in the benchmark suite: instead of strict
// alternation, at every round the side whose claimed vertex set is
// currently smaller expands one level (ties go to side 0). This tends
// to equalize the two sides of the G-cut on asymmetric graphs, at the
// cost of no longer matching the paper's plain prescription.
func (g *Graph) DoubleBFSSidesBalanced(u, v int) []int {
	n := g.NumVertices()
	return g.DoubleBFSSidesBalancedInto(u, v,
		make([]int, n), make([]int, 0, n), make([]int, 0, n), make([]int, 0, n))
}

// DoubleBFSSidesBalancedInto is DoubleBFSSidesBalanced writing into
// caller-provided buffers, mirroring DoubleBFSSidesInto.
func (g *Graph) DoubleBFSSidesBalancedInto(u, v int, side, f0, f1, next []int) []int {
	n := g.NumVertices()
	side = side[:n]
	for i := range side {
		side[i] = Unreached
	}
	if n == 0 {
		return side
	}
	frontiers := [2][]int{append(f0[:0], u), append(f1[:0], v)}
	claimed := [2]int{1, 0}
	side[u] = 0
	if v != u {
		side[v] = 1
		claimed[1] = 1
	} else {
		frontiers[1] = frontiers[1][:0]
	}
	next = next[:0]
	for len(frontiers[0]) > 0 || len(frontiers[1]) > 0 {
		s := 0
		switch {
		case len(frontiers[0]) == 0:
			s = 1
		case len(frontiers[1]) == 0:
			s = 0
		case claimed[1] < claimed[0]:
			s = 1
		}
		next = next[:0]
		for _, x := range frontiers[s] {
			for _, w := range g.Neighbors(x) {
				if side[w] == Unreached {
					side[w] = s
					claimed[s]++
					next = append(next, w)
				}
			}
		}
		frontiers[s] = append(frontiers[s][:0], next...)
	}
	return side
}

// Subgraph returns the induced subgraph on the vertices for which keep
// is true, together with a mapping from new indices to original ones.
func (g *Graph) Subgraph(keep func(v int) bool) (*Graph, []int) {
	n := g.NumVertices()
	newID := make([]int, n)
	origOf := make([]int, 0, n)
	for v := 0; v < n; v++ {
		if keep(v) {
			newID[v] = len(origOf)
			origOf = append(origOf, v)
		} else {
			newID[v] = Unreached
		}
	}
	b := NewBuilder(len(origOf))
	for _, v := range origOf {
		for _, u := range g.Neighbors(v) {
			if u > v && newID[u] != Unreached {
				b.AddEdge(newID[v], newID[u])
			}
		}
	}
	sub, err := b.Build()
	if err != nil {
		panic("graph: Subgraph produced invalid graph: " + err.Error())
	}
	return sub, origOf
}
