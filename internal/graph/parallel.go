package graph

// Intra-start parallel double-BFS.
//
// The multi-start engine saturates as soon as a single start dominates
// the wall clock — exactly the regime the paper's O(n²) construction
// story hits first as instances grow. This file parallelizes the double
// BFS *inside* one start while preserving the library's headline
// guarantee: parallel output is bit-for-bit identical to serial.
//
// The scheme is frontier chunking with a serial-order merge. Each BFS
// level of one side splits its frontier into contiguous worker chunks.
// Workers scan their chunk's adjacency read-only — nobody writes the
// side labeling during the scan, so there is no synchronization beyond
// the per-level WaitGroup — and collect every neighbor that was still
// unclaimed at level start into a worker-local candidate list. A single
// merge pass then walks the candidate lists in chunk order, claiming
// first occurrences and dropping duplicates.
//
// Determinism argument: chunks are contiguous frontier slices, and
// every worker visits its chunk's vertices (and each vertex's sorted
// neighbors) in order, so the concatenation of candidate lists in chunk
// order enumerates exactly the (frontier position, neighbor position)
// pairs the serial loop visits, in the serial order. The serial loop
// skips a neighbor when an earlier pair of the same level already
// claimed it; the merge skips exactly those same later occurrences. The
// claim order — and therefore every side label, every tie-break, and
// the next frontier's contents and order — is identical to
// DoubleBFSSidesInto on every input, for every worker count and every
// chunk boundary. The differential and fuzz suites enforce this.

import "sync"

// minParallelFrontier is the frontier size below which a level expands
// serially: chunking a tiny frontier costs more in goroutine handoff
// than the scan itself. Serial levels are trivially order-identical, so
// the threshold affects wall time only, never the labeling.
const minParallelFrontier = 256

// minChunk is the smallest frontier slice worth handing to a worker.
const minChunk = 64

// ParallelBFSStats reports how a parallel double BFS actually executed.
// All fields are pure functions of (graph, u, v, workers) — chunk
// boundaries are deterministic — so the perf harness can bless them.
type ParallelBFSStats struct {
	// Levels is the number of one-side level expansions performed
	// (both sides counted, empty frontiers included while the other
	// side is still expanding).
	Levels int
	// ParallelLevels is how many of them went through the chunked path.
	ParallelLevels int
	// ChunksMerged is the total number of worker chunks merged across
	// all parallel levels.
	ChunksMerged int
	// Candidates is the total number of discovered-vertex candidates
	// merged (duplicates included) — the serial claim-loop length.
	Candidates int
	// MaxChunkCandidates is the largest single chunk candidate list —
	// against Candidates/ChunksMerged it measures shard imbalance.
	MaxChunkCandidates int
	// CriticalPath accumulates, per parallel level, the largest chunk's
	// candidate count (the level's span under perfect scheduling) and,
	// for serial levels, the whole level's count. Candidates /
	// CriticalPath is the work-model speedup bound of the scan phase.
	CriticalPath int
}

// pbfsBuffers holds the worker-local candidate lists of one parallel
// double BFS. Pooled so steady-state multi-start runs do not allocate
// them per call.
type pbfsBuffers struct {
	cand [][]int
}

var pbfsPool = sync.Pool{New: func() any { return new(pbfsBuffers) }}

// DoubleBFSSidesParallel is DoubleBFSSides computed with the given
// number of workers. The labeling is bit-for-bit identical to the
// serial DoubleBFSSides for every input and worker count.
func (g *Graph) DoubleBFSSidesParallel(u, v, workers int) []int {
	n := g.NumVertices()
	return g.DoubleBFSSidesParallelInto(u, v, workers,
		make([]int, n), make([]int, 0, n), make([]int, 0, n), make([]int, 0, n), nil)
}

// DoubleBFSSidesParallelInto is DoubleBFSSidesParallel writing into
// caller-provided buffers, mirroring DoubleBFSSidesInto (side must have
// length NumVertices; f0, f1, next are frontier buffers). stats, when
// non-nil, receives the execution counters. workers < 1 means 1; one
// worker dispatches straight to the serial kernel.
func (g *Graph) DoubleBFSSidesParallelInto(u, v, workers int, side, f0, f1, next []int, stats *ParallelBFSStats) []int {
	if stats != nil {
		*stats = ParallelBFSStats{}
	}
	if workers <= 1 {
		return g.DoubleBFSSidesInto(u, v, side, f0, f1, next)
	}
	n := g.NumVertices()
	side = side[:n]
	for i := range side {
		side[i] = Unreached
	}
	if n == 0 {
		return side
	}
	frontiers := [2][]int{append(f0[:0], u), append(f1[:0], v)}
	side[u] = 0
	if v != u {
		side[v] = 1
	}
	next = next[:0]

	buf := pbfsPool.Get().(*pbfsBuffers)
	for len(buf.cand) < workers {
		buf.cand = append(buf.cand, nil)
	}
	defer pbfsPool.Put(buf)

	var wg sync.WaitGroup
	for len(frontiers[0]) > 0 || len(frontiers[1]) > 0 {
		for s := 0; s < 2; s++ {
			fr := frontiers[s]
			next = next[:0]
			if stats != nil {
				stats.Levels++
			}
			if len(fr) < minParallelFrontier {
				// Serial level: identical to the DoubleBFSSidesInto body.
				claimed := 0
				for _, x := range fr {
					if side[x] != s {
						continue
					}
					for _, w := range g.Neighbors(x) {
						if side[w] == Unreached {
							side[w] = s
							next = append(next, w)
							claimed++
						}
					}
				}
				if stats != nil {
					stats.Candidates += claimed
					stats.CriticalPath += claimed
				}
				frontiers[s] = append(frontiers[s][:0], next...)
				continue
			}

			// Chunked scan: workers read the pre-level labeling only.
			chunks := numChunks(len(fr), workers)
			wg.Add(chunks)
			for c := 0; c < chunks; c++ {
				lo, hi := chunkBounds(len(fr), chunks, c)
				cand := buf.cand[c][:0]
				go func(c int, part []int, cand []int) {
					defer wg.Done()
					for _, x := range part {
						if side[x] != s {
							continue
						}
						for _, w := range g.Neighbors(x) {
							if side[w] == Unreached {
								cand = append(cand, w)
							}
						}
					}
					buf.cand[c] = cand
				}(c, fr[lo:hi], cand)
			}
			wg.Wait()

			// Serial-order merge: chunk order × in-chunk order is exactly
			// the serial visit order, so first occurrence wins the claim
			// and later duplicates are skipped — as in the serial loop.
			maxChunk := 0
			for c := 0; c < chunks; c++ {
				if len(buf.cand[c]) > maxChunk {
					maxChunk = len(buf.cand[c])
				}
				for _, w := range buf.cand[c] {
					if side[w] == Unreached {
						side[w] = s
						next = append(next, w)
					}
				}
				if stats != nil {
					stats.Candidates += len(buf.cand[c])
				}
			}
			if stats != nil {
				stats.ParallelLevels++
				stats.ChunksMerged += chunks
				if maxChunk > stats.MaxChunkCandidates {
					stats.MaxChunkCandidates = maxChunk
				}
				stats.CriticalPath += maxChunk
			}
			frontiers[s] = append(frontiers[s][:0], next...)
		}
	}
	return side
}

// numChunks picks how many chunks a frontier of the given size splits
// into: at most workers, and no chunk smaller than minChunk.
func numChunks(frontier, workers int) int {
	c := frontier / minChunk
	if c > workers {
		c = workers
	}
	if c < 1 {
		c = 1
	}
	return c
}

// chunkBounds returns the half-open range of chunk c when n items are
// split into chunks contiguous pieces of near-equal size. Pure function
// of its arguments: chunk boundaries never depend on scheduling.
func chunkBounds(n, chunks, c int) (lo, hi int) {
	lo = c * n / chunks
	hi = (c + 1) * n / chunks
	return lo, hi
}
