package checkpoint_test

import (
	"context"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"fasthgp/internal/checkpoint"
	"fasthgp/internal/engine"
	"fasthgp/internal/faultinject"
	"fasthgp/internal/hypergraph"
	"fasthgp/internal/partition"
)

func testHG(t testing.TB) *hypergraph.Hypergraph {
	t.Helper()
	h, err := hypergraph.FromEdges(6, [][]int{{0, 1, 2}, {2, 3}, {3, 4, 5}, {0, 5}})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	j, err := checkpoint.Create(path, []byte("header"))
	if err != nil {
		t.Fatal(err)
	}
	payloads := [][]byte{[]byte("one"), {}, []byte("three")}
	for _, p := range payloads {
		if err := j.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j2, recs, err := checkpoint.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if len(recs) != 4 || string(recs[0]) != "header" || string(recs[1]) != "one" ||
		len(recs[2]) != 0 || string(recs[3]) != "three" {
		t.Fatalf("recovered records %q", recs)
	}
	// Appends after reopen extend the same log.
	if err := j2.Append([]byte("four")); err != nil {
		t.Fatal(err)
	}
	_, recs, err = checkpoint.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 5 || string(recs[4]) != "four" {
		t.Fatalf("after reopen-append, records %q", recs)
	}
}

func TestCreateLeavesNoPartialFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.ckpt")
	// A torn header write aborts creation: the journal path must not
	// exist (rename never happened), only the temp file debris may.
	defer faultinject.Install(&faultinject.Plan{Rules: []faultinject.Rule{
		{Point: faultinject.PointCheckpointWrite, Index: 0, Kind: faultinject.KindTorn},
	}})()
	if _, err := checkpoint.Create(path, []byte("hdr")); !errors.Is(err, checkpoint.ErrTornWrite) {
		t.Fatalf("Create under torn fault: err = %v, want ErrTornWrite", err)
	}
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("journal path exists after failed creation: %v", err)
	}
}

func TestOpenTruncatesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	j, err := checkpoint.Create(path, []byte("header"))
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append([]byte("intact")); err != nil {
		t.Fatal(err)
	}
	j.Close()
	// Corruptions a crash can leave behind: a short frame header, a
	// frame cut mid-payload, and a bit flip inside a full frame.
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for name, mutate := range map[string]func([]byte) []byte{
		"short header":  func(b []byte) []byte { return append(b, 0x01, 0x02) },
		"short payload": func(b []byte) []byte { return append(b, 5, 0, 0, 0, 9, 9, 9, 9, 'x', 'y') },
		"bit flip in appended frame": func(b []byte) []byte {
			b = append(b, 3, 0, 0, 0, 9, 9, 9, 9, 'a', 'b', 'c')
			return b
		},
		"implausible length": func(b []byte) []byte {
			return append(b, 0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0)
		},
	} {
		if err := os.WriteFile(path, mutate(append([]byte(nil), good...)), 0o644); err != nil {
			t.Fatal(err)
		}
		j2, recs, err := checkpoint.Open(path)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(recs) != 2 || string(recs[1]) != "intact" {
			t.Fatalf("%s: recovered %q, want header+intact", name, recs)
		}
		// The torn tail is gone: a fresh append lands on a clean
		// boundary and survives the next open.
		if err := j2.Append([]byte("after")); err != nil {
			t.Fatal(err)
		}
		j2.Close()
		_, recs, err = checkpoint.Open(path)
		if err != nil {
			t.Fatalf("%s reopen: %v", name, err)
		}
		if len(recs) != 3 || string(recs[2]) != "after" {
			t.Fatalf("%s: post-truncation append lost: %q", name, recs)
		}
		if err := os.WriteFile(path, good, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// A journal with no intact header is corrupt beyond recovery.
	if err := os.WriteFile(path, []byte{1, 2, 3}, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := checkpoint.Open(path); err == nil {
		t.Fatal("Open accepted a journal with no intact header")
	}
}

func TestInjectedTornWriteIsRecoverable(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	j, err := checkpoint.Create(path, []byte("header"))
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append([]byte("first")); err != nil {
		t.Fatal(err)
	}
	restore := faultinject.Install(&faultinject.Plan{Rules: []faultinject.Rule{
		{Point: faultinject.PointCheckpointWrite, Index: 2, Kind: faultinject.KindTorn},
	}})
	err = j.Append([]byte("torn-away"))
	restore()
	if !errors.Is(err, checkpoint.ErrTornWrite) {
		t.Fatalf("Append = %v, want ErrTornWrite", err)
	}
	j.Close()
	_, recs, err := checkpoint.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || string(recs[1]) != "first" {
		t.Fatalf("recovered %q, want the records before the tear", recs)
	}
}

func TestMetaBindsRun(t *testing.T) {
	h := testHG(t)
	meta := checkpoint.NewMeta("kl", h, 42, 8)
	path := filepath.Join(t.TempDir(), "run.ckpt")
	rj, err := checkpoint.CreateRun(path, meta)
	if err != nil {
		t.Fatal(err)
	}
	rj.Close()
	for name, other := range map[string]checkpoint.Meta{
		"different algorithm": checkpoint.NewMeta("fm", h, 42, 8),
		"different seed":      checkpoint.NewMeta("kl", h, 43, 8),
		"different starts":    checkpoint.NewMeta("kl", h, 42, 9),
	} {
		if _, _, err := checkpoint.Resume(path, other); err == nil {
			t.Errorf("%s: Resume accepted a foreign journal", name)
		}
	}
	hb := hypergraph.NewBuilder(6)
	hb.AddEdge(0, 1)
	h2, err := hb.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := checkpoint.Resume(path, checkpoint.NewMeta("kl", h2, 42, 8)); err == nil {
		t.Error("Resume accepted a journal for a different hypergraph")
	}
	if rj2, _, err := checkpoint.Resume(path, meta); err != nil {
		t.Fatalf("Resume with matching meta: %v", err)
	} else {
		rj2.Close()
	}
}

func TestResumeReplaysRecords(t *testing.T) {
	h := testHG(t)
	meta := checkpoint.NewMeta("kl", h, 1, 4)
	path := filepath.Join(t.TempDir(), "run.ckpt")
	rj, err := checkpoint.CreateRun(path, meta)
	if err != nil {
		t.Fatal(err)
	}
	sides := []partition.Side{0, 0, 0, 1, 1, 1}
	best0 := checkpoint.EncodeBest(sides, 3, 2)
	best2 := checkpoint.EncodeBest(sides, 2, 1)
	if err := rj.StartDone(0, 3, best0); err != nil {
		t.Fatal(err)
	}
	if err := rj.StartDone(1, 5, nil); err != nil {
		t.Fatal(err)
	}
	if err := rj.StartDone(2, 2, best2); err != nil {
		t.Fatal(err)
	}
	rj.Close()
	rj2, state, err := checkpoint.Resume(path, meta)
	if err != nil {
		t.Fatal(err)
	}
	defer rj2.Close()
	wantCompleted := []bool{true, true, true, false}
	wantCuts := []int{3, 5, 2, engine.NotRun}
	for i := range wantCompleted {
		if state.Completed[i] != wantCompleted[i] || state.Cuts[i] != wantCuts[i] {
			t.Errorf("start %d: completed=%v cut=%d, want %v %d",
				i, state.Completed[i], state.Cuts[i], wantCompleted[i], wantCuts[i])
		}
	}
	if state.BestStart != 2 || state.BestCut != 2 {
		t.Errorf("BestStart=%d BestCut=%d, want 2 and 2 (last best record wins)", state.BestStart, state.BestCut)
	}
	gotSides, cut, aux, err := checkpoint.DecodeBest(state.BestPayload, h.NumVertices())
	if err != nil {
		t.Fatal(err)
	}
	if cut != 2 || len(aux) != 1 || aux[0] != 1 {
		t.Errorf("decoded cut=%d aux=%v, want 2 and [1]", cut, aux)
	}
	for i, s := range gotSides {
		if s != sides[i] {
			t.Errorf("decoded side[%d] = %v, want %v", i, s, sides[i])
		}
	}
}

func TestEncodeDecodeBest(t *testing.T) {
	sides := []partition.Side{1, 0, 1, 0}
	b := checkpoint.EncodeBest(sides, 7)
	got, cut, aux, err := checkpoint.DecodeBest(b, 4)
	if err != nil {
		t.Fatal(err)
	}
	if cut != 7 || len(aux) != 0 {
		t.Errorf("cut=%d aux=%v, want 7 and none", cut, aux)
	}
	for i := range sides {
		if got[i] != sides[i] {
			t.Errorf("side[%d] = %v, want %v", i, got[i], sides[i])
		}
	}
	bad := [][]byte{
		nil,
		{1, 2, 3},
		checkpoint.EncodeBest(sides, -1),                  // negative cut
		checkpoint.EncodeBest(sides[:3], 7),               // wrong vertex count
		checkpoint.EncodeBest([]partition.Side{1, 0, 1, partition.Unassigned}, 7), // incomplete
	}
	for i, b := range bad {
		if _, _, _, err := checkpoint.DecodeBest(b, 4); err == nil {
			t.Errorf("bad payload %d accepted", i)
		}
	}
}

// TestEngineResumeThroughJournal is the in-process version of the chaos
// test: run with a journal, "crash" by tearing a write partway through,
// reopen, resume, and require the exact result of an uninterrupted run.
func TestEngineResumeThroughJournal(t *testing.T) {
	h := testHG(t)
	const starts = 10
	spec := engine.Spec[int]{
		Starts: starts,
		Seed:   9,
		Run: func(_ context.Context, start int, rng *rand.Rand, _ *engine.Scratch) (int, error) {
			return rng.Intn(50), nil
		},
		Better: func(a, b int) bool { return a < b },
		Cut:    func(v int) int { return v },
	}
	golden, gst, err := engine.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}

	enc := func(v int) []byte { return checkpoint.EncodeBest([]partition.Side{0, 0, 0, 1, 1, 1}, v) }
	dec := func(b []byte) (int, error) {
		_, cut, _, err := checkpoint.DecodeBest(b, h.NumVertices())
		return cut, err
	}
	meta := checkpoint.NewMeta("toy", h, 9, starts)
	path := filepath.Join(t.TempDir(), "run.ckpt")
	rj, err := checkpoint.CreateRun(path, meta)
	if err != nil {
		t.Fatal(err)
	}
	// Tear the 6th record (header is record 0): the run keeps computing
	// but journaling stops — a simulated crash of the journal disk.
	restore := faultinject.Install(&faultinject.Plan{Rules: []faultinject.Rule{
		{Point: faultinject.PointCheckpointWrite, Index: 6, Kind: faultinject.KindTorn},
	}})
	first := spec
	first.Checkpoint = engine.BindCheckpoint(&engine.CheckpointIO{Sink: rj}, enc, dec)
	_, st1, err := engine.Run(context.Background(), first)
	restore()
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(st1.CheckpointErr, checkpoint.ErrTornWrite) {
		t.Fatalf("CheckpointErr = %v, want ErrTornWrite", st1.CheckpointErr)
	}
	rj.Close()

	rj2, state, err := checkpoint.Resume(path, meta)
	if err != nil {
		t.Fatal(err)
	}
	defer rj2.Close()
	resumed := spec
	resumed.Checkpoint = engine.BindCheckpoint(&engine.CheckpointIO{Sink: rj2, State: state}, enc, dec)
	got, st2, err := engine.Run(context.Background(), resumed)
	if err != nil {
		t.Fatal(err)
	}
	if got != golden || st2.BestStart != gst.BestStart {
		t.Errorf("resumed run returned %d (start %d), uninterrupted %d (start %d)",
			got, st2.BestStart, golden, gst.BestStart)
	}
	if st2.StartsResumed == 0 || st2.StartsResumed >= starts {
		t.Errorf("StartsResumed = %d, want a proper partial resume", st2.StartsResumed)
	}
	if st2.CheckpointErr != nil {
		t.Errorf("resumed run's journal failed: %v", st2.CheckpointErr)
	}
}
