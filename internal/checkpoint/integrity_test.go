package checkpoint_test

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"

	"fasthgp/internal/checkpoint"
	"fasthgp/internal/faultinject"
)

// writeTestJournal creates a small journal with a few records and
// returns its path plus the record payloads (header first).
func writeTestJournal(t *testing.T) (string, [][]byte) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "scrub.ckpt")
	payloads := [][]byte{[]byte("header-rec"), []byte("alpha"), []byte("beta-record"), []byte("g")}
	j, err := checkpoint.Create(path, payloads[0])
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range payloads[1:] {
		if err := j.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	return path, payloads
}

// TestJournalBitRotEveryByte flips every byte position of a small
// journal in turn and asserts Open never silently decodes wrong data:
// it either returns a typed error (header destroyed) or a strict prefix
// of the original records, and ScrubFile flags every flip that touches
// a frame.
func TestJournalBitRotEveryByte(t *testing.T) {
	path, want := writeTestJournal(t)
	clean, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for pos := range clean {
		rotten := bytes.Clone(clean)
		rotten[pos] ^= 0xFF
		if err := os.WriteFile(path, rotten, 0o644); err != nil {
			t.Fatal(err)
		}

		rep, err := checkpoint.ScrubFile(path)
		if err != nil {
			t.Fatalf("pos %d: ScrubFile: %v", pos, err)
		}
		if rep.OK() {
			t.Fatalf("pos %d: scrub reported clean on a rotten file: %+v", pos, rep)
		}

		j, recs, err := checkpoint.Open(path)
		if err != nil {
			// The only acceptable error is the typed no-header one
			// (the flip landed in frame 0).
			if !errors.Is(err, checkpoint.ErrNoHeader) {
				t.Fatalf("pos %d: Open: %v, want ErrNoHeader", pos, err)
			}
			continue
		}
		// Open succeeded: the surviving records must be a strict prefix
		// of the originals — never a mutated or reordered record.
		if len(recs) >= len(want) {
			t.Fatalf("pos %d: %d records survived a flip, want < %d", pos, len(recs), len(want))
		}
		for i, r := range recs {
			if !bytes.Equal(r, want[i]) {
				t.Fatalf("pos %d: record %d decoded as %q, want %q", pos, i, r, want[i])
			}
		}
		j.Close()
		// Open truncated the rotten tail; a rescrub must now be clean.
		rep, err = checkpoint.ScrubFile(path)
		if err != nil {
			t.Fatalf("pos %d: rescrub: %v", pos, err)
		}
		if !rep.OK() {
			t.Fatalf("pos %d: still torn after Open truncation: %+v", pos, rep)
		}
	}
}

func TestScrubFileCleanJournal(t *testing.T) {
	path, want := writeTestJournal(t)
	rep, err := checkpoint.ScrubFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() || rep.Records != len(want) || rep.ValidBytes != rep.TotalBytes {
		t.Fatalf("clean journal scrub = %+v", rep)
	}
}

func TestScrubFileDetectsTornTail(t *testing.T) {
	path, _ := writeTestJournal(t)
	// Append garbage — a torn in-flight frame.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{9, 0, 0}); err != nil {
		t.Fatal(err)
	}
	f.Close()
	rep, err := checkpoint.ScrubFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() || !rep.Torn || rep.ValidBytes >= rep.TotalBytes {
		t.Fatalf("torn journal scrub = %+v", rep)
	}
}

// TestInjectedErrnoShedsWrite drives Append into an injected ENOSPC and
// asserts the record is shed cleanly: the failure surfaces as a typed
// *DiskError, the file is rolled back to a frame boundary (a scrub
// stays clean), and once the fault lifts the journal accepts appends
// again with no garbage in between.
func TestInjectedErrnoShedsWrite(t *testing.T) {
	path := filepath.Join(t.TempDir(), "errno.ckpt")
	j, err := checkpoint.Create(path, []byte("hdr"))
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if err := j.Append([]byte("before")); err != nil {
		t.Fatal(err)
	}

	restore := faultinject.Install(&faultinject.Plan{Rules: []faultinject.Rule{
		{Point: faultinject.PointCheckpointWrite, Index: faultinject.AnyIndex,
			Kind: faultinject.KindErrno, Errno: syscall.ENOSPC},
	}})
	for i := 0; i < 3; i++ { // disk stays full across several attempts
		err := j.Append([]byte("doomed"))
		var de *checkpoint.DiskError
		if !errors.As(err, &de) || de.Op != "write" || !errors.Is(err, syscall.ENOSPC) {
			t.Fatalf("attempt %d: err = %v, want *DiskError{write, ENOSPC}", i, err)
		}
		if j.Wedged() {
			t.Fatalf("attempt %d: journal wedged; shedding should keep it usable", i)
		}
	}
	restore()

	// Every shed rolled back to a frame boundary: no partial-frame
	// debris on disk.
	rep, err := checkpoint.ScrubFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() || rep.Records != 2 {
		t.Fatalf("scrub after shedding = %+v, want 2 clean records", rep)
	}

	// Disk recovered: appends flow again.
	if err := j.Append([]byte("after")); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	_, recs, err := checkpoint.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 || string(recs[1]) != "before" || string(recs[2]) != "after" {
		t.Fatalf("recovered records %q, want [hdr before after]", recs)
	}
}

// TestInjectedErrnoOnFsyncDiscardsFrame injects EIO on the fsync and
// asserts the frame written just before it is discarded (post-fsync
// failure its durability is unknown) rather than trusted.
func TestInjectedErrnoOnFsyncDiscardsFrame(t *testing.T) {
	path := filepath.Join(t.TempDir(), "eio.ckpt")
	j, err := checkpoint.Create(path, []byte("hdr"))
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()

	restore := faultinject.Install(&faultinject.Plan{Rules: []faultinject.Rule{
		{Point: faultinject.PointCheckpointSync, Index: 1,
			Kind: faultinject.KindErrno, Errno: syscall.EIO},
	}})
	err = j.Append([]byte("unsynced"))
	restore()
	var de *checkpoint.DiskError
	if !errors.As(err, &de) || de.Op != "fsync" || !errors.Is(err, syscall.EIO) {
		t.Fatalf("err = %v, want *DiskError{fsync, EIO}", err)
	}
	if err := j.Append([]byte("durable")); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	_, recs, err := checkpoint.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || string(recs[1]) != "durable" {
		t.Fatalf("recovered records %q, want the unsynced frame discarded", recs)
	}
}
