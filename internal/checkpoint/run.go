package checkpoint

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/fnv"

	"fasthgp/internal/engine"
	"fasthgp/internal/hypergraph"
	"fasthgp/internal/partition"
)

// metaVersion is bumped whenever the journal record layout changes; a
// version mismatch refuses to resume rather than misparse.
const metaVersion = 1

// Meta binds a journal to exactly one run. Resume refuses a journal
// whose Meta differs in any field: resuming start 7 of seed 3 on a
// different hypergraph would silently produce garbage, so identity is
// checked, not assumed.
type Meta struct {
	// Version is the record-format version (metaVersion).
	Version int `json:"version"`
	// Algorithm is the registry name of the partitioner.
	Algorithm string `json:"algorithm"`
	// Seed is the run's user-facing seed.
	Seed int64 `json:"seed"`
	// Starts is the normalized multi-start count.
	Starts int `json:"starts"`
	// Vertices, Edges, Pins and Hash fingerprint the instance.
	Vertices int    `json:"vertices"`
	Edges    int    `json:"edges"`
	Pins     int    `json:"pins"`
	Hash     uint64 `json:"hash"`
	// Constraint is the canonical key (partition.Constraint.Key) of the
	// balance contract the run executed under; empty for unconstrained
	// runs, so journals written before the field existed resume
	// unconstrained runs unchanged. A journal from a run with a
	// different ε or fixed set must not seed this one: the per-start
	// results differ, so identity includes the contract.
	Constraint string `json:"constraint,omitempty"`
}

// NewMeta fingerprints one run of algorithm on h.
func NewMeta(algorithm string, h *hypergraph.Hypergraph, seed int64, starts int) Meta {
	return Meta{
		Version:   metaVersion,
		Algorithm: algorithm,
		Seed:      seed,
		Starts:    engine.Normalize(starts),
		Vertices:  h.NumVertices(),
		Edges:     h.NumEdges(),
		Pins:      h.NumPins(),
		Hash:      HashHypergraph(h),
	}
}

// HashHypergraph fingerprints the structure and weights of h (FNV-1a
// over sizes, per-vertex weights, and per-edge weight + pin lists).
// Vertex and edge names are excluded: they do not affect any cut.
func HashHypergraph(h *hypergraph.Hypergraph) uint64 {
	fh := fnv.New64a()
	var buf [8]byte
	w := func(x uint64) {
		binary.LittleEndian.PutUint64(buf[:], x)
		fh.Write(buf[:])
	}
	w(uint64(h.NumVertices()))
	w(uint64(h.NumEdges()))
	for v := 0; v < h.NumVertices(); v++ {
		w(uint64(h.VertexWeight(v)))
	}
	for e := 0; e < h.NumEdges(); e++ {
		w(uint64(h.EdgeWeight(e)))
		pins := h.EdgePins(e)
		w(uint64(len(pins)))
		for _, p := range pins {
			w(uint64(p))
		}
	}
	return fh.Sum64()
}

// recStartDone is the record type byte of a start-completion record:
// [type u8][start u32][cut i64][payload length u32][payload]. The
// payload is the algorithm's encoded best-so-far result; it is empty
// when the start did not improve the best.
const recStartDone = 1

// RunJournal journals engine progress for one run. It implements
// engine.CheckpointSink; the engine serializes StartDone calls, so no
// internal locking is needed.
type RunJournal struct {
	j    *Journal
	meta Meta
}

// CreateRun atomically creates a fresh run journal at path.
func CreateRun(path string, meta Meta) (*RunJournal, error) {
	hdr, err := json.Marshal(meta)
	if err != nil {
		return nil, err
	}
	j, err := Create(path, hdr)
	if err != nil {
		return nil, err
	}
	return &RunJournal{j: j, meta: meta}, nil
}

// StartDone durably records that a start completed with the given cut;
// bestPayload, when non-empty, is the encoded new best-so-far result.
// It is the engine's snapshot hook (engine.CheckpointSink).
func (r *RunJournal) StartDone(start, cut int, bestPayload []byte) error {
	rec := make([]byte, 0, 1+4+8+4+len(bestPayload))
	rec = append(rec, recStartDone)
	rec = binary.LittleEndian.AppendUint32(rec, uint32(start))
	rec = binary.LittleEndian.AppendUint64(rec, uint64(cut))
	rec = binary.LittleEndian.AppendUint32(rec, uint32(len(bestPayload)))
	rec = append(rec, bestPayload...)
	return r.j.Append(rec)
}

// Close closes the journal file.
func (r *RunJournal) Close() error { return r.j.Close() }

// Meta returns the journal's run identity.
func (r *RunJournal) Meta() Meta { return r.meta }

// Resume opens the journal at path for the run described by want,
// truncates any torn tail, replays the surviving records into an
// engine.RunState, and returns the journal positioned for further
// appends. The recovery state machine is scan → truncate-at-corruption
// → validate identity → fold records; any record that would produce an
// invalid state (out-of-range start, completed starts with no best,
// best from a never-completed start) fails the resume instead of
// poisoning the run.
func Resume(path string, want Meta) (*RunJournal, *engine.RunState, error) {
	j, records, err := Open(path)
	if err != nil {
		return nil, nil, err
	}
	fail := func(err error) (*RunJournal, *engine.RunState, error) {
		j.Close()
		return nil, nil, err
	}
	var meta Meta
	if err := json.Unmarshal(records[0], &meta); err != nil {
		return fail(fmt.Errorf("checkpoint: %s: bad header: %w", path, err))
	}
	if meta != want {
		return fail(fmt.Errorf("checkpoint: %s belongs to a different run: journal %+v, want %+v", path, meta, want))
	}
	state := &engine.RunState{
		Completed: make([]bool, meta.Starts),
		Cuts:      make([]int, meta.Starts),
		BestStart: -1,
	}
	for i := range state.Cuts {
		state.Cuts[i] = engine.NotRun
	}
	for _, rec := range records[1:] {
		if len(rec) < 1+4+8+4 || rec[0] != recStartDone {
			return fail(fmt.Errorf("checkpoint: %s: malformed record", path))
		}
		start := int(binary.LittleEndian.Uint32(rec[1:5]))
		cut := int(int64(binary.LittleEndian.Uint64(rec[5:13])))
		plen := int(binary.LittleEndian.Uint32(rec[13:17]))
		if start >= meta.Starts || plen != len(rec)-17 {
			return fail(fmt.Errorf("checkpoint: %s: malformed record", path))
		}
		state.Completed[start] = true
		state.Cuts[start] = cut
		if plen > 0 {
			state.BestStart = start
			state.BestCut = cut
			state.BestPayload = rec[17:]
		}
	}
	completed := 0
	for _, done := range state.Completed {
		if done {
			completed++
		}
	}
	if completed > 0 && state.BestStart < 0 {
		return fail(fmt.Errorf("checkpoint: %s: completed starts but no best record", path))
	}
	if state.BestStart >= 0 && !state.Completed[state.BestStart] {
		return fail(fmt.Errorf("checkpoint: %s: best record from incomplete start", path))
	}
	return &RunJournal{j: j, meta: meta}, state, nil
}

// EncodeBest serializes the uniform best-so-far payload every
// partitioner checkpoints: the complete side assignment, the cut, and
// algorithm-specific scalar metadata (FM pass counts, flow values, …).
func EncodeBest(sides []partition.Side, cut int, aux ...int64) []byte {
	b := make([]byte, 0, 4+8+4+8*len(aux)+len(sides))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(aux)))
	b = binary.LittleEndian.AppendUint64(b, uint64(int64(cut)))
	for _, a := range aux {
		b = binary.LittleEndian.AppendUint64(b, uint64(a))
	}
	b = binary.LittleEndian.AppendUint32(b, uint32(len(sides)))
	for _, s := range sides {
		b = append(b, byte(s))
	}
	return b
}

// DecodeBestFor is the decode half every algorithm package binds: it
// parses an EncodeBest payload against h, requires exactly wantAux
// auxiliary scalars, and certifies the decoded sides by recomputing the
// cut — a CRC-valid but semantically wrong payload (claimed cut ≠
// actual cut) is rejected rather than allowed to poison the engine's
// Better comparisons.
func DecodeBestFor(h *hypergraph.Hypergraph, payload []byte, wantAux int) (*partition.Bipartition, int, []int64, error) {
	sides, cut, aux, err := DecodeBest(payload, h.NumVertices())
	if err != nil {
		return nil, 0, nil, err
	}
	if len(aux) != wantAux {
		return nil, 0, nil, fmt.Errorf("checkpoint: best payload carries %d aux values, want %d", len(aux), wantAux)
	}
	p := partition.FromSides(sides)
	if got := partition.CutSize(h, p); got != cut {
		return nil, 0, nil, fmt.Errorf("checkpoint: best payload claims cut %d, partition cuts %d", cut, got)
	}
	return p, cut, aux, nil
}

// DecodeBest parses an EncodeBest payload. The partition must be
// complete (every side Left or Right) and cover exactly wantVertices
// vertices — a resumed best is used verbatim as a candidate result, so
// structural validity is enforced here, at the trust boundary.
func DecodeBest(b []byte, wantVertices int) (sides []partition.Side, cut int, aux []int64, err error) {
	if len(b) < 12 {
		return nil, 0, nil, fmt.Errorf("checkpoint: best payload truncated")
	}
	nAux := int(binary.LittleEndian.Uint32(b[0:4]))
	cut = int(int64(binary.LittleEndian.Uint64(b[4:12])))
	b = b[12:]
	if nAux > len(b)/8 {
		return nil, 0, nil, fmt.Errorf("checkpoint: best payload truncated")
	}
	aux = make([]int64, nAux)
	for i := range aux {
		aux[i] = int64(binary.LittleEndian.Uint64(b[:8]))
		b = b[8:]
	}
	if len(b) < 4 {
		return nil, 0, nil, fmt.Errorf("checkpoint: best payload truncated")
	}
	n := int(binary.LittleEndian.Uint32(b[0:4]))
	b = b[4:]
	if n != len(b) || n != wantVertices {
		return nil, 0, nil, fmt.Errorf("checkpoint: best payload covers %d vertices, want %d", n, wantVertices)
	}
	if cut < 0 {
		return nil, 0, nil, fmt.Errorf("checkpoint: best payload has negative cut %d", cut)
	}
	sides = make([]partition.Side, n)
	for i, raw := range b {
		s := partition.Side(int8(raw))
		if s != partition.Left && s != partition.Right {
			return nil, 0, nil, fmt.Errorf("checkpoint: best payload vertex %d unassigned", i)
		}
		sides[i] = s
	}
	return sides, cut, aux, nil
}
