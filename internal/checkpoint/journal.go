// Package checkpoint makes long partitioning runs restartable: it
// persists engine progress into a crash-safe journal so a run killed by
// OOM, SIGKILL, or a node reboot resumes from its completed starts
// instead of re-burning them — and, because the engine's per-start RNG
// streams are pure functions of (seed, start index), a resumed run
// returns a result bit-for-bit identical to an uninterrupted one.
//
// The durability story, bottom to top:
//
//   - Creation is atomic. A new journal is written to a temp file,
//     fsynced, renamed into place, and the directory fsynced, so the
//     journal path never holds a half-written header.
//   - Every record is CRC32-framed: [length][crc32(payload)][payload].
//     Appends are fsynced, so an acknowledged record survives a crash.
//   - Recovery tolerates torn writes. The open scan walks frames in
//     order and truncates the file at the first short, oversized, or
//     checksum-failing frame — a crash mid-append loses at most the
//     record being written, never the journal.
//
// The run-level layer (run.go) gives the frames meaning: a Meta header
// binds the journal to one (algorithm, instance, seed, starts) run, and
// start-completion records carry the progress the engine resumes from.
// cmd/hgpartd reuses the frame layer for its request WAL.
package checkpoint

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"fasthgp/internal/faultinject"
)

// frameHeaderSize is the per-record overhead: a uint32 payload length
// followed by the payload's CRC32 (IEEE), both little-endian.
const frameHeaderSize = 8

// maxRecordSize bounds a single record; a length field beyond it is
// treated as corruption rather than an allocation request.
const maxRecordSize = 1 << 30

// ErrTornWrite is returned by Append when an injected torn-write fault
// persisted only a prefix of the record. The journal is unusable for
// further appends (exactly like a real crash); reopening it truncates
// the torn tail.
var ErrTornWrite = errors.New("checkpoint: torn write injected")

// ErrNoHeader is returned (wrapped, with the path) by Open when the
// file's first frame is unreadable: such a journal is corrupt beyond
// recovery and must not be silently treated as empty.
var ErrNoHeader = errors.New("checkpoint: no intact header record")

// ErrWedged is returned by Append after a failed disk write could not
// be rolled back: the file may end mid-frame, so further appends would
// write records that recovery will discard. Reopening the journal
// truncates the debris and clears the condition.
var ErrWedged = errors.New("checkpoint: journal wedged by unrecoverable write error")

// DiskError is returned by Append when the underlying disk write or
// fsync fails (for real, or via an injected errno fault). The journal
// has shed the failed record — the file was truncated back to the last
// durable frame boundary — so the caller may keep appending once the
// disk recovers; until then each attempt fails fast with a DiskError.
type DiskError struct {
	Op  string // "write" or "fsync"
	Err error
}

func (e *DiskError) Error() string {
	return fmt.Sprintf("checkpoint: disk %s failed (record shed): %v", e.Op, e.Err)
}

func (e *DiskError) Unwrap() error { return e.Err }

// Journal is an append-only CRC-framed record log. It is not safe for
// concurrent use; callers serialize (the engine already funnels
// checkpoint records through one mutex).
type Journal struct {
	f      *os.File
	path   string
	seq    int   // records written through this handle (fault-injection index)
	off    int64 // end of the last fully durable frame
	wedged bool  // a failed write could not be truncated away
}

// Create atomically creates a journal at path containing just the
// header record: the full file is assembled at path+".tmp", fsynced,
// renamed over path, and the directory fsynced. An existing journal at
// path is replaced.
func Create(path string, header []byte) (*Journal, error) {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	j := &Journal{f: f, path: path}
	if err := j.Append(header); err != nil {
		f.Close()
		os.Remove(tmp)
		return nil, err
	}
	if err := os.Rename(tmp, path); err != nil {
		f.Close()
		os.Remove(tmp)
		return nil, err
	}
	if err := syncDir(filepath.Dir(path)); err != nil {
		f.Close()
		return nil, err
	}
	return j, nil
}

// Open opens an existing journal, scans it, truncates any torn tail,
// and returns the surviving record payloads (the header is records[0]).
// The returned journal appends after the last valid record. A file
// whose header record is unreadable is corrupt beyond recovery.
func Open(path string) (*Journal, [][]byte, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, err
	}
	records, valid, err := scan(f)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	if len(records) == 0 {
		f.Close()
		return nil, nil, fmt.Errorf("%w: %s", ErrNoHeader, path)
	}
	// Truncate at the first corruption so the next append starts on a
	// clean frame boundary.
	if err := f.Truncate(valid); err != nil {
		f.Close()
		return nil, nil, err
	}
	if _, err := f.Seek(valid, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, nil, err
	}
	return &Journal{f: f, path: path, seq: len(records), off: valid}, records, nil
}

// scan walks the frames of f from the start and returns every intact
// payload plus the byte offset where the intact prefix ends.
func scan(f *os.File) (records [][]byte, valid int64, err error) {
	info, err := f.Stat()
	if err != nil {
		return nil, 0, err
	}
	size := info.Size()
	var off int64
	var hdr [frameHeaderSize]byte
	for {
		if off+frameHeaderSize > size {
			return records, off, nil // short header: torn tail
		}
		if _, err := f.ReadAt(hdr[:], off); err != nil {
			return records, off, nil
		}
		n := int64(binary.LittleEndian.Uint32(hdr[0:4]))
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		if n > maxRecordSize || off+frameHeaderSize+n > size {
			return records, off, nil // implausible length or short payload
		}
		payload := make([]byte, n)
		if _, err := f.ReadAt(payload, off+frameHeaderSize); err != nil {
			return records, off, nil
		}
		if crc32.ChecksumIEEE(payload) != sum {
			return records, off, nil // bit rot or torn overwrite
		}
		records = append(records, payload)
		off += frameHeaderSize + n
	}
}

// Append frames payload, writes it, and fsyncs. The faultinject points
// checkpoint.write and checkpoint.fsync fire with the record sequence
// number; a matching torn rule persists only half the frame and returns
// ErrTornWrite, and a matching errno rule fails the operation with that
// errno (a partial frame is persisted first on write faults, as a full
// disk would leave).
//
// A failed write or fsync — real or injected — sheds the record: the
// file is truncated back to the last durable frame boundary and the
// error returned as a *DiskError, so the journal stays appendable once
// the disk recovers instead of accumulating garbage frames. If even the
// rollback fails, the journal wedges and every later Append returns
// ErrWedged.
func (j *Journal) Append(payload []byte) error {
	if j.wedged {
		return ErrWedged
	}
	if len(payload) > maxRecordSize {
		return fmt.Errorf("checkpoint: record of %d bytes exceeds limit", len(payload))
	}
	seq := j.seq
	frame := make([]byte, frameHeaderSize+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	copy(frame[frameHeaderSize:], payload)

	faultinject.Fire(faultinject.PointCheckpointWrite, seq)
	if faultinject.ShouldTear(faultinject.PointCheckpointWrite, seq) {
		if _, err := j.f.Write(frame[:len(frame)/2]); err != nil {
			return err
		}
		j.f.Sync()
		return ErrTornWrite
	}
	if errno, ok := faultinject.InjectedErrno(faultinject.PointCheckpointWrite, seq); ok {
		// A real short write leaves a partial frame behind; persist one
		// before failing so the shed path has debris to clean up.
		j.f.Write(frame[:len(frame)/2])
		return j.shed("write", errno)
	}
	if _, err := j.f.Write(frame); err != nil {
		return j.shed("write", err)
	}
	faultinject.Fire(faultinject.PointCheckpointSync, seq)
	if errno, ok := faultinject.InjectedErrno(faultinject.PointCheckpointSync, seq); ok {
		return j.shed("fsync", errno)
	}
	if err := j.f.Sync(); err != nil {
		// After a failed fsync the written frame's durability is
		// unknown (the kernel may have dropped the dirty pages), so the
		// only safe move is to discard it.
		return j.shed("fsync", err)
	}
	j.seq++
	j.off += int64(len(frame))
	return nil
}

// shed rolls the file back to the last durable frame boundary after a
// failed write or fsync and reports the failure as a *DiskError. If the
// rollback itself fails the journal wedges.
func (j *Journal) shed(op string, cause error) error {
	if err := j.f.Truncate(j.off); err != nil {
		j.wedged = true
		return &DiskError{Op: op, Err: cause}
	}
	if _, err := j.f.Seek(j.off, io.SeekStart); err != nil {
		j.wedged = true
		return &DiskError{Op: op, Err: cause}
	}
	return &DiskError{Op: op, Err: cause}
}

// Wedged reports whether a failed rollback has made the journal
// unusable for further appends.
func (j *Journal) Wedged() bool { return j.wedged }

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// Close closes the underlying file.
func (j *Journal) Close() error { return j.f.Close() }

// syncDir fsyncs a directory so a completed rename survives a crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	// Best-effort: some filesystems refuse directory fsync, and the
	// rename itself is ordered on any journaling filesystem.
	d.Sync()
	return nil
}
