package checkpoint

import (
	"fmt"
	"os"
	"time"
)

// ScrubReport is the result of one read-only integrity pass over a
// journal file.
type ScrubReport struct {
	// Path is the scrubbed file.
	Path string `json:"path"`
	// Records is the number of intact CRC frames.
	Records int `json:"records"`
	// ValidBytes is the length of the intact frame prefix.
	ValidBytes int64 `json:"valid_bytes"`
	// TotalBytes is the file size.
	TotalBytes int64 `json:"total_bytes"`
	// Torn reports trailing bytes beyond the intact prefix — either a
	// torn append (benign: recovery truncates it) or bit rot inside a
	// frame (every record after the rotten one is unreachable).
	Torn bool `json:"torn"`
}

// OK reports whether the file is clean: at least a header record and no
// trailing garbage.
func (r ScrubReport) OK() bool { return r.Records > 0 && !r.Torn }

// String renders the report for logs and /stats.
func (r ScrubReport) String() string {
	state := "clean"
	if !r.OK() {
		state = fmt.Sprintf("TORN (%d/%d bytes intact)", r.ValidBytes, r.TotalBytes)
	}
	return fmt.Sprintf("%s: %d records, %s", r.Path, r.Records, state)
}

// ScrubStatus is one scrub pass's publishable outcome — the report plus
// any scan error and the pass's age — shared by the daemons' /healthz
// and /stats surfaces.
type ScrubStatus struct {
	Report ScrubReport `json:"report"`
	Err    string      `json:"error,omitempty"`
	At     time.Time   `json:"-"`
	AgeMS  int64       `json:"age_ms"`
}

// Healthy reports whether the pass found nothing wrong.
func (s *ScrubStatus) Healthy() bool { return s.Err == "" && s.Report.OK() }

// Problem renders an unhealthy status for logs and degraded-reason
// lists.
func (s *ScrubStatus) Problem() string {
	if s.Err != "" {
		return "scrub failed: " + s.Err
	}
	return s.Report.String()
}

// ScrubFile re-walks the CRC frames of the journal at path without
// opening it for writing and without truncating anything: it detects
// bit rot and torn tails before a replay needs the data, leaving the
// repair decision (truncate on Open, restore from a peer, alert) to the
// caller. Safe to run concurrently with appends only if the caller
// serializes against the appender — an in-flight append looks like a
// torn tail.
func ScrubFile(path string) (ScrubReport, error) {
	f, err := os.Open(path)
	if err != nil {
		return ScrubReport{Path: path}, err
	}
	defer f.Close()
	info, err := f.Stat()
	if err != nil {
		return ScrubReport{Path: path}, err
	}
	records, valid, err := scan(f)
	if err != nil {
		return ScrubReport{Path: path}, err
	}
	return ScrubReport{
		Path:       path,
		Records:    len(records),
		ValidBytes: valid,
		TotalBytes: info.Size(),
		Torn:       valid != info.Size(),
	}, nil
}
