package checkpoint_test

import (
	"os"
	"path/filepath"
	"testing"

	"fasthgp/internal/checkpoint"
	"fasthgp/internal/partition"
	"fasthgp/internal/verify"
)

// FuzzCheckpointReplay feeds arbitrary bytes through the full recovery
// path — journal scan, truncation, meta check, record fold, payload
// decode, oracle certification. Whatever the bytes, recovery must never
// panic, and when it accepts, the resulting state must be internally
// consistent and describe a partition the verify oracle certifies —
// i.e. corruption is either truncated away or rejected, never resumed
// into.
func FuzzCheckpointReplay(f *testing.F) {
	h := testHG(f)
	meta := checkpoint.NewMeta("kl", h, 42, 4)

	// Seed corpus: a healthy journal, one cut mid-frame, and one with
	// trailing garbage.
	dir := f.TempDir()
	seedPath := filepath.Join(dir, "seed.ckpt")
	rj, err := checkpoint.CreateRun(seedPath, meta)
	if err != nil {
		f.Fatal(err)
	}
	sides := []partition.Side{0, 0, 0, 1, 1, 1}
	if err := rj.StartDone(0, 3, checkpoint.EncodeBest(sides, 3)); err != nil {
		f.Fatal(err)
	}
	if err := rj.StartDone(1, 5, nil); err != nil {
		f.Fatal(err)
	}
	rj.Close()
	healthy, err := os.ReadFile(seedPath)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(healthy)
	f.Add(healthy[:len(healthy)-7])
	f.Add(append(append([]byte(nil), healthy...), 0xde, 0xad, 0xbe, 0xef))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "fuzz.ckpt")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		rj, state, err := checkpoint.Resume(path, meta)
		if err != nil {
			return // rejected: fine, as long as it did not panic
		}
		defer rj.Close()
		if len(state.Completed) != meta.Starts || len(state.Cuts) != meta.Starts {
			t.Fatalf("accepted state sized %d/%d, meta has %d starts",
				len(state.Completed), len(state.Cuts), meta.Starts)
		}
		done := 0
		for _, c := range state.Completed {
			if c {
				done++
			}
		}
		if done == 0 {
			if state.BestStart != -1 {
				t.Fatalf("no completed starts but BestStart = %d", state.BestStart)
			}
			return
		}
		if state.BestStart < 0 || state.BestStart >= meta.Starts || !state.Completed[state.BestStart] {
			t.Fatalf("accepted state with invalid BestStart %d", state.BestStart)
		}
		// The payload crosses a trust boundary: it must either fail
		// decode/certification (a resume would then be refused) or be a
		// complete bipartition whose claimed cut the oracle confirms.
		got, cut, _, err := checkpoint.DecodeBest(state.BestPayload, h.NumVertices())
		if err != nil {
			return
		}
		if _, err := verify.CheckCut(h, partition.FromSides(got), cut); err != nil {
			return
		}
	})
}
