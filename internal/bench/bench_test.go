package bench

import (
	"strings"
	"testing"

	"fasthgp/internal/gen"
)

// The drivers run at reduced scale here; full-scale runs live in the
// root benchmark suite and cmd/tables.

func TestTable1Small(t *testing.T) {
	rows, err := Table1(Table1Config{Modules: 120, Signals: 260, Runs: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4 technologies", len(rows))
	}
	for _, r := range rows {
		for _, k := range Table1Thresholds {
			pct := r.CrossingPct[k]
			if pct < 0 || pct > 100 {
				t.Errorf("%v k=%d: crossing %% = %g", r.Technology, k, pct)
			}
		}
		// The paper's central observation: large nets almost always
		// cross. With any population at all, expect a high rate.
		if r.Population[14] >= 5 && r.CrossingPct[14] < 50 {
			t.Errorf("%v: only %.1f%% of k>=14 nets cross (population %d)",
				r.Technology, r.CrossingPct[14], r.Population[14])
		}
	}
	out := RenderTable1(rows).String()
	if !strings.Contains(out, "PCB") || !strings.Contains(out, "Hybrid") {
		t.Errorf("render missing technologies:\n%s", out)
	}
}

func TestTable2Small(t *testing.T) {
	rows, err := Table2(Table2Config{
		Seed:      1,
		Starts:    10,
		Instances: []gen.Table2Name{gen.Bd1, gen.Diff1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.AlgICut <= 0 && r.Name != gen.Diff1 {
			t.Errorf("%s: Alg I cut = %d", r.Name, r.AlgICut)
		}
		if r.AlgITime <= 0 || r.SATime <= 0 || r.KLTime <= 0 {
			t.Errorf("%s: missing timings", r.Name)
		}
	}
	out := RenderTable2(rows).String()
	if !strings.Contains(out, "CPU") {
		t.Errorf("render missing CPU row:\n%s", out)
	}
}

func TestDifficultSmall(t *testing.T) {
	rows, err := Difficult(3, 1, []int{60}, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	r := rows[0]
	// Algorithm I must find the planted cut on this regime.
	if r.AlgI > r.PlantedCut {
		t.Errorf("Alg I cut %d > planted %d", r.AlgI, r.PlantedCut)
	}
	if r.Random < r.PlantedCut {
		t.Errorf("random-50 beat the planted optimum: %d < %d", r.Random, r.PlantedCut)
	}
	if s := RenderDifficult(rows).String(); !strings.Contains(s, "planted") {
		t.Error("render broken")
	}
}

func TestLargeNetsSmall(t *testing.T) {
	rows, pct, err := LargeNets(5, []int{0, 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].ExcludedNets != 0 {
		t.Errorf("threshold off excluded %d nets", rows[0].ExcludedNets)
	}
	if rows[1].ExcludedNets == 0 {
		t.Errorf("threshold 10 excluded nothing")
	}
	if pct < 0 || pct > 100 {
		t.Errorf("crossing pct = %g", pct)
	}
	if s := RenderLargeNets(rows, pct).String(); !strings.Contains(s, "off") {
		t.Error("render broken")
	}
}

func TestDiameterSmall(t *testing.T) {
	rows, err := Diameter(7, []int{48, 96}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 2 sizes x 2 families", len(rows))
	}
	for _, r := range rows {
		if r.BFSDepth > float64(r.Diameter) {
			t.Errorf("n=%d: BFS depth %g exceeds diameter %d", r.N, r.BFSDepth, r.Diameter)
		}
		if r.BoundaryFr < 0 || r.BoundaryFr > 1 {
			t.Errorf("n=%d: boundary fraction %g", r.N, r.BoundaryFr)
		}
	}
	if s := RenderDiameter(rows).String(); !strings.Contains(s, "diam(G)") {
		t.Error("render broken")
	}
}

func TestBalanceSmall(t *testing.T) {
	rows, err := Balance(9)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	byComp := map[string]BalanceRow{}
	for _, r := range rows {
		byComp[r.Completion.String()] = r
	}
	// The engineer's rule should not be less balanced than plain greedy.
	if byComp["weighted"].Imbalance > byComp["greedy"].Imbalance {
		t.Errorf("weighted imbalance %d > greedy %d",
			byComp["weighted"].Imbalance, byComp["greedy"].Imbalance)
	}
	if s := RenderBalance(rows).String(); !strings.Contains(s, "weighted") {
		t.Error("render broken")
	}
}

func TestStartsSmall(t *testing.T) {
	rows, err := Starts(11, []int{1, 5}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[1].MeanCut > rows[0].MeanCut {
		t.Errorf("5 starts (%g) worse than 1 start (%g)", rows[1].MeanCut, rows[0].MeanCut)
	}
	if s := RenderStarts(rows).String(); !strings.Contains(s, "starts") {
		t.Error("render broken")
	}
}

func TestGranularSmall(t *testing.T) {
	rows, err := Granular(13)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if s := RenderGranular(rows).String(); !strings.Contains(s, "granularized") {
		t.Error("render broken")
	}
}

func TestScalingSmall(t *testing.T) {
	rows, err := Scaling(15, []int{100, 200})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.AlgITime <= 0 || r.KLTime <= 0 || r.FMTime <= 0 {
			t.Errorf("n=%d: missing timings", r.N)
		}
	}
	if s := RenderScaling(rows).String(); !strings.Contains(s, "KL/AlgI") {
		t.Error("render broken")
	}
}

func TestMethodsSmall(t *testing.T) {
	rows, err := Methods(19, 100, 210)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("rows = %d, want 8 methods", len(rows))
	}
	for _, r := range rows {
		if r.Cut < 0 || r.Time <= 0 {
			t.Errorf("%s: cut %d time %v", r.Method, r.Cut, r.Time)
		}
	}
	if s := RenderMethods(rows).String(); !strings.Contains(s, "Spectral") {
		t.Error("render broken")
	}
}

func TestQuotientSmall(t *testing.T) {
	rows, err := Quotient(17)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Quotient < 0 {
			t.Errorf("%s: quotient %g", r.Method, r.Quotient)
		}
	}
	if s := RenderQuotient(rows).String(); !strings.Contains(s, "quotient") {
		t.Error("render broken")
	}
}

func TestParallelSmall(t *testing.T) {
	rows, err := Parallel(21, 1000, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4 methods", len(rows))
	}
	for _, r := range rows {
		if !r.Identical {
			t.Errorf("%s: serial and parallel runs disagree", r.Method)
		}
		if r.Serial <= 0 || r.Parallel <= 0 {
			t.Errorf("%s: missing timings", r.Method)
		}
	}
	if s := RenderParallel(rows).String(); !strings.Contains(s, "speedup") {
		t.Error("render broken")
	}
}
