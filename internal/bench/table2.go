package bench

import (
	"fmt"
	"time"

	"fasthgp/internal/anneal"
	"fasthgp/internal/core"
	"fasthgp/internal/gen"
	"fasthgp/internal/kl"
	"fasthgp/internal/stats"
)

// Table2Config scales experiment T2.
type Table2Config struct {
	// Seed drives the instance generation and all partitioners.
	Seed int64
	// Starts is Algorithm I's multi-start count (the paper's runs used
	// 50 random longest paths).
	Starts int
	// Instances restricts the run to a subset (nil = the full paper
	// set; IC2 at (2471,3496) dominates the runtime).
	Instances []gen.Table2Name
}

func (c *Table2Config) defaults() {
	if c.Starts <= 0 {
		c.Starts = 50
	}
	if c.Instances == nil {
		c.Instances = gen.Table2Names()
	}
}

// Table2Row is one example row of Table 2: cutsizes and wall times of
// Algorithm I, simulated annealing, and min-cut Kernighan–Lin.
type Table2Row struct {
	Name       gen.Table2Name
	Mods, Sigs int
	AlgICut    int
	SACut      int
	KLCut      int
	AlgITime   time.Duration
	SATime     time.Duration
	KLTime     time.Duration
}

// Table2 reproduces Table 2 on the synthetic stand-in suite: cutsize
// parity (normalized to Algorithm I) and the CPU-ratio row.
func Table2(cfg Table2Config) ([]Table2Row, error) {
	cfg.defaults()
	rows := make([]Table2Row, 0, len(cfg.Instances))
	for _, name := range cfg.Instances {
		h, err := gen.Table2Instance(name, cfg.Seed)
		if err != nil {
			return nil, fmt.Errorf("bench: table2 %s: %w", name, err)
		}
		row := Table2Row{Name: name, Mods: h.NumVertices(), Sigs: h.NumEdges()}

		start := time.Now()
		// Threshold 10 follows the paper's Section 3: large nets are
		// heuristically ignored when building the intersection graph.
		algi, err := core.Bipartition(h, core.Options{Starts: cfg.Starts, Seed: cfg.Seed, Threshold: 10})
		if err != nil {
			return nil, fmt.Errorf("bench: table2 %s alg I: %w", name, err)
		}
		row.AlgITime = time.Since(start)
		row.AlgICut = algi.CutSize

		start = time.Now()
		sa, err := anneal.Bisect(h, anneal.Options{Seed: cfg.Seed})
		if err != nil {
			return nil, fmt.Errorf("bench: table2 %s SA: %w", name, err)
		}
		row.SATime = time.Since(start)
		row.SACut = sa.CutSize

		start = time.Now()
		klRes, err := kl.Bisect(h, kl.Options{Seed: cfg.Seed})
		if err != nil {
			return nil, fmt.Errorf("bench: table2 %s KL: %w", name, err)
		}
		row.KLTime = time.Since(start)
		row.KLCut = klRes.CutSize

		rows = append(rows, row)
	}
	return rows, nil
}

// RenderTable2 formats Table-2 rows in the paper's layout: cutsizes
// normalized to Algorithm I per row, with a final CPU row holding the
// average runtime ratios.
func RenderTable2(rows []Table2Row) *stats.Table {
	t := stats.NewTable("Example (Mods,Sigs)", "Alg I cut", "SA cut", "MinCut-KL cut", "Alg I norm", "SA norm", "KL norm")
	var saRatios, klRatios []float64
	for _, r := range rows {
		norm := func(c int) string {
			if r.AlgICut == 0 {
				if c == 0 {
					return "1.00"
				}
				return "inf"
			}
			return stats.F(float64(c)/float64(r.AlgICut), 2)
		}
		t.AddRow(
			fmt.Sprintf("%s (%d,%d)", r.Name, r.Mods, r.Sigs),
			stats.I(r.AlgICut), stats.I(r.SACut), stats.I(r.KLCut),
			"1.00", norm(r.SACut), norm(r.KLCut),
		)
		if r.AlgITime > 0 {
			saRatios = append(saRatios, float64(r.SATime)/float64(r.AlgITime))
			klRatios = append(klRatios, float64(r.KLTime)/float64(r.AlgITime))
		}
	}
	t.AddRow("CPU (avg ratio)", "", "", "", "1.0",
		stats.F(stats.Mean(saRatios), 1), stats.F(stats.Mean(klRatios), 1))
	return t
}
