// Package bench contains the experiment drivers that regenerate every
// table and figure of the paper's evaluation, shared by cmd/tables and
// the root benchmark suite. Each driver returns both structured rows
// and a rendered text table in the paper's layout; all are
// deterministic per seed. DESIGN.md §5 maps experiment IDs (T1, T2,
// X1–X9) to these functions.
package bench

import (
	"fmt"
	"math/rand"

	"fasthgp/internal/anneal"
	"fasthgp/internal/gen"
	"fasthgp/internal/hypergraph"
	"fasthgp/internal/partition"
	"fasthgp/internal/stats"
)

// Table1Config scales experiment T1.
type Table1Config struct {
	// Modules and Signals size each technology's instance
	// (defaults 300, 650).
	Modules, Signals int
	// Runs is the number of annealing runs averaged per technology
	// (the paper uses 10).
	Runs int
	// Seed drives everything.
	Seed int64
}

func (c *Table1Config) defaults() {
	if c.Modules <= 0 {
		c.Modules = 300
	}
	if c.Signals <= 0 {
		c.Signals = 650
	}
	if c.Runs <= 0 {
		c.Runs = 10
	}
}

// Table1Row is one technology row of Table 1: the percentage of
// signals with at least K pins that cross the best simulated-annealing
// partition, averaged over the runs.
type Table1Row struct {
	Technology gen.Technology
	// CrossingPct[k] is the average crossing percentage for nets of
	// size ≥ k, for k ∈ {20, 14, 8}.
	CrossingPct map[int]float64
	// Population[k] is the number of nets of size ≥ k in the instance.
	Population map[int]int
}

// Table1Thresholds are the size classes reported by the paper.
var Table1Thresholds = []int{20, 14, 8}

// Table1 reproduces Table 1: large signals almost always contribute to
// the cut value of the best heuristic partition.
func Table1(cfg Table1Config) ([]Table1Row, error) {
	cfg.defaults()
	techs := []gen.Technology{gen.PCB, gen.StdCell, gen.GateArray, gen.Hybrid}
	rows := make([]Table1Row, 0, len(techs))
	for ti, tech := range techs {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(ti)*1000))
		h, err := gen.Profile(gen.ProfileConfig{
			Modules:          cfg.Modules,
			Signals:          cfg.Signals,
			Technology:       tech,
			LargeNetFraction: 0.05,
		}, rng)
		if err != nil {
			return nil, fmt.Errorf("bench: table1 %v: %w", tech, err)
		}
		row := Table1Row{
			Technology:  tech,
			CrossingPct: map[int]float64{},
			Population:  map[int]int{},
		}
		for _, k := range Table1Thresholds {
			for e := 0; e < h.NumEdges(); e++ {
				if h.EdgeSize(e) >= k {
					row.Population[k]++
				}
			}
		}
		sums := map[int]float64{}
		for run := 0; run < cfg.Runs; run++ {
			res, err := anneal.Bisect(h, anneal.Options{Seed: cfg.Seed + int64(run)})
			if err != nil {
				return nil, fmt.Errorf("bench: table1 %v run %d: %w", tech, run, err)
			}
			for _, k := range Table1Thresholds {
				sums[k] += crossingPct(h, res.Partition, k)
			}
		}
		for _, k := range Table1Thresholds {
			row.CrossingPct[k] = sums[k] / float64(cfg.Runs)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// crossingPct returns the percentage of nets with ≥ minSize pins that
// cross p (100 when no such nets exist is avoided by returning 0).
func crossingPct(h *hypergraph.Hypergraph, p *partition.Bipartition, minSize int) float64 {
	total, crossing := 0, 0
	for e := 0; e < h.NumEdges(); e++ {
		if h.EdgeSize(e) < minSize {
			continue
		}
		total++
		if partition.Crosses(h, p, e) {
			crossing++
		}
	}
	if total == 0 {
		return 0
	}
	return 100 * float64(crossing) / float64(total)
}

// RenderTable1 formats Table-1 rows in the paper's layout.
func RenderTable1(rows []Table1Row) *stats.Table {
	t := stats.NewTable("Technology", "k>=20 crossing %", "k>=14 crossing %", "k>=8 crossing %")
	for _, r := range rows {
		t.AddRow(
			r.Technology.String(),
			stats.F(r.CrossingPct[20], 1),
			stats.F(r.CrossingPct[14], 1),
			stats.F(r.CrossingPct[8], 1),
		)
	}
	return t
}
