package bench

import (
	"fmt"
	"math/rand"
	"time"

	"fasthgp/internal/anneal"
	"fasthgp/internal/baseline"
	"fasthgp/internal/core"
	"fasthgp/internal/flowpart"
	"fasthgp/internal/fm"
	"fasthgp/internal/gen"
	"fasthgp/internal/granular"
	"fasthgp/internal/hypergraph"
	"fasthgp/internal/intersect"
	"fasthgp/internal/kl"
	"fasthgp/internal/partition"
	"fasthgp/internal/stats"
)

// DifficultRow is one parameter point of experiment X1.
type DifficultRow struct {
	N, PlantedCut int
	// Cuts found by each method (best over the trials).
	AlgI, KL, SA, Random int
	// AlgIOptimalRate is the fraction of trials where Algorithm I
	// found a cut of exactly the planted size.
	AlgIOptimalRate float64
}

// Difficult reproduces experiment X1: on planted-cut instances with
// c = o(n^{1-1/d}), Algorithm I recovers the planted minimum while
// move-based heuristics often stall at poor local minima ("Kernighan-
// Lin and annealing methods often became stuck at a terrible
// bipartition").
func Difficult(seed int64, trials int, sizes []int, cuts []int) ([]DifficultRow, error) {
	if trials <= 0 {
		trials = 3
	}
	if len(sizes) == 0 {
		sizes = []int{100, 200, 400}
	}
	if len(cuts) == 0 {
		cuts = []int{2, 4, 8}
	}
	var rows []DifficultRow
	for _, n := range sizes {
		for _, c := range cuts {
			row := DifficultRow{N: n, PlantedCut: c, AlgI: 1 << 30, KL: 1 << 30, SA: 1 << 30, Random: 1 << 30}
			hits := 0
			for trial := 0; trial < trials; trial++ {
				s := seed + int64(trial)*101 + int64(n) + int64(c)*7
				rng := rand.New(rand.NewSource(s))
				h, _, err := gen.PlantedCut(n, gen.PlantedConfig{CutSize: c, IntraEdges: 2 * n, MaxEdgeSize: 4, MaxDegree: 6}, rng)
				if err != nil {
					return nil, fmt.Errorf("bench: difficult n=%d c=%d: %w", n, c, err)
				}
				algi, err := core.Bipartition(h, core.Options{Starts: 50, Seed: s})
				if err != nil {
					return nil, err
				}
				klRes, err := kl.Bisect(h, kl.Options{Seed: s})
				if err != nil {
					return nil, err
				}
				sa, err := anneal.Bisect(h, anneal.Options{Seed: s})
				if err != nil {
					return nil, err
				}
				_, rcut, err := baseline.BestRandomBisection(h, 50, rng)
				if err != nil {
					return nil, err
				}
				row.AlgI = min(row.AlgI, algi.CutSize)
				row.KL = min(row.KL, klRes.CutSize)
				row.SA = min(row.SA, sa.CutSize)
				row.Random = min(row.Random, rcut)
				if algi.CutSize <= c {
					hits++
				}
			}
			row.AlgIOptimalRate = float64(hits) / float64(trials)
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// RenderDifficult formats X1 rows.
func RenderDifficult(rows []DifficultRow) *stats.Table {
	t := stats.NewTable("n", "planted c", "Alg I", "KL", "SA", "random-50", "Alg I optimal rate")
	for _, r := range rows {
		t.AddRow(stats.I(r.N), stats.I(r.PlantedCut),
			stats.I(r.AlgI), stats.I(r.KL), stats.I(r.SA), stats.I(r.Random),
			stats.F(r.AlgIOptimalRate, 2))
	}
	return t
}

// LargeNetRow is one threshold point of experiment X2.
type LargeNetRow struct {
	Threshold    int // 0 = no filtering
	ExcludedNets int
	Cut          int
	ImbalancePct float64
	Time         time.Duration
}

// LargeNets reproduces experiment X2: filtering nets of size ≥ k out of
// the intersection graph barely hurts cutsize even at k = 10 — because
// such nets almost always cross the best partition anyway — while
// shrinking G.
func LargeNets(seed int64, thresholds []int) ([]LargeNetRow, float64, error) {
	if len(thresholds) == 0 {
		thresholds = []int{0, 20, 14, 10, 8}
	}
	rng := rand.New(rand.NewSource(seed))
	h, err := gen.Profile(gen.ProfileConfig{Modules: 400, Signals: 900, Technology: gen.PCB, LargeNetFraction: 0.05}, rng)
	if err != nil {
		return nil, 0, fmt.Errorf("bench: largenets: %w", err)
	}
	var rows []LargeNetRow
	for _, thr := range thresholds {
		start := time.Now()
		// Balanced partitions (balanced BFS + engineer's rule) make the
		// threshold comparison meaningful: an unconstrained min cut
		// would dodge the global nets by going lopsided instead.
		res, err := core.Bipartition(h, core.Options{
			Starts: 20, Seed: seed, Threshold: thr,
			BalancedBFS: true, Completion: core.CompletionWeighted,
		})
		if err != nil {
			return nil, 0, err
		}
		rows = append(rows, LargeNetRow{
			Threshold:    thr,
			ExcludedNets: res.Stats.ExcludedNets,
			Cut:          res.CutSize,
			ImbalancePct: 100 * float64(partition.Imbalance(h, res.Partition)) / float64(h.TotalVertexWeight()),
			Time:         time.Since(start),
		})
	}
	// Companion measurement: crossing rate of large nets in the best SA
	// partition (the paper's Theorem: a size-k net crosses w.p.
	// 1 − O(2^{-k})).
	sa, err := anneal.Bisect(h, anneal.Options{Seed: seed})
	if err != nil {
		return nil, 0, err
	}
	return rows, crossingPct(h, sa.Partition, 14), nil
}

// RenderLargeNets formats X2 rows.
func RenderLargeNets(rows []LargeNetRow, bigCrossPct float64) *stats.Table {
	t := stats.NewTable("threshold k", "excluded nets", "Alg I cut", "imbalance %", "time")
	for _, r := range rows {
		thr := "off"
		if r.Threshold > 0 {
			thr = stats.I(r.Threshold)
		}
		t.AddRow(thr, stats.I(r.ExcludedNets), stats.I(r.Cut),
			stats.F(r.ImbalancePct, 1), r.Time.Round(time.Microsecond).String())
	}
	t.AddRow(fmt.Sprintf("(k>=14 nets cross SA partition %.1f%% of the time)", bigCrossPct))
	return t
}

// DiameterRow is one (family, size) point of experiment X3.
type DiameterRow struct {
	Family     string // "random" or "circuit"
	N          int    // modules
	GVertices  int
	Diameter   int     // exact diameter of the largest component
	BFSDepth   float64 // mean longest-BFS-path depth over trials
	BoundaryFr float64 // mean |B| / |V(G)|
}

// Diameter reproduces experiment X3: longest BFS paths track the true
// diameter within O(1), the diameter of bounded-degree random
// hypergraph duals grows ~ log n, and the boundary set stays a roughly
// constant fraction — plus the paper's closing observation that real
// netlists "typically have intersection graph diameter greater than
// that of random hypergraphs with similar degree sequences" thanks to
// their logical hierarchy, which shrinks the boundary set.
func Diameter(seed int64, sizes []int, trials int) ([]DiameterRow, error) {
	if len(sizes) == 0 {
		sizes = []int{64, 128, 256, 512}
	}
	if trials <= 0 {
		trials = 5
	}
	var rows []DiameterRow
	for _, family := range []string{"random", "circuit"} {
		for _, n := range sizes {
			rng := rand.New(rand.NewSource(seed + int64(n)))
			var h *hypergraph.Hypergraph
			var err error
			if family == "random" {
				h, err = gen.Random(n, gen.RandomConfig{NumEdges: 3 * n / 2, MinEdgeSize: 2, MaxEdgeSize: 3, MaxDegree: 3}, rng)
			} else {
				h, err = gen.Profile(gen.ProfileConfig{Modules: n, Signals: 3 * n / 2, Technology: gen.StdCell}, rng)
			}
			if err != nil {
				return nil, fmt.Errorf("bench: diameter %s n=%d: %w", family, n, err)
			}
			// Circuit netlists are measured after the paper's large-net
			// filtering (k ≥ 10), which is what the partitioner sees:
			// "the sparser hypergraph will have greater graph diameter
			// of G, so the size of the boundary set is smaller".
			thr := 0
			if family == "circuit" {
				thr = 10
			}
			ig := intersect.Build(h, intersect.Options{Threshold: thr})
			row := DiameterRow{Family: family, N: n, GVertices: ig.G.NumVertices(), Diameter: ig.G.Diameter()}
			var depthSum, boundarySum float64
			for trial := 0; trial < trials; trial++ {
				u, v, depth := ig.G.LongestBFSPath(rng)
				depthSum += float64(depth)
				pb := core.PartialFromCut(h, ig, u, v)
				boundarySum += float64(len(pb.Boundary.Nets)) / float64(ig.G.NumVertices())
			}
			row.BFSDepth = depthSum / float64(trials)
			row.BoundaryFr = boundarySum / float64(trials)
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// RenderDiameter formats X3 rows.
func RenderDiameter(rows []DiameterRow) *stats.Table {
	t := stats.NewTable("family", "n", "|V(G)|", "diam(G)", "mean BFS depth", "boundary fraction")
	for _, r := range rows {
		t.AddRow(r.Family, stats.I(r.N), stats.I(r.GVertices), stats.I(r.Diameter),
			stats.F(r.BFSDepth, 1), stats.F(r.BoundaryFr, 3))
	}
	return t
}

// BalanceRow is one completion-rule point of experiment X5.
type BalanceRow struct {
	Completion core.Completion
	Cut        int
	Imbalance  int64
	TotalW     int64
}

// Balance reproduces experiment X5: the engineer's rule trades a
// slightly higher cutsize for a much tighter weight balance.
func Balance(seed int64) ([]BalanceRow, error) {
	rng := rand.New(rand.NewSource(seed))
	h, err := gen.Profile(gen.ProfileConfig{Modules: 500, Signals: 1000, Technology: gen.PCB}, rng)
	if err != nil {
		return nil, fmt.Errorf("bench: balance: %w", err)
	}
	var rows []BalanceRow
	for _, comp := range []core.Completion{core.CompletionGreedy, core.CompletionExact, core.CompletionWeighted} {
		res, err := core.Bipartition(h, core.Options{
			Starts: 20, Seed: seed, Threshold: 10, BalancedBFS: true, Completion: comp,
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, BalanceRow{
			Completion: comp,
			Cut:        res.CutSize,
			Imbalance:  partition.Imbalance(h, res.Partition),
			TotalW:     h.TotalVertexWeight(),
		})
	}
	return rows, nil
}

// RenderBalance formats X5 rows.
func RenderBalance(rows []BalanceRow) *stats.Table {
	t := stats.NewTable("completion", "cut", "imbalance", "imbalance %")
	for _, r := range rows {
		t.AddRow(r.Completion.String(), stats.I(r.Cut), fmt.Sprintf("%d", r.Imbalance),
			stats.F(100*float64(r.Imbalance)/float64(r.TotalW), 1))
	}
	return t
}

// StartsRow is one multi-start point of experiment X6.
type StartsRow struct {
	Starts  int
	MeanCut float64
	Time    time.Duration
}

// Starts reproduces experiment X6: more random longest paths, better
// best-of cut, linear cost.
func Starts(seed int64, counts []int, trials int) ([]StartsRow, error) {
	if len(counts) == 0 {
		counts = []int{1, 5, 50}
	}
	if trials <= 0 {
		trials = 5
	}
	rng := rand.New(rand.NewSource(seed))
	h, err := gen.Profile(gen.ProfileConfig{Modules: 400, Signals: 800, Technology: gen.StdCell}, rng)
	if err != nil {
		return nil, fmt.Errorf("bench: starts: %w", err)
	}
	var rows []StartsRow
	for _, k := range counts {
		var cuts []float64
		start := time.Now()
		for trial := 0; trial < trials; trial++ {
			res, err := core.Bipartition(h, core.Options{Starts: k, Seed: seed + int64(trial)})
			if err != nil {
				return nil, err
			}
			cuts = append(cuts, float64(res.CutSize))
		}
		rows = append(rows, StartsRow{Starts: k, MeanCut: stats.Mean(cuts), Time: time.Since(start) / time.Duration(trials)})
	}
	return rows, nil
}

// RenderStarts formats X6 rows.
func RenderStarts(rows []StartsRow) *stats.Table {
	t := stats.NewTable("starts", "mean cut", "time/run")
	for _, r := range rows {
		t.AddRow(stats.I(r.Starts), stats.F(r.MeanCut, 1), r.Time.Round(time.Microsecond).String())
	}
	return t
}

// GranularRow compares direct vs granularized partitioning (X7).
type GranularRow struct {
	Mode         string
	Cut          int
	Imbalance    int64
	TotalW       int64
	SplitModules int
}

// Granular reproduces experiment X7: granularization balances the
// weight bipartition when the netlist contains macro modules too heavy
// for any whole-module assignment to balance.
func Granular(seed int64) ([]GranularRow, error) {
	rng := rand.New(rand.NewSource(seed))
	base, err := gen.Profile(gen.ProfileConfig{Modules: 300, Signals: 600, Technology: gen.PCB}, rng)
	if err != nil {
		return nil, fmt.Errorf("bench: granular: %w", err)
	}
	// Promote one module to a dominant macro holding ~60% of the total
	// weight: no whole-module assignment can balance it, which is
	// precisely the situation granularization addresses.
	b := hypergraph.NewBuilder(base.NumVertices())
	for v := 0; v < base.NumVertices(); v++ {
		b.SetVertexWeight(v, base.VertexWeight(v))
	}
	for e := 0; e < base.NumEdges(); e++ {
		ne := b.AddEdge(base.EdgePins(e)...)
		b.SetEdgeWeight(ne, base.EdgeWeight(e))
	}
	b.SetVertexWeight(rng.Intn(base.NumVertices()), 3*base.TotalVertexWeight()/2)
	h, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("bench: granular: %w", err)
	}
	direct, err := core.Bipartition(h, core.Options{
		Starts: 20, Seed: seed, Threshold: 10, BalancedBFS: true, Completion: core.CompletionWeighted,
	})
	if err != nil {
		return nil, err
	}
	rows := []GranularRow{{
		Mode:      "direct",
		Cut:       direct.CutSize,
		Imbalance: partition.Imbalance(h, direct.Partition),
		TotalW:    h.TotalVertexWeight(),
	}}

	grain := h.TotalVertexWeight() / int64(2*h.NumVertices())
	if grain < 1 {
		grain = 1
	}
	gr, err := granular.Granularize(h, grain, 4)
	if err != nil {
		return nil, err
	}
	gres, err := core.Bipartition(gr.H, core.Options{
		Starts: 20, Seed: seed, Threshold: 10, BalancedBFS: true, Completion: core.CompletionWeighted,
	})
	if err != nil {
		return nil, err
	}
	projected, err := gr.Project(gres.Partition)
	if err != nil {
		return nil, err
	}
	rows = append(rows, GranularRow{
		Mode:         "granularized",
		Cut:          partition.CutSize(h, projected),
		Imbalance:    partition.Imbalance(h, projected),
		TotalW:       h.TotalVertexWeight(),
		SplitModules: gr.SplitModules(gres.Partition),
	})
	return rows, nil
}

// RenderGranular formats X7 rows.
func RenderGranular(rows []GranularRow) *stats.Table {
	t := stats.NewTable("mode", "cut", "imbalance %", "torn modules")
	for _, r := range rows {
		t.AddRow(r.Mode, stats.I(r.Cut),
			stats.F(100*float64(r.Imbalance)/float64(r.TotalW), 1),
			stats.I(r.SplitModules))
	}
	return t
}

// ScalingRow is one size point of experiment X8.
type ScalingRow struct {
	N        int
	AlgITime time.Duration
	KLTime   time.Duration
	FMTime   time.Duration
	FlowTime time.Duration
}

// Scaling reproduces experiment X8: empirical runtime growth of
// Algorithm I (O(n²) bound) against KL and FM.
func Scaling(seed int64, sizes []int) ([]ScalingRow, error) {
	if len(sizes) == 0 {
		sizes = []int{250, 500, 1000, 2000}
	}
	var rows []ScalingRow
	for _, n := range sizes {
		rng := rand.New(rand.NewSource(seed + int64(n)))
		h, err := gen.Profile(gen.ProfileConfig{Modules: n, Signals: 2 * n, Technology: gen.StdCell}, rng)
		if err != nil {
			return nil, fmt.Errorf("bench: scaling n=%d: %w", n, err)
		}
		row := ScalingRow{N: n}
		start := time.Now()
		if _, err := core.Bipartition(h, core.Options{Starts: 1, Seed: seed}); err != nil {
			return nil, err
		}
		row.AlgITime = time.Since(start)
		start = time.Now()
		if _, err := kl.Bisect(h, kl.Options{Seed: seed, MaxPasses: 4}); err != nil {
			return nil, err
		}
		row.KLTime = time.Since(start)
		start = time.Now()
		if _, err := fm.Bisect(h, fm.Options{Seed: seed}); err != nil {
			return nil, err
		}
		row.FMTime = time.Since(start)
		start = time.Now()
		if _, err := flowpart.Bisect(h, flowpart.Options{Seed: seed, SeedPairs: 3}); err != nil {
			return nil, err
		}
		row.FlowTime = time.Since(start)
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderScaling formats X8 rows.
func RenderScaling(rows []ScalingRow) *stats.Table {
	t := stats.NewTable("n", "Alg I", "KL", "FM", "Flow", "KL/AlgI", "FM/AlgI", "Flow/AlgI")
	for _, r := range rows {
		t.AddRow(stats.I(r.N),
			r.AlgITime.Round(time.Microsecond).String(),
			r.KLTime.Round(time.Microsecond).String(),
			r.FMTime.Round(time.Microsecond).String(),
			r.FlowTime.Round(time.Microsecond).String(),
			stats.F(float64(r.KLTime)/float64(r.AlgITime), 1),
			stats.F(float64(r.FMTime)/float64(r.AlgITime), 1),
			stats.F(float64(r.FlowTime)/float64(r.AlgITime), 1))
	}
	return t
}

// QuotientRow is one method point of experiment X9.
type QuotientRow struct {
	Method   string
	Cut      int
	Quotient float64
}

// Quotient reproduces experiment X9: Algorithm I under the quotient-cut
// objective of Section 5.
func Quotient(seed int64) ([]QuotientRow, error) {
	rng := rand.New(rand.NewSource(seed))
	h, err := gen.Profile(gen.ProfileConfig{Modules: 300, Signals: 600, Technology: gen.Hybrid}, rng)
	if err != nil {
		return nil, fmt.Errorf("bench: quotient: %w", err)
	}
	var rows []QuotientRow
	addRes := func(name string, p *partition.Bipartition) {
		rows = append(rows, QuotientRow{
			Method:   name,
			Cut:      partition.CutSize(h, p),
			Quotient: partition.QuotientCut(h, p),
		})
	}
	cutObj, err := core.Bipartition(h, core.Options{Starts: 20, Seed: seed, Threshold: 10, Objective: core.MinCut})
	if err != nil {
		return nil, err
	}
	addRes("Alg I (min cut)", cutObj.Partition)
	qObj, err := core.Bipartition(h, core.Options{
		Starts: 20, Seed: seed, Threshold: 10, BalancedBFS: true,
		Completion: core.CompletionWeighted, Objective: core.MinQuotient,
	})
	if err != nil {
		return nil, err
	}
	addRes("Alg I (min quotient)", qObj.Partition)
	fmRes, err := fm.Bisect(h, fm.Options{Seed: seed})
	if err != nil {
		return nil, err
	}
	addRes("FM", fmRes.Partition)
	return rows, nil
}

// RenderQuotient formats X9 rows.
func RenderQuotient(rows []QuotientRow) *stats.Table {
	t := stats.NewTable("method", "cut", "quotient cut")
	for _, r := range rows {
		t.AddRow(r.Method, stats.I(r.Cut), stats.F(r.Quotient, 4))
	}
	return t
}
