package bench

import (
	"fmt"
	"math/rand"
	"time"

	"fasthgp/internal/anneal"
	"fasthgp/internal/core"
	"fasthgp/internal/flowpart"
	"fasthgp/internal/fm"
	"fasthgp/internal/gen"
	"fasthgp/internal/kl"
	"fasthgp/internal/multilevel"
	"fasthgp/internal/partition"
	"fasthgp/internal/spectral"
	"fasthgp/internal/stats"
)

// MethodRow is one partitioner's line in the grand comparison (X10).
type MethodRow struct {
	Method    string
	Cut       int
	Imbalance int64
	TotalW    int64
	Time      time.Duration
}

// Methods runs every partitioner in the library on one circuit-profile
// instance — the comparison that extends Table 2 with the method
// families the paper only cites (flow [7], spectral/graph-space [11])
// and the multilevel successor scheme.
func Methods(seed int64, modules, signals int) ([]MethodRow, error) {
	if modules <= 0 {
		modules = 300
	}
	if signals <= 0 {
		signals = 650
	}
	rng := rand.New(rand.NewSource(seed))
	h, err := gen.Profile(gen.ProfileConfig{Modules: modules, Signals: signals, Technology: gen.StdCell}, rng)
	if err != nil {
		return nil, fmt.Errorf("bench: methods: %w", err)
	}
	var rows []MethodRow
	add := func(name string, run func() (*partition.Bipartition, error)) error {
		start := time.Now()
		p, err := run()
		if err != nil {
			return fmt.Errorf("bench: methods %s: %w", name, err)
		}
		rows = append(rows, MethodRow{
			Method:    name,
			Cut:       partition.CutSize(h, p),
			Imbalance: partition.Imbalance(h, p),
			TotalW:    h.TotalVertexWeight(),
			Time:      time.Since(start),
		})
		return nil
	}
	if err := add("Alg I (50 starts, k>=10)", func() (*partition.Bipartition, error) {
		r, err := core.Bipartition(h, core.Options{Starts: 50, Seed: seed, Threshold: 10})
		return resPart(r, err)
	}); err != nil {
		return nil, err
	}
	if err := add("Alg I balanced", func() (*partition.Bipartition, error) {
		r, err := core.Bipartition(h, core.Options{
			Starts: 50, Seed: seed, Threshold: 10,
			BalancedBFS: true, Completion: core.CompletionWeighted,
		})
		return resPart(r, err)
	}); err != nil {
		return nil, err
	}
	if err := add("Multilevel", func() (*partition.Bipartition, error) {
		r, err := multilevel.Bisect(h, multilevel.Options{Seed: seed})
		if err != nil {
			return nil, err
		}
		return r.Partition, nil
	}); err != nil {
		return nil, err
	}
	if err := add("Kernighan-Lin", func() (*partition.Bipartition, error) {
		r, err := kl.Bisect(h, kl.Options{Seed: seed})
		if err != nil {
			return nil, err
		}
		return r.Partition, nil
	}); err != nil {
		return nil, err
	}
	if err := add("Fiduccia-Mattheyses", func() (*partition.Bipartition, error) {
		r, err := fm.Bisect(h, fm.Options{Seed: seed})
		if err != nil {
			return nil, err
		}
		return r.Partition, nil
	}); err != nil {
		return nil, err
	}
	if err := add("Simulated annealing", func() (*partition.Bipartition, error) {
		r, err := anneal.Bisect(h, anneal.Options{Seed: seed})
		if err != nil {
			return nil, err
		}
		return r.Partition, nil
	}); err != nil {
		return nil, err
	}
	if err := add("Flow (5 seed pairs)", func() (*partition.Bipartition, error) {
		r, err := flowpart.Bisect(h, flowpart.Options{Seed: seed})
		if err != nil {
			return nil, err
		}
		return r.Partition, nil
	}); err != nil {
		return nil, err
	}
	if err := add("Spectral sweep", func() (*partition.Bipartition, error) {
		r, err := spectral.Bisect(h, spectral.Options{Seed: seed})
		if err != nil {
			return nil, err
		}
		return r.Partition, nil
	}); err != nil {
		return nil, err
	}
	return rows, nil
}

func resPart(r *core.Result, err error) (*partition.Bipartition, error) {
	if err != nil {
		return nil, err
	}
	return r.Partition, nil
}

// RenderMethods formats X10 rows.
func RenderMethods(rows []MethodRow) *stats.Table {
	t := stats.NewTable("method", "cut", "imbalance %", "time")
	for _, r := range rows {
		t.AddRow(r.Method, stats.I(r.Cut),
			stats.F(100*float64(r.Imbalance)/float64(r.TotalW), 1),
			r.Time.Round(time.Microsecond).String())
	}
	return t
}
