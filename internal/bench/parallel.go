package bench

import (
	"fmt"
	"math/rand"
	"time"

	"fasthgp/internal/core"
	"fasthgp/internal/fm"
	"fasthgp/internal/gen"
	"fasthgp/internal/hypergraph"
	"fasthgp/internal/kl"
	"fasthgp/internal/partition"
	"fasthgp/internal/spectral"
	"fasthgp/internal/stats"
)

// ParallelRow is one method's line in the parallel-speedup experiment
// (X11): the same multi-start run executed serially and with Workers
// engine workers, with the wall-clock ratio and a byte-identity check
// of the two results.
type ParallelRow struct {
	Method    string
	N         int
	Starts    int
	Workers   int
	Serial    time.Duration
	Parallel  time.Duration
	Cut       int
	BestStart int
	// Identical reports whether the serial and parallel runs returned
	// the same cut, the same side for every vertex, and the same
	// winning start — the engine's determinism guarantee.
	Identical bool
}

// parallelCase is one timed method: run must execute the full
// multi-start with the given worker count and return the partition and
// the winning start index.
type parallelCase struct {
	method string
	h      *hypergraph.Hypergraph
	starts int
	run    func(parallelism int) (*partition.Bipartition, int, error)
}

// Parallel measures the wall-clock speedup of the deterministic
// multi-start engine: every method runs its multi-start twice — with 1
// worker and with `workers` workers — on circuit-profile netlists, and
// the row records the time ratio plus whether the two runs agreed
// exactly (they must; the engine guarantees parallelism never changes
// the result). Algorithm I runs on a netlist of `modules` vertices
// (default 10000) with `starts` starts (default 50); the slower
// refinement methods run on a tenth-size instance so the experiment
// stays interactive. The attainable speedup is bounded by
// min(workers, runtime.NumCPU()): on a single-core host every row
// reads ~1.0 while the identity column still certifies determinism.
func Parallel(seed int64, modules, starts, workers int) ([]ParallelRow, error) {
	if modules <= 0 {
		modules = 10000
	}
	if starts <= 0 {
		starts = 50
	}
	if workers <= 0 {
		workers = 4
	}
	big, err := gen.Profile(gen.ProfileConfig{Modules: modules, Signals: 2 * modules, Technology: gen.StdCell},
		rand.New(rand.NewSource(seed)))
	if err != nil {
		return nil, fmt.Errorf("bench: parallel: %w", err)
	}
	smallN := modules / 10
	if smallN < 100 {
		smallN = 100
	}
	small, err := gen.Profile(gen.ProfileConfig{Modules: smallN, Signals: 2 * smallN, Technology: gen.StdCell},
		rand.New(rand.NewSource(seed+1)))
	if err != nil {
		return nil, fmt.Errorf("bench: parallel: %w", err)
	}

	cases := []parallelCase{
		{"Alg I", big, starts, func(par int) (*partition.Bipartition, int, error) {
			r, err := core.Bipartition(big, core.Options{Starts: starts, Seed: seed, Parallelism: par})
			if err != nil {
				return nil, 0, err
			}
			return r.Partition, r.Stats.Engine.BestStart, nil
		}},
		{"KL", small, starts, func(par int) (*partition.Bipartition, int, error) {
			r, err := kl.Bisect(small, kl.Options{Starts: starts, Seed: seed, Parallelism: par})
			if err != nil {
				return nil, 0, err
			}
			return r.Partition, r.Engine.BestStart, nil
		}},
		{"FM", small, starts, func(par int) (*partition.Bipartition, int, error) {
			r, err := fm.Bisect(small, fm.Options{Starts: starts, Seed: seed, Parallelism: par})
			if err != nil {
				return nil, 0, err
			}
			return r.Partition, r.Engine.BestStart, nil
		}},
		{"spectral", small, starts, func(par int) (*partition.Bipartition, int, error) {
			r, err := spectral.Bisect(small, spectral.Options{Starts: starts, Seed: seed, Parallelism: par})
			if err != nil {
				return nil, 0, err
			}
			return r.Partition, r.Engine.BestStart, nil
		}},
	}

	var rows []ParallelRow
	for _, c := range cases {
		serialStart := time.Now()
		sp, sBest, err := c.run(1)
		if err != nil {
			return nil, fmt.Errorf("bench: parallel %s serial: %w", c.method, err)
		}
		serial := time.Since(serialStart)

		parStart := time.Now()
		pp, pBest, err := c.run(workers)
		if err != nil {
			return nil, fmt.Errorf("bench: parallel %s workers=%d: %w", c.method, workers, err)
		}
		par := time.Since(parStart)

		rows = append(rows, ParallelRow{
			Method:    c.method,
			N:         c.h.NumVertices(),
			Starts:    c.starts,
			Workers:   workers,
			Serial:    serial,
			Parallel:  par,
			Cut:       partition.CutSize(c.h, pp),
			BestStart: pBest,
			Identical: sBest == pBest && samePartition(c.h, sp, pp),
		})
	}
	return rows, nil
}

// samePartition reports side-for-side equality of two bipartitions.
func samePartition(h *hypergraph.Hypergraph, a, b *partition.Bipartition) bool {
	for v := 0; v < h.NumVertices(); v++ {
		if a.Side(v) != b.Side(v) {
			return false
		}
	}
	return true
}

// RenderParallel formats X11 rows.
func RenderParallel(rows []ParallelRow) *stats.Table {
	t := stats.NewTable("method", "n", "starts", "workers", "serial", "parallel", "speedup", "cut", "identical")
	for _, r := range rows {
		t.AddRow(r.Method, stats.I(r.N), stats.I(r.Starts), stats.I(r.Workers),
			r.Serial.Round(time.Microsecond).String(),
			r.Parallel.Round(time.Microsecond).String(),
			stats.F(stats.Ratio(float64(r.Serial), float64(r.Parallel)), 2),
			stats.I(r.Cut),
			fmt.Sprintf("%v", r.Identical))
	}
	return t
}
