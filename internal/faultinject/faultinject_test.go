package faultinject

import (
	"errors"
	"sync"
	"syscall"
	"testing"
	"time"
)

func TestDisabledHooksAreNoOps(t *testing.T) {
	if Enabled() {
		t.Fatal("plan active at test start")
	}
	Fire(PointEngineStart, 0) // must not panic or sleep
	if ShouldCorrupt(PointTierResult, 0) {
		t.Error("ShouldCorrupt true with no plan")
	}
}

func TestFirePanicsOnMatchingRule(t *testing.T) {
	defer Install(&Plan{Rules: []Rule{{Point: PointEngineStart, Index: 3, Kind: KindPanic}}})()
	Fire(PointEngineStart, 2) // wrong index: no fault
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("matching rule did not panic")
		}
		var pe *PanicError
		if err, ok := r.(error); !ok || !errors.As(err, &pe) || pe.Index != 3 || pe.Point != PointEngineStart {
			t.Fatalf("panic value = %#v, want *PanicError{engine.start, 3}", r)
		}
	}()
	Fire(PointEngineStart, 3)
}

func TestLatencyIsDeterministicAndBounded(t *testing.T) {
	const d = 20 * time.Millisecond
	defer Install(&Plan{Seed: 9, Rules: []Rule{{Point: PointServeRequest, Index: AnyIndex, Kind: KindLatency, Delay: d}}})()
	t0 := time.Now()
	Fire(PointServeRequest, 7)
	el := time.Since(t0)
	if el < d/2 {
		t.Errorf("latency %v below jitter floor %v", el, d/2)
	}
	if el > 10*d {
		t.Errorf("latency %v wildly above nominal %v", el, d)
	}
	// Same (seed, index) → same jitter value.
	if a, b := jitter(9, 7, d), jitter(9, 7, d); a != b {
		t.Errorf("jitter not deterministic: %v vs %v", a, b)
	}
	if jitter(9, 7, d) == jitter(9, 8, d) && jitter(9, 7, d) == jitter(9, 9, d) {
		t.Error("jitter ignores the firing index")
	}
}

func TestShouldCorrupt(t *testing.T) {
	defer Install(&Plan{Rules: []Rule{{Point: PointTierResult, Index: 1, Kind: KindCorrupt}}})()
	if ShouldCorrupt(PointTierResult, 0) {
		t.Error("corrupts wrong index")
	}
	if !ShouldCorrupt(PointTierResult, 1) {
		t.Error("does not corrupt matching index")
	}
	if ShouldCorrupt(PointEngineStart, 1) {
		t.Error("corrupts wrong point")
	}
}

func TestShouldTear(t *testing.T) {
	defer Install(&Plan{Rules: []Rule{{Point: PointCheckpointWrite, Index: 2, Kind: KindTorn}}})()
	if ShouldTear(PointCheckpointWrite, 1) {
		t.Error("tears wrong index")
	}
	if !ShouldTear(PointCheckpointWrite, 2) {
		t.Error("does not tear matching index")
	}
	if ShouldTear(PointCheckpointSync, 2) {
		t.Error("tears wrong point")
	}
	// Tearing is caller-driven: Fire must ignore KindTorn rules.
	Fire(PointCheckpointWrite, 2)
}

func TestShouldDropAndPartial(t *testing.T) {
	defer Install(&Plan{Rules: []Rule{
		{Point: PointFleetForward, Index: 0, Kind: KindDrop},
		{Point: PointFleetForward, Index: 1, Kind: KindPartial},
		{Point: PointFleetHeartbeat, Index: AnyIndex, Kind: KindDrop},
	}})()
	if !ShouldDrop(PointFleetForward, 0) || ShouldDrop(PointFleetForward, 1) {
		t.Error("ShouldDrop index matching wrong")
	}
	if !ShouldPartial(PointFleetForward, 1) || ShouldPartial(PointFleetForward, 0) {
		t.Error("ShouldPartial index matching wrong")
	}
	if !ShouldDrop(PointFleetHeartbeat, 17) {
		t.Error("AnyIndex drop rule did not match")
	}
	if ShouldDrop(PointServeRequest, 0) {
		t.Error("drops wrong point")
	}
	// Network faults are caller-driven: Fire must ignore them.
	Fire(PointFleetForward, 0)
	Fire(PointFleetForward, 1)
}

func TestInjectedErrno(t *testing.T) {
	if _, ok := InjectedErrno(PointCheckpointWrite, 0); ok {
		t.Error("InjectedErrno matched with no plan")
	}
	defer Install(&Plan{Rules: []Rule{
		{Point: PointCheckpointWrite, Index: 1, Kind: KindErrno, Errno: syscall.ENOSPC},
		{Point: PointCheckpointSync, Index: AnyIndex, Kind: KindErrno, Errno: syscall.EIO},
	}})()
	if _, ok := InjectedErrno(PointCheckpointWrite, 0); ok {
		t.Error("errno fired on wrong index")
	}
	if e, ok := InjectedErrno(PointCheckpointWrite, 1); !ok || e != syscall.ENOSPC {
		t.Errorf("InjectedErrno(write, 1) = %v, %v; want ENOSPC, true", e, ok)
	}
	if e, ok := InjectedErrno(PointCheckpointSync, 42); !ok || e != syscall.EIO {
		t.Errorf("InjectedErrno(fsync, 42) = %v, %v; want EIO, true", e, ok)
	}
	if _, ok := InjectedErrno(PointFleetForward, 1); ok {
		t.Error("errno fired on wrong point")
	}
	// Errno faults are caller-driven: Fire must ignore them.
	Fire(PointCheckpointWrite, 1)
}

func TestParseSpec(t *testing.T) {
	plan, err := ParseSpec("panic@engine.start:3, latency@hgpartd.request:0=50ms ,corrupt@portfolio.tier:*,torn@checkpoint.write:1,panic@checkpoint.fsync:0,drop@fleet.forward:2,partial@fleet.forward:*,drop@fleet.heartbeat:4,errno@checkpoint.write:5=ENOSPC,errno@checkpoint.fsync:*=EIO")
	if err != nil {
		t.Fatal(err)
	}
	want := []Rule{
		{Point: PointEngineStart, Index: 3, Kind: KindPanic},
		{Point: PointServeRequest, Index: 0, Kind: KindLatency, Delay: 50 * time.Millisecond},
		{Point: PointTierResult, Index: AnyIndex, Kind: KindCorrupt},
		{Point: PointCheckpointWrite, Index: 1, Kind: KindTorn},
		{Point: PointCheckpointSync, Index: 0, Kind: KindPanic},
		{Point: PointFleetForward, Index: 2, Kind: KindDrop},
		{Point: PointFleetForward, Index: AnyIndex, Kind: KindPartial},
		{Point: PointFleetHeartbeat, Index: 4, Kind: KindDrop},
		{Point: PointCheckpointWrite, Index: 5, Kind: KindErrno, Errno: syscall.ENOSPC},
		{Point: PointCheckpointSync, Index: AnyIndex, Kind: KindErrno, Errno: syscall.EIO},
	}
	if len(plan.Rules) != len(want) {
		t.Fatalf("parsed %d rules, want %d", len(plan.Rules), len(want))
	}
	for i, r := range plan.Rules {
		if r != want[i] {
			t.Errorf("rule %d = %+v, want %+v", i, r, want[i])
		}
	}
	for _, bad := range []string{
		"", "panic", "explode@engine.start:1", "panic@nowhere:1",
		"panic@engine.start:x", "panic@engine.start:-2",
		"latency@engine.start:1", "latency@engine.start:1=zzz",
		"errno@checkpoint.write:1", "errno@checkpoint.write:1=EBADF",
	} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted", bad)
		}
	}
}

// TestConcurrentFireUnderRace drives Install/Fire/ShouldCorrupt from
// many goroutines; the CI resilience job runs this package with -race.
func TestConcurrentFireUnderRace(t *testing.T) {
	defer Install(&Plan{Rules: []Rule{{Point: PointTierResult, Index: 0, Kind: KindCorrupt}}})()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				Fire(PointEngineStart, i)
				ShouldCorrupt(PointTierResult, i%2)
			}
		}()
	}
	wg.Wait()
}
