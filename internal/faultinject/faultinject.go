// Package faultinject is a deterministic fault-injection hook for
// testing the library's recovery paths. A Plan is a list of rules, each
// naming an instrumentation point (an engine start, a portfolio tier, a
// daemon request, a fleet forward or heartbeat) and an index at that
// point, and the fault to raise there: a forced panic, artificial
// latency, result corruption, a torn write, a dropped network
// operation, or a truncated response. The
// instrumented code calls Fire / ShouldCorrupt at its points; with no
// plan installed those calls are a single atomic load and a nil
// compare, so production code pays nothing. There are no build tags —
// the same binary that serves traffic can be booted with a plan (see
// ParseSpec and the hgpartd -faultinject flag) to smoke-test its own
// recovery machinery.
//
// Plans are immutable after Install, and the active plan is swapped
// atomically, so firing is safe under -race from any number of
// goroutines. Latency jitter is derived from the plan's Seed and the
// firing index, never from the wall clock, so a given plan injects the
// same faults on every run.
package faultinject

import (
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"
)

// Point names an instrumentation site.
type Point string

// The library's instrumented points.
const (
	// PointEngineStart fires before each multi-start engine start; the
	// index is the start index.
	PointEngineStart Point = "engine.start"
	// PointTierResult fires on each portfolio tier's candidate result;
	// the index is the tier index.
	PointTierResult Point = "portfolio.tier"
	// PointServeRequest fires at the top of each hgpartd partition
	// request; the index is the daemon's request counter.
	PointServeRequest Point = "hgpartd.request"
	// PointCheckpointWrite fires before each checkpoint-journal record
	// write; the index is the journal's record sequence number. A
	// KindTorn rule here makes the journal write only a prefix of the
	// record — a simulated crash mid-write — so recovery-scan
	// truncation is testable without killing the process.
	PointCheckpointWrite Point = "checkpoint.write"
	// PointCheckpointSync fires before each checkpoint-journal fsync;
	// the index is the record sequence number being made durable.
	PointCheckpointSync Point = "checkpoint.fsync"
	// PointFleetForward fires on each coordinator→worker forward
	// attempt; the index is the coordinator's forward counter. KindDrop
	// here makes the attempt fail as a dropped connection (nothing
	// sent); KindPartial makes the worker's response arrive truncated.
	PointFleetForward Point = "fleet.forward"
	// PointFleetHeartbeat fires on each worker heartbeat send; the index
	// is the worker's heartbeat counter. KindDrop here loses that beat
	// on the wire, so heartbeat-silence ejection is testable without
	// killing the worker.
	PointFleetHeartbeat Point = "fleet.heartbeat"
)

// Kind is the fault a rule raises.
type Kind int

// Fault kinds.
const (
	// KindPanic panics at the point.
	KindPanic Kind = iota
	// KindLatency sleeps at the point (Delay, jittered ±50%).
	KindLatency
	// KindCorrupt asks the caller (via ShouldCorrupt) to invalidate its
	// result at the point.
	KindCorrupt
	// KindTorn asks the caller (via ShouldTear) to tear its write at
	// the point: persist only a prefix of the record and fail, as a
	// power cut mid-write would.
	KindTorn
	// KindDrop asks the caller (via ShouldDrop) to drop its network
	// operation at the point: fail without sending, as a cut connection
	// or a lost packet would.
	KindDrop
	// KindPartial asks the caller (via ShouldPartial) to truncate the
	// response it is reading at the point — the remote died mid-reply.
	KindPartial
	// KindErrno asks the caller (via InjectedErrno) to fail its disk
	// operation at the point with the rule's Errno — a full disk
	// (ENOSPC) or a dying one (EIO) — without performing it.
	KindErrno
)

func (k Kind) String() string {
	switch k {
	case KindPanic:
		return "panic"
	case KindLatency:
		return "latency"
	case KindCorrupt:
		return "corrupt"
	case KindTorn:
		return "torn"
	case KindDrop:
		return "drop"
	case KindPartial:
		return "partial"
	case KindErrno:
		return "errno"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// AnyIndex matches every index at a rule's point.
const AnyIndex = -1

// Rule injects one fault at one point.
type Rule struct {
	// Point is the instrumentation site.
	Point Point
	// Index selects which firing of the point faults (AnyIndex = all).
	Index int
	// Kind is the fault raised.
	Kind Kind
	// Delay is the nominal sleep of a KindLatency rule.
	Delay time.Duration
	// Errno is the error a KindErrno rule injects (ENOSPC or EIO).
	Errno syscall.Errno
}

// Plan is an immutable set of injection rules. Install it globally with
// Install; never mutate an installed plan.
type Plan struct {
	// Seed drives the deterministic latency jitter.
	Seed int64
	// Rules are matched in order; every matching rule fires.
	Rules []Rule
}

// active is the installed plan; nil means injection is disabled and
// every hook is a load-and-compare no-op.
var active atomic.Pointer[Plan]

// Install makes p the active plan and returns a function restoring the
// previous one — defer it in tests. Install(nil) disables injection.
func Install(p *Plan) (restore func()) {
	prev := active.Swap(p)
	return func() { active.Store(prev) }
}

// Enabled reports whether a plan is installed.
func Enabled() bool { return active.Load() != nil }

// PanicError is the value thrown by a KindPanic rule, so recovery
// boundaries (and tests) can recognize injected panics.
type PanicError struct {
	Point Point
	Index int
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("faultinject: forced panic at %s[%d]", e.Point, e.Index)
}

// splitmix64 is the SplitMix64 output mixer, used to derive the
// deterministic latency jitter from (seed, index).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// jitter maps a nominal delay to [delay/2, 3*delay/2) deterministically.
func jitter(seed int64, idx int, d time.Duration) time.Duration {
	if d <= 0 {
		return 0
	}
	h := splitmix64(uint64(seed) ^ splitmix64(uint64(idx)))
	frac := float64(h%1024) / 1024 // [0, 1)
	return d/2 + time.Duration(frac*float64(d))
}

// Fire raises the panic and latency faults matching (point, idx). With
// no plan installed it is a nil check. A matching KindPanic rule panics
// with a *PanicError; matching KindLatency rules sleep first, so a rule
// pair can model a slow start that then dies.
func Fire(point Point, idx int) {
	p := active.Load()
	if p == nil {
		return
	}
	for _, r := range p.Rules {
		if r.Point != point || (r.Index != AnyIndex && r.Index != idx) {
			continue
		}
		switch r.Kind {
		case KindLatency:
			time.Sleep(jitter(p.Seed, idx, r.Delay))
		case KindPanic:
			panic(&PanicError{Point: point, Index: idx})
		}
	}
}

// ShouldCorrupt reports whether a KindCorrupt rule matches (point, idx);
// the caller is responsible for actually invalidating its result.
func ShouldCorrupt(point Point, idx int) bool {
	return matches(KindCorrupt, point, idx)
}

// ShouldTear reports whether a KindTorn rule matches (point, idx); the
// caller is responsible for writing only a prefix of its record and
// reporting the write failed.
func ShouldTear(point Point, idx int) bool {
	return matches(KindTorn, point, idx)
}

// ShouldDrop reports whether a KindDrop rule matches (point, idx); the
// caller is responsible for failing its network operation without
// performing it.
func ShouldDrop(point Point, idx int) bool {
	return matches(KindDrop, point, idx)
}

// ShouldPartial reports whether a KindPartial rule matches (point, idx);
// the caller is responsible for truncating the response it reads and
// treating it as a transport failure.
func ShouldPartial(point Point, idx int) bool {
	return matches(KindPartial, point, idx)
}

// InjectedErrno returns the errno a KindErrno rule injects at
// (point, idx), if any; the caller is responsible for failing its disk
// operation with that error without performing it. With no plan
// installed it is a nil check.
func InjectedErrno(point Point, idx int) (syscall.Errno, bool) {
	p := active.Load()
	if p == nil {
		return 0, false
	}
	for _, r := range p.Rules {
		if r.Kind == KindErrno && r.Point == point && (r.Index == AnyIndex || r.Index == idx) {
			return r.Errno, true
		}
	}
	return 0, false
}

// matches reports whether any rule of the given kind covers (point, idx).
func matches(kind Kind, point Point, idx int) bool {
	p := active.Load()
	if p == nil {
		return false
	}
	for _, r := range p.Rules {
		if r.Kind == kind && r.Point == point && (r.Index == AnyIndex || r.Index == idx) {
			return true
		}
	}
	return false
}

// ParseSpec parses a comma-separated rule list of the form
//
//	kind@point:index[=delay]
//
// e.g. "panic@engine.start:3,latency@hgpartd.request:0=2s,
// corrupt@portfolio.tier:*,errno@checkpoint.write:*=ENOSPC". The index
// "*" means AnyIndex. The =arg suffix is a time.ParseDuration string
// for latency rules (required) and an errno name (ENOSPC or EIO,
// required) for errno rules. It is the wire format of the hgpartd
// -faultinject flag and the FASTHGP_FAULTS environment variable.
func ParseSpec(spec string) (*Plan, error) {
	plan := &Plan{Seed: 1}
	for _, field := range strings.Split(spec, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		kindStr, rest, ok := strings.Cut(field, "@")
		if !ok {
			return nil, fmt.Errorf("faultinject: rule %q: want kind@point:index", field)
		}
		var r Rule
		switch kindStr {
		case "panic":
			r.Kind = KindPanic
		case "latency":
			r.Kind = KindLatency
		case "corrupt":
			r.Kind = KindCorrupt
		case "torn":
			r.Kind = KindTorn
		case "drop":
			r.Kind = KindDrop
		case "partial":
			r.Kind = KindPartial
		case "errno":
			r.Kind = KindErrno
		default:
			return nil, fmt.Errorf("faultinject: rule %q: unknown kind %q", field, kindStr)
		}
		switch r.Kind {
		case KindLatency:
			var delayStr string
			rest, delayStr, ok = strings.Cut(rest, "=")
			if !ok {
				return nil, fmt.Errorf("faultinject: rule %q: latency needs =<delay>", field)
			}
			d, err := time.ParseDuration(delayStr)
			if err != nil || d < 0 {
				return nil, fmt.Errorf("faultinject: rule %q: bad delay %q", field, delayStr)
			}
			r.Delay = d
		case KindErrno:
			var errnoStr string
			rest, errnoStr, ok = strings.Cut(rest, "=")
			if !ok {
				return nil, fmt.Errorf("faultinject: rule %q: errno needs =ENOSPC or =EIO", field)
			}
			switch errnoStr {
			case "ENOSPC":
				r.Errno = syscall.ENOSPC
			case "EIO":
				r.Errno = syscall.EIO
			default:
				return nil, fmt.Errorf("faultinject: rule %q: unknown errno %q (want ENOSPC or EIO)", field, errnoStr)
			}
		}
		pointStr, idxStr, ok := strings.Cut(rest, ":")
		if !ok {
			return nil, fmt.Errorf("faultinject: rule %q: want kind@point:index", field)
		}
		switch Point(pointStr) {
		case PointEngineStart, PointTierResult, PointServeRequest,
			PointCheckpointWrite, PointCheckpointSync,
			PointFleetForward, PointFleetHeartbeat:
			r.Point = Point(pointStr)
		default:
			return nil, fmt.Errorf("faultinject: rule %q: unknown point %q", field, pointStr)
		}
		if idxStr == "*" {
			r.Index = AnyIndex
		} else {
			i, err := strconv.Atoi(idxStr)
			if err != nil || i < 0 {
				return nil, fmt.Errorf("faultinject: rule %q: bad index %q", field, idxStr)
			}
			r.Index = i
		}
		plan.Rules = append(plan.Rules, r)
	}
	if len(plan.Rules) == 0 {
		return nil, fmt.Errorf("faultinject: empty spec %q", spec)
	}
	return plan, nil
}
