// Package coarsen implements hypergraph coarsening by heavy-edge
// matching — the contraction half of the multilevel V-cycle. One
// Contract call matches each vertex with the unmatched neighbour it
// shares the most net connectivity with (rating Σ w(e)/(|e|−1) over
// shared nets, via matching.HeavyEdge), then contracts matched pairs:
// vertex weights add, nets map their pins through the contraction,
// nets reduced to a single pin disappear, and duplicate nets merge
// with their weights added — so the weighted cut of any coarse
// bipartition equals the weighted cut of its projection to the fine
// hypergraph. BuildHierarchy stacks Contract calls into the full
// contraction hierarchy the V-cycle uncoarsens through.
package coarsen

import (
	"math/rand"
	"sort"

	"fasthgp/internal/hypergraph"
	"fasthgp/internal/matching"
	"fasthgp/internal/partition"
)

// Result is one coarsening level.
type Result struct {
	// Coarse is the contracted hypergraph.
	Coarse *hypergraph.Hypergraph
	// Map sends each fine vertex to its coarse vertex.
	Map []int
	// Fixed is the coarse-level fixed-side assignment (nil when the
	// step ran without one).
	Fixed []int8
}

// LevelStats summarizes one hierarchy level for tuning and reporting.
type LevelStats struct {
	Vertices int
	Nets     int
	Pins     int
}

// Stats returns the coarse level's size summary.
func (r *Result) Stats() LevelStats {
	return LevelStats{
		Vertices: r.Coarse.NumVertices(),
		Nets:     r.Coarse.NumEdges(),
		Pins:     r.Coarse.NumPins(),
	}
}

// Options configures Contract and BuildHierarchy. The zero value
// reproduces the historical Step/Hierarchy behaviour exactly.
type Options struct {
	// MinVertices stops BuildHierarchy once a level has at most this
	// many vertices (minimum 2).
	MinVertices int
	// MaxLevels bounds the hierarchy depth (0 = 30).
	MaxLevels int
	// Fixed pins fine vertices to sides (partition.FreeVertex = free).
	// Vertices pinned to different sides are never contracted together,
	// and every Result carries the propagated coarse assignment.
	Fixed []int8
	// MaxClusterWeight refuses matches whose combined vertex weight
	// exceeds it (0 = unbounded). Coarsening can only ever *merge*
	// weights, so capping the merge is what keeps an ε-balance
	// constraint satisfiable at every level: a single cluster heavier
	// than the side bound could never be placed.
	MaxClusterWeight int64
	// MaxRatedEdgeSize skips nets larger than this during rating
	// (0 = rate everything); see matching.HeavyEdgeOptions.
	MaxRatedEdgeSize int
}

// Step performs one level of matching and contraction. The returned
// coarse hypergraph has at least half as many vertices when any match
// exists; when nothing can be matched (e.g. an edgeless hypergraph)
// the contraction is the identity.
func Step(h *hypergraph.Hypergraph, rng *rand.Rand) *Result {
	return Contract(h, rng, Options{})
}

// StepFixed is Step under a fixed-side assignment (−1 = free): two
// vertices pinned to different sides are never matched, so every coarse
// vertex has a well-defined fixed side, returned in Result.Fixed.
// A nil fixed slice reproduces Step exactly.
func StepFixed(h *hypergraph.Hypergraph, rng *rand.Rand, fixed []int8) *Result {
	return Contract(h, rng, Options{Fixed: fixed})
}

// Contract performs one level of heavy-edge matching and contraction
// under opts (MinVertices/MaxLevels are ignored here; they belong to
// BuildHierarchy).
func Contract(h *hypergraph.Hypergraph, rng *rand.Rand, opts Options) *Result {
	n := h.NumVertices()
	mate := matching.HeavyEdge(h, rng, matching.HeavyEdgeOptions{
		Fixed:            opts.Fixed,
		MaxPairWeight:    opts.MaxClusterWeight,
		MaxRatedEdgeSize: opts.MaxRatedEdgeSize,
	})

	// Assign coarse ids: matched pairs share one id.
	res := &Result{Map: make([]int, n)}
	next := 0
	for v := 0; v < n; v++ {
		if mate[v] != matching.Unmatched && mate[v] < v {
			res.Map[v] = res.Map[mate[v]]
			continue
		}
		res.Map[v] = next
		next++
	}

	b := hypergraph.NewBuilder(next)
	weights := make([]int64, next)
	for v := 0; v < n; v++ {
		weights[res.Map[v]] += h.VertexWeight(v)
	}
	for cv, w := range weights {
		b.SetVertexWeight(cv, w)
	}
	// Contract nets, dropping singletons and merging duplicates with
	// summed weights. Duplicate detection hashes the sorted coarse pin
	// set into buckets of candidate edge ids and confirms with an exact
	// pin comparison — no per-net string signature allocation, which at
	// 10⁶ pins was the dominant coarsening cost.
	buckets := make(map[uint64][]int, h.NumEdges())
	var coarsePins [][]int  // builder edge id → its sorted pin set
	var edgeWeights []int64 // builder edge id → merged weight
	scratch := make([]int, 0, 16)
	for e := 0; e < h.NumEdges(); e++ {
		scratch = scratch[:0]
		for _, v := range h.EdgePins(e) {
			scratch = append(scratch, res.Map[v])
		}
		sort.Ints(scratch)
		out := scratch[:0]
		prev := -1
		for _, p := range scratch {
			if p != prev {
				out = append(out, p)
				prev = p
			}
		}
		if len(out) < 2 {
			continue
		}
		hash := pinHash(out)
		merged := false
		for _, id := range buckets[hash] {
			if pinsEqual(coarsePins[id], out) {
				edgeWeights[id] += h.EdgeWeight(e)
				merged = true
				break
			}
		}
		if merged {
			continue
		}
		id := b.AddEdge(out...)
		buckets[hash] = append(buckets[hash], id)
		coarsePins = append(coarsePins, append([]int(nil), out...))
		edgeWeights = append(edgeWeights, h.EdgeWeight(e))
	}
	for id, w := range edgeWeights {
		b.SetEdgeWeight(id, w)
	}
	coarse, err := b.Build()
	if err != nil {
		panic("coarsen: contraction produced invalid hypergraph: " + err.Error())
	}
	res.Coarse = coarse
	if opts.Fixed != nil {
		// A coarse vertex inherits the pinned side of its fine members
		// (at most one distinct side by the matching rule above).
		cf := make([]int8, next)
		for i := range cf {
			cf[i] = partition.FreeVertex
		}
		for v := 0; v < n; v++ {
			if v < len(opts.Fixed) && opts.Fixed[v] >= 0 {
				cf[res.Map[v]] = opts.Fixed[v]
			}
		}
		res.Fixed = cf
	}
	return res
}

// pinHash is FNV-1a over the pin ids; collisions are resolved by
// pinsEqual, so quality only affects bucket fan-out.
func pinHash(pins []int) uint64 {
	h := uint64(14695981039346656037)
	for _, p := range pins {
		x := uint64(p)
		for i := 0; i < 4; i++ {
			h ^= x & 0xff
			h *= 1099511628211
			x >>= 8
		}
	}
	return h
}

func pinsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Hierarchy coarsens h repeatedly until at most minVertices remain, the
// contraction stops making progress (shrink factor > 0.95), or
// maxLevels levels were produced. Levels are ordered fine→coarse.
func Hierarchy(h *hypergraph.Hypergraph, rng *rand.Rand, minVertices, maxLevels int) []*Result {
	return BuildHierarchy(h, rng, Options{MinVertices: minVertices, MaxLevels: maxLevels})
}

// HierarchyFixed is Hierarchy with a fine-level fixed-side assignment
// propagated through every contraction: each level's Result.Fixed pins
// the coarse vertices. A nil fixed slice reproduces Hierarchy exactly.
func HierarchyFixed(h *hypergraph.Hypergraph, rng *rand.Rand, minVertices, maxLevels int, fixed []int8) []*Result {
	return BuildHierarchy(h, rng, Options{MinVertices: minVertices, MaxLevels: maxLevels, Fixed: fixed})
}

// BuildHierarchy coarsens h under opts until at most opts.MinVertices
// vertices remain, the contraction stops making progress (shrink
// factor > 0.95), or opts.MaxLevels levels were produced. Levels are
// ordered fine→coarse; each level's Fixed feeds the next contraction.
func BuildHierarchy(h *hypergraph.Hypergraph, rng *rand.Rand, opts Options) []*Result {
	if opts.MinVertices < 2 {
		opts.MinVertices = 2
	}
	if opts.MaxLevels <= 0 {
		opts.MaxLevels = 30
	}
	var levels []*Result
	cur := h
	fixed := opts.Fixed
	for len(levels) < opts.MaxLevels && cur.NumVertices() > opts.MinVertices {
		stepOpts := opts
		stepOpts.Fixed = fixed
		step := Contract(cur, rng, stepOpts)
		if float64(step.Coarse.NumVertices()) > 0.95*float64(cur.NumVertices()) {
			break
		}
		levels = append(levels, step)
		cur = step.Coarse
		fixed = step.Fixed
	}
	return levels
}

// Project lifts a partition of the coarse hypergraph to the fine one:
// every fine vertex takes its coarse vertex's side.
func Project(fineN int, m []int, coarse *partition.Bipartition) *partition.Bipartition {
	p := partition.New(fineN)
	for v := 0; v < fineN; v++ {
		p.Assign(v, coarse.Side(m[v]))
	}
	return p
}
