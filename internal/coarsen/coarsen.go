// Package coarsen implements hypergraph coarsening by heavy-
// connectivity matching — the contraction half of the multilevel
// scheme that succeeded flat partitioners like the paper's in the
// 1990s (and which this library offers as an extension and ablation
// point: multilevel + FM refinement versus flat Algorithm I).
//
// One Step matches each vertex with the unmatched neighbour it shares
// the most net connectivity with (score Σ w(e)/(|e|−1) over shared
// nets), then contracts matched pairs: vertex weights add, nets map
// their pins through the contraction, nets reduced to a single pin
// disappear, and duplicate nets merge with their weights added — so
// the weighted cut of any coarse bipartition equals the weighted cut
// of its projection to the fine hypergraph.
package coarsen

import (
	"math/rand"
	"sort"

	"fasthgp/internal/hypergraph"
	"fasthgp/internal/partition"
)

// Result is one coarsening level.
type Result struct {
	// Coarse is the contracted hypergraph.
	Coarse *hypergraph.Hypergraph
	// Map sends each fine vertex to its coarse vertex.
	Map []int
	// Fixed is the coarse-level fixed-side assignment (nil when the
	// step ran without one).
	Fixed []int8
}

// Step performs one level of matching and contraction. The returned
// coarse hypergraph has at least half as many vertices when any match
// exists; when nothing can be matched (e.g. an edgeless hypergraph)
// the contraction is the identity.
func Step(h *hypergraph.Hypergraph, rng *rand.Rand) *Result {
	return StepFixed(h, rng, nil)
}

// StepFixed is Step under a fixed-side assignment (−1 = free): two
// vertices pinned to different sides are never matched, so every coarse
// vertex has a well-defined fixed side, returned in Result.Fixed.
// A nil fixed slice reproduces Step exactly.
func StepFixed(h *hypergraph.Hypergraph, rng *rand.Rand, fixed []int8) *Result {
	n := h.NumVertices()
	side := func(v int) int8 {
		if v < len(fixed) {
			return fixed[v]
		}
		return -1
	}
	mate := make([]int, n)
	for i := range mate {
		mate[i] = -1
	}
	order := rng.Perm(n)
	score := make(map[int]float64, 8)
	for _, v := range order {
		if mate[v] != -1 {
			continue
		}
		clear(score)
		for _, e := range h.VertexEdges(v) {
			size := h.EdgeSize(e)
			if size < 2 {
				continue
			}
			w := float64(h.EdgeWeight(e)) / float64(size-1)
			for _, u := range h.EdgePins(e) {
				if u != v && mate[u] == -1 {
					if sv, su := side(v), side(u); sv >= 0 && su >= 0 && sv != su {
						continue // opposite pins must stay separable
					}
					score[u] += w
				}
			}
		}
		best, bestScore := -1, 0.0
		for u, s := range score {
			if s > bestScore || (s == bestScore && best != -1 && u < best) {
				best, bestScore = u, s
			}
		}
		if best != -1 {
			mate[v] = best
			mate[best] = v
		}
	}

	// Assign coarse ids: matched pairs share one id.
	res := &Result{Map: make([]int, n)}
	next := 0
	for v := 0; v < n; v++ {
		if mate[v] != -1 && mate[v] < v {
			res.Map[v] = res.Map[mate[v]]
			continue
		}
		res.Map[v] = next
		next++
	}

	b := hypergraph.NewBuilder(next)
	weights := make([]int64, next)
	for v := 0; v < n; v++ {
		weights[res.Map[v]] += h.VertexWeight(v)
	}
	for cv, w := range weights {
		b.SetVertexWeight(cv, w)
	}
	// Contract nets, dropping singletons and merging duplicates with
	// summed weights.
	type key string
	merged := map[key]int{} // pin signature → builder edge id
	mergedWeight := map[int]int64{}
	scratch := make([]int, 0, 16)
	for e := 0; e < h.NumEdges(); e++ {
		scratch = scratch[:0]
		for _, v := range h.EdgePins(e) {
			scratch = append(scratch, res.Map[v])
		}
		sort.Ints(scratch)
		out := scratch[:0]
		prev := -1
		for _, p := range scratch {
			if p != prev {
				out = append(out, p)
				prev = p
			}
		}
		if len(out) < 2 {
			continue
		}
		sig := make([]byte, 0, 4*len(out))
		for _, p := range out {
			sig = append(sig, byte(p), byte(p>>8), byte(p>>16), byte(p>>24))
		}
		k := key(sig)
		if id, ok := merged[k]; ok {
			mergedWeight[id] += h.EdgeWeight(e)
			continue
		}
		id := b.AddEdge(out...)
		merged[k] = id
		mergedWeight[id] = h.EdgeWeight(e)
	}
	for id, w := range mergedWeight {
		b.SetEdgeWeight(id, w)
	}
	coarse, err := b.Build()
	if err != nil {
		panic("coarsen: contraction produced invalid hypergraph: " + err.Error())
	}
	res.Coarse = coarse
	if fixed != nil {
		// A coarse vertex inherits the pinned side of its fine members
		// (at most one distinct side by the matching rule above).
		cf := make([]int8, next)
		for i := range cf {
			cf[i] = -1
		}
		for v := 0; v < n; v++ {
			if s := side(v); s >= 0 {
				cf[res.Map[v]] = s
			}
		}
		res.Fixed = cf
	}
	return res
}

// Hierarchy coarsens h repeatedly until at most minVertices remain, the
// contraction stops making progress (shrink factor > 0.95), or
// maxLevels levels were produced. Levels are ordered fine→coarse.
func Hierarchy(h *hypergraph.Hypergraph, rng *rand.Rand, minVertices, maxLevels int) []*Result {
	return HierarchyFixed(h, rng, minVertices, maxLevels, nil)
}

// HierarchyFixed is Hierarchy with a fine-level fixed-side assignment
// propagated through every contraction: each level's Result.Fixed pins
// the coarse vertices. A nil fixed slice reproduces Hierarchy exactly.
func HierarchyFixed(h *hypergraph.Hypergraph, rng *rand.Rand, minVertices, maxLevels int, fixed []int8) []*Result {
	if minVertices < 2 {
		minVertices = 2
	}
	if maxLevels <= 0 {
		maxLevels = 30
	}
	var levels []*Result
	cur := h
	for len(levels) < maxLevels && cur.NumVertices() > minVertices {
		step := StepFixed(cur, rng, fixed)
		if float64(step.Coarse.NumVertices()) > 0.95*float64(cur.NumVertices()) {
			break
		}
		levels = append(levels, step)
		cur = step.Coarse
		fixed = step.Fixed
	}
	return levels
}

// Project lifts a partition of the coarse hypergraph to the fine one:
// every fine vertex takes its coarse vertex's side.
func Project(fineN int, m []int, coarse *partition.Bipartition) *partition.Bipartition {
	p := partition.New(fineN)
	for v := 0; v < fineN; v++ {
		p.Assign(v, coarse.Side(m[v]))
	}
	return p
}
