package coarsen

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fasthgp/internal/hypergraph"
	"fasthgp/internal/kl"
	"fasthgp/internal/partition"
)

func randomHG(rng *rand.Rand, n, m int) *hypergraph.Hypergraph {
	b := hypergraph.NewBuilder(n)
	for i := 0; i < m; i++ {
		size := 2 + rng.Intn(3)
		pins := make([]int, size)
		for j := range pins {
			pins[j] = rng.Intn(n)
		}
		b.AddEdge(pins...)
	}
	for v := 0; v < n; v++ {
		b.SetVertexWeight(v, int64(1+rng.Intn(4)))
	}
	return b.MustBuild()
}

func TestStepShrinks(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	h := randomHG(rng, 100, 220)
	res := Step(h, rng)
	if res.Coarse.NumVertices() >= h.NumVertices() {
		t.Errorf("no shrink: %d → %d", h.NumVertices(), res.Coarse.NumVertices())
	}
	if res.Coarse.NumVertices() < h.NumVertices()/2 {
		t.Errorf("matching contracted more than pairs: %d → %d", h.NumVertices(), res.Coarse.NumVertices())
	}
}

func TestStepWeightConservation(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	h := randomHG(rng, 60, 140)
	res := Step(h, rng)
	if res.Coarse.TotalVertexWeight() != h.TotalVertexWeight() {
		t.Errorf("vertex weight changed: %d → %d", h.TotalVertexWeight(), res.Coarse.TotalVertexWeight())
	}
	var fineEdgeW, coarseEdgeW int64
	for e := 0; e < h.NumEdges(); e++ {
		// Nets whose pins all merged into one coarse vertex disappear;
		// count only surviving weight.
		first := res.Map[h.EdgePins(e)[0]]
		survives := false
		for _, v := range h.EdgePins(e) {
			if res.Map[v] != first {
				survives = true
				break
			}
		}
		if survives {
			fineEdgeW += h.EdgeWeight(e)
		}
	}
	for e := 0; e < res.Coarse.NumEdges(); e++ {
		coarseEdgeW += res.Coarse.EdgeWeight(e)
	}
	if fineEdgeW != coarseEdgeW {
		t.Errorf("surviving edge weight changed: %d → %d", fineEdgeW, coarseEdgeW)
	}
}

func TestStepMapValid(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	h := randomHG(rng, 50, 100)
	res := Step(h, rng)
	seen := make([]int, res.Coarse.NumVertices())
	for v := 0; v < h.NumVertices(); v++ {
		cv := res.Map[v]
		if cv < 0 || cv >= res.Coarse.NumVertices() {
			t.Fatalf("Map[%d] = %d out of range", v, cv)
		}
		seen[cv]++
	}
	for cv, c := range seen {
		if c < 1 || c > 2 {
			t.Errorf("coarse vertex %d has %d fine vertices (matching allows 1-2)", cv, c)
		}
	}
}

func TestEdgelessIdentity(t *testing.T) {
	h := hypergraph.NewBuilder(5).MustBuild()
	rng := rand.New(rand.NewSource(4))
	res := Step(h, rng)
	if res.Coarse.NumVertices() != 5 {
		t.Errorf("edgeless hypergraph contracted: %d vertices", res.Coarse.NumVertices())
	}
	if len(Hierarchy(h, rng, 2, 0)) != 0 {
		t.Error("Hierarchy made progress on edgeless hypergraph")
	}
}

func TestHierarchyTerminates(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	h := randomHG(rng, 300, 700)
	levels := Hierarchy(h, rng, 30, 0)
	if len(levels) == 0 {
		t.Fatal("no levels")
	}
	last := levels[len(levels)-1].Coarse
	if last.NumVertices() > 60 {
		t.Errorf("coarsest still has %d vertices", last.NumVertices())
	}
	// Strictly decreasing chain.
	prev := h.NumVertices()
	for i, l := range levels {
		if l.Coarse.NumVertices() >= prev {
			t.Errorf("level %d did not shrink: %d → %d", i, prev, l.Coarse.NumVertices())
		}
		prev = l.Coarse.NumVertices()
	}
}

// TestPropertyWeightedCutPreserved: the weighted cut of a coarse
// partition equals the weighted cut of its projection.
func TestPropertyWeightedCutPreserved(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 6 + rng.Intn(40)
		h := randomHG(rng, n, 2*n)
		res := Step(h, rng)
		if res.Coarse.NumVertices() < 2 {
			return true
		}
		cp := kl.RandomBisection(res.Coarse.NumVertices(), rng)
		fp := Project(n, res.Map, cp)
		return partition.WeightedCutSize(res.Coarse, cp) == partition.WeightedCutSize(h, fp)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestProjectSides(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	h := randomHG(rng, 20, 40)
	res := Step(h, rng)
	cp := kl.RandomBisection(res.Coarse.NumVertices(), rng)
	fp := Project(20, res.Map, cp)
	for v := 0; v < 20; v++ {
		if fp.Side(v) != cp.Side(res.Map[v]) {
			t.Fatalf("vertex %d side mismatch", v)
		}
	}
}
