package coarsen

import (
	"math/rand"
	"testing"

	"fasthgp/internal/hypergraph"
	"fasthgp/internal/partition"
)

// TestClusterWeightCap: with MaxClusterWeight set, no contraction may
// create a coarse vertex heavier than the cap (pre-existing heavy
// vertices pass through untouched but are never grown).
func TestClusterWeightCap(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	h := randomHG(rng, 120, 280) // weights 1..4
	const maxW = 5
	levels := BuildHierarchy(h, rng, Options{MinVertices: 8, MaxClusterWeight: maxW})
	if len(levels) == 0 {
		t.Fatal("no levels")
	}
	for li, l := range levels {
		for v := 0; v < l.Coarse.NumVertices(); v++ {
			if w := l.Coarse.VertexWeight(v); w > maxW {
				t.Fatalf("level %d vertex %d weighs %d > cap %d", li, v, w, maxW)
			}
		}
	}
}

// TestCapKeepsConstraintSatisfiable: with the cap set to the ε side
// bound, every level of the hierarchy still admits a partition meeting
// the constraint (no cluster outweighs a side).
func TestCapKeepsConstraintSatisfiable(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	h := randomHG(rng, 100, 240)
	c := partition.Constraint{Epsilon: 0.1}
	bound := c.MaxSideWeight(h.TotalVertexWeight(), 2)
	levels := BuildHierarchy(h, rng, Options{MinVertices: 4, MaxClusterWeight: bound})
	for li, l := range levels {
		for v := 0; v < l.Coarse.NumVertices(); v++ {
			if w := l.Coarse.VertexWeight(v); w > bound {
				t.Fatalf("level %d vertex %d weighs %d > side bound %d — constraint unsatisfiable", li, v, w, bound)
			}
		}
	}
}

// TestOppositeFixedNeverMerged: hierarchy-level regression for the
// constraint bugfix — a Left-pinned and a Right-pinned fine vertex
// must land in distinct coarse vertices at every level.
func TestOppositeFixedNeverMerged(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	n := 80
	b := hypergraph.NewBuilder(n)
	// Dense overlapping nets so matching pressure is high.
	for i := 0; i < 200; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		for u == v {
			v = rng.Intn(n)
		}
		b.AddEdge(u, v)
	}
	h := b.MustBuild()
	fixed := make([]int8, n)
	for v := range fixed {
		switch v % 4 {
		case 0:
			fixed[v] = 0
		case 1:
			fixed[v] = 1
		default:
			fixed[v] = partition.FreeVertex
		}
	}
	levels := BuildHierarchy(h, rng, Options{MinVertices: 4, Fixed: fixed})
	fineFixed := fixed
	for li, l := range levels {
		if l.Fixed == nil {
			t.Fatalf("level %d lost the fixed assignment", li)
		}
		for v, s := range fineFixed {
			if s >= 0 && l.Fixed[l.Map[v]] != s {
				t.Fatalf("level %d: fine vertex %d pinned to %d but coarse vertex %d pinned to %d",
					li, v, s, l.Map[v], l.Fixed[l.Map[v]])
			}
		}
		// No coarse vertex may host fine vertices from both sides.
		sideOf := make([]int8, l.Coarse.NumVertices())
		for i := range sideOf {
			sideOf[i] = partition.FreeVertex
		}
		for v, s := range fineFixed {
			if s < 0 {
				continue
			}
			cv := l.Map[v]
			if sideOf[cv] >= 0 && sideOf[cv] != s {
				t.Fatalf("level %d: coarse vertex %d merged opposite fixed sides", li, cv)
			}
			sideOf[cv] = s
		}
		fineFixed = l.Fixed
	}
}
