package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 {
		t.Errorf("empty summary = %+v", s)
	}
}

func TestSummarizeKnown(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 {
		t.Errorf("N = %d", s.N)
	}
	if s.Mean != 5 {
		t.Errorf("Mean = %g, want 5", s.Mean)
	}
	// Sample standard deviation of this classic set is ~2.138.
	if math.Abs(s.Std-2.1380899) > 1e-6 {
		t.Errorf("Std = %g", s.Std)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Errorf("Min/Max = %g/%g", s.Min, s.Max)
	}
	if s.Median != 4.5 {
		t.Errorf("Median = %g, want 4.5", s.Median)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{3})
	if s.Std != 0 || s.Median != 3 || s.Min != 3 || s.Max != 3 {
		t.Errorf("single summary = %+v", s)
	}
}

func TestMedianOdd(t *testing.T) {
	if m := Summarize([]float64{9, 1, 5}).Median; m != 5 {
		t.Errorf("Median = %g, want 5", m)
	}
}

func TestRatio(t *testing.T) {
	if Ratio(6, 3) != 2 {
		t.Error("Ratio(6,3) != 2")
	}
	if !math.IsNaN(Ratio(1, 0)) {
		t.Error("Ratio(x,0) should be NaN")
	}
}

func TestMean(t *testing.T) {
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Error("Mean broken")
	}
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
}

func TestPropertyMinMeanMaxOrder(t *testing.T) {
	f := func(xs []float64) bool {
		clean := xs[:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e12 {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		s := Summarize(clean)
		return s.Min <= s.Mean+1e-6 && s.Mean <= s.Max+1e-6 &&
			s.Min <= s.Median && s.Median <= s.Max && s.Std >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Example", "Alg I", "SA")
	tb.AddRow("Bd1", "1.0", "1.15")
	tb.AddRow("IC2-long-name", "1.0", "0.98")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d, want 4:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "Example") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "---") {
		t.Errorf("rule = %q", lines[1])
	}
	// Columns align: "Alg I" starts at the same offset in all rows.
	off := strings.Index(lines[0], "Alg I")
	if strings.Index(lines[2], "1.0") != off || strings.Index(lines[3], "1.0") != off {
		t.Errorf("columns misaligned:\n%s", out)
	}
	if tb.NumRows() != 2 {
		t.Errorf("NumRows = %d", tb.NumRows())
	}
}

func TestTableRaggedRows(t *testing.T) {
	tb := NewTable("a", "b")
	tb.AddRow("x")
	tb.AddRow("y", "z", "extra")
	out := tb.String()
	if !strings.Contains(out, "extra") {
		t.Errorf("extra cell dropped:\n%s", out)
	}
}

func TestFormatters(t *testing.T) {
	if F(1.2345, 2) != "1.23" {
		t.Errorf("F = %q", F(1.2345, 2))
	}
	if I(42) != "42" {
		t.Errorf("I = %q", I(42))
	}
}
