// Package stats provides the small numeric and table-rendering helpers
// shared by the experiment harness: summary statistics over float64
// samples and fixed-width text tables matching the paper's layout.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary holds the usual descriptive statistics of a sample.
type Summary struct {
	N                int
	Mean, Std        float64
	Min, Median, Max float64
}

// Summarize computes a Summary; the zero Summary is returned for an
// empty sample.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	for _, x := range xs {
		s.Mean += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean /= float64(len(xs))
	for _, x := range xs {
		d := x - s.Mean
		s.Std += d * d
	}
	if len(xs) > 1 {
		s.Std = math.Sqrt(s.Std / float64(len(xs)-1))
	} else {
		s.Std = 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		s.Median = sorted[mid]
	} else {
		s.Median = (sorted[mid-1] + sorted[mid]) / 2
	}
	return s
}

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 { return Summarize(xs).Mean }

// Ratio returns a/b, or NaN when b is zero.
func Ratio(a, b float64) float64 {
	if b == 0 {
		return math.NaN()
	}
	return a / b
}

// Table renders rows of cells with aligned columns, in the style of the
// paper's result tables.
type Table struct {
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(headers ...string) *Table {
	return &Table{headers: headers}
}

// AddRow appends a row; missing cells render empty, extra cells are
// kept and widen the table.
func (t *Table) AddRow(cells ...string) {
	t.rows = append(t.rows, cells)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// String renders the table with two-space column gutters and a rule
// under the header.
func (t *Table) String() string {
	cols := len(t.headers)
	for _, r := range t.rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	width := make([]int, cols)
	measure := func(cells []string) {
		for i, c := range cells {
			if len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	measure(t.headers)
	for _, r := range t.rows {
		measure(r)
	}
	var sb strings.Builder
	writeRow := func(cells []string) {
		var row strings.Builder
		for i := 0; i < cols; i++ {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			if i > 0 {
				row.WriteString("  ")
			}
			fmt.Fprintf(&row, "%-*s", width[i], c)
		}
		sb.WriteString(strings.TrimRight(row.String(), " "))
		sb.WriteByte('\n')
	}
	writeRow(t.headers)
	total := 0
	for i, w := range width {
		if i > 0 {
			total += 2
		}
		total += w
	}
	sb.WriteString(strings.Repeat("-", total))
	sb.WriteByte('\n')
	for _, r := range t.rows {
		writeRow(r)
	}
	return sb.String()
}

// F formats a float with the given number of decimals; a convenience
// for table cells.
func F(x float64, decimals int) string {
	return fmt.Sprintf("%.*f", decimals, x)
}

// I formats an int for table cells.
func I(x int) string { return fmt.Sprintf("%d", x) }
