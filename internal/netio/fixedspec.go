package netio

import (
	"fmt"
	"strconv"
	"strings"

	"fasthgp/internal/partition"
)

// ParseFixedSpec parses the compact fixed-vertex query syntax the HTTP
// tier uses: comma-separated vertex:side records (side L, R, 0, or 1),
// e.g. "0:L,5:R". The result covers all n vertices, with unnamed
// vertices free. Both hgpartd (to build the constraint it solves
// under) and hgpartcoord (to reconstruct that constraint for answer
// verification) parse the same spec, so the two must never diverge —
// hence one parser here rather than one per daemon.
func ParseFixedSpec(spec string, n int) ([]int8, error) {
	fixed := make([]int8, n)
	for i := range fixed {
		fixed[i] = partition.FreeVertex
	}
	for _, rec := range strings.Split(spec, ",") {
		rec = strings.TrimSpace(rec)
		if rec == "" {
			continue
		}
		idx, sideTok, ok := strings.Cut(rec, ":")
		if !ok {
			return nil, fmt.Errorf("bad fixed record %q (want vertex:side)", rec)
		}
		v, err := strconv.Atoi(idx)
		if err != nil || v < 0 || v >= n {
			return nil, fmt.Errorf("bad fixed vertex %q (netlist has %d modules)", idx, n)
		}
		var side int8
		switch sideTok {
		case "L", "l", "0":
			side = 0
		case "R", "r", "1":
			side = 1
		default:
			return nil, fmt.Errorf("bad fixed side %q (want L, R, 0, or 1)", sideTok)
		}
		if fixed[v] >= 0 && fixed[v] != side {
			return nil, fmt.Errorf("vertex %d fixed to both sides", v)
		}
		fixed[v] = side
	}
	return fixed, nil
}
