package netio

// Zero-copy hMETIS parsing. ReadHMetis is correct but tokenizes every
// line through strings.TrimSpace + strings.Fields — on a gigabyte .hgr
// that materializes a []string (and one string header per token) for
// every edge line. The streaming parser below walks byte views instead:
// ParseHMetisBytes parses an in-memory image (the mmap fast path in
// ReadHMetisFile) without copying a single token, and ParseHMetisStream
// parses any io.Reader through one reusable chunk buffer. Both must
// accept and reject exactly the inputs ReadHMetis does — same unicode
// whitespace set, same strconv integer semantics, same header caps and
// line-length limit — and produce a structurally identical hypergraph.
// The differential suite and FuzzParseHMetisStream enforce that.

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"os"
	"unicode"
	"unicode/utf8"

	"fasthgp/internal/hypergraph"
)

// maxHMetisLine mirrors the bufio.Scanner token cap ReadHMetis
// configures: a line of this many bytes or more is rejected.
const maxHMetisLine = 1 << 22

// lineSource yields raw lines (split on '\n' only, terminator stripped,
// any '\r' left for trimming) as byte views valid until the next call.
// It returns io.EOF when exhausted.
type lineSource interface {
	next() ([]byte, error)
}

// byteLines is the zero-copy lineSource over an in-memory image.
type byteLines struct {
	data []byte
}

func (b *byteLines) next() ([]byte, error) {
	if b.data == nil {
		return nil, io.EOF
	}
	var line []byte
	if i := bytes.IndexByte(b.data, '\n'); i >= 0 {
		line, b.data = b.data[:i], b.data[i+1:]
	} else {
		line, b.data = b.data, nil
	}
	if len(line) >= maxHMetisLine {
		return nil, bufio.ErrTooLong
	}
	return line, nil
}

// readerLines is the lineSource over an io.Reader: one buffer, grown at
// most to the line cap, compacted and refilled as lines are consumed.
// Returned views alias the buffer and are valid until the next call.
type readerLines struct {
	r    io.Reader
	buf  []byte
	pos  int // start of the unconsumed region
	scan int // newline search watermark: buf[pos:scan] holds no '\n'
	end  int // end of the filled region
	err  error
	done bool
}

func newReaderLines(r io.Reader) *readerLines {
	return &readerLines{r: r, buf: make([]byte, 1<<16)}
}

func (rl *readerLines) next() ([]byte, error) {
	for {
		if i := bytes.IndexByte(rl.buf[rl.scan:rl.end], '\n'); i >= 0 {
			idx := rl.scan + i
			line := rl.buf[rl.pos:idx]
			rl.pos = idx + 1
			rl.scan = rl.pos
			if len(line) >= maxHMetisLine {
				return nil, bufio.ErrTooLong
			}
			return line, nil
		}
		rl.scan = rl.end
		if rl.done {
			if rl.pos < rl.end {
				line := rl.buf[rl.pos:rl.end]
				rl.pos = rl.end
				if len(line) >= maxHMetisLine {
					return nil, bufio.ErrTooLong
				}
				return line, nil
			}
			if rl.err != nil {
				return nil, rl.err
			}
			return nil, io.EOF
		}
		if rl.end-rl.pos >= maxHMetisLine {
			return nil, bufio.ErrTooLong
		}
		if rl.pos > 0 {
			copy(rl.buf, rl.buf[rl.pos:rl.end])
			rl.end -= rl.pos
			rl.scan -= rl.pos
			rl.pos = 0
		}
		if rl.end == len(rl.buf) {
			grown := make([]byte, min(2*len(rl.buf), maxHMetisLine+1))
			copy(grown, rl.buf[:rl.end])
			rl.buf = grown
		}
		for tries := 0; ; tries++ {
			n, err := rl.r.Read(rl.buf[rl.end:])
			rl.end += n
			if err != nil {
				rl.done = true
				if err != io.EOF {
					rl.err = err
				}
				break
			}
			if n > 0 {
				break
			}
			if tries >= 100 { // mirror bufio.Scanner's empty-read guard
				rl.done = true
				rl.err = io.ErrNoProgress
				break
			}
		}
	}
}

// asciiSpace marks the bytes strings.Fields treats as separators
// without consulting the unicode tables.
var asciiSpace = [256]bool{'\t': true, '\n': true, '\v': true, '\f': true, '\r': true, ' ': true}

// cutField returns the first whitespace-delimited token of line and the
// remainder after it, using exactly the rune set of strings.Fields
// (unicode.IsSpace, with invalid UTF-8 treated as token bytes). A nil
// token means no field remains.
func cutField(line []byte) (tok, rest []byte) {
	i := 0
	for i < len(line) {
		if c := line[i]; c < utf8.RuneSelf {
			if !asciiSpace[c] {
				break
			}
			i++
			continue
		}
		r, sz := utf8.DecodeRune(line[i:])
		if !unicode.IsSpace(r) {
			break
		}
		i += sz
	}
	if i == len(line) {
		return nil, nil
	}
	j := i
	for j < len(line) {
		if c := line[j]; c < utf8.RuneSelf {
			if asciiSpace[c] {
				break
			}
			j++
			continue
		}
		r, sz := utf8.DecodeRune(line[j:])
		if unicode.IsSpace(r) {
			break
		}
		j += sz
	}
	return line[i:j], line[j:]
}

// countFields returns how many tokens remain on line (for error
// messages only — the hot path never calls it).
func countFields(line []byte) int {
	n := 0
	for {
		tok, rest := cutField(line)
		if tok == nil {
			return n
		}
		n++
		line = rest
	}
}

// joinFields renders the tokens of line separated by single spaces,
// matching strings.Join(strings.Fields(line), " ") — error paths only.
func joinFields(line []byte) string {
	var sb []byte
	for {
		tok, rest := cutField(line)
		if tok == nil {
			return string(sb)
		}
		if len(sb) > 0 {
			sb = append(sb, ' ')
		}
		sb = append(sb, tok...)
		line = rest
	}
}

// parseInt64Bytes replicates strconv.ParseInt(s, 10, 64) accept/reject
// on a byte view: optional sign, decimal digits only, 64-bit range.
func parseInt64Bytes(b []byte) (int64, bool) {
	if len(b) == 0 {
		return 0, false
	}
	neg := false
	if b[0] == '+' || b[0] == '-' {
		neg = b[0] == '-'
		b = b[1:]
		if len(b) == 0 {
			return 0, false
		}
	}
	const cutoff = uint64(1) << 63 / 10
	var n uint64
	for _, c := range b {
		if c < '0' || c > '9' {
			return 0, false
		}
		if n > cutoff {
			return 0, false
		}
		n = n*10 + uint64(c-'0')
		if n > uint64(1)<<63 {
			return 0, false
		}
	}
	if neg {
		return -int64(n), true
	}
	if n == uint64(1)<<63 {
		return 0, false
	}
	return int64(n), true
}

// atoiBytes replicates strconv.Atoi on a byte view.
func atoiBytes(b []byte) (int, bool) {
	v, ok := parseInt64Bytes(b)
	if !ok || int64(int(v)) != v {
		return 0, false
	}
	return int(v), true
}

// ParseHMetisBytes parses an in-memory hMETIS .hgr image without
// copying any token, accepting and rejecting exactly as ReadHMetis
// does. It is the parser behind the ReadHMetisFile mmap fast path.
func ParseHMetisBytes(data []byte) (*hypergraph.Hypergraph, error) {
	return parseHMetis(&byteLines{data: data})
}

// ReadHMetisFile parses the .hgr file at path, memory-mapping it
// read-only where the platform allows so the file bytes are the parse
// buffer — no read copies, no token materialization. Files that cannot
// be mapped (empty files, pipes, non-unix platforms) go through
// ParseHMetisStream. Semantics match ReadHMetis exactly either way.
func ReadHMetisFile(path string) (*hypergraph.Hypergraph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("netio: hmetis: %w", err)
	}
	defer f.Close()
	if data, unmap, ok := mmapFile(f); ok {
		defer unmap()
		return ParseHMetisBytes(data)
	}
	return ParseHMetisStream(f)
}

// ParseHMetisStream parses an hMETIS .hgr stream through one reusable
// chunk buffer: no per-line string, no per-line []string, no token
// copies. Semantics are identical to ReadHMetis on every input.
func ParseHMetisStream(r io.Reader) (*hypergraph.Hypergraph, error) {
	return parseHMetis(newReaderLines(r))
}

func parseHMetis(ls lineSource) (*hypergraph.Hypergraph, error) {
	// nextLine skips blank and %-comment lines after trimming, exactly
	// like ReadHMetis's next(); a returned line always has ≥1 field.
	nextLine := func() ([]byte, error) {
		for {
			line, err := ls.next()
			if err != nil {
				return nil, err
			}
			line = bytes.TrimSpace(line)
			if len(line) == 0 || line[0] == '%' {
				continue
			}
			return line, nil
		}
	}

	header, err := nextLine()
	if err != nil {
		return nil, fmt.Errorf("netio: hmetis: missing header: %w", err)
	}
	if n := countFields(header); n < 2 || n > 3 {
		return nil, fmt.Errorf("netio: hmetis: header wants 2 or 3 fields, got %d", n)
	}
	tok1, rest := cutField(header)
	tok2, rest := cutField(rest)
	tok3, _ := cutField(rest)
	numEdges, ok1 := atoiBytes(tok1)
	numVerts, ok2 := atoiBytes(tok2)
	if !ok1 || !ok2 || numEdges < 0 || numVerts < 0 {
		return nil, fmt.Errorf("netio: hmetis: bad header %q", joinFields(header))
	}
	if numEdges > MaxHMetisDeclared || numVerts > MaxHMetisDeclared {
		return nil, fmt.Errorf("netio: hmetis: header declares %d edges, %d vertices; limit %d", numEdges, numVerts, MaxHMetisDeclared)
	}
	edgeWeighted, vertexWeighted := false, false
	if tok3 != nil {
		switch string(tok3) { // comparison only: does not allocate
		case "0":
		case "1":
			edgeWeighted = true
		case "10":
			vertexWeighted = true
		case "11":
			edgeWeighted, vertexWeighted = true, true
		default:
			return nil, fmt.Errorf("netio: hmetis: unknown fmt %q", tok3)
		}
	}

	b := hypergraph.NewBuilder(numVerts)
	// seenAt[v] = 1-based edge number that last listed vertex v: the
	// stamp replaces ReadHMetis's per-edge map, and pins is reused
	// across edges (Builder.AddEdge copies).
	seenAt := make([]int32, numVerts+1)
	var pins []int
	for e := 0; e < numEdges; e++ {
		line, err := nextLine()
		if err != nil {
			return nil, fmt.Errorf("netio: hmetis: edge %d: %w", e+1, err)
		}
		weight := int64(1)
		if edgeWeighted {
			tok, rest := cutField(line)
			w, ok := parseInt64Bytes(tok)
			if !ok || w < 0 {
				return nil, fmt.Errorf("netio: hmetis: edge %d: bad weight %q", e+1, tok)
			}
			weight = w
			line = rest
		}
		pins = pins[:0]
		for {
			tok, rest := cutField(line)
			if tok == nil {
				break
			}
			line = rest
			v, ok := atoiBytes(tok)
			if !ok || v < 1 || v > numVerts {
				return nil, fmt.Errorf("netio: hmetis: edge %d: bad vertex %q", e+1, tok)
			}
			if seenAt[v] == int32(e+1) {
				return nil, fmt.Errorf("netio: hmetis: edge %d lists vertex %d twice", e+1, v)
			}
			seenAt[v] = int32(e + 1)
			pins = append(pins, v-1)
		}
		if len(pins) == 0 {
			return nil, fmt.Errorf("netio: hmetis: edge %d has no pins", e+1)
		}
		id := b.AddEdge(pins...)
		b.SetEdgeWeight(id, weight)
	}
	if vertexWeighted {
		for v := 0; v < numVerts; v++ {
			line, err := nextLine()
			if err != nil {
				return nil, fmt.Errorf("netio: hmetis: vertex weight %d: %w", v+1, err)
			}
			tok, _ := cutField(line) // trailing tokens ignored, as in ReadHMetis
			w, ok := parseInt64Bytes(tok)
			if !ok || w < 0 {
				return nil, fmt.Errorf("netio: hmetis: vertex weight %d: bad value %q", v+1, tok)
			}
			b.SetVertexWeight(v, w)
		}
	}
	if extra, err := nextLine(); err == nil {
		return nil, fmt.Errorf("netio: hmetis: trailing content %q after the declared %d edges", joinFields(extra), numEdges)
	} else if err != io.EOF {
		return nil, fmt.Errorf("netio: hmetis: %w", err)
	}
	h, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("netio: hmetis: %w", err)
	}
	return h, nil
}
