//go:build !unix

package netio

import "os"

// mmapFile on platforms without the unix mmap syscall reports not-ok;
// ReadHMetisFile falls back to the streaming parser.
func mmapFile(*os.File) (data []byte, unmap func(), ok bool) {
	return nil, nil, false
}
