package netio

// Differential suite for the zero-copy hMETIS parsers: on every input —
// curated accept/reject cases, generated instances, chunk-boundary
// stress, fuzz bytes — ParseHMetisStream and ParseHMetisBytes must
// agree with ReadHMetis on accept vs reject and produce a structurally
// identical hypergraph when they accept.

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"testing/iotest"

	"fasthgp/internal/gen"
	"fasthgp/internal/hypergraph"
)

// parseAllWays runs the three parsers on input and asserts they agree,
// returning the reference result (nil when all reject).
func parseAllWays(t *testing.T, name string, input []byte) *hypergraph.Hypergraph {
	t.Helper()
	want, wantErr := ReadHMetis(bytes.NewReader(input))
	for _, p := range []struct {
		name string
		h    *hypergraph.Hypergraph
		err  error
	}{
		{"stream", nil, nil},
		{"bytes", nil, nil},
		{"stream-1byte", nil, nil},
	} {
		var h *hypergraph.Hypergraph
		var err error
		switch p.name {
		case "stream":
			h, err = ParseHMetisStream(bytes.NewReader(input))
		case "bytes":
			h, err = ParseHMetisBytes(input)
		case "stream-1byte":
			h, err = ParseHMetisStream(iotest.OneByteReader(bytes.NewReader(input)))
		}
		if (err == nil) != (wantErr == nil) {
			t.Fatalf("%s/%s: accept/reject mismatch: ReadHMetis err=%v, %s err=%v",
				name, p.name, wantErr, p.name, err)
		}
		if err == nil {
			sameStructure(t, want, h)
		}
	}
	return want
}

func TestParseHMetisStreamAccepts(t *testing.T) {
	for name, input := range map[string]string{
		"unweighted":        "2 4\n1 2\n3 4\n",
		"edge-weighted":     "2 3 1\n5 1 2\n7 2 3\n",
		"vertex-weighted":   "1 2 10\n1 2\n3\n4\n",
		"both-weighted":     "2 3 11\n5 1 2\n1 2 3\n2\n1\n4\n",
		"fmt-zero":          "1 2 0\n1 2\n",
		"comments":          "% header comment\n2 4\n% mid comment\n1 2\n\n3 4\n% tail comment\n",
		"crlf":              "2 4\r\n1 2\r\n3 4\r\n",
		"padded":            "  2 4  \n\t1 2\t\n 3 4 \n",
		"plus-signs":        "+1 +2\n+1 +2\n",
		"zero-edges":        "0 3\n",
		"no-final-newline":  "1 2\n1 2",
		"tabs-and-runs":     "1  4\n1\t \t2   3\f4\n",
		"nbsp-separators":   "1 2\n1 2\n",
		"nel-separators":    "1 2\n12\n",
		"ideographic-space": "1 2\n　1 2　\n",
		"vweight-trailing":  "1 2 10\n1 2\n3 ignored tokens\n4\n",
		"weight-zero":       "1 2 1\n0 1 2\n",
	} {
		h := parseAllWays(t, name, []byte(input))
		if h == nil {
			t.Errorf("%s: expected accept, all parsers rejected", name)
		}
	}
}

func TestParseHMetisStreamRejects(t *testing.T) {
	for name, input := range map[string]string{
		"empty":              "",
		"only-comments":      "% nothing\n% here\n",
		"one-field-header":   "3\n",
		"four-field-header":  "1 2 11 9\n1 2\n",
		"bad-fmt":            "1 2 7\n1 2\n",
		"negative-edges":     "-1 2\n",
		"negative-verts":     "1 -2\n1 2\n",
		"header-not-number":  "x 2\n1 2\n",
		"header-overflow":    "99999999999999999999 2\n1 2\n",
		"header-over-cap":    "1 4194305\n1 2\n",
		"missing-edge":       "2 4\n1 2\n",
		"vertex-zero":        "1 2\n0 1\n",
		"vertex-over":        "1 2\n1 3\n",
		"vertex-junk":        "1 2\n1 2x\n",
		"vertex-underscore":  "1 22\n1 1_2\n",
		"duplicate-pin":      "1 4\n1 2 1\n",
		"weight-negative":    "1 2 1\n-5 1 2\n",
		"weight-overflow":    "1 2 1\n9223372036854775808 1 2\n",
		"weight-no-pins":     "1 2 1\n5\n",
		"trailing-content":   "1 2\n1 2\n3 4\n",
		"missing-vweights":   "1 2 10\n1 2\n3\n",
		"bad-vweight":        "1 2 10\n1 2\nx\n4\n",
		"negative-vweight":   "1 2 10\n1 2\n-3\n4\n",
		"pin-empty-sign":     "1 2\n+ 1\n",
		"dup-after-unicode":  "1 4\n2 3 2\n",
		"weight-hex":         "1 2 1\n0x5 1 2\n",
	} {
		if h := parseAllWays(t, name, []byte(input)); h != nil {
			t.Errorf("%s: expected reject, all parsers accepted", name)
		}
	}
}

// TestParseHMetisStreamGenerated round-trips generated hypergraphs
// through WriteHMetis and checks all parsers agree on real-shaped
// files, including one big enough to cross several refill chunks.
func TestParseHMetisStreamGenerated(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, tc := range []struct {
		name string
		n    int
		cfg  gen.RandomConfig
	}{
		{"small", 40, gen.RandomConfig{NumEdges: 80, MinEdgeSize: 2, MaxEdgeSize: 5}},
		{"wide", 2000, gen.RandomConfig{NumEdges: 6000, MinEdgeSize: 2, MaxEdgeSize: 12}},
	} {
		h, err := gen.Random(tc.n, tc.cfg, rng)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		var buf bytes.Buffer
		if err := WriteHMetis(&buf, h); err != nil {
			t.Fatalf("%s: write: %v", tc.name, err)
		}
		got := parseAllWays(t, tc.name, buf.Bytes())
		if got == nil {
			t.Fatalf("%s: generated file rejected", tc.name)
		}
		sameStructure(t, h, got)
	}
}

// TestParseHMetisStreamLongLine pins the line-length cap: a single line
// at or beyond the bufio.Scanner token limit is rejected by every
// parser, just below it is accepted.
func TestParseHMetisStreamLongLine(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-megabyte inputs")
	}
	// The one-byte reader variant is skipped here on purpose: pushing a
	// 4 MB line through it is quadratic by construction.
	long := []byte("2 2 " + strings.Repeat(" ", maxHMetisLine) + "\n1 2\n2 1\n")
	if _, err := ReadHMetis(bytes.NewReader(long)); err == nil {
		t.Error("ReadHMetis accepted a line at the scanner cap")
	}
	if _, err := ParseHMetisStream(bytes.NewReader(long)); err == nil {
		t.Error("stream parser accepted a line at the scanner cap")
	}
	if _, err := ParseHMetisBytes(long); err == nil {
		t.Error("bytes parser accepted a line at the scanner cap")
	}
	padded := []byte("2 2" + strings.Repeat(" ", 1<<16) + "\n1 2\n2 1\n")
	if h := parseAllWays(t, "padded-under-cap", padded); h == nil {
		t.Error("long-but-legal line rejected")
	}
}

func TestReadHMetisFile(t *testing.T) {
	dir := t.TempDir()
	content := "% file\n2 3 11\n5 1 2\n1 2 3\n2\n1\n4\n"
	path := filepath.Join(dir, "t.hgr")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	want, err := ReadHMetis(strings.NewReader(content))
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReadHMetisFile(path)
	if err != nil {
		t.Fatalf("ReadHMetisFile: %v", err)
	}
	sameStructure(t, want, got)

	// Empty file: mmap declines, the stream fallback must reject it the
	// same way ReadHMetis rejects empty input.
	empty := filepath.Join(dir, "empty.hgr")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadHMetisFile(empty); err == nil {
		t.Error("empty file accepted")
	}

	if _, err := ReadHMetisFile(filepath.Join(dir, "missing.hgr")); err == nil {
		t.Error("missing file accepted")
	}
}

// FuzzParseHMetisStream drives the zero-copy parsers differentially
// against ReadHMetis on arbitrary bytes. Seeds include the hostile
// headers the PR 2 fuzzing found (allocation bombs, overflow counts)
// plus unicode-whitespace and CRLF shapes.
func FuzzParseHMetisStream(f *testing.F) {
	f.Add([]byte("2 4\n1 2\n3 4\n"))
	f.Add([]byte("% weighted\n2 3 11\n5 1 2\n1 2 3\n2\n1\n4\n"))
	f.Add([]byte("1 2 10\n1 2\n3\n3\n"))
	f.Add([]byte("0 0\n"))
	f.Add([]byte("1 999999999\n1 2\n"))
	f.Add([]byte("99999999999999999999 2\n"))
	f.Add([]byte("4194305 1\n1 1\n"))
	f.Add([]byte("2 4\r\n1 2\r\n3 4\r\n"))
	f.Add([]byte("1 2\n+1 +2\n"))
	f.Add([]byte("1 2 1\n9223372036854775807 1 2\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		want, wantErr := ReadHMetis(bytes.NewReader(data))
		hs, errS := ParseHMetisStream(bytes.NewReader(data))
		hb, errB := ParseHMetisBytes(data)
		if (errS == nil) != (wantErr == nil) {
			t.Fatalf("stream accept/reject mismatch on %q: ReadHMetis err=%v, stream err=%v", data, wantErr, errS)
		}
		if (errB == nil) != (wantErr == nil) {
			t.Fatalf("bytes accept/reject mismatch on %q: ReadHMetis err=%v, bytes err=%v", data, wantErr, errB)
		}
		if wantErr != nil {
			return
		}
		sameStructure(t, want, hs)
		sameStructure(t, want, hb)
	})
}
