package netio

import (
	"bytes"
	"strings"
	"testing"

	"fasthgp/internal/hypergraph"
)

func TestReadBasic(t *testing.T) {
	in := `
# a tiny netlist
module alpha 5
net n1 alpha beta gamma
net n2 beta gamma
netweight n2 3
`
	h, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if h.NumVertices() != 3 || h.NumEdges() != 2 {
		t.Fatalf("dims = %d,%d", h.NumVertices(), h.NumEdges())
	}
	if h.VertexName(0) != "alpha" || h.VertexWeight(0) != 5 {
		t.Errorf("module 0 = %s/%d", h.VertexName(0), h.VertexWeight(0))
	}
	if h.VertexWeight(1) != 1 {
		t.Errorf("implicit module weight = %d", h.VertexWeight(1))
	}
	if h.EdgeName(0) != "n1" || h.EdgeSize(0) != 3 {
		t.Errorf("net 0 = %s size %d", h.EdgeName(0), h.EdgeSize(0))
	}
	if h.EdgeWeight(1) != 3 {
		t.Errorf("net n2 weight = %d", h.EdgeWeight(1))
	}
}

func TestReadErrors(t *testing.T) {
	cases := map[string]string{
		"unknown directive":  "frob x y\n",
		"net too short":      "net lonely\n",
		"module bad weight":  "module a -2\n",
		"module extra":       "module a 1 2\n",
		"netweight unknown":  "netweight ghost 2\n",
		"netweight badvalue": "net n a b\nnetweight n x\n",
		"netweight arity":    "net n a b\nnetweight n\n",
		"duplicate net":      "net n a b\nnet n c d\n",
	}
	for name, in := range cases {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted %q", name, in)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	b := hypergraph.NewBuilder(4)
	b.SetVertexName(0, "m0")
	b.SetVertexName(1, "m1")
	b.SetVertexName(2, "m2")
	b.SetVertexName(3, "m3")
	b.SetVertexWeight(2, 7)
	e0 := b.AddEdge(0, 1, 2)
	e1 := b.AddEdge(2, 3)
	b.SetEdgeName(e0, "clk")
	b.SetEdgeName(e1, "d0")
	b.SetEdgeWeight(e1, 2)
	h := b.MustBuild()

	var buf bytes.Buffer
	if err := Write(&buf, h); err != nil {
		t.Fatal(err)
	}
	h2, err := Read(&buf)
	if err != nil {
		t.Fatalf("re-read: %v\noutput was:\n%s", err, buf.String())
	}
	if h2.NumVertices() != h.NumVertices() || h2.NumEdges() != h.NumEdges() {
		t.Fatalf("dims changed: (%d,%d) → (%d,%d)", h.NumVertices(), h.NumEdges(), h2.NumVertices(), h2.NumEdges())
	}
	for v := 0; v < h.NumVertices(); v++ {
		if h2.VertexName(v) != h.VertexName(v) || h2.VertexWeight(v) != h.VertexWeight(v) {
			t.Errorf("module %d changed: %s/%d → %s/%d", v, h.VertexName(v), h.VertexWeight(v), h2.VertexName(v), h2.VertexWeight(v))
		}
	}
	for e := 0; e < h.NumEdges(); e++ {
		if h2.EdgeName(e) != h.EdgeName(e) || h2.EdgeWeight(e) != h.EdgeWeight(e) {
			t.Errorf("net %d meta changed", e)
		}
		pa, pb := h.EdgePins(e), h2.EdgePins(e)
		if len(pa) != len(pb) {
			t.Fatalf("net %d size changed", e)
		}
		for i := range pa {
			if pa[i] != pb[i] {
				t.Errorf("net %d pins changed: %v → %v", e, pa, pb)
			}
		}
	}
}

func TestRoundTripUnnamed(t *testing.T) {
	h, err := hypergraph.FromEdges(3, [][]int{{0, 1}, {1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, h); err != nil {
		t.Fatal(err)
	}
	h2, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if h2.NumVertices() != 3 || h2.NumEdges() != 2 {
		t.Errorf("dims = %d,%d", h2.NumVertices(), h2.NumEdges())
	}
}

func TestSortedModuleNames(t *testing.T) {
	h, err := Read(strings.NewReader("net n1 zeta alpha mid\n"))
	if err != nil {
		t.Fatal(err)
	}
	names := SortedModuleNames(h)
	if names[0] != "alpha" || names[2] != "zeta" {
		t.Errorf("names = %v", names)
	}
}

func TestTokenSanitizes(t *testing.T) {
	if token("a b") != "a_b" {
		t.Errorf("token(%q) = %q", "a b", token("a b"))
	}
	if token("clean") != "clean" {
		t.Error("token mangled a clean name")
	}
}

// TestReadRejectsDuplicatePins covers the fuzz-found malformed inputs:
// a net listing the same module twice is an authoring error, not a
// merge candidate.
func TestReadRejectsDuplicatePins(t *testing.T) {
	if _, err := Read(strings.NewReader("net n a b a\n")); err == nil {
		t.Error("duplicate pin accepted")
	}
	if !strings.Contains(mustErr(t, "net n a b a\n").Error(), "twice") {
		t.Error("duplicate-pin error not descriptive")
	}
	// Distinct nets may still share pins freely.
	if _, err := Read(strings.NewReader("net n1 a b\nnet n2 a b\n")); err != nil {
		t.Errorf("shared pins across nets rejected: %v", err)
	}
}

func mustErr(t *testing.T, in string) error {
	t.Helper()
	_, err := Read(strings.NewReader(in))
	if err == nil {
		t.Fatalf("accepted %q", in)
	}
	return err
}

// TestTokenSanitizesUnicodeSpace pins the hardened token rule: every
// rune strings.Fields would split on must be rewritten, or a written
// name would read back as several fields.
func TestTokenSanitizesUnicodeSpace(t *testing.T) {
	for _, name := range []string{"a\vb", "a\rb", "a\fb", "a b", "a b"} {
		b := hypergraph.NewBuilder(2)
		b.SetVertexName(0, name)
		b.SetVertexName(1, "plain")
		b.AddEdge(0, 1)
		h := b.MustBuild()
		var buf bytes.Buffer
		if err := Write(&buf, h); err != nil {
			t.Fatalf("%q: %v", name, err)
		}
		h2, err := Read(&buf)
		if err != nil {
			t.Fatalf("%q: round-trip rejected: %v", name, err)
		}
		if h2.NumVertices() != 2 || h2.NumEdges() != 1 {
			t.Errorf("%q: round-trip mangled structure: %v", name, h2)
		}
	}
}

func TestFixedRoundTrip(t *testing.T) {
	b := hypergraph.NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2, 3)
	h, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	fixed := []int8{0, -1, 1, -1}
	var buf bytes.Buffer
	if err := WriteFixed(&buf, h, fixed); err != nil {
		t.Fatal(err)
	}
	h2, got, err := ReadFixed(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if h2.NumVertices() != 4 || h2.NumEdges() != 2 {
		t.Fatalf("round-trip lost structure: %d vertices, %d edges", h2.NumVertices(), h2.NumEdges())
	}
	if len(got) != 4 {
		t.Fatalf("fixed length %d, want 4", len(got))
	}
	for v := range fixed {
		if got[v] != fixed[v] {
			t.Errorf("fixed[%d] = %d, want %d", v, got[v], fixed[v])
		}
	}
	// Plain Read must accept (and discard) the fixed directives.
	if _, err := Read(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("Read rejected fixed directives: %v", err)
	}
}

func TestFixedDirectiveErrors(t *testing.T) {
	for _, bad := range []string{
		"net n1 a b\nfixed a X\n",
		"net n1 a b\nfixed a\n",
		"net n1 a b\nfixed a L\nfixed a R\n",
		"net n1 a b\nfixed ghost L\n",
	} {
		if _, _, err := ReadFixed(strings.NewReader(bad)); err == nil {
			t.Errorf("ReadFixed accepted %q", bad)
		}
	}
}

func TestReadFixedNilWhenAbsent(t *testing.T) {
	_, fixed, err := ReadFixed(strings.NewReader("net n1 a b\n"))
	if err != nil {
		t.Fatal(err)
	}
	if fixed != nil {
		t.Fatalf("fixed = %v, want nil", fixed)
	}
}

func TestHMetisFixRoundTrip(t *testing.T) {
	fixed := []int8{-1, 0, 1, -1, 2}
	var buf bytes.Buffer
	if err := WriteHMetisFix(&buf, fixed); err != nil {
		t.Fatal(err)
	}
	got, err := ReadHMetisFix(bytes.NewReader(buf.Bytes()), len(fixed))
	if err != nil {
		t.Fatal(err)
	}
	for v := range fixed {
		if got[v] != fixed[v] {
			t.Errorf("fixed[%d] = %d, want %d", v, got[v], fixed[v])
		}
	}
	if _, err := ReadHMetisFix(strings.NewReader("0\n1\n"), 3); err == nil {
		t.Error("short fix file accepted")
	}
	if _, err := ReadHMetisFix(strings.NewReader("0\nbogus\n1\n"), 3); err == nil {
		t.Error("malformed fix file accepted")
	}
	if all, err := ReadHMetisFix(strings.NewReader("-1\n-1\n-1\n"), 3); err != nil || all != nil {
		t.Errorf("all-free fix file: got %v, %v; want nil, nil", all, err)
	}
}
