//go:build unix

package netio

import (
	"os"
	"syscall"
)

// mmapFile maps the file read-only and returns the image plus an unmap
// function. ok is false when the platform or the file (empty, not a
// regular file, mmap refused) cannot be mapped — callers fall back to
// the streaming parser.
func mmapFile(f *os.File) (data []byte, unmap func(), ok bool) {
	st, err := f.Stat()
	if err != nil || !st.Mode().IsRegular() || st.Size() <= 0 || st.Size() != int64(int(st.Size())) {
		return nil, nil, false
	}
	m, err := syscall.Mmap(int(f.Fd()), 0, int(st.Size()), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, false
	}
	return m, func() { _ = syscall.Munmap(m) }, true
}
