package netio

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"fasthgp/internal/hypergraph"
)

// The hMETIS .hgr format is the de-facto exchange format for hypergraph
// partitioning benchmarks:
//
//	% comment
//	<numEdges> <numVertices> [fmt]
//	[edgeWeight] v1 v2 ...      (one line per edge, vertices 1-indexed)
//	[vertexWeight]              (one line per vertex, when fmt has 10)
//
// fmt is 0 (unweighted), 1 (edge weights), 10 (vertex weights) or 11
// (both). ReadHMetis and WriteHMetis implement the full format.

// MaxHMetisDeclared caps the vertex and edge counts a .hgr header may
// declare (every published partitioning benchmark is far below it).
// The header is trusted before any edge line is read, so without a cap
// a few bytes of malformed input could demand a multi-gigabyte
// allocation — the fuzzers found exactly that.
const MaxHMetisDeclared = 1 << 22

// ReadHMetis parses an hMETIS .hgr file.
func ReadHMetis(r io.Reader) (*hypergraph.Hypergraph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	next := func() ([]string, error) {
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			if line == "" || strings.HasPrefix(line, "%") {
				continue
			}
			return strings.Fields(line), nil
		}
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, io.EOF
	}

	header, err := next()
	if err != nil {
		return nil, fmt.Errorf("netio: hmetis: missing header: %w", err)
	}
	if len(header) < 2 || len(header) > 3 {
		return nil, fmt.Errorf("netio: hmetis: header wants 2 or 3 fields, got %d", len(header))
	}
	numEdges, err1 := strconv.Atoi(header[0])
	numVerts, err2 := strconv.Atoi(header[1])
	if err1 != nil || err2 != nil || numEdges < 0 || numVerts < 0 {
		return nil, fmt.Errorf("netio: hmetis: bad header %v", header)
	}
	if numEdges > MaxHMetisDeclared || numVerts > MaxHMetisDeclared {
		return nil, fmt.Errorf("netio: hmetis: header declares %d edges, %d vertices; limit %d", numEdges, numVerts, MaxHMetisDeclared)
	}
	edgeWeighted, vertexWeighted := false, false
	if len(header) == 3 {
		switch header[2] {
		case "0":
		case "1":
			edgeWeighted = true
		case "10":
			vertexWeighted = true
		case "11":
			edgeWeighted, vertexWeighted = true, true
		default:
			return nil, fmt.Errorf("netio: hmetis: unknown fmt %q", header[2])
		}
	}

	b := hypergraph.NewBuilder(numVerts)
	for e := 0; e < numEdges; e++ {
		fields, err := next()
		if err != nil {
			return nil, fmt.Errorf("netio: hmetis: edge %d: %w", e+1, err)
		}
		start := 0
		weight := int64(1)
		if edgeWeighted {
			w, err := strconv.ParseInt(fields[0], 10, 64)
			if err != nil || w < 0 {
				return nil, fmt.Errorf("netio: hmetis: edge %d: bad weight %q", e+1, fields[0])
			}
			weight = w
			start = 1
		}
		if len(fields) <= start {
			return nil, fmt.Errorf("netio: hmetis: edge %d has no pins", e+1)
		}
		pins := make([]int, 0, len(fields)-start)
		seen := make(map[int]bool, len(fields)-start)
		for _, f := range fields[start:] {
			v, err := strconv.Atoi(f)
			if err != nil || v < 1 || v > numVerts {
				return nil, fmt.Errorf("netio: hmetis: edge %d: bad vertex %q", e+1, f)
			}
			if seen[v] {
				return nil, fmt.Errorf("netio: hmetis: edge %d lists vertex %d twice", e+1, v)
			}
			seen[v] = true
			pins = append(pins, v-1)
		}
		id := b.AddEdge(pins...)
		b.SetEdgeWeight(id, weight)
	}
	if vertexWeighted {
		for v := 0; v < numVerts; v++ {
			fields, err := next()
			if err != nil {
				return nil, fmt.Errorf("netio: hmetis: vertex weight %d: %w", v+1, err)
			}
			w, err := strconv.ParseInt(fields[0], 10, 64)
			if err != nil || w < 0 {
				return nil, fmt.Errorf("netio: hmetis: vertex weight %d: bad value %q", v+1, fields[0])
			}
			b.SetVertexWeight(v, w)
		}
	}
	if extra, err := next(); err == nil {
		return nil, fmt.Errorf("netio: hmetis: trailing content %q after the declared %d edges", strings.Join(extra, " "), numEdges)
	} else if err != io.EOF {
		return nil, fmt.Errorf("netio: hmetis: %w", err)
	}
	h, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("netio: hmetis: %w", err)
	}
	return h, nil
}

// WriteHMetis emits h in hMETIS format, choosing the minimal fmt code
// that preserves the weights.
func WriteHMetis(w io.Writer, h *hypergraph.Hypergraph) error {
	bw := bufio.NewWriter(w)
	edgeWeighted, vertexWeighted := false, false
	for e := 0; e < h.NumEdges(); e++ {
		if h.EdgeWeight(e) != 1 {
			edgeWeighted = true
			break
		}
	}
	for v := 0; v < h.NumVertices(); v++ {
		if h.VertexWeight(v) != 1 {
			vertexWeighted = true
			break
		}
	}
	code := ""
	switch {
	case edgeWeighted && vertexWeighted:
		code = " 11"
	case vertexWeighted:
		code = " 10"
	case edgeWeighted:
		code = " 1"
	}
	fmt.Fprintf(bw, "%d %d%s\n", h.NumEdges(), h.NumVertices(), code)
	for e := 0; e < h.NumEdges(); e++ {
		if edgeWeighted {
			fmt.Fprintf(bw, "%d ", h.EdgeWeight(e))
		}
		for i, v := range h.EdgePins(e) {
			if i > 0 {
				fmt.Fprint(bw, " ")
			}
			fmt.Fprintf(bw, "%d", v+1)
		}
		fmt.Fprintln(bw)
	}
	if vertexWeighted {
		for v := 0; v < h.NumVertices(); v++ {
			fmt.Fprintf(bw, "%d\n", h.VertexWeight(v))
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("netio: hmetis: %w", err)
	}
	return nil
}

// ReadHMetisFix parses an hMETIS fix file: one line per vertex, in
// vertex order, holding the vertex's fixed part id or -1 for free.
// Blank lines and %-comments are skipped. Exactly n assignments are
// required. The result is nil when every vertex is free.
func ReadHMetisFix(r io.Reader, n int) ([]int8, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	fixed := make([]int8, 0, n)
	any := false
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		v, err := strconv.ParseInt(line, 10, 8)
		if err != nil || v < -1 {
			return nil, fmt.Errorf("netio: hmetis fix: line %d: bad part id %q", lineNo, line)
		}
		if len(fixed) == n {
			return nil, fmt.Errorf("netio: hmetis fix: more than %d assignments", n)
		}
		fixed = append(fixed, int8(v))
		if v >= 0 {
			any = true
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("netio: hmetis fix: %w", err)
	}
	if len(fixed) != n {
		return nil, fmt.Errorf("netio: hmetis fix: %d assignments, want %d", len(fixed), n)
	}
	if !any {
		return nil, nil
	}
	return fixed, nil
}

// WriteHMetisFix emits a fixed-vertex assignment in the hMETIS fix-file
// format: one line per vertex with its part id, -1 for free.
func WriteHMetisFix(w io.Writer, fixed []int8) error {
	bw := bufio.NewWriter(w)
	for _, f := range fixed {
		fmt.Fprintf(bw, "%d\n", f)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("netio: hmetis fix: %w", err)
	}
	return nil
}
