package netio

// Native fuzz targets for the two parsers. The property is the same
// for both: arbitrary input must either parse or return an error —
// never panic, never over-allocate from a hostile header — and
// anything that parses must survive a write→read round trip with its
// structure, weights and (for the netio format) names intact.
//
// Seed corpora live in testdata/fuzz/<Target>/ and run as ordinary
// test cases under plain `go test`; CI additionally runs each target
// for 30 s of coverage-guided exploration.

import (
	"bytes"
	"testing"

	"fasthgp/internal/hypergraph"
)

// sameStructure fails the test unless a and b are structurally
// identical hypergraphs (vertices, edges, pins, weights).
func sameStructure(t *testing.T, a, b *hypergraph.Hypergraph) {
	t.Helper()
	if a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges() {
		t.Fatalf("round trip changed shape: %v → %v", a, b)
	}
	for v := 0; v < a.NumVertices(); v++ {
		if a.VertexWeight(v) != b.VertexWeight(v) {
			t.Fatalf("vertex %d weight %d → %d", v, a.VertexWeight(v), b.VertexWeight(v))
		}
	}
	for e := 0; e < a.NumEdges(); e++ {
		if a.EdgeWeight(e) != b.EdgeWeight(e) {
			t.Fatalf("edge %d weight %d → %d", e, a.EdgeWeight(e), b.EdgeWeight(e))
		}
		pa, pb := a.EdgePins(e), b.EdgePins(e)
		if len(pa) != len(pb) {
			t.Fatalf("edge %d size %d → %d", e, len(pa), len(pb))
		}
		for i := range pa {
			if pa[i] != pb[i] {
				t.Fatalf("edge %d pins %v → %v", e, pa, pb)
			}
		}
	}
}

func FuzzParseNetlist(f *testing.F) {
	f.Add([]byte("net n1 a b c\nnet n2 b d\n"))
	f.Add([]byte("# comment\nmodule a 3\nmodule b\nnet clk a b\nnetweight clk 2\n"))
	f.Add([]byte("module only\n"))
	f.Add([]byte("net n a\n"))
	f.Add([]byte("net n a b a\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		h, err := Read(bytes.NewReader(data))
		if err != nil {
			return // rejected cleanly
		}
		var buf bytes.Buffer
		if err := Write(&buf, h); err != nil {
			t.Fatalf("write failed on parsed netlist: %v", err)
		}
		h2, err := Read(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("round trip rejected:\n%v\nwritten:\n%s", err, buf.String())
		}
		sameStructure(t, h, h2)
		for v := 0; v < h.NumVertices(); v++ {
			if h.VertexName(v) != h2.VertexName(v) {
				t.Fatalf("vertex %d name %q → %q", v, h.VertexName(v), h2.VertexName(v))
			}
		}
		for e := 0; e < h.NumEdges(); e++ {
			if h.EdgeName(e) != h2.EdgeName(e) {
				t.Fatalf("edge %d name %q → %q", e, h.EdgeName(e), h2.EdgeName(e))
			}
		}
	})
}

func FuzzParseHMetis(f *testing.F) {
	f.Add([]byte("2 4\n1 2\n3 4\n"))
	f.Add([]byte("% weighted\n2 3 11\n5 1 2\n1 2 3\n2\n1\n4\n"))
	f.Add([]byte("1 2 10\n1 2\n3\n3\n"))
	f.Add([]byte("0 0\n"))
	f.Add([]byte("1 999999999\n1 2\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		h, err := ReadHMetis(bytes.NewReader(data))
		if err != nil {
			return // rejected cleanly
		}
		var buf bytes.Buffer
		if err := WriteHMetis(&buf, h); err != nil {
			t.Fatalf("write failed on parsed hypergraph: %v", err)
		}
		h2, err := ReadHMetis(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("round trip rejected:\n%v\nwritten:\n%s", err, buf.String())
		}
		sameStructure(t, h, h2)
	})
}
