package netio

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"fasthgp/internal/hypergraph"
)

func TestReadHMetisUnweighted(t *testing.T) {
	in := `% a comment
4 7
1 2
1 7 5 6
5 6 4
2 3 4
`
	h, err := ReadHMetis(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if h.NumEdges() != 4 || h.NumVertices() != 7 {
		t.Fatalf("dims = %d,%d", h.NumEdges(), h.NumVertices())
	}
	// 1-indexed input → 0-indexed pins, sorted.
	want := [][]int{{0, 1}, {0, 4, 5, 6}, {3, 4, 5}, {1, 2, 3}}
	for e, pins := range want {
		got := h.EdgePins(e)
		if len(got) != len(pins) {
			t.Fatalf("edge %d: %v", e, got)
		}
		for i := range pins {
			if got[i] != pins[i] {
				t.Errorf("edge %d pins = %v, want %v", e, got, pins)
			}
		}
	}
}

func TestReadHMetisWeights(t *testing.T) {
	in := `3 4 11
5 1 2
1 2 3
7 3 4
2
1
1
9
`
	h, err := ReadHMetis(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if h.EdgeWeight(0) != 5 || h.EdgeWeight(1) != 1 || h.EdgeWeight(2) != 7 {
		t.Errorf("edge weights %d,%d,%d", h.EdgeWeight(0), h.EdgeWeight(1), h.EdgeWeight(2))
	}
	if h.VertexWeight(0) != 2 || h.VertexWeight(3) != 9 {
		t.Errorf("vertex weights %d,%d", h.VertexWeight(0), h.VertexWeight(3))
	}
}

func TestReadHMetisErrors(t *testing.T) {
	cases := map[string]string{
		"empty":             "",
		"bad header":        "x y\n",
		"header arity":      "1 2 3 4\n",
		"bad fmt":           "1 2 7\n1 2\n",
		"missing edge":      "2 3\n1 2\n",
		"vertex range low":  "1 3\n0 1\n",
		"vertex range high": "1 3\n1 4\n",
		"bad edge weight":   "1 2 1\n-3 1 2\n",
		"weightless edge":   "1 2 1\n5\n",
		"missing vweights":  "1 2 10\n1 2\n3\n",
	}
	for name, in := range cases {
		if _, err := ReadHMetis(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted %q", name, in)
		}
	}
}

func TestHMetisRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	b := hypergraph.NewBuilder(15)
	for i := 0; i < 30; i++ {
		size := 2 + rng.Intn(4)
		pins := make([]int, size)
		for j := range pins {
			pins[j] = rng.Intn(15)
		}
		e := b.AddEdge(pins...)
		if rng.Intn(2) == 0 {
			b.SetEdgeWeight(e, int64(1+rng.Intn(9)))
		}
	}
	for v := 0; v < 15; v++ {
		b.SetVertexWeight(v, int64(1+rng.Intn(6)))
	}
	h := b.MustBuild()

	var buf bytes.Buffer
	if err := WriteHMetis(&buf, h); err != nil {
		t.Fatal(err)
	}
	h2, err := ReadHMetis(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if h2.NumVertices() != h.NumVertices() || h2.NumEdges() != h.NumEdges() {
		t.Fatalf("dims changed")
	}
	for e := 0; e < h.NumEdges(); e++ {
		if h2.EdgeWeight(e) != h.EdgeWeight(e) {
			t.Errorf("edge %d weight changed", e)
		}
		pa, pb := h.EdgePins(e), h2.EdgePins(e)
		if len(pa) != len(pb) {
			t.Fatalf("edge %d size changed", e)
		}
		for i := range pa {
			if pa[i] != pb[i] {
				t.Errorf("edge %d pins changed", e)
			}
		}
	}
	for v := 0; v < h.NumVertices(); v++ {
		if h2.VertexWeight(v) != h.VertexWeight(v) {
			t.Errorf("vertex %d weight changed", v)
		}
	}
}

func TestHMetisRoundTripUnweighted(t *testing.T) {
	h, err := hypergraph.FromEdges(4, [][]int{{0, 1, 2}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteHMetis(&buf, h); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "2 4\n") {
		t.Errorf("unweighted header = %q", strings.SplitN(buf.String(), "\n", 2)[0])
	}
	if _, err := ReadHMetis(&buf); err != nil {
		t.Fatal(err)
	}
}

// TestReadHMetisHardened covers the fuzz-found malformed inputs:
// resource-exhausting headers, duplicate pins and trailing garbage all
// fail with errors instead of panicking or over-allocating.
func TestReadHMetisHardened(t *testing.T) {
	cases := map[string]string{
		"oversized vertex decl": "1 999999999\n1 2\n",
		"oversized edge decl":   "999999999 4\n",
		"duplicate pin":         "1 4\n1 2 1\n",
		"trailing content":      "1 4\n1 2\n3 4\n",
		"trailing after vwts":   "1 2 10\n1 2\n5\n5\n7\n",
	}
	for name, in := range cases {
		if _, err := ReadHMetis(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted %q", name, in)
		}
	}
	// The cap must not reject plausible benchmark sizes.
	if _, err := ReadHMetis(strings.NewReader("1 1000\n1 1000\n")); err != nil {
		t.Errorf("legitimate header rejected: %v", err)
	}
}
