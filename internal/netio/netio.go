// Package netio reads and writes netlists in a simple line-oriented
// text format, so the command-line tools can exchange hypergraphs:
//
//	# comment
//	module <name> [weight]        # optional pre-registration
//	net <name> <module> ...       # pins; unknown modules auto-register
//	netweight <name> <weight>     # optional net weight
//	fixed <name> <L|R|part-id>    # optional fixed-vertex pin
//
// Module and net names are arbitrary whitespace-free tokens. Modules
// referenced only in net lines get weight 1. Indices are assigned in
// first-appearance order, so write→read round-trips preserve them.
// The fixed directive pins a module to a partition side — L (or 0)
// and R (or 1) for bisection, larger part ids for K-way; ReadFixed
// surfaces the assignment, plain Read parses and discards it.
package netio

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"unicode"

	"fasthgp/internal/hypergraph"
	"fasthgp/internal/partition"
)

// Read parses a netlist from r. Fixed-vertex directives are accepted
// and discarded; use ReadFixed to surface them.
func Read(r io.Reader) (*hypergraph.Hypergraph, error) {
	h, _, err := ReadFixed(r)
	return h, err
}

// ReadFixed parses a netlist from r along with its fixed-vertex
// assignment: fixed[v] is the pinned side of module v, or
// partition.FreeVertex (−1) when free. The slice is nil when the input
// carries no fixed directive at all.
func ReadFixed(r io.Reader) (*hypergraph.Hypergraph, []int8, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)

	moduleID := map[string]int{}
	var moduleNames []string
	var moduleWeights []int64
	netID := map[string]int{}
	type netDecl struct {
		name   string
		pins   []string
		weight int64
	}
	var nets []netDecl
	fixedOf := map[string]int8{}
	var fixedOrder []string

	module := func(name string) int {
		if id, ok := moduleID[name]; ok {
			return id
		}
		id := len(moduleNames)
		moduleID[name] = id
		moduleNames = append(moduleNames, name)
		moduleWeights = append(moduleWeights, 1)
		return id
	}

	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "module":
			if len(fields) < 2 || len(fields) > 3 {
				return nil, nil, fmt.Errorf("netio: line %d: module wants a name and optional weight", lineNo)
			}
			id := module(fields[1])
			if len(fields) == 3 {
				w, err := strconv.ParseInt(fields[2], 10, 64)
				if err != nil || w < 0 {
					return nil, nil, fmt.Errorf("netio: line %d: bad module weight %q", lineNo, fields[2])
				}
				moduleWeights[id] = w
			}
		case "net":
			if len(fields) < 3 {
				return nil, nil, fmt.Errorf("netio: line %d: net wants a name and at least one pin", lineNo)
			}
			name := fields[1]
			if _, dup := netID[name]; dup {
				return nil, nil, fmt.Errorf("netio: line %d: duplicate net %q", lineNo, name)
			}
			pins := fields[2:]
			seen := make(map[string]bool, len(pins))
			for _, p := range pins {
				if seen[p] {
					return nil, nil, fmt.Errorf("netio: line %d: net %q lists pin %q twice", lineNo, name, p)
				}
				seen[p] = true
			}
			netID[name] = len(nets)
			nets = append(nets, netDecl{name: name, pins: pins, weight: 1})
		case "netweight":
			if len(fields) != 3 {
				return nil, nil, fmt.Errorf("netio: line %d: netweight wants a name and a weight", lineNo)
			}
			id, ok := netID[fields[1]]
			if !ok {
				return nil, nil, fmt.Errorf("netio: line %d: netweight for undeclared net %q", lineNo, fields[1])
			}
			w, err := strconv.ParseInt(fields[2], 10, 64)
			if err != nil || w < 0 {
				return nil, nil, fmt.Errorf("netio: line %d: bad net weight %q", lineNo, fields[2])
			}
			nets[id].weight = w
		case "fixed":
			if len(fields) != 3 {
				return nil, nil, fmt.Errorf("netio: line %d: fixed wants a module and a side", lineNo)
			}
			side, err := parseSide(fields[2])
			if err != nil {
				return nil, nil, fmt.Errorf("netio: line %d: %v", lineNo, err)
			}
			name := fields[1]
			if _, dup := fixedOf[name]; dup {
				return nil, nil, fmt.Errorf("netio: line %d: module %q fixed twice", lineNo, name)
			}
			fixedOf[name] = side
			fixedOrder = append(fixedOrder, name)
		default:
			return nil, nil, fmt.Errorf("netio: line %d: unknown directive %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, nil, fmt.Errorf("netio: %w", err)
	}

	// Register net pins in order so indices are reproducible.
	for i := range nets {
		for _, p := range nets[i].pins {
			module(p)
		}
	}
	b := hypergraph.NewBuilder(len(moduleNames))
	for id, name := range moduleNames {
		b.SetVertexName(id, name)
		b.SetVertexWeight(id, moduleWeights[id])
	}
	for _, nd := range nets {
		pins := make([]int, len(nd.pins))
		for i, p := range nd.pins {
			pins[i] = moduleID[p]
		}
		e := b.AddEdge(pins...)
		b.SetEdgeName(e, nd.name)
		b.SetEdgeWeight(e, nd.weight)
	}
	h, err := b.Build()
	if err != nil {
		return nil, nil, fmt.Errorf("netio: %w", err)
	}
	var fixed []int8
	if len(fixedOf) > 0 {
		fixed = make([]int8, h.NumVertices())
		for v := range fixed {
			fixed[v] = partition.FreeVertex
		}
		for _, name := range fixedOrder {
			id, ok := moduleID[name]
			if !ok {
				return nil, nil, fmt.Errorf("netio: fixed directive names unknown module %q", name)
			}
			fixed[id] = fixedOf[name]
		}
	}
	return h, fixed, nil
}

// parseSide parses a fixed-directive side token: L/l and R/r for the
// two bisection sides, or a bare part id in [0, 127].
func parseSide(tok string) (int8, error) {
	switch tok {
	case "L", "l":
		return 0, nil
	case "R", "r":
		return 1, nil
	}
	v, err := strconv.ParseInt(tok, 10, 8)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("bad fixed side %q (want L, R, or a part id)", tok)
	}
	return int8(v), nil
}

// Write emits h in the netio format. Module lines are emitted only for
// modules with non-unit weight or no incident nets; net order and pin
// order follow the hypergraph.
func Write(w io.Writer, h *hypergraph.Hypergraph) error {
	return WriteFixed(w, h, nil)
}

// WriteFixed is Write plus fixed directives for every pinned module in
// fixed (entries of partition.FreeVertex are skipped; a nil slice emits
// none). ReadFixed round-trips the assignment.
func WriteFixed(w io.Writer, h *hypergraph.Hypergraph, fixed []int8) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# netlist: %d modules, %d nets\n", h.NumVertices(), h.NumEdges())
	// Emit all module declarations first so indices round-trip even for
	// modules that appear only late in net pin order.
	for v := 0; v < h.NumVertices(); v++ {
		if h.VertexWeight(v) != 1 {
			fmt.Fprintf(bw, "module %s %d\n", token(h.VertexName(v)), h.VertexWeight(v))
		} else {
			fmt.Fprintf(bw, "module %s\n", token(h.VertexName(v)))
		}
	}
	for e := 0; e < h.NumEdges(); e++ {
		fmt.Fprintf(bw, "net %s", token(h.EdgeName(e)))
		for _, v := range h.EdgePins(e) {
			fmt.Fprintf(bw, " %s", token(h.VertexName(v)))
		}
		fmt.Fprintln(bw)
		if h.EdgeWeight(e) != 1 {
			fmt.Fprintf(bw, "netweight %s %d\n", token(h.EdgeName(e)), h.EdgeWeight(e))
		}
	}
	for v := 0; v < h.NumVertices() && v < len(fixed); v++ {
		switch f := fixed[v]; {
		case f == 0:
			fmt.Fprintf(bw, "fixed %s L\n", token(h.VertexName(v)))
		case f == 1:
			fmt.Fprintf(bw, "fixed %s R\n", token(h.VertexName(v)))
		case f > 1:
			fmt.Fprintf(bw, "fixed %s %d\n", token(h.VertexName(v)), f)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("netio: %w", err)
	}
	return nil
}

// token sanitizes a name into a whitespace-free token. Every Unicode
// space (not just ASCII blanks — strings.Fields splits on \v, \f, \r,
// NBSP, …) maps to '_' so a written name always reads back as one
// field.
func token(s string) string {
	if strings.IndexFunc(s, unicode.IsSpace) < 0 {
		return s
	}
	return strings.Map(func(r rune) rune {
		if unicode.IsSpace(r) {
			return '_'
		}
		return r
	}, s)
}

// SortedModuleNames returns all module names, sorted; a convenience for
// stable CLI output.
func SortedModuleNames(h *hypergraph.Hypergraph) []string {
	names := make([]string, h.NumVertices())
	for v := range names {
		names[v] = h.VertexName(v)
	}
	sort.Strings(names)
	return names
}
