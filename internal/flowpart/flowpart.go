// Package flowpart implements flow-based hypergraph bipartitioning —
// the "network flow [7]" family the paper positions Algorithm I
// against: it yields exact minimum s–t cuts of the netlist, but its
// cost grows fast enough that the paper deems such methods
// "impractical for large problem instances" (reproduced by
// BenchmarkScalingFlow).
//
// The standard net model makes a hyperedge cost exactly one cut unit:
// each net e becomes a pair of nodes e₁ → e₂ with an arc of capacity
// w(e); every pin v gets uncuttable arcs v → e₁ and e₂ → v. A minimum
// s–t cut of this network then equals the minimum-weight set of nets
// separating module s from module t. Minimizing over several
// seed-module pairs approximates the global minimum net cut.
package flowpart

import (
	"context"
	"fmt"
	"math/rand"

	"fasthgp/internal/checkpoint"
	"fasthgp/internal/engine"
	"fasthgp/internal/hypergraph"
	"fasthgp/internal/maxflow"
	"fasthgp/internal/partition"
	"fasthgp/internal/rebalance"
)

// Options configures Bisect.
type Options struct {
	// SeedPairs is the number of (s, t) module pairs tried (default 5).
	// Each pair is an independent start of the multi-start engine.
	SeedPairs int
	// Seed makes the run deterministic; each seed pair draws from its
	// own stream, so results are independent of Parallelism.
	Seed int64
	// Parallelism is the number of workers solving seed pairs
	// concurrently; values < 1 mean GOMAXPROCS. Wall time only, never
	// the result.
	Parallelism int
	// Constraint is the unified balance contract: Left-fixed vertices
	// are welded to the source and Right-fixed ones to the sink with
	// uncuttable arcs (so the min cut can never separate a fixed vertex
	// from its side), seed pairs are drawn fixed-compatibly, and the
	// resulting cut is repaired onto the ε bound. The zero value
	// preserves historical behavior exactly.
	Constraint partition.Constraint
	// Checkpoint, when non-nil, journals every solved pair into its
	// sink and resumes from its recovered state — see internal/checkpoint.
	// A resumed run returns the same Result an uninterrupted run would
	// (FlowValue is journaled: the tie-break depends on it).
	Checkpoint *engine.CheckpointIO
}

// Result is the flow-partition outcome.
type Result struct {
	// Partition is the best bipartition found.
	Partition *partition.Bipartition
	// CutSize is its (unweighted) cutsize.
	CutSize int
	// FlowValue is the weighted min-cut value certified by the flow.
	FlowValue int64
	// Engine reports the multi-start execution (pairs run, winning
	// pair, per-pair cuts, wall/CPU time).
	Engine engine.Stats
}

// MinNetCut computes an exact minimum-weight net cut separating
// modules s and t, returning the partition (s-side Left) and the cut
// weight.
func MinNetCut(h *hypergraph.Hypergraph, s, t int) (*partition.Bipartition, int64, error) {
	return MinNetCutCtx(context.Background(), h, s, t)
}

// MinNetCutCtx is MinNetCut with cancellation: the context is polled
// between flow augmentations, so a solve under a deadline stops within
// one augmentation of it. An exact cut interrupted mid-solve certifies
// nothing, so on expiry the context's error is returned and the
// partial partition is discarded.
func MinNetCutCtx(ctx context.Context, h *hypergraph.Hypergraph, s, t int) (*partition.Bipartition, int64, error) {
	return minNetCutFixed(ctx, h, s, t, partition.Constraint{})
}

// minNetCutFixed is the fixed-aware net-cut solve: besides the standard
// net model, every Left-fixed vertex is welded to s and every
// Right-fixed vertex to t with uncuttable arcs, so the minimum cut
// keeps each pinned module on its side.
func minNetCutFixed(ctx context.Context, h *hypergraph.Hypergraph, s, t int, c partition.Constraint) (*partition.Bipartition, int64, error) {
	n := h.NumVertices()
	if s < 0 || s >= n || t < 0 || t >= n || s == t {
		return nil, 0, fmt.Errorf("flowpart: bad seed pair (%d, %d)", s, t)
	}
	// Node layout: modules 0..n-1, then e₁ = n + 2e, e₂ = n + 2e + 1.
	g := maxflow.New(n + 2*h.NumEdges())
	for e := 0; e < h.NumEdges(); e++ {
		e1 := n + 2*e
		e2 := e1 + 1
		g.AddArc(e1, e2, h.EdgeWeight(e))
		for _, v := range h.EdgePins(e) {
			g.AddArc(v, e1, maxflow.Inf)
			g.AddArc(e2, v, maxflow.Inf)
		}
	}
	for v := 0; v < n; v++ {
		switch f := c.Fixed(v); {
		case f == 0 && v != s:
			g.AddArc(s, v, maxflow.Inf)
		case f > 0 && v != t:
			g.AddArc(v, t, maxflow.Inf)
		}
	}
	value, err := g.MaxFlowCtx(ctx, s, t)
	if err != nil {
		return nil, 0, err
	}
	side := g.MinCutSourceSide(s)
	p := partition.New(n)
	for v := 0; v < n; v++ {
		if side[v] {
			p.Assign(v, partition.Left)
		} else {
			p.Assign(v, partition.Right)
		}
	}
	return p, value, nil
}

// drawSeedPair picks the (s, t) modules for one start. Unconstrained,
// it reproduces the historical draw sequence exactly. With fixed
// vertices, s is drawn among Left-fixed modules and t among Right-fixed
// ones when those sets are nonempty, so the welded arcs never collapse
// the pair onto one side.
func drawSeedPair(n int, rng *rand.Rand, c partition.Constraint) (int, int) {
	if !c.HasFixed() {
		s := rng.Intn(n)
		t := rng.Intn(n)
		for t == s {
			t = rng.Intn(n)
		}
		return s, t
	}
	var lefts, rights []int
	for v := 0; v < n; v++ {
		switch f := c.Fixed(v); {
		case f == 0:
			lefts = append(lefts, v)
		case f > 0:
			rights = append(rights, v)
		}
	}
	s := -1
	if len(lefts) > 0 {
		s = lefts[rng.Intn(len(lefts))]
	}
	t := -1
	if len(rights) > 0 {
		t = rights[rng.Intn(len(rights))]
	}
	for s == -1 || s == t {
		s = rng.Intn(n)
		if c.Fixed(s) > 0 {
			s = -1 // can't source from a Right-fixed module
			continue
		}
	}
	for t == -1 || t == s {
		t = rng.Intn(n)
		if c.Fixed(t) == 0 {
			t = -1 // can't sink at a Left-fixed module
		}
	}
	return s, t
}

// Bisect partitions h by minimizing the net cut over several random
// seed pairs (favoring far-apart modules would be a refinement; random
// pairs already certify the paper's complexity point). The result is
// the best valid bipartition found; balance is whatever the minimum
// cut dictates, as with the other unconstrained methods.
func Bisect(h *hypergraph.Hypergraph, opts Options) (*Result, error) {
	return BisectCtx(context.Background(), h, opts)
}

// BisectCtx is Bisect with cancellation: seed pairs fan out over
// opts.Parallelism workers, the context is polled between flow
// augmentations inside each solve, and the best cut among the pairs
// fully solved before ctx expired is returned. The first pair runs
// detached from the context (one exact solve is the price of the
// library-wide "a cancelled run still returns a result" contract);
// every later pair abandons its solve within one augmentation of the
// deadline instead of blocking until its flow completes.
func BisectCtx(ctx context.Context, h *hypergraph.Hypergraph, opts Options) (*Result, error) {
	n := h.NumVertices()
	if n < 2 {
		return nil, fmt.Errorf("flowpart: hypergraph has %d vertices; need at least 2", n)
	}
	if c := opts.Constraint; c.HasFixed() {
		// drawSeedPair needs at least one source-eligible and one
		// sink-eligible module; a fixed set covering every vertex on one
		// side admits no bipartition at all.
		srcOK, sinkOK := false, false
		for v := 0; v < n; v++ {
			if c.Fixed(v) <= 0 {
				srcOK = true // free or Left-fixed: source-eligible
			}
			if c.Fixed(v) != 0 {
				sinkOK = true // free or Right-fixed: sink-eligible
			}
		}
		if !srcOK || !sinkOK {
			return nil, fmt.Errorf("flowpart: fixed assignment pins every module to one side")
		}
	}
	best, es, err := engine.Run(ctx, engine.Spec[*Result]{
		Name:        "flow",
		Starts:      engine.NormalizeTo(opts.SeedPairs, 5),
		Parallelism: opts.Parallelism,
		Seed:        opts.Seed,
		Run: func(ctx context.Context, start int, rng *rand.Rand, _ *engine.Scratch) (*Result, error) {
			s, t := drawSeedPair(n, rng, opts.Constraint)
			// An exact cut has no usable partial result, so a deadline
			// mid-solve returns ctx's error, which the engine treats as
			// "this pair never ran" — the run degrades to the pairs
			// already solved instead of blocking past the deadline. The
			// first pair alone runs detached, preserving the library-wide
			// contract that a cancelled run still returns a result.
			if start == 0 {
				ctx = context.Background()
			}
			p, value, err := minNetCutFixed(ctx, h, s, t, opts.Constraint)
			if err != nil {
				return nil, err
			}
			if !opts.Constraint.IsZero() {
				// The flow respects the pins exactly but knows nothing of
				// the ε bound; the shared greedy repair finishes the job.
				if err := rebalance.Enforce(h, p, opts.Constraint); err != nil {
					return nil, fmt.Errorf("flowpart: %w", err)
				}
			}
			return &Result{Partition: p, CutSize: partition.CutSize(h, p), FlowValue: value}, nil
		},
		Better: func(a, b *Result) bool {
			if a.CutSize != b.CutSize {
				return a.CutSize < b.CutSize
			}
			return a.FlowValue < b.FlowValue
		},
		Cut: func(r *Result) int { return r.CutSize },
		Checkpoint: engine.BindCheckpoint(opts.Checkpoint,
			func(r *Result) []byte {
				return checkpoint.EncodeBest(r.Partition.Sides(), r.CutSize, r.FlowValue)
			},
			func(b []byte) (*Result, error) {
				p, cut, aux, err := checkpoint.DecodeBestFor(h, b, 1)
				if err != nil {
					return nil, fmt.Errorf("flowpart: %w", err)
				}
				return &Result{Partition: p, CutSize: cut, FlowValue: aux[0]}, nil
			}),
	})
	if err != nil {
		return nil, err
	}
	best.Engine = es
	return best, nil
}
