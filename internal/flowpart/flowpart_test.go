package flowpart

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fasthgp/internal/bruteforce"
	"fasthgp/internal/hypergraph"
	"fasthgp/internal/partition"
)

func mkHG(t *testing.T, n int, edges [][]int) *hypergraph.Hypergraph {
	t.Helper()
	h, err := hypergraph.FromEdges(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestMinNetCutBridge(t *testing.T) {
	// Two triangles joined by one net: separating a module of each
	// triangle must cut exactly the bridge.
	h := mkHG(t, 6, [][]int{
		{0, 1}, {1, 2}, {0, 2},
		{3, 4}, {4, 5}, {3, 5},
		{2, 3},
	})
	p, value, err := MinNetCut(h, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if value != 1 {
		t.Errorf("flow value = %d, want 1", value)
	}
	if got := partition.CutSize(h, p); got != 1 {
		t.Errorf("cut = %d, want 1", got)
	}
	if p.Side(0) != partition.Left || p.Side(5) != partition.Right {
		t.Error("seeds on wrong sides")
	}
}

func TestMinNetCutHyperedgeCountsOnce(t *testing.T) {
	// A single 4-pin net between the seeds: value must be 1, not the
	// number of crossing pins.
	h := mkHG(t, 4, [][]int{{0, 1, 2, 3}})
	_, value, err := MinNetCut(h, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if value != 1 {
		t.Errorf("flow value = %d, want 1 (net model must charge per net)", value)
	}
}

func TestMinNetCutWeighted(t *testing.T) {
	b := hypergraph.NewBuilder(3)
	e0 := b.AddEdge(0, 1)
	e1 := b.AddEdge(1, 2)
	b.SetEdgeWeight(e0, 5)
	b.SetEdgeWeight(e1, 2)
	h := b.MustBuild()
	_, value, err := MinNetCut(h, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if value != 2 {
		t.Errorf("flow value = %d, want 2 (cut the cheaper net)", value)
	}
}

func TestMinNetCutErrors(t *testing.T) {
	h := mkHG(t, 3, [][]int{{0, 1, 2}})
	if _, _, err := MinNetCut(h, 0, 0); err == nil {
		t.Error("accepted s == t")
	}
	if _, _, err := MinNetCut(h, -1, 1); err == nil {
		t.Error("accepted out-of-range seed")
	}
}

func TestBisectValid(t *testing.T) {
	h := mkHG(t, 8, [][]int{
		{0, 1}, {1, 2}, {2, 3}, {0, 3},
		{4, 5}, {5, 6}, {6, 7}, {4, 7},
		{3, 4},
	})
	res, err := Bisect(h, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Partition.Validate(h); err != nil {
		t.Fatal(err)
	}
	if res.CutSize != 1 {
		t.Errorf("cut = %d, want 1", res.CutSize)
	}
	if _, err := Bisect(mkHG(t, 1, [][]int{{0}}), Options{}); err == nil {
		t.Error("accepted 1-vertex hypergraph")
	}
}

// TestPropertyFlowCertifiesOptimum: minimizing MinNetCut over all seed
// pairs equals the brute-force unconstrained minimum cut.
func TestPropertyFlowCertifiesOptimum(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(6)
		m := 2 + rng.Intn(10)
		b := hypergraph.NewBuilder(n)
		for i := 0; i < m; i++ {
			size := 2 + rng.Intn(3)
			pins := make([]int, size)
			for j := range pins {
				pins[j] = rng.Intn(n)
			}
			b.AddEdge(pins...)
		}
		h, err := b.Build()
		if err != nil {
			return false
		}
		_, opt, err := bruteforce.MinCutUnconstrained(h)
		if err != nil {
			return false
		}
		best := int64(1 << 60)
		for s := 0; s < n; s++ {
			for tt := s + 1; tt < n; tt++ {
				_, v, err := MinNetCut(h, s, tt)
				if err != nil {
					return false
				}
				if v < best {
					best = v
				}
			}
		}
		return best == int64(opt)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestPropertyFlowValueMatchesRealizedCut: the flow value equals the
// weighted cut of the returned partition.
func TestPropertyFlowValueMatchesRealizedCut(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(8)
		m := 2 + rng.Intn(12)
		b := hypergraph.NewBuilder(n)
		for i := 0; i < m; i++ {
			size := 2 + rng.Intn(3)
			pins := make([]int, size)
			for j := range pins {
				pins[j] = rng.Intn(n)
			}
			e := b.AddEdge(pins...)
			b.SetEdgeWeight(e, int64(1+rng.Intn(4)))
		}
		h, err := b.Build()
		if err != nil {
			return false
		}
		s, tt := 0, n-1
		p, value, err := MinNetCut(h, s, tt)
		if err != nil {
			return false
		}
		return partition.WeightedCutSize(h, p) == value
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
