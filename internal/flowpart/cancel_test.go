package flowpart

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"fasthgp/internal/gen"
)

// TestCancelledRunReturnsWithinDeadline is the satellite regression:
// flowpart used to ignore ctx between flow augmentations, so in-flight
// pairs blocked far past the deadline until their exact solve finished.
// Now a run under a deadline must come back within the deadline plus
// one pair's slack (the detached first pair), with the pairs it
// certified so far.
func TestCancelledRunReturnsWithinDeadline(t *testing.T) {
	h, err := gen.Random(900, gen.RandomConfig{NumEdges: 2700, MinEdgeSize: 2, MaxEdgeSize: 5}, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	// Time one detached pair so the bound below is honest about the
	// machine it runs on.
	t0 := time.Now()
	if _, _, err := MinNetCut(h, 0, 899); err != nil {
		t.Fatal(err)
	}
	onePair := time.Since(t0)

	const budget = 30 * time.Millisecond
	ctx, cancel := context.WithTimeout(context.Background(), budget)
	defer cancel()
	t0 = time.Now()
	res, err := BisectCtx(ctx, h, Options{SeedPairs: 256, Seed: 2, Parallelism: 2})
	elapsed := time.Since(t0)
	if err != nil {
		t.Fatal(err)
	}
	// Before the fix this ran all 256 exact solves (hundreds of pair
	// times); now it is the budget, the detached pair, and slack.
	if limit := budget + 10*onePair + 2*time.Second; elapsed > limit {
		t.Fatalf("flowpart returned after %v against a %v deadline (one pair = %v)", elapsed, budget, onePair)
	}
	if res.Partition == nil {
		t.Fatal("cancelled run returned no partition")
	}
	if res.Engine.StartsRun >= 256 {
		t.Errorf("all %d pairs solved under a %v budget; cancellation did nothing", res.Engine.StartsRun, budget)
	}
	if !res.Engine.Cancelled {
		t.Error("Engine.Cancelled = false on a deadline-cut run")
	}
}

// TestPreCancelledBisect: the detached first pair still certifies a
// cut on an already-dead context — the library-wide contract — while
// every other pair is skipped.
func TestPreCancelledBisect(t *testing.T) {
	h, err := gen.Random(200, gen.RandomConfig{NumEdges: 600}, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := BisectCtx(ctx, h, Options{SeedPairs: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Engine.StartsRun != 1 || !res.Engine.Cancelled {
		t.Errorf("StartsRun/Cancelled = %d/%v, want 1/true", res.Engine.StartsRun, res.Engine.Cancelled)
	}
	if res.Partition == nil {
		t.Fatal("no partition from the detached first pair")
	}
}

// TestMinNetCutCtxBackgroundUnchanged guards the refactor: the
// context-free path must still produce the exact cut.
func TestMinNetCutCtxBackgroundUnchanged(t *testing.T) {
	h, err := gen.Random(60, gen.RandomConfig{NumEdges: 150}, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	p1, v1, err := MinNetCut(h, 0, 59)
	if err != nil {
		t.Fatal(err)
	}
	p2, v2, err := MinNetCutCtx(context.Background(), h, 0, 59)
	if err != nil {
		t.Fatal(err)
	}
	if v1 != v2 {
		t.Fatalf("flow value %d != %d", v1, v2)
	}
	for v := 0; v < h.NumVertices(); v++ {
		if p1.Side(v) != p2.Side(v) {
			t.Fatalf("partitions differ at vertex %d", v)
		}
	}
}
