package cutstate

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fasthgp/internal/hypergraph"
	"fasthgp/internal/partition"
)

func mkState(t *testing.T, n int, edges [][]int, sides ...partition.Side) *State {
	t.Helper()
	h, err := hypergraph.FromEdges(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(h, partition.FromSides(sides))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewRejectsIncomplete(t *testing.T) {
	h, err := hypergraph.FromEdges(2, [][]int{{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(h, partition.New(2)); err == nil {
		t.Error("accepted incomplete partition")
	}
}

func TestInitialAccounting(t *testing.T) {
	s := mkState(t, 4, [][]int{{0, 1}, {1, 2}, {2, 3}},
		partition.Left, partition.Left, partition.Right, partition.Right)
	if s.Cut() != 1 {
		t.Errorf("Cut = %d, want 1", s.Cut())
	}
	l, r := s.Weights()
	if l != 2 || r != 2 {
		t.Errorf("Weights = %d|%d", l, r)
	}
	if s.Imbalance() != 0 {
		t.Errorf("Imbalance = %d", s.Imbalance())
	}
	if nl, nr := s.Counts(1); nl != 1 || nr != 1 {
		t.Errorf("Counts(1) = %d,%d", nl, nr)
	}
}

func TestGainMatchesMove(t *testing.T) {
	s := mkState(t, 4, [][]int{{0, 1}, {1, 2}, {2, 3}},
		partition.Left, partition.Left, partition.Right, partition.Right)
	// Moving vertex 1 to the right: net {0,1} becomes cut (-1), net
	// {1,2} becomes uncut (+1) → gain 0.
	if g := s.Gain(1); g != 0 {
		t.Errorf("Gain(1) = %d, want 0", g)
	}
	// Moving vertex 0: net {0,1} becomes... 0 is alone? No: {0,1} both
	// left; moving 0 makes it cut → gain -1.
	if g := s.Gain(0); g != -1 {
		t.Errorf("Gain(0) = %d, want -1", g)
	}
	got := s.Move(0)
	if got != -1 {
		t.Errorf("Move(0) realized %d, want -1", got)
	}
	if s.Cut() != 2 {
		t.Errorf("Cut after move = %d, want 2", s.Cut())
	}
	if s.Side(0) != partition.Right {
		t.Error("vertex 0 not moved")
	}
	if err := s.Verify(); err != nil {
		t.Error(err)
	}
}

func TestSwapGainSharedNet(t *testing.T) {
	// Net {0,1} with 0 left and 1 right: swapping them keeps the net
	// cut, so SwapGain must be 0 even though Gain(0)+Gain(1) = 2.
	s := mkState(t, 2, [][]int{{0, 1}}, partition.Left, partition.Right)
	if g := s.Gain(0) + s.Gain(1); g != 2 {
		t.Fatalf("individual gains sum = %d, want 2", g)
	}
	if g := s.SwapGain(0, 1); g != 0 {
		t.Errorf("SwapGain = %d, want 0", g)
	}
	// SwapGain must not mutate.
	if s.Cut() != 1 || s.Side(0) != partition.Left {
		t.Error("SwapGain mutated the state")
	}
	if err := s.Verify(); err != nil {
		t.Error(err)
	}
}

// TestPropertyIncrementalAgreesWithScratch: a random walk of moves
// keeps every incremental quantity equal to a from-scratch recompute,
// and Gain always predicts Move.
func TestPropertyIncrementalAgreesWithScratch(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(12)
		m := 1 + rng.Intn(20)
		b := hypergraph.NewBuilder(n)
		for i := 0; i < m; i++ {
			size := 1 + rng.Intn(4)
			pins := make([]int, size)
			for j := range pins {
				pins[j] = rng.Intn(n)
			}
			b.AddEdge(pins...)
		}
		for v := 0; v < n; v++ {
			b.SetVertexWeight(v, int64(rng.Intn(5)))
		}
		h, err := b.Build()
		if err != nil {
			return false
		}
		p := partition.New(n)
		for v := 0; v < n; v++ {
			if rng.Intn(2) == 0 {
				p.Assign(v, partition.Left)
			} else {
				p.Assign(v, partition.Right)
			}
		}
		s, err := New(h, p)
		if err != nil {
			return false
		}
		for step := 0; step < 25; step++ {
			v := rng.Intn(n)
			predicted := s.Gain(v)
			realized := s.Move(v)
			if predicted != realized {
				return false
			}
			if s.Cut() != partition.CutSize(h, s.Partition()) {
				return false
			}
		}
		return s.Verify() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestPropertySwapGainExact: SwapGain equals the scratch difference.
func TestPropertySwapGainExact(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(10)
		m := 2 + rng.Intn(15)
		b := hypergraph.NewBuilder(n)
		for i := 0; i < m; i++ {
			size := 2 + rng.Intn(3)
			pins := make([]int, size)
			for j := range pins {
				pins[j] = rng.Intn(n)
			}
			b.AddEdge(pins...)
		}
		h, err := b.Build()
		if err != nil {
			return false
		}
		p := partition.New(n)
		for v := 0; v < n; v++ {
			if v%2 == 0 {
				p.Assign(v, partition.Left)
			} else {
				p.Assign(v, partition.Right)
			}
		}
		s, err := New(h, p)
		if err != nil {
			return false
		}
		a := 2 * rng.Intn(n/2)
		bb := 2*rng.Intn(n/2) + 1
		before := partition.CutSize(h, s.Partition())
		got := s.SwapGain(a, bb)
		q := s.Partition().Clone()
		q.Assign(a, partition.Right)
		q.Assign(bb, partition.Left)
		want := before - partition.CutSize(h, q)
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
