// Package cutstate maintains incremental bookkeeping for move-based
// partitioners (Kernighan–Lin, Fiduccia–Mattheyses, simulated
// annealing): per-net pin counts on each side of a bipartition, the
// current cutsize, side weights, and O(degree) move evaluation.
package cutstate

import (
	"fmt"

	"fasthgp/internal/hypergraph"
	"fasthgp/internal/partition"
)

// State tracks a complete bipartition of a hypergraph with incremental
// cut maintenance. All mutation goes through Move; the underlying
// partition must not be modified externally while a State is live.
type State struct {
	h *hypergraph.Hypergraph
	p *partition.Bipartition
	// left[e], right[e]: pins of net e on each side.
	left, right []int
	cut         int
	lw, rw      int64
}

// New builds a State from a complete bipartition. It returns an error
// when p leaves vertices unassigned.
func New(h *hypergraph.Hypergraph, p *partition.Bipartition) (*State, error) {
	if !p.IsComplete() {
		return nil, fmt.Errorf("cutstate: partition incomplete")
	}
	s := &State{
		h:     h,
		p:     p,
		left:  make([]int, h.NumEdges()),
		right: make([]int, h.NumEdges()),
	}
	for e := 0; e < h.NumEdges(); e++ {
		for _, v := range h.EdgePins(e) {
			if p.Side(v) == partition.Left {
				s.left[e]++
			} else {
				s.right[e]++
			}
		}
		if s.left[e] > 0 && s.right[e] > 0 {
			s.cut++
		}
	}
	for v := 0; v < h.NumVertices(); v++ {
		if p.Side(v) == partition.Left {
			s.lw += h.VertexWeight(v)
		} else {
			s.rw += h.VertexWeight(v)
		}
	}
	return s, nil
}

// Hypergraph returns the underlying hypergraph.
func (s *State) Hypergraph() *hypergraph.Hypergraph { return s.h }

// Partition returns the live partition (do not modify directly).
func (s *State) Partition() *partition.Bipartition { return s.p }

// Cut returns the current cutsize.
func (s *State) Cut() int { return s.cut }

// Side returns the side of vertex v.
func (s *State) Side(v int) partition.Side { return s.p.Side(v) }

// Weights returns the current side weights.
func (s *State) Weights() (left, right int64) { return s.lw, s.rw }

// Imbalance returns |weight(L) − weight(R)|.
func (s *State) Imbalance() int64 {
	if s.lw > s.rw {
		return s.lw - s.rw
	}
	return s.rw - s.lw
}

// Counts returns the pins of net e on each side.
func (s *State) Counts(e int) (left, right int) { return s.left[e], s.right[e] }

// Gain returns the cut decrease obtained by moving v to the other side
// (positive is good), in O(degree(v)). This is the Fiduccia–Mattheyses
// cell gain: a net leaves the cut when v is its last pin on its side,
// and enters the cut when the other side had no pins.
func (s *State) Gain(v int) int {
	gain := 0
	from := s.p.Side(v)
	for _, e := range s.h.VertexEdges(v) {
		f, t := s.left[e], s.right[e]
		if from == partition.Right {
			f, t = t, f
		}
		if f == 1 && t > 0 {
			gain++
		}
		if t == 0 && f > 1 {
			gain--
		}
	}
	return gain
}

// Move flips v to the other side, updating all bookkeeping, and returns
// the cut decrease realized (== Gain(v) evaluated beforehand).
func (s *State) Move(v int) int {
	before := s.cut
	from := s.p.Side(v)
	to := from.Opposite()
	for _, e := range s.h.VertexEdges(v) {
		wasCut := s.left[e] > 0 && s.right[e] > 0
		if from == partition.Left {
			s.left[e]--
			s.right[e]++
		} else {
			s.right[e]--
			s.left[e]++
		}
		isCut := s.left[e] > 0 && s.right[e] > 0
		if wasCut && !isCut {
			s.cut--
		} else if !wasCut && isCut {
			s.cut++
		}
	}
	s.p.Assign(v, to)
	w := s.h.VertexWeight(v)
	if from == partition.Left {
		s.lw -= w
		s.rw += w
	} else {
		s.rw -= w
		s.lw += w
	}
	return before - s.cut
}

// SwapGain returns the exact cut decrease of swapping a and b (on
// opposite sides), in O(deg(a)+deg(b)), without mutating the state.
// Unlike Gain(a)+Gain(b) it accounts for nets containing both.
func (s *State) SwapGain(a, b int) int {
	// Apply both moves, measure, and undo; Move is exact and O(degree).
	before := s.cut
	s.Move(a)
	s.Move(b)
	after := s.cut
	s.Move(a)
	s.Move(b)
	return before - after
}

// Verify recomputes everything from scratch and reports whether the
// incremental bookkeeping agrees; for tests.
func (s *State) Verify() error {
	fresh, err := New(s.h, s.p.Clone())
	if err != nil {
		return err
	}
	if fresh.cut != s.cut {
		return fmt.Errorf("cutstate: cut drifted: incremental %d, fresh %d", s.cut, fresh.cut)
	}
	if fresh.lw != s.lw || fresh.rw != s.rw {
		return fmt.Errorf("cutstate: weights drifted: incremental %d|%d, fresh %d|%d", s.lw, s.rw, fresh.lw, fresh.rw)
	}
	for e := 0; e < s.h.NumEdges(); e++ {
		if fresh.left[e] != s.left[e] || fresh.right[e] != s.right[e] {
			return fmt.Errorf("cutstate: net %d counts drifted", e)
		}
	}
	return nil
}
