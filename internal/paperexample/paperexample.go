// Package paperexample holds reconstructions of the worked examples in
// Kahng's "Fast Hypergraph Partition" (DAC 1989): the Figure-1
// hypergraph/intersection-graph pair and the Section-2 twelve-module
// netlist of Figure 4. The source scan is OCR-damaged, so these are
// faithful reconstructions (same sizes, same qualitative outcomes:
// final cutsize 2 achieved by two crossing signals) rather than
// verbatim copies; see DESIGN.md §2.
package paperexample

import (
	"strconv"

	"fasthgp/internal/hypergraph"
)

// Figure1 returns the 8-module, 5-net hypergraph of Figure 1, whose
// intersection graph is the path A–B–C–D–E.
func Figure1() *hypergraph.Hypergraph {
	b := hypergraph.NewBuilder(8)
	names := []string{"A", "B", "C", "D", "E"}
	pins := [][]int{
		{0, 1},
		{1, 2, 3},
		{3, 4},
		{4, 5, 6},
		{6, 7},
	}
	for i, p := range pins {
		e := b.AddEdge(p...)
		b.SetEdgeName(e, names[i])
	}
	for v := 0; v < 8; v++ {
		b.SetVertexName(v, string(rune('1'+v)))
	}
	return b.MustBuild()
}

// WorkedExample returns the Section-2 netlist: 12 modules (named
// "1".."12") and 12 signals a–l. Modules {1,2,4,8,11,12} form one
// logical cluster and {3,5,6,7,9,10} the other; signals c and h are the
// only ones spanning both, so the optimum bisection has cutsize 2.
func WorkedExample() *hypergraph.Hypergraph {
	b := hypergraph.NewBuilder(12)
	type net struct {
		name string
		pins []int // 1-indexed module numbers, as in the paper's table
	}
	nets := []net{
		{"a", []int{1, 2, 11}},
		{"b", []int{2, 4, 11}},
		{"c", []int{1, 3, 4}}, // spans both clusters
		{"d", []int{4, 11, 12}},
		{"e", []int{3, 6, 7}},
		{"f", []int{3, 5, 6}},
		{"g", []int{5, 9, 10}},
		{"h", []int{6, 7, 8, 9}}, // spans both clusters (module 8)
		{"i", []int{1, 8, 12}},
		{"j", []int{7, 9, 10}},
		{"k", []int{2, 8}},
		{"l", []int{5, 9}},
	}
	for _, nt := range nets {
		zero := make([]int, len(nt.pins))
		for i, p := range nt.pins {
			zero[i] = p - 1
		}
		e := b.AddEdge(zero...)
		b.SetEdgeName(e, nt.name)
	}
	for v := 0; v < 12; v++ {
		b.SetVertexName(v, itoa(v+1))
	}
	return b.MustBuild()
}

// WorkedExampleOptimalCut is the optimum bisection cutsize of the
// worked-example netlist (signals c and h cross).
const WorkedExampleOptimalCut = 2

// WorkedExampleClusters returns the two module clusters (0-indexed) of
// the worked example: the intended optimum bisection.
func WorkedExampleClusters() (left, right []int) {
	return []int{0, 1, 3, 7, 10, 11}, []int{2, 4, 5, 6, 8, 9}
}

func itoa(n int) string { return strconv.Itoa(n) }
