package core

// Edge-case coverage: degenerate thresholds, tiny inputs, and stat
// consistency that the main suite doesn't reach.

import (
	"math/rand"
	"testing"

	"fasthgp/internal/hypergraph"
	"fasthgp/internal/partition"
)

func TestThresholdExcludesEverything(t *testing.T) {
	// All nets at or above the threshold: G is empty and the zero-cut
	// packing path runs, yet every module must still be placed.
	h := mkHG(t, 6, [][]int{{0, 1, 2}, {3, 4, 5}, {0, 1, 2, 3}})
	res, err := Bipartition(h, Options{Threshold: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Partition.Validate(h); err != nil {
		t.Fatal(err)
	}
	if !res.Stats.Disconnected {
		t.Error("empty G should report Disconnected")
	}
	if res.Stats.GVertices != 0 || res.Stats.ExcludedNets != 3 {
		t.Errorf("stats = %+v", res.Stats)
	}
}

func TestTwoVertexHypergraph(t *testing.T) {
	h := mkHG(t, 2, [][]int{{0, 1}})
	res, err := Bipartition(h, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Partition.Validate(h); err != nil {
		t.Fatal(err)
	}
	if res.CutSize != 1 {
		t.Errorf("cut = %d, want 1 (the single net must split)", res.CutSize)
	}
}

func TestStartsClampedToOne(t *testing.T) {
	h := twoClusters(t, 5, 1)
	res, err := Bipartition(h, Options{Starts: -3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.StartsRun != 1 {
		t.Errorf("StartsRun = %d, want clamped 1", res.Stats.StartsRun)
	}
}

func TestBoundaryReportedSorted(t *testing.T) {
	h := twoClusters(t, 6, 2)
	res, err := Bipartition(h, Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Boundary); i++ {
		if res.Boundary[i] < res.Boundary[i-1] {
			t.Fatalf("Boundary not sorted: %v", res.Boundary)
		}
	}
	for i := 1; i < len(res.Losers); i++ {
		if res.Losers[i] < res.Losers[i-1] {
			t.Fatalf("Losers not sorted: %v", res.Losers)
		}
	}
}

func TestZeroWeightModules(t *testing.T) {
	b := hypergraph.NewBuilder(6)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(3, 4)
	b.AddEdge(4, 5)
	b.AddEdge(2, 3)
	for v := 0; v < 6; v++ {
		b.SetVertexWeight(v, 0)
	}
	h := b.MustBuild()
	for _, comp := range []Completion{CompletionGreedy, CompletionWeighted} {
		res, err := Bipartition(h, Options{Seed: 2, Completion: comp})
		if err != nil {
			t.Fatalf("%v: %v", comp, err)
		}
		if err := res.Partition.Validate(h); err != nil {
			t.Fatalf("%v: %v", comp, err)
		}
	}
}

func TestMajorityFallbackDirect(t *testing.T) {
	// Exercise majorityFallback directly on a crafted partial.
	h := twoClusters(t, 5, 1)
	ig := buildIG(h)
	u, v, _ := ig.G.LongestBFSPath(newRng(3))
	pb := PartialFromCut(h, ig, u, v)
	p := majorityFallback(h, pb)
	if !p.IsComplete() {
		t.Error("majorityFallback left modules unassigned")
	}
	l, r, _ := p.Counts()
	if l == 0 || r == 0 {
		t.Errorf("majorityFallback one-sided: %d|%d", l, r)
	}
	_ = partition.CutSize(h, p)
}

// newRng is a tiny helper for the edge tests.
func newRng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
