package core

import (
	"sort"

	"fasthgp/internal/graph"
	"fasthgp/internal/hypergraph"
	"fasthgp/internal/intersect"
	"fasthgp/internal/partition"
)

// BoundaryGraph is the bipartite graph G′ on the boundary set of a cut
// in the intersection graph: its vertices are the boundary nets and its
// edges are exactly the G-edges joining boundary nets on opposite sides
// of the cut (same-side edges are deleted, making it bipartite by
// construction).
type BoundaryGraph struct {
	// G is the bipartite boundary graph; vertex k of G is net Nets[k].
	G *graph.Graph
	// Nets maps boundary-graph vertex → hypergraph net index.
	Nets []int
	// SideOf maps boundary-graph vertex → its side of the G-cut.
	SideOf []partition.Side
}

// Partial is a partial bipartition of the hypergraph induced by a cut
// of its intersection graph, before boundary completion. See the
// paper's Figure 2: the non-boundary nets of each side place all of
// their modules; only the boundary remains.
type Partial struct {
	// IG is the intersection-graph construction this cut lives in.
	IG *intersect.Result
	// NetSide is the side of every G-vertex under the double-BFS cut.
	NetSide []partition.Side
	// IsBoundary flags the boundary G-vertices.
	IsBoundary []bool
	// Boundary is the bipartite boundary graph G′.
	Boundary *BoundaryGraph
	// U and V are the G-vertex BFS sources (the pseudo-diameter pair).
	U, V int
}

// PartialFromCut cuts the intersection graph by double BFS from
// G-vertices u and v and assembles the induced partial bipartition.
// The intersection graph must be connected (Bipartition handles the
// disconnected case separately); every G-vertex is then labeled.
func PartialFromCut(h *hypergraph.Hypergraph, ig *intersect.Result, u, v int) *Partial {
	return PartialFromCutPolicy(h, ig, u, v, false)
}

// PartialFromCutPolicy is PartialFromCut with an explicit frontier tie
// policy: balanced=false expands the two BFS frontiers in strict
// alternation (the paper's prescription); balanced=true expands the
// side that has claimed fewer vertices (ablated in the benchmarks).
func PartialFromCutPolicy(h *hypergraph.Hypergraph, ig *intersect.Result, u, v int, balanced bool) *Partial {
	g := ig.G
	var raw []int
	if balanced {
		raw = g.DoubleBFSSidesBalanced(u, v)
	} else {
		raw = g.DoubleBFSSides(u, v)
	}
	n := g.NumVertices()
	pb := &Partial{
		IG:         ig,
		NetSide:    make([]partition.Side, n),
		IsBoundary: make([]bool, n),
		U:          u,
		V:          v,
	}
	for i, s := range raw {
		switch s {
		case 0:
			pb.NetSide[i] = partition.Left
		case 1:
			pb.NetSide[i] = partition.Right
		default:
			// Unreachable vertices cannot occur on a connected G; treat
			// defensively as Left so downstream stays total.
			pb.NetSide[i] = partition.Left
		}
	}
	for i := 0; i < n; i++ {
		for _, j := range g.Neighbors(i) {
			if pb.NetSide[j] != pb.NetSide[i] {
				pb.IsBoundary[i] = true
				break
			}
		}
	}
	pb.Boundary = buildBoundaryGraph(ig, pb.NetSide, pb.IsBoundary)
	return pb
}

// buildBoundaryGraph extracts G′ from the cut labeling.
func buildBoundaryGraph(ig *intersect.Result, side []partition.Side, isBoundary []bool) *BoundaryGraph {
	g := ig.G
	bgIndex := make([]int, g.NumVertices())
	bg := &BoundaryGraph{}
	for i := 0; i < g.NumVertices(); i++ {
		if isBoundary[i] {
			bgIndex[i] = len(bg.Nets)
			bg.Nets = append(bg.Nets, ig.NetOf[i])
			bg.SideOf = append(bg.SideOf, side[i])
		} else {
			bgIndex[i] = -1
		}
	}
	b := graph.NewBuilder(len(bg.Nets))
	for i := 0; i < g.NumVertices(); i++ {
		if !isBoundary[i] {
			continue
		}
		for _, j := range g.Neighbors(i) {
			// Keep only cross edges; same-side edges are deleted, which
			// is what makes G′ bipartite.
			if j > i && isBoundary[j] && side[j] != side[i] {
				b.AddEdge(bgIndex[i], bgIndex[j])
			}
		}
	}
	g2, err := b.Build()
	if err != nil {
		panic("core: boundary graph build: " + err.Error())
	}
	bg.G = g2
	return bg
}

// BaseAssignment places the modules of every non-boundary net on that
// net's side and returns the resulting partial module bipartition along
// with the committed weight per side. Modules of boundary nets stay
// Unassigned until completion.
func (pb *Partial) BaseAssignment(h *hypergraph.Hypergraph) (p *partition.Bipartition, leftW, rightW int64) {
	p = partition.New(h.NumVertices())
	for i, netID := range pb.IG.NetOf {
		if pb.IsBoundary[i] {
			continue
		}
		s := pb.NetSide[i]
		for _, m := range h.EdgePins(netID) {
			if p.Side(m) == partition.Unassigned {
				p.Assign(m, s)
				if s == partition.Left {
					leftW += h.VertexWeight(m)
				} else {
					rightW += h.VertexWeight(m)
				}
			}
		}
	}
	return p, leftW, rightW
}

// CommitWinners assigns the modules of every winner net to its side of
// the cut and returns the loser nets (ascending by net index). Modules
// already placed (by non-boundary nets or earlier winners) are left
// untouched; by the independence of the winner set this never
// conflicts.
func (pb *Partial) CommitWinners(h *hypergraph.Hypergraph, p *partition.Bipartition, winner []bool) (losers []int) {
	bg := pb.Boundary
	for k := range bg.Nets {
		if !winner[k] {
			losers = append(losers, bg.Nets[k])
			continue
		}
		s := bg.SideOf[k]
		for _, m := range h.EdgePins(bg.Nets[k]) {
			if p.Side(m) == partition.Unassigned {
				p.Assign(m, s)
			}
		}
	}
	sort.Ints(losers)
	return losers
}

// Apply completes the partial bipartition under the given winner flags
// (one per boundary-graph vertex): non-boundary nets place their
// modules, winners place theirs, and the loser list is returned.
// Leftover modules remain Unassigned; see assignLeftovers.
func (pb *Partial) Apply(h *hypergraph.Hypergraph, winner []bool) (*partition.Bipartition, []int) {
	p, _, _ := pb.BaseAssignment(h)
	losers := pb.CommitWinners(h, p, winner)
	return p, losers
}

// BoundaryNets returns the boundary net indices, ascending.
func (pb *Partial) BoundaryNets() []int {
	nets := append([]int(nil), pb.Boundary.Nets...)
	sort.Ints(nets)
	return nets
}
