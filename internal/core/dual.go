package core

import (
	"sort"

	"fasthgp/internal/engine"
	"fasthgp/internal/graph"
	"fasthgp/internal/hypergraph"
	"fasthgp/internal/intersect"
	"fasthgp/internal/partition"
)

// The lease helpers draw a buffer from the multi-start scratch arena
// when one is available and fall back to a fresh allocation otherwise,
// so the public entry points (nil scratch) keep their allocate-and-
// forget semantics while the engine's hot path reuses everything.

func leaseInts(s *engine.Scratch, n int) []int {
	if s != nil {
		return s.Ints(n)
	}
	return make([]int, n)
}

func leaseBools(s *engine.Scratch, n int) []bool {
	if s != nil {
		return s.Bools(n)
	}
	return make([]bool, n)
}

func leaseSides(s *engine.Scratch, n int) []partition.Side {
	if s != nil {
		return s.Sides(n)
	}
	return make([]partition.Side, n)
}

// BoundaryGraph is the bipartite graph G′ on the boundary set of a cut
// in the intersection graph: its vertices are the boundary nets and its
// edges are exactly the G-edges joining boundary nets on opposite sides
// of the cut (same-side edges are deleted, making it bipartite by
// construction).
type BoundaryGraph struct {
	// G is the bipartite boundary graph; vertex k of G is net Nets[k].
	G *graph.Graph
	// Nets maps boundary-graph vertex → hypergraph net index.
	Nets []int
	// SideOf maps boundary-graph vertex → its side of the G-cut.
	SideOf []partition.Side
}

// Partial is a partial bipartition of the hypergraph induced by a cut
// of its intersection graph, before boundary completion. See the
// paper's Figure 2: the non-boundary nets of each side place all of
// their modules; only the boundary remains.
type Partial struct {
	// IG is the intersection-graph construction this cut lives in.
	IG *intersect.Result
	// NetSide is the side of every G-vertex under the double-BFS cut.
	NetSide []partition.Side
	// IsBoundary flags the boundary G-vertices.
	IsBoundary []bool
	// Boundary is the bipartite boundary graph G′.
	Boundary *BoundaryGraph
	// U and V are the G-vertex BFS sources (the pseudo-diameter pair).
	U, V int
}

// PartialFromCut cuts the intersection graph by double BFS from
// G-vertices u and v and assembles the induced partial bipartition.
// The intersection graph must be connected (Bipartition handles the
// disconnected case separately); every G-vertex is then labeled.
func PartialFromCut(h *hypergraph.Hypergraph, ig *intersect.Result, u, v int) *Partial {
	return PartialFromCutPolicy(h, ig, u, v, false)
}

// PartialFromCutPolicy is PartialFromCut with an explicit frontier tie
// policy: balanced=false expands the two BFS frontiers in strict
// alternation (the paper's prescription); balanced=true expands the
// side that has claimed fewer vertices (ablated in the benchmarks).
func PartialFromCutPolicy(h *hypergraph.Hypergraph, ig *intersect.Result, u, v int, balanced bool) *Partial {
	return partialFromCut(h, ig, u, v, balanced, nil)
}

// partialFromCut is PartialFromCutPolicy drawing every working buffer —
// the double-BFS side labeling and frontiers, the net-side and boundary
// flags, and the boundary graph's CSR itself — from the multi-start
// scratch arena when one is available. A Partial built with a non-nil
// scratch must not outlive the start that leased it (the engine zeroes
// and reuses the buffers on Release); runOnce copies what it keeps.
func partialFromCut(h *hypergraph.Hypergraph, ig *intersect.Result, u, v int, balanced bool, s *engine.Scratch) *Partial {
	return partialFromCutWorkers(h, ig, u, v, balanced, 1, s)
}

// partialFromCutWorkers is partialFromCut with an intra-start worker
// count for the double BFS. workers > 1 routes the strict-alternation
// policy through the frontier-chunked parallel kernel, whose labeling
// is bit-for-bit identical to the serial one; the balanced policy has
// no parallel variant and always runs serial.
func partialFromCutWorkers(h *hypergraph.Hypergraph, ig *intersect.Result, u, v int, balanced bool, workers int, s *engine.Scratch) *Partial {
	g := ig.G
	n := g.NumVertices()
	sideBuf := leaseInts(s, n)
	f0 := leaseInts(s, n)[:0]
	f1 := leaseInts(s, n)[:0]
	next := leaseInts(s, n)[:0]
	var raw []int
	switch {
	case balanced:
		raw = g.DoubleBFSSidesBalancedInto(u, v, sideBuf, f0, f1, next)
	case workers > 1:
		raw = g.DoubleBFSSidesParallelInto(u, v, workers, sideBuf, f0, f1, next, nil)
	default:
		raw = g.DoubleBFSSidesInto(u, v, sideBuf, f0, f1, next)
	}
	pb := &Partial{
		IG:         ig,
		NetSide:    leaseSides(s, n),
		IsBoundary: leaseBools(s, n),
		U:          u,
		V:          v,
	}
	for i, s := range raw {
		switch s {
		case 0:
			pb.NetSide[i] = partition.Left
		case 1:
			pb.NetSide[i] = partition.Right
		default:
			// Unreachable vertices cannot occur on a connected G; treat
			// defensively as Left so downstream stays total.
			pb.NetSide[i] = partition.Left
		}
	}
	for i := 0; i < n; i++ {
		for _, j := range g.Neighbors(i) {
			if pb.NetSide[j] != pb.NetSide[i] {
				pb.IsBoundary[i] = true
				break
			}
		}
	}
	pb.Boundary = buildBoundaryGraph(ig, pb.NetSide, pb.IsBoundary, s)
	return pb
}

// buildBoundaryGraph extracts G′ from the cut labeling by direct CSR
// construction: one counting pass over the boundary rows, a prefix sum,
// and one emission pass. Only cross edges are kept — same-side edges
// are deleted, which is what makes G′ bipartite. Because boundary-graph
// indices are assigned in ascending G order and Neighbors lists are
// sorted, every emitted row is already sorted, so the CSR needs no
// sort or dedup pass (G is simple, so no duplicates can arise).
func buildBoundaryGraph(ig *intersect.Result, side []partition.Side, isBoundary []bool, s *engine.Scratch) *BoundaryGraph {
	g := ig.G
	n := g.NumVertices()
	bgIndex := leaseInts(s, n)
	bg := &BoundaryGraph{}
	nb := 0
	for i := 0; i < n; i++ {
		if isBoundary[i] {
			bgIndex[i] = nb
			nb++
		} else {
			bgIndex[i] = -1
		}
	}
	if nb > 0 {
		bg.Nets = leaseInts(s, nb)
		bg.SideOf = leaseSides(s, nb)
	}
	start := leaseInts(s, nb+1)
	for i := 0; i < n; i++ {
		bi := bgIndex[i]
		if bi < 0 {
			continue
		}
		bg.Nets[bi] = ig.NetOf[i]
		bg.SideOf[bi] = side[i]
		deg := 0
		for _, j := range g.Neighbors(i) {
			if isBoundary[j] && side[j] != side[i] {
				deg++
			}
		}
		start[bi+1] = deg
	}
	for k := 0; k < nb; k++ {
		start[k+1] += start[k]
	}
	adj := leaseInts(s, start[nb])
	cursor := leaseInts(s, nb)
	copy(cursor, start[:nb])
	for i := 0; i < n; i++ {
		bi := bgIndex[i]
		if bi < 0 {
			continue
		}
		for _, j := range g.Neighbors(i) {
			if isBoundary[j] && side[j] != side[i] {
				adj[cursor[bi]] = bgIndex[j]
				cursor[bi]++
			}
		}
	}
	bg.G = graph.UncheckedCSR(start, adj)
	return bg
}

// BaseAssignment places the modules of every non-boundary net on that
// net's side and returns the resulting partial module bipartition along
// with the committed weight per side. Modules of boundary nets stay
// Unassigned until completion.
func (pb *Partial) BaseAssignment(h *hypergraph.Hypergraph) (p *partition.Bipartition, leftW, rightW int64) {
	p = partition.New(h.NumVertices())
	for i, netID := range pb.IG.NetOf {
		if pb.IsBoundary[i] {
			continue
		}
		s := pb.NetSide[i]
		for _, m := range h.EdgePins(netID) {
			if p.Side(m) == partition.Unassigned {
				p.Assign(m, s)
				if s == partition.Left {
					leftW += h.VertexWeight(m)
				} else {
					rightW += h.VertexWeight(m)
				}
			}
		}
	}
	return p, leftW, rightW
}

// CommitWinners assigns the modules of every winner net to its side of
// the cut and returns the loser nets (ascending by net index). Modules
// already placed (by non-boundary nets or earlier winners) are left
// untouched; by the independence of the winner set this never
// conflicts.
func (pb *Partial) CommitWinners(h *hypergraph.Hypergraph, p *partition.Bipartition, winner []bool) (losers []int) {
	bg := pb.Boundary
	for k := range bg.Nets {
		if !winner[k] {
			losers = append(losers, bg.Nets[k])
			continue
		}
		s := bg.SideOf[k]
		for _, m := range h.EdgePins(bg.Nets[k]) {
			if p.Side(m) == partition.Unassigned {
				p.Assign(m, s)
			}
		}
	}
	sort.Ints(losers)
	return losers
}

// Apply completes the partial bipartition under the given winner flags
// (one per boundary-graph vertex): non-boundary nets place their
// modules, winners place theirs, and the loser list is returned.
// Leftover modules remain Unassigned; see assignLeftovers.
func (pb *Partial) Apply(h *hypergraph.Hypergraph, winner []bool) (*partition.Bipartition, []int) {
	p, _, _ := pb.BaseAssignment(h)
	losers := pb.CommitWinners(h, p, winner)
	return p, losers
}

// BoundaryNets returns the boundary net indices, ascending.
func (pb *Partial) BoundaryNets() []int {
	nets := append([]int(nil), pb.Boundary.Nets...)
	sort.Ints(nets)
	return nets
}
