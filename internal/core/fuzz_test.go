package core

// FuzzCompleteCut drives Algorithm I over arbitrary byte-encoded small
// hypergraphs and checks the paper's completion guarantees
// differentially: the exact König completion can never lose to the
// greedy Complete-Cut under the same start path, greedy stays within
// the boundary-size bound of exact, and every result must satisfy the
// shared invariant oracle with its claimed cutsize.

import (
	"testing"

	"fasthgp/internal/hypergraph"
	"fasthgp/internal/verify"
)

// fuzzHypergraph decodes data into a small hypergraph: byte 0 picks
// n ∈ [2,12], then each edge is a size byte (2–4 pins) followed by
// that many pin bytes reduced mod n. Duplicate pins within an edge are
// dropped; degenerate edges are skipped; an edgeless decode gets one
// fallback edge so Algorithm I always has work.
func fuzzHypergraph(data []byte) *hypergraph.Hypergraph {
	n := 2
	if len(data) > 0 {
		n += int(data[0] % 11)
	}
	b := hypergraph.NewBuilder(n)
	i := 1
	for i < len(data) && b.NumEdges() < 64 {
		size := 2 + int(data[i]%3)
		i++
		seen := map[int]bool{}
		pins := make([]int, 0, size)
		for j := 0; j < size && i < len(data); j++ {
			p := int(data[i]) % n
			i++
			if !seen[p] {
				seen[p] = true
				pins = append(pins, p)
			}
		}
		if len(pins) >= 2 {
			b.AddEdge(pins...)
		}
	}
	if b.NumEdges() == 0 {
		b.AddEdge(0, 1)
	}
	return b.MustBuild()
}

func FuzzCompleteCut(f *testing.F) {
	f.Add([]byte{4, 2, 0, 1, 2, 1, 2, 2, 2, 3})
	f.Add([]byte{10, 3, 0, 1, 2, 3, 4, 5, 6, 2, 7, 8, 2, 8, 9})
	f.Add([]byte{0})
	f.Add([]byte("arbitrary text also decodes"))
	f.Fuzz(func(t *testing.T, data []byte) {
		h := fuzzHypergraph(data)
		run := func(c Completion) *Result {
			res, err := Bipartition(h, Options{Starts: 1, Seed: 7, Completion: c})
			if err != nil {
				t.Fatalf("%v on %v: %v", c, h, err)
			}
			if _, err := verify.CheckCut(h, res.Partition, res.CutSize); err != nil {
				t.Fatalf("%v on %v: oracle: %v", c, h, err)
			}
			return res
		}
		greedy := run(CompletionGreedy)
		exact := run(CompletionExact)
		weighted := run(CompletionWeighted)

		// Same seed and Starts: all three rules complete the identical
		// start path over the identical boundary graph, so the paper's
		// completion theorem must hold on the loser counts. (The final
		// recomputed cutsizes are NOT ordered: module packing after
		// completion can leave a nominal loser uncut, in either rule's
		// favor — the theorem speaks only about the completion.)
		if len(exact.Losers) > len(greedy.Losers) {
			t.Errorf("exact completion chose %d losers > greedy %d on %v",
				len(exact.Losers), len(greedy.Losers), h)
		}
		// Complete-Cut is within one of optimum per connected component
		// of the boundary graph; components are bounded by |B|.
		if len(greedy.Losers) > len(exact.Losers)+greedy.Stats.BoundarySize {
			t.Errorf("greedy losers %d exceed exact %d + boundary %d on %v",
				len(greedy.Losers), len(exact.Losers), greedy.Stats.BoundarySize, h)
		}
		// Every crossing net is a loser (threshold off, no repair).
		for _, res := range []*Result{greedy, exact, weighted} {
			if !res.Stats.Repaired && res.CutSize > len(res.Losers) {
				t.Errorf("cut %d exceeds loser count %d on %v", res.CutSize, len(res.Losers), h)
			}
		}
	})
}
