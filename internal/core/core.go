// Package core implements Algorithm I of Kahng's "Fast Hypergraph
// Partition" (DAC 1989): an O(n²) heuristic for hypergraph min-cut
// bipartitioning based on the intersection graph G dual to the input
// hypergraph H.
//
// The pipeline, following Section 2 of the paper:
//
//  1. Build the intersection graph G (one vertex per net; nets adjacent
//     iff they share a module), optionally excluding nets at or above a
//     size threshold (Section 3 argues k ≥ 10 is safe).
//  2. Pick a random vertex u of G and BFS to a furthest vertex v — a
//     "random longest BFS path", which for bounded-degree random graphs
//     has depth diam(G) − O(1) with probability near 1.
//  3. Run BFS from u and v simultaneously until the expanding sets meet;
//     this cuts G into V_L and V_R and identifies the boundary set B of
//     G-vertices adjacent across the cut. Every net not in B has all of
//     its modules placed on one side: a partial bipartition of H that is
//     expected to place all but a constant proportion of the modules.
//  4. Build the bipartite boundary graph G′ on B (cross edges only) and
//     complete the partition: each boundary net becomes a winner (stays
//     uncut; its modules go to its side) or a loser (crosses the cut).
//     The paper's Complete-Cut greedy — repeatedly take a minimum-degree
//     vertex as winner and mark its neighbours losers — is within one of
//     the optimum completion per connected component of G′. The library
//     additionally offers the exact optimum completion (König minimum
//     vertex cover) and the weight-balancing "engineer's method".
//  5. Modules belonging only to losers (or to no included net) are
//     packed onto the lighter side.
//
// Multi-start (Options.Starts) repeats steps 2–5 over several random
// longest paths and keeps the best result, as in the paper's test runs
// (which examined 50 random longest paths).
package core

import (
	"context"
	"fmt"
	"math/rand"

	"fasthgp/internal/checkpoint"
	"fasthgp/internal/engine"
	"fasthgp/internal/hypergraph"
	"fasthgp/internal/intersect"
	"fasthgp/internal/partition"
	"fasthgp/internal/rebalance"
)

// Completion selects the rule used to partition the boundary set.
type Completion int

// Completion rules.
const (
	// CompletionGreedy is the paper's Complete-Cut rule: repeatedly pick
	// a minimum-degree vertex of the boundary graph as a winner, mark
	// its neighbours losers, delete all of them. Provably within one of
	// optimum per connected component of the boundary graph.
	CompletionGreedy Completion = iota
	// CompletionExact computes the optimum completion: losers form a
	// minimum vertex cover of the bipartite boundary graph, found via
	// Hopcroft–Karp matching and König's theorem. O(E·√V) on the
	// boundary graph.
	CompletionExact
	// CompletionWeighted is the paper's "engineer's method" (Section 3):
	// the next winner is the smallest-degree remaining vertex on the
	// side of the partial bipartition currently having less total
	// module weight, trading slightly higher cutsize for weight balance.
	CompletionWeighted
)

// String names the completion rule.
func (c Completion) String() string {
	switch c {
	case CompletionGreedy:
		return "greedy"
	case CompletionExact:
		return "exact"
	case CompletionWeighted:
		return "weighted"
	default:
		return fmt.Sprintf("Completion(%d)", int(c))
	}
}

// Objective selects what multi-start minimizes.
type Objective int

// Objectives.
const (
	// MinCut minimizes the number of crossing nets (ties: lower weight
	// imbalance). The paper's primary objective.
	MinCut Objective = iota
	// MinQuotient minimizes cut / min(|V_L|,|V_R|), the quotient-cut
	// metric the paper's Section 5 proposes studying.
	MinQuotient
)

// String names the objective.
func (o Objective) String() string {
	if o == MinQuotient {
		return "quotient"
	}
	return "cut"
}

// Options configures Algorithm I.
type Options struct {
	// Starts is the number of random longest BFS paths to examine
	// (Section 5 extension; the paper's tests used 50). Values < 1 are
	// treated as 1.
	Starts int
	// Threshold excludes nets with at least this many pins from the
	// intersection graph (0 disables). The paper's Section 3 shows
	// thresholds as low as 10 cost very little expected cutsize.
	Threshold int
	// Completion selects the boundary completion rule.
	Completion Completion
	// Objective selects what multi-start minimizes.
	Objective Objective
	// BalancedBFS switches the double-BFS frontier policy from strict
	// alternation (the paper's prescription, the default) to
	// smaller-side-first expansion. Ablated in the benchmark suite.
	BalancedBFS bool
	// Seed seeds the random source; runs are deterministic per seed.
	// Each start draws from its own stream (see internal/engine), so
	// the result does not depend on Parallelism.
	Seed int64
	// Parallelism is the number of workers running starts concurrently;
	// values < 1 mean GOMAXPROCS. It affects wall time only, never the
	// result.
	Parallelism int
	// KernelWorkers is the number of workers the per-start kernels (the
	// intersection-graph counting passes and the double BFS) may use
	// inside a single start. Values < 1 mean 1 — serial kernels, the
	// historical behavior. Any value produces bit-for-bit identical
	// results: the parallel kernels reproduce the serial visit order
	// exactly (see internal/graph and internal/intersect).
	KernelWorkers int
	// Constraint is the unified balance contract. With fixed vertices the
	// double-BFS endpoints are drawn from nets touching Left- and
	// Right-fixed modules (so the G-cut grows outward from the pinned
	// regions), and every start's completed partition is repaired onto
	// the contract — pins restored, sides within Constraint.MaxSideWeight
	// — before scoring. The zero value preserves historical behavior
	// exactly.
	Constraint partition.Constraint
	// Checkpoint, when non-nil, journals every completed start into its
	// sink and resumes from its recovered state — see
	// internal/checkpoint. The resumed partition and cut are identical
	// to an uninterrupted run's; the per-start diagnostics (Losers,
	// Boundary, BFSDepth, BoundarySize, Repaired) are not journaled and
	// are zero when the winning start was resumed rather than
	// re-executed. Disconnected instances bypass the engine (the
	// outcome is start-independent and instant), so no journal is
	// written for them.
	Checkpoint *engine.CheckpointIO
}

// Stats reports per-run diagnostics matching the quantities the paper's
// analysis tracks.
type Stats struct {
	// GVertices and GEdges describe the (filtered) intersection graph.
	GVertices, GEdges int
	// ExcludedNets is the number of nets dropped by the size threshold.
	ExcludedNets int
	// Disconnected reports that the intersection graph was disconnected,
	// i.e. a zero-cut partition of the included nets exists (the paper's
	// pathological c = 0 case); BFS "finds the unconnectedness".
	Disconnected bool
	// BFSDepth is the depth of the best start's longest BFS path — the
	// pseudo-diameter estimate of G.
	BFSDepth int
	// BoundarySize is the size |B| of the best start's boundary set.
	BoundarySize int
	// StartsRun is the number of starts actually executed.
	StartsRun int
	// Repaired reports that the best start needed the degenerate-side
	// repair: the completion placed every module on one side (possible
	// when the G-cut leaves no non-boundary nets on a side — the
	// paper's theorem explicitly assumes "non-empty node sets on either
	// side of the boundary"). When set, Losers no longer upper-bounds
	// the crossing nets.
	Repaired bool
	// Engine reports how the multi-start engine executed the run:
	// starts completed, winning start index, per-start cuts, wall and
	// summed per-start CPU time, and whether cancellation cut the run
	// short.
	Engine engine.Stats
}

// Result is the outcome of Algorithm I.
type Result struct {
	// Partition is the final complete bipartition of the modules.
	Partition *partition.Bipartition
	// CutSize is the number of nets of the input hypergraph crossing
	// Partition, recomputed from scratch (it therefore includes any
	// threshold-excluded nets that cross).
	CutSize int
	// Losers lists the boundary nets the completion chose to cross the
	// cut, ascending by net index. Every crossing included net is a
	// loser, though a loser may coincidentally end up uncut when its
	// modules are all claimed by one side.
	Losers []int
	// Boundary lists the boundary-set nets of the winning start,
	// ascending by net index.
	Boundary []int
	// Stats carries diagnostics.
	Stats Stats
}

// Bipartition runs Algorithm I on h and returns the best result over
// opts.Starts random longest paths.
//
// Errors are returned only for degenerate inputs on which no proper
// bipartition exists (fewer than two vertices).
func Bipartition(h *hypergraph.Hypergraph, opts Options) (*Result, error) {
	return BipartitionCtx(context.Background(), h, opts)
}

// BipartitionCtx is Bipartition with cancellation: starts fan out over
// opts.Parallelism workers, and when ctx expires the best result among
// the starts that completed is returned (start 0 always runs), with
// Stats.Engine.Cancelled set, rather than an error.
func BipartitionCtx(ctx context.Context, h *hypergraph.Hypergraph, opts Options) (*Result, error) {
	if h.NumVertices() < 2 {
		return nil, fmt.Errorf("core: hypergraph has %d vertices; need at least 2 to bipartition", h.NumVertices())
	}

	ig := intersect.Build(h, intersect.Options{
		Threshold:   opts.Threshold,
		Parallelism: engine.NormalizeKernelWorkers(opts.KernelWorkers),
	})
	baseStats := Stats{
		GVertices:    ig.G.NumVertices(),
		GEdges:       ig.G.NumEdges(),
		ExcludedNets: len(ig.Excluded),
	}

	// Degenerate or disconnected intersection graphs admit a zero-cut
	// partition of the included nets; handle them by component packing
	// rather than BFS. The outcome is start-independent, so the engine
	// is bypassed and a single synthetic start is reported.
	if ig.G.NumVertices() == 0 || !ig.G.IsConnected() {
		res := packComponents(h, ig)
		if !opts.Constraint.IsZero() {
			if err := rebalance.Enforce(h, res.Partition, opts.Constraint); err != nil {
				return nil, fmt.Errorf("core: %w", err)
			}
			res.CutSize = partition.CutSize(h, res.Partition)
		}
		res.Stats = baseStats
		res.Stats.Disconnected = true
		res.Stats.StartsRun = 1
		res.Stats.Engine = engine.Stats{
			StartsRequested: 1,
			StartsRun:       1,
			BestStart:       0,
			Cuts:            []int{res.CutSize},
			Parallelism:     1,
		}
		return res, nil
	}

	best, es, err := engine.Run(ctx, engine.Spec[*Result]{
		Name:        "algo1",
		Starts:      opts.Starts,
		Parallelism: opts.Parallelism,
		Seed:        opts.Seed,
		Run: func(_ context.Context, _ int, rng *rand.Rand, scratch *engine.Scratch) (*Result, error) {
			return runOnce(h, ig, rng, opts, scratch)
		},
		Better: func(a, b *Result) bool { return better(h, a, b, opts.Objective) },
		Cut:    func(r *Result) int { return r.CutSize },
		Checkpoint: engine.BindCheckpoint(opts.Checkpoint,
			func(r *Result) []byte {
				return checkpoint.EncodeBest(r.Partition.Sides(), r.CutSize)
			},
			func(b []byte) (*Result, error) {
				p, cut, _, err := checkpoint.DecodeBestFor(h, b, 0)
				if err != nil {
					return nil, fmt.Errorf("core: %w", err)
				}
				return &Result{Partition: p, CutSize: cut}, nil
			}),
	})
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	best.Stats.GVertices = baseStats.GVertices
	best.Stats.GEdges = baseStats.GEdges
	best.Stats.ExcludedNets = baseStats.ExcludedNets
	best.Stats.StartsRun = es.StartsRun
	best.Stats.Engine = es
	return best, nil
}

// better reports whether candidate a improves on b under the objective.
func better(h *hypergraph.Hypergraph, a, b *Result, obj Objective) bool {
	switch obj {
	case MinQuotient:
		qa := partition.QuotientCut(h, a.Partition)
		qb := partition.QuotientCut(h, b.Partition)
		if qa != qb {
			return qa < qb
		}
	default:
		if a.CutSize != b.CutSize {
			return a.CutSize < b.CutSize
		}
	}
	return partition.Imbalance(h, a.Partition) < partition.Imbalance(h, b.Partition)
}

// runOnce executes one start: longest BFS path, double-BFS cut,
// boundary completion, module assignment, repair, scoring. The scratch
// arena (may be nil) backs buffers that die with the start.
func runOnce(h *hypergraph.Hypergraph, ig *intersect.Result, rng *rand.Rand, opts Options, scratch *engine.Scratch) (*Result, error) {
	u, v, depth := seedPath(h, ig, rng, opts.Constraint)
	pb := partialFromCutWorkers(h, ig, u, v, opts.BalancedBFS,
		engine.NormalizeKernelWorkers(opts.KernelWorkers), scratch)

	var winner []bool
	switch opts.Completion {
	case CompletionExact:
		winner = CompleteCutExact(pb.Boundary)
	case CompletionWeighted:
		winner = completeCutWeighted(h, pb)
	default:
		winner = completeCutGreedy(pb.Boundary, scratch)
	}

	p, losers := pb.Apply(h, winner)
	assignLeftovers(h, p, scratch)

	repaired := false
	if l, r, _ := p.Counts(); l == 0 || r == 0 {
		// Degenerate completion: every module landed on one side. Fall
		// back to splitting modules by the majority side of their nets
		// under the G-cut — the geometry of the cut without the
		// completion — and keep whichever partition cuts less.
		repaired = true
		q := majorityFallback(h, pb)
		repairNonempty(h, p)
		repairNonempty(h, q)
		if partition.CutSize(h, q) < partition.CutSize(h, p) {
			p = q
		}
	}
	if !opts.Constraint.IsZero() {
		// The paper's pipeline knows nothing of pins or ε; the shared
		// greedy repair restores the contract before scoring, so every
		// start competes on constraint-respecting partitions.
		if err := rebalance.Enforce(h, p, opts.Constraint); err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
	}

	res := &Result{
		Partition: p,
		CutSize:   partition.CutSize(h, p),
		Losers:    losers,
		Boundary:  append([]int(nil), pb.Boundary.Nets...),
	}
	res.Stats.BFSDepth = depth
	res.Stats.BoundarySize = len(pb.Boundary.Nets)
	res.Stats.Repaired = repaired
	return res, nil
}

// seedPath picks the double-BFS endpoints for one start. Unconstrained
// it is the paper's random longest BFS path. With fixed vertices, u is
// drawn among nets touching a Left-fixed module and v among nets
// touching a Right-fixed one, so the expanding sets grow outward from
// the pinned regions and the completed partition starts near the
// contract; when either side pins no included net, the longest-path
// draw is kept.
func seedPath(h *hypergraph.Hypergraph, ig *intersect.Result, rng *rand.Rand, c partition.Constraint) (u, v, depth int) {
	if !c.HasFixed() {
		return ig.G.LongestBFSPath(rng)
	}
	nG := ig.G.NumVertices()
	inL := make([]bool, nG)
	inR := make([]bool, nG)
	for m := 0; m < h.NumVertices(); m++ {
		f := c.Fixed(m)
		if f < 0 {
			continue
		}
		for _, e := range h.VertexEdges(m) {
			if gi := ig.GVertexOf[e]; gi >= 0 {
				if f == 0 {
					inL[gi] = true
				} else {
					inR[gi] = true
				}
			}
		}
	}
	var lefts, rights []int
	for g := 0; g < nG; g++ {
		if inL[g] {
			lefts = append(lefts, g)
		}
		if inR[g] {
			rights = append(rights, g)
		}
	}
	if len(lefts) == 0 || len(rights) == 0 {
		return ig.G.LongestBFSPath(rng)
	}
	u = lefts[rng.Intn(len(lefts))]
	v = rights[rng.Intn(len(rights))]
	if v == u {
		// The drawn net pins modules of both sides; find any distinct
		// endpoint, else give up on fixed seeding for this start.
		for _, g := range rights {
			if g != u {
				v = g
				break
			}
		}
		if v == u {
			for _, g := range lefts {
				if g != v {
					u = g
					break
				}
			}
		}
		if v == u {
			return ig.G.LongestBFSPath(rng)
		}
	}
	dist, _ := ig.G.BFS(u)
	depth = dist[v]
	if depth < 0 {
		depth = 0
	}
	return u, v, depth
}

// majorityFallback assigns each module to the side held by the
// majority of its included nets under the G-cut labeling (ties and
// netless modules go by weight balance afterwards).
func majorityFallback(h *hypergraph.Hypergraph, pb *Partial) *partition.Bipartition {
	p := partition.New(h.NumVertices())
	for m := 0; m < h.NumVertices(); m++ {
		votes := 0
		for _, e := range h.VertexEdges(m) {
			gi := pb.IG.GVertexOf[e]
			if gi < 0 {
				continue
			}
			if pb.NetSide[gi] == partition.Left {
				votes++
			} else {
				votes--
			}
		}
		switch {
		case votes > 0:
			p.Assign(m, partition.Left)
		case votes < 0:
			p.Assign(m, partition.Right)
		}
	}
	assignLeftovers(h, p, nil)
	return p
}

// assignLeftovers places every still-unassigned module (modules
// belonging only to loser or excluded nets, or to no net at all) on the
// lighter side, heaviest first — the first-fit-decreasing flavor of the
// paper's weight packing. The leftover list leases from the scratch
// arena when one is available.
func assignLeftovers(h *hypergraph.Hypergraph, p *partition.Bipartition, scratch *engine.Scratch) {
	leftovers := leaseInts(scratch, h.NumVertices())[:0]
	for m := 0; m < h.NumVertices(); m++ {
		if p.Side(m) == partition.Unassigned {
			leftovers = append(leftovers, m)
		}
	}
	if len(leftovers) == 0 {
		return
	}
	sortByWeightDesc(h, leftovers)
	lw, rw := partition.SideWeights(h, p)
	for _, m := range leftovers {
		if lw <= rw {
			p.Assign(m, partition.Left)
			lw += h.VertexWeight(m)
		} else {
			p.Assign(m, partition.Right)
			rw += h.VertexWeight(m)
		}
	}
}

// repairNonempty guarantees both sides are nonempty by moving the
// single module whose move increases the cut the least. Only degenerate
// inputs (e.g. a single net spanning everything) reach this path.
func repairNonempty(h *hypergraph.Hypergraph, p *partition.Bipartition) {
	l, r, _ := p.Counts()
	if l > 0 && r > 0 {
		return
	}
	var from, to partition.Side
	if l == 0 {
		from, to = partition.Right, partition.Left
	} else {
		from, to = partition.Left, partition.Right
	}
	bestM, bestCut := -1, 0
	for m := 0; m < h.NumVertices(); m++ {
		if p.Side(m) != from {
			continue
		}
		p.Assign(m, to)
		cut := partition.CutSize(h, p)
		p.Assign(m, from)
		if bestM == -1 || cut < bestCut {
			bestM, bestCut = m, cut
		}
	}
	if bestM >= 0 {
		p.Assign(bestM, to)
	}
}

// sortByWeightDesc sorts module ids by descending weight, stable on id
// for determinism.
func sortByWeightDesc(h *hypergraph.Hypergraph, ms []int) {
	// Insertion sort: leftover lists are tiny (the boundary is a
	// constant fraction and most of its modules are claimed by winners).
	for i := 1; i < len(ms); i++ {
		x := ms[i]
		j := i - 1
		for j >= 0 && less(h, x, ms[j]) {
			ms[j+1] = ms[j]
			j--
		}
		ms[j+1] = x
	}
}

func less(h *hypergraph.Hypergraph, a, b int) bool {
	wa, wb := h.VertexWeight(a), h.VertexWeight(b)
	if wa != wb {
		return wa > wb
	}
	return a < b
}
