package core

// Tests reproducing the paper's Figures 2–4 on the reconstructed
// Section-2 worked example (see internal/paperexample and DESIGN.md §2
// for the reconstruction caveats). Figure 1 is covered in package
// intersect.

import (
	"testing"

	"fasthgp/internal/bruteforce"
	"fasthgp/internal/intersect"
	"fasthgp/internal/paperexample"
	"fasthgp/internal/partition"
)

// TestFigure2PartialBipartition: a cut through the intersection graph
// of the worked example yields a partial bipartition whose non-boundary
// nets place their modules consistently and never cross.
func TestFigure2PartialBipartition(t *testing.T) {
	h := paperexample.WorkedExample()
	ig := intersect.Build(h, intersect.Options{})
	if !ig.G.IsConnected() {
		t.Fatal("worked example intersection graph should be connected (c and h bridge it)")
	}
	// Use the deterministic pseudo-diameter endpoints via exhaustive
	// eccentricity: pick the true diameter pair for reproducibility.
	bestU, bestV, bestD := 0, 0, -1
	for u := 0; u < ig.G.NumVertices(); u++ {
		far, d := ig.G.Eccentricity(u)
		if d > bestD {
			bestU, bestV, bestD = u, far, d
		}
	}
	pb := PartialFromCut(h, ig, bestU, bestV)

	if len(pb.Boundary.Nets) == 0 {
		t.Fatal("boundary set empty")
	}
	if len(pb.Boundary.Nets) == ig.G.NumVertices() {
		t.Error("boundary set is everything; partial bipartition places nothing")
	}
	p, lw, rw := pb.BaseAssignment(h)
	if lw == 0 || rw == 0 {
		t.Errorf("partial bipartition left one side weightless: %d|%d", lw, rw)
	}
	placed := 0
	for v := 0; v < h.NumVertices(); v++ {
		if p.Side(v) != partition.Unassigned {
			placed++
		}
	}
	// "Such a construction is expected to place all but a constant
	// proportion of the nodes in H."
	if placed < h.NumVertices()/2 {
		t.Errorf("only %d/%d modules placed by the partial bipartition", placed, h.NumVertices())
	}
}

// TestFigure3CompleteCut: the boundary graph of the worked example is
// bipartite and Complete-Cut's winner set is a maximal independent set
// whose loser count matches the König optimum here.
func TestFigure3CompleteCut(t *testing.T) {
	h := paperexample.WorkedExample()
	ig := intersect.Build(h, intersect.Options{})
	bestU, bestV, bestD := 0, 0, -1
	for u := 0; u < ig.G.NumVertices(); u++ {
		far, d := ig.G.Eccentricity(u)
		if d > bestD {
			bestU, bestV, bestD = u, far, d
		}
	}
	pb := PartialFromCut(h, ig, bestU, bestV)
	bg := pb.Boundary
	if _, ok := bg.G.IsBipartite(); !ok {
		t.Fatal("boundary graph not bipartite")
	}
	winner := CompleteCutGreedy(bg)
	if !WinnersIndependent(bg, winner) {
		t.Fatal("winners not independent")
	}
	greedy := LoserCount(winner)
	opt := OptimalLoserCount(bg)
	if greedy != opt {
		t.Errorf("greedy losers %d != optimum %d on the worked example", greedy, opt)
	}
	// Winners must be maximal: no loser could be flipped to winner.
	for v := 0; v < bg.G.NumVertices(); v++ {
		if winner[v] {
			continue
		}
		flippable := true
		for _, u := range bg.G.Neighbors(v) {
			if winner[u] {
				flippable = false
				break
			}
		}
		if flippable {
			t.Errorf("loser %d has no winner neighbour; winner set not maximal", v)
		}
	}
}

// TestFigure4WorkedExample: the full Algorithm I pipeline recovers the
// optimum cutsize 2 on the worked example, cutting exactly the two
// cluster-spanning signals c and h.
func TestFigure4WorkedExample(t *testing.T) {
	h := paperexample.WorkedExample()

	_, opt, err := bruteforce.MinBisection(h)
	if err != nil {
		t.Fatal(err)
	}
	if opt != paperexample.WorkedExampleOptimalCut {
		t.Fatalf("brute-force optimum = %d, want %d", opt, paperexample.WorkedExampleOptimalCut)
	}

	res, err := Bipartition(h, Options{Starts: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Partition.Validate(h); err != nil {
		t.Fatalf("invalid partition: %v", err)
	}
	if res.CutSize != opt {
		t.Fatalf("Algorithm I cut = %d, want optimum %d", res.CutSize, opt)
	}
	// The only nets that can cross a cutsize-2 partition of this
	// instance are c (index 2) and h (index 7).
	cut := partition.CutEdges(h, res.Partition)
	if len(cut) != 2 || h.EdgeName(cut[0]) != "c" || h.EdgeName(cut[1]) != "h" {
		names := make([]string, len(cut))
		for i, e := range cut {
			names[i] = h.EdgeName(e)
		}
		t.Errorf("crossing signals = %v, want [c h]", names)
	}
	// The partition separates the two logical clusters.
	left, right := paperexample.WorkedExampleClusters()
	s0 := res.Partition.Side(left[0])
	for _, m := range left {
		if res.Partition.Side(m) != s0 {
			t.Errorf("cluster module %s strayed", h.VertexName(m))
		}
	}
	for _, m := range right {
		if res.Partition.Side(m) == s0 {
			t.Errorf("cluster module %s strayed", h.VertexName(m))
		}
	}
	// And it is a perfect 6|6 bisection.
	if !partition.IsBisection(res.Partition) {
		t.Error("worked example result is not a bisection")
	}
}
