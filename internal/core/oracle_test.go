package core

// Oracle wiring: every partitioner package runs its entry point over
// the shared small-instance family and pushes the result through
// internal/verify, so a scoring or side-assignment bug anywhere in the
// algorithm fails here even when the cutsize happens to look plausible.

import (
	"testing"

	"fasthgp/internal/verify"
)

func TestOracleOnSmallInstances(t *testing.T) {
	for _, inst := range verify.SmallInstances() {
		for _, c := range []Completion{CompletionGreedy, CompletionExact, CompletionWeighted} {
			res, err := Bipartition(inst.H, Options{Starts: 3, Seed: 5, Completion: c})
			if err != nil {
				t.Fatalf("%s (%v): %v", inst.Name, c, err)
			}
			if _, err := verify.CheckCut(inst.H, res.Partition, res.CutSize); err != nil {
				t.Errorf("%s (%v): %v", inst.Name, c, err)
			}
		}
	}
}
