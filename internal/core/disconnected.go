package core

import (
	"sort"

	"fasthgp/internal/hypergraph"
	"fasthgp/internal/intersect"
	"fasthgp/internal/partition"
)

// packComponents handles disconnected (or empty) intersection graphs —
// the paper's pathological case c = 0, where "BFS in G finds the
// unconnectedness while standard heuristics will often output a locally
// minimum cut of size Θ(|E|)". Each connected component of G drags a
// disjoint set of modules with it, so assigning whole components to
// sides yields a cut of zero among the included nets. Components (and
// modules touched by no included net) are packed onto the lighter side
// heaviest-first for weight balance.
func packComponents(h *hypergraph.Hypergraph, ig *intersect.Result) *Result {
	comp, k := ig.G.Components()

	// Gather the module set and weight of each G component. A module
	// belongs to at most one component (two nets sharing it would be
	// adjacent); modules in no included net form singleton groups.
	groupOf := make([]int, h.NumVertices())
	for i := range groupOf {
		groupOf[i] = -1
	}
	weights := make([]int64, k)
	members := make([][]int, k)
	for gi, netID := range ig.NetOf {
		c := comp[gi]
		for _, m := range h.EdgePins(netID) {
			if groupOf[m] == -1 {
				groupOf[m] = c
				weights[c] += h.VertexWeight(m)
				members[c] = append(members[c], m)
			}
		}
	}
	type group struct {
		weight  int64
		modules []int
	}
	groups := make([]group, 0, k)
	for c := 0; c < k; c++ {
		if len(members[c]) > 0 {
			groups = append(groups, group{weights[c], members[c]})
		}
	}
	for m := 0; m < h.NumVertices(); m++ {
		if groupOf[m] == -1 {
			groups = append(groups, group{h.VertexWeight(m), []int{m}})
		}
	}

	// First-fit decreasing onto the lighter side. Stable sort keeps the
	// result deterministic across identical weights.
	sort.SliceStable(groups, func(i, j int) bool { return groups[i].weight > groups[j].weight })
	p := partition.New(h.NumVertices())
	var lw, rw int64
	leftEmpty, rightEmpty := true, true
	for _, g := range groups {
		s := partition.Left
		if lw > rw || (lw == rw && !leftEmpty && rightEmpty) {
			s = partition.Right
		}
		for _, m := range g.modules {
			p.Assign(m, s)
		}
		if s == partition.Left {
			lw += g.weight
			leftEmpty = false
		} else {
			rw += g.weight
			rightEmpty = false
		}
	}
	repairNonempty(h, p)
	return &Result{
		Partition: p,
		CutSize:   partition.CutSize(h, p),
	}
}
