package core

import (
	"fasthgp/internal/engine"
	"fasthgp/internal/hypergraph"
	"fasthgp/internal/matching"
	"fasthgp/internal/partition"
)

// CompleteCutGreedy runs the paper's Complete-Cut rule on the boundary
// graph and returns the winner flag per boundary-graph vertex:
//
//	<1> select the minimum-degree remaining vertex and mark it a winner;
//	<2> mark all remaining vertices adjacent to it losers;
//	<3> delete the winner, the losers and their incident edges; repeat.
//
// Winners keep all their modules on their own side; losers cross the
// cut. The winner set is an independent set of G′ by construction, so
// the completion is always consistent; the paper's theorem states the
// loser count is within one of the optimum completion for each
// connected component of G′.
func CompleteCutGreedy(bg *BoundaryGraph) []bool {
	return completeCutGreedy(bg, nil)
}

// completeCutGreedy is CompleteCutGreedy drawing its side arrays from
// the multi-start scratch arena when one is available (nil falls back
// to fresh allocations). The winner slice itself also comes from the
// arena — it never outlives the start that leased it.
func completeCutGreedy(bg *BoundaryGraph, scratch *engine.Scratch) []bool {
	g := bg.G
	n := g.NumVertices()
	winner := leaseBools(scratch, n)
	alive := leaseBools(scratch, n)
	deg := leaseInts(scratch, n)
	maxd := g.MaxDegree()
	for v := 0; v < n; v++ {
		alive[v] = true
		deg[v] = g.Degree(v)
	}
	// Lazy bucket queue over degrees: vertices are (re)pushed whenever
	// their degree drops; stale entries are skipped on pop. Each vertex
	// is pushed once initially and at most once per incident edge, so
	// entries fit in n + 2·|E′| slots and the loop is O(V + E)
	// amortized. The queue is stored as flat per-degree FIFO lists
	// (heads/tails index entry+1, 0 meaning empty) over two entry
	// arrays, so the whole structure leases from the arena instead of
	// allocating a slice per degree — and pop order is exactly the
	// per-bucket FIFO order of the slice-of-slices formulation, which
	// the golden corpus pins down.
	entryCap := n + 2*g.NumEdges()
	heads := leaseInts(scratch, maxd+1)
	tails := leaseInts(scratch, maxd+1)
	entryNext := leaseInts(scratch, entryCap)
	entryVert := leaseInts(scratch, entryCap)
	nEntries := 0
	for v := 0; v < n; v++ {
		entryVert[nEntries] = v
		entryNext[nEntries] = 0
		if tails[deg[v]] == 0 {
			heads[deg[v]] = nEntries + 1
		} else {
			entryNext[tails[deg[v]]-1] = nEntries + 1
		}
		tails[deg[v]] = nEntries + 1
		nEntries++
	}
	d := 0
	for d <= maxd {
		e := heads[d]
		if e == 0 {
			d++
			continue
		}
		heads[d] = entryNext[e-1]
		if heads[d] == 0 {
			tails[d] = 0
		}
		v := entryVert[e-1]
		if !alive[v] || deg[v] != d {
			continue // stale entry
		}
		winner[v] = true
		alive[v] = false
		for _, u := range g.Neighbors(v) {
			if !alive[u] {
				continue
			}
			alive[u] = false // loser
			for _, w := range g.Neighbors(u) {
				if !alive[w] {
					continue
				}
				deg[w]--
				entryVert[nEntries] = w
				entryNext[nEntries] = 0
				if tails[deg[w]] == 0 {
					heads[deg[w]] = nEntries + 1
				} else {
					entryNext[tails[deg[w]]-1] = nEntries + 1
				}
				tails[deg[w]] = nEntries + 1
				nEntries++
				if deg[w] < d {
					d = deg[w]
				}
			}
		}
	}
	return winner
}

// CompleteCutExact returns the optimum completion of the boundary
// graph: winners form a maximum independent set of G′ (equivalently,
// losers form a minimum vertex cover, computable exactly by König's
// theorem because G′ is bipartite). This is the library's enhancement
// over the paper's greedy; Section 5 invites "alternative greedy
// methods for partitioning the boundary graph".
func CompleteCutExact(bg *BoundaryGraph) []bool {
	indep, _, ok := matching.MaxIndependentSet(bg.G)
	if !ok {
		// G′ is bipartite by construction (only cross edges are kept);
		// non-bipartiteness indicates internal corruption.
		panic("core: boundary graph is not bipartite")
	}
	return indep
}

// completeCutWeighted implements the paper's "engineer's method" for
// the weighted r-bipartition constraint (Section 3):
//
//	Rule: if the left (right) side of the partition has less weight
//	than the right (left), pick the smallest-degree vertex remaining
//	in G′_L (G′_R) as the next winner.
//
// The weight of a side is the total module weight committed to it by
// non-boundary nets and by winners chosen so far. The returned winner
// set is independent in G′, like the greedy rule's, but the balance of
// the final partition is much tighter at a small cutsize premium — the
// trade the paper reports.
func completeCutWeighted(h *hypergraph.Hypergraph, pb *Partial) []bool {
	bg := pb.Boundary
	g := bg.G
	n := g.NumVertices()
	p, leftW, rightW := pb.BaseAssignment(h)

	winner := make([]bool, n)
	alive := make([]bool, n)
	deg := make([]int, n)
	aliveCount := n
	maxd := 0
	for v := 0; v < n; v++ {
		alive[v] = true
		deg[v] = g.Degree(v)
		if deg[v] > maxd {
			maxd = deg[v]
		}
	}
	// Per-side lazy bucket queues, same discipline as CompleteCutGreedy.
	var buckets [2][][]int
	var dptr [2]int
	sideIdx := func(v int) int {
		if bg.SideOf[v] == partition.Left {
			return 0
		}
		return 1
	}
	for s := 0; s < 2; s++ {
		buckets[s] = make([][]int, maxd+1)
	}
	for v := 0; v < n; v++ {
		buckets[sideIdx(v)][deg[v]] = append(buckets[sideIdx(v)][deg[v]], v)
	}
	pop := func(s int) (int, bool) {
		for dptr[s] <= maxd {
			b := buckets[s][dptr[s]]
			if len(b) == 0 {
				dptr[s]++
				continue
			}
			v := b[0]
			buckets[s][dptr[s]] = b[1:]
			if alive[v] && deg[v] == dptr[s] {
				return v, true
			}
		}
		return 0, false
	}

	for aliveCount > 0 {
		// The lighter side supplies the next winner (ties go left, as in
		// the bisection convention that L absorbs the odd vertex).
		s := 0
		if leftW > rightW {
			s = 1
		}
		v, ok := pop(s)
		if !ok {
			v, ok = pop(1 - s)
			if !ok {
				break // only stale entries remained
			}
		}
		winner[v] = true
		alive[v] = false
		aliveCount--
		// Commit the winner's uncommitted modules to its side.
		vs := bg.SideOf[v]
		for _, m := range h.EdgePins(bg.Nets[v]) {
			if p.Side(m) == partition.Unassigned {
				p.Assign(m, vs)
				if vs == partition.Left {
					leftW += h.VertexWeight(m)
				} else {
					rightW += h.VertexWeight(m)
				}
			}
		}
		for _, u := range g.Neighbors(v) {
			if !alive[u] {
				continue
			}
			alive[u] = false // loser
			aliveCount--
			for _, w := range g.Neighbors(u) {
				if alive[w] {
					deg[w]--
					si := sideIdx(w)
					buckets[si][deg[w]] = append(buckets[si][deg[w]], w)
					if deg[w] < dptr[si] {
						dptr[si] = deg[w]
					}
				}
			}
		}
	}
	return winner
}

// WinnersIndependent reports whether the winner set is independent in
// the boundary graph — the consistency invariant every completion rule
// must satisfy. Exposed for tests.
func WinnersIndependent(bg *BoundaryGraph, winner []bool) bool {
	for v := 0; v < bg.G.NumVertices(); v++ {
		if !winner[v] {
			continue
		}
		for _, u := range bg.G.Neighbors(v) {
			if winner[u] {
				return false
			}
		}
	}
	return true
}

// LoserCount counts the losers implied by a winner flag vector.
func LoserCount(winner []bool) int {
	c := 0
	for _, w := range winner {
		if !w {
			c++
		}
	}
	return c
}

// OptimalLoserCount returns the optimum (minimum) number of losers for
// the boundary graph: the size of a minimum vertex cover of G′.
func OptimalLoserCount(bg *BoundaryGraph) int {
	_, size, ok := matching.MinVertexCover(bg.G)
	if !ok {
		panic("core: boundary graph is not bipartite")
	}
	return size
}
