package core

import (
	"math/rand"
	"testing"

	"fasthgp/internal/bruteforce"
	"fasthgp/internal/graph"
	"fasthgp/internal/hypergraph"
	"fasthgp/internal/intersect"
	"fasthgp/internal/partition"
)

func mkHG(t *testing.T, n int, edges [][]int) *hypergraph.Hypergraph {
	t.Helper()
	h, err := hypergraph.FromEdges(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// twoClusters builds two intra-connected clusters of size k joined by
// `bridges` crossing nets. The optimum unconstrained cut is `bridges`.
func twoClusters(t *testing.T, k, bridges int) *hypergraph.Hypergraph {
	t.Helper()
	b := hypergraph.NewBuilder(2 * k)
	for i := 0; i+1 < k; i++ {
		b.AddEdge(i, i+1)
		b.AddEdge(k+i, k+i+1)
	}
	// A few chords for connectivity richness.
	for i := 0; i+2 < k; i += 2 {
		b.AddEdge(i, i+2)
		b.AddEdge(k+i, k+i+2)
	}
	for j := 0; j < bridges; j++ {
		b.AddEdge(j%k, k+(j%k))
	}
	return b.MustBuild()
}

func TestErrorTooSmall(t *testing.T) {
	h := mkHG(t, 1, [][]int{{0}})
	if _, err := Bipartition(h, Options{}); err == nil {
		t.Error("accepted 1-vertex hypergraph")
	}
}

func TestTwoClustersFindsBridge(t *testing.T) {
	h := twoClusters(t, 8, 1)
	res, err := Bipartition(h, Options{Starts: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Partition.Validate(h); err != nil {
		t.Fatalf("invalid partition: %v", err)
	}
	if res.CutSize != 1 {
		t.Errorf("CutSize = %d, want 1 (the bridge)", res.CutSize)
	}
	if res.Stats.Disconnected {
		t.Error("connected instance reported disconnected")
	}
	if res.Stats.BFSDepth <= 0 {
		t.Errorf("BFSDepth = %d, want > 0", res.Stats.BFSDepth)
	}
	if res.Stats.GVertices != h.NumEdges() {
		t.Errorf("GVertices = %d, want %d", res.Stats.GVertices, h.NumEdges())
	}
}

func TestCutSizeMatchesPartition(t *testing.T) {
	h := twoClusters(t, 6, 2)
	res, err := Bipartition(h, Options{Starts: 3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if got := partition.CutSize(h, res.Partition); got != res.CutSize {
		t.Errorf("reported CutSize %d != recomputed %d", res.CutSize, got)
	}
}

func TestCrossingNetsAreLosersOrExcluded(t *testing.T) {
	// Invariant from the construction: winners and non-boundary nets
	// never cross, so every crossing net is a loser (or excluded).
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 30; trial++ {
		n := 6 + rng.Intn(20)
		m := 8 + rng.Intn(30)
		b := hypergraph.NewBuilder(n)
		for i := 0; i < m; i++ {
			size := 2 + rng.Intn(4)
			pins := make([]int, size)
			for j := range pins {
				pins[j] = rng.Intn(n)
			}
			b.AddEdge(pins...)
		}
		h := b.MustBuild()
		for _, comp := range []Completion{CompletionGreedy, CompletionExact, CompletionWeighted} {
			res, err := Bipartition(h, Options{Seed: int64(trial), Completion: comp})
			if err != nil {
				t.Fatal(err)
			}
			if err := res.Partition.Validate(h); err != nil {
				t.Fatalf("trial %d %v: invalid partition: %v", trial, comp, err)
			}
			loser := make(map[int]bool, len(res.Losers))
			for _, e := range res.Losers {
				loser[e] = true
			}
			if res.Stats.Disconnected || res.Stats.Repaired {
				// Repair moves modules outside the winner/loser scheme;
				// the loser list is then only advisory.
				continue
			}
			for e := 0; e < h.NumEdges(); e++ {
				if partition.Crosses(h, res.Partition, e) && !loser[e] {
					t.Errorf("trial %d %v: net %d crosses but is not a loser", trial, comp, e)
				}
			}
		}
	}
}

func TestDisconnectedZeroCut(t *testing.T) {
	b := hypergraph.NewBuilder(8)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	b.AddEdge(4, 5)
	b.AddEdge(5, 6)
	b.AddEdge(6, 7)
	h := b.MustBuild()
	res, err := Bipartition(h, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.Disconnected {
		t.Error("disconnected instance not flagged")
	}
	if res.CutSize != 0 {
		t.Errorf("CutSize = %d, want 0", res.CutSize)
	}
	if err := res.Partition.Validate(h); err != nil {
		t.Fatalf("invalid partition: %v", err)
	}
	l, r := partition.SideWeights(h, res.Partition)
	if l != 4 || r != 4 {
		t.Errorf("weights %d|%d, want 4|4", l, r)
	}
}

func TestDisconnectedWithIsolatedModules(t *testing.T) {
	b := hypergraph.NewBuilder(6)
	b.AddEdge(0, 1) // one net; modules 2..5 isolated
	h := b.MustBuild()
	res, err := Bipartition(h, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Partition.Validate(h); err != nil {
		t.Fatalf("invalid partition: %v", err)
	}
	if res.CutSize != 0 {
		t.Errorf("CutSize = %d, want 0", res.CutSize)
	}
}

func TestEdgelessHypergraph(t *testing.T) {
	h := mkHG(t, 4, nil)
	res, err := Bipartition(h, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Partition.Validate(h); err != nil {
		t.Fatalf("invalid partition: %v", err)
	}
	if res.CutSize != 0 {
		t.Errorf("CutSize = %d, want 0", res.CutSize)
	}
}

func TestSingleSpanningNet(t *testing.T) {
	// One net over everything: any partition cuts it; repair must keep
	// both sides nonempty.
	h := mkHG(t, 5, [][]int{{0, 1, 2, 3, 4}})
	res, err := Bipartition(h, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Partition.Validate(h); err != nil {
		t.Fatalf("invalid partition: %v", err)
	}
	if res.CutSize != 1 {
		t.Errorf("CutSize = %d, want 1", res.CutSize)
	}
}

func TestThresholdExclusion(t *testing.T) {
	b := hypergraph.NewBuilder(10)
	for i := 0; i+1 < 5; i++ {
		b.AddEdge(i, i+1)
		b.AddEdge(5+i, 5+i+1)
	}
	b.AddEdge(0, 5)                             // bridge
	big := b.AddEdge(0, 1, 2, 5, 6, 7, 8, 9, 3) // 9-pin bus net
	h := b.MustBuild()

	res, err := Bipartition(h, Options{Threshold: 8, Seed: 4, Starts: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.ExcludedNets != 1 {
		t.Fatalf("ExcludedNets = %d, want 1", res.Stats.ExcludedNets)
	}
	// The big net spans both clusters so it must cross; CutSize is
	// recomputed over all nets and so includes it.
	if !partition.Crosses(h, res.Partition, big) {
		t.Error("bus net unexpectedly uncut")
	}
	if res.CutSize != 2 {
		t.Errorf("CutSize = %d, want 2 (bridge + bus)", res.CutSize)
	}
}

func TestMultiStartNoWorse(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 10; trial++ {
		n := 14 + rng.Intn(10)
		b := hypergraph.NewBuilder(n)
		for i := 0; i < 2*n; i++ {
			b.AddEdge(rng.Intn(n), rng.Intn(n), rng.Intn(n))
		}
		h := b.MustBuild()
		seed := int64(trial * 13)
		one, err := Bipartition(h, Options{Starts: 1, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		many, err := Bipartition(h, Options{Starts: 20, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		// The first of the 20 starts replays the single start (same rng
		// stream), so the best of 20 can only be <=.
		if many.CutSize > one.CutSize {
			t.Errorf("trial %d: 20 starts cut %d > 1 start cut %d", trial, many.CutSize, one.CutSize)
		}
	}
}

func TestDeterminism(t *testing.T) {
	h := twoClusters(t, 10, 3)
	a, err := Bipartition(h, Options{Starts: 7, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Bipartition(h, Options{Starts: 7, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if a.CutSize != b.CutSize {
		t.Fatalf("cut differs across identical runs: %d vs %d", a.CutSize, b.CutSize)
	}
	for v := 0; v < h.NumVertices(); v++ {
		if a.Partition.Side(v) != b.Partition.Side(v) {
			t.Fatalf("vertex %d side differs across identical runs", v)
		}
	}
}

func TestCutAtLeastUnconstrainedOptimum(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 15; trial++ {
		n := 5 + rng.Intn(6)
		m := 4 + rng.Intn(10)
		b := hypergraph.NewBuilder(n)
		for i := 0; i < m; i++ {
			b.AddEdge(rng.Intn(n), rng.Intn(n), rng.Intn(n))
		}
		h := b.MustBuild()
		_, opt, err := bruteforce.MinCutUnconstrained(h)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Bipartition(h, Options{Starts: 3, Seed: int64(trial)})
		if err != nil {
			t.Fatal(err)
		}
		if res.CutSize < opt {
			t.Errorf("trial %d: heuristic cut %d below exact optimum %d", trial, res.CutSize, opt)
		}
		if res.CutSize > h.NumEdges() {
			t.Errorf("trial %d: cut %d exceeds edge count", trial, res.CutSize)
		}
	}
}

func TestWeightedCompletionBalances(t *testing.T) {
	// Clusters with wildly uneven module weights: the engineer's rule
	// plus leftover packing should keep imbalance below total/3.
	rng := rand.New(rand.NewSource(17))
	b := hypergraph.NewBuilder(24)
	for i := 0; i+1 < 12; i++ {
		b.AddEdge(i, i+1)
		b.AddEdge(12+i, 12+i+1)
	}
	b.AddEdge(0, 12)
	b.AddEdge(5, 17)
	for v := 0; v < 24; v++ {
		b.SetVertexWeight(v, int64(1+rng.Intn(20)))
	}
	h := b.MustBuild()
	res, err := Bipartition(h, Options{Starts: 10, Seed: 3, Completion: CompletionWeighted})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Partition.Validate(h); err != nil {
		t.Fatalf("invalid partition: %v", err)
	}
	imb := partition.Imbalance(h, res.Partition)
	if imb > h.TotalVertexWeight()/3 {
		t.Errorf("imbalance %d of total %d too large", imb, h.TotalVertexWeight())
	}
}

func TestExactCompletionNeverWorseThanGreedy(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 20; trial++ {
		n := 10 + rng.Intn(16)
		m := 2 * n
		b := hypergraph.NewBuilder(n)
		for i := 0; i < m; i++ {
			b.AddEdge(rng.Intn(n), rng.Intn(n), rng.Intn(n))
		}
		h := b.MustBuild()
		seed := int64(trial)
		g, err := Bipartition(h, Options{Seed: seed, Completion: CompletionGreedy})
		if err != nil {
			t.Fatal(err)
		}
		e, err := Bipartition(h, Options{Seed: seed, Completion: CompletionExact})
		if err != nil {
			t.Fatal(err)
		}
		// Same seed → same G-cut → exact completes at least as well in
		// loser count. The final CutSize can differ slightly because
		// leftover packing reacts to the winner sets, so compare losers.
		if len(e.Losers) > len(g.Losers) {
			t.Errorf("trial %d: exact losers %d > greedy losers %d", trial, len(e.Losers), len(g.Losers))
		}
	}
}

func TestCompletionString(t *testing.T) {
	if CompletionGreedy.String() != "greedy" || CompletionExact.String() != "exact" ||
		CompletionWeighted.String() != "weighted" || Completion(9).String() != "Completion(9)" {
		t.Error("Completion.String broken")
	}
	if MinCut.String() != "cut" || MinQuotient.String() != "quotient" {
		t.Error("Objective.String broken")
	}
}

func TestBalancedBFSOption(t *testing.T) {
	h := twoClusters(t, 10, 2)
	for _, balanced := range []bool{false, true} {
		res, err := Bipartition(h, Options{Starts: 5, Seed: 2, BalancedBFS: balanced})
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Partition.Validate(h); err != nil {
			t.Fatalf("balanced=%v: %v", balanced, err)
		}
		if res.CutSize > 4 {
			t.Errorf("balanced=%v: cut %d unexpectedly large", balanced, res.CutSize)
		}
	}
}

func TestQuotientObjective(t *testing.T) {
	h := twoClusters(t, 8, 1)
	res, err := Bipartition(h, Options{Starts: 5, Seed: 1, Objective: MinQuotient})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Partition.Validate(h); err != nil {
		t.Fatal(err)
	}
	if q := partition.QuotientCut(h, res.Partition); q > 0.5 {
		t.Errorf("quotient cut %g too large for barbell instance", q)
	}
}

// buildIG is a helper for partial-bipartition tests.
func buildIG(h *hypergraph.Hypergraph) *intersect.Result {
	return intersect.Build(h, intersect.Options{})
}

// newBipartiteBuilder returns a graph builder sized for parts a and b.
func newBipartiteBuilder(a, b int) *graph.Builder {
	return graph.NewBuilder(a + b)
}

func TestPartialFromCutInvariants(t *testing.T) {
	// Figure-2 style checks on the partial bipartition structure.
	h := twoClusters(t, 6, 2)
	ig := buildIG(h)
	if !ig.G.IsConnected() {
		t.Fatal("test instance intersection graph disconnected")
	}
	rng := rand.New(rand.NewSource(8))
	u, v, _ := ig.G.LongestBFSPath(rng)
	pb := PartialFromCut(h, ig, u, v)

	// Boundary flags agree with side adjacency.
	for i := 0; i < ig.G.NumVertices(); i++ {
		want := false
		for _, j := range ig.G.Neighbors(i) {
			if pb.NetSide[j] != pb.NetSide[i] {
				want = true
				break
			}
		}
		if pb.IsBoundary[i] != want {
			t.Errorf("IsBoundary[%d] = %v, want %v", i, pb.IsBoundary[i], want)
		}
	}

	// The boundary graph is bipartite with every edge crossing sides.
	bg := pb.Boundary
	if _, ok := bg.G.IsBipartite(); !ok {
		t.Error("boundary graph not bipartite")
	}
	for k := 0; k < bg.G.NumVertices(); k++ {
		for _, l := range bg.G.Neighbors(k) {
			if bg.SideOf[k] == bg.SideOf[l] {
				t.Errorf("boundary edge %d-%d joins same side", k, l)
			}
		}
	}

	// Non-boundary nets never cross the base assignment.
	p, lw, rw := pb.BaseAssignment(h)
	if lw < 0 || rw < 0 {
		t.Error("negative committed weight")
	}
	for i, netID := range ig.NetOf {
		if pb.IsBoundary[i] {
			continue
		}
		if partition.ClassifyEdge(h, p, netID) == partition.EdgeCrossing {
			t.Errorf("non-boundary net %d crosses the partial bipartition", netID)
		}
	}
}

func TestWinnersNeverCross(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 20; trial++ {
		n := 8 + rng.Intn(14)
		b := hypergraph.NewBuilder(n)
		for i := 0; i < 2*n; i++ {
			b.AddEdge(rng.Intn(n), rng.Intn(n), rng.Intn(n))
		}
		h := b.MustBuild()
		ig := buildIG(h)
		if !ig.G.IsConnected() || ig.G.NumVertices() < 2 {
			continue
		}
		u, v, _ := ig.G.LongestBFSPath(rng)
		pb := PartialFromCut(h, ig, u, v)
		for name, winner := range map[string][]bool{
			"greedy":   CompleteCutGreedy(pb.Boundary),
			"exact":    CompleteCutExact(pb.Boundary),
			"weighted": completeCutWeighted(h, pb),
		} {
			if !WinnersIndependent(pb.Boundary, winner) {
				t.Fatalf("trial %d: %s winners not independent", trial, name)
			}
			p, _ := pb.Apply(h, winner)
			for k, w := range winner {
				if !w {
					continue
				}
				if partition.ClassifyEdge(h, p, pb.Boundary.Nets[k]) == partition.EdgeCrossing {
					t.Errorf("trial %d: %s winner net %d crosses", trial, name, pb.Boundary.Nets[k])
				}
			}
		}
	}
}

func TestGreedyNearOptimalCompletion(t *testing.T) {
	// The paper claims Complete-Cut is within one of the optimum per
	// connected boundary graph. Our measurement (documented in
	// EXPERIMENTS.md) finds rare gaps of up to ~3 on random bipartite
	// graphs; assert the measured envelope with fixed seeds.
	worst := 0
	for seed := int64(0); seed < 300; seed++ {
		rng := rand.New(rand.NewSource(seed))
		bg := randomBoundaryGraph(rng, 2+rng.Intn(20), 2+rng.Intn(20), 0.25)
		greedy := LoserCount(CompleteCutGreedy(bg))
		opt := OptimalLoserCount(bg)
		if greedy < opt {
			t.Fatalf("seed %d: greedy %d below optimum %d (impossible)", seed, greedy, opt)
		}
		if gap := greedy - opt; gap > worst {
			worst = gap
		}
	}
	if worst > 5 {
		t.Errorf("worst greedy-optimal gap = %d, beyond measured envelope 5", worst)
	}
}

// randomBoundaryGraph fabricates a standalone bipartite boundary graph
// for completion-rule tests.
func randomBoundaryGraph(rng *rand.Rand, a, b int, p float64) *BoundaryGraph {
	bg := &BoundaryGraph{}
	gb := newBipartiteBuilder(a, b)
	for i := 0; i < a; i++ {
		bg.Nets = append(bg.Nets, i)
		bg.SideOf = append(bg.SideOf, partition.Left)
	}
	for j := 0; j < b; j++ {
		bg.Nets = append(bg.Nets, a+j)
		bg.SideOf = append(bg.SideOf, partition.Right)
	}
	for i := 0; i < a; i++ {
		for j := 0; j < b; j++ {
			if rng.Float64() < p {
				gb.AddEdge(i, a+j)
			}
		}
	}
	bg.G = gb.MustBuild()
	return bg
}

func TestCompleteCutGreedyKnownGraphs(t *testing.T) {
	// Star K_{1,4}: one loser (the center).
	rng := rand.New(rand.NewSource(0))
	_ = rng
	star := &BoundaryGraph{Nets: []int{0, 1, 2, 3, 4}}
	sb := newBipartiteBuilder(1, 4)
	star.SideOf = []partition.Side{partition.Left, partition.Right, partition.Right, partition.Right, partition.Right}
	for j := 1; j <= 4; j++ {
		sb.AddEdge(0, j)
	}
	star.G = sb.MustBuild()
	if got := LoserCount(CompleteCutGreedy(star)); got != 1 {
		t.Errorf("star losers = %d, want 1", got)
	}
	if got := LoserCount(CompleteCutExact(star)); got != 1 {
		t.Errorf("star exact losers = %d, want 1", got)
	}

	// Even path P4: two losers (the middle vertices).
	p4 := &BoundaryGraph{
		Nets:   []int{0, 1, 2, 3},
		SideOf: []partition.Side{partition.Left, partition.Right, partition.Left, partition.Right},
	}
	pb := newBipartiteBuilder(2, 2)
	pb.AddEdge(0, 1)
	pb.AddEdge(1, 2)
	pb.AddEdge(2, 3)
	p4.G = pb.MustBuild()
	if got := LoserCount(CompleteCutGreedy(p4)); got != 2 {
		t.Errorf("P4 losers = %d, want 2", got)
	}

	// Edgeless boundary graph: everyone wins.
	iso := &BoundaryGraph{
		Nets:   []int{0, 1},
		SideOf: []partition.Side{partition.Left, partition.Right},
	}
	iso.G = newBipartiteBuilder(1, 1).MustBuild()
	if got := LoserCount(CompleteCutGreedy(iso)); got != 0 {
		t.Errorf("isolated losers = %d, want 0", got)
	}
}

// TestConstraintSeedingAndEnforcement pins one vertex of each cluster
// to the OPPOSITE cluster's natural side and runs Algorithm I under an
// ε bound: the fixed-seeded double-BFS plus the final repair must keep
// every pin in place and both sides inside MaxSideWeight, across seeds.
func TestConstraintSeedingAndEnforcement(t *testing.T) {
	h := twoClusters(t, 8, 2)
	n := h.NumVertices()
	fixed := make([]int8, n)
	for i := range fixed {
		fixed[i] = partition.FreeVertex
	}
	fixed[0] = 1     // cluster-A vertex forced Right
	fixed[n-1] = 0   // cluster-B vertex forced Left
	c := partition.Constraint{Epsilon: 0.25, FixedSide: fixed}
	maxSide := c.MaxSideWeight(h.TotalVertexWeight(), 2)
	for seed := int64(1); seed <= 6; seed++ {
		res, err := Bipartition(h, Options{Seed: seed, Starts: 3, Constraint: c})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := res.Partition.Validate(h); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !c.RespectsFixed(res.Partition) {
			t.Errorf("seed %d: fixed vertex moved", seed)
		}
		l, r := partition.SideWeights(h, res.Partition)
		if l > maxSide || r > maxSide {
			t.Errorf("seed %d: side weights %d/%d exceed bound %d", seed, l, r, maxSide)
		}
	}
}

// TestConstraintSeedPathFallsBack: fixed vertices whose nets all share
// one G-vertex cannot seed a distinct pair, so seedPath must fall back
// to the longest-BFS-path draw instead of failing.
func TestConstraintSeedPathFallsBack(t *testing.T) {
	// A star: every net contains vertex 0, so the dual graph collapses
	// the fixed nets onto overlapping G-vertices.
	h := mkHG(t, 6, [][]int{{0, 1}, {0, 2}, {0, 3}, {0, 4}, {0, 5}})
	fixed := []int8{partition.FreeVertex, 0, partition.FreeVertex, partition.FreeVertex, partition.FreeVertex, 1}
	c := partition.Constraint{FixedSide: fixed}
	res, err := Bipartition(h, Options{Seed: 3, Starts: 4, Constraint: c})
	if err != nil {
		t.Fatal(err)
	}
	if !c.RespectsFixed(res.Partition) {
		t.Error("fixed vertex moved on the degenerate star")
	}
}
