package resilience

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"fasthgp/internal/hypergraph"
	"fasthgp/internal/partition"
)

// fakeClock is a hand-advanced clock for breaker cooldown tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func newTestBreaker(threshold int, cooldown time.Duration) (*Breaker, *fakeClock) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	return NewBreaker(BreakerConfig{Threshold: threshold, Cooldown: cooldown, Now: clk.now}), clk
}

func TestBreakerTripsAtThreshold(t *testing.T) {
	b, _ := newTestBreaker(3, time.Minute)
	for i := 0; i < 2; i++ {
		if !b.Allow() {
			t.Fatalf("closed breaker rejected attempt %d", i)
		}
		b.Record(false)
		if got := b.State(); got != BreakerClosed {
			t.Fatalf("after %d failures state = %v, want closed", i+1, got)
		}
	}
	if !b.Allow() {
		t.Fatal("breaker rejected the tripping attempt")
	}
	b.Record(false)
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state after threshold failures = %v, want open", got)
	}
	if b.Allow() {
		t.Fatal("open breaker admitted an attempt inside the cooldown")
	}
	if got := b.ConsecutiveFailures(); got != 3 {
		t.Fatalf("ConsecutiveFailures = %d, want 3", got)
	}
}

func TestBreakerSuccessResetsStreak(t *testing.T) {
	b, _ := newTestBreaker(3, time.Minute)
	b.Allow()
	b.Record(false)
	b.Allow()
	b.Record(false)
	b.Allow()
	b.Record(true)
	if got := b.ConsecutiveFailures(); got != 0 {
		t.Fatalf("ConsecutiveFailures after success = %d, want 0", got)
	}
	// The streak restarts: two more failures must not trip.
	b.Allow()
	b.Record(false)
	b.Allow()
	b.Record(false)
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state = %v, want closed", got)
	}
}

func TestBreakerHalfOpenSingleProbe(t *testing.T) {
	b, clk := newTestBreaker(1, time.Minute)
	b.Allow()
	b.Record(false) // trips immediately
	if b.Allow() {
		t.Fatal("open breaker admitted an attempt")
	}
	clk.advance(time.Minute)
	if got := b.State(); got != BreakerHalfOpen {
		t.Fatalf("state after cooldown = %v, want half-open", got)
	}
	if !b.Allow() {
		t.Fatal("half-open breaker rejected the probe")
	}
	// Probe in flight: nobody else gets through.
	if b.Allow() {
		t.Fatal("half-open breaker admitted a second concurrent probe")
	}
	b.Record(true)
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state after successful probe = %v, want closed", got)
	}
	if !b.Allow() {
		t.Fatal("closed breaker rejected an attempt")
	}
}

// TestBreakerHalfOpenConcurrentSingleProbe proves the half-open
// single-probe contract under contention: with any number of callers
// racing Allow after the cooldown, exactly one probe is admitted per
// cooldown window — over several windows, and whether the probe then
// succeeds or fails. The CI resilience job runs this package with
// -race, so the table doubles as a data-race check on the probe slot.
func TestBreakerHalfOpenConcurrentSingleProbe(t *testing.T) {
	cases := []struct {
		name      string
		threshold int
		callers   int
		windows   int
		probeOK   bool
	}{
		{"failing-probes-8-callers", 1, 8, 3, false},
		{"failing-probes-64-callers", 2, 64, 5, false},
		{"succeeding-probe-32-callers", 3, 32, 1, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b, clk := newTestBreaker(tc.threshold, time.Minute)
			for i := 0; i < tc.threshold; i++ {
				if !b.Allow() {
					t.Fatalf("closed breaker rejected tripping attempt %d", i)
				}
				b.Record(false)
			}
			if got := b.State(); got != BreakerOpen {
				t.Fatalf("state after %d failures = %v, want open", tc.threshold, got)
			}
			for w := 0; w < tc.windows; w++ {
				clk.advance(time.Minute)
				var admitted atomic.Int32
				start := make(chan struct{})
				var wg sync.WaitGroup
				for c := 0; c < tc.callers; c++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						<-start
						if b.Allow() {
							admitted.Add(1)
						}
					}()
				}
				close(start)
				wg.Wait()
				if got := admitted.Load(); got != 1 {
					t.Fatalf("window %d: %d of %d concurrent callers admitted, want exactly 1 probe", w, got, tc.callers)
				}
				// While the probe is outstanding, even a sequential
				// caller stays locked out.
				if b.Allow() {
					t.Fatalf("window %d: probe slot admitted a second caller before Record", w)
				}
				b.Record(tc.probeOK)
				if tc.probeOK {
					if got := b.State(); got != BreakerClosed {
						t.Fatalf("window %d: state after successful probe = %v, want closed", w, got)
					}
					return
				}
				if got := b.State(); got != BreakerOpen {
					t.Fatalf("window %d: state after failed probe = %v, want open", w, got)
				}
				if b.Allow() {
					t.Fatalf("window %d: reopened breaker admitted a caller before a fresh cooldown", w)
				}
			}
		})
	}
}

func TestBreakerFailedProbeReopens(t *testing.T) {
	b, clk := newTestBreaker(1, time.Minute)
	b.Allow()
	b.Record(false)
	clk.advance(time.Minute)
	if !b.Allow() {
		t.Fatal("probe rejected")
	}
	b.Record(false)
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state after failed probe = %v, want open", got)
	}
	if b.Allow() {
		t.Fatal("reopened breaker admitted an attempt before a fresh cooldown")
	}
	clk.advance(time.Minute)
	if !b.Allow() {
		t.Fatal("second probe rejected after the fresh cooldown")
	}
}

func TestBreakerSetSharesConfigPerName(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	set := NewBreakerSet(BreakerConfig{Threshold: 1, Cooldown: time.Minute, Now: clk.now})
	if set.For("fm") != set.For("fm") {
		t.Fatal("For returned distinct breakers for one name")
	}
	set.For("fm").Allow()
	set.For("fm").Record(false)
	if !set.For("multilevel").Allow() {
		t.Fatal("one tier's trip leaked into another tier's breaker")
	}
	states := set.States()
	if states["fm"] != "open" || states["multilevel"] != "closed" {
		t.Fatalf("States() = %v", states)
	}
}

// breakerTestHypergraph is a minimal valid instance for portfolio runs.
func breakerTestHypergraph(t *testing.T) *hypergraph.Hypergraph {
	t.Helper()
	h, err := hypergraph.FromEdges(4, [][]int{{0, 1}, {1, 2}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// okTier returns a trivially certified bipartition; failTier always
// errors without a candidate.
func okTier(name string, calls *int) Tier {
	return Tier{Name: name, Run: func(_ context.Context, h *hypergraph.Hypergraph, _ int64) (*partition.Bipartition, int, error) {
		if calls != nil {
			*calls++
		}
		n := h.NumVertices()
		p := partition.New(n)
		for v := 0; v < n; v++ {
			if v < n/2 {
				p.Assign(v, partition.Left)
			} else {
				p.Assign(v, partition.Right)
			}
		}
		return p, partition.CutSize(h, p), nil
	}}
}

func failTier(name string, calls *int) Tier {
	return Tier{Name: name, Run: func(context.Context, *hypergraph.Hypergraph, int64) (*partition.Bipartition, int, error) {
		if calls != nil {
			*calls++
		}
		return nil, 0, fmt.Errorf("%w: synthetic tier failure", ErrInvalidResult)
	}}
}

func TestPortfolioSkipsOpenBreaker(t *testing.T) {
	h := breakerTestHypergraph(t)
	clk := &fakeClock{t: time.Unix(0, 0)}
	set := NewBreakerSet(BreakerConfig{Threshold: 1, Cooldown: time.Hour, Now: clk.now})
	set.For("broken").Allow()
	set.For("broken").Record(false) // pre-tripped

	var brokenCalls int
	res, err := RunPortfolio(context.Background(), h,
		[]Tier{failTier("broken", &brokenCalls), okTier("fallback", nil)},
		Options{Breakers: set})
	if err != nil {
		t.Fatal(err)
	}
	if brokenCalls != 0 {
		t.Fatalf("open-breaker tier ran %d times, want 0", brokenCalls)
	}
	if res.TierName != "fallback" || !res.Degraded {
		t.Fatalf("TierName = %q, Degraded = %v; want fallback, true", res.TierName, res.Degraded)
	}
	if len(res.Tiers) != 2 || !errors.Is(res.Tiers[0].Err, ErrBreakerOpen) || res.Tiers[0].Attempts != 0 {
		t.Fatalf("skipped tier report = %+v", res.Tiers[0])
	}
}

func TestPortfolioTripsAndRecoversBreaker(t *testing.T) {
	h := breakerTestHypergraph(t)
	clk := &fakeClock{t: time.Unix(0, 0)}
	set := NewBreakerSet(BreakerConfig{Threshold: 2, Cooldown: time.Minute, Now: clk.now})

	// One run: the failing tier burns MaxAttempts=2 attempts — exactly
	// the threshold — and trips its breaker.
	var failCalls int
	tiers := []Tier{failTier("flaky", &failCalls), okTier("fallback", nil)}
	opts := Options{Breakers: set, MaxAttempts: 2, BackoffBase: time.Microsecond}
	if _, err := RunPortfolio(context.Background(), h, tiers, opts); err != nil {
		t.Fatal(err)
	}
	if failCalls != 2 {
		t.Fatalf("failing tier ran %d attempts, want 2", failCalls)
	}
	if got := set.For("flaky").State(); got != BreakerOpen {
		t.Fatalf("breaker after run = %v, want open", got)
	}

	// Next run inside the cooldown: the tier is skipped.
	failCalls = 0
	if _, err := RunPortfolio(context.Background(), h, tiers, opts); err != nil {
		t.Fatal(err)
	}
	if failCalls != 0 {
		t.Fatalf("tripped tier ran %d times inside cooldown, want 0", failCalls)
	}

	// After the cooldown the half-open breaker admits exactly one probe,
	// not a full retry burst.
	clk.advance(time.Minute)
	failCalls = 0
	if _, err := RunPortfolio(context.Background(), h, tiers, opts); err != nil {
		t.Fatal(err)
	}
	if failCalls != 1 {
		t.Fatalf("half-open tier ran %d probes, want 1", failCalls)
	}
	if got := set.For("flaky").State(); got != BreakerOpen {
		t.Fatalf("breaker after failed probe = %v, want open", got)
	}

	// A recovered tier closes the breaker through a successful probe.
	clk.advance(time.Minute)
	var okCalls int
	if res, err := RunPortfolio(context.Background(), h, []Tier{okTier("flaky", &okCalls), okTier("fallback", nil)}, opts); err != nil {
		t.Fatal(err)
	} else if res.TierName != "flaky" || res.Degraded {
		t.Fatalf("recovered tier result = %+v", res)
	}
	if got := set.For("flaky").State(); got != BreakerClosed {
		t.Fatalf("breaker after successful probe = %v, want closed", got)
	}
}

func TestPortfolioAllBreakersOpenExhausts(t *testing.T) {
	h := breakerTestHypergraph(t)
	clk := &fakeClock{t: time.Unix(0, 0)}
	set := NewBreakerSet(BreakerConfig{Threshold: 1, Cooldown: time.Hour, Now: clk.now})
	for _, name := range []string{"a", "b"} {
		set.For(name).Allow()
		set.For(name).Record(false)
	}
	_, err := RunPortfolio(context.Background(), h,
		[]Tier{okTier("a", nil), okTier("b", nil)}, Options{Breakers: set})
	if !errors.Is(err, ErrExhausted) || !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("err = %v, want ErrExhausted wrapping ErrBreakerOpen", err)
	}
}

// --- Budget-math edge cases (tierContext / tiersLeft) ---

func TestTierContextSingleTierInheritsDeadline(t *testing.T) {
	parent, cancel := context.WithTimeout(context.Background(), time.Hour)
	defer cancel()
	want, _ := parent.Deadline()
	tctx, tcancel := tierContext(parent, 1)
	defer tcancel()
	got, ok := tctx.Deadline()
	if !ok || !got.Equal(want) {
		t.Fatalf("single-tier deadline = %v (ok=%v), want parent's %v", got, ok, want)
	}
}

func TestTierContextNoDeadlinePassesThrough(t *testing.T) {
	tctx, tcancel := tierContext(context.Background(), 3)
	defer tcancel()
	if _, ok := tctx.Deadline(); ok {
		t.Fatal("tierContext invented a deadline the parent did not have")
	}
}

func TestTierContextSplitsRemainingEvenly(t *testing.T) {
	parent, cancel := context.WithTimeout(context.Background(), time.Hour)
	defer cancel()
	tctx, tcancel := tierContext(parent, 4)
	defer tcancel()
	deadline, ok := tctx.Deadline()
	if !ok {
		t.Fatal("no deadline on split context")
	}
	slice := time.Until(deadline)
	if slice > 15*time.Minute || slice < 14*time.Minute {
		t.Fatalf("slice = %v, want ~remaining/4 = 15m", slice)
	}
}

func TestTierContextZeroRemainingBudget(t *testing.T) {
	parent, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	tctx, tcancel := tierContext(parent, 3)
	defer tcancel()
	if tctx.Err() == nil {
		t.Fatal("tierContext of an expired parent is not expired")
	}
	deadline, ok := tctx.Deadline()
	if !ok || deadline.After(time.Now()) {
		t.Fatalf("expired parent produced future deadline %v (ok=%v)", deadline, ok)
	}
}

func TestTiersLeftDiscountsOpenBreakers(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	set := NewBreakerSet(BreakerConfig{Threshold: 1, Cooldown: time.Hour, Now: clk.now})
	tiers := []Tier{{Name: "a"}, {Name: "b"}, {Name: "c"}, {Name: "d"}}

	if got := tiersLeft(tiers, 0, nil); got != 4 {
		t.Fatalf("tiersLeft without breakers = %d, want 4", got)
	}
	if got := tiersLeft(tiers, 3, nil); got != 1 {
		t.Fatalf("tiersLeft at the last tier = %d, want 1", got)
	}

	set.For("b").Allow()
	set.For("b").Record(false)
	set.For("d").Allow()
	set.For("d").Record(false)
	if got := tiersLeft(tiers, 0, set); got != 2 {
		t.Fatalf("tiersLeft with b,d open = %d, want 2 (a and c)", got)
	}
	// The current tier counts even if its own breaker is open (it was
	// already admitted — e.g. as a half-open probe).
	if got := tiersLeft(tiers, 1, set); got != 2 {
		t.Fatalf("tiersLeft from open tier b = %d, want 2 (b itself and c)", got)
	}
	// Cooldown expiry turns open tiers half-open: they count again.
	clk.advance(time.Hour)
	if got := tiersLeft(tiers, 0, set); got != 4 {
		t.Fatalf("tiersLeft after cooldown = %d, want 4", got)
	}
}
