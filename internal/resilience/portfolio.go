// Portfolio: deadline-aware fallback chains. A Portfolio runs an
// ordered chain of partitioning tiers — typically strongest first,
// cheapest last (multilevel → fm → algo1) — under one context budget,
// certifies every candidate through the verify oracle, and returns the
// best certified cut it obtained, annotated with the tier that produced
// it and whether the run had to degrade.
//
// Budget math: with R = time remaining and m = tiers not yet attempted
// (including the current one), the current attempt gets R/m. Unused
// budget rolls forward — a tier that finishes in a tenth of its slice
// leaves the rest to its successors — and the final tier always gets
// everything left. Retries recompute the slice from the then-remaining
// budget, so a retried tier cannot starve the tiers below it. Tiers
// whose circuit breaker is open (Options.Breakers) are excluded from m:
// they are about to be skipped, so their slices roll to tiers that run.
package resilience

import (
	"context"
	"errors"
	"fmt"
	"time"

	"fasthgp/internal/faultinject"
	"fasthgp/internal/hypergraph"
	"fasthgp/internal/partition"
	"fasthgp/internal/verify"
)

// Tier is one rung of a fallback chain.
type Tier struct {
	// Name identifies the tier in reports (usually the registry name).
	Name string
	// Run executes the tier's algorithm under ctx with the given seed
	// and returns the partition it found with its claimed cutsize. It
	// must honor ctx — the portfolio derives per-tier timeouts from the
	// overall budget. A non-nil partition alongside a non-nil error is
	// treated as a best-so-far candidate and still considered.
	Run func(ctx context.Context, h *hypergraph.Hypergraph, seed int64) (*partition.Bipartition, int, error)
}

// Options configures RunPortfolio.
type Options struct {
	// Budget bounds the whole chain's wall time (0 = inherit whatever
	// deadline ctx already carries; if ctx has none, tiers run without
	// per-tier timeouts).
	Budget time.Duration
	// Seed drives the jittered per-attempt seeds; the same (chain,
	// Seed, fault plan) replays identically.
	Seed int64
	// MaxAttempts is the per-tier attempt cap for transient failures
	// (values < 1 mean 2: the first try plus one retry).
	MaxAttempts int
	// BackoffBase is the first retry's backoff (values <= 0 mean 5ms);
	// it doubles per attempt, capped at BackoffCap (<= 0 means 100ms),
	// jittered ±50% from the attempt seed, and always bounded by the
	// remaining budget.
	BackoffBase time.Duration
	// BackoffCap caps the exponential backoff.
	BackoffCap time.Duration
	// Breakers, when non-nil, consults one circuit breaker per tier
	// name: tiers whose breaker is open are skipped without running
	// (TierReport.Err = ErrBreakerOpen, Attempts = 0) and excluded from
	// the budget split, and every attempt's outcome is recorded back.
	// Meant for long-lived callers (hgpartd) that share the set across
	// requests; one-shot runs can leave it nil.
	Breakers *BreakerSet
	// Constraint is the unified balance contract the tiers ran under.
	// When non-zero, the oracle gate certifies each candidate against it
	// (verify.CheckConstraint) in addition to the claimed cut, so a tier
	// that dropped a fixed vertex or overshot the ε bound is treated as
	// having produced no result at all.
	Constraint partition.Constraint
}

// TierReport is the portfolio's account of one attempted tier.
type TierReport struct {
	// Name is the tier's name.
	Name string
	// Attempts is how many times the tier ran (0 = budget was already
	// spent when the chain reached it).
	Attempts int
	// CutSize is the tier's certified candidate cut (-1 = none).
	CutSize int
	// Partial marks a certified candidate salvaged from a failed run
	// (the tier also reports its Err).
	Partial bool
	// Err is the tier's last failure (nil when the tier succeeded).
	Err error
	// Wall is the tier's total wall time across attempts.
	Wall time.Duration
}

// Result is a portfolio run's outcome. The partition is always
// oracle-certified: verify.Check accepted it and its CutSize.
type Result struct {
	// Partition is the best certified bipartition obtained.
	Partition *partition.Bipartition
	// CutSize is its certified cutsize.
	CutSize int
	// Tier is the index in the chain that produced it.
	Tier int
	// TierName is that tier's name.
	TierName string
	// Degraded reports that this is not the chain's first choice: the
	// winning candidate came from a lower tier or from a failed run's
	// best-so-far salvage.
	Degraded bool
	// Tiers reports every tier attempted, in chain order.
	Tiers []TierReport
}

// ErrExhausted is returned (wrapped with the per-tier failures) when no
// tier produced any certified candidate.
var ErrExhausted = errors.New("resilience: every portfolio tier failed")

// ErrNoTiers is returned for an empty chain.
var ErrNoTiers = errors.New("resilience: portfolio has no tiers")

// AttemptSeed derives the seed of attempt a of tier t from the
// portfolio seed — jittered so retries explore fresh starts, pure so a
// run replays exactly.
func AttemptSeed(seed int64, tier, attempt int) int64 {
	return int64(uint64(seed) ^ splitmix64(uint64(tier)<<20|uint64(attempt)))
}

// splitmix64 is the SplitMix64 output mixer (same stream-splitting
// construction the engine uses for per-start seeds).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// RunPortfolio runs the fallback chain over h. The first tier to
// return an oracle-certified result ends the chain (lower tiers are
// cheaper, not better). A tier that panics or returns an invalid
// result is retried with backoff and a fresh seed while its transient
// budget lasts; a tier that exhausts its timeout is abandoned for the
// next tier. Certified best-so-far candidates salvaged from failed
// tiers are kept, and the best of them is returned (Degraded) when no
// tier fully succeeds. Only when there is no certified candidate at
// all does RunPortfolio return an error.
func RunPortfolio(ctx context.Context, h *hypergraph.Hypergraph, tiers []Tier, opts Options) (*Result, error) {
	if len(tiers) == 0 {
		return nil, ErrNoTiers
	}
	if opts.Budget > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opts.Budget)
		defer cancel()
	}
	maxAttempts := opts.MaxAttempts
	if maxAttempts < 1 {
		maxAttempts = 2
	}
	backoffBase := opts.BackoffBase
	if backoffBase <= 0 {
		backoffBase = 5 * time.Millisecond
	}
	backoffCap := opts.BackoffCap
	if backoffCap <= 0 {
		backoffCap = 100 * time.Millisecond
	}

	res := &Result{CutSize: -1, Tier: -1}
	var failures []error
	for ti, tier := range tiers {
		report := TierReport{Name: tier.Name, CutSize: -1}
		var breaker *Breaker
		if opts.Breakers != nil {
			breaker = opts.Breakers.For(tier.Name)
		}
		backoff := backoffBase
		for attempt := 0; attempt < maxAttempts; attempt++ {
			if ctx.Err() != nil {
				break
			}
			if breaker != nil && !breaker.Allow() {
				// Open breaker: skip the tier outright. A half-open
				// breaker whose single probe this loop already spent
				// stops retrying, keeping the probe budget at one.
				if report.Attempts == 0 {
					report.Err = ErrBreakerOpen
				}
				break
			}
			tctx, cancel := tierContext(ctx, tiersLeft(tiers, ti, opts.Breakers))
			seed := AttemptSeed(opts.Seed, ti, attempt)
			t0 := time.Now()
			p, claimed, err := runTier(tctx, tier, h, seed)
			report.Wall += time.Since(t0)
			cancel()
			report.Attempts++

			// Deterministic fault injection: corrupt this tier's
			// candidate so the oracle gate below is exercised.
			if p != nil && faultinject.ShouldCorrupt(faultinject.PointTierResult, ti) {
				p = p.Clone()
				p.Assign(0, partition.Unassigned)
			}
			// Oracle gate: only certified candidates leave this loop.
			if p != nil {
				if _, verr := verify.CheckCut(h, p, claimed); verr != nil {
					err = errors.Join(fmt.Errorf("%w (tier %s): %v", ErrInvalidResult, tier.Name, verr), err)
					p = nil
				} else if !opts.Constraint.IsZero() {
					if _, verr := verify.CheckConstraint(h, p, opts.Constraint); verr != nil {
						err = errors.Join(fmt.Errorf("%w (tier %s): %v", ErrInvalidResult, tier.Name, verr), err)
						p = nil
					}
				}
			}
			if breaker != nil {
				breaker.Record(p != nil && err == nil)
			}
			if p != nil {
				if err == nil {
					// Full success: the chain stops here.
					report.CutSize = claimed
					report.Err = nil
					res.Tiers = append(res.Tiers, report)
					res.Partition, res.CutSize = p, claimed
					res.Tier, res.TierName = ti, tier.Name
					res.Degraded = ti > 0
					return res, nil
				}
				// Salvage: a failed run still yielded a certified
				// best-so-far candidate. Keep the best across tiers.
				report.Partial = true
				if res.Partition == nil || claimed < res.CutSize {
					report.CutSize = claimed
					res.Partition, res.CutSize = p, claimed
					res.Tier, res.TierName = ti, tier.Name
				}
			}
			report.Err = err
			if !Transient(err) {
				break
			}
			if attempt+1 < maxAttempts {
				sleepBackoff(ctx, jitterBackoff(backoff, opts.Seed, ti, attempt))
				backoff *= 2
				if backoff > backoffCap {
					backoff = backoffCap
				}
			}
		}
		if report.Err != nil {
			failures = append(failures, fmt.Errorf("tier %d (%s): %w", ti, tier.Name, report.Err))
		}
		res.Tiers = append(res.Tiers, report)
	}
	if res.Partition != nil {
		res.Degraded = true
		return res, nil
	}
	return nil, errors.Join(append([]error{ErrExhausted}, failures...)...)
}

// runTier invokes one tier attempt inside a recover boundary.
func runTier(ctx context.Context, tier Tier, h *hypergraph.Hypergraph, seed int64) (p *partition.Bipartition, claimed int, err error) {
	err = Protect(tier.Name, WholeRun, func() error {
		var runErr error
		p, claimed, runErr = tier.Run(ctx, h, seed)
		return runErr
	})
	return p, claimed, err
}

// tiersLeft counts the tiers from index ti onward that are actually
// going to run: tiers whose breaker is open are about to be skipped, so
// counting them would strand budget on rungs that never execute. The
// current tier was already admitted, so the count is at least 1.
func tiersLeft(tiers []Tier, ti int, breakers *BreakerSet) int {
	n := 1
	for tj := ti + 1; tj < len(tiers); tj++ {
		if breakers == nil || breakers.For(tiers[tj].Name).State() != BreakerOpen {
			n++
		}
	}
	return n
}

// tierContext carves the current attempt's slice out of the remaining
// budget: remaining / tiersLeft, so unused time rolls forward and the
// last tier gets everything left. Without a deadline it is ctx as-is.
func tierContext(ctx context.Context, tiersLeft int) (context.Context, context.CancelFunc) {
	deadline, ok := ctx.Deadline()
	if !ok || tiersLeft <= 1 {
		return context.WithCancel(ctx)
	}
	slice := time.Until(deadline) / time.Duration(tiersLeft)
	return context.WithTimeout(ctx, slice)
}

// jitterBackoff spreads a backoff ±50% deterministically from the
// portfolio seed and the (tier, attempt) coordinates.
func jitterBackoff(d time.Duration, seed int64, tier, attempt int) time.Duration {
	if d <= 0 {
		return 0
	}
	h := splitmix64(uint64(AttemptSeed(seed, tier, attempt)))
	frac := float64(h%1024) / 1024
	return d/2 + time.Duration(frac*float64(d))
}

// sleepBackoff sleeps d or until ctx expires, whichever is first.
func sleepBackoff(ctx context.Context, d time.Duration) {
	if d <= 0 {
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}
