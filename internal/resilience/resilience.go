// Package resilience keeps the library producing oracle-valid answers
// under faults, deadlines, and load. It is the third leg of the
// reliability story: the engine (PR 1) makes multi-start runs
// deterministic, the verify oracle (PR 2) certifies any candidate, and
// this package makes sure there is always a certified candidate to
// return — a panic in one start degrades the run instead of crashing
// the process (PartitionError, Protect), and a slow or broken
// algorithm degrades to a cheaper one instead of missing its deadline
// (Portfolio, in portfolio.go).
//
// The error taxonomy is deliberately small:
//
//   - *PartitionError: a panic converted to a value at a recover
//     boundary, carrying the algorithm, the start index, the panic
//     value, and the stack. Transient — a retry with a fresh seed may
//     well succeed.
//   - ErrInvalidResult: a candidate the verify oracle rejected.
//     Transient for the same reason.
//   - context errors: the budget is spent. Never retried; the caller
//     falls through to a cheaper tier or returns best-so-far.
//   - anything else: a hard input error (empty hypergraph, bad
//     options). Never retried — it would fail identically again.
package resilience

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
)

// WholeRun is the Start value of a PartitionError raised outside any
// particular engine start (e.g. in algorithm setup code).
const WholeRun = -1

// PartitionError is a panic converted into a value at one of the
// library's recover boundaries. It satisfies errors.As through any
// wrapping, and unwraps to the panic value when that value was itself
// an error (so errors.Is sees injected *faultinject.PanicError values).
type PartitionError struct {
	// Algorithm is the name of the partitioner that panicked ("" when
	// the boundary did not know it).
	Algorithm string
	// Start is the engine start index that panicked, or WholeRun.
	Start int
	// Value is the recovered panic value.
	Value any
	// Stack is the panicking goroutine's stack, captured at recovery.
	Stack []byte
}

// NewPartitionError builds a PartitionError from a recovered panic
// value, capturing the current stack.
func NewPartitionError(algorithm string, start int, value any) *PartitionError {
	return &PartitionError{Algorithm: algorithm, Start: start, Value: value, Stack: debug.Stack()}
}

func (e *PartitionError) Error() string {
	where := e.Algorithm
	if where == "" {
		where = "partition"
	}
	if e.Start == WholeRun {
		return fmt.Sprintf("resilience: %s panicked: %v", where, e.Value)
	}
	return fmt.Sprintf("resilience: %s start %d panicked: %v", where, e.Start, e.Value)
}

// Unwrap exposes the panic value when it was an error.
func (e *PartitionError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// ErrInvalidResult marks a candidate partition that the verify oracle
// rejected; portfolio tiers returning one are retried like panics.
var ErrInvalidResult = errors.New("resilience: candidate failed verification")

// Transient reports whether err is worth retrying with a fresh seed:
// converted panics and oracle-rejected results are; spent budgets
// (context errors) and hard input errors are not.
func Transient(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var pe *PartitionError
	return errors.As(err, &pe) || errors.Is(err, ErrInvalidResult)
}

// Protect runs fn inside a recover boundary, converting a panic into a
// *PartitionError attributed to (algorithm, start). It is the wrapper
// around every registry algorithm invocation; the engine plants the
// same boundary around each individual start.
func Protect(algorithm string, start int, fn func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = NewPartitionError(algorithm, start, r)
		}
	}()
	return fn()
}
