// Circuit breakers: per-tier failure memory for long-lived callers
// (the hgpartd daemon above all). A portfolio run is one-shot — its
// retries and fallbacks handle failures inside a single request — but a
// daemon replays the same chain thousands of times, and a tier that has
// started panicking or timing out deterministically will fail the same
// way on every request while still burning its full budget slice. A
// breaker converts that repeated discovery into remembered state:
//
//   - Closed: requests flow; consecutive failures are counted.
//   - Open: after Threshold consecutive failures the tier is skipped
//     outright (Allow returns false) until Cooldown elapses. Skipped
//     tiers are also excluded from the budget split, so their slices
//     roll to the tiers that will actually run.
//   - HalfOpen: after Cooldown one probe attempt is admitted. Success
//     closes the breaker; failure reopens it for another Cooldown. At
//     most one probe is in flight at a time, so a recovering tier sees
//     a single request, not a thundering herd.
package resilience

import (
	"errors"
	"sync"
	"time"
)

// ErrBreakerOpen marks a tier that was skipped without running because
// its circuit breaker was open.
var ErrBreakerOpen = errors.New("resilience: circuit breaker open")

// BreakerState is a circuit breaker's position.
type BreakerState int

const (
	// BreakerClosed admits every attempt.
	BreakerClosed BreakerState = iota
	// BreakerOpen rejects every attempt until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen admits a single probe attempt.
	BreakerHalfOpen
)

// String returns the state's wire name (used verbatim in hgpartd's
// /healthz payload).
func (s BreakerState) String() string {
	switch s {
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// BreakerConfig configures the breakers of a BreakerSet.
type BreakerConfig struct {
	// Threshold is the consecutive-failure count that trips the breaker
	// (values < 1 mean 3).
	Threshold int
	// Cooldown is how long a tripped breaker stays open before
	// admitting a probe (values <= 0 mean 30s).
	Cooldown time.Duration
	// Now is the clock (nil means time.Now); injectable for tests.
	Now func() time.Time
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Threshold < 1 {
		c.Threshold = 3
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 30 * time.Second
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Breaker is one tier's circuit breaker. Safe for concurrent use.
type Breaker struct {
	cfg BreakerConfig

	mu       sync.Mutex
	state    BreakerState
	failures int
	openedAt time.Time
	probing  bool
}

// NewBreaker returns a closed breaker.
func NewBreaker(cfg BreakerConfig) *Breaker {
	return &Breaker{cfg: cfg.withDefaults()}
}

// Allow reports whether an attempt may run now. In the half-open state
// only one caller at a time gets true; every admitted attempt must be
// answered with Record, or the probe slot stays occupied forever.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.cfg.Now().Sub(b.openedAt) < b.cfg.Cooldown {
			return false
		}
		b.state = BreakerHalfOpen
		b.probing = true
		return true
	default: // BreakerHalfOpen
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// Record reports an admitted attempt's outcome. Success closes the
// breaker and clears the failure count; failure increments it, trips
// the breaker at the threshold, and reopens a half-open breaker
// immediately (a failed probe restarts the cooldown).
func (b *Breaker) Record(ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.probing = false
	if ok {
		b.state = BreakerClosed
		b.failures = 0
		return
	}
	b.failures++
	if b.state == BreakerHalfOpen || b.failures >= b.cfg.Threshold {
		b.state = BreakerOpen
		b.openedAt = b.cfg.Now()
	}
}

// State returns the breaker's current position, surfacing the
// open→half-open transition that Allow would take now.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerOpen && b.cfg.Now().Sub(b.openedAt) >= b.cfg.Cooldown {
		return BreakerHalfOpen
	}
	return b.state
}

// ConsecutiveFailures returns the current failure streak.
func (b *Breaker) ConsecutiveFailures() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.failures
}

// BreakerSet holds one breaker per tier name, created lazily with a
// shared config. Safe for concurrent use; the zero value is not usable
// — construct with NewBreakerSet.
type BreakerSet struct {
	cfg BreakerConfig

	mu       sync.Mutex
	breakers map[string]*Breaker
}

// NewBreakerSet returns an empty set whose breakers all use cfg.
func NewBreakerSet(cfg BreakerConfig) *BreakerSet {
	return &BreakerSet{cfg: cfg.withDefaults(), breakers: make(map[string]*Breaker)}
}

// For returns the breaker for name, creating it (closed) on first use.
func (s *BreakerSet) For(name string) *Breaker {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.breakers[name]
	if !ok {
		b = &Breaker{cfg: s.cfg}
		s.breakers[name] = b
	}
	return b
}

// States snapshots every breaker's position by tier name (the shape
// hgpartd's /healthz reports).
func (s *BreakerSet) States() map[string]string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]string, len(s.breakers))
	for name, b := range s.breakers {
		out[name] = b.State().String()
	}
	return out
}
