package resilience_test

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"fasthgp/internal/faultinject"
	"fasthgp/internal/hypergraph"
	"fasthgp/internal/partition"
	"fasthgp/internal/resilience"
	"fasthgp/internal/verify"
)

// testGraph is a 6-vertex instance whose {0,1,2}|{3,4,5} split cuts
// exactly 2 nets.
func testGraph(t *testing.T) *hypergraph.Hypergraph {
	t.Helper()
	h, err := hypergraph.FromEdges(6, [][]int{{0, 1, 2}, {2, 3}, {3, 4, 5}, {1, 4}})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// goodTier returns a tier that always produces the valid 2-cut split.
func goodTier(name string) resilience.Tier {
	return resilience.Tier{Name: name, Run: func(_ context.Context, h *hypergraph.Hypergraph, _ int64) (*partition.Bipartition, int, error) {
		p := partition.New(h.NumVertices())
		for v := 0; v < h.NumVertices(); v++ {
			if v < h.NumVertices()/2 {
				p.Assign(v, partition.Left)
			} else {
				p.Assign(v, partition.Right)
			}
		}
		return p, partition.CutSize(h, p), nil
	}}
}

// panicTier always panics.
func panicTier(name string) resilience.Tier {
	return resilience.Tier{Name: name, Run: func(context.Context, *hypergraph.Hypergraph, int64) (*partition.Bipartition, int, error) {
		panic("tier bomb")
	}}
}

// hangTier blocks until its context expires, then reports the
// context's error with no usable result — the flowpart shape.
func hangTier(name string) resilience.Tier {
	return resilience.Tier{Name: name, Run: func(ctx context.Context, _ *hypergraph.Hypergraph, _ int64) (*partition.Bipartition, int, error) {
		<-ctx.Done()
		return nil, 0, ctx.Err()
	}}
}

// lyingTier returns a real partition with a wrong claimed cutsize — the
// oracle must reject it.
func lyingTier(name string) resilience.Tier {
	good := goodTier(name)
	return resilience.Tier{Name: name, Run: func(ctx context.Context, h *hypergraph.Hypergraph, seed int64) (*partition.Bipartition, int, error) {
		p, cut, err := good.Run(ctx, h, seed)
		return p, cut + 1, err
	}}
}

// fastOpts keeps retry backoff negligible in tests.
func fastOpts() resilience.Options {
	return resilience.Options{Seed: 7, BackoffBase: time.Microsecond, BackoffCap: 2 * time.Microsecond}
}

// requireValid asserts r's partition passes the oracle with its
// claimed cut.
func requireValid(t *testing.T, h *hypergraph.Hypergraph, r *resilience.Result) {
	t.Helper()
	if r == nil || r.Partition == nil {
		t.Fatal("portfolio returned no partition")
	}
	if _, err := verify.CheckCut(h, r.Partition, r.CutSize); err != nil {
		t.Fatalf("portfolio result fails the oracle: %v", err)
	}
}

// TestFallbackChainUnderFaults is the satellite table test: every
// fault mode must end in an oracle-valid result from the asserted tier
// (or a typed error), never a crash.
func TestFallbackChainUnderFaults(t *testing.T) {
	h := testGraph(t)
	cases := []struct {
		name      string
		tiers     []resilience.Tier
		budget    time.Duration
		wantErr   bool
		wantTier  int
		degraded  bool
		attempts0 int // expected attempts on tier 0 (0 = don't check)
	}{
		{
			name:      "tier0 panics",
			tiers:     []resilience.Tier{panicTier("bomb"), goodTier("safe")},
			wantTier:  1,
			degraded:  true,
			attempts0: 2, // panics are transient: first try + one retry
		},
		{
			name:      "tier0 times out",
			tiers:     []resilience.Tier{hangTier("slow"), goodTier("safe")},
			budget:    200 * time.Millisecond,
			wantTier:  1,
			degraded:  true,
			attempts0: 1, // spent budget is not transient: no retry
		},
		{
			name:    "all tiers fail",
			tiers:   []resilience.Tier{panicTier("bomb0"), panicTier("bomb1")},
			wantErr: true,
		},
		{
			name:     "tier1 invalid cut caught by verify",
			tiers:    []resilience.Tier{panicTier("bomb"), lyingTier("liar"), goodTier("safe")},
			wantTier: 2,
			degraded: true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			opts := fastOpts()
			opts.Budget = tc.budget
			t0 := time.Now()
			res, err := resilience.RunPortfolio(context.Background(), h, tc.tiers, opts)
			elapsed := time.Since(t0)
			if tc.budget > 0 && elapsed > tc.budget+2*time.Second {
				t.Errorf("portfolio took %v against a %v budget", elapsed, tc.budget)
			}
			if tc.wantErr {
				if err == nil {
					t.Fatalf("want error, got result from tier %d", res.Tier)
				}
				if !errors.Is(err, resilience.ErrExhausted) {
					t.Errorf("err = %v, want ErrExhausted", err)
				}
				var pe *resilience.PartitionError
				if !errors.As(err, &pe) {
					t.Errorf("exhausted error does not carry the tier PartitionError: %v", err)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			requireValid(t, h, res)
			if res.Tier != tc.wantTier || res.TierName != tc.tiers[tc.wantTier].Name {
				t.Errorf("winner = tier %d (%s), want %d (%s)", res.Tier, res.TierName, tc.wantTier, tc.tiers[tc.wantTier].Name)
			}
			if res.Degraded != tc.degraded {
				t.Errorf("Degraded = %v, want %v", res.Degraded, tc.degraded)
			}
			if tc.attempts0 > 0 && res.Tiers[0].Attempts != tc.attempts0 {
				t.Errorf("tier 0 attempts = %d, want %d", res.Tiers[0].Attempts, tc.attempts0)
			}
		})
	}
}

func TestFirstTierSuccessStopsChain(t *testing.T) {
	h := testGraph(t)
	res, err := resilience.RunPortfolio(context.Background(), h,
		[]resilience.Tier{goodTier("top"), panicTier("never")}, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	requireValid(t, h, res)
	if res.Tier != 0 || res.Degraded {
		t.Errorf("tier/degraded = %d/%v, want 0/false", res.Tier, res.Degraded)
	}
	if len(res.Tiers) != 1 {
		t.Errorf("%d tiers attempted, want 1 (lower tiers are fallbacks, not improvements)", len(res.Tiers))
	}
}

// TestSalvagedPartialWins: a tier that fails mid-run but hands back a
// certified best-so-far candidate still beats total failure.
func TestSalvagedPartialWins(t *testing.T) {
	h := testGraph(t)
	good := goodTier("partial")
	partialTier := resilience.Tier{Name: "partial", Run: func(ctx context.Context, h *hypergraph.Hypergraph, seed int64) (*partition.Bipartition, int, error) {
		p, cut, _ := good.Run(ctx, h, seed)
		return p, cut, errors.New("engine aborted after start 2")
	}}
	res, err := resilience.RunPortfolio(context.Background(), h,
		[]resilience.Tier{partialTier, panicTier("bomb")}, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	requireValid(t, h, res)
	if res.Tier != 0 || !res.Degraded {
		t.Errorf("tier/degraded = %d/%v, want 0/true (salvage)", res.Tier, res.Degraded)
	}
	if !res.Tiers[0].Partial || res.Tiers[0].Err == nil {
		t.Errorf("tier 0 report = %+v, want Partial with its error kept", res.Tiers[0])
	}
}

// TestInjectedCorruptionForcesFallback proves the corrupt fault reaches
// the oracle gate: tier 0's candidates are invalidated by the injected
// fault on every attempt, so the chain must land on tier 1.
func TestInjectedCorruptionForcesFallback(t *testing.T) {
	plan, err := faultinject.ParseSpec("corrupt@portfolio.tier:0")
	if err != nil {
		t.Fatal(err)
	}
	defer faultinject.Install(plan)()
	h := testGraph(t)
	res, err := resilience.RunPortfolio(context.Background(), h,
		[]resilience.Tier{goodTier("corrupted"), goodTier("clean")}, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	requireValid(t, h, res)
	if res.Tier != 1 || !res.Degraded {
		t.Errorf("tier/degraded = %d/%v, want 1/true", res.Tier, res.Degraded)
	}
	if got := res.Tiers[0].Err; got == nil || !errors.Is(got, resilience.ErrInvalidResult) {
		t.Errorf("tier 0 err = %v, want ErrInvalidResult", got)
	}
	if res.Tiers[0].Attempts != 2 {
		t.Errorf("tier 0 attempts = %d, want 2 (invalid results are transient)", res.Tiers[0].Attempts)
	}
}

func TestEmptyChain(t *testing.T) {
	if _, err := resilience.RunPortfolio(context.Background(), testGraph(t), nil, fastOpts()); !errors.Is(err, resilience.ErrNoTiers) {
		t.Fatalf("err = %v, want ErrNoTiers", err)
	}
}

func TestAttemptSeedsDistinct(t *testing.T) {
	seen := map[int64]string{}
	for tier := 0; tier < 4; tier++ {
		for attempt := 0; attempt < 4; attempt++ {
			s := resilience.AttemptSeed(42, tier, attempt)
			if prev, dup := seen[s]; dup {
				t.Fatalf("AttemptSeed(42, %d, %d) collides with %s", tier, attempt, prev)
			}
			seen[s] = strings.TrimSpace(string(rune('a'+tier)) + string(rune('0'+attempt)))
		}
	}
}

func TestPartitionErrorTaxonomy(t *testing.T) {
	err := resilience.Protect("algo1", 3, func() error { panic("boom") })
	var pe *resilience.PartitionError
	if !errors.As(err, &pe) {
		t.Fatalf("Protect returned %T, want *PartitionError", err)
	}
	if pe.Algorithm != "algo1" || pe.Start != 3 || len(pe.Stack) == 0 {
		t.Errorf("PartitionError = %q/%d/stack %d bytes", pe.Algorithm, pe.Start, len(pe.Stack))
	}
	if !strings.Contains(pe.Error(), "algo1") || !strings.Contains(pe.Error(), "boom") {
		t.Errorf("Error() = %q, want algorithm and panic value", pe.Error())
	}
	if !resilience.Transient(err) {
		t.Error("panic not classified transient")
	}
	if !resilience.Transient(resilience.ErrInvalidResult) {
		t.Error("invalid result not classified transient")
	}
	for _, hard := range []error{nil, context.Canceled, context.DeadlineExceeded, errors.New("n < 2")} {
		if resilience.Transient(hard) {
			t.Errorf("Transient(%v) = true, want false", hard)
		}
	}
	// Protect with a non-panicking fn passes the error through.
	plain := errors.New("plain")
	if got := resilience.Protect("x", resilience.WholeRun, func() error { return plain }); got != plain {
		t.Errorf("Protect passthrough = %v, want %v", got, plain)
	}
	// The panic value unwraps when it is an error.
	inner := errors.New("inner cause")
	err = resilience.Protect("x", 0, func() error { panic(inner) })
	if !errors.Is(err, inner) {
		t.Errorf("wrapped panic error not reachable via errors.Is: %v", err)
	}
}
