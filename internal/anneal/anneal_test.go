package anneal

import (
	"math/rand"
	"testing"

	"fasthgp/internal/bruteforce"
	"fasthgp/internal/hypergraph"
	"fasthgp/internal/partition"
)

func mkHG(t *testing.T, n int, edges [][]int) *hypergraph.Hypergraph {
	t.Helper()
	h, err := hypergraph.FromEdges(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestErrorTooSmall(t *testing.T) {
	h := mkHG(t, 1, [][]int{{0}})
	if _, err := Bisect(h, Options{}); err == nil {
		t.Error("accepted 1-vertex hypergraph")
	}
}

func TestValidAndConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 6; trial++ {
		n := 8 + rng.Intn(12)
		b := hypergraph.NewBuilder(n)
		for i := 0; i < 2*n; i++ {
			b.AddEdge(rng.Intn(n), rng.Intn(n), rng.Intn(n))
		}
		h := b.MustBuild()
		res, err := Bisect(h, Options{Seed: int64(trial), MovesPerTemp: 4 * n})
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Partition.Validate(h); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if got := partition.CutSize(h, res.Partition); got != res.CutSize {
			t.Errorf("trial %d: reported %d != recomputed %d", trial, res.CutSize, got)
		}
		if res.Temperatures == 0 {
			t.Errorf("trial %d: no temperature steps ran", trial)
		}
	}
}

func TestDeterministicPerSeed(t *testing.T) {
	h := mkHG(t, 10, [][]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {5, 6}, {6, 7}, {7, 8}, {8, 9}, {4, 5}})
	a, err := Bisect(h, Options{Seed: 7, MovesPerTemp: 20})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Bisect(h, Options{Seed: 7, MovesPerTemp: 20})
	if err != nil {
		t.Fatal(err)
	}
	if a.CutSize != b.CutSize || a.Accepted != b.Accepted {
		t.Error("same seed produced different runs")
	}
}

func TestFindsBridge(t *testing.T) {
	b := hypergraph.NewBuilder(12)
	for i := 0; i < 6; i++ {
		b.AddEdge(i, (i+1)%6)
		b.AddEdge(6+i, 6+(i+1)%6)
	}
	b.AddEdge(0, 6)
	h := b.MustBuild()
	best := 1 << 30
	for seed := int64(0); seed < 3; seed++ {
		res, err := Bisect(h, Options{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if res.CutSize < best {
			best = res.CutSize
		}
	}
	if best != 1 {
		t.Errorf("best SA cut = %d, want 1", best)
	}
}

func TestBalanceFeasible(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n := 20
	b := hypergraph.NewBuilder(n)
	for i := 0; i < 3*n; i++ {
		b.AddEdge(rng.Intn(n), rng.Intn(n))
	}
	for v := 0; v < n; v++ {
		b.SetVertexWeight(v, int64(1+rng.Intn(4)))
	}
	h := b.MustBuild()
	res, err := Bisect(h, Options{Seed: 1, BalanceFraction: 0.15})
	if err != nil {
		t.Fatal(err)
	}
	window := int64(0.15 * float64(h.TotalVertexWeight()))
	if imb := partition.Imbalance(h, res.Partition); imb > window {
		t.Errorf("imbalance %d beyond window %d", imb, window)
	}
}

func TestNearOptimalOnSmall(t *testing.T) {
	h := mkHG(t, 8, [][]int{
		{0, 1, 2}, {1, 2, 3}, {0, 3},
		{4, 5, 6}, {5, 6, 7}, {4, 7},
		{3, 4},
	})
	_, opt, err := bruteforce.MinBisection(h)
	if err != nil {
		t.Fatal(err)
	}
	best := 1 << 30
	for seed := int64(0); seed < 4; seed++ {
		res, err := Bisect(h, Options{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if res.CutSize < best {
			best = res.CutSize
		}
	}
	if best != opt {
		t.Errorf("best SA cut = %d, optimum = %d", best, opt)
	}
}
