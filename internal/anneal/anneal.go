// Package anneal implements simulated-annealing hypergraph
// bipartitioning (Kirkpatrick–Gelatt–Vecchi, reference [18] of the
// paper) — the "SA" column of the paper's Tables 1 and 2.
//
// The move set is single-vertex flips; the cost is the cutsize plus a
// soft penalty on weight imbalance beyond an allowed window, the
// "penalty terms in the placement metric" style of balance handling
// the paper attributes to Fukunaga et al. The schedule is geometric
// with an automatically calibrated initial temperature. The best
// balance-feasible configuration seen anywhere during the walk is
// returned.
package anneal

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"fasthgp/internal/checkpoint"
	"fasthgp/internal/cutstate"
	"fasthgp/internal/engine"
	"fasthgp/internal/hypergraph"
	"fasthgp/internal/kl"
	"fasthgp/internal/partition"
	"fasthgp/internal/rebalance"
)

// Options configures the annealer. The zero value gives sensible
// defaults for netlist-sized instances.
type Options struct {
	// Seed seeds the random walk (deterministic per seed). Each start
	// draws from its own stream, so results are independent of
	// Parallelism.
	Seed int64
	// Starts is the number of independent annealing walks tried by
	// Bisect; the best final cut wins (default 1).
	Starts int
	// Parallelism is the number of workers running walks concurrently;
	// values < 1 mean GOMAXPROCS. Wall time only, never the result.
	Parallelism int
	// InitialTemp is the starting temperature; 0 auto-calibrates so
	// that an average uphill move is accepted with probability ~0.8.
	InitialTemp float64
	// Cooling is the geometric cooling ratio (default 0.95).
	Cooling float64
	// MovesPerTemp is the number of proposed moves per temperature
	// (default 10·n).
	MovesPerTemp int
	// MinTemp ends the schedule (default 0.05).
	MinTemp float64
	// FrozenTemps ends the schedule early after this many consecutive
	// temperatures with no accepted move (default 4).
	FrozenTemps int
	// BalanceFraction is the feasibility window: imbalance up to
	// BalanceFraction·total weight is free; beyond it the penalty
	// applies and the configuration is not recorded as a result
	// (default 0.1).
	BalanceFraction float64
	// PenaltyWeight scales the imbalance penalty in cut units per
	// average vertex weight (default 2).
	PenaltyWeight float64
	// Constraint is the unified balance contract. Fixed vertices are
	// never proposed as moves (rejected before any Metropolis draw, so
	// the walk stays deterministic), and when an ε bound is present the
	// feasibility window derives from Constraint.MaxSideWeight instead
	// of BalanceFraction. The final result is hard-enforced against the
	// contract. The zero value preserves historical behavior exactly.
	Constraint partition.Constraint
	// Checkpoint, when non-nil, journals every completed walk into its
	// sink and resumes from its recovered state — see internal/checkpoint.
	// A resumed run returns the same Result an uninterrupted run would.
	Checkpoint *engine.CheckpointIO
}

func (o *Options) defaults(h *hypergraph.Hypergraph) {
	if o.Cooling <= 0 || o.Cooling >= 1 {
		o.Cooling = 0.95
	}
	if o.MovesPerTemp <= 0 {
		o.MovesPerTemp = 10 * h.NumVertices()
	}
	if o.MinTemp <= 0 {
		o.MinTemp = 0.05
	}
	if o.FrozenTemps <= 0 {
		o.FrozenTemps = 4
	}
	if o.BalanceFraction <= 0 {
		o.BalanceFraction = 0.1
	}
	if o.PenaltyWeight <= 0 {
		o.PenaltyWeight = 2
	}
}

// Result is the outcome of an annealing run.
type Result struct {
	// Partition is the best balance-feasible bipartition seen.
	Partition *partition.Bipartition
	// CutSize is its cutsize.
	CutSize int
	// Temperatures is the number of temperature steps executed (of the
	// winning walk, under multi-start).
	Temperatures int
	// Accepted is the total number of accepted moves.
	Accepted int
	// Engine reports the multi-start execution (walks run, winning
	// walk, per-walk cuts, wall/CPU time).
	Engine engine.Stats
}

// Bisect anneals h from a random balanced bisection.
func Bisect(h *hypergraph.Hypergraph, opts Options) (*Result, error) {
	return BisectCtx(context.Background(), h, opts)
}

// BisectCtx is Bisect with cancellation: each walk polls ctx inside
// its temperature loop and returns the best configuration seen so far
// when it expires, and the engine returns the best completed walk
// (start 0 always runs).
func BisectCtx(ctx context.Context, h *hypergraph.Hypergraph, opts Options) (*Result, error) {
	if h.NumVertices() < 2 {
		return nil, fmt.Errorf("anneal: hypergraph has %d vertices; need at least 2", h.NumVertices())
	}
	opts.defaults(h)
	best, es, err := engine.Run(ctx, engine.Spec[*Result]{
		Name:        "anneal",
		Starts:      opts.Starts,
		Parallelism: opts.Parallelism,
		Seed:        opts.Seed,
		Run: func(ctx context.Context, _ int, rng *rand.Rand, _ *engine.Scratch) (*Result, error) {
			return annealOnce(ctx, h, opts, rng)
		},
		Better: func(a, b *Result) bool {
			if a.CutSize != b.CutSize {
				return a.CutSize < b.CutSize
			}
			return partition.Imbalance(h, a.Partition) < partition.Imbalance(h, b.Partition)
		},
		Cut: func(r *Result) int { return r.CutSize },
		Checkpoint: engine.BindCheckpoint(opts.Checkpoint,
			func(r *Result) []byte {
				return checkpoint.EncodeBest(r.Partition.Sides(), r.CutSize,
					int64(r.Temperatures), int64(r.Accepted))
			},
			func(b []byte) (*Result, error) {
				p, cut, aux, err := checkpoint.DecodeBestFor(h, b, 2)
				if err != nil {
					return nil, fmt.Errorf("anneal: %w", err)
				}
				return &Result{Partition: p, CutSize: cut,
					Temperatures: int(aux[0]), Accepted: int(aux[1])}, nil
			}),
	})
	if err != nil {
		return nil, err
	}
	best.Engine = es
	return best, nil
}

// annealOnce runs a single annealing walk with its own RNG stream.
func annealOnce(ctx context.Context, h *hypergraph.Hypergraph, opts Options, rng *rand.Rand) (*Result, error) {
	c := opts.Constraint
	var p *partition.Bipartition
	if c.IsZero() {
		p = kl.RandomBisection(h.NumVertices(), rng)
	} else {
		p = kl.RandomBisectionConstrained(h, rng, c)
	}
	s, err := cutstate.New(h, p)
	if err != nil {
		return nil, fmt.Errorf("anneal: %w", err)
	}

	n := h.NumVertices()
	total := h.TotalVertexWeight()
	window := int64(opts.BalanceFraction * float64(total))
	if c.HasBalance() {
		// Feasible ⇔ both sides ≤ maxSide ⇔ |lw − rw| ≤ 2·maxSide − total.
		window = 2*c.MaxSideWeight(total, 2) - total
	}
	meanW := float64(total) / float64(n)
	if meanW <= 0 {
		meanW = 1
	}
	penalty := func(imb int64) float64 {
		if imb <= window {
			return 0
		}
		return opts.PenaltyWeight * float64(imb-window) / meanW
	}
	cost := func() float64 { return float64(s.Cut()) + penalty(s.Imbalance()) }

	// moveDelta evaluates the cost change of flipping v without
	// committing.
	moveDelta := func(v int) float64 {
		before := cost()
		s.Move(v)
		after := cost()
		s.Move(v)
		return after - before
	}

	temp := opts.InitialTemp
	if temp <= 0 {
		temp = calibrate(s, rng, moveDelta)
	}

	best := s.Partition().Clone()
	bestCut := s.Cut()
	bestFeasible := s.Imbalance() <= window
	record := func() {
		feasible := s.Imbalance() <= window
		if (feasible && !bestFeasible) ||
			(feasible == bestFeasible && s.Cut() < bestCut) {
			best = s.Partition().Clone()
			bestCut = s.Cut()
			bestFeasible = feasible
		}
	}

	res := &Result{}
	frozen := 0
	for temp > opts.MinTemp && frozen < opts.FrozenTemps && ctx.Err() == nil {
		res.Temperatures++
		acceptedHere := 0
		for i := 0; i < opts.MovesPerTemp; i++ {
			// Poll cancellation inside the hot loop too: MovesPerTemp is
			// 10·n by default, far too long a stride near a deadline.
			if i&1023 == 1023 && ctx.Err() != nil {
				break
			}
			v := rng.Intn(n)
			if c.Fixed(v) >= 0 {
				// Locked cell: the move is rejected outright, before the
				// Metropolis draw, so the RNG stream stays aligned with
				// the proposal sequence.
				continue
			}
			delta := moveDelta(v)
			if delta <= 0 || rng.Float64() < math.Exp(-delta/temp) {
				s.Move(v)
				acceptedHere++
				record()
			}
		}
		res.Accepted += acceptedHere
		if acceptedHere == 0 {
			frozen++
		} else {
			frozen = 0
		}
		temp *= opts.Cooling
	}

	// Guard against the pathological all-one-side walk.
	if l, r, _ := best.Counts(); l == 0 || r == 0 {
		if c.IsZero() {
			best = kl.RandomBisection(n, rng)
		} else {
			best = kl.RandomBisectionConstrained(h, rng, c)
		}
		bestCut = partition.CutSize(h, best)
	}
	// Hard-enforce the contract on the way out: the walk keeps fixed
	// cells in place by construction, but the soft window is advisory,
	// so an ε bound is repaired here if the best feasible snapshot
	// drifted past it.
	if !c.IsZero() {
		if err := rebalance.Enforce(h, best, c); err != nil {
			return nil, fmt.Errorf("anneal: %w", err)
		}
		bestCut = partition.CutSize(h, best)
	}
	res.Partition = best
	res.CutSize = bestCut
	return res, nil
}

// calibrate samples random moves and sets T0 so that the mean uphill
// delta is accepted with probability ≈ 0.8.
func calibrate(s *cutstate.State, rng *rand.Rand, moveDelta func(int) float64) float64 {
	n := s.Hypergraph().NumVertices()
	sum, count := 0.0, 0
	for i := 0; i < 100; i++ {
		d := moveDelta(rng.Intn(n))
		if d > 0 {
			sum += d
			count++
		}
	}
	if count == 0 {
		return 1
	}
	mean := sum / float64(count)
	return -mean / math.Log(0.8)
}
