package kway

// Oracle wiring: the K-way partitioner is validated with the K-way arm
// of the shared oracle, which recomputes the cut-net count and the
// connectivity objective from the labeling alone.

import (
	"testing"

	"fasthgp/internal/verify"
)

func TestOracleOnSmallInstances(t *testing.T) {
	for _, inst := range verify.SmallInstances() {
		for _, k := range []int{2, 3, 4} {
			if k > inst.H.NumVertices() {
				continue
			}
			res, err := Partition(inst.H, Options{K: k, Starts: 2, Seed: 5})
			if err != nil {
				t.Fatalf("%s k=%d: %v", inst.Name, k, err)
			}
			rep, err := verify.CheckKWay(inst.H, res.Part, k)
			if err != nil {
				t.Errorf("%s k=%d: %v", inst.Name, k, err)
				continue
			}
			if rep.CutNets != res.CutNets || rep.Connectivity != res.Connectivity {
				t.Errorf("%s k=%d: claimed cut %d/λ %d, oracle recomputed %d/%d",
					inst.Name, k, res.CutNets, res.Connectivity, rep.CutNets, rep.Connectivity)
			}
		}
	}
}
