// Package kway extends the library's bipartitioners to K-way
// partitioning by recursive bisection — the construction the paper's
// min-cut placement application performs implicitly, exposed here as a
// first-class partitioner with the standard K-way metrics (cut nets
// and the connectivity objective Σ(λ(e) − 1)).
//
// Each recursion step splits a vertex subset into two groups whose
// weights are proportional to the number of final parts each group
// will contain (so any K ≥ 2 is supported, not just powers of two),
// using Algorithm I for the initial cut, greedy rebalancing to the
// proportional target, and Fiduccia–Mattheyses refinement.
package kway

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"fasthgp/internal/core"
	"fasthgp/internal/engine"
	"fasthgp/internal/fm"
	"fasthgp/internal/hypergraph"
	"fasthgp/internal/partition"
	"fasthgp/internal/rebalance"
)

// Options configures Partition.
type Options struct {
	// K is the number of parts (≥ 2).
	K int
	// Starts is the Algorithm I multi-start count per split
	// (default 5).
	Starts int
	// BalanceFraction is the tolerance of each split's proportional
	// weight target (default 0.05 of the subset weight).
	BalanceFraction float64
	// Seed makes the run deterministic; results are independent of
	// Parallelism.
	Seed int64
	// Parallelism is the worker budget handed to each split's
	// Algorithm I multi-start (the recursion itself is sequential);
	// values < 1 mean GOMAXPROCS. Wall time only, never the result.
	Parallelism int
}

func (o *Options) defaults() {
	o.Starts = engine.NormalizeTo(o.Starts, 5)
	if o.BalanceFraction <= 0 {
		o.BalanceFraction = 0.05
	}
}

// Result is a K-way partition with its quality metrics.
type Result struct {
	// Part assigns each vertex a part id in [0, K).
	Part []int
	// K is the number of parts.
	K int
	// CutNets counts nets spanning more than one part.
	CutNets int
	// Connectivity is Σ over nets of (λ(e) − 1), where λ(e) is the
	// number of parts net e touches — the K-way objective that
	// generalizes cutsize (for K = 2 the two metrics coincide).
	Connectivity int64
	// PartWeights is the total vertex weight per part.
	PartWeights []int64
	// Engine reports the execution (the recursion counts as one start;
	// Cuts holds the final cut-net count, and the parallelism is the
	// per-split Algorithm I worker budget).
	Engine engine.Stats
}

// Partition splits h into opts.K parts.
func Partition(h *hypergraph.Hypergraph, opts Options) (*Result, error) {
	return PartitionCtx(context.Background(), h, opts)
}

// PartitionCtx is Partition with cancellation: once ctx expires each
// remaining split degrades to its cheapest cut (Algorithm I's start 0
// still runs, refinement is skipped), so a complete K-way labeling is
// always returned rather than an error.
func PartitionCtx(ctx context.Context, h *hypergraph.Hypergraph, opts Options) (*Result, error) {
	opts.defaults()
	if opts.K < 2 {
		return nil, fmt.Errorf("kway: K must be >= 2, got %d", opts.K)
	}
	if opts.K > h.NumVertices() {
		return nil, fmt.Errorf("kway: K=%d exceeds vertex count %d", opts.K, h.NumVertices())
	}
	begin := time.Now()
	rng := rand.New(rand.NewSource(opts.Seed))
	part := make([]int, h.NumVertices())
	all := make([]int, h.NumVertices())
	for v := range all {
		all[v] = v
	}
	if err := split(ctx, h, all, 0, opts.K, part, opts, rng); err != nil {
		return nil, err
	}
	res := &Result{Part: part, K: opts.K, PartWeights: make([]int64, opts.K)}
	for v := 0; v < h.NumVertices(); v++ {
		res.PartWeights[part[v]] += h.VertexWeight(v)
	}
	res.CutNets, res.Connectivity = Metrics(h, part, opts.K)
	wall := time.Since(begin)
	res.Engine = engine.Stats{
		StartsRequested: 1,
		StartsRun:       1,
		BestStart:       0,
		Cuts:            []int{res.CutNets},
		Parallelism:     engine.NormalizeParallelism(opts.Parallelism),
		Wall:            wall,
		CPU:             wall,
		Cancelled:       ctx.Err() != nil,
	}
	return res, nil
}

// Metrics computes the K-way cut metrics of an arbitrary part
// labeling: the number of nets spanning more than one part and the
// connectivity Σ(λ(e) − 1).
func Metrics(h *hypergraph.Hypergraph, part []int, k int) (cutNets int, connectivity int64) {
	seen := make([]bool, k)
	for e := 0; e < h.NumEdges(); e++ {
		lambda := 0
		for _, v := range h.EdgePins(e) {
			p := part[v]
			if !seen[p] {
				seen[p] = true
				lambda++
			}
		}
		for _, v := range h.EdgePins(e) {
			seen[part[v]] = false
		}
		if lambda > 1 {
			cutNets++
			connectivity += int64(lambda - 1)
		}
	}
	return cutNets, connectivity
}

// split assigns part ids [firstPart, firstPart+k) to the given
// vertices.
func split(ctx context.Context, h *hypergraph.Hypergraph, vertices []int, firstPart, k int, part []int, opts Options, rng *rand.Rand) error {
	if k == 1 {
		for _, v := range vertices {
			part[v] = firstPart
		}
		return nil
	}
	kLeft := (k + 1) / 2
	kRight := k - kLeft

	sub, origOf := induce(h, vertices)
	p := bipartitionSub(ctx, sub, opts, rng)

	// Rebalance to the proportional target kLeft : kRight.
	target := sub.TotalVertexWeight() * int64(kLeft) / int64(k)
	tol := int64(opts.BalanceFraction * float64(sub.TotalVertexWeight()))
	if err := p.Validate(sub); err == nil {
		if _, err := rebalance.ToTarget(sub, p, target, tol); err != nil {
			return fmt.Errorf("kway: %w", err)
		}
		if ctx.Err() == nil {
			_, ferr := fm.ImproveCtx(ctx, sub, p, fm.Options{BalanceFraction: opts.BalanceFraction})
			_ = ferr // refinement is best-effort
		}
	}

	var left, right []int
	for i, v := range origOf {
		if p.Side(i) == partition.Left {
			left = append(left, v)
		} else {
			right = append(right, v)
		}
	}
	// Guarantee enough vertices on each side for the part counts.
	for len(left) < kLeft && len(right) > kRight {
		left = append(left, right[len(right)-1])
		right = right[:len(right)-1]
	}
	for len(right) < kRight && len(left) > kLeft {
		right = append(right, left[len(left)-1])
		left = left[:len(left)-1]
	}
	if err := split(ctx, h, left, firstPart, kLeft, part, opts, rng); err != nil {
		return err
	}
	return split(ctx, h, right, firstPart+kLeft, kRight, part, opts, rng)
}

// bipartitionSub cuts an induced sub-hypergraph, falling back to an
// alternating assignment for degenerate subsets.
func bipartitionSub(ctx context.Context, sub *hypergraph.Hypergraph, opts Options, rng *rand.Rand) *partition.Bipartition {
	if sub.NumVertices() >= 2 {
		res, err := core.BipartitionCtx(ctx, sub, core.Options{
			Starts:      opts.Starts,
			Seed:        rng.Int63(),
			Threshold:   10,
			BalancedBFS: true,
			Completion:  core.CompletionWeighted,
			Parallelism: opts.Parallelism,
		})
		if err == nil {
			return res.Partition
		}
	}
	p := partition.New(sub.NumVertices())
	for i := 0; i < sub.NumVertices(); i++ {
		if i%2 == 0 {
			p.Assign(i, partition.Left)
		} else {
			p.Assign(i, partition.Right)
		}
	}
	return p
}

// induce builds the sub-hypergraph on a vertex subset: nets keep only
// their pins inside the subset and survive with ≥ 2 pins.
func induce(h *hypergraph.Hypergraph, vertices []int) (*hypergraph.Hypergraph, []int) {
	index := make(map[int]int, len(vertices))
	for i, v := range vertices {
		index[v] = i
	}
	b := hypergraph.NewBuilder(len(vertices))
	for i, v := range vertices {
		b.SetVertexWeight(i, h.VertexWeight(v))
	}
	seen := map[int]bool{}
	pins := make([]int, 0, 16)
	for _, v := range vertices {
		for _, e := range h.VertexEdges(v) {
			if seen[e] {
				continue
			}
			seen[e] = true
			pins = pins[:0]
			for _, u := range h.EdgePins(e) {
				if i, ok := index[u]; ok {
					pins = append(pins, i)
				}
			}
			if len(pins) >= 2 {
				ne := b.AddEdge(pins...)
				b.SetEdgeWeight(ne, h.EdgeWeight(e))
			}
		}
	}
	sub, err := b.Build()
	if err != nil {
		panic("kway: induced sub-hypergraph build: " + err.Error())
	}
	origOf := make([]int, len(vertices))
	copy(origOf, vertices)
	return sub, origOf
}
