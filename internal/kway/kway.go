// Package kway extends the library's bipartitioners to K-way
// partitioning by recursive bisection — the construction the paper's
// min-cut placement application performs implicitly, exposed here as a
// first-class partitioner with the standard K-way metrics (cut nets
// and the connectivity objective Σ(λ(e) − 1)).
//
// Each recursion step splits a vertex subset into two groups whose
// weights are proportional to the number of final parts each group
// will contain (so any K ≥ 2 is supported, not just powers of two),
// using Algorithm I for the initial cut, greedy rebalancing to the
// proportional target, and Fiduccia–Mattheyses refinement.
package kway

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"time"

	"fasthgp/internal/core"
	"fasthgp/internal/engine"
	"fasthgp/internal/fm"
	"fasthgp/internal/hypergraph"
	"fasthgp/internal/partition"
	"fasthgp/internal/rebalance"
)

// Options configures Partition.
type Options struct {
	// K is the number of parts (≥ 2).
	K int
	// Starts is the Algorithm I multi-start count per split
	// (default 5).
	Starts int
	// BalanceFraction is the tolerance of each split's proportional
	// weight target (default 0.05 of the subset weight).
	BalanceFraction float64
	// Seed makes the run deterministic; results are independent of
	// Parallelism.
	Seed int64
	// Parallelism is the worker budget handed to each split's
	// Algorithm I multi-start (the recursion itself is sequential);
	// values < 1 mean GOMAXPROCS. Wall time only, never the result.
	Parallelism int
	// KernelWorkers is the intra-start worker count forwarded to each
	// split's Algorithm I kernels. Values < 1 mean 1. Wall time only,
	// never the result.
	KernelWorkers int
	// Constraint is the unified balance contract, interpreted K-way:
	// FixedSide entries are target part ids in [0, K) (−1 free; K ≤ 127
	// when fixed vertices are present, the int8 limit), and Epsilon
	// bounds every part at Constraint.MaxSideWeight(W, K). Recursive
	// bisection splits the ε budget geometrically across the ⌈log₂K⌉
	// levels — each level runs at ε′ = (1+ε)^(1/⌈log₂K⌉) − 1 so the
	// leaf-level product stays within the requested bound — and each
	// split pins every fixed vertex to the group containing its target
	// part. When Constraint carries no ε, BalanceFraction is mapped
	// through the same contract (partition.FromBalanceFraction), so all
	// tolerance math flows through Constraint.MaxSideWeight.
	Constraint partition.Constraint
}

func (o *Options) defaults() {
	o.Starts = engine.NormalizeTo(o.Starts, 5)
	if o.BalanceFraction <= 0 {
		o.BalanceFraction = 0.05
	}
}

// Result is a K-way partition with its quality metrics.
type Result struct {
	// Part assigns each vertex a part id in [0, K).
	Part []int
	// K is the number of parts.
	K int
	// CutNets counts nets spanning more than one part.
	CutNets int
	// Connectivity is Σ over nets of (λ(e) − 1), where λ(e) is the
	// number of parts net e touches — the K-way objective that
	// generalizes cutsize (for K = 2 the two metrics coincide).
	Connectivity int64
	// PartWeights is the total vertex weight per part.
	PartWeights []int64
	// Engine reports the execution (the recursion counts as one start;
	// Cuts holds the final cut-net count, and the parallelism is the
	// per-split Algorithm I worker budget).
	Engine engine.Stats
}

// Partition splits h into opts.K parts.
func Partition(h *hypergraph.Hypergraph, opts Options) (*Result, error) {
	return PartitionCtx(context.Background(), h, opts)
}

// PartitionCtx is Partition with cancellation: once ctx expires each
// remaining split degrades to its cheapest cut (Algorithm I's start 0
// still runs, refinement is skipped), so a complete K-way labeling is
// always returned rather than an error.
func PartitionCtx(ctx context.Context, h *hypergraph.Hypergraph, opts Options) (*Result, error) {
	opts.defaults()
	if opts.K < 2 {
		return nil, fmt.Errorf("kway: K must be >= 2, got %d", opts.K)
	}
	if opts.K > h.NumVertices() {
		return nil, fmt.Errorf("kway: K=%d exceeds vertex count %d", opts.K, h.NumVertices())
	}
	if err := opts.Constraint.Validate(h.NumVertices(), opts.K); err != nil {
		return nil, fmt.Errorf("kway: %w", err)
	}
	if opts.Constraint.HasFixed() && opts.K > 127 {
		return nil, fmt.Errorf("kway: fixed vertices support K <= 127, got %d", opts.K)
	}
	begin := time.Now()
	rng := rand.New(rand.NewSource(opts.Seed))
	part := make([]int, h.NumVertices())
	all := make([]int, h.NumVertices())
	for v := range all {
		all[v] = v
	}
	if err := split(ctx, h, all, 0, opts.K, part, opts, rng, levelEpsilon(opts)); err != nil {
		return nil, err
	}
	res := &Result{Part: part, K: opts.K, PartWeights: make([]int64, opts.K)}
	for v := 0; v < h.NumVertices(); v++ {
		res.PartWeights[part[v]] += h.VertexWeight(v)
	}
	res.CutNets, res.Connectivity = Metrics(h, part, opts.K)
	wall := time.Since(begin)
	res.Engine = engine.Stats{
		StartsRequested: 1,
		StartsRun:       1,
		BestStart:       0,
		Cuts:            []int{res.CutNets},
		Parallelism:     engine.NormalizeParallelism(opts.Parallelism),
		Wall:            wall,
		CPU:             wall,
		Cancelled:       ctx.Err() != nil,
	}
	return res, nil
}

// Metrics computes the K-way cut metrics of an arbitrary part
// labeling: the number of nets spanning more than one part and the
// connectivity Σ(λ(e) − 1).
func Metrics(h *hypergraph.Hypergraph, part []int, k int) (cutNets int, connectivity int64) {
	seen := make([]bool, k)
	for e := 0; e < h.NumEdges(); e++ {
		lambda := 0
		for _, v := range h.EdgePins(e) {
			p := part[v]
			if !seen[p] {
				seen[p] = true
				lambda++
			}
		}
		for _, v := range h.EdgePins(e) {
			seen[part[v]] = false
		}
		if lambda > 1 {
			cutNets++
			connectivity += int64(lambda - 1)
		}
	}
	return cutNets, connectivity
}

// levelEpsilon splits the K-way ε budget across the recursion depth:
// ⌈log₂K⌉ nested bisections each running at ε′ = (1+ε)^(1/depth) − 1
// compound to at most the requested (1+ε). When the constraint carries
// no ε, the legacy BalanceFraction is mapped through the same contract
// so every tolerance below flows through Constraint.MaxSideWeight.
func levelEpsilon(opts Options) float64 {
	eps := opts.Constraint.Epsilon
	if !opts.Constraint.HasBalance() {
		eps = partition.FromBalanceFraction(opts.BalanceFraction).Epsilon
	}
	depth := 0
	for 1<<depth < opts.K {
		depth++
	}
	if depth < 1 {
		depth = 1
	}
	return math.Pow(1+eps, 1/float64(depth)) - 1
}

// split assigns part ids [firstPart, firstPart+k) to the given
// vertices.
func split(ctx context.Context, h *hypergraph.Hypergraph, vertices []int, firstPart, k int, part []int, opts Options, rng *rand.Rand, epsLevel float64) error {
	if k == 1 {
		for _, v := range vertices {
			part[v] = firstPart
		}
		return nil
	}
	kLeft := (k + 1) / 2
	kRight := k - kLeft

	sub, origOf := induce(h, vertices)

	// Project the K-way fixed assignment onto this split: a vertex with
	// target part < firstPart+kLeft belongs to the left group, the rest
	// to the right. Nil when nothing in this subset is pinned.
	var subFixed []int8
	if c := opts.Constraint; c.HasFixed() {
		for i, v := range origOf {
			if f := c.Fixed(v); f >= 0 {
				if subFixed == nil {
					subFixed = make([]int8, sub.NumVertices())
					for j := range subFixed {
						subFixed[j] = partition.FreeVertex
					}
				}
				if int(f) < firstPart+kLeft {
					subFixed[i] = 0
				} else {
					subFixed[i] = 1
				}
			}
		}
	}
	subC := partition.Constraint{Epsilon: epsLevel, FixedSide: subFixed}
	p := bipartitionSub(ctx, sub, opts, rng, subC)

	// Rebalance to the proportional target kLeft : kRight. The band is
	// derived from the unified contract: the left group holds kLeft of
	// the k parts, each bounded by MaxSideWeight(W, k) at this level's ε.
	target := sub.TotalVertexWeight() * int64(kLeft) / int64(k)
	maxLeft := int64(kLeft) * subC.MaxSideWeight(sub.TotalVertexWeight(), k)
	tol := maxLeft - target
	if err := p.Validate(sub); err == nil {
		if _, err := rebalance.ToTargetFixed(sub, p, target, tol, subFixed); err != nil {
			return fmt.Errorf("kway: %w", err)
		}
		if ctx.Err() == nil {
			_, ferr := fm.ImproveCtx(ctx, sub, p, fm.Options{BalanceFraction: opts.BalanceFraction, Constraint: subC})
			_ = ferr // refinement is best-effort
		}
	}

	var left, right []int
	for i, v := range origOf {
		if p.Side(i) == partition.Left {
			left = append(left, v)
		} else {
			right = append(right, v)
		}
	}
	// Guarantee enough vertices on each side for the part counts,
	// moving only vertices the fixed assignment allows across.
	mayGo := func(v int, toLeft bool) bool {
		f := opts.Constraint.Fixed(v)
		if f < 0 {
			return true
		}
		if toLeft {
			return int(f) < firstPart+kLeft
		}
		return int(f) >= firstPart+kLeft
	}
	for len(left) < kLeft && len(right) > kRight {
		moved := false
		for i := len(right) - 1; i >= 0; i-- {
			if mayGo(right[i], true) {
				left = append(left, right[i])
				right = append(right[:i], right[i+1:]...)
				moved = true
				break
			}
		}
		if !moved {
			return fmt.Errorf("kway: fixed assignment leaves fewer than %d movable vertices for parts [%d, %d)", kLeft, firstPart, firstPart+kLeft)
		}
	}
	for len(right) < kRight && len(left) > kLeft {
		moved := false
		for i := len(left) - 1; i >= 0; i-- {
			if mayGo(left[i], false) {
				right = append(right, left[i])
				left = append(left[:i], left[i+1:]...)
				moved = true
				break
			}
		}
		if !moved {
			return fmt.Errorf("kway: fixed assignment leaves fewer than %d movable vertices for parts [%d, %d)", kRight, firstPart+kLeft, firstPart+k)
		}
	}
	if err := split(ctx, h, left, firstPart, kLeft, part, opts, rng, epsLevel); err != nil {
		return err
	}
	return split(ctx, h, right, firstPart+kLeft, kRight, part, opts, rng, epsLevel)
}

// bipartitionSub cuts an induced sub-hypergraph, falling back to a
// fixed-respecting alternating assignment for degenerate subsets.
func bipartitionSub(ctx context.Context, sub *hypergraph.Hypergraph, opts Options, rng *rand.Rand, c partition.Constraint) *partition.Bipartition {
	if sub.NumVertices() >= 2 {
		res, err := core.BipartitionCtx(ctx, sub, core.Options{
			Starts:        opts.Starts,
			Seed:          rng.Int63(),
			Threshold:     10,
			BalancedBFS:   true,
			Completion:    core.CompletionWeighted,
			Parallelism:   opts.Parallelism,
			KernelWorkers: opts.KernelWorkers,
			Constraint:    c,
		})
		if err == nil {
			return res.Partition
		}
	}
	p := partition.New(sub.NumVertices())
	free := 0
	for i := 0; i < sub.NumVertices(); i++ {
		switch f := c.Fixed(i); {
		case f == 0:
			p.Assign(i, partition.Left)
		case f > 0:
			p.Assign(i, partition.Right)
		default:
			if free%2 == 0 {
				p.Assign(i, partition.Left)
			} else {
				p.Assign(i, partition.Right)
			}
			free++
		}
	}
	return p
}

// induce builds the sub-hypergraph on a vertex subset: nets keep only
// their pins inside the subset and survive with ≥ 2 pins.
func induce(h *hypergraph.Hypergraph, vertices []int) (*hypergraph.Hypergraph, []int) {
	index := make(map[int]int, len(vertices))
	for i, v := range vertices {
		index[v] = i
	}
	b := hypergraph.NewBuilder(len(vertices))
	for i, v := range vertices {
		b.SetVertexWeight(i, h.VertexWeight(v))
	}
	seen := map[int]bool{}
	pins := make([]int, 0, 16)
	for _, v := range vertices {
		for _, e := range h.VertexEdges(v) {
			if seen[e] {
				continue
			}
			seen[e] = true
			pins = pins[:0]
			for _, u := range h.EdgePins(e) {
				if i, ok := index[u]; ok {
					pins = append(pins, i)
				}
			}
			if len(pins) >= 2 {
				ne := b.AddEdge(pins...)
				b.SetEdgeWeight(ne, h.EdgeWeight(e))
			}
		}
	}
	sub, err := b.Build()
	if err != nil {
		panic("kway: induced sub-hypergraph build: " + err.Error())
	}
	origOf := make([]int, len(vertices))
	copy(origOf, vertices)
	return sub, origOf
}
