package kway

import (
	"math"
	"math/rand"
	"testing"

	"fasthgp/internal/gen"
	"fasthgp/internal/hypergraph"
	"fasthgp/internal/partition"
)

func profileHG(t *testing.T, n, m int) *hypergraph.Hypergraph {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	h, err := gen.Profile(gen.ProfileConfig{Modules: n, Signals: m, Technology: gen.StdCell}, rng)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestErrors(t *testing.T) {
	h := profileHG(t, 40, 80)
	if _, err := Partition(h, Options{K: 1}); err == nil {
		t.Error("accepted K=1")
	}
	if _, err := Partition(h, Options{K: 41}); err == nil {
		t.Error("accepted K > n")
	}
}

func TestPartitionBasics(t *testing.T) {
	h := profileHG(t, 200, 420)
	for _, k := range []int{2, 3, 4, 7, 8} {
		res, err := Partition(h, Options{K: k, Seed: int64(k)})
		if err != nil {
			t.Fatalf("K=%d: %v", k, err)
		}
		if res.K != k || len(res.Part) != h.NumVertices() {
			t.Fatalf("K=%d: malformed result", k)
		}
		counts := make([]int, k)
		for v, p := range res.Part {
			if p < 0 || p >= k {
				t.Fatalf("K=%d: vertex %d part %d out of range", k, v, p)
			}
			counts[p]++
		}
		for p, c := range counts {
			if c == 0 {
				t.Errorf("K=%d: part %d empty", k, p)
			}
		}
		// PartWeights consistent.
		var sum int64
		for _, w := range res.PartWeights {
			sum += w
		}
		if sum != h.TotalVertexWeight() {
			t.Errorf("K=%d: part weights sum %d != total %d", k, sum, h.TotalVertexWeight())
		}
		// Connectivity dominates cut nets and is bounded by (k-1)·cut.
		if res.Connectivity < int64(res.CutNets) {
			t.Errorf("K=%d: connectivity %d < cut nets %d", k, res.Connectivity, res.CutNets)
		}
		if res.Connectivity > int64(k-1)*int64(res.CutNets) {
			t.Errorf("K=%d: connectivity %d > (k-1)*cutnets", k, res.Connectivity)
		}
	}
}

func TestMetricsKnown(t *testing.T) {
	h, err := hypergraph.FromEdges(6, [][]int{
		{0, 1},       // inside part 0
		{0, 2},       // parts 0,1 → λ=2
		{0, 2, 4},    // parts 0,1,2 → λ=3
		{4, 5},       // inside part 2
		{1, 3, 5, 2}, // parts 0,1,2 → λ=3
	})
	if err != nil {
		t.Fatal(err)
	}
	part := []int{0, 0, 1, 1, 2, 2}
	cut, conn := Metrics(h, part, 3)
	if cut != 3 {
		t.Errorf("cut nets = %d, want 3", cut)
	}
	if conn != 1+2+2 {
		t.Errorf("connectivity = %d, want 5", conn)
	}
}

func TestK2MatchesBipartitionMetrics(t *testing.T) {
	h := profileHG(t, 120, 250)
	res, err := Partition(h, Options{K: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// For K=2 connectivity == cut nets.
	if res.Connectivity != int64(res.CutNets) {
		t.Errorf("K=2: connectivity %d != cut nets %d", res.Connectivity, res.CutNets)
	}
}

func TestBalanceAcrossParts(t *testing.T) {
	h := profileHG(t, 240, 500)
	res, err := Partition(h, Options{K: 4, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	ideal := h.TotalVertexWeight() / 4
	for p, w := range res.PartWeights {
		if w < ideal/3 || w > 3*ideal {
			t.Errorf("part %d weight %d far from ideal %d", p, w, ideal)
		}
	}
}

func TestDeterministicPerSeed(t *testing.T) {
	h := profileHG(t, 100, 200)
	a, err := Partition(h, Options{K: 5, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Partition(h, Options{K: 5, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for v := range a.Part {
		if a.Part[v] != b.Part[v] {
			t.Fatal("same seed gave different partitions")
		}
	}
}

func TestKEqualsN(t *testing.T) {
	h, err := hypergraph.FromEdges(5, [][]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Partition(h, Options{K: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, p := range res.Part {
		if seen[p] {
			t.Fatal("K=n must give singleton parts")
		}
		seen[p] = true
	}
	// Every net crosses when each vertex is its own part.
	if res.CutNets != h.NumEdges() {
		t.Errorf("cut nets = %d, want all %d", res.CutNets, h.NumEdges())
	}
}

func TestLevelEpsilonCompounds(t *testing.T) {
	// Splitting ε across ⌈log₂K⌉ recursion levels must compound back to
	// the requested bound: (1+ε′)^depth = 1+ε.
	for _, tc := range []struct {
		k     int
		eps   float64
		depth int
	}{
		{2, 0.1, 1}, {4, 0.1, 2}, {8, 0.3, 3}, {6, 0.2, 3}, {16, 0.05, 4},
	} {
		got := levelEpsilon(Options{K: tc.k, Constraint: partition.Constraint{Epsilon: tc.eps}})
		compound := math.Pow(1+got, float64(tc.depth)) - 1
		if math.Abs(compound-tc.eps) > 1e-12 {
			t.Errorf("K=%d ε=%g: per-level %g compounds to %g", tc.k, tc.eps, got, compound)
		}
	}
}

// TestConstraintKWayFixed drives 4-way partitioning with vertices
// pinned to specific parts: every pin must land on its part, every part
// stays nonempty, and part weights respect the compounded ε bound.
func TestConstraintKWayFixed(t *testing.T) {
	h := profileHG(t, 120, 260)
	n := h.NumVertices()
	const k = 4
	fixed := make([]int8, n)
	for i := range fixed {
		fixed[i] = partition.FreeVertex
	}
	// One pin per part, spread across the vertex range.
	pins := map[int]int8{0: 0, 17: 1, 63: 2, n - 1: 3}
	for v, p := range pins {
		fixed[v] = p
	}
	c := partition.Constraint{Epsilon: 0.3, FixedSide: fixed}
	res, err := Partition(h, Options{K: k, Seed: 5, Constraint: c})
	if err != nil {
		t.Fatal(err)
	}
	for v, p := range pins {
		if res.Part[v] != int(p) {
			t.Errorf("pinned vertex %d on part %d, want %d", v, res.Part[v], p)
		}
	}
	maxPart := c.MaxSideWeight(h.TotalVertexWeight(), k)
	for p, w := range res.PartWeights {
		if w == 0 {
			t.Errorf("part %d empty", p)
		}
		if w > maxPart {
			t.Errorf("part %d weight %d exceeds (1+ε)-bound %d", p, w, maxPart)
		}
	}
}

func TestConstraintKWayRejectsWideKWithFixed(t *testing.T) {
	h := profileHG(t, 300, 600)
	fixed := make([]int8, h.NumVertices())
	for i := range fixed {
		fixed[i] = partition.FreeVertex
	}
	fixed[0] = 0
	if _, err := Partition(h, Options{K: 128, Constraint: partition.Constraint{FixedSide: fixed}}); err == nil {
		t.Error("accepted K=128 with fixed vertices (int8 side encoding tops out at 127)")
	}
}
