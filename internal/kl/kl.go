// Package kl implements Kernighan–Lin bipartitioning adapted to
// hypergraphs with the Schweikert–Kernighan net model — the family of
// methods ("MinCut-KL") the paper benchmarks Algorithm I against.
//
// The classic scheme: starting from a balanced bisection, a pass
// tentatively swaps locked-out pairs of vertices chosen for maximum
// exact swap gain, records the running cumulative gain, and finally
// rewinds to the best prefix. Passes repeat until one yields no
// improvement. Swap selection scans the top-K gain candidates on each
// side and evaluates exact hypergraph swap gains (which, unlike the
// graph case, are not determined by the two individual gains), keeping
// the cost per pass near the O(n² log n) regime the paper cites.
//
// Multi-start (Options.Starts) repeats the whole descent from several
// random bisections through the shared engine runtime, which fans the
// starts across Options.Parallelism workers deterministically.
package kl

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"fasthgp/internal/checkpoint"
	"fasthgp/internal/cutstate"
	"fasthgp/internal/engine"
	"fasthgp/internal/hypergraph"
	"fasthgp/internal/partition"
	"fasthgp/internal/rebalance"
)

// Options configures the partitioner.
type Options struct {
	// Starts is the number of independent random initial bisections
	// tried by Bisect; the best final cut wins (default 1).
	Starts int
	// MaxPasses bounds the number of improvement passes (default 10).
	MaxPasses int
	// Candidates is the number of top-gain vertices per side scanned
	// when selecting each swap (default 8). Larger values approach the
	// textbook full pair scan at quadratic cost.
	Candidates int
	// Seed seeds the initial random bisections used by Bisect; each
	// start draws from its own stream, so results are independent of
	// Parallelism.
	Seed int64
	// Parallelism is the number of workers running starts concurrently;
	// values < 1 mean GOMAXPROCS. Wall time only, never the result.
	Parallelism int
	// Constraint is the unified balance contract: fixed vertices are
	// locked out of swap selection, and (when an ε bound is present)
	// swaps that would push a side past Constraint.MaxSideWeight are
	// rejected. The zero value preserves the historical unconstrained
	// behavior exactly.
	Constraint partition.Constraint
	// Checkpoint, when non-nil, journals every completed start into its
	// sink and resumes from its recovered state — see internal/checkpoint.
	// A resumed run returns the same Result an uninterrupted run would.
	Checkpoint *engine.CheckpointIO
}

func (o *Options) defaults() {
	if o.MaxPasses <= 0 {
		o.MaxPasses = 10
	}
	if o.Candidates <= 0 {
		o.Candidates = 8
	}
}

// Result is the outcome of a KL run.
type Result struct {
	// Partition is the final bisection.
	Partition *partition.Bipartition
	// CutSize is its cutsize.
	CutSize int
	// Passes is the number of improvement passes executed (of the
	// winning start, under multi-start).
	Passes int
	// Engine reports the multi-start execution (starts run, winning
	// start, per-start cuts, wall/CPU time).
	Engine engine.Stats
}

// Bisect partitions h starting from a random balanced bisection.
func Bisect(h *hypergraph.Hypergraph, opts Options) (*Result, error) {
	return BisectCtx(context.Background(), h, opts)
}

// BisectCtx is Bisect with cancellation: the best result among the
// starts that completed is returned when ctx expires (start 0 always
// runs). Within a start, passes stop early at cancellation and the
// best prefix found so far is kept.
func BisectCtx(ctx context.Context, h *hypergraph.Hypergraph, opts Options) (*Result, error) {
	if h.NumVertices() < 2 {
		return nil, fmt.Errorf("kl: hypergraph has %d vertices; need at least 2", h.NumVertices())
	}
	opts.defaults()
	best, es, err := engine.Run(ctx, engine.Spec[*Result]{
		Name:        "kl",
		Starts:      opts.Starts,
		Parallelism: opts.Parallelism,
		Seed:        opts.Seed,
		Run: func(ctx context.Context, _ int, rng *rand.Rand, scratch *engine.Scratch) (*Result, error) {
			p := seedBisection(h, rng, opts.Constraint)
			return improve(ctx, h, p, opts, scratch)
		},
		Better: func(a, b *Result) bool { return betterResult(h, a, b) },
		Cut:    func(r *Result) int { return r.CutSize },
		Checkpoint: engine.BindCheckpoint(opts.Checkpoint,
			func(r *Result) []byte {
				return checkpoint.EncodeBest(r.Partition.Sides(), r.CutSize, int64(r.Passes))
			},
			func(b []byte) (*Result, error) {
				p, cut, aux, err := checkpoint.DecodeBestFor(h, b, 1)
				if err != nil {
					return nil, fmt.Errorf("kl: %w", err)
				}
				return &Result{Partition: p, CutSize: cut, Passes: int(aux[0])}, nil
			}),
	})
	if err != nil {
		return nil, err
	}
	best.Engine = es
	return best, nil
}

// betterResult orders candidate results: lower cut, then lower weight
// imbalance (strict, so the engine's lowest-index tie-break applies).
func betterResult(h *hypergraph.Hypergraph, a, b *Result) bool {
	if a.CutSize != b.CutSize {
		return a.CutSize < b.CutSize
	}
	return partition.Imbalance(h, a.Partition) < partition.Imbalance(h, b.Partition)
}

// RandomBisection returns a uniformly random balanced bisection of n
// vertices (left side receives the extra vertex when n is odd).
func RandomBisection(n int, rng *rand.Rand) *partition.Bipartition {
	p := partition.New(n)
	perm := rng.Perm(n)
	half := (n + 1) / 2
	for i, v := range perm {
		if i < half {
			p.Assign(v, partition.Left)
		} else {
			p.Assign(v, partition.Right)
		}
	}
	return p
}

// seedBisection builds the initial bisection for one start: the plain
// uniform RandomBisection when c is zero (preserving historical RNG
// consumption exactly), RandomBisectionConstrained otherwise.
func seedBisection(h *hypergraph.Hypergraph, rng *rand.Rand, c partition.Constraint) *partition.Bipartition {
	if c.IsZero() {
		return RandomBisection(h.NumVertices(), rng)
	}
	return RandomBisectionConstrained(h, rng, c)
}

// RandomBisectionConstrained returns a random bisection honoring the
// constraint: fixed vertices go to their pinned sides, and the free
// vertices are visited in a random order and greedily assigned to the
// lighter side so the ε bound is met whenever it is meetable by this
// construction. Deterministic for a fixed rng stream.
func RandomBisectionConstrained(h *hypergraph.Hypergraph, rng *rand.Rand, c partition.Constraint) *partition.Bipartition {
	n := h.NumVertices()
	p := partition.New(n)
	var lw, rw int64
	free := make([]int, 0, n)
	for v := 0; v < n; v++ {
		switch f := c.Fixed(v); {
		case f == 0:
			p.Assign(v, partition.Left)
			lw += h.VertexWeight(v)
		case f > 0:
			p.Assign(v, partition.Right)
			rw += h.VertexWeight(v)
		default:
			free = append(free, v)
		}
	}
	perm := rng.Perm(len(free))
	for _, i := range perm {
		v := free[i]
		if lw <= rw {
			p.Assign(v, partition.Left)
			lw += h.VertexWeight(v)
		} else {
			p.Assign(v, partition.Right)
			rw += h.VertexWeight(v)
		}
	}
	return p
}

// Improve runs KL passes from the given complete bipartition, which is
// modified in place and returned. Swaps preserve the initial side
// cardinalities exactly.
func Improve(h *hypergraph.Hypergraph, p *partition.Bipartition, opts Options) (*Result, error) {
	return ImproveCtx(context.Background(), h, p, opts)
}

// ImproveCtx is Improve with cancellation: passes stop early when ctx
// expires and the partition as improved so far is returned.
func ImproveCtx(ctx context.Context, h *hypergraph.Hypergraph, p *partition.Bipartition, opts Options) (*Result, error) {
	scratch := engine.GetScratch()
	defer engine.PutScratch(scratch)
	return improve(ctx, h, p, opts, scratch)
}

func improve(ctx context.Context, h *hypergraph.Hypergraph, p *partition.Bipartition, opts Options, scratch *engine.Scratch) (*Result, error) {
	opts.defaults()
	c := opts.Constraint
	if !c.IsZero() {
		if err := rebalance.Enforce(h, p, c); err != nil {
			return nil, fmt.Errorf("kl: %w", err)
		}
	}
	if err := p.Validate(h); err != nil {
		return nil, fmt.Errorf("kl: %w", err)
	}
	s, err := cutstate.New(h, p)
	if err != nil {
		return nil, fmt.Errorf("kl: %w", err)
	}
	maxSide := int64(math.MaxInt64)
	if c.HasBalance() {
		maxSide = c.MaxSideWeight(h.TotalVertexWeight(), 2)
	}
	// The locked side array is leased once per improvement run and
	// re-zeroed by each pass.
	locked := scratch.Bools(h.NumVertices())
	passes := 0
	for passes < opts.MaxPasses && ctx.Err() == nil {
		passes++
		if gain := runPass(s, opts.Candidates, locked, c, maxSide); gain <= 0 {
			break
		}
	}
	return &Result{Partition: p, CutSize: s.Cut(), Passes: passes}, nil
}

// runPass executes one KL pass on s and returns the net cut improvement
// it kept (0 when the pass was fully rewound). locked is a caller-owned
// length-n side array, re-zeroed on entry.
func runPass(s *cutstate.State, candidates int, locked []bool, c partition.Constraint, maxSide int64) int {
	clear(locked)

	type swap struct{ a, b int }
	var seq []swap
	cum, bestCum, bestIdx := 0, 0, -1

	for {
		a, b, ok := selectSwap(s, locked, candidates, c, maxSide)
		if !ok {
			break
		}
		gain := s.SwapGain(a, b)
		s.Move(a)
		s.Move(b)
		locked[a], locked[b] = true, true
		seq = append(seq, swap{a, b})
		cum += gain
		if cum > bestCum {
			bestCum, bestIdx = cum, len(seq)-1
		}
	}
	// Rewind to the best prefix.
	for i := len(seq) - 1; i > bestIdx; i-- {
		s.Move(seq[i].a)
		s.Move(seq[i].b)
	}
	return bestCum
}

// selectSwap picks the best swap among the top-`candidates` gain
// vertices of each side, by exact hypergraph swap gain. Vertices pinned
// by the constraint never enter the candidate pool, and swaps that
// would push a side's weight past maxSide are rejected. Deterministic:
// ties break toward lower vertex indices.
func selectSwap(s *cutstate.State, locked []bool, candidates int, c partition.Constraint, maxSide int64) (a, b int, ok bool) {
	h := s.Hypergraph()
	n := h.NumVertices()
	type cand struct {
		v    int
		gain int
	}
	var ls, rs []cand
	for v := 0; v < n; v++ {
		if locked[v] || c.Fixed(v) >= 0 {
			continue
		}
		cd := cand{v, s.Gain(v)}
		if s.Side(v) == partition.Left {
			ls = append(ls, cd)
		} else {
			rs = append(rs, cd)
		}
	}
	if len(ls) == 0 || len(rs) == 0 {
		return 0, 0, false
	}
	top := func(cs []cand) []cand {
		sort.Slice(cs, func(i, j int) bool {
			if cs[i].gain != cs[j].gain {
				return cs[i].gain > cs[j].gain
			}
			return cs[i].v < cs[j].v
		})
		if len(cs) > candidates {
			cs = cs[:candidates]
		}
		return cs
	}
	ls, rs = top(ls), top(rs)
	lw, rw := s.Weights()
	total := lw + rw
	bestGain := 0
	found := false
	for _, ca := range ls {
		for _, cb := range rs {
			if nl := lw - h.VertexWeight(ca.v) + h.VertexWeight(cb.v); nl > maxSide || total-nl > maxSide {
				continue
			}
			g := s.SwapGain(ca.v, cb.v)
			if !found || g > bestGain ||
				(g == bestGain && (ca.v < a || (ca.v == a && cb.v < b))) {
				bestGain, a, b, found = g, ca.v, cb.v, true
			}
		}
	}
	return a, b, found
}
