// Package kl implements Kernighan–Lin bipartitioning adapted to
// hypergraphs with the Schweikert–Kernighan net model — the family of
// methods ("MinCut-KL") the paper benchmarks Algorithm I against.
//
// The classic scheme: starting from a balanced bisection, a pass
// tentatively swaps locked-out pairs of vertices chosen for maximum
// exact swap gain, records the running cumulative gain, and finally
// rewinds to the best prefix. Passes repeat until one yields no
// improvement. Swap selection scans the top-K gain candidates on each
// side and evaluates exact hypergraph swap gains (which, unlike the
// graph case, are not determined by the two individual gains), keeping
// the cost per pass near the O(n² log n) regime the paper cites.
package kl

import (
	"fmt"
	"math/rand"
	"sort"

	"fasthgp/internal/cutstate"
	"fasthgp/internal/hypergraph"
	"fasthgp/internal/partition"
)

// Options configures the partitioner.
type Options struct {
	// MaxPasses bounds the number of improvement passes (default 10).
	MaxPasses int
	// Candidates is the number of top-gain vertices per side scanned
	// when selecting each swap (default 8). Larger values approach the
	// textbook full pair scan at quadratic cost.
	Candidates int
	// Seed seeds the initial random bisection used by Bisect.
	Seed int64
}

func (o *Options) defaults() {
	if o.MaxPasses <= 0 {
		o.MaxPasses = 10
	}
	if o.Candidates <= 0 {
		o.Candidates = 8
	}
}

// Result is the outcome of a KL run.
type Result struct {
	// Partition is the final bisection.
	Partition *partition.Bipartition
	// CutSize is its cutsize.
	CutSize int
	// Passes is the number of improvement passes executed.
	Passes int
}

// Bisect partitions h starting from a random balanced bisection.
func Bisect(h *hypergraph.Hypergraph, opts Options) (*Result, error) {
	if h.NumVertices() < 2 {
		return nil, fmt.Errorf("kl: hypergraph has %d vertices; need at least 2", h.NumVertices())
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	p := RandomBisection(h.NumVertices(), rng)
	return Improve(h, p, opts)
}

// RandomBisection returns a uniformly random balanced bisection of n
// vertices (left side receives the extra vertex when n is odd).
func RandomBisection(n int, rng *rand.Rand) *partition.Bipartition {
	p := partition.New(n)
	perm := rng.Perm(n)
	half := (n + 1) / 2
	for i, v := range perm {
		if i < half {
			p.Assign(v, partition.Left)
		} else {
			p.Assign(v, partition.Right)
		}
	}
	return p
}

// Improve runs KL passes from the given complete bipartition, which is
// modified in place and returned. Swaps preserve the initial side
// cardinalities exactly.
func Improve(h *hypergraph.Hypergraph, p *partition.Bipartition, opts Options) (*Result, error) {
	opts.defaults()
	if err := p.Validate(h); err != nil {
		return nil, fmt.Errorf("kl: %w", err)
	}
	s, err := cutstate.New(h, p)
	if err != nil {
		return nil, fmt.Errorf("kl: %w", err)
	}
	passes := 0
	for passes < opts.MaxPasses {
		passes++
		if gain := runPass(s, opts.Candidates); gain <= 0 {
			break
		}
	}
	return &Result{Partition: p, CutSize: s.Cut(), Passes: passes}, nil
}

// runPass executes one KL pass on s and returns the net cut improvement
// it kept (0 when the pass was fully rewound).
func runPass(s *cutstate.State, candidates int) int {
	h := s.Hypergraph()
	n := h.NumVertices()
	locked := make([]bool, n)

	type swap struct{ a, b int }
	var seq []swap
	cum, bestCum, bestIdx := 0, 0, -1

	for {
		a, b, ok := selectSwap(s, locked, candidates)
		if !ok {
			break
		}
		gain := s.SwapGain(a, b)
		s.Move(a)
		s.Move(b)
		locked[a], locked[b] = true, true
		seq = append(seq, swap{a, b})
		cum += gain
		if cum > bestCum {
			bestCum, bestIdx = cum, len(seq)-1
		}
	}
	// Rewind to the best prefix.
	for i := len(seq) - 1; i > bestIdx; i-- {
		s.Move(seq[i].a)
		s.Move(seq[i].b)
	}
	return bestCum
}

// selectSwap picks the best swap among the top-`candidates` gain
// vertices of each side, by exact hypergraph swap gain. Deterministic:
// ties break toward lower vertex indices.
func selectSwap(s *cutstate.State, locked []bool, candidates int) (a, b int, ok bool) {
	h := s.Hypergraph()
	n := h.NumVertices()
	type cand struct {
		v    int
		gain int
	}
	var ls, rs []cand
	for v := 0; v < n; v++ {
		if locked[v] {
			continue
		}
		c := cand{v, s.Gain(v)}
		if s.Side(v) == partition.Left {
			ls = append(ls, c)
		} else {
			rs = append(rs, c)
		}
	}
	if len(ls) == 0 || len(rs) == 0 {
		return 0, 0, false
	}
	top := func(cs []cand) []cand {
		sort.Slice(cs, func(i, j int) bool {
			if cs[i].gain != cs[j].gain {
				return cs[i].gain > cs[j].gain
			}
			return cs[i].v < cs[j].v
		})
		if len(cs) > candidates {
			cs = cs[:candidates]
		}
		return cs
	}
	ls, rs = top(ls), top(rs)
	bestGain := 0
	found := false
	for _, ca := range ls {
		for _, cb := range rs {
			g := s.SwapGain(ca.v, cb.v)
			if !found || g > bestGain ||
				(g == bestGain && (ca.v < a || (ca.v == a && cb.v < b))) {
				bestGain, a, b, found = g, ca.v, cb.v, true
			}
		}
	}
	return a, b, found
}
