package kl

import (
	"math/rand"
	"testing"

	"fasthgp/internal/bruteforce"
	"fasthgp/internal/hypergraph"
	"fasthgp/internal/partition"
)

func mkHG(t *testing.T, n int, edges [][]int) *hypergraph.Hypergraph {
	t.Helper()
	h, err := hypergraph.FromEdges(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestErrors(t *testing.T) {
	h := mkHG(t, 1, [][]int{{0}})
	if _, err := Bisect(h, Options{}); err == nil {
		t.Error("accepted 1-vertex hypergraph")
	}
	h2 := mkHG(t, 4, [][]int{{0, 1}})
	if _, err := Improve(h2, partition.New(4), Options{}); err == nil {
		t.Error("accepted incomplete initial partition")
	}
}

func TestRandomBisectionBalanced(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{2, 5, 10, 31} {
		p := RandomBisection(n, rng)
		if !partition.IsBisection(p) {
			l, r, _ := p.Counts()
			t.Errorf("n=%d: split %d|%d not a bisection", n, l, r)
		}
	}
}

func TestPreservesCardinalities(t *testing.T) {
	h := mkHG(t, 8, [][]int{{0, 1}, {2, 3}, {4, 5}, {6, 7}, {1, 2}, {5, 6}, {0, 7}, {3, 4}})
	rng := rand.New(rand.NewSource(3))
	p := RandomBisection(8, rng)
	l0, r0, _ := p.Counts()
	res, err := Improve(h, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	l1, r1, _ := res.Partition.Counts()
	if l0 != l1 || r0 != r1 {
		t.Errorf("cardinalities changed: %d|%d → %d|%d", l0, r0, l1, r1)
	}
}

func TestFindsBridgeCut(t *testing.T) {
	// Two 2-connected blocks of 6 joined by one edge; optimum bisection
	// cuts 1.
	b := hypergraph.NewBuilder(12)
	for i := 0; i < 6; i++ {
		b.AddEdge(i, (i+1)%6)
		b.AddEdge(6+i, 6+(i+1)%6)
	}
	b.AddEdge(0, 6)
	h := b.MustBuild()
	best := 1 << 30
	for seed := int64(0); seed < 5; seed++ {
		res, err := Bisect(h, Options{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Partition.Validate(h); err != nil {
			t.Fatal(err)
		}
		if res.CutSize < best {
			best = res.CutSize
		}
		if got := partition.CutSize(h, res.Partition); got != res.CutSize {
			t.Fatalf("reported cut %d != recomputed %d", res.CutSize, got)
		}
	}
	if best != 1 {
		t.Errorf("best KL cut over 5 seeds = %d, want 1", best)
	}
}

func TestNeverWorseThanInitial(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 15; trial++ {
		n := 6 + 2*rng.Intn(8)
		m := n + rng.Intn(3*n)
		b := hypergraph.NewBuilder(n)
		for i := 0; i < m; i++ {
			size := 2 + rng.Intn(3)
			pins := make([]int, size)
			for j := range pins {
				pins[j] = rng.Intn(n)
			}
			b.AddEdge(pins...)
		}
		h := b.MustBuild()
		p := RandomBisection(n, rng)
		before := partition.CutSize(h, p)
		res, err := Improve(h, p, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.CutSize > before {
			t.Errorf("trial %d: KL worsened cut %d → %d", trial, before, res.CutSize)
		}
		if res.Passes < 1 || res.Passes > 10 {
			t.Errorf("trial %d: passes = %d", trial, res.Passes)
		}
	}
}

func TestMatchesBruteForceOnSmall(t *testing.T) {
	// KL is a local heuristic; with a few restarts it should match the
	// optimum bisection on small structured instances.
	h := mkHG(t, 8, [][]int{
		{0, 1, 2}, {1, 2, 3}, {0, 3},
		{4, 5, 6}, {5, 6, 7}, {4, 7},
		{3, 4},
	})
	_, opt, err := bruteforce.MinBisection(h)
	if err != nil {
		t.Fatal(err)
	}
	best := 1 << 30
	for seed := int64(0); seed < 8; seed++ {
		res, err := Bisect(h, Options{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if res.CutSize < best {
			best = res.CutSize
		}
	}
	if best != opt {
		t.Errorf("best KL cut = %d, optimum = %d", best, opt)
	}
}

func TestCandidatesOptionRespected(t *testing.T) {
	// Candidates=1 restricts pairing to the single top-gain vertex per
	// side; the algorithm must still terminate and return a valid
	// bisection.
	h := mkHG(t, 6, [][]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}})
	res, err := Bisect(h, Options{Seed: 2, Candidates: 1, MaxPasses: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Partition.Validate(h); err != nil {
		t.Fatal(err)
	}
}
