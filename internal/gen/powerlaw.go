package gen

import (
	"fmt"
	"math/rand"

	"fasthgp/internal/hypergraph"
)

// PowerLawConfig parameterizes PowerLaw — the huge-instance generator
// behind the `huge` perf family. Real netlists are far from uniform:
// pin counts follow a power law (a few bus/clock-like hubs touch
// thousands of nets) and net sizes are geometric (most nets are 2–3
// pins, with a heavy tail). Uniform H(n,d,r) instances coarsen
// unrealistically well, so scale testing needs this shape.
type PowerLawConfig struct {
	// NumEdges is the number of nets to generate.
	NumEdges int
	// Alpha is the Zipf exponent of the vertex-popularity distribution
	// (must be > 1; default 1.5). Lower = heavier hubs.
	Alpha float64
	// MinEdgeSize and MaxEdgeSize bound pins per net (defaults 2, 32).
	MinEdgeSize, MaxEdgeSize int
	// GeomP is the per-step stop probability of the geometric net-size
	// distribution (default 0.35): expected net size ≈ Min + (1−p)/p.
	GeomP float64
	// HubFraction is the fraction of each net's pins drawn from the
	// Zipf popularity distribution; the rest are uniform (default 0.5).
	HubFraction float64
}

func (c *PowerLawConfig) defaults() {
	if c.Alpha <= 1 {
		c.Alpha = 1.5
	}
	if c.MinEdgeSize < 2 {
		c.MinEdgeSize = 2
	}
	if c.MaxEdgeSize < c.MinEdgeSize {
		c.MaxEdgeSize = c.MinEdgeSize + 30
	}
	if c.GeomP <= 0 || c.GeomP >= 1 {
		c.GeomP = 0.35
	}
	if c.HubFraction <= 0 || c.HubFraction > 1 {
		c.HubFraction = 0.5
	}
}

// PowerLaw generates a hypergraph on n vertices with power-law vertex
// popularity and geometric net sizes. Deterministic given rng.
func PowerLaw(n int, cfg PowerLawConfig, rng *rand.Rand) (*hypergraph.Hypergraph, error) {
	if n < 2 {
		return nil, fmt.Errorf("gen: PowerLaw needs n >= 2, got %d", n)
	}
	cfg.defaults()
	zipf := rand.NewZipf(rng, cfg.Alpha, 1, uint64(n-1))
	b := hypergraph.NewBuilder(n)
	seen := make([]int, n) // stamp: last edge id + 1 that used the vertex
	pins := make([]int, 0, cfg.MaxEdgeSize)
	for e := 0; e < cfg.NumEdges; e++ {
		size := cfg.MinEdgeSize
		for size < cfg.MaxEdgeSize && rng.Float64() > cfg.GeomP {
			size++
		}
		if size > n {
			size = n
		}
		pins = pins[:0]
		// Bounded rejection sampling, then a deterministic linear probe
		// so pathological rng streams can't stall generation.
		for attempts := 0; len(pins) < size && attempts < 8*size; attempts++ {
			var v int
			if rng.Float64() < cfg.HubFraction {
				v = int(zipf.Uint64())
			} else {
				v = rng.Intn(n)
			}
			if seen[v] != e+1 {
				seen[v] = e + 1
				pins = append(pins, v)
			}
		}
		for v := 0; len(pins) < size && v < n; v++ {
			if seen[v] != e+1 {
				seen[v] = e + 1
				pins = append(pins, v)
			}
		}
		b.AddEdge(pins...)
	}
	return b.Build()
}
