package gen

import (
	"math/rand"
	"testing"

	"fasthgp/internal/bruteforce"
	"fasthgp/internal/hypergraph"
	"fasthgp/internal/partition"
)

func TestRandomBasic(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	h, err := Random(50, RandomConfig{NumEdges: 100, MinEdgeSize: 2, MaxEdgeSize: 5, MaxDegree: 8}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if h.NumVertices() != 50 || h.NumEdges() != 100 {
		t.Fatalf("dims = %d,%d", h.NumVertices(), h.NumEdges())
	}
	for e := 0; e < h.NumEdges(); e++ {
		if s := h.EdgeSize(e); s < 1 || s > 5 {
			t.Errorf("edge %d size %d outside [1,5]", e, s)
		}
	}
}

func TestRandomDegreeBoundSoft(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	h, err := Random(30, RandomConfig{NumEdges: 60, MinEdgeSize: 2, MaxEdgeSize: 3, MaxDegree: 6}, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Soft bound: the vast majority must respect it; tolerate tiny
	// overflow from the fallback path.
	over := 0
	for v := 0; v < h.NumVertices(); v++ {
		if h.VertexDegree(v) > 6 {
			over++
		}
	}
	if over > 2 {
		t.Errorf("%d vertices exceed the degree bound", over)
	}
}

func TestRandomErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	if _, err := Random(0, RandomConfig{NumEdges: 1}, rng); err == nil {
		t.Error("accepted n=0")
	}
}

func TestPlantedCutStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n, c := 40, 3
	h, planted, err := PlantedCut(n, PlantedConfig{CutSize: c, IntraEdges: 80, MaxEdgeSize: 4, MaxDegree: 8}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(planted) != c {
		t.Fatalf("planted = %v, want %d nets", planted, c)
	}
	// The planted bisection cuts exactly the planted nets.
	p := partition.New(n)
	for v := 0; v < n; v++ {
		if v < n/2 {
			p.Assign(v, partition.Left)
		} else {
			p.Assign(v, partition.Right)
		}
	}
	if got := partition.CutSize(h, p); got != c {
		t.Errorf("planted bisection cuts %d, want %d", got, c)
	}
	for _, e := range planted {
		if !partition.Crosses(h, p, e) {
			t.Errorf("planted net %d does not cross", e)
		}
	}
	// Each half is connected: the whole hypergraph has 1 component.
	if _, k := h.Components(); k != 1 {
		t.Errorf("components = %d, want 1", k)
	}
}

func TestPlantedCutIsOptimalOnSmall(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	h, _, err := PlantedCut(16, PlantedConfig{CutSize: 1, IntraEdges: 40, MaxEdgeSize: 3, MaxDegree: 8}, rng)
	if err != nil {
		t.Fatal(err)
	}
	_, opt, err := bruteforce.MinBisection(h)
	if err != nil {
		t.Fatal(err)
	}
	if opt != 1 {
		t.Errorf("optimum bisection = %d, want the planted 1", opt)
	}
}

func TestPlantedCutErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	if _, _, err := PlantedCut(7, PlantedConfig{CutSize: 1, IntraEdges: 10}, rng); err == nil {
		t.Error("accepted odd n")
	}
	if _, _, err := PlantedCut(2, PlantedConfig{CutSize: 1, IntraEdges: 10}, rng); err == nil {
		t.Error("accepted n=2")
	}
}

func TestDisconnected(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	h, err := Disconnected(60, 3, 15, rng)
	if err != nil {
		t.Fatal(err)
	}
	_, k := h.Components()
	if k != 3 {
		t.Errorf("components = %d, want 3", k)
	}
	if _, err := Disconnected(3, 2, 5, rng); err == nil {
		t.Error("accepted n < 2k")
	}
	if _, err := Disconnected(10, 1, 5, rng); err == nil {
		t.Error("accepted k=1")
	}
}

func TestProfileDimensionsAndConnectivity(t *testing.T) {
	for _, tech := range []Technology{PCB, StdCell, GateArray, Hybrid} {
		rng := rand.New(rand.NewSource(int64(tech) + 10))
		h, err := Profile(ProfileConfig{Modules: 120, Signals: 240, Technology: tech}, rng)
		if err != nil {
			t.Fatalf("%v: %v", tech, err)
		}
		if h.NumVertices() != 120 {
			t.Errorf("%v: modules = %d", tech, h.NumVertices())
		}
		if h.NumEdges() != 240 {
			t.Errorf("%v: signals = %d", tech, h.NumEdges())
		}
		if _, k := h.Components(); k != 1 {
			t.Errorf("%v: %d components, want connected", tech, k)
		}
	}
}

func TestProfileHasLargeNets(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	h, err := Profile(ProfileConfig{Modules: 400, Signals: 900, Technology: PCB, LargeNetFraction: 0.05}, rng)
	if err != nil {
		t.Fatal(err)
	}
	large := 0
	for e := 0; e < h.NumEdges(); e++ {
		if h.EdgeSize(e) >= 14 {
			large++
		}
	}
	if large < 10 {
		t.Errorf("only %d nets with >= 14 pins; Table 1 needs a population", large)
	}
}

func TestProfileWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	h, err := Profile(ProfileConfig{Modules: 100, Signals: 200, Technology: GateArray}, rng)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < h.NumVertices(); v++ {
		if h.VertexWeight(v) != 1 {
			t.Fatalf("gate-array module %d weight %d, want 1", v, h.VertexWeight(v))
		}
	}
	rng = rand.New(rand.NewSource(13))
	hs, err := Profile(ProfileConfig{Modules: 100, Signals: 200, Technology: StdCell}, rng)
	if err != nil {
		t.Fatal(err)
	}
	varied := false
	for v := 0; v < hs.NumVertices(); v++ {
		if hs.VertexWeight(v) != hs.VertexWeight(0) {
			varied = true
			break
		}
	}
	if !varied {
		t.Error("std-cell weights all equal; should track pin counts")
	}
}

func TestProfileErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := Profile(ProfileConfig{Modules: 2, Signals: 5}, rng); err == nil {
		t.Error("accepted tiny module count")
	}
	if _, err := Profile(ProfileConfig{Modules: 10, Signals: 0}, rng); err == nil {
		t.Error("accepted zero signals")
	}
}

func TestTable2Instances(t *testing.T) {
	wantDims := map[Table2Name][2]int{
		Bd1: {103, 211}, Bd2: {160, 320}, Bd3: {242, 502},
		IC1: {561, 800}, IC2: {2471, 3496},
		Diff1: {500, 700}, Diff2: {500, 700}, Diff3: {500, 700},
	}
	for _, name := range Table2Names() {
		h, err := Table2Instance(name, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		want := wantDims[name]
		if h.NumVertices() != want[0] || h.NumEdges() != want[1] {
			t.Errorf("%s: dims (%d,%d), want (%d,%d)", name, h.NumVertices(), h.NumEdges(), want[0], want[1])
		}
	}
	if _, err := Table2Instance("nope", 1); err == nil {
		t.Error("accepted unknown instance name")
	}
}

func TestTechnologyString(t *testing.T) {
	if PCB.String() != "PCB" || StdCell.String() != "Std-cell" ||
		GateArray.String() != "GA" || Hybrid.String() != "Hybrid" {
		t.Error("Technology names broken")
	}
	if Technology(9).String() != "Technology(9)" {
		t.Error("unknown technology name broken")
	}
}

func TestDeterminism(t *testing.T) {
	mk := func() *hypergraph.Hypergraph {
		h, err := Table2Instance(Bd1, 99)
		if err != nil {
			t.Fatal(err)
		}
		return h
	}
	a, b := mk(), mk()
	if a.NumPins() != b.NumPins() {
		t.Fatal("same seed produced different pin counts")
	}
	for e := 0; e < a.NumEdges(); e++ {
		pa, pb := a.EdgePins(e), b.EdgePins(e)
		if len(pa) != len(pb) {
			t.Fatalf("edge %d size differs", e)
		}
		for i := range pa {
			if pa[i] != pb[i] {
				t.Fatalf("edge %d pins differ", e)
			}
		}
	}
}
