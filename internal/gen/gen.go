// Package gen generates the synthetic workloads used to reproduce the
// paper's evaluation:
//
//   - uniform random hypergraphs H(n, d, r) with bounded vertex degree
//     d and edge size r (the class the paper's probabilistic analysis
//     works in);
//   - "difficult" planted-cut instances H(n, d, r, c) with minimum
//     cutsize c = o(n^{1-1/d}) in the sense of Bui–Chaudhuri–Leighton–
//     Sipser (the Diff rows of Table 2), where standard heuristics get
//     stuck but Algorithm I provably succeeds;
//   - pathological disconnected instances (c = 0);
//   - circuit-profile netlists standing in for the paper's proprietary
//     industry suite (Bd/IC rows of Table 2 and the four technologies
//     of Table 1): a recursive cluster hierarchy provides the "natural
//     functional partitions (logical hierarchy)" the paper observes in
//     real netlists, with technology-specific net-size and module-
//     weight distributions and a sprinkling of large bus nets.
//
// All generators are deterministic given the caller's *rand.Rand.
package gen

import (
	"fmt"
	"math/rand"

	"fasthgp/internal/hypergraph"
)

// RandomConfig parameterizes Random.
type RandomConfig struct {
	// NumEdges is the number of nets to generate.
	NumEdges int
	// MinEdgeSize and MaxEdgeSize bound pins per net (defaults 2 and 4).
	MinEdgeSize, MaxEdgeSize int
	// MaxDegree softly bounds vertex degree d: pin sampling avoids
	// vertices already at the bound when alternatives remain. 0 means
	// unbounded.
	MaxDegree int
}

func (c *RandomConfig) defaults() {
	if c.MinEdgeSize < 1 {
		c.MinEdgeSize = 2
	}
	if c.MaxEdgeSize < c.MinEdgeSize {
		c.MaxEdgeSize = c.MinEdgeSize + 2
	}
}

// Random generates a uniform random hypergraph on n vertices.
func Random(n int, cfg RandomConfig, rng *rand.Rand) (*hypergraph.Hypergraph, error) {
	if n < 1 {
		return nil, fmt.Errorf("gen: Random needs n >= 1, got %d", n)
	}
	cfg.defaults()
	b := hypergraph.NewBuilder(n)
	deg := make([]int, n)
	for e := 0; e < cfg.NumEdges; e++ {
		size := cfg.MinEdgeSize + rng.Intn(cfg.MaxEdgeSize-cfg.MinEdgeSize+1)
		if size > n {
			size = n
		}
		pins := samplePins(n, size, deg, cfg.MaxDegree, rng, 0, n)
		for _, p := range pins {
			deg[p]++
		}
		b.AddEdge(pins...)
	}
	return b.Build()
}

// samplePins draws `size` distinct vertices from [lo,hi), preferring
// vertices below the degree bound. It falls back to over-bound vertices
// when the range is exhausted, so generation always succeeds.
func samplePins(n, size int, deg []int, maxDeg int, rng *rand.Rand, lo, hi int) []int {
	width := hi - lo
	if size > width {
		size = width
	}
	pins := make([]int, 0, size)
	seen := make(map[int]bool, size)
	const tries = 64
	for len(pins) < size {
		v := -1
		for t := 0; t < tries; t++ {
			cand := lo + rng.Intn(width)
			if seen[cand] {
				continue
			}
			if maxDeg > 0 && deg[cand] >= maxDeg {
				continue
			}
			v = cand
			break
		}
		if v == -1 {
			// Degree bound saturated in this range: accept any unseen
			// vertex.
			for t := 0; t < tries*4 && v == -1; t++ {
				cand := lo + rng.Intn(width)
				if !seen[cand] {
					v = cand
				}
			}
			if v == -1 {
				break // range effectively exhausted
			}
		}
		seen[v] = true
		pins = append(pins, v)
	}
	return pins
}

// PlantedConfig parameterizes PlantedCut.
type PlantedConfig struct {
	// CutSize is the number of planted crossing nets c. The instance is
	// "difficult" in the paper's sense when c = o(n^{1-1/d}).
	CutSize int
	// IntraEdges is the total number of one-sided nets (split evenly
	// between the halves).
	IntraEdges int
	// MinEdgeSize and MaxEdgeSize bound pins per net (defaults 2, 4).
	MinEdgeSize, MaxEdgeSize int
	// MaxDegree softly bounds vertex degree (0 = unbounded).
	MaxDegree int
}

func (c *PlantedConfig) defaults() {
	if c.MinEdgeSize < 2 {
		c.MinEdgeSize = 2
	}
	if c.MaxEdgeSize < c.MinEdgeSize {
		c.MaxEdgeSize = c.MinEdgeSize + 2
	}
}

// PlantedCut builds a difficult instance: two halves [0,n/2) and
// [n/2,n), each internally connected by a Hamiltonian chain of 2-pin
// nets plus random intra-half nets, joined by exactly CutSize crossing
// nets. The bisection splitting the halves therefore cuts exactly
// CutSize nets, and (for c below the connectivity of the halves) it is
// the unique minimum bisection. The planted crossing net indices are
// returned.
func PlantedCut(n int, cfg PlantedConfig, rng *rand.Rand) (*hypergraph.Hypergraph, []int, error) {
	if n < 4 || n%2 != 0 {
		return nil, nil, fmt.Errorf("gen: PlantedCut needs even n >= 4, got %d", n)
	}
	cfg.defaults()
	half := n / 2
	b := hypergraph.NewBuilder(n)
	deg := make([]int, n)
	addPins := func(pins []int) int {
		for _, p := range pins {
			deg[p]++
		}
		return b.AddEdge(pins...)
	}
	// Overlapping 4-pin chain nets keep each half connected while
	// spending few nets on it, leaving most of the budget for random
	// intra nets — the expander-like structure the paper's difficult-
	// input theorem assumes. (A 2-pin chain would make the dual G
	// path-like, which is outside the theorem's regime.)
	chains := 0
	for _, lo := range []int{0, half} {
		hi := lo + half
		for i := lo; i < hi-1; i += 3 {
			end := i + 4
			if end > hi {
				end = hi
			}
			pins := make([]int, 0, 4)
			for p := i; p < end; p++ {
				pins = append(pins, p)
			}
			if len(pins) >= 2 {
				addPins(pins)
				chains++
			}
		}
	}
	remaining := cfg.IntraEdges - chains
	for e := 0; e < remaining; e++ {
		lo, hi := 0, half
		if e%2 == 1 {
			lo, hi = half, n
		}
		size := cfg.MinEdgeSize + rng.Intn(cfg.MaxEdgeSize-cfg.MinEdgeSize+1)
		pins := samplePins(n, size, deg, cfg.MaxDegree, rng, lo, hi)
		if len(pins) >= 1 {
			addPins(pins)
		}
	}
	planted := make([]int, 0, cfg.CutSize)
	for c := 0; c < cfg.CutSize; c++ {
		size := cfg.MinEdgeSize + rng.Intn(cfg.MaxEdgeSize-cfg.MinEdgeSize+1)
		if size < 2 {
			size = 2
		}
		// At least one pin on each side.
		kLeft := 1 + rng.Intn(size-1)
		left := samplePins(n, kLeft, deg, cfg.MaxDegree, rng, 0, half)
		right := samplePins(n, size-kLeft, deg, cfg.MaxDegree, rng, half, n)
		if len(left) == 0 {
			left = []int{rng.Intn(half)}
		}
		if len(right) == 0 {
			right = []int{half + rng.Intn(half)}
		}
		planted = append(planted, addPins(append(left, right...)))
	}
	h, err := b.Build()
	if err != nil {
		return nil, nil, err
	}
	return h, planted, nil
}

// Disconnected builds k disjoint random connected blobs of roughly
// equal size — the pathological c = 0 family on which standard
// heuristics "output a locally minimum cut of size Θ(|E|)" while BFS on
// the intersection graph detects the disconnection immediately.
func Disconnected(n, k int, edgesPerBlob int, rng *rand.Rand) (*hypergraph.Hypergraph, error) {
	if k < 2 || n < 2*k {
		return nil, fmt.Errorf("gen: Disconnected needs k >= 2 and n >= 2k, got n=%d k=%d", n, k)
	}
	b := hypergraph.NewBuilder(n)
	deg := make([]int, n)
	bounds := make([]int, k+1)
	for i := 0; i <= k; i++ {
		bounds[i] = i * n / k
	}
	for blob := 0; blob < k; blob++ {
		lo, hi := bounds[blob], bounds[blob+1]
		for i := lo; i+1 < hi; i++ {
			b.AddEdge(i, i+1)
			deg[i]++
			deg[i+1]++
		}
		for e := 0; e < edgesPerBlob; e++ {
			size := 2 + rng.Intn(2)
			pins := samplePins(n, size, deg, 0, rng, lo, hi)
			if len(pins) > 0 {
				b.AddEdge(pins...)
				for _, p := range pins {
					deg[p]++
				}
			}
		}
	}
	return b.Build()
}
