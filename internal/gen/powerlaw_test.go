package gen

import (
	"math/rand"
	"testing"
)

func TestPowerLawShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	h, err := PowerLaw(2000, PowerLawConfig{NumEdges: 4000}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if h.NumVertices() != 2000 || h.NumEdges() == 0 {
		t.Fatalf("unexpected shape: %d vertices, %d edges", h.NumVertices(), h.NumEdges())
	}
	// Power-law popularity: the max degree should dwarf the average.
	avg := float64(h.NumPins()) / 2000
	if float64(h.MaxVertexDegree()) < 5*avg {
		t.Errorf("max degree %d is not heavy-tailed (avg %.1f)", h.MaxVertexDegree(), avg)
	}
	// Geometric sizes: average net size near Min + (1-p)/p ≈ 3.9.
	if s := h.AverageEdgeSize(); s < 2.5 || s > 6 {
		t.Errorf("average edge size %.2f outside geometric envelope", s)
	}
}

func TestPowerLawDeterministic(t *testing.T) {
	a, err := PowerLaw(500, PowerLawConfig{NumEdges: 900}, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := PowerLaw(500, PowerLawConfig{NumEdges: 900}, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	if a.NumEdges() != b.NumEdges() || a.NumPins() != b.NumPins() {
		t.Fatalf("nondeterministic: %d/%d vs %d/%d edges/pins", a.NumEdges(), a.NumPins(), b.NumEdges(), b.NumPins())
	}
	for e := 0; e < a.NumEdges(); e++ {
		ap, bp := a.EdgePins(e), b.EdgePins(e)
		if len(ap) != len(bp) {
			t.Fatalf("edge %d size mismatch", e)
		}
		for i := range ap {
			if ap[i] != bp[i] {
				t.Fatalf("edge %d pin %d mismatch", e, i)
			}
		}
	}
}

func TestPowerLawTinyN(t *testing.T) {
	if _, err := PowerLaw(1, PowerLawConfig{NumEdges: 3}, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("expected error for n=1")
	}
	h, err := PowerLaw(2, PowerLawConfig{NumEdges: 3, MinEdgeSize: 2, MaxEdgeSize: 4}, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if h.NumEdges() == 0 {
		t.Fatal("no edges on n=2")
	}
}
