package gen

import (
	"fmt"
	"math/rand"

	"fasthgp/internal/hypergraph"
)

// Technology selects a circuit-profile family, mirroring the four rows
// of the paper's Table 1.
type Technology int

// Technologies.
const (
	// PCB: printed-circuit boards — wide net-size distribution, heavy
	// modules of very uneven weight, relatively many large nets.
	PCB Technology = iota
	// StdCell: standard-cell ICs — mostly 2–4 pin nets, cell area
	// roughly proportional to pin count (the paper's granularization
	// remark), a few wide buses.
	StdCell
	// GateArray: gate arrays — uniform unit-weight modules, small nets.
	GateArray
	// Hybrid: mixed technology — a blend of the above.
	Hybrid
)

// String names the technology as in Table 1.
func (t Technology) String() string {
	switch t {
	case PCB:
		return "PCB"
	case StdCell:
		return "Std-cell"
	case GateArray:
		return "GA"
	case Hybrid:
		return "Hybrid"
	default:
		return fmt.Sprintf("Technology(%d)", int(t))
	}
}

// ProfileConfig parameterizes Profile.
type ProfileConfig struct {
	// Modules and Signals are the hypergraph dimensions (the paper's
	// "(Mods,Sigs)" columns).
	Modules, Signals int
	// Technology selects the distribution family.
	Technology Technology
	// LargeNetFraction overrides the technology's default fraction of
	// bus-like large nets when positive.
	LargeNetFraction float64
}

// profileParams are the per-technology knobs.
type profileParams struct {
	// sizes is a discrete distribution over small-net sizes.
	sizes []sizeProb
	// largeFrac is the fraction of nets that are wide buses.
	largeFrac float64
	// largeMin, largeMax bound bus-net sizes.
	largeMin, largeMax int
	// leafSize is the module count of a leaf cluster.
	leafSize int
	// localDecay is the per-level probability decay of scoping a net
	// one level higher in the cluster tree (smaller ⇒ more local).
	localDecay float64
	// weight draws a module weight given its pin count.
	weight func(pins int, rng *rand.Rand) int64
}

type sizeProb struct {
	size int
	p    float64
}

func paramsFor(t Technology) profileParams {
	switch t {
	case PCB:
		return profileParams{
			sizes:      []sizeProb{{2, 0.35}, {3, 0.25}, {4, 0.15}, {5, 0.10}, {6, 0.07}, {8, 0.05}, {10, 0.03}},
			largeFrac:  0.04,
			largeMin:   14,
			largeMax:   40,
			leafSize:   10,
			localDecay: 0.45,
			weight: func(pins int, rng *rand.Rand) int64 {
				return int64(1 + pins + rng.Intn(1+4*pins))
			},
		}
	case StdCell:
		return profileParams{
			sizes:      []sizeProb{{2, 0.50}, {3, 0.30}, {4, 0.12}, {5, 0.05}, {6, 0.03}},
			largeFrac:  0.02,
			largeMin:   16,
			largeMax:   32,
			leafSize:   8,
			localDecay: 0.35,
			weight: func(pins int, rng *rand.Rand) int64 {
				// Cell area roughly proportional to the number of I/Os.
				return int64(1 + pins)
			},
		}
	case GateArray:
		return profileParams{
			sizes:      []sizeProb{{2, 0.55}, {3, 0.28}, {4, 0.12}, {5, 0.05}},
			largeFrac:  0.015,
			largeMin:   14,
			largeMax:   24,
			leafSize:   8,
			localDecay: 0.35,
			weight:     func(int, *rand.Rand) int64 { return 1 },
		}
	default: // Hybrid
		return profileParams{
			sizes:      []sizeProb{{2, 0.40}, {3, 0.25}, {4, 0.15}, {5, 0.08}, {6, 0.07}, {8, 0.05}},
			largeFrac:  0.03,
			largeMin:   14,
			largeMax:   36,
			leafSize:   9,
			localDecay: 0.40,
			weight: func(pins int, rng *rand.Rand) int64 {
				if rng.Intn(2) == 0 {
					return int64(1 + pins)
				}
				return int64(1 + pins + rng.Intn(1+3*pins))
			},
		}
	}
}

// Profile generates a circuit-profile netlist: modules are leaves of a
// recursive binary cluster tree (the logical hierarchy), each net is
// scoped to a random tree node — leaf-biased, so most nets are local —
// and draws its pins inside that node's module range; a fraction of
// nets are wide buses scoped high in the tree. One glue net per
// internal node spans its children, guaranteeing a connected netlist.
// Module labels are randomly permuted so the hierarchy is not encoded
// in the index order.
func Profile(cfg ProfileConfig, rng *rand.Rand) (*hypergraph.Hypergraph, error) {
	if cfg.Modules < 4 {
		return nil, fmt.Errorf("gen: Profile needs >= 4 modules, got %d", cfg.Modules)
	}
	if cfg.Signals < 1 {
		return nil, fmt.Errorf("gen: Profile needs >= 1 signals, got %d", cfg.Signals)
	}
	pp := paramsFor(cfg.Technology)
	if cfg.LargeNetFraction > 0 {
		pp.largeFrac = cfg.LargeNetFraction
	}
	n := cfg.Modules

	// Build the cluster tree as a list of [lo,hi) ranges per level.
	type node struct{ lo, hi int }
	levels := [][]node{{{0, n}}}
	for {
		last := levels[len(levels)-1]
		if last[0].hi-last[0].lo <= pp.leafSize {
			break
		}
		var next []node
		for _, nd := range last {
			mid := (nd.lo + nd.hi) / 2
			if mid == nd.lo || mid == nd.hi {
				next = append(next, nd)
				continue
			}
			next = append(next, node{nd.lo, mid}, node{mid, nd.hi})
		}
		levels = append(levels, next)
	}
	leafLevel := len(levels) - 1

	perm := rng.Perm(n) // hierarchy position → module label
	deg := make([]int, n)
	var nets [][]int // position-indexed pins; labels applied at build
	addNet := func(pins []int) {
		cp := make([]int, len(pins))
		copy(cp, pins)
		for _, p := range cp {
			deg[p]++
		}
		nets = append(nets, cp)
	}

	// Glue nets along the hierarchy (one per internal split).
	glue := 0
	for l := 0; l < leafLevel; l++ {
		for _, nd := range levels[l] {
			mid := (nd.lo + nd.hi) / 2
			if mid == nd.lo || mid == nd.hi {
				continue
			}
			left := samplePins(n, 1+rng.Intn(2), deg, 0, rng, nd.lo, mid)
			right := samplePins(n, 1+rng.Intn(2), deg, 0, rng, mid, nd.hi)
			addNet(append(left, right...))
			glue++
			if glue >= cfg.Signals {
				break
			}
		}
		if glue >= cfg.Signals {
			break
		}
	}

	// Remaining nets: local small nets and wide buses.
	for s := glue; s < cfg.Signals; s++ {
		if rng.Float64() < pp.largeFrac {
			width := pp.largeMin + rng.Intn(pp.largeMax-pp.largeMin+1)
			// Buses are global: their pins sample the whole chip, which
			// is what makes them near-certain to cross any balanced cut
			// (the paper's Table 1 observation).
			pins := samplePins(n, width, deg, 0, rng, 0, n)
			if len(pins) >= 2 {
				addNet(pins)
			} else {
				s--
			}
			continue
		}
		// Choose scope level: leaf with prob (1-decay), parent with
		// prob decay·(1-decay), etc.
		lvl := leafLevel
		for lvl > 0 && rng.Float64() < pp.localDecay {
			lvl--
		}
		nd := levels[lvl][rng.Intn(len(levels[lvl]))]
		size := drawSize(pp.sizes, rng)
		pins := samplePins(n, size, deg, 0, rng, nd.lo, nd.hi)
		if len(pins) < 1 {
			s--
			continue
		}
		addNet(pins)
	}

	// Connectivity repair in two passes. Pass 1: attach modules no net
	// touched to a net scoped to their own leaf cluster when one
	// exists, keeping the repair local. Pass 2: whatever components
	// remain are joined onto the top-level glue net — the synthetic
	// analogue of a global clock/reset net.
	if len(nets) > 0 {
		leaf := levels[leafLevel]
		leafOf := func(pos int) int {
			for li, nd := range leaf {
				if pos >= nd.lo && pos < nd.hi {
					return li
				}
			}
			return -1
		}
		netInLeaf := make([]int, len(leaf))
		for li := range netInLeaf {
			netInLeaf[li] = -1
		}
		for ni, pins := range nets {
			li := leafOf(pins[0])
			if li >= 0 && netInLeaf[li] == -1 {
				netInLeaf[li] = ni
			}
		}
		for pos := 0; pos < n; pos++ {
			if deg[pos] > 0 {
				continue
			}
			if li := leafOf(pos); li >= 0 && netInLeaf[li] >= 0 {
				ni := netInLeaf[li]
				nets[ni] = append(nets[ni], pos)
				deg[pos]++
			}
		}

		parent := make([]int, n)
		for i := range parent {
			parent[i] = i
		}
		var find func(int) int
		find = func(x int) int {
			for parent[x] != x {
				parent[x] = parent[parent[x]]
				x = parent[x]
			}
			return x
		}
		for _, pins := range nets {
			for _, p := range pins[1:] {
				parent[find(p)] = find(pins[0])
			}
		}
		root := find(nets[0][0])
		for pos := 0; pos < n; pos++ {
			if find(pos) == root {
				continue
			}
			nets[0] = append(nets[0], pos)
			deg[pos]++
			parent[find(pos)] = root
		}
	}

	b := hypergraph.NewBuilder(n)
	for _, pins := range nets {
		labeled := make([]int, len(pins))
		for i, p := range pins {
			labeled[i] = perm[p]
		}
		b.AddEdge(labeled...)
	}
	// Weights depend on final pin counts (position-indexed deg ↔ label
	// via perm).
	for pos := 0; pos < n; pos++ {
		b.SetVertexWeight(perm[pos], pp.weight(deg[pos], rng))
	}
	return b.Build()
}

func drawSize(dist []sizeProb, rng *rand.Rand) int {
	x := rng.Float64()
	acc := 0.0
	for _, sp := range dist {
		acc += sp.p
		if x < acc {
			return sp.size
		}
	}
	return dist[len(dist)-1].size
}

// Table2Name identifies a canned Table-2 instance.
type Table2Name string

// The paper's Table 2 example set with its (Mods,Sigs) dimensions.
// Bd2's dimensions are garbled in the source scan; we use an
// interpolated (160, 320).
const (
	Bd1   Table2Name = "Bd1"
	Bd2   Table2Name = "Bd2"
	Bd3   Table2Name = "Bd3"
	IC1   Table2Name = "IC1"
	IC2   Table2Name = "IC2"
	Diff1 Table2Name = "Diff1"
	Diff2 Table2Name = "Diff2"
	Diff3 Table2Name = "Diff3"
)

// Table2Names lists the Table-2 instances in paper order.
func Table2Names() []Table2Name {
	return []Table2Name{Bd1, Bd2, Bd3, IC1, IC2, Diff1, Diff2, Diff3}
}

// Table2Instance builds the named synthetic stand-in for a Table-2
// example (see DESIGN.md §2 for the substitution rationale). Bd rows
// are PCB profiles, IC rows std-cell profiles, Diff rows planted-cut
// difficult instances on (500,700) with c ∈ {4, 8, 12}.
func Table2Instance(name Table2Name, seed int64) (*hypergraph.Hypergraph, error) {
	rng := rand.New(rand.NewSource(seed))
	switch name {
	case Bd1:
		return Profile(ProfileConfig{Modules: 103, Signals: 211, Technology: PCB}, rng)
	case Bd2:
		return Profile(ProfileConfig{Modules: 160, Signals: 320, Technology: PCB}, rng)
	case Bd3:
		return Profile(ProfileConfig{Modules: 242, Signals: 502, Technology: PCB}, rng)
	case IC1:
		return Profile(ProfileConfig{Modules: 561, Signals: 800, Technology: StdCell}, rng)
	case IC2:
		return Profile(ProfileConfig{Modules: 2471, Signals: 3496, Technology: StdCell}, rng)
	case Diff1, Diff2, Diff3:
		c := map[Table2Name]int{Diff1: 4, Diff2: 8, Diff3: 12}[name]
		h, _, err := PlantedCut(500, PlantedConfig{CutSize: c, IntraEdges: 700 - c, MaxEdgeSize: 4, MaxDegree: 6}, rng)
		return h, err
	default:
		return nil, fmt.Errorf("gen: unknown Table 2 instance %q", name)
	}
}
