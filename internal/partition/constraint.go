// Constraint is the unified balance contract shared by every
// partitioner in the library: an explicit imbalance parameter ε under
// the KaHyPar-style bound max part weight ≤ (1+ε)·⌈w(V)/k⌉, plus an
// optional set of fixed (pre-assigned) vertices that no algorithm may
// move. The per-package ad-hoc balance knobs (BalanceFraction floats,
// absolute int64 tolerances, soft penalties) all derive their numbers
// from this one type so that odd total weights round identically
// everywhere.
package partition

import (
	"fmt"
	"hash/fnv"
	"math"
)

// FreeVertex marks a vertex with no fixed-side assignment in
// Constraint.FixedSide.
const FreeVertex int8 = -1

// Constraint bundles the ε-imbalance bound and the fixed-vertex
// assignment. The zero value is the unconstrained contract: ε = 0 with
// no fixed vertices means "no balance bound requested" (NOT "perfectly
// balanced"), preserving the historical behavior of every call site
// that predates this type.
type Constraint struct {
	// Epsilon is the allowed imbalance: every part must weigh at most
	// (1+ε)·⌈w(V)/k⌉. Negative values are invalid.
	Epsilon float64
	// FixedSide pins vertices: FixedSide[v] is the part id vertex v must
	// end on (0 = Left, 1 = Right for bipartitions; any id in [0,k) for
	// K-way), or FreeVertex (−1) for an unconstrained vertex. A nil or
	// short slice leaves the remaining vertices free.
	FixedSide []int8
}

// FromBalanceFraction maps the historical BalanceFraction knob b (the
// old contract: the smaller side holds at least (0.5−b) of the total
// weight) onto the ε contract. maxSide = (0.5+b)·total = (1+2b)·total/2,
// so ε = 2b reproduces the old bound up to the contract's rounding.
func FromBalanceFraction(b float64) Constraint {
	if b <= 0 {
		return Constraint{}
	}
	return Constraint{Epsilon: 2 * b}
}

// HasBalance reports whether c carries an explicit ε bound.
func (c Constraint) HasBalance() bool { return c.Epsilon > 0 }

// HasFixed reports whether any vertex is pinned.
func (c Constraint) HasFixed() bool {
	for _, s := range c.FixedSide {
		if s >= 0 {
			return true
		}
	}
	return false
}

// IsZero reports whether c is the unconstrained contract.
func (c Constraint) IsZero() bool { return !c.HasBalance() && !c.HasFixed() }

// Fixed returns the pinned part of vertex v, or FreeVertex. Vertices
// beyond len(FixedSide) are free, so a short slice is usable against
// any hypergraph.
func (c Constraint) Fixed(v int) int8 {
	if v < len(c.FixedSide) {
		return c.FixedSide[v]
	}
	return FreeVertex
}

// Validate checks c against a hypergraph with n vertices and k parts:
// ε must be non-negative, FixedSide must not name vertices ≥ n, and
// every pinned part id must lie in [0, k).
func (c Constraint) Validate(n, k int) error {
	if c.Epsilon < 0 {
		return fmt.Errorf("partition: negative epsilon %v", c.Epsilon)
	}
	if math.IsNaN(c.Epsilon) || math.IsInf(c.Epsilon, 0) {
		return fmt.Errorf("partition: epsilon %v is not finite", c.Epsilon)
	}
	if len(c.FixedSide) > n {
		return fmt.Errorf("partition: FixedSide covers %d vertices, hypergraph has %d", len(c.FixedSide), n)
	}
	for v, s := range c.FixedSide {
		if s < -1 || int(s) >= k {
			return fmt.Errorf("partition: vertex %d fixed to part %d, want [0,%d) or -1", v, s, k)
		}
	}
	return nil
}

// MaxSideWeight returns the largest admissible part weight under the
// (1+ε)·⌈total/k⌉ contract, clamped to total. The small additive guard
// keeps exact boundaries from rounding down through float
// representation error (1.2·5 evaluates below 6 in binary floating
// point), and an ε of zero still admits the ceil itself so that odd
// totals remain partitionable.
func (c Constraint) MaxSideWeight(total int64, k int) int64 {
	if k < 2 {
		k = 2
	}
	ceil := (total + int64(k) - 1) / int64(k)
	m := int64(math.Floor((1+c.Epsilon)*float64(ceil) + 1e-9))
	if m > total {
		m = total
	}
	if m < ceil {
		m = ceil
	}
	return m
}

// MinSideWeight returns the least weight either side of a bipartition
// may hold under the contract: total − MaxSideWeight(total, 2).
func (c Constraint) MinSideWeight(total int64) int64 {
	m := total - c.MaxSideWeight(total, 2)
	if m < 0 {
		m = 0
	}
	return m
}

// FixedBools renders the fixed set as a lock mask over n vertices for
// algorithms (FM) that take a []bool lock vector. Returns nil when no
// vertex is pinned.
func (c Constraint) FixedBools(n int) []bool {
	if !c.HasFixed() {
		return nil
	}
	locked := make([]bool, n)
	for v := range c.FixedSide {
		if c.FixedSide[v] >= 0 {
			locked[v] = true
		}
	}
	return locked
}

// ApplyFixed overwrites p with the pinned sides (0 → Left, everything
// else → Right) and returns how many vertices it reassigned. Free
// vertices are untouched.
func (c Constraint) ApplyFixed(p *Bipartition) int {
	changed := 0
	for v := range c.FixedSide {
		if v >= p.Len() {
			break
		}
		s := c.FixedSide[v]
		if s < 0 {
			continue
		}
		want := Left
		if s != 0 {
			want = Right
		}
		if p.Side(v) != want {
			p.Assign(v, want)
			changed++
		}
	}
	return changed
}

// RespectsFixed reports whether every pinned vertex of p sits on its
// pinned side.
func (c Constraint) RespectsFixed(p *Bipartition) bool {
	for v := range c.FixedSide {
		if v >= p.Len() {
			break
		}
		s := c.FixedSide[v]
		if s < 0 {
			continue
		}
		want := Left
		if s != 0 {
			want = Right
		}
		if p.Side(v) != want {
			return false
		}
	}
	return true
}

// FixedWeights sums the pinned vertex weight per side of a
// bipartition contract (part 0 = Left, others = Right).
func (c Constraint) FixedWeights(h weighted) (left, right int64) {
	for v := range c.FixedSide {
		switch {
		case c.FixedSide[v] < 0:
		case c.FixedSide[v] == 0:
			left += h.VertexWeight(v)
		default:
			right += h.VertexWeight(v)
		}
	}
	return
}

// weighted is the slice of the hypergraph API Constraint needs; keeping
// it an interface avoids widening the package's hypergraph dependency
// surface in tests.
type weighted interface {
	VertexWeight(v int) int64
	TotalVertexWeight() int64
}

// Infeasible returns a non-nil reason when no complete bipartition of h
// can satisfy c: a single side's pinned weight already exceeds the
// bound, or the bound is too tight to hold the total at all.
func (c Constraint) Infeasible(h weighted) error {
	if !c.HasBalance() {
		return nil
	}
	total := h.TotalVertexWeight()
	maxSide := c.MaxSideWeight(total, 2)
	if total > 2*maxSide {
		return fmt.Errorf("partition: total weight %d exceeds 2×max side weight %d under epsilon %v", total, maxSide, c.Epsilon)
	}
	l, r := c.FixedWeights(h)
	if l > maxSide {
		return fmt.Errorf("partition: left-fixed weight %d exceeds max side weight %d", l, maxSide)
	}
	if r > maxSide {
		return fmt.Errorf("partition: right-fixed weight %d exceeds max side weight %d", r, maxSide)
	}
	return nil
}

// Key returns a canonical fingerprint of the constraint for cache keys
// and checkpoint metadata. The zero constraint maps to "" so that
// journals and cache entries written before constraints existed remain
// valid.
func (c Constraint) Key() string {
	if c.IsZero() {
		return ""
	}
	if !c.HasFixed() {
		return fmt.Sprintf("eps=%g", c.Epsilon)
	}
	d := fnv.New64a()
	n := 0
	for v := range c.FixedSide {
		if c.FixedSide[v] < 0 {
			continue
		}
		n++
		var buf [5]byte
		buf[0] = byte(c.FixedSide[v])
		buf[1] = byte(v)
		buf[2] = byte(v >> 8)
		buf[3] = byte(v >> 16)
		buf[4] = byte(v >> 24)
		d.Write(buf[:])
	}
	return fmt.Sprintf("eps=%g fixed=%d:%016x", c.Epsilon, n, d.Sum64())
}
