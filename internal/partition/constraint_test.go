package partition

import (
	"math"
	"testing"
)

// stubWeights implements the weighted interface for constraint tests.
type stubWeights []int64

func (s stubWeights) VertexWeight(v int) int64 { return s[v] }
func (s stubWeights) TotalVertexWeight() int64 {
	var t int64
	for _, w := range s {
		t += w
	}
	return t
}

// TestMaxSideWeightBoundaries is the satellite table test for the
// int64-truncation inconsistency: kway used tol = int64(b·total) while
// fm used minSide = int64((0.5−b)·total), which disagree at odd totals.
// Both now derive from MaxSideWeight; these rows pin the contract at
// the off-by-one boundary weights.
func TestMaxSideWeightBoundaries(t *testing.T) {
	cases := []struct {
		total   int64
		k       int
		epsilon float64
		wantMax int64
	}{
		// ε=0 admits exactly the ceil.
		{total: 10, k: 2, epsilon: 0, wantMax: 5},
		{total: 11, k: 2, epsilon: 0, wantMax: 6},
		{total: 1, k: 2, epsilon: 0, wantMax: 1},
		// Exact float boundaries must not round down: 1.2·5 and 1.2·11
		// are below their true value in binary floating point.
		{total: 10, k: 2, epsilon: 0.2, wantMax: 6},
		{total: 21, k: 2, epsilon: 0.2, wantMax: 13},
		{total: 22, k: 2, epsilon: 0.2, wantMax: 13},
		// Odd totals with the old fm default b=0.1 (ε=0.2 after the 2b
		// mapping).
		{total: 9, k: 2, epsilon: 0.2, wantMax: 6},
		{total: 15, k: 2, epsilon: 0.2, wantMax: 9},
		// Truncation: 1.1·8 = 8.8 floors to 8.
		{total: 16, k: 2, epsilon: 0.1, wantMax: 8},
		{total: 20, k: 2, epsilon: 0.1, wantMax: 11},
		// Clamped to the total for huge ε.
		{total: 10, k: 2, epsilon: 3, wantMax: 10},
		// K-way ceils per part.
		{total: 10, k: 4, epsilon: 0, wantMax: 3},
		{total: 12, k: 4, epsilon: 0.5, wantMax: 4},
		{total: 13, k: 4, epsilon: 0.25, wantMax: 5},
	}
	for _, tc := range cases {
		c := Constraint{Epsilon: tc.epsilon}
		if got := c.MaxSideWeight(tc.total, tc.k); got != tc.wantMax {
			t.Errorf("MaxSideWeight(total=%d, k=%d, eps=%g) = %d, want %d",
				tc.total, tc.k, tc.epsilon, got, tc.wantMax)
		}
		if tc.k == 2 {
			// The two derived quantities every partitioner uses must be
			// complements: minSide + maxSide = total, so fm's "side must
			// retain minSide" and kway's "side must not exceed maxSide"
			// can never disagree again.
			min := c.MinSideWeight(tc.total)
			if min+tc.wantMax != tc.total {
				t.Errorf("MinSideWeight(total=%d, eps=%g) = %d; want complement %d",
					tc.total, tc.epsilon, min, tc.total-tc.wantMax)
			}
		}
	}
}

func TestMaxSideWeightAdmitsCeil(t *testing.T) {
	// Every total must remain partitionable at ε=0: the bound can never
	// drop below ⌈total/k⌉.
	for total := int64(1); total <= 64; total++ {
		for k := 2; k <= 5; k++ {
			c := Constraint{}
			ceil := (total + int64(k) - 1) / int64(k)
			if got := c.MaxSideWeight(total, k); got < ceil {
				t.Fatalf("MaxSideWeight(%d, %d) = %d below ceil %d", total, k, got, ceil)
			}
		}
	}
}

func TestFromBalanceFraction(t *testing.T) {
	if !FromBalanceFraction(0).IsZero() {
		t.Error("FromBalanceFraction(0) should be the zero constraint")
	}
	c := FromBalanceFraction(0.1)
	if c.Epsilon != 0.2 {
		t.Errorf("FromBalanceFraction(0.1).Epsilon = %g, want 0.2", c.Epsilon)
	}
}

func TestConstraintValidate(t *testing.T) {
	if err := (Constraint{Epsilon: -0.1}).Validate(4, 2); err == nil {
		t.Error("negative epsilon accepted")
	}
	if err := (Constraint{Epsilon: math.NaN()}).Validate(4, 2); err == nil {
		t.Error("NaN epsilon accepted")
	}
	if err := (Constraint{FixedSide: []int8{0, 1, -1, 0, 1}}).Validate(4, 2); err == nil {
		t.Error("FixedSide longer than vertex count accepted")
	}
	if err := (Constraint{FixedSide: []int8{2}}).Validate(4, 2); err == nil {
		t.Error("part id out of range accepted")
	}
	if err := (Constraint{FixedSide: []int8{-2}}).Validate(4, 2); err == nil {
		t.Error("part id below -1 accepted")
	}
	if err := (Constraint{Epsilon: 0.3, FixedSide: []int8{0, 1, -1}}).Validate(4, 2); err != nil {
		t.Errorf("valid constraint rejected: %v", err)
	}
}

func TestConstraintFixedHelpers(t *testing.T) {
	c := Constraint{FixedSide: []int8{0, -1, 1}}
	if !c.HasFixed() || c.IsZero() {
		t.Fatal("fixed constraint not recognized")
	}
	if c.Fixed(0) != 0 || c.Fixed(1) != FreeVertex || c.Fixed(2) != 1 || c.Fixed(99) != FreeVertex {
		t.Fatal("Fixed accessor wrong")
	}
	locked := c.FixedBools(5)
	want := []bool{true, false, true, false, false}
	for i := range want {
		if locked[i] != want[i] {
			t.Fatalf("FixedBools = %v, want %v", locked, want)
		}
	}
	if (Constraint{Epsilon: 0.1}).FixedBools(3) != nil {
		t.Fatal("FixedBools should be nil without fixed vertices")
	}

	p := New(4)
	for v := 0; v < 4; v++ {
		p.Assign(v, Right)
	}
	if n := c.ApplyFixed(p); n != 1 {
		t.Fatalf("ApplyFixed moved %d vertices, want 1", n)
	}
	if p.Side(0) != Left || p.Side(1) != Right || p.Side(2) != Right {
		t.Fatalf("ApplyFixed result wrong: %v", p.Sides())
	}
	if !c.RespectsFixed(p) {
		t.Fatal("RespectsFixed false after ApplyFixed")
	}
	p.Assign(2, Left)
	if c.RespectsFixed(p) {
		t.Fatal("RespectsFixed true for a moved fixed vertex")
	}
}

func TestConstraintInfeasible(t *testing.T) {
	h := stubWeights{5, 1, 1, 1} // total 8, maxSide at ε=0 is 4
	if err := (Constraint{Epsilon: 0, FixedSide: []int8{0, 0, -1, -1}}).Infeasible(h); err != nil {
		// ε=0 means no balance bound requested (zero-value semantics).
		t.Errorf("zero-epsilon constraint reported infeasible: %v", err)
	}
	c := Constraint{Epsilon: 0.25, FixedSide: []int8{0, 0, 0, -1}} // left fixed = 7 > 5
	if err := c.Infeasible(h); err == nil {
		t.Error("overweight fixed side not reported infeasible")
	}
	ok := Constraint{Epsilon: 0.25, FixedSide: []int8{0, -1, -1, 1}}
	if err := ok.Infeasible(h); err != nil {
		t.Errorf("feasible constraint reported infeasible: %v", err)
	}
}

func TestConstraintKey(t *testing.T) {
	if (Constraint{}).Key() != "" {
		t.Error("zero constraint must map to the empty key for journal back-compat")
	}
	a := Constraint{Epsilon: 0.1}
	b := Constraint{Epsilon: 0.2}
	if a.Key() == b.Key() {
		t.Error("different epsilons share a key")
	}
	f1 := Constraint{Epsilon: 0.1, FixedSide: []int8{0, -1, 1}}
	f2 := Constraint{Epsilon: 0.1, FixedSide: []int8{0, -1, -1}}
	f3 := Constraint{Epsilon: 0.1, FixedSide: []int8{0, -1, 1}}
	if f1.Key() == f2.Key() {
		t.Error("different fixed sets share a key")
	}
	if f1.Key() != f3.Key() {
		t.Error("identical constraints disagree on the key")
	}
	if f1.Key() == a.Key() {
		t.Error("fixed constraint collides with the pure-epsilon key")
	}
}
