// Package partition defines the bipartition result type shared by all
// partitioners in this library, together with the cut metrics from the
// paper: cutsize, the r-bipartition balance constraint of Fiduccia–
// Mattheyses, the weight imbalance used by the "engineer's method", and
// the quotient-cut objective of Leighton–Rao that the paper's Section 5
// discusses as the culmination of balance-relaxed metrics.
package partition

import (
	"fmt"

	"fasthgp/internal/hypergraph"
)

// Side identifies which half of a bipartition a vertex belongs to.
type Side int8

// Bipartition side values. Unassigned marks vertices not yet placed
// (used for partial bipartitions during Algorithm I).
const (
	Unassigned Side = iota - 1
	Left
	Right
)

// String returns "L", "R" or "?".
func (s Side) String() string {
	switch s {
	case Left:
		return "L"
	case Right:
		return "R"
	default:
		return "?"
	}
}

// Opposite returns the other side; Unassigned maps to itself.
func (s Side) Opposite() Side {
	switch s {
	case Left:
		return Right
	case Right:
		return Left
	default:
		return Unassigned
	}
}

// Bipartition assigns each vertex of a hypergraph to Left, Right, or
// Unassigned. The zero value is unusable; create with New.
type Bipartition struct {
	side []Side
}

// New returns a Bipartition over n vertices with every vertex
// Unassigned.
func New(n int) *Bipartition {
	p := &Bipartition{side: make([]Side, n)}
	for i := range p.side {
		p.side[i] = Unassigned
	}
	return p
}

// FromSides wraps an explicit side slice (not copied).
func FromSides(side []Side) *Bipartition { return &Bipartition{side: side} }

// Len returns the number of vertices covered.
func (p *Bipartition) Len() int { return len(p.side) }

// Side returns the side of vertex v.
func (p *Bipartition) Side(v int) Side { return p.side[v] }

// Assign places vertex v on side s.
func (p *Bipartition) Assign(v int, s Side) { p.side[v] = s }

// Sides returns the underlying side slice (not a copy).
func (p *Bipartition) Sides() []Side { return p.side }

// Clone returns a deep copy.
func (p *Bipartition) Clone() *Bipartition {
	cp := make([]Side, len(p.side))
	copy(cp, p.side)
	return &Bipartition{side: cp}
}

// Counts returns the number of vertices on each side and the number
// unassigned.
func (p *Bipartition) Counts() (left, right, unassigned int) {
	for _, s := range p.side {
		switch s {
		case Left:
			left++
		case Right:
			right++
		default:
			unassigned++
		}
	}
	return
}

// IsComplete reports whether every vertex is assigned.
func (p *Bipartition) IsComplete() bool {
	for _, s := range p.side {
		if s == Unassigned {
			return false
		}
	}
	return true
}

// Flip swaps the two sides in place and returns the receiver.
func (p *Bipartition) Flip() *Bipartition {
	for i, s := range p.side {
		p.side[i] = s.Opposite()
	}
	return p
}

// Validate checks that p is a complete, proper bipartition of h: every
// vertex assigned and both sides nonempty. It returns a descriptive
// error otherwise.
func (p *Bipartition) Validate(h *hypergraph.Hypergraph) error {
	if len(p.side) != h.NumVertices() {
		return fmt.Errorf("partition: has %d vertices, hypergraph has %d", len(p.side), h.NumVertices())
	}
	l, r, u := p.Counts()
	if u > 0 {
		return fmt.Errorf("partition: %d vertices unassigned", u)
	}
	if l == 0 || r == 0 {
		return fmt.Errorf("partition: side empty (left=%d right=%d)", l, r)
	}
	return nil
}

// SideWeights returns the total vertex weight on each side of p.
func SideWeights(h *hypergraph.Hypergraph, p *Bipartition) (left, right int64) {
	for v := 0; v < h.NumVertices(); v++ {
		switch p.Side(v) {
		case Left:
			left += h.VertexWeight(v)
		case Right:
			right += h.VertexWeight(v)
		}
	}
	return
}

// Imbalance returns |weight(Left) − weight(Right)|.
func Imbalance(h *hypergraph.Hypergraph, p *Bipartition) int64 {
	l, r := SideWeights(h, p)
	if l > r {
		return l - r
	}
	return r - l
}

// EdgeCut describes how one edge relates to a (possibly partial)
// bipartition.
type EdgeCut int8

// EdgeCut values.
const (
	// EdgeUncut means all assigned pins lie on a single side.
	EdgeUncut EdgeCut = iota
	// EdgeCrossing means the edge has assigned pins on both sides.
	EdgeCrossing
	// EdgeOpen means the edge has no assigned pins at all.
	EdgeOpen
)

// ClassifyEdge reports how edge e relates to p. Unassigned pins are
// ignored except that an edge with no assigned pins is EdgeOpen.
func ClassifyEdge(h *hypergraph.Hypergraph, p *Bipartition, e int) EdgeCut {
	sawLeft, sawRight := false, false
	for _, v := range h.EdgePins(e) {
		switch p.Side(v) {
		case Left:
			sawLeft = true
		case Right:
			sawRight = true
		}
		if sawLeft && sawRight {
			return EdgeCrossing
		}
	}
	if !sawLeft && !sawRight {
		return EdgeOpen
	}
	return EdgeUncut
}

// Crosses reports whether edge e has pins on both sides of p.
func Crosses(h *hypergraph.Hypergraph, p *Bipartition, e int) bool {
	return ClassifyEdge(h, p, e) == EdgeCrossing
}

// CutSize returns the number of edges of h crossing the cut p.
// Edge weights are ignored; see WeightedCutSize.
func CutSize(h *hypergraph.Hypergraph, p *Bipartition) int {
	cut := 0
	for e := 0; e < h.NumEdges(); e++ {
		if Crosses(h, p, e) {
			cut++
		}
	}
	return cut
}

// WeightedCutSize returns the total weight of edges crossing p.
func WeightedCutSize(h *hypergraph.Hypergraph, p *Bipartition) int64 {
	var cut int64
	for e := 0; e < h.NumEdges(); e++ {
		if Crosses(h, p, e) {
			cut += h.EdgeWeight(e)
		}
	}
	return cut
}

// CutEdges returns the indices of all edges crossing p, ascending.
func CutEdges(h *hypergraph.Hypergraph, p *Bipartition) []int {
	var cut []int
	for e := 0; e < h.NumEdges(); e++ {
		if Crosses(h, p, e) {
			cut = append(cut, e)
		}
	}
	return cut
}

// IsBisection reports whether p satisfies the strict bisection
// criterion | |V_L| − |V_R| | ≤ 1 on vertex counts.
func IsBisection(p *Bipartition) bool {
	l, r, u := p.Counts()
	if u > 0 {
		return false
	}
	d := l - r
	if d < 0 {
		d = -d
	}
	return d <= 1
}

// IsRBipartition reports whether p satisfies the r-bipartition metric
// of Fiduccia–Mattheyses: the difference in vertex counts is at most r.
func IsRBipartition(p *Bipartition, r int) bool {
	l, right, u := p.Counts()
	if u > 0 {
		return false
	}
	d := l - right
	if d < 0 {
		d = -d
	}
	return d <= r
}

// QuotientCut returns the Leighton–Rao quotient cut objective
// cut(p) / min(|V_L|, |V_R|). It returns +Inf semantics as the maximum
// float when a side is empty (such a "cut" is not a cut at all).
func QuotientCut(h *hypergraph.Hypergraph, p *Bipartition) float64 {
	l, r, _ := p.Counts()
	m := min(l, r)
	if m == 0 {
		return maxFloat
	}
	return float64(CutSize(h, p)) / float64(m)
}

// RatioCut returns cut(p) / (|V_L| · |V_R|), the ratio-cut variant.
func RatioCut(h *hypergraph.Hypergraph, p *Bipartition) float64 {
	l, r, _ := p.Counts()
	if l == 0 || r == 0 {
		return maxFloat
	}
	return float64(CutSize(h, p)) / (float64(l) * float64(r))
}

const maxFloat = 1.797693134862315708145274237317043567981e+308

// String summarizes the partition.
func (p *Bipartition) String() string {
	l, r, u := p.Counts()
	return fmt.Sprintf("Bipartition{left: %d, right: %d, unassigned: %d}", l, r, u)
}
