package partition

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"fasthgp/internal/hypergraph"
)

func mkHG(t *testing.T, n int, edges [][]int) *hypergraph.Hypergraph {
	t.Helper()
	h, err := hypergraph.FromEdges(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func sides(ss ...Side) *Bipartition { return FromSides(ss) }

func TestSideString(t *testing.T) {
	if Left.String() != "L" || Right.String() != "R" || Unassigned.String() != "?" {
		t.Errorf("Side strings: %s %s %s", Left, Right, Unassigned)
	}
}

func TestSideOpposite(t *testing.T) {
	if Left.Opposite() != Right || Right.Opposite() != Left || Unassigned.Opposite() != Unassigned {
		t.Error("Opposite broken")
	}
}

func TestNewAllUnassigned(t *testing.T) {
	p := New(4)
	for v := 0; v < 4; v++ {
		if p.Side(v) != Unassigned {
			t.Fatalf("Side(%d) = %v", v, p.Side(v))
		}
	}
	if p.IsComplete() {
		t.Error("IsComplete = true")
	}
	l, r, u := p.Counts()
	if l != 0 || r != 0 || u != 4 {
		t.Errorf("Counts = %d,%d,%d", l, r, u)
	}
}

func TestAssignAndFlip(t *testing.T) {
	p := New(3)
	p.Assign(0, Left)
	p.Assign(1, Right)
	p.Assign(2, Left)
	if !p.IsComplete() {
		t.Error("IsComplete = false")
	}
	p.Flip()
	if p.Side(0) != Right || p.Side(1) != Left || p.Side(2) != Right {
		t.Errorf("after Flip: %v %v %v", p.Side(0), p.Side(1), p.Side(2))
	}
}

func TestClone(t *testing.T) {
	p := New(2)
	p.Assign(0, Left)
	q := p.Clone()
	q.Assign(0, Right)
	if p.Side(0) != Left {
		t.Error("Clone shares storage with original")
	}
}

func TestValidate(t *testing.T) {
	h := mkHG(t, 3, [][]int{{0, 1, 2}})
	p := New(3)
	if err := p.Validate(h); err == nil {
		t.Error("Validate accepted unassigned vertices")
	}
	p.Assign(0, Left)
	p.Assign(1, Left)
	p.Assign(2, Left)
	if err := p.Validate(h); err == nil {
		t.Error("Validate accepted empty right side")
	}
	p.Assign(2, Right)
	if err := p.Validate(h); err != nil {
		t.Errorf("Validate rejected proper partition: %v", err)
	}
	bad := New(2)
	if err := bad.Validate(h); err == nil {
		t.Error("Validate accepted size mismatch")
	}
}

func TestClassifyEdge(t *testing.T) {
	h := mkHG(t, 4, [][]int{{0, 1}, {1, 2}, {2, 3}, {0, 3}})
	p := sides(Left, Left, Right, Unassigned)
	if got := ClassifyEdge(h, p, 0); got != EdgeUncut {
		t.Errorf("edge 0: %v, want EdgeUncut", got)
	}
	if got := ClassifyEdge(h, p, 1); got != EdgeCrossing {
		t.Errorf("edge 1: %v, want EdgeCrossing", got)
	}
	if got := ClassifyEdge(h, p, 2); got != EdgeUncut {
		t.Errorf("edge 2 (one pin unassigned): %v, want EdgeUncut", got)
	}
	pOpen := sides(Unassigned, Left, Left, Unassigned)
	if got := ClassifyEdge(h, pOpen, 3); got != EdgeOpen {
		t.Errorf("edge 3: %v, want EdgeOpen", got)
	}
}

func TestCutSize(t *testing.T) {
	// K3 plus a pendant: cut {0} | {1,2,3}.
	h := mkHG(t, 4, [][]int{{0, 1}, {1, 2}, {0, 2}, {2, 3}})
	p := sides(Left, Right, Right, Right)
	if got := CutSize(h, p); got != 2 {
		t.Errorf("CutSize = %d, want 2", got)
	}
	edges := CutEdges(h, p)
	if len(edges) != 2 || edges[0] != 0 || edges[1] != 2 {
		t.Errorf("CutEdges = %v, want [0 2]", edges)
	}
}

func TestWeightedCutSize(t *testing.T) {
	b := hypergraph.NewBuilder(3)
	e0 := b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.SetEdgeWeight(e0, 5)
	h := b.MustBuild()
	p := sides(Left, Right, Right)
	if got := WeightedCutSize(h, p); got != 5 {
		t.Errorf("WeightedCutSize = %d, want 5", got)
	}
}

func TestSideWeightsAndImbalance(t *testing.T) {
	b := hypergraph.NewBuilder(3)
	b.AddEdge(0, 1, 2)
	b.SetVertexWeight(0, 10)
	b.SetVertexWeight(1, 3)
	b.SetVertexWeight(2, 4)
	h := b.MustBuild()
	p := sides(Left, Right, Right)
	l, r := SideWeights(h, p)
	if l != 10 || r != 7 {
		t.Errorf("SideWeights = %d,%d", l, r)
	}
	if Imbalance(h, p) != 3 {
		t.Errorf("Imbalance = %d, want 3", Imbalance(h, p))
	}
	if Imbalance(h, p.Clone().Flip()) != 3 {
		t.Error("Imbalance not symmetric under Flip")
	}
}

func TestBisectionAndR(t *testing.T) {
	p := sides(Left, Right, Left)
	if !IsBisection(p) {
		t.Error("IsBisection = false for 2|1 split")
	}
	q := sides(Left, Left, Left, Right)
	if IsBisection(q) {
		t.Error("IsBisection = true for 3|1 split")
	}
	if !IsRBipartition(q, 2) {
		t.Error("IsRBipartition(2) = false for 3|1 split")
	}
	if IsRBipartition(q, 1) {
		t.Error("IsRBipartition(1) = true for 3|1 split")
	}
	incomplete := sides(Left, Unassigned)
	if IsBisection(incomplete) || IsRBipartition(incomplete, 10) {
		t.Error("balance predicates accepted incomplete partition")
	}
}

func TestQuotientAndRatioCut(t *testing.T) {
	h := mkHG(t, 4, [][]int{{0, 1}, {1, 2}, {2, 3}})
	p := sides(Left, Left, Right, Right)
	if got := QuotientCut(h, p); got != 0.5 {
		t.Errorf("QuotientCut = %g, want 0.5", got)
	}
	if got := RatioCut(h, p); got != 0.25 {
		t.Errorf("RatioCut = %g, want 0.25", got)
	}
	empty := sides(Left, Left, Left, Left)
	if QuotientCut(h, empty) != math.MaxFloat64 || RatioCut(h, empty) != math.MaxFloat64 {
		t.Error("degenerate partitions should score MaxFloat64")
	}
}

func randomPartition(rng *rand.Rand, n int) *Bipartition {
	p := New(n)
	for v := 0; v < n; v++ {
		if rng.Intn(2) == 0 {
			p.Assign(v, Left)
		} else {
			p.Assign(v, Right)
		}
	}
	return p
}

// TestPropertyCutSymmetricUnderFlip: flipping the partition preserves
// all cut metrics.
func TestPropertyCutSymmetricUnderFlip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		m := 1 + rng.Intn(30)
		b := hypergraph.NewBuilder(n)
		for i := 0; i < m; i++ {
			size := 2 + rng.Intn(3)
			pins := make([]int, size)
			for j := range pins {
				pins[j] = rng.Intn(n)
			}
			b.AddEdge(pins...)
		}
		h, err := b.Build()
		if err != nil {
			return false
		}
		p := randomPartition(rng, n)
		q := p.Clone().Flip()
		return CutSize(h, p) == CutSize(h, q) &&
			WeightedCutSize(h, p) == WeightedCutSize(h, q)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestPropertyCutBounds: 0 ≤ cut ≤ #edges, and single-pin edges never
// cross.
func TestPropertyCutBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(15)
		m := rng.Intn(25)
		b := hypergraph.NewBuilder(n)
		for i := 0; i < m; i++ {
			size := 1 + rng.Intn(4)
			pins := make([]int, size)
			for j := range pins {
				pins[j] = rng.Intn(n)
			}
			b.AddEdge(pins...)
		}
		h, err := b.Build()
		if err != nil {
			return false
		}
		p := randomPartition(rng, n)
		cut := CutSize(h, p)
		if cut < 0 || cut > h.NumEdges() {
			return false
		}
		for e := 0; e < h.NumEdges(); e++ {
			if h.EdgeSize(e) == 1 && Crosses(h, p, e) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestString(t *testing.T) {
	p := sides(Left, Right, Unassigned)
	want := "Bipartition{left: 1, right: 1, unassigned: 1}"
	if got := p.String(); got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}
