// Package bruteforce computes exact minimum cuts by exhaustive
// enumeration. It is the ground-truth oracle for testing the heuristics
// on small instances: hypergraph min-cut bisection is NP-complete
// (Garey–Johnson, cited as [12] in the paper), so exact answers are
// only feasible for a couple dozen vertices.
package bruteforce

import (
	"fmt"
	"math"

	"fasthgp/internal/hypergraph"
	"fasthgp/internal/partition"
)

// MaxVertices bounds the instance size enumeration will accept:
// 2^(MaxVertices-1) subsets are examined. Masks are uint64, so the
// representation stays exact up to MaxMaskVertices; MaxVertices is the
// (much lower) practical enumeration budget.
const MaxVertices = 24

// MaxMaskVertices is the structural limit of the subset-mask
// representation: a uint64 mask enumerates the 2^(n-1) left sets only
// while n−1 < 64. Instances beyond MaxVertices are rejected long before
// this matters; the constant exists so the guard is explicit rather
// than a silent truncation.
const MaxMaskVertices = 64

// checkSize validates n against both limits with a clear error.
func checkSize(n int) error {
	if n < 2 {
		return fmt.Errorf("bruteforce: need at least 2 vertices, have %d", n)
	}
	if n > MaxVertices {
		return fmt.Errorf("bruteforce: %d vertices exceeds enumeration limit %d (2^%d subsets; mask representation itself caps at %d)",
			n, MaxVertices, n-1, MaxMaskVertices)
	}
	return nil
}

// MinCut returns an exact minimum r-bipartition of h: over all complete
// bipartitions with | |V_L| − |V_R| | ≤ r and both sides nonempty, one
// with minimum cutsize (ties broken toward smaller vertex-count
// imbalance, then lexicographically smallest left set).
//
// Use r = 1 for the paper's strict bisection and r = h.NumVertices()
// for the unconstrained min cut (which still requires both sides
// nonempty).
func MinCut(h *hypergraph.Hypergraph, r int) (*partition.Bipartition, int, error) {
	n := h.NumVertices()
	if err := checkSize(n); err != nil {
		return nil, 0, err
	}
	bestCut := math.MaxInt
	bestImb := math.MaxInt
	var bestMask uint64
	p := partition.New(n)
	// Fix vertex n-1 on the Right to halve the space and skip the
	// empty/full masks.
	limit := uint64(1) << (n - 1)
	for mask := uint64(1); mask < limit; mask++ {
		left := popcount(mask)
		imb := abs(2*left - n)
		if imb > r {
			continue
		}
		apply(p, mask, n)
		cut := partition.CutSize(h, p)
		if cut < bestCut || (cut == bestCut && imb < bestImb) {
			bestCut, bestImb, bestMask = cut, imb, mask
		}
	}
	if bestCut == math.MaxInt {
		return nil, 0, fmt.Errorf("bruteforce: no bipartition satisfies r=%d", r)
	}
	apply(p, bestMask, n)
	return p, bestCut, nil
}

// MinBisection is MinCut with the strict bisection constraint
// | |V_L| − |V_R| | ≤ 1.
func MinBisection(h *hypergraph.Hypergraph) (*partition.Bipartition, int, error) {
	return MinCut(h, 1)
}

// MinCutUnconstrained is MinCut with no balance constraint (both sides
// must still be nonempty).
func MinCutUnconstrained(h *hypergraph.Hypergraph) (*partition.Bipartition, int, error) {
	return MinCut(h, h.NumVertices())
}

// MinCutConstrained returns an exact minimum cut over all complete
// bipartitions satisfying the constraint c: every side weighs at most
// c.MaxSideWeight (when c carries an ε bound), every fixed vertex sits
// on its pinned side, and both sides are nonempty. Ties break toward
// smaller weight imbalance, then lexicographically smallest left set.
//
// Unlike MinCut, no vertex can be symmetry-fixed to halve the space —
// the fixed assignment breaks the L/R symmetry — so all 2^n − 2 proper
// subsets are examined; keep instances a vertex or two smaller than
// MaxVertices when wall time matters.
func MinCutConstrained(h *hypergraph.Hypergraph, c partition.Constraint) (*partition.Bipartition, int, error) {
	n := h.NumVertices()
	if err := checkSize(n); err != nil {
		return nil, 0, err
	}
	if err := c.Validate(n, 2); err != nil {
		return nil, 0, fmt.Errorf("bruteforce: %w", err)
	}
	total := h.TotalVertexWeight()
	maxSide := total // no balance bound
	if c.HasBalance() {
		maxSide = c.MaxSideWeight(total, 2)
	}
	// Precompute the fixed mask: bits that MUST be in the left set and
	// bits that MUST NOT be.
	var mustLeft, mustRight uint64
	for v := 0; v < n; v++ {
		switch f := c.Fixed(v); {
		case f == 0:
			mustLeft |= 1 << uint(v)
		case f > 0:
			mustRight |= 1 << uint(v)
		}
	}
	bestCut := math.MaxInt
	var bestImb int64 = math.MaxInt64
	var bestMask uint64
	found := false
	p := partition.New(n)
	limit := uint64(1) << n
	for mask := uint64(1); mask < limit-1; mask++ {
		if mask&mustLeft != mustLeft || mask&mustRight != 0 {
			continue
		}
		var lw int64
		for v := 0; v < n; v++ {
			if mask&(1<<uint(v)) != 0 {
				lw += h.VertexWeight(v)
			}
		}
		rw := total - lw
		if lw > maxSide || rw > maxSide {
			continue
		}
		applyFull(p, mask, n)
		cut := partition.CutSize(h, p)
		imb := lw - rw
		if imb < 0 {
			imb = -imb
		}
		if !found || cut < bestCut || (cut == bestCut && imb < bestImb) {
			found, bestCut, bestImb, bestMask = true, cut, imb, mask
		}
	}
	if !found {
		return nil, 0, fmt.Errorf("bruteforce: no bipartition satisfies the constraint (epsilon %g, %d fixed)", c.Epsilon, len(c.FixedSide))
	}
	applyFull(p, bestMask, n)
	return p, bestCut, nil
}

// applyFull decodes an unrestricted subset mask (no symmetry-fixed
// vertex) into p.
func applyFull(p *partition.Bipartition, mask uint64, n int) {
	for v := 0; v < n; v++ {
		if mask&(1<<uint(v)) != 0 {
			p.Assign(v, partition.Left)
		} else {
			p.Assign(v, partition.Right)
		}
	}
}

// MinQuotientCut returns an exact minimum quotient-cut bipartition
// (cut / min side cardinality) and its value.
func MinQuotientCut(h *hypergraph.Hypergraph) (*partition.Bipartition, float64, error) {
	n := h.NumVertices()
	if err := checkSize(n); err != nil {
		return nil, 0, err
	}
	best := math.MaxFloat64
	var bestMask uint64
	p := partition.New(n)
	limit := uint64(1) << (n - 1)
	for mask := uint64(1); mask < limit; mask++ {
		apply(p, mask, n)
		q := partition.QuotientCut(h, p)
		if q < best {
			best, bestMask = q, mask
		}
	}
	apply(p, bestMask, n)
	return p, best, nil
}

func apply(p *partition.Bipartition, mask uint64, n int) {
	for v := 0; v < n; v++ {
		if v < n-1 && mask&(1<<uint(v)) != 0 {
			p.Assign(v, partition.Left)
		} else {
			p.Assign(v, partition.Right)
		}
	}
}

func popcount(x uint64) int {
	c := 0
	for x != 0 {
		x &= x - 1
		c++
	}
	return c
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
