// Package bruteforce computes exact minimum cuts by exhaustive
// enumeration. It is the ground-truth oracle for testing the heuristics
// on small instances: hypergraph min-cut bisection is NP-complete
// (Garey–Johnson, cited as [12] in the paper), so exact answers are
// only feasible for a couple dozen vertices.
package bruteforce

import (
	"fmt"
	"math"

	"fasthgp/internal/hypergraph"
	"fasthgp/internal/partition"
)

// MaxVertices bounds the instance size enumeration will accept:
// 2^(MaxVertices-1) subsets are examined.
const MaxVertices = 24

// MinCut returns an exact minimum r-bipartition of h: over all complete
// bipartitions with | |V_L| − |V_R| | ≤ r and both sides nonempty, one
// with minimum cutsize (ties broken toward smaller vertex-count
// imbalance, then lexicographically smallest left set).
//
// Use r = 1 for the paper's strict bisection and r = h.NumVertices()
// for the unconstrained min cut (which still requires both sides
// nonempty).
func MinCut(h *hypergraph.Hypergraph, r int) (*partition.Bipartition, int, error) {
	n := h.NumVertices()
	if n < 2 {
		return nil, 0, fmt.Errorf("bruteforce: need at least 2 vertices, have %d", n)
	}
	if n > MaxVertices {
		return nil, 0, fmt.Errorf("bruteforce: %d vertices exceeds limit %d", n, MaxVertices)
	}
	bestCut := math.MaxInt
	bestImb := math.MaxInt
	var bestMask uint32
	p := partition.New(n)
	// Fix vertex n-1 on the Right to halve the space and skip the
	// empty/full masks.
	limit := uint32(1) << (n - 1)
	for mask := uint32(1); mask < limit; mask++ {
		left := popcount(mask)
		imb := abs(2*left - n)
		if imb > r {
			continue
		}
		apply(p, mask, n)
		cut := partition.CutSize(h, p)
		if cut < bestCut || (cut == bestCut && imb < bestImb) {
			bestCut, bestImb, bestMask = cut, imb, mask
		}
	}
	if bestCut == math.MaxInt {
		return nil, 0, fmt.Errorf("bruteforce: no bipartition satisfies r=%d", r)
	}
	apply(p, bestMask, n)
	return p, bestCut, nil
}

// MinBisection is MinCut with the strict bisection constraint
// | |V_L| − |V_R| | ≤ 1.
func MinBisection(h *hypergraph.Hypergraph) (*partition.Bipartition, int, error) {
	return MinCut(h, 1)
}

// MinCutUnconstrained is MinCut with no balance constraint (both sides
// must still be nonempty).
func MinCutUnconstrained(h *hypergraph.Hypergraph) (*partition.Bipartition, int, error) {
	return MinCut(h, h.NumVertices())
}

// MinQuotientCut returns an exact minimum quotient-cut bipartition
// (cut / min side cardinality) and its value.
func MinQuotientCut(h *hypergraph.Hypergraph) (*partition.Bipartition, float64, error) {
	n := h.NumVertices()
	if n < 2 {
		return nil, 0, fmt.Errorf("bruteforce: need at least 2 vertices, have %d", n)
	}
	if n > MaxVertices {
		return nil, 0, fmt.Errorf("bruteforce: %d vertices exceeds limit %d", n, MaxVertices)
	}
	best := math.MaxFloat64
	var bestMask uint32
	p := partition.New(n)
	limit := uint32(1) << (n - 1)
	for mask := uint32(1); mask < limit; mask++ {
		apply(p, mask, n)
		q := partition.QuotientCut(h, p)
		if q < best {
			best, bestMask = q, mask
		}
	}
	apply(p, bestMask, n)
	return p, best, nil
}

func apply(p *partition.Bipartition, mask uint32, n int) {
	for v := 0; v < n; v++ {
		if v < n-1 && mask&(1<<uint(v)) != 0 {
			p.Assign(v, partition.Left)
		} else {
			p.Assign(v, partition.Right)
		}
	}
}

func popcount(x uint32) int {
	c := 0
	for x != 0 {
		x &= x - 1
		c++
	}
	return c
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
