package bruteforce

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fasthgp/internal/hypergraph"
	"fasthgp/internal/partition"
)

func mkHG(t *testing.T, n int, edges [][]int) *hypergraph.Hypergraph {
	t.Helper()
	h, err := hypergraph.FromEdges(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestMinBisectionTwoCliques(t *testing.T) {
	// Two 3-cliques joined by one bridge edge: optimum bisection cuts
	// exactly the bridge.
	h := mkHG(t, 6, [][]int{
		{0, 1}, {1, 2}, {0, 2},
		{3, 4}, {4, 5}, {3, 5},
		{2, 3},
	})
	p, cut, err := MinBisection(h)
	if err != nil {
		t.Fatal(err)
	}
	if cut != 1 {
		t.Fatalf("cut = %d, want 1", cut)
	}
	if !partition.IsBisection(p) {
		t.Error("result not a bisection")
	}
	if p.Side(0) != p.Side(1) || p.Side(1) != p.Side(2) {
		t.Errorf("left clique split: %v", p.Sides())
	}
	if p.Side(3) != p.Side(4) || p.Side(4) != p.Side(5) {
		t.Errorf("right clique split: %v", p.Sides())
	}
}

func TestMinBisectionHyperedges(t *testing.T) {
	// A single 4-pin net over all vertices always crosses any
	// bipartition, so the optimum is 1.
	h := mkHG(t, 4, [][]int{{0, 1, 2, 3}})
	_, cut, err := MinBisection(h)
	if err != nil {
		t.Fatal(err)
	}
	if cut != 1 {
		t.Errorf("cut = %d, want 1", cut)
	}
}

func TestMinCutUnconstrainedPrefersLopsided(t *testing.T) {
	// Path of 5 vertices: cutting off one end vertex costs 1 edge; a
	// bisection also costs 1, but with a star the difference shows.
	h := mkHG(t, 5, [][]int{{0, 1}, {0, 2}, {0, 3}, {0, 4}})
	_, cut, err := MinCutUnconstrained(h)
	if err != nil {
		t.Fatal(err)
	}
	if cut != 1 {
		t.Errorf("unconstrained cut = %d, want 1 (peel one leaf)", cut)
	}
	_, bcut, err := MinBisection(h)
	if err != nil {
		t.Fatal(err)
	}
	if bcut != 2 {
		t.Errorf("bisection cut = %d, want 2", bcut)
	}
}

func TestMinCutDisconnected(t *testing.T) {
	h := mkHG(t, 4, [][]int{{0, 1}, {2, 3}})
	p, cut, err := MinBisection(h)
	if err != nil {
		t.Fatal(err)
	}
	if cut != 0 {
		t.Errorf("cut = %d, want 0", cut)
	}
	if p.Side(0) != p.Side(1) || p.Side(2) != p.Side(3) {
		t.Errorf("components split: %v", p.Sides())
	}
}

func TestErrors(t *testing.T) {
	h := mkHG(t, 1, [][]int{{0}})
	if _, _, err := MinBisection(h); err == nil {
		t.Error("accepted 1-vertex instance")
	}
	big := hypergraph.NewBuilder(MaxVertices + 1)
	big.AddEdge(0, 1)
	hb := big.MustBuild()
	if _, _, err := MinBisection(hb); err == nil {
		t.Error("accepted oversized instance")
	}
	if _, _, err := MinQuotientCut(hb); err == nil {
		t.Error("quotient accepted oversized instance")
	}
}

func TestRBalanceRespected(t *testing.T) {
	h := mkHG(t, 6, [][]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}})
	for _, r := range []int{0, 2, 4} {
		p, _, err := MinCut(h, r)
		if err != nil {
			t.Fatalf("r=%d: %v", r, err)
		}
		if !partition.IsRBipartition(p, r) {
			t.Errorf("r=%d violated: %v", r, p.Sides())
		}
	}
}

func TestRZeroOddFails(t *testing.T) {
	h := mkHG(t, 3, [][]int{{0, 1}, {1, 2}})
	if _, _, err := MinCut(h, 0); err == nil {
		t.Error("r=0 on odd vertex count should fail")
	}
}

func TestMinQuotientCut(t *testing.T) {
	// Barbell: two triangles and a bridge. Quotient optimum cuts the
	// bridge: 1/3.
	h := mkHG(t, 6, [][]int{
		{0, 1}, {1, 2}, {0, 2},
		{3, 4}, {4, 5}, {3, 5},
		{2, 3},
	})
	_, q, err := MinQuotientCut(h)
	if err != nil {
		t.Fatal(err)
	}
	if q != 1.0/3.0 {
		t.Errorf("quotient = %g, want 1/3", q)
	}
}

// TestPropertyBisectionOptimalityCertificate: the reported cut really
// is achieved by the reported partition, the partition is valid, and no
// random bisection beats it.
func TestPropertyBisectionOptimalityCertificate(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(9)
		m := 1 + rng.Intn(12)
		b := hypergraph.NewBuilder(n)
		for i := 0; i < m; i++ {
			size := 2 + rng.Intn(3)
			pins := make([]int, size)
			for j := range pins {
				pins[j] = rng.Intn(n)
			}
			b.AddEdge(pins...)
		}
		h, err := b.Build()
		if err != nil {
			return false
		}
		p, cut, err := MinBisection(h)
		if err != nil {
			return false
		}
		if err := p.Validate(h); err != nil {
			return false
		}
		if partition.CutSize(h, p) != cut || !partition.IsBisection(p) {
			return false
		}
		// Random bisections cannot beat the optimum.
		for trial := 0; trial < 20; trial++ {
			q := partition.New(n)
			perm := rng.Perm(n)
			for i, v := range perm {
				if i < n/2 {
					q.Assign(v, partition.Left)
				} else {
					q.Assign(v, partition.Right)
				}
			}
			if partition.CutSize(h, q) < cut {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
